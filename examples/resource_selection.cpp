// resource_selection — the scenario the paper's middleware exists for:
// a dataset replicated at two repositories, two candidate compute sites,
// and a resource-selection framework that must pick the (replica,
// configuration) pair with the minimum predicted cost.
#include <iostream>

#include "apps/vortex.h"
#include "core/ipc_probe.h"
#include "core/selector.h"
#include "datagen/flowfield.h"
#include "freeride/runtime.h"
#include "grid/catalog.h"
#include "util/table.h"

int main() {
  using namespace fgp;

  // The dataset: a 710 MB (virtual) CFD snapshot for vortex mining.
  datagen::FlowSpec spec;
  spec.width = 256;
  spec.height = 256;
  spec.rows_per_chunk = 4;
  spec.seed = 7;
  spec.name = "cfd-run-0042";
  spec.virtual_scale = 710e6 / (256.0 * 256.0 * sizeof(datagen::Vec2f));
  const auto flow = datagen::generate_flowfield(spec);

  // The grid: two repositories holding replicas, one compute site.
  const auto pentium = sim::cluster_pentium_myrinet();
  grid::GridCatalog catalog;
  catalog.register_repository_site({"storage-a", pentium, 8});
  catalog.register_repository_site({"storage-b", pentium, 4});
  catalog.register_compute_site({"hpc", pentium, 16});
  catalog.register_link("storage-a", "hpc", sim::wan_mbps(40));   // far, slow
  catalog.register_link("storage-b", "hpc", sim::wan_mbps(120));  // near, fast
  catalog.register_replica({spec.name, "storage-a", 8});
  catalog.register_replica({spec.name, "storage-b", 2});

  // One profile run of the application (1 data node, 1 compute node).
  apps::VortexParams params;
  freeride::JobSetup profile_setup;
  profile_setup.dataset = &flow.dataset;
  profile_setup.data_cluster = pentium;
  profile_setup.compute_cluster = pentium;
  profile_setup.wan = sim::wan_mbps(40);
  profile_setup.config.data_nodes = 1;
  profile_setup.config.compute_nodes = 1;
  apps::VortexKernel profile_kernel(params);
  const core::Profile profile =
      core::ProfileCollector::collect(profile_setup, profile_kernel);

  // Rank every (replica, configuration) candidate.
  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = {core::RoSizeClass::LinearWithData,
                  core::GlobalReductionClass::ConstantLinear};
  const core::ResourceSelector selector(&catalog, profile, opts);
  const auto ranked =
      selector.rank(spec.name, flow.dataset.total_virtual_bytes());

  util::Table table({"rank", "replica", "storage", "compute", "T_pred(s)"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto& rc = ranked[i];
    table.add_row({std::to_string(i + 1), rc.candidate.replica.repository,
                   std::to_string(rc.candidate.replica.storage_nodes),
                   std::to_string(rc.candidate.compute_nodes),
                   util::Table::fmt(rc.predicted.total(), 2)});
  }
  table.print(std::cout);

  // Execute the winner and report what actually happened.
  const auto& best = ranked.front();
  freeride::JobSetup winner;
  winner.dataset = &flow.dataset;
  winner.data_cluster =
      catalog.repository_site(best.candidate.replica.repository).cluster;
  winner.compute_cluster =
      catalog.compute_site(best.candidate.compute_site).cluster;
  winner.wan = best.candidate.wan;
  winner.config.data_nodes = best.candidate.replica.storage_nodes;
  winner.config.compute_nodes = best.candidate.compute_nodes;
  apps::VortexKernel run_kernel(params);
  const auto result = freeride::Runtime().run(winner, run_kernel);
  const auto& vortices =
      dynamic_cast<const apps::VortexObject&>(*result.result).vortices;

  std::cout << "\nselected " << best.candidate.replica.repository << " with "
            << best.candidate.compute_nodes << " compute nodes; actual time "
            << util::Table::fmt(result.timing.total.total(), 2)
            << "s (predicted " << util::Table::fmt(best.predicted.total(), 2)
            << "s); " << vortices.size() << " vortices mined\n";
  return 0;
}
