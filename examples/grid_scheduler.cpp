// grid_scheduler — using the prediction framework for what the paper built
// it for: dynamic resource allocation. A stream of mining jobs (k-means
// and vortex detection) arrives at a small grid; the scheduler costs every
// (replica, site, node-count) placement with the model, accounts for queue
// waits, and commits the cheapest predicted completion. The final table
// shows each job's placement, its predicted vs actual execution time, and
// how long it waited.
#include <iostream>

#include "apps/kmeans.h"
#include "apps/vortex.h"
#include "core/scheduler.h"
#include "datagen/flowfield.h"
#include "datagen/points.h"
#include "freeride/runtime.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace fgp;

core::Profile collect_profile(const repository::ChunkedDataset& ds,
                              freeride::ReductionKernel& kernel,
                              const sim::ClusterSpec& cluster) {
  freeride::JobSetup setup;
  setup.dataset = &ds;
  setup.data_cluster = cluster;
  setup.compute_cluster = cluster;
  setup.wan = sim::wan_mbps(800.0);
  setup.config.data_nodes = 1;
  setup.config.compute_nodes = 1;
  return core::ProfileCollector::collect(setup, kernel);
}

}  // namespace

int main() {
  const auto pentium = sim::cluster_pentium_myrinet();

  // Two applications with their datasets.
  auto pts_spec = datagen::scaled_points_spec(700.0, 2.0, 8, 42);
  pts_spec.num_components = 8;
  const auto points = datagen::generate_points(pts_spec);

  datagen::FlowSpec flow_spec;
  flow_spec.width = 256;
  flow_spec.height = 256;
  flow_spec.rows_per_chunk = 4;
  flow_spec.virtual_scale =
      500e6 / (256.0 * 256.0 * sizeof(datagen::Vec2f) * 1.5);
  const auto flow = datagen::generate_flowfield(flow_spec);

  apps::KMeansParams km;
  km.k = 8;
  km.dim = 8;
  km.initial_centers = apps::initial_centers_from_dataset(points.dataset, 8, 8);
  km.fixed_passes = 10;
  apps::VortexParams vx;

  // The grid: one repository, two compute sites.
  grid::GridCatalog catalog;
  catalog.register_repository_site({"repo", pentium, 4});
  catalog.register_compute_site({"site-a", pentium, 8});
  catalog.register_compute_site({"site-b", pentium, 16});
  catalog.register_link("repo", "site-a", sim::wan_mbps(800));
  catalog.register_link("repo", "site-b", sim::wan_mbps(200));
  catalog.register_replica({"points", "repo", 2});
  catalog.register_replica({"flow", "repo", 2});

  // Profiles (one run each at 1-1).
  apps::KMeansKernel km_profile_kernel(km);
  const auto km_profile =
      collect_profile(points.dataset, km_profile_kernel, pentium);
  apps::VortexKernel vx_profile_kernel(vx);
  const auto vx_profile =
      collect_profile(flow.dataset, vx_profile_kernel, pentium);

  // A six-job stream alternating between the two applications.
  std::vector<core::JobRequest> jobs;
  for (int i = 0; i < 6; ++i) {
    core::JobRequest j;
    const bool is_kmeans = i % 2 == 0;
    j.id = (is_kmeans ? "kmeans-" : "vortex-") + std::to_string(i);
    j.dataset = is_kmeans ? "points" : "flow";
    j.dataset_bytes = is_kmeans ? points.dataset.total_virtual_bytes()
                                : flow.dataset.total_virtual_bytes();
    j.profile = is_kmeans ? km_profile : vx_profile;
    j.classes = is_kmeans
                    ? core::AppClasses{core::RoSizeClass::Constant,
                                       core::GlobalReductionClass::LinearConstant}
                    : core::AppClasses{core::RoSizeClass::LinearWithData,
                                       core::GlobalReductionClass::ConstantLinear};
    j.submit_time_s = 15.0 * i;
    jobs.push_back(std::move(j));
  }

  // Ground truth: actually run the job on the chosen resources.
  auto runner = [&](const core::JobRequest& job, const grid::Candidate& c) {
    freeride::JobSetup setup;
    setup.dataset = job.dataset == "points" ? &points.dataset : &flow.dataset;
    setup.data_cluster = catalog.repository_site(c.replica.repository).cluster;
    setup.compute_cluster = catalog.compute_site(c.compute_site).cluster;
    setup.wan = c.wan;
    setup.config.data_nodes = c.replica.storage_nodes;
    setup.config.compute_nodes = c.compute_nodes;
    if (job.dataset == "points") {
      apps::KMeansKernel kernel(km);
      return freeride::Runtime().run(setup, kernel).timing.total.total();
    }
    apps::VortexKernel kernel(vx);
    return freeride::Runtime().run(setup, kernel).timing.total.total();
  };

  core::GridScheduler scheduler(&catalog,
                                core::SchedulingPolicy::PredictedBest);
  const auto placements = scheduler.schedule(jobs, runner);

  util::Table table({"job", "site", "nodes", "wait(s)", "T_pred(s)",
                     "T_actual(s)", "err"});
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const auto& p = placements[i];
    table.add_row(
        {p.job_id, p.candidate.compute_site,
         std::to_string(p.candidate.compute_nodes),
         util::Table::fmt(p.start_s - jobs[i].submit_time_s, 1),
         util::Table::fmt(p.predicted_exec_s, 1),
         util::Table::fmt(p.actual_exec_s, 1),
         util::Table::pct(
             util::relative_error(p.actual_exec_s, p.predicted_exec_s))});
  }
  table.print(std::cout);
  std::cout << "\nmakespan " << util::Table::fmt(scheduler.makespan(), 1)
            << "s, mean turnaround "
            << util::Table::fmt(scheduler.mean_turnaround(), 1) << "s\n";
  return 0;
}
