// quickstart — the end-to-end tour in ~100 lines:
//   1. generate a chunked dataset and persist it in a repository store,
//   2. run k-means through the FREERIDE-G runtime on a virtual cluster,
//   3. collect a profile and predict the execution time of a bigger
//      configuration,
//   4. check the prediction against the simulated "ground truth".
#include <filesystem>
#include <iostream>

#include "apps/kmeans.h"
#include "core/ipc_probe.h"
#include "core/predictor.h"
#include "core/profile.h"
#include "datagen/points.h"
#include "freeride/runtime.h"
#include "repository/store.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace fgp;

  // 1. A 350 MB (virtual) Gaussian-mixture dataset; the real payload is a
  //    couple of megabytes, chunked for a data repository.
  auto spec = datagen::scaled_points_spec(/*virtual_mb=*/350.0,
                                          /*real_mb=*/2.0, /*dim=*/8,
                                          /*seed=*/42);
  spec.num_components = 8;
  spec.name = "quickstart-points";
  const auto points = datagen::generate_points(spec);
  std::cout << "dataset: " << points.dataset.chunk_count() << " chunks, "
            << points.dataset.total_virtual_bytes() / 1e6 << " MB virtual\n";

  // Persist and reload through the repository store (what a data-server
  // node would read from disk).
  repository::DatasetStore store(std::filesystem::temp_directory_path() /
                                 "fgp_quickstart");
  store.save(points.dataset);
  const auto dataset = store.load(spec.name);

  // 2. Run k-means on 2 data nodes + 4 compute nodes of the Pentium-era
  //    reference cluster.
  apps::KMeansParams params;
  params.k = 8;
  params.dim = 8;
  params.initial_centers = apps::initial_centers_from_dataset(dataset, 8, 8);
  params.fixed_passes = 10;
  apps::KMeansKernel kernel(params);

  freeride::JobSetup setup;
  setup.dataset = &dataset;
  setup.data_cluster = sim::cluster_pentium_myrinet();
  setup.compute_cluster = sim::cluster_pentium_myrinet();
  setup.wan = sim::wan_mbps(80.0);
  setup.config.data_nodes = 2;
  setup.config.compute_nodes = 4;

  const auto result = freeride::Runtime().run(setup, kernel);
  const auto& t = result.timing.total;
  std::cout << "\nk-means on 2-4: " << result.passes << " passes, "
            << "T_disk=" << util::Table::fmt(t.disk, 2)
            << "s  T_net=" << util::Table::fmt(t.network, 2)
            << "s  T_compute=" << util::Table::fmt(t.compute(), 2)
            << "s  (T_ro=" << util::Table::fmt(t.ro_comm, 3)
            << "s, T_g=" << util::Table::fmt(t.global_red, 3) << "s)\n";
  std::cout << "final objective (SSE): "
            << util::Table::fmt(kernel.objective_history().back(), 1) << "\n";

  // 3. That run doubles as the profile. Predict 8 data + 16 compute nodes.
  const core::Profile profile =
      core::ProfileCollector::from_result(setup, kernel.name(), result);
  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = {core::RoSizeClass::Constant,
                  core::GlobalReductionClass::LinearConstant};
  opts.ipc = core::measure_ipc(setup.compute_cluster);
  const core::Predictor predictor(profile, opts);

  core::ProfileConfig target = profile.config;
  target.data_nodes = 8;
  target.compute_nodes = 16;
  const auto predicted = predictor.predict(target);

  // 4. Ground truth from the virtual cluster.
  setup.config.data_nodes = 8;
  setup.config.compute_nodes = 16;
  apps::KMeansKernel verify_kernel(params);
  const auto actual = freeride::Runtime().run(setup, verify_kernel);

  std::cout << "\npredicting 8-16 from the 2-4 profile:\n"
            << "  predicted " << util::Table::fmt(predicted.total(), 2)
            << "s, actual "
            << util::Table::fmt(actual.timing.total.total(), 2)
            << "s, relative error "
            << util::Table::pct(util::relative_error(
                   actual.timing.total.total(), predicted.total()))
            << "\n";

  store.remove(spec.name);
  return 0;
}
