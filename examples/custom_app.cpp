// custom_app — writing your own FREERIDE-G application.
//
// The middleware API asks for exactly four things: a reduction object, a
// per-chunk local reduction, an associative/commutative merge, and a
// sequential global reduction. This example implements a per-dimension
// histogram application from scratch against the public API, runs it on
// the virtual grid, and shows that it immediately benefits from the
// performance prediction framework (its reduction object is constant-size,
// so the constant / linear-constant classes apply).
#include <iostream>

#include "core/ipc_probe.h"
#include "core/predictor.h"
#include "core/profile.h"
#include "datagen/points.h"
#include "freeride/runtime.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace fgp;

/// Reduction object: bin counts for one dimension of the point stream.
class HistogramObject final : public freeride::ReductionObject {
 public:
  HistogramObject() = default;
  explicit HistogramObject(std::size_t bins) : counts(bins, 0) {}

  void serialize(util::ByteWriter& w) const override {
    w.put_vector(counts);
    w.put_f64(lo);
    w.put_f64(hi);
  }
  void deserialize(util::ByteReader& r) override {
    counts = r.get_vector<std::uint64_t>();
    lo = r.get_f64();
    hi = r.get_f64();
  }

  std::vector<std::uint64_t> counts;
  double lo = 0.0, hi = 0.0;
};

/// Histogram of coordinate `axis` over [lo, hi) with `bins` buckets.
class HistogramKernel final : public freeride::ReductionKernel {
 public:
  HistogramKernel(int dim, int axis, double lo, double hi, std::size_t bins)
      : dim_(dim), axis_(axis), lo_(lo), hi_(hi), bins_(bins) {}

  std::string name() const override { return "histogram"; }

  std::unique_ptr<freeride::ReductionObject> create_object() const override {
    auto obj = std::make_unique<HistogramObject>(bins_);
    obj->lo = lo_;
    obj->hi = hi_;
    return obj;
  }

  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override {
    auto& h = dynamic_cast<HistogramObject&>(obj);
    const auto values = chunk.as_span<double>();
    const std::size_t d = static_cast<std::size_t>(dim_);
    const double width = (hi_ - lo_) / static_cast<double>(bins_);
    for (std::size_t p = 0; p * d + d <= values.size(); ++p) {
      const double x = values[p * d + static_cast<std::size_t>(axis_)];
      if (x < lo_ || x >= hi_) continue;
      const auto bin = static_cast<std::size_t>((x - lo_) / width);
      h.counts[std::min(bin, bins_ - 1)] += 1;
    }
    sim::Work w;
    w.flops = static_cast<double>(values.size() / d) * 4.0;
    w.bytes = static_cast<double>(values.size()) * sizeof(double);
    return w;
  }

  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override {
    auto& a = dynamic_cast<HistogramObject&>(into);
    const auto& b = dynamic_cast<const HistogramObject&>(other);
    for (std::size_t i = 0; i < a.counts.size(); ++i)
      a.counts[i] += b.counts[i];
    return {static_cast<double>(bins_), static_cast<double>(bins_) * 16.0};
  }

  sim::Work global_reduce(freeride::ReductionObject&,
                          bool& more_passes) override {
    more_passes = false;  // single pass
    return {static_cast<double>(bins_), 0.0};
  }

 private:
  int dim_;
  int axis_;
  double lo_, hi_;
  std::size_t bins_;
};

}  // namespace

int main() {
  // A 350 MB (virtual) point stream.
  auto spec = datagen::scaled_points_spec(350.0, 2.0, 8, 42);
  spec.num_components = 3;
  const auto points = datagen::generate_points(spec);

  HistogramKernel kernel(/*dim=*/8, /*axis=*/0, /*lo=*/-15.0, /*hi=*/15.0,
                         /*bins=*/24);

  freeride::JobSetup setup;
  setup.dataset = &points.dataset;
  setup.data_cluster = sim::cluster_pentium_myrinet();
  setup.compute_cluster = sim::cluster_pentium_myrinet();
  setup.wan = sim::wan_mbps(80.0);
  setup.config.data_nodes = 2;
  setup.config.compute_nodes = 8;

  const auto result = freeride::Runtime().run(setup, kernel);
  const auto& hist = dynamic_cast<const HistogramObject&>(*result.result);

  std::cout << "histogram of coordinate 0 (" << hist.counts.size()
            << " bins over [" << hist.lo << ", " << hist.hi << ")):\n";
  std::uint64_t peak = 1;
  for (const auto c : hist.counts) peak = std::max(peak, c);
  for (std::size_t i = 0; i < hist.counts.size(); ++i) {
    const auto stars =
        static_cast<std::size_t>(48.0 * static_cast<double>(hist.counts[i]) /
                                 static_cast<double>(peak));
    std::cout << "  " << util::Table::fmt(
                     hist.lo + (hist.hi - hist.lo) *
                                   static_cast<double>(i) /
                                   static_cast<double>(hist.counts.size()),
                     1)
              << "\t" << std::string(stars, '*') << "\n";
  }

  // The prediction framework works on the custom app out of the box.
  const core::Profile profile =
      core::ProfileCollector::from_result(setup, kernel.name(), result);
  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = {core::RoSizeClass::Constant,
                  core::GlobalReductionClass::LinearConstant};
  opts.ipc = core::measure_ipc(setup.compute_cluster);
  core::ProfileConfig target = profile.config;
  target.data_nodes = 8;
  target.compute_nodes = 16;
  const auto predicted = core::Predictor(profile, opts).predict(target);

  HistogramKernel verify(8, 0, -15.0, 15.0, 24);
  setup.config.data_nodes = 8;
  setup.config.compute_nodes = 16;
  const auto actual = freeride::Runtime().run(setup, verify);
  std::cout << "\npredicted 8-16 time "
            << util::Table::fmt(predicted.total(), 2) << "s vs actual "
            << util::Table::fmt(actual.timing.total.total(), 2)
            << "s (error "
            << util::Table::pct(util::relative_error(
                   actual.timing.total.total(), predicted.total()))
            << ")\n";
  return 0;
}
