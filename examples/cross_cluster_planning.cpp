// cross_cluster_planning — predicting for hardware you never profiled on.
//
// The EM application is profiled on the Pentium/Myrinet cluster only.
// Three representative applications (k-means, k-NN, vortex) run on both
// clusters to calibrate component scaling factors, after which the
// framework predicts EM execution times on the Opteron/InfiniBand cluster
// across node counts — the paper's §3.4 workflow.
#include <iostream>

#include "apps/em.h"
#include "apps/kmeans.h"
#include "apps/knn.h"
#include "apps/vortex.h"
#include "core/hetero.h"
#include "core/ipc_probe.h"
#include "datagen/flowfield.h"
#include "datagen/points.h"
#include "freeride/runtime.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace fgp;

core::Profile profile_on(const repository::ChunkedDataset& ds,
                         freeride::ReductionKernel& kernel,
                         const sim::ClusterSpec& cluster, int n, int c) {
  freeride::JobSetup setup;
  setup.dataset = &ds;
  setup.data_cluster = cluster;
  setup.compute_cluster = cluster;
  setup.wan = sim::wan_mbps(80.0);
  setup.config.data_nodes = n;
  setup.config.compute_nodes = c;
  return core::ProfileCollector::collect(setup, kernel);
}

}  // namespace

int main() {
  const auto pentium = sim::cluster_pentium_myrinet();
  const auto opteron = sim::cluster_opteron_infiniband();

  // Shared point data for the clustering apps.
  auto spec = datagen::scaled_points_spec(350.0, 1.0, 8, 42);
  spec.num_components = 4;
  const auto points = datagen::generate_points(spec);

  datagen::FlowSpec flow_spec;
  flow_spec.width = 192;
  flow_spec.height = 192;
  flow_spec.rows_per_chunk = 4;
  flow_spec.virtual_scale = 350e6 / (192.0 * 192.0 * sizeof(datagen::Vec2f));
  const auto flow = datagen::generate_flowfield(flow_spec);

  // Representative apps on identical 2-4 configurations on both clusters.
  std::vector<core::Profile> on_a, on_b;
  auto add_pair = [&](auto make_kernel, const repository::ChunkedDataset& ds,
                      const std::string& name) {
    auto ka = make_kernel();
    auto kb = make_kernel();
    on_a.push_back(profile_on(ds, *ka, pentium, 2, 4));
    on_a.back().app = name;
    on_b.push_back(profile_on(ds, *kb, opteron, 2, 4));
    on_b.back().app = name;
  };

  apps::KMeansParams km;
  km.k = 8;
  km.dim = 8;
  km.initial_centers =
      apps::initial_centers_from_dataset(points.dataset, 8, 8);
  km.fixed_passes = 5;
  add_pair([&] { return std::make_unique<apps::KMeansKernel>(km); },
           points.dataset, "kmeans");

  apps::KnnParams kn;
  kn.k = 16;
  kn.dim = 8;
  kn.queries = apps::initial_centers_from_dataset(points.dataset, 8, 8);
  add_pair([&] { return std::make_unique<apps::KnnKernel>(kn); },
           points.dataset, "knn");

  apps::VortexParams vx;
  add_pair([&] { return std::make_unique<apps::VortexKernel>(vx); },
           flow.dataset, "vortex");

  const auto factors = core::compute_scaling_factors(on_a, on_b);
  std::cout << "scaling factors pentium -> opteron: s_d="
            << util::Table::fmt(factors.disk, 3)
            << "  s_n=" << util::Table::fmt(factors.network, 3)
            << "  s_c=" << util::Table::fmt(factors.compute, 3) << "\n\n";

  // The target app (EM) is profiled on the Pentium cluster only.
  apps::EMParams em;
  em.g = 4;
  em.dim = 8;
  em.initial_means = apps::initial_centers_from_dataset(points.dataset, 4, 8);
  em.fixed_passes = 8;
  apps::EMKernel em_kernel(em);
  const core::Profile profile =
      profile_on(points.dataset, em_kernel, pentium, 2, 4);

  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = {core::RoSizeClass::LinearWithData,
                  core::GlobalReductionClass::ConstantLinear};
  opts.ipc = core::measure_ipc(pentium);
  const core::HeteroPredictor predictor(core::Predictor(profile, opts),
                                        factors);

  util::Table table({"config", "T_pred on opteron (s)", "T_actual (s)",
                     "error"});
  for (const auto& [n, c] :
       std::vector<std::pair<int, int>>{{2, 4}, {4, 8}, {8, 16}}) {
    core::ProfileConfig target = profile.config;
    target.data_nodes = n;
    target.compute_nodes = c;
    const auto predicted = predictor.predict(target);

    apps::EMKernel verify(em);
    freeride::JobSetup setup;
    setup.dataset = &points.dataset;
    setup.data_cluster = opteron;
    setup.compute_cluster = opteron;
    setup.wan = sim::wan_mbps(80.0);
    setup.config.data_nodes = n;
    setup.config.compute_nodes = c;
    const auto actual = freeride::Runtime().run(setup, verify);
    table.add_row(
        {std::to_string(n) + "-" + std::to_string(c),
         util::Table::fmt(predicted.total(), 2),
         util::Table::fmt(actual.timing.total.total(), 2),
         util::Table::pct(util::relative_error(actual.timing.total.total(),
                                               predicted.total()))});
  }
  table.print(std::cout);
  return 0;
}
