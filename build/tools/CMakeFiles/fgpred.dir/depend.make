# Empty dependencies file for fgpred.
# This may be replaced when dependencies are built.
