file(REMOVE_RECURSE
  "CMakeFiles/fgpred.dir/fgpred.cpp.o"
  "CMakeFiles/fgpred.dir/fgpred.cpp.o.d"
  "fgpred"
  "fgpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
