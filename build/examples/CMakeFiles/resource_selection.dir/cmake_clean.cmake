file(REMOVE_RECURSE
  "CMakeFiles/resource_selection.dir/resource_selection.cpp.o"
  "CMakeFiles/resource_selection.dir/resource_selection.cpp.o.d"
  "resource_selection"
  "resource_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
