file(REMOVE_RECURSE
  "CMakeFiles/cross_cluster_planning.dir/cross_cluster_planning.cpp.o"
  "CMakeFiles/cross_cluster_planning.dir/cross_cluster_planning.cpp.o.d"
  "cross_cluster_planning"
  "cross_cluster_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_cluster_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
