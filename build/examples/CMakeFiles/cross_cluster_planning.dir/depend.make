# Empty dependencies file for cross_cluster_planning.
# This may be replaced when dependencies are built.
