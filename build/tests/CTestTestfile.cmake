# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_repository[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_freeride[1]_include.cmake")
include("/root/repo/build/tests/test_datagen[1]_include.cmake")
include("/root/repo/build/tests/test_kmeans[1]_include.cmake")
include("/root/repo/build/tests/test_em[1]_include.cmake")
include("/root/repo/build/tests/test_knn[1]_include.cmake")
include("/root/repo/build/tests/test_vortex[1]_include.cmake")
include("/root/repo/build/tests/test_defect[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_smp[1]_include.cmake")
include("/root/repo/build/tests/test_caching[1]_include.cmake")
include("/root/repo/build/tests/test_bandwidth[1]_include.cmake")
include("/root/repo/build/tests/test_apriori[1]_include.cmake")
include("/root/repo/build/tests/test_ann[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_calibrate[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_predictor_properties[1]_include.cmake")
include("/root/repo/build/tests/test_vortex3d[1]_include.cmake")
include("/root/repo/build/tests/test_mixed_clusters[1]_include.cmake")
