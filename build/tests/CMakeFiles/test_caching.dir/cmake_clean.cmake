file(REMOVE_RECURSE
  "CMakeFiles/test_caching.dir/test_caching.cpp.o"
  "CMakeFiles/test_caching.dir/test_caching.cpp.o.d"
  "test_caching"
  "test_caching.pdb"
  "test_caching[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
