# Empty compiler generated dependencies file for test_ann.
# This may be replaced when dependencies are built.
