file(REMOVE_RECURSE
  "CMakeFiles/test_freeride.dir/test_freeride.cpp.o"
  "CMakeFiles/test_freeride.dir/test_freeride.cpp.o.d"
  "test_freeride"
  "test_freeride.pdb"
  "test_freeride[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_freeride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
