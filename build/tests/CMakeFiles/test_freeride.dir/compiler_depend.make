# Empty compiler generated dependencies file for test_freeride.
# This may be replaced when dependencies are built.
