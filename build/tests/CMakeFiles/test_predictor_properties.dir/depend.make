# Empty dependencies file for test_predictor_properties.
# This may be replaced when dependencies are built.
