file(REMOVE_RECURSE
  "CMakeFiles/test_predictor_properties.dir/test_predictor_properties.cpp.o"
  "CMakeFiles/test_predictor_properties.dir/test_predictor_properties.cpp.o.d"
  "test_predictor_properties"
  "test_predictor_properties.pdb"
  "test_predictor_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictor_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
