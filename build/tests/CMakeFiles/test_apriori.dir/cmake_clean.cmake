file(REMOVE_RECURSE
  "CMakeFiles/test_apriori.dir/test_apriori.cpp.o"
  "CMakeFiles/test_apriori.dir/test_apriori.cpp.o.d"
  "test_apriori"
  "test_apriori.pdb"
  "test_apriori[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apriori.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
