# Empty dependencies file for test_apriori.
# This may be replaced when dependencies are built.
