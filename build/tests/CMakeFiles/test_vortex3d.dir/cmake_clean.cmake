file(REMOVE_RECURSE
  "CMakeFiles/test_vortex3d.dir/test_vortex3d.cpp.o"
  "CMakeFiles/test_vortex3d.dir/test_vortex3d.cpp.o.d"
  "test_vortex3d"
  "test_vortex3d.pdb"
  "test_vortex3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vortex3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
