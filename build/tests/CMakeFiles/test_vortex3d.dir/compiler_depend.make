# Empty compiler generated dependencies file for test_vortex3d.
# This may be replaced when dependencies are built.
