# Empty compiler generated dependencies file for test_vortex.
# This may be replaced when dependencies are built.
