file(REMOVE_RECURSE
  "CMakeFiles/test_vortex.dir/test_vortex.cpp.o"
  "CMakeFiles/test_vortex.dir/test_vortex.cpp.o.d"
  "test_vortex"
  "test_vortex.pdb"
  "test_vortex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vortex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
