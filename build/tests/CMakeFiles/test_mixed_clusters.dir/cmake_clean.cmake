file(REMOVE_RECURSE
  "CMakeFiles/test_mixed_clusters.dir/test_mixed_clusters.cpp.o"
  "CMakeFiles/test_mixed_clusters.dir/test_mixed_clusters.cpp.o.d"
  "test_mixed_clusters"
  "test_mixed_clusters.pdb"
  "test_mixed_clusters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixed_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
