# Empty compiler generated dependencies file for test_mixed_clusters.
# This may be replaced when dependencies are built.
