
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repository/chunk.cpp" "src/repository/CMakeFiles/fgp_repository.dir/chunk.cpp.o" "gcc" "src/repository/CMakeFiles/fgp_repository.dir/chunk.cpp.o.d"
  "/root/repo/src/repository/dataset.cpp" "src/repository/CMakeFiles/fgp_repository.dir/dataset.cpp.o" "gcc" "src/repository/CMakeFiles/fgp_repository.dir/dataset.cpp.o.d"
  "/root/repo/src/repository/partition.cpp" "src/repository/CMakeFiles/fgp_repository.dir/partition.cpp.o" "gcc" "src/repository/CMakeFiles/fgp_repository.dir/partition.cpp.o.d"
  "/root/repo/src/repository/store.cpp" "src/repository/CMakeFiles/fgp_repository.dir/store.cpp.o" "gcc" "src/repository/CMakeFiles/fgp_repository.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
