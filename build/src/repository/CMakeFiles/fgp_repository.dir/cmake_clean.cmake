file(REMOVE_RECURSE
  "CMakeFiles/fgp_repository.dir/chunk.cpp.o"
  "CMakeFiles/fgp_repository.dir/chunk.cpp.o.d"
  "CMakeFiles/fgp_repository.dir/dataset.cpp.o"
  "CMakeFiles/fgp_repository.dir/dataset.cpp.o.d"
  "CMakeFiles/fgp_repository.dir/partition.cpp.o"
  "CMakeFiles/fgp_repository.dir/partition.cpp.o.d"
  "CMakeFiles/fgp_repository.dir/store.cpp.o"
  "CMakeFiles/fgp_repository.dir/store.cpp.o.d"
  "libfgp_repository.a"
  "libfgp_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
