# Empty dependencies file for fgp_repository.
# This may be replaced when dependencies are built.
