file(REMOVE_RECURSE
  "libfgp_repository.a"
)
