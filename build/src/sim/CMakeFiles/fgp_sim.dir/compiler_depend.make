# Empty compiler generated dependencies file for fgp_sim.
# This may be replaced when dependencies are built.
