file(REMOVE_RECURSE
  "libfgp_sim.a"
)
