file(REMOVE_RECURSE
  "CMakeFiles/fgp_sim.dir/cluster.cpp.o"
  "CMakeFiles/fgp_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/fgp_sim.dir/machine.cpp.o"
  "CMakeFiles/fgp_sim.dir/machine.cpp.o.d"
  "CMakeFiles/fgp_sim.dir/network.cpp.o"
  "CMakeFiles/fgp_sim.dir/network.cpp.o.d"
  "libfgp_sim.a"
  "libfgp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
