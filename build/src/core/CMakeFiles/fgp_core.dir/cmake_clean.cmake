file(REMOVE_RECURSE
  "CMakeFiles/fgp_core.dir/cache_planner.cpp.o"
  "CMakeFiles/fgp_core.dir/cache_planner.cpp.o.d"
  "CMakeFiles/fgp_core.dir/calibrate.cpp.o"
  "CMakeFiles/fgp_core.dir/calibrate.cpp.o.d"
  "CMakeFiles/fgp_core.dir/classes.cpp.o"
  "CMakeFiles/fgp_core.dir/classes.cpp.o.d"
  "CMakeFiles/fgp_core.dir/hetero.cpp.o"
  "CMakeFiles/fgp_core.dir/hetero.cpp.o.d"
  "CMakeFiles/fgp_core.dir/ipc_probe.cpp.o"
  "CMakeFiles/fgp_core.dir/ipc_probe.cpp.o.d"
  "CMakeFiles/fgp_core.dir/predictor.cpp.o"
  "CMakeFiles/fgp_core.dir/predictor.cpp.o.d"
  "CMakeFiles/fgp_core.dir/profile.cpp.o"
  "CMakeFiles/fgp_core.dir/profile.cpp.o.d"
  "CMakeFiles/fgp_core.dir/scheduler.cpp.o"
  "CMakeFiles/fgp_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/fgp_core.dir/selector.cpp.o"
  "CMakeFiles/fgp_core.dir/selector.cpp.o.d"
  "libfgp_core.a"
  "libfgp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
