
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_planner.cpp" "src/core/CMakeFiles/fgp_core.dir/cache_planner.cpp.o" "gcc" "src/core/CMakeFiles/fgp_core.dir/cache_planner.cpp.o.d"
  "/root/repo/src/core/calibrate.cpp" "src/core/CMakeFiles/fgp_core.dir/calibrate.cpp.o" "gcc" "src/core/CMakeFiles/fgp_core.dir/calibrate.cpp.o.d"
  "/root/repo/src/core/classes.cpp" "src/core/CMakeFiles/fgp_core.dir/classes.cpp.o" "gcc" "src/core/CMakeFiles/fgp_core.dir/classes.cpp.o.d"
  "/root/repo/src/core/hetero.cpp" "src/core/CMakeFiles/fgp_core.dir/hetero.cpp.o" "gcc" "src/core/CMakeFiles/fgp_core.dir/hetero.cpp.o.d"
  "/root/repo/src/core/ipc_probe.cpp" "src/core/CMakeFiles/fgp_core.dir/ipc_probe.cpp.o" "gcc" "src/core/CMakeFiles/fgp_core.dir/ipc_probe.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/fgp_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/fgp_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/fgp_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/fgp_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/fgp_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/fgp_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "src/core/CMakeFiles/fgp_core.dir/selector.cpp.o" "gcc" "src/core/CMakeFiles/fgp_core.dir/selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/freeride/CMakeFiles/fgp_freeride.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/fgp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/repository/CMakeFiles/fgp_repository.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
