file(REMOVE_RECURSE
  "libfgp_core.a"
)
