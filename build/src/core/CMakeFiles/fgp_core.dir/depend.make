# Empty dependencies file for fgp_core.
# This may be replaced when dependencies are built.
