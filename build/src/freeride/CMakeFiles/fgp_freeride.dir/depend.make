# Empty dependencies file for fgp_freeride.
# This may be replaced when dependencies are built.
