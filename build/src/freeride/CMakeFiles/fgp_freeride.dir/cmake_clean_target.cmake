file(REMOVE_RECURSE
  "libfgp_freeride.a"
)
