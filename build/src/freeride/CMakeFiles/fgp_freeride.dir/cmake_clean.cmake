file(REMOVE_RECURSE
  "CMakeFiles/fgp_freeride.dir/cache.cpp.o"
  "CMakeFiles/fgp_freeride.dir/cache.cpp.o.d"
  "CMakeFiles/fgp_freeride.dir/config.cpp.o"
  "CMakeFiles/fgp_freeride.dir/config.cpp.o.d"
  "CMakeFiles/fgp_freeride.dir/runtime.cpp.o"
  "CMakeFiles/fgp_freeride.dir/runtime.cpp.o.d"
  "CMakeFiles/fgp_freeride.dir/timing.cpp.o"
  "CMakeFiles/fgp_freeride.dir/timing.cpp.o.d"
  "libfgp_freeride.a"
  "libfgp_freeride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_freeride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
