
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/freeride/cache.cpp" "src/freeride/CMakeFiles/fgp_freeride.dir/cache.cpp.o" "gcc" "src/freeride/CMakeFiles/fgp_freeride.dir/cache.cpp.o.d"
  "/root/repo/src/freeride/config.cpp" "src/freeride/CMakeFiles/fgp_freeride.dir/config.cpp.o" "gcc" "src/freeride/CMakeFiles/fgp_freeride.dir/config.cpp.o.d"
  "/root/repo/src/freeride/runtime.cpp" "src/freeride/CMakeFiles/fgp_freeride.dir/runtime.cpp.o" "gcc" "src/freeride/CMakeFiles/fgp_freeride.dir/runtime.cpp.o.d"
  "/root/repo/src/freeride/timing.cpp" "src/freeride/CMakeFiles/fgp_freeride.dir/timing.cpp.o" "gcc" "src/freeride/CMakeFiles/fgp_freeride.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/repository/CMakeFiles/fgp_repository.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
