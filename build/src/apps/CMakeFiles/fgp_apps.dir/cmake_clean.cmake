file(REMOVE_RECURSE
  "CMakeFiles/fgp_apps.dir/ann.cpp.o"
  "CMakeFiles/fgp_apps.dir/ann.cpp.o.d"
  "CMakeFiles/fgp_apps.dir/apriori.cpp.o"
  "CMakeFiles/fgp_apps.dir/apriori.cpp.o.d"
  "CMakeFiles/fgp_apps.dir/defect.cpp.o"
  "CMakeFiles/fgp_apps.dir/defect.cpp.o.d"
  "CMakeFiles/fgp_apps.dir/em.cpp.o"
  "CMakeFiles/fgp_apps.dir/em.cpp.o.d"
  "CMakeFiles/fgp_apps.dir/kmeans.cpp.o"
  "CMakeFiles/fgp_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/fgp_apps.dir/knn.cpp.o"
  "CMakeFiles/fgp_apps.dir/knn.cpp.o.d"
  "CMakeFiles/fgp_apps.dir/knn_classify.cpp.o"
  "CMakeFiles/fgp_apps.dir/knn_classify.cpp.o.d"
  "CMakeFiles/fgp_apps.dir/vortex.cpp.o"
  "CMakeFiles/fgp_apps.dir/vortex.cpp.o.d"
  "CMakeFiles/fgp_apps.dir/vortex3d.cpp.o"
  "CMakeFiles/fgp_apps.dir/vortex3d.cpp.o.d"
  "libfgp_apps.a"
  "libfgp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
