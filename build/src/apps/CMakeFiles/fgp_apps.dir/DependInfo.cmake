
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/ann.cpp" "src/apps/CMakeFiles/fgp_apps.dir/ann.cpp.o" "gcc" "src/apps/CMakeFiles/fgp_apps.dir/ann.cpp.o.d"
  "/root/repo/src/apps/apriori.cpp" "src/apps/CMakeFiles/fgp_apps.dir/apriori.cpp.o" "gcc" "src/apps/CMakeFiles/fgp_apps.dir/apriori.cpp.o.d"
  "/root/repo/src/apps/defect.cpp" "src/apps/CMakeFiles/fgp_apps.dir/defect.cpp.o" "gcc" "src/apps/CMakeFiles/fgp_apps.dir/defect.cpp.o.d"
  "/root/repo/src/apps/em.cpp" "src/apps/CMakeFiles/fgp_apps.dir/em.cpp.o" "gcc" "src/apps/CMakeFiles/fgp_apps.dir/em.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/apps/CMakeFiles/fgp_apps.dir/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/fgp_apps.dir/kmeans.cpp.o.d"
  "/root/repo/src/apps/knn.cpp" "src/apps/CMakeFiles/fgp_apps.dir/knn.cpp.o" "gcc" "src/apps/CMakeFiles/fgp_apps.dir/knn.cpp.o.d"
  "/root/repo/src/apps/knn_classify.cpp" "src/apps/CMakeFiles/fgp_apps.dir/knn_classify.cpp.o" "gcc" "src/apps/CMakeFiles/fgp_apps.dir/knn_classify.cpp.o.d"
  "/root/repo/src/apps/vortex.cpp" "src/apps/CMakeFiles/fgp_apps.dir/vortex.cpp.o" "gcc" "src/apps/CMakeFiles/fgp_apps.dir/vortex.cpp.o.d"
  "/root/repo/src/apps/vortex3d.cpp" "src/apps/CMakeFiles/fgp_apps.dir/vortex3d.cpp.o" "gcc" "src/apps/CMakeFiles/fgp_apps.dir/vortex3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/freeride/CMakeFiles/fgp_freeride.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/fgp_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/repository/CMakeFiles/fgp_repository.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
