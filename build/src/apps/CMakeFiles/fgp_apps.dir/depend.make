# Empty dependencies file for fgp_apps.
# This may be replaced when dependencies are built.
