file(REMOVE_RECURSE
  "libfgp_apps.a"
)
