file(REMOVE_RECURSE
  "libfgp_grid.a"
)
