# Empty compiler generated dependencies file for fgp_grid.
# This may be replaced when dependencies are built.
