
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/bandwidth.cpp" "src/grid/CMakeFiles/fgp_grid.dir/bandwidth.cpp.o" "gcc" "src/grid/CMakeFiles/fgp_grid.dir/bandwidth.cpp.o.d"
  "/root/repo/src/grid/catalog.cpp" "src/grid/CMakeFiles/fgp_grid.dir/catalog.cpp.o" "gcc" "src/grid/CMakeFiles/fgp_grid.dir/catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
