file(REMOVE_RECURSE
  "CMakeFiles/fgp_grid.dir/bandwidth.cpp.o"
  "CMakeFiles/fgp_grid.dir/bandwidth.cpp.o.d"
  "CMakeFiles/fgp_grid.dir/catalog.cpp.o"
  "CMakeFiles/fgp_grid.dir/catalog.cpp.o.d"
  "libfgp_grid.a"
  "libfgp_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
