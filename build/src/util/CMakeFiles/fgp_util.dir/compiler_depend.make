# Empty compiler generated dependencies file for fgp_util.
# This may be replaced when dependencies are built.
