file(REMOVE_RECURSE
  "CMakeFiles/fgp_util.dir/serial.cpp.o"
  "CMakeFiles/fgp_util.dir/serial.cpp.o.d"
  "CMakeFiles/fgp_util.dir/stats.cpp.o"
  "CMakeFiles/fgp_util.dir/stats.cpp.o.d"
  "CMakeFiles/fgp_util.dir/table.cpp.o"
  "CMakeFiles/fgp_util.dir/table.cpp.o.d"
  "CMakeFiles/fgp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fgp_util.dir/thread_pool.cpp.o.d"
  "libfgp_util.a"
  "libfgp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
