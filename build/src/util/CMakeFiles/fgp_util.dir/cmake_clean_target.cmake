file(REMOVE_RECURSE
  "libfgp_util.a"
)
