file(REMOVE_RECURSE
  "libfgp_datagen.a"
)
