# Empty dependencies file for fgp_datagen.
# This may be replaced when dependencies are built.
