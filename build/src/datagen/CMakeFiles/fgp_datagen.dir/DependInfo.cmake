
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/flowfield.cpp" "src/datagen/CMakeFiles/fgp_datagen.dir/flowfield.cpp.o" "gcc" "src/datagen/CMakeFiles/fgp_datagen.dir/flowfield.cpp.o.d"
  "/root/repo/src/datagen/flowfield3d.cpp" "src/datagen/CMakeFiles/fgp_datagen.dir/flowfield3d.cpp.o" "gcc" "src/datagen/CMakeFiles/fgp_datagen.dir/flowfield3d.cpp.o.d"
  "/root/repo/src/datagen/lattice.cpp" "src/datagen/CMakeFiles/fgp_datagen.dir/lattice.cpp.o" "gcc" "src/datagen/CMakeFiles/fgp_datagen.dir/lattice.cpp.o.d"
  "/root/repo/src/datagen/points.cpp" "src/datagen/CMakeFiles/fgp_datagen.dir/points.cpp.o" "gcc" "src/datagen/CMakeFiles/fgp_datagen.dir/points.cpp.o.d"
  "/root/repo/src/datagen/transactions.cpp" "src/datagen/CMakeFiles/fgp_datagen.dir/transactions.cpp.o" "gcc" "src/datagen/CMakeFiles/fgp_datagen.dir/transactions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fgp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/repository/CMakeFiles/fgp_repository.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
