file(REMOVE_RECURSE
  "CMakeFiles/fgp_datagen.dir/flowfield.cpp.o"
  "CMakeFiles/fgp_datagen.dir/flowfield.cpp.o.d"
  "CMakeFiles/fgp_datagen.dir/flowfield3d.cpp.o"
  "CMakeFiles/fgp_datagen.dir/flowfield3d.cpp.o.d"
  "CMakeFiles/fgp_datagen.dir/lattice.cpp.o"
  "CMakeFiles/fgp_datagen.dir/lattice.cpp.o.d"
  "CMakeFiles/fgp_datagen.dir/points.cpp.o"
  "CMakeFiles/fgp_datagen.dir/points.cpp.o.d"
  "CMakeFiles/fgp_datagen.dir/transactions.cpp.o"
  "CMakeFiles/fgp_datagen.dir/transactions.cpp.o.d"
  "libfgp_datagen.a"
  "libfgp_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
