# Empty compiler generated dependencies file for fgp_datagen.
# This may be replaced when dependencies are built.
