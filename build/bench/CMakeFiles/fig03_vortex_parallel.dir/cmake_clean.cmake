file(REMOVE_RECURSE
  "CMakeFiles/fig03_vortex_parallel.dir/fig03_vortex_parallel.cpp.o"
  "CMakeFiles/fig03_vortex_parallel.dir/fig03_vortex_parallel.cpp.o.d"
  "fig03_vortex_parallel"
  "fig03_vortex_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_vortex_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
