# Empty compiler generated dependencies file for fig03_vortex_parallel.
# This may be replaced when dependencies are built.
