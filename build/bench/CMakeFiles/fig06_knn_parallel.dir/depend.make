# Empty dependencies file for fig06_knn_parallel.
# This may be replaced when dependencies are built.
