file(REMOVE_RECURSE
  "CMakeFiles/fig06_knn_parallel.dir/fig06_knn_parallel.cpp.o"
  "CMakeFiles/fig06_knn_parallel.dir/fig06_knn_parallel.cpp.o.d"
  "fig06_knn_parallel"
  "fig06_knn_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_knn_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
