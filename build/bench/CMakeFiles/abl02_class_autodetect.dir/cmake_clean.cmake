file(REMOVE_RECURSE
  "CMakeFiles/abl02_class_autodetect.dir/abl02_class_autodetect.cpp.o"
  "CMakeFiles/abl02_class_autodetect.dir/abl02_class_autodetect.cpp.o.d"
  "abl02_class_autodetect"
  "abl02_class_autodetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_class_autodetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
