# Empty dependencies file for abl02_class_autodetect.
# This may be replaced when dependencies are built.
