# Empty compiler generated dependencies file for ext04_new_apps.
# This may be replaced when dependencies are built.
