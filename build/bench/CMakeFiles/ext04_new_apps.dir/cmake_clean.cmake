file(REMOVE_RECURSE
  "CMakeFiles/ext04_new_apps.dir/ext04_new_apps.cpp.o"
  "CMakeFiles/ext04_new_apps.dir/ext04_new_apps.cpp.o.d"
  "ext04_new_apps"
  "ext04_new_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext04_new_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
