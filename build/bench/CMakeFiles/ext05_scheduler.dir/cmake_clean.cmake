file(REMOVE_RECURSE
  "CMakeFiles/ext05_scheduler.dir/ext05_scheduler.cpp.o"
  "CMakeFiles/ext05_scheduler.dir/ext05_scheduler.cpp.o.d"
  "ext05_scheduler"
  "ext05_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext05_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
