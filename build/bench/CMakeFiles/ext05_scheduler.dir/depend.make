# Empty dependencies file for ext05_scheduler.
# This may be replaced when dependencies are built.
