file(REMOVE_RECURSE
  "CMakeFiles/abl04_wrong_class.dir/abl04_wrong_class.cpp.o"
  "CMakeFiles/abl04_wrong_class.dir/abl04_wrong_class.cpp.o.d"
  "abl04_wrong_class"
  "abl04_wrong_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_wrong_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
