# Empty compiler generated dependencies file for abl04_wrong_class.
# This may be replaced when dependencies are built.
