file(REMOVE_RECURSE
  "CMakeFiles/ext01_smp.dir/ext01_smp.cpp.o"
  "CMakeFiles/ext01_smp.dir/ext01_smp.cpp.o.d"
  "ext01_smp"
  "ext01_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext01_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
