# Empty compiler generated dependencies file for ext01_smp.
# This may be replaced when dependencies are built.
