file(REMOVE_RECURSE
  "CMakeFiles/fig02_kmeans_parallel.dir/fig02_kmeans_parallel.cpp.o"
  "CMakeFiles/fig02_kmeans_parallel.dir/fig02_kmeans_parallel.cpp.o.d"
  "fig02_kmeans_parallel"
  "fig02_kmeans_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_kmeans_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
