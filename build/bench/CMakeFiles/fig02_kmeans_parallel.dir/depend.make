# Empty dependencies file for fig02_kmeans_parallel.
# This may be replaced when dependencies are built.
