file(REMOVE_RECURSE
  "CMakeFiles/fig13_vortex_hetero.dir/fig13_vortex_hetero.cpp.o"
  "CMakeFiles/fig13_vortex_hetero.dir/fig13_vortex_hetero.cpp.o.d"
  "fig13_vortex_hetero"
  "fig13_vortex_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_vortex_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
