file(REMOVE_RECURSE
  "CMakeFiles/fig08_defect_dataset_scaling.dir/fig08_defect_dataset_scaling.cpp.o"
  "CMakeFiles/fig08_defect_dataset_scaling.dir/fig08_defect_dataset_scaling.cpp.o.d"
  "fig08_defect_dataset_scaling"
  "fig08_defect_dataset_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_defect_dataset_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
