# Empty dependencies file for fig08_defect_dataset_scaling.
# This may be replaced when dependencies are built.
