
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_defect_dataset_scaling.cpp" "bench/CMakeFiles/fig08_defect_dataset_scaling.dir/fig08_defect_dataset_scaling.cpp.o" "gcc" "bench/CMakeFiles/fig08_defect_dataset_scaling.dir/fig08_defect_dataset_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fgp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/freeride/CMakeFiles/fgp_freeride.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/fgp_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/repository/CMakeFiles/fgp_repository.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/fgp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fgp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
