file(REMOVE_RECURSE
  "CMakeFiles/fig05_em_parallel.dir/fig05_em_parallel.cpp.o"
  "CMakeFiles/fig05_em_parallel.dir/fig05_em_parallel.cpp.o.d"
  "fig05_em_parallel"
  "fig05_em_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_em_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
