# Empty dependencies file for fig05_em_parallel.
# This may be replaced when dependencies are built.
