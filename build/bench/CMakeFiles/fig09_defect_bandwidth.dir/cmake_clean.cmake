file(REMOVE_RECURSE
  "CMakeFiles/fig09_defect_bandwidth.dir/fig09_defect_bandwidth.cpp.o"
  "CMakeFiles/fig09_defect_bandwidth.dir/fig09_defect_bandwidth.cpp.o.d"
  "fig09_defect_bandwidth"
  "fig09_defect_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_defect_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
