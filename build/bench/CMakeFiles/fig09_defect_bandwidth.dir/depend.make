# Empty dependencies file for fig09_defect_bandwidth.
# This may be replaced when dependencies are built.
