file(REMOVE_RECURSE
  "CMakeFiles/fig11_em_hetero.dir/fig11_em_hetero.cpp.o"
  "CMakeFiles/fig11_em_hetero.dir/fig11_em_hetero.cpp.o.d"
  "fig11_em_hetero"
  "fig11_em_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_em_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
