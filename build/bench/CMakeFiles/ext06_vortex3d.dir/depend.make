# Empty dependencies file for ext06_vortex3d.
# This may be replaced when dependencies are built.
