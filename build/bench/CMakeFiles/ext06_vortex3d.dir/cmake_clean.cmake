file(REMOVE_RECURSE
  "CMakeFiles/ext06_vortex3d.dir/ext06_vortex3d.cpp.o"
  "CMakeFiles/ext06_vortex3d.dir/ext06_vortex3d.cpp.o.d"
  "ext06_vortex3d"
  "ext06_vortex3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext06_vortex3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
