# Empty dependencies file for fig07_em_dataset_scaling.
# This may be replaced when dependencies are built.
