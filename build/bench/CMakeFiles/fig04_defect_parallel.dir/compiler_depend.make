# Empty compiler generated dependencies file for fig04_defect_parallel.
# This may be replaced when dependencies are built.
