file(REMOVE_RECURSE
  "CMakeFiles/fig04_defect_parallel.dir/fig04_defect_parallel.cpp.o"
  "CMakeFiles/fig04_defect_parallel.dir/fig04_defect_parallel.cpp.o.d"
  "fig04_defect_parallel"
  "fig04_defect_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_defect_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
