# Empty compiler generated dependencies file for ext02_nonlocal_caching.
# This may be replaced when dependencies are built.
