file(REMOVE_RECURSE
  "CMakeFiles/ext02_nonlocal_caching.dir/ext02_nonlocal_caching.cpp.o"
  "CMakeFiles/ext02_nonlocal_caching.dir/ext02_nonlocal_caching.cpp.o.d"
  "ext02_nonlocal_caching"
  "ext02_nonlocal_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext02_nonlocal_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
