file(REMOVE_RECURSE
  "CMakeFiles/ext03_overlap.dir/ext03_overlap.cpp.o"
  "CMakeFiles/ext03_overlap.dir/ext03_overlap.cpp.o.d"
  "ext03_overlap"
  "ext03_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext03_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
