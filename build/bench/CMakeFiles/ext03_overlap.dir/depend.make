# Empty dependencies file for ext03_overlap.
# This may be replaced when dependencies are built.
