file(REMOVE_RECURSE
  "CMakeFiles/abl01_caching.dir/abl01_caching.cpp.o"
  "CMakeFiles/abl01_caching.dir/abl01_caching.cpp.o.d"
  "abl01_caching"
  "abl01_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
