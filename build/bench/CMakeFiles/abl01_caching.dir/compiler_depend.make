# Empty compiler generated dependencies file for abl01_caching.
# This may be replaced when dependencies are built.
