file(REMOVE_RECURSE
  "CMakeFiles/fig12_defect_hetero.dir/fig12_defect_hetero.cpp.o"
  "CMakeFiles/fig12_defect_hetero.dir/fig12_defect_hetero.cpp.o.d"
  "fig12_defect_hetero"
  "fig12_defect_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_defect_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
