# Empty dependencies file for fig12_defect_hetero.
# This may be replaced when dependencies are built.
