# Empty compiler generated dependencies file for abl03_resource_selection.
# This may be replaced when dependencies are built.
