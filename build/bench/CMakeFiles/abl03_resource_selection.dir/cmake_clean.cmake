file(REMOVE_RECURSE
  "CMakeFiles/abl03_resource_selection.dir/abl03_resource_selection.cpp.o"
  "CMakeFiles/abl03_resource_selection.dir/abl03_resource_selection.cpp.o.d"
  "abl03_resource_selection"
  "abl03_resource_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_resource_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
