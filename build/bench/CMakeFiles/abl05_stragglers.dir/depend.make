# Empty dependencies file for abl05_stragglers.
# This may be replaced when dependencies are built.
