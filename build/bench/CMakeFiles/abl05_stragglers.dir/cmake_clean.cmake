file(REMOVE_RECURSE
  "CMakeFiles/abl05_stragglers.dir/abl05_stragglers.cpp.o"
  "CMakeFiles/abl05_stragglers.dir/abl05_stragglers.cpp.o.d"
  "abl05_stragglers"
  "abl05_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl05_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
