file(REMOVE_RECURSE
  "CMakeFiles/fig10_em_bandwidth.dir/fig10_em_bandwidth.cpp.o"
  "CMakeFiles/fig10_em_bandwidth.dir/fig10_em_bandwidth.cpp.o.d"
  "fig10_em_bandwidth"
  "fig10_em_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_em_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
