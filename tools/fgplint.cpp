// fgplint — project-invariant lint that clang-tidy cannot express.
//
// The prediction model is only falsifiable if every run of the virtual
// cluster is bit-deterministic, so the repo bans the ambient sources of
// nondeterminism at the source level and enforces the error-handling and
// hygiene conventions mechanically. Registered as a ctest ("fgplint"), so
// every preset (release / asan-ubsan / tsan) runs it.
//
// Rules (comments and string literals are stripped before matching):
//   wall-clock      std::chrono clocks, C time functions and <ctime> are
//                   forbidden in src/ outside src/util/ — virtual time
//                   must come from the phase engine; real-time access goes
//                   through util::Stopwatch (src/util/wallclock.h).
//   unseeded-rng    std::rand, srand, std::random_device are forbidden in
//                   src/ — all randomness derives from explicit seeds
//                   (util::Rng), or experiments stop being reproducible.
//   naked-new       `new` / `delete` expressions are forbidden everywhere;
//                   use std::make_unique / containers (`= delete` for
//                   special member functions is of course allowed).
//   header-hygiene  every .h must contain #pragma once.
//   check-convention  assert()/<cassert>/abort() are forbidden outside
//                   src/util/: input-dependent preconditions use
//                   FGP_CHECK, internal invariants use FGP_ASSERT (both
//                   from util/check.h); recoverable errors throw
//                   fgp::util::Error subclasses, never raw std exceptions.
//   console-io      std::cout/std::cerr/std::clog and printf-family calls
//                   are forbidden in src/ and tests/ — libraries report
//                   through return values, exceptions and the obs layer;
//                   only tools/, bench/ and examples/ own stdout/stderr.
//                   (snprintf-to-buffer formatting is fine.)
//   payload-const-cast  const_cast on the same line as `payload` is
//                   forbidden everywhere — chunk payload slabs are shared
//                   immutable views (DESIGN.md §13); writing through one
//                   corrupts every aliasing chunk and any mmap'd file
//                   region behind it.
//   formatting      no tabs, no trailing whitespace, no CRLF, newline at
//                   end of file (the mechanical subset of .clang-format,
//                   enforced even where clang-format is not installed).
//   allow-hygiene   a blanket allow annotation (no rule name) is itself
//                   an error — exemptions must name the rule they exempt.
//
// Scope: the walker visits src/, tests/, bench/, examples/ and tools/
// (skipping the deliberately-dirty tests/lint_fixtures corpus, which is
// exercised by tests/test_fgpcheck.cpp instead). naked-new,
// header-hygiene, formatting and payload-const-cast apply everywhere;
// wall-clock and unseeded-rng bind src/ (minus src/util/ for wall-clock);
// check-convention binds everything outside src/util/; console-io binds
// src/ and tests/.
//
// Escape hatch: a line whose trailing // comment contains the tool-name
// prefix followed by `allow(<rule>)` is exempt from that one rule on that
// line. Annotations only count inside a // comment; every one is counted
// and reported in the exemption summary so allow-creep stays visible in
// CI logs. tools/fgpcheck honors the same syntax under its own prefix.
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blanks comments, string literals (including raw strings) and character
/// literals, preserving newlines so line numbers survive.
std::string strip_comments_and_strings(const std::string& in) {
  std::string out = in;
  enum class State { Code, LineComment, BlockComment, Str, Chr, RawStr };
  State state = State::Code;
  std::string raw_delim;  // the )delim" terminator of a raw string
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_word_char(in[i - 1]))) {
          std::size_t p = i + 2;
          std::string delim;
          while (p < in.size() && in[p] != '(') delim += in[p++];
          raw_delim = ")" + delim + "\"";
          state = State::RawStr;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::Str;
          out[i] = ' ';
        } else if (c == '\'' && (i == 0 || !is_word_char(in[i - 1]))) {
          // Word-char guard keeps digit separators (1'000'000) in code.
          state = State::Chr;
          out[i] = ' ';
        }
        break;
      case State::LineComment:
        if (c == '\n')
          state = State::Code;
        else
          out[i] = ' ';
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Str:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Chr:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::RawStr:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// True when `token` occurs in `line` delimited by non-word characters.
bool has_word(std::string_view line, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_word_char(line[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// True when `name` occurs as a word immediately followed by '('.
bool has_call(std::string_view line, std::string_view name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    std::size_t end = pos + name.size();
    while (end < line.size() && line[end] == ' ') ++end;
    if (left_ok && end < line.size() && line[end] == '(') return true;
    pos += 1;
  }
  return false;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

const char kAllowTag[] = "fgplint: " "allow";

/// Rules exempted on this raw line via an allow(rule) annotation with the
/// tool-name prefix; a blanket annotation (no rule) yields the special
/// entry "*". The tag only counts inside a // comment, so mentions in
/// string literals (this linter's own source, say) are inert.
std::set<std::string> allows_on(const std::string& line) {
  std::set<std::string> out;
  std::size_t pos = line.find("//");
  if (pos == std::string::npos) return out;
  while ((pos = line.find(kAllowTag, pos)) != std::string::npos) {
    std::size_t p = pos + sizeof(kAllowTag) - 1;
    if (p < line.size() && line[p] == '(') {
      const std::size_t close = line.find(')', p);
      if (close != std::string::npos && close > p + 1)
        out.insert(line.substr(p + 1, close - p - 1));
      else
        out.insert("*");
    } else {
      out.insert("*");
    }
    pos = p;
  }
  return out;
}

struct FileReport {
  std::vector<Finding> findings;
};

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  void lint_file(const fs::path& path) {
    const std::string rel =
        fs::relative(path, root_).generic_string();
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      add(rel, 0, "io", "cannot read file");
      return;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    const std::string raw = ss.str();
    const std::string stripped = strip_comments_and_strings(raw);
    const auto raw_lines = split_lines(raw);
    const auto code_lines = split_lines(stripped);

    const bool in_src = starts_with(rel, "src/");
    const bool in_util = starts_with(rel, "src/util/");
    const bool in_tests = starts_with(rel, "tests/");
    const bool is_header = path.extension() == ".h";

    if (is_header && raw.find("#pragma once") == std::string::npos)
      add(rel, 1, "header-hygiene", "header is missing #pragma once");
    if (!raw.empty() && raw.back() != '\n')
      add(rel, raw_lines.size(), "formatting", "no newline at end of file");

    const std::size_t first_finding = findings_.size();
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      const std::string& rline = raw_lines[i];
      const std::string& cline = i < code_lines.size() ? code_lines[i] : rline;
      const std::size_t ln = i + 1;

      check_formatting(rel, ln, rline);
      if (in_src && !in_util) check_wall_clock(rel, ln, cline);
      if (in_src) check_rng(rel, ln, cline);
      if (!in_util) check_check_convention(rel, ln, cline, in_src);
      if (in_src || in_tests) check_console_io(rel, ln, cline);
      check_naked_new(rel, ln, cline);
      check_payload_cast(rel, ln, cline);
    }

    // Allow-annotation pass: a named allow exempts its one rule on that
    // line (and is counted); a blanket allow exempts nothing and is an
    // allow-hygiene finding.
    std::vector<std::set<std::string>> allows(raw_lines.size());
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
      allows[i] = allows_on(raw_lines[i]);
      for (const auto& a : allows[i]) {
        if (a == "*")
          add(rel, i + 1, "allow-hygiene",
              "blanket allow annotation — name the rule being exempted: "
              "fgplint: " "allow(rule)");
        else
          ++exemptions_[a];
      }
    }
    findings_.erase(
        std::remove_if(findings_.begin() +
                           static_cast<std::ptrdiff_t>(first_finding),
                       findings_.end(),
                       [&](const Finding& f) {
                         return f.line >= 1 && f.line <= allows.size() &&
                                allows[f.line - 1].count(f.rule) != 0;
                       }),
        findings_.end());
  }

  int report() const {
    for (const auto& f : findings_)
      std::cerr << f.file << ':' << f.line << ": [" << f.rule << "] "
                << f.message << '\n';
    std::size_t exempted = 0;
    for (const auto& [rule, count] : exemptions_) exempted += count;
    if (!exemptions_.empty()) {
      std::cout << "fgplint: " << exempted << " exemption(s) by rule:\n";
      for (const auto& [rule, count] : exemptions_)
        std::cout << "  " << rule << " x" << count << '\n';
    }
    if (findings_.empty()) {
      std::cout << "fgplint: " << files_ << " files clean\n";
      return 0;
    }
    std::cerr << "fgplint: " << findings_.size() << " finding(s) in "
              << files_ << " files\n";
    return 1;
  }

  void count_file() { ++files_; }

 private:
  void add(std::string file, std::size_t line, std::string rule,
           std::string message) {
    findings_.push_back(
        {std::move(file), line, std::move(rule), std::move(message)});
  }

  void check_formatting(const std::string& rel, std::size_t ln,
                        const std::string& rline) {
    if (rline.find('\t') != std::string::npos)
      add(rel, ln, "formatting", "tab character (use spaces)");
    if (!rline.empty() && rline.back() == '\r')
      add(rel, ln, "formatting", "CRLF line ending");
    else if (!rline.empty() &&
             std::isspace(static_cast<unsigned char>(rline.back())) != 0)
      add(rel, ln, "formatting", "trailing whitespace");
  }

  void check_wall_clock(const std::string& rel, std::size_t ln,
                        const std::string& cline) {
    static const char* tokens[] = {"system_clock", "steady_clock",
                                   "high_resolution_clock", "clock_gettime",
                                   "gettimeofday", "timespec_get"};
    for (const char* t : tokens)
      if (has_word(cline, t))
        add(rel, ln, "wall-clock",
            std::string(t) +
                " outside src/util/ — virtual time must come from the "
                "phase engine; wrap real timing in util::Stopwatch");
    static const char* calls[] = {"time", "localtime", "gmtime", "clock"};
    for (const char* cfn : calls)
      if (has_call(cline, cfn))
        add(rel, ln, "wall-clock",
            std::string(cfn) + "() outside src/util/ — use util::Stopwatch");
    if (cline.find("#include <ctime>") != std::string::npos ||
        cline.find("#include <time.h>") != std::string::npos)
      add(rel, ln, "wall-clock", "<ctime> include outside src/util/");
  }

  void check_rng(const std::string& rel, std::size_t ln,
                 const std::string& cline) {
    if (has_word(cline, "random_device") || has_call(cline, "rand") ||
        has_call(cline, "srand"))
      add(rel, ln, "unseeded-rng",
          "unseeded randomness in src/ — derive all randomness from "
          "explicit seeds via util::Rng");
  }

  void check_check_convention(const std::string& rel, std::size_t ln,
                              const std::string& cline, bool in_src) {
    if (has_call(cline, "assert"))
      add(rel, ln, "check-convention",
          "assert() — use FGP_CHECK (input precondition) or FGP_ASSERT "
          "(internal invariant) from util/check.h");
    if (cline.find("#include <cassert>") != std::string::npos ||
        cline.find("#include <assert.h>") != std::string::npos)
      add(rel, ln, "check-convention", "<cassert> include — use util/check.h");
    if (in_src && has_call(cline, "abort"))
      add(rel, ln, "check-convention",
          "abort() outside src/util/ — use FGP_ASSERT from util/check.h");
    if (in_src && cline.find("throw std::") != std::string::npos)
      add(rel, ln, "check-convention",
          "raw std exception — throw a fgp::util::Error subclass");
  }

  void check_console_io(const std::string& rel, std::size_t ln,
                        const std::string& cline) {
    static const char* streams[] = {"cout", "cerr", "clog"};
    for (const char* s : streams)
      if (has_word(cline, s))
        add(rel, ln, "console-io",
            std::string("std::") + s +
                " outside tools/bench/examples — libraries report through "
                "return values, exceptions and the obs layer");
    static const char* calls[] = {"printf", "fprintf", "vfprintf", "puts",
                                  "fputs", "putchar", "fputc"};
    for (const char* cfn : calls)
      if (has_call(cline, cfn))
        add(rel, ln, "console-io",
            std::string(cfn) +
                "() outside tools/bench/examples — format into buffers "
                "(snprintf) or use the obs layer");
  }

  void check_naked_new(const std::string& rel, std::size_t ln,
                       const std::string& cline) {
    if (has_word(cline, "new"))
      add(rel, ln, "naked-new",
          "naked new — use std::make_unique/std::make_shared or a "
          "container");
    std::size_t pos = 0;
    while ((pos = cline.find("delete", pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !is_word_char(cline[pos - 1]);
      const std::size_t end = pos + 6;
      const bool right_ok = end >= cline.size() || !is_word_char(cline[end]);
      if (left_ok && right_ok) {
        // `= delete` (deleted special member functions) is idiomatic.
        std::size_t p = pos;
        while (p > 0 && cline[p - 1] == ' ') --p;
        if (p == 0 || cline[p - 1] != '=')
          add(rel, ln, "naked-new",
              "naked delete — owning raw pointers are forbidden");
      }
      pos += 6;
    }
  }

  void check_payload_cast(const std::string& rel, std::size_t ln,
                          const std::string& cline) {
    if (has_word(cline, "const_cast") &&
        cline.find("payload") != std::string::npos)
      add(rel, ln, "payload-const-cast",
          "const_cast on a payload — chunk payload slabs are shared "
          "immutable views (DESIGN.md §13); copy the bytes instead of "
          "writing through an alias");
  }

  fs::path root_;
  std::vector<Finding> findings_;
  std::map<std::string, std::size_t> exemptions_;
  std::size_t files_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::current_path();
  if (!fs::exists(root / "src")) {
    std::cerr << "fgplint: " << root.string()
              << " does not look like the fgpred repo root (no src/)\n";
    return 2;
  }

  Linter linter(root);
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".h" && ext != ".cpp") continue;
      // The fixture corpus deliberately breaks every contract; it is
      // linted by tests/test_fgpcheck.cpp, not the tree walk.
      if (entry.path().generic_string().find("lint_fixtures") !=
          std::string::npos)
        continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& f : files) {
    linter.count_file();
    linter.lint_file(f);
  }
  return linter.report();
}
