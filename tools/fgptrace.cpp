// fgptrace — inspect the observability layer's report files.
//
//   fgptrace --validate FILE...        structural validation (exit 1 on any
//                                      invalid file); the same checks CI
//                                      runs on recorded traces
//   fgptrace --summarize FILE          human summary of a trace, metrics
//                                      snapshot or residual report
//   fgptrace --diff A B                byte-compare two reports after
//                                      stripping host-domain content and
//                                      normalizing (exit 1 on difference)
//
// All three modes dispatch on the file's "schema" field
// (fgpred-trace-v1 / fgpred-metrics-v1 / fgpred-residuals-v1 /
// fgpred-slowlog-v1 / fgpred-drift-v1 / fgpred-snapshots-v1).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "util/check.h"

namespace {

using fgp::obs::ReportKind;
using fgp::obs::ValidationResult;
namespace json = fgp::obs::json;

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good())
    throw fgp::util::Error("cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

int cmd_validate(const std::vector<std::string>& files) {
  int failures = 0;
  for (const std::string& path : files) {
    ValidationResult r;
    try {
      r = fgp::obs::validate_report_text(read_file(path));
    } catch (const fgp::util::Error& e) {
      std::cout << path << ": FAIL (unreadable: " << e.what() << ")\n";
      ++failures;
      continue;
    }
    if (r.ok()) {
      std::cout << path << ": OK (" << fgp::obs::to_string(r.kind) << ")\n";
    } else {
      std::cout << path << ": FAIL (" << fgp::obs::to_string(r.kind) << ")\n";
      for (const std::string& e : r.errors) std::cout << "  - " << e << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

void summarize_trace(const json::Value& doc) {
  const auto& events = doc.find("traceEvents")->as_array();
  std::size_t spans = 0, completes = 0, meta = 0;
  std::map<std::string, std::size_t> per_process;
  std::map<long long, std::string> process_names;
  for (const json::Value& ev : events) {
    const std::string& ph = ev.find("ph")->as_string();
    if (ph == "M") {
      ++meta;
      const json::Value* name = ev.find("name");
      if (name != nullptr && name->as_string() == "process_name")
        process_names[static_cast<long long>(ev.find("pid")->as_number())] =
            ev.find("args")->find("name")->as_string();
      continue;
    }
    if (ph == "B") ++spans;
    if (ph == "X") ++completes;
    const long long pid = static_cast<long long>(ev.find("pid")->as_number());
    const auto it = process_names.find(pid);
    ++per_process[it != process_names.end() ? it->second
                                            : std::to_string(pid)];
  }
  std::cout << "trace: " << events.size() << " events (" << spans
            << " spans, " << completes << " complete, " << meta
            << " metadata)\n";
  for (const auto& [name, count] : per_process)
    std::cout << "  " << name << ": " << count << " events\n";

  // Service traces: summarize the per-query spans ("service/query" X
  // events) and check they nest inside the batch-level "service" spans.
  std::size_t queries = 0, outside = 0;
  double slowest_us = -1.0;
  std::string slowest_name;
  double batch_begin = 0.0, batch_end = 0.0;
  bool have_batch = false;
  for (const json::Value& ev : events) {
    const json::Value* cat = ev.find("cat");
    if (cat == nullptr || ev.find("ph")->as_string() != "X") continue;
    if (cat->as_string() != "service") continue;
    const double b = ev.find("ts")->as_number();
    const double e = b + ev.find("dur")->as_number();
    if (!have_batch || b < batch_begin) batch_begin = b;
    if (!have_batch || e > batch_end) batch_end = e;
    have_batch = true;
  }
  for (const json::Value& ev : events) {
    const json::Value* cat = ev.find("cat");
    if (cat == nullptr || cat->as_string() != "service/query") continue;
    ++queries;
    const double dur = ev.find("dur")->as_number();
    if (dur > slowest_us) {
      slowest_us = dur;
      slowest_name = ev.find("name")->as_string();
    }
    // 1 µs tolerance absorbs the exporter's strict-monotonicity bumps.
    const double b = ev.find("ts")->as_number();
    if (have_batch && (b < batch_begin - 1.0 || b + dur > batch_end + 1.0))
      ++outside;
  }
  if (queries > 0) {
    std::printf("  service queries: %zu spans, slowest %s at %.3f us\n",
                queries, slowest_name.c_str(), slowest_us);
    if (outside == 0)
      std::cout << "  service query nesting: ok (all inside batch spans)\n";
    else
      std::cout << "  service query nesting: " << outside
                << " span(s) outside the batch spans\n";
  }
}

void summarize_slowlog(const json::Value& doc) {
  const auto& entries = doc.find("entries")->as_array();
  std::printf("slowlog: threshold=%gs seen=%g kept=%zu (capacity %g)\n",
              doc.find("threshold_s")->as_number(),
              doc.find("seen")->as_number(), entries.size(),
              doc.find("capacity")->as_number());
  double slowest = -1.0;
  const json::Value* slowest_entry = nullptr;
  for (const json::Value& e : entries) {
    const double latency = e.find("latency_s")->as_number();
    if (latency > slowest) {
      slowest = latency;
      slowest_entry = &e;
    }
  }
  if (slowest_entry != nullptr) {
    const json::Value& e = *slowest_entry;
    const std::string& error = e.find("error")->as_string();
    const std::string outcome =
        error.empty() ? "chose " + e.find("chosen")->as_string() : error;
    std::printf("  slowest: %s:%s at %.6fs (%g candidates, %s)\n",
                e.find("app")->as_string().c_str(),
                e.find("dataset")->as_string().c_str(), slowest,
                e.find("candidates_considered")->as_number(),
                outcome.c_str());
  }
}

void summarize_drift(const json::Value& doc) {
  std::printf("drift: %g points, alpha=%g window=%g band=%g\n",
              doc.find("points")->as_number(), doc.find("alpha")->as_number(),
              doc.find("window")->as_number(), doc.find("band")->as_number());
  for (const auto& [name, c] : doc.find("components")->as_object())
    std::printf("  %-14s ewma=%+.4f mean=%+.4f var=%.6f%s\n", name.c_str(),
                c.find("ewma")->as_number(),
                c.find("window_mean")->as_number(),
                c.find("window_var")->as_number(),
                c.find("drifting")->as_bool() ? "  DRIFTING" : "");
  std::cout << (doc.find("drifting")->as_bool()
                    ? "  verdict: model is drifting\n"
                    : "  verdict: steady\n");
}

void summarize_snapshots(const json::Value& doc) {
  const auto& snapshots = doc.find("snapshots")->as_array();
  std::printf("snapshots: %zu kept of %g captured (capacity %g)\n",
              snapshots.size(), doc.find("captured")->as_number(),
              doc.find("capacity")->as_number());
  if (snapshots.size() < 2) return;
  const json::Value& first = snapshots.front();
  const json::Value& last = snapshots.back();
  const json::Value* t0 = first.find("host_seconds");
  const json::Value* t1 = last.find("host_seconds");
  const double dt = t0 != nullptr && t1 != nullptr
                        ? t1->as_number() - t0->as_number()
                        : 0.0;
  std::cout << "  deterministic deltas over the kept window"
            << (dt > 0.0 ? " (with rates)" : "") << ":\n";
  for (const auto& [name, v] : last.find("deterministic")->as_object()) {
    const json::Value* before = first.find("deterministic")->find(name);
    if (before == nullptr || !before->is_number()) continue;
    const double delta = v.as_number() - before->as_number();
    if (dt > 0.0)
      std::printf("    %-24s %+g (%.1f/s)\n", name.c_str(), delta,
                  delta / dt);
    else
      std::printf("    %-24s %+g\n", name.c_str(), delta);
  }
}

void summarize_metrics(const json::Value& doc) {
  const auto print_domain = [](const json::Value* domain,
                               const char* label) {
    if (domain == nullptr) return;
    std::cout << label << ":\n";
    for (const auto& [name, m] : domain->as_object()) {
      const std::string& kind = m.find("kind")->as_string();
      if (kind == "histogram") {
        std::cout << "  " << name << ": count="
                  << json::format_number(m.find("count")->as_number())
                  << " sum=" << json::format_number(m.find("sum")->as_number())
                  << " max=" << json::format_number(m.find("max")->as_number())
                  << "\n";
      } else {
        std::cout << "  " << name << ": "
                  << json::format_number(m.find("value")->as_number()) << "\n";
      }
    }
  };
  print_domain(doc.find("deterministic"), "deterministic");
  print_domain(doc.find("host"), "host");
}

void summarize_residuals(const json::Value& doc) {
  const json::Value* sweep = doc.find("sweep");
  const json::Value* model = doc.find("model");
  std::cout << "residuals: sweep=" << (sweep ? sweep->as_string() : "?")
            << " model=" << (model ? model->as_string() : "?") << "\n";
  double worst = 0.0;
  std::string worst_label;
  const auto& points = doc.find("points")->as_array();
  for (const json::Value& p : points) {
    const double rel = p.find("rel_error_total")->as_number();
    const json::Value* obs = p.find("observed");
    const json::Value* pred = p.find("predicted");
    double t_obs = 0.0, t_pred = 0.0;
    for (const char* c :
         {"disk", "network", "compute_local", "ro_comm", "global_red"}) {
      t_obs += obs->find(c)->as_number();
      t_pred += pred->find(c)->as_number();
    }
    std::printf("  %-14s observed=%10.4fs predicted=%10.4fs rel_err=%6.2f%%\n",
                p.find("label")->as_string().c_str(), t_obs, t_pred,
                rel * 100.0);
    if (rel > worst) {
      worst = rel;
      worst_label = p.find("label")->as_string();
    }
  }
  if (!points.empty())
    std::printf("  worst: %s at %.2f%%\n", worst_label.c_str(),
                worst * 100.0);
}

int cmd_summarize(const std::string& path) {
  const json::Value doc = json::parse(read_file(path));
  const ValidationResult r = fgp::obs::validate_report(doc);
  if (!r.ok()) {
    std::cout << path << " is not a valid report; run --validate\n";
    return 1;
  }
  switch (r.kind) {
    case ReportKind::Trace: summarize_trace(doc); break;
    case ReportKind::Metrics: summarize_metrics(doc); break;
    case ReportKind::Residuals: summarize_residuals(doc); break;
    case ReportKind::Slowlog: summarize_slowlog(doc); break;
    case ReportKind::Drift: summarize_drift(doc); break;
    case ReportKind::Snapshots: summarize_snapshots(doc); break;
    case ReportKind::Unknown: return 1;
  }
  return 0;
}

/// Strips host-domain content so --diff compares only the deterministic
/// part: trace events on the host pid (and their metadata row), and the
/// metrics "host" section.
json::Value strip_host(const json::Value& doc) {
  std::vector<std::pair<std::string, json::Value>> members;
  for (const auto& [key, v] : doc.as_object()) {
    if (key == "host") continue;
    if (key == "traceEvents" && v.is_array()) {
      std::vector<json::Value> kept;
      for (const json::Value& ev : v.as_array()) {
        const json::Value* pid = ev.find("pid");
        if (pid != nullptr &&
            static_cast<int>(pid->as_number()) == fgp::obs::kHostPid)
          continue;
        kept.push_back(ev);
      }
      members.emplace_back(key, json::Value::make_array(std::move(kept)));
      continue;
    }
    members.emplace_back(key, v);
  }
  return json::Value::make_object(std::move(members));
}

int cmd_diff(const std::string& a, const std::string& b) {
  const json::Value da = json::parse(read_file(a));
  const json::Value db = json::parse(read_file(b));
  const std::string na = json::dump(strip_host(da));
  const std::string nb = json::dump(strip_host(db));
  if (na == nb) {
    std::cout << "identical (host-domain content stripped)\n";
    return 0;
  }
  // Point at the first divergence to make regressions debuggable.
  const std::size_t limit = std::min(na.size(), nb.size());
  std::size_t i = 0;
  while (i < limit && na[i] == nb[i]) ++i;
  const auto context = [i](const std::string& s) {
    const std::size_t from = i < 40 ? 0 : i - 40;
    return s.substr(from, 80);
  };
  std::cout << "DIFFER at normalized byte " << i << "\n";
  std::cout << "  " << a << ": ..." << context(na) << "...\n";
  std::cout << "  " << b << ": ..." << context(nb) << "...\n";
  return 1;
}

int usage() {
  std::cout << "usage: fgptrace --validate FILE...\n"
               "       fgptrace --summarize FILE\n"
               "       fgptrace --diff A B\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() >= 2 && args[0] == "--validate")
      return cmd_validate({args.begin() + 1, args.end()});
    if (args.size() == 2 && args[0] == "--summarize")
      return cmd_summarize(args[1]);
    if (args.size() == 3 && args[0] == "--diff")
      return cmd_diff(args[1], args[2]);
  } catch (const fgp::util::Error& e) {
    std::cout << "fgptrace: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
