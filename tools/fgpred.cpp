// fgpred — command-line driver for the FREERIDE-G prediction framework.
//
//   fgpred probe   [pentium|opteron]         measure IPC + show machine model
//   fgpred predict <app> <n-c> <n-c> [opts]  profile first config, predict
//                                            second, verify by simulation
//   fgpred sweep   <app> [opts]              the full Figure-2-style grid
//   fgpred select                            resource-selection demo grid
//   fgpred plan-cache <passes>               cache-site planning demo
//
// Options: --virtual-mb=<double>  --wan-mbps=<double>
//          --model=none|ro|global  --threads=<int>
// Apps: kmeans em knn vortex defect apriori ann knn-classify vortex3d
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "core/cache_planner.h"
#include "core/ipc_probe.h"
#include "core/selector.h"
#include "grid/catalog.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace fgp;

struct Options {
  double virtual_mb = 700.0;
  double wan_mbps = 800.0;
  core::PredictionModel model = core::PredictionModel::GlobalReduction;
  int threads = 1;
};

[[noreturn]] void usage() {
  std::cerr
      << "usage: fgpred <command> [args]\n"
         "  probe [pentium|opteron]\n"
         "  predict <app> <n-c> <n-c> [--virtual-mb=] [--wan-mbps=] "
         "[--model=none|ro|global] [--threads=]\n"
         "  sweep <app> [--virtual-mb=] [--wan-mbps=]\n"
         "  select\n"
         "  plan-cache <passes> [--virtual-mb=] [--wan-mbps=]\n"
         "apps: kmeans em knn vortex defect apriori ann knn-classify vortex3d\n";
  std::exit(2);
}

Options parse_options(const std::vector<std::string>& args) {
  Options opts;
  for (const auto& arg : args) {
    if (arg.rfind("--virtual-mb=", 0) == 0) {
      opts.virtual_mb = std::stod(arg.substr(13));
    } else if (arg.rfind("--wan-mbps=", 0) == 0) {
      opts.wan_mbps = std::stod(arg.substr(11));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = std::stoi(arg.substr(10));
    } else if (arg == "--model=none") {
      opts.model = core::PredictionModel::NoCommunication;
    } else if (arg == "--model=ro") {
      opts.model = core::PredictionModel::ReductionCommunication;
    } else if (arg == "--model=global") {
      opts.model = core::PredictionModel::GlobalReduction;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
    }
  }
  return opts;
}

bench::BenchApp make_app(const std::string& name, const Options& opts) {
  const double mb = opts.virtual_mb;
  if (name == "kmeans") return bench::make_kmeans_app(mb, 2.0, 42);
  if (name == "em") return bench::make_em_app(mb, 2.0, 42);
  if (name == "knn") return bench::make_knn_app(mb, 2.0, 42);
  if (name == "vortex") return bench::make_vortex_app(mb, 256, 7);
  if (name == "defect") return bench::make_defect_app(mb, 24, 24, 96, 11);
  if (name == "apriori") return bench::make_apriori_app(mb, 17);
  if (name == "ann") return bench::make_ann_app(mb, 42);
  if (name == "knn-classify") return bench::make_knn_classify_app(mb, 42);
  if (name == "vortex3d") return bench::make_vortex3d_app(mb, 23);
  std::cerr << "unknown app: " << name << "\n";
  usage();
}

bench::NodeConfig parse_config(const std::string& s) {
  const auto dash = s.find('-');
  if (dash == std::string::npos) usage();
  return {std::stoi(s.substr(0, dash)), std::stoi(s.substr(dash + 1))};
}

int cmd_probe(const std::vector<std::string>& args) {
  const auto cluster = (!args.empty() && args[0] == "opteron")
                           ? sim::cluster_opteron_infiniband()
                           : sim::cluster_pentium_myrinet();
  const auto ipc = core::measure_ipc(cluster);
  std::cout << "cluster " << cluster.name << "\n"
            << "  machine: " << cluster.machine.name << ", "
            << cluster.machine.cpu_flops / 1e9 << " Gflop/s/core x "
            << cluster.machine.cores << " cores, mem "
            << cluster.machine.mem_Bps / 1e9 << " GB/s\n"
            << "  disk: " << cluster.machine.disk.effective_bandwidth() / 1e6
            << " MB/s, seek " << cluster.machine.disk.seek_s * 1e3 << " ms\n"
            << "  storage backplane: " << cluster.storage_backplane_Bps / 1e6
            << " MB/s aggregate\n"
            << "  IPC probe: w = " << ipc.w * 1e9 << " ns/byte ("
            << 1.0 / ipc.w / 1e6 << " MB/s), l = " << ipc.l * 1e3 << " ms\n";
  return 0;
}

int cmd_predict(const std::vector<std::string>& args) {
  if (args.size() < 3) usage();
  const Options opts = parse_options(args);
  auto app = make_app(args[0], opts);
  const auto profile_cfg = parse_config(args[1]);
  const auto target_cfg = parse_config(args[2]);
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(opts.wan_mbps);

  const core::Profile profile =
      bench::profile_of(app, cluster, cluster, wan, profile_cfg);
  std::cout << "profile " << args[1] << ": t_d="
            << util::Table::fmt(profile.t_disk, 2) << "s t_n="
            << util::Table::fmt(profile.t_network, 2) << "s t_c="
            << util::Table::fmt(profile.t_compute, 2) << "s (t_ro="
            << util::Table::fmt(profile.t_ro, 3) << "s, t_g="
            << util::Table::fmt(profile.t_g, 3) << "s, r="
            << profile.object_bytes / 1e3 << " KB, " << profile.passes
            << " passes)\n";

  core::PredictorOptions popts;
  popts.model = opts.model;
  popts.classes = app.classes;
  popts.ipc = core::measure_ipc(cluster);
  core::ProfileConfig target = profile.config;
  target.data_nodes = target_cfg.n;
  target.compute_nodes = target_cfg.c;
  target.threads_per_node = opts.threads;
  const auto predicted = core::Predictor(profile, popts).predict(target);

  const auto actual = bench::simulate(app, cluster, cluster, wan, target_cfg);
  std::cout << "predict " << args[2] << " [" << core::to_string(opts.model)
            << "]: " << util::Table::fmt(predicted.total(), 2)
            << "s  (disk " << util::Table::fmt(predicted.disk, 2) << " + net "
            << util::Table::fmt(predicted.network, 2) << " + compute "
            << util::Table::fmt(predicted.compute, 2) << ")\n"
            << "actual: " << util::Table::fmt(actual.timing.total.total(), 2)
            << "s  relative error "
            << util::Table::pct(util::relative_error(
                   actual.timing.total.total(), predicted.total()))
            << "\n";
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const Options opts = parse_options(args);
  const auto app = make_app(args[0], opts);
  const bench::SweepRunner sweep;
  bench::three_model_figure(sweep, "Sweep: " + args[0], app,
                            sim::cluster_pentium_myrinet(),
                            sim::wan_mbps(opts.wan_mbps));
  return 0;
}

int cmd_select() {
  const auto app = bench::make_em_app(700.0, 2.0, 42);
  const auto pentium = sim::cluster_pentium_myrinet();
  grid::GridCatalog catalog;
  catalog.register_repository_site({"storage-a", pentium, 8});
  catalog.register_repository_site({"storage-b", pentium, 4});
  catalog.register_compute_site({"hpc", pentium, 16});
  catalog.register_link("storage-a", "hpc", sim::wan_mbps(40));
  catalog.register_link("storage-b", "hpc", sim::wan_mbps(120));
  catalog.register_replica({"em-points", "storage-a", 8});
  catalog.register_replica({"em-points", "storage-b", 2});

  const core::Profile profile =
      bench::profile_of(app, pentium, pentium, sim::wan_mbps(40), {1, 1});
  core::PredictorOptions popts;
  popts.classes = app.classes;
  const core::ResourceSelector selector(&catalog, profile, popts);
  const auto ranked =
      selector.rank("em-points", app.dataset->total_virtual_bytes());

  util::Table table({"rank", "replica", "n", "c", "T_pred(s)"});
  for (std::size_t i = 0; i < ranked.size(); ++i)
    table.add_row({std::to_string(i + 1),
                   ranked[i].candidate.replica.repository,
                   std::to_string(ranked[i].candidate.replica.storage_nodes),
                   std::to_string(ranked[i].candidate.compute_nodes),
                   util::Table::fmt(ranked[i].predicted.total(), 2)});
  table.print(std::cout);
  return 0;
}

int cmd_plan_cache(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const int passes = std::stoi(args[0]);
  const Options opts = parse_options(args);
  const auto app = bench::make_em_app(opts.virtual_mb, 2.0, 42, passes);
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(40.0);

  core::CachePlannerInputs in;
  in.dataset_bytes = app.dataset->total_virtual_bytes();
  in.chunks = app.dataset->chunk_count();
  in.data_nodes = 2;
  in.compute_nodes = 4;
  in.data_cluster = cluster;
  in.compute_cluster = cluster;
  in.wan = wan;
  // Compute time from a quick profile.
  const auto profile = bench::profile_of(app, cluster, cluster, wan, {2, 4});
  in.compute_time_per_pass_s =
      profile.t_compute / static_cast<double>(profile.passes);
  const core::CachePlanner planner(in);

  freeride::CacheSiteSetup site;
  site.cluster = sim::cluster_opteron_infiniband();
  site.cluster.name = "cache-site";
  site.nodes = 2;
  site.wan_to_compute = sim::wan_mbps(400.0);
  const std::vector<freeride::CacheSiteSetup> sites{site};

  util::Table table({"option", "first pass(s)", "later pass(s)",
                     "total(" + std::to_string(passes) + " passes)"});
  for (const auto& plan : planner.rank(passes, sites)) {
    const char* name = plan.mode == freeride::CacheMode::None ? "no-cache"
                       : plan.mode == freeride::CacheMode::LocalDisk
                           ? "local-disk"
                           : plan.site_name.c_str();
    table.add_row({name, util::Table::fmt(plan.first_pass_s, 2),
                   util::Table::fmt(plan.later_pass_s, 2),
                   util::Table::fmt(plan.total_s(passes), 2)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  const std::string cmd = args[0];
  args.erase(args.begin());
  try {
    if (cmd == "probe") return cmd_probe(args);
    if (cmd == "predict") return cmd_predict(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "select") return cmd_select();
    if (cmd == "plan-cache") return cmd_plan_cache(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage();
}
