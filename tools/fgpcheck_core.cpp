// fgpcheck analyzer core (see fgpcheck.h for the rule catalogue and
// DESIGN.md §14 for the contract mapping). Everything here is stdlib-only
// and linear in the input size: one tokenizer pass, one bracket-matching
// pass, then rule passes that walk the token vector without backtracking.
#include "fgpcheck.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace fgpcheck {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

// ---------------------------------------------------------------------------
// Tokenizer

TokenizeResult tokenize(std::string_view src, const std::string& file) {
  TokenizeResult out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto diag = [&](std::size_t at_line, const std::string& msg) {
    out.diagnostics.push_back({file, at_line, "tokenizer", msg});
  };

  while (i < n) {
    const char c = src[i];
    const char next = i + 1 < n ? src[i + 1] : '\0';

    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && next == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      const std::size_t start_line = line;
      i += 2;
      bool closed = false;
      while (i < n) {
        if (src[i] == '\n') ++line;
        if (src[i] == '*' && i + 1 < n && src[i + 1] == '/') {
          i += 2;
          closed = true;
          break;
        }
        ++i;
      }
      if (!closed) diag(start_line, "unterminated block comment");
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && next == '"' && (i == 0 || !is_word_char(src[i - 1]))) {
      const std::size_t start_line = line;
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(' && src[p] != '\n' &&
             delim.size() <= 16)
        delim += src[p++];
      if (p >= n || src[p] != '(') {
        diag(start_line, "malformed raw string delimiter");
        i = p;
        continue;
      }
      const std::string close = ")" + delim + "\"";
      const std::size_t body = p + 1;
      const std::size_t end = src.find(close, body);
      if (end == std::string_view::npos) {
        diag(start_line, "unterminated raw string literal");
        // Consume the rest of the file; counting the remaining newlines
        // keeps later diagnostics (there are none) well-formed.
        for (std::size_t q = body; q < n; ++q)
          if (src[q] == '\n') ++line;
        i = n;
        continue;
      }
      out.tokens.push_back({TokKind::Str,
                            std::string(src.substr(body, end - body)),
                            start_line});
      for (std::size_t q = body; q < end; ++q)
        if (src[q] == '\n') ++line;
      i = end + close.size();
      continue;
    }
    // String literal.
    if (c == '"') {
      const std::size_t start_line = line;
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          if (src[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (src[i] == '"') {
          ++i;
          closed = true;
          break;
        }
        if (src[i] == '\n') {
          // Unescaped newline terminates the (malformed) literal; the
          // preprocessor would have rejected it too.
          break;
        }
        text += src[i++];
      }
      if (!closed) diag(start_line, "unterminated string literal");
      out.tokens.push_back({TokKind::Str, std::move(text), start_line});
      continue;
    }
    // Character literal (the word-char guard keeps 1'000'000 separators
    // inside numbers, which are consumed by the number scanner below).
    if (c == '\'' && (i == 0 || !is_word_char(src[i - 1]))) {
      const std::size_t start_line = line;
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          i += 2;
          continue;
        }
        if (src[i] == '\'') {
          ++i;
          closed = true;
          break;
        }
        if (src[i] == '\n') break;
        text += src[i++];
      }
      if (!closed) diag(start_line, "unterminated character literal");
      out.tokens.push_back({TokKind::Chr, std::move(text), start_line});
      continue;
    }
    // Number (digits, hex, floats, digit separators, exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(next)) != 0)) {
      const std::size_t start = i;
      ++i;
      while (i < n) {
        const char d = src[i];
        if (is_word_char(d) || d == '\'' || d == '.') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.tokens.push_back(
          {TokKind::Number, std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Identifier / keyword.
    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < n && is_word_char(src[i])) ++i;
      out.tokens.push_back(
          {TokKind::Ident, std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Punctuation, maximal munch.
    static constexpr std::array<std::string_view, 21> kOps3 = {
        "<<=", ">>=", "->*", "...", "<=>",
        // padding entries keep the array aggregate simple
        "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", ""};
    static constexpr std::array<std::string_view, 20> kOps2 = {
        "::", "->", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
        "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "++", "--"};
    std::string_view rest = src.substr(i);
    std::string op;
    for (const auto& o : kOps3)
      if (!o.empty() && rest.substr(0, 3) == o) {
        op = o;
        break;
      }
    if (op.empty())
      for (const auto& o : kOps2)
        if (rest.substr(0, 2) == o) {
          op = o;
          break;
        }
    if (op.empty()) op = std::string(1, c);
    out.tokens.push_back({TokKind::Punct, op, line});
    i += op.size();
  }
  out.tokens.push_back({TokKind::Eof, "", line});
  return out;
}

// ---------------------------------------------------------------------------
// Token helpers

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::Punct && t.text == s;
}

bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::Ident && t.text == s;
}

/// match[i] = index of the bracket matching tokens[i] for ( ) [ ] { },
/// or npos when unmatched. One stack pass, linear time — safe against
/// hostile deeply-nested input.
std::vector<std::size_t> build_match_map(const Tokens& toks) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> match(toks.size(), npos);
  std::vector<std::size_t> paren, brack, brace;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Punct) continue;
    if (t.text == "(") paren.push_back(i);
    else if (t.text == "[") brack.push_back(i);
    else if (t.text == "{") brace.push_back(i);
    else if (t.text == ")" && !paren.empty()) {
      match[i] = paren.back();
      match[paren.back()] = i;
      paren.pop_back();
    } else if (t.text == "]" && !brack.empty()) {
      match[i] = brack.back();
      match[brack.back()] = i;
      brack.pop_back();
    } else if (t.text == "}" && !brace.empty()) {
      match[i] = brace.back();
      match[brace.back()] = i;
      brace.pop_back();
    }
  }
  return match;
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Control / declaration keywords that can never be part of a type name.
bool is_control_keyword(std::string_view s) {
  static const std::set<std::string_view> kw = {
      "if",     "else",   "for",      "while",  "do",     "switch",
      "case",   "return", "break",    "continue", "goto", "throw",
      "try",    "catch",  "new",      "delete", "sizeof", "using",
      "typedef", "namespace", "template", "class", "struct", "enum",
      "public", "private", "protected", "operator", "default"};
  return kw.count(s) != 0;
}

/// Declarations found by the statement scanner.
struct Decl {
  std::string name;
  std::size_t line = 0;
  bool is_float = false;      // declared float/double
  bool is_atomic = false;     // std::atomic<...>
  bool is_unordered = false;  // std::unordered_map/set/... (or alias)
  bool is_event = false;      // sim::Event (or a container of them)
};

/// Scans [begin, end) for declaration-shaped statements:
///   <type tokens>+ NAME (= | ; | { | , | : | ( | [)
/// where the type tokens are a contiguous run of identifiers, '::',
/// balanced <...> groups, '&', '&&', '*', and cv-qualifiers immediately
/// before NAME, and the statement does not start with a control keyword.
/// This is a heuristic — no semantic analysis — biased towards
/// over-collecting locals, which only ever *suppresses* findings.
void scan_declarations(const Tokens& toks, const std::vector<std::size_t>& match,
                       std::size_t begin, std::size_t end,
                       const std::set<std::string>& unordered_aliases,
                       std::vector<Decl>& out) {
  auto type_ish = [](const Token& t) {
    if (t.kind == TokKind::Ident) return !is_control_keyword(t.text);
    return t.kind == TokKind::Punct &&
           (t.text == "::" || t.text == "&" || t.text == "&&" ||
            t.text == "*");
  };

  std::size_t i = begin;
  while (i < end) {
    const Token& t = toks[i];
    // Statement boundaries; also skip whole preprocessor-ish noise fast.
    if (t.kind == TokKind::Punct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      ++i;
      continue;
    }
    // `using NAME = <...unordered...>;` registers a type alias; handled
    // by the caller via collect_names (aliases are file-global).
    // Candidate statement: walk a run of type-ish tokens (skipping
    // balanced template argument lists) and look for the declarator.
    std::size_t j = i;
    std::vector<std::size_t> idents;  // identifier positions in the run
    bool saw_unordered = false, saw_atomic = false, saw_float = false;
    bool saw_event = false;
    while (j < end) {
      const Token& u = toks[j];
      if (is_punct(u, "<")) {
        // Balanced template argument list: scan forward for the matching
        // '>' at depth 0, bailing out at statement terminators (operator<
        // comparisons). Bounded by the statement, so still linear-ish.
        std::size_t depth = 1;
        std::size_t k = j + 1;
        while (k < end && depth > 0) {
          const Token& v = toks[k];
          if (is_punct(v, "<")) ++depth;
          else if (is_punct(v, ">")) --depth;
          else if (is_punct(v, ">>")) depth = depth >= 2 ? depth - 2 : 0;
          else if (v.kind == TokKind::Punct &&
                   (v.text == ";" || v.text == "{" || v.text == "}"))
            break;
          if (saw_unordered || saw_atomic) {
            // template args don't change the outer type
          }
          if (v.kind == TokKind::Ident) {
            if (v.text.rfind("unordered_", 0) == 0) saw_unordered = true;
            if (v.text == "atomic") saw_atomic = true;
            if (v.text == "Event") saw_event = true;
          }
          ++k;
        }
        if (k >= end || depth > 0) {
          j = k;
          break;  // unbalanced: not a declaration
        }
        j = k;
        continue;
      }
      if (!type_ish(u)) break;
      if (u.kind == TokKind::Ident) {
        idents.push_back(j);
        if (u.text.rfind("unordered_", 0) == 0) saw_unordered = true;
        if (u.text == "atomic" || u.text.rfind("atomic_", 0) == 0)
          saw_atomic = true;
        if (u.text == "float" || u.text == "double") saw_float = true;
        if (u.text == "Event") saw_event = true;
        if (unordered_aliases.count(u.text) != 0) saw_unordered = true;
      }
      ++j;
    }
    // Need at least two identifiers: type... NAME. The declarator is the
    // last identifier of the run; everything before it must contain at
    // least one identifier (the type).
    if (idents.size() >= 2 && j < end) {
      const Token& after = toks[j];
      const bool terminator =
          after.kind == TokKind::Punct &&
          (after.text == "=" || after.text == ";" || after.text == "{" ||
           after.text == "," || after.text == ":" || after.text == "(" ||
           after.text == "[");
      const std::size_t name_pos = idents.back();
      // `NAME (` is only a declaration when a type identifier precedes
      // NAME directly or through qualifiers — `foo(bar);` has one ident.
      if (terminator) {
        Decl d;
        d.name = toks[name_pos].text;
        d.line = toks[name_pos].line;
        d.is_float = saw_float;
        d.is_atomic = saw_atomic;
        d.is_unordered = saw_unordered;
        d.is_event = saw_event;
        out.push_back(std::move(d));
        // Multi-declarator lists: after '=' or ',' further declarators of
        // the same type may follow; walk initializers at top level.
        if (after.text == "=" || after.text == ",") {
          std::size_t k = j;
          while (k < end) {
            const Token& v = toks[k];
            if (v.kind == TokKind::Punct) {
              if (v.text == ";") break;
              if (v.text == "(" || v.text == "[" || v.text == "{") {
                if (match[k] == kNpos || match[k] > end) break;
                k = match[k];
              } else if (v.text == ",") {
                // next declarator: IDENT followed by = , or ;
                if (k + 1 < end && toks[k + 1].kind == TokKind::Ident) {
                  Decl d2;
                  d2.name = toks[k + 1].text;
                  d2.line = toks[k + 1].line;
                  d2.is_float = saw_float;
                  d2.is_atomic = saw_atomic;
                  d2.is_unordered = saw_unordered;
                  out.push_back(std::move(d2));
                }
              }
            }
            ++k;
          }
        }
      }
    }
    // Advance to the next statement boundary.
    while (i < end) {
      const Token& v = toks[i];
      if (v.kind == TokKind::Punct) {
        if (v.text == ";" || v.text == "{" || v.text == "}" ||
            v.text == ":") {
          ++i;
          break;
        }
        if (v.text == "(") {
          // Descend into parens: for-init declarations etc. live there.
          ++i;
          break;
        }
      }
      ++i;
    }
  }
}

// ---------------------------------------------------------------------------
// Lambda discovery

struct Lambda {
  std::size_t intro = kNpos;       // '[' token index
  std::size_t header_end = kNpos;  // '{' body-open token index
  std::size_t body_begin = kNpos;  // first token inside the body
  std::size_t body_end = kNpos;    // '}' token index
  std::size_t line = 0;
  bool default_ref = false;   // [&]
  bool default_copy = false;  // [=]
  bool is_mutable = false;
  std::set<std::string> ref_captures;
  std::set<std::string> copy_captures;
  std::set<std::string> params;
  std::string bound_name;  // `auto NAME = [...]`
  bool parallel = false;
};

/// True when the '[' at `i` introduces a lambda rather than a subscript
/// or attribute.
bool is_lambda_intro(const Tokens& toks, std::size_t i) {
  if (!is_punct(toks[i], "[")) return false;
  if (i + 1 < toks.size() && is_punct(toks[i + 1], "["))
    return false;  // [[attribute]]
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::Ident)
    return is_control_keyword(prev.text) && prev.text != "operator";
  if (prev.kind == TokKind::Number || prev.kind == TokKind::Str) return false;
  if (prev.kind == TokKind::Punct &&
      (prev.text == "]" || prev.text == ")" || prev.text == "["))
    return false;
  return true;
}

std::vector<Lambda> find_lambdas(const Tokens& toks,
                                 const std::vector<std::size_t>& match) {
  std::vector<Lambda> out;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_lambda_intro(toks, i)) continue;
    const std::size_t close = match[i];
    if (close == kNpos) continue;
    Lambda lam;
    lam.intro = i;
    lam.line = toks[i].line;
    // `auto NAME = [...]`.
    if (i >= 2 && is_punct(toks[i - 1], "=") &&
        toks[i - 2].kind == TokKind::Ident)
      lam.bound_name = toks[i - 2].text;
    // Capture list: items separated by top-level commas.
    std::size_t j = i + 1;
    while (j < close) {
      // One capture item.
      bool by_ref = false;
      if (is_punct(toks[j], "&")) {
        by_ref = true;
        ++j;
      }
      if (j >= close) {
        if (by_ref) lam.default_ref = true;
        break;
      }
      if (is_punct(toks[j], ",")) {
        if (by_ref) lam.default_ref = true;
        ++j;
        continue;
      }
      if (is_punct(toks[j], "=") && !by_ref) {
        lam.default_copy = true;
        ++j;
        continue;
      }
      if (is_ident(toks[j], "this") || is_punct(toks[j], "*")) {
        // this / *this captures: member writes are not tracked.
        ++j;
        continue;
      }
      if (toks[j].kind == TokKind::Ident) {
        const std::string name = toks[j].text;
        if (by_ref)
          lam.ref_captures.insert(name);
        else
          lam.copy_captures.insert(name);
        ++j;
        // Init-capture: skip ` = expr` to the next top-level comma.
        while (j < close && !is_punct(toks[j], ",")) {
          if (toks[j].kind == TokKind::Punct &&
              (toks[j].text == "(" || toks[j].text == "[" ||
               toks[j].text == "{") &&
              match[j] != kNpos && match[j] < close)
            j = match[j];
          ++j;
        }
        continue;
      }
      ++j;  // anything else: skip
    }
    // After the capture list: optional template-parameter list, optional
    // parameter list, then specifiers up to the body brace.
    j = close + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) {
      // C++20 template lambda: scan to the matching '>' at depth 0.
      std::size_t depth = 1;
      ++j;
      while (j < toks.size() && depth > 0) {
        if (is_punct(toks[j], "<")) ++depth;
        else if (is_punct(toks[j], ">")) --depth;
        else if (is_punct(toks[j], ">>")) depth = depth >= 2 ? depth - 2 : 0;
        else if (is_punct(toks[j], "{") || is_punct(toks[j], ";")) break;
        ++j;
      }
    }
    if (j < toks.size() && is_punct(toks[j], "(") && match[j] != kNpos) {
      const std::size_t pclose = match[j];
      // Parameter names: last identifier of each top-level comma segment,
      // ignoring anything after '=' (default arguments).
      std::string last_ident;
      bool in_default = false;
      for (std::size_t k = j + 1; k < pclose; ++k) {
        const Token& t = toks[k];
        if (t.kind == TokKind::Punct &&
            (t.text == "(" || t.text == "[" || t.text == "{") &&
            match[k] != kNpos && match[k] < pclose) {
          k = match[k];
          continue;
        }
        if (is_punct(t, ",")) {
          if (!last_ident.empty()) lam.params.insert(last_ident);
          last_ident.clear();
          in_default = false;
          continue;
        }
        if (is_punct(t, "=")) {
          in_default = true;
          continue;
        }
        if (!in_default && t.kind == TokKind::Ident) last_ident = t.text;
      }
      if (!last_ident.empty()) lam.params.insert(last_ident);
      j = pclose + 1;
    }
    // Specifiers (mutable, noexcept, -> ret) until the body '{'.
    while (j < toks.size() && !is_punct(toks[j], "{")) {
      if (is_ident(toks[j], "mutable")) lam.is_mutable = true;
      if (toks[j].kind == TokKind::Punct &&
          (toks[j].text == ";" || toks[j].text == ")" || toks[j].text == "}"))
        break;  // not a lambda after all (e.g. array of lambdas — bail)
      if (is_punct(toks[j], "(") && match[j] != kNpos) {
        j = match[j];  // noexcept(...) / trailing return type parens
      }
      ++j;
    }
    if (j >= toks.size() || !is_punct(toks[j], "{") || match[j] == kNpos)
      continue;
    lam.header_end = j;
    lam.body_begin = j + 1;
    lam.body_end = match[j];
    out.push_back(std::move(lam));
  }
  return out;
}

/// Function names whose callable argument runs on pool workers. The
/// ThreadPool API (parallel_for / submit) plus the known local fan-out
/// wrappers; extend this list when adding a new fan-out entry point.
bool is_parallel_sink(std::string_view name) {
  return name == "parallel_for" || name == "submit" ||
         name == "for_each_chunk";
}

void mark_parallel_lambdas(const Tokens& toks,
                           const std::vector<std::size_t>& match,
                           std::vector<Lambda>& lambdas) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident || !is_parallel_sink(toks[i].text))
      continue;
    if (!is_punct(toks[i + 1], "(") || match[i + 1] == kNpos) continue;
    const std::size_t open = i + 1;
    const std::size_t close = match[open];
    // Inline lambdas anywhere inside the argument list run (possibly
    // indirectly) on pool workers; named arguments at the top level that
    // match a bound lambda mark that lambda.
    for (auto& lam : lambdas)
      if (lam.intro > open && lam.intro < close) lam.parallel = true;
    for (std::size_t k = open + 1; k < close; ++k) {
      const Token& t = toks[k];
      if (t.kind == TokKind::Punct &&
          (t.text == "(" || t.text == "[" || t.text == "{") &&
          match[k] != kNpos && match[k] < close) {
        k = match[k];
        continue;
      }
      if (t.kind == TokKind::Ident)
        for (auto& lam : lambdas)
          if (!lam.bound_name.empty() && lam.bound_name == t.text)
            lam.parallel = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Writes inside parallel lambdas

struct Write {
  std::string base;    // leftmost identifier of the lvalue path
  bool subscript = false;  // lvalue path goes through [...]
  std::size_t line = 0;
  std::string op;
};

/// Walks backwards from the assignment operator at `op_idx` and extracts
/// the lvalue path: IDENT ((. | -> | ::) IDENT | [..])*. Returns false
/// when the lvalue is not a simple path (call results, derefs, ...).
bool extract_lvalue(const Tokens& toks, const std::vector<std::size_t>& match,
                    std::size_t op_idx, std::size_t lo, Write& w) {
  std::size_t j = op_idx;
  bool have_ident = false;
  while (j > lo) {
    --j;
    const Token& t = toks[j];
    if (is_punct(t, "]")) {
      if (match[j] == kNpos || match[j] < lo) return false;
      w.subscript = true;
      j = match[j];
      continue;
    }
    if (t.kind == TokKind::Ident) {
      if (is_control_keyword(t.text)) return false;
      w.base = t.text;
      w.line = t.line;
      have_ident = true;
      if (j > lo) {
        const Token& prev = toks[j - 1];
        if (is_punct(prev, ".") || is_punct(prev, "->") ||
            is_punct(prev, "::")) {
          --j;  // consume the separator, keep walking left
          continue;
        }
      }
      return true;
    }
    return have_ident;
  }
  return have_ident;
}

// ---------------------------------------------------------------------------
// Per-file rule engine

struct RawLines {
  std::vector<std::string> lines;

  explicit RawLines(std::string_view src) {
    std::string cur;
    for (char c : src) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) lines.push_back(std::move(cur));
  }

  const std::string& at(std::size_t ln) const {
    static const std::string empty;
    return ln >= 1 && ln <= lines.size() ? lines[ln - 1] : empty;
  }
};

const char kAllowTag[] = "fgpcheck: " "allow";

/// Rules exempted on this raw line via an allow(rule) annotation with the
/// tool-name prefix; a blanket annotation (no rule) yields the special
/// entry "*". The tag only counts inside a // comment — tags inside
/// string literals (this analyzer's own sources, say) are inert.
std::set<std::string> allows_on(const std::string& line) {
  std::set<std::string> out;
  std::size_t pos = line.find("//");
  if (pos == std::string::npos) return out;
  while ((pos = line.find(kAllowTag, pos)) != std::string::npos) {
    std::size_t p = pos + sizeof(kAllowTag) - 1;
    if (p < line.size() && line[p] == '(') {
      const std::size_t close = line.find(')', p);
      if (close != std::string::npos && close > p + 1)
        out.insert(line.substr(p + 1, close - p - 1));
      else
        out.insert("*");
    } else {
      out.insert("*");
    }
    pos = p;
  }
  return out;
}

struct ModuleRank {
  std::string_view module;
  int rank;
};

/// Layer ranks mirroring the target link graph in src/CMakeLists.txt:
///   util(0) → obs(1) → sim(2) → repository|grid(3) → datagen|freeride(4)
///   → apps|core(5) → service(6).
/// An include edge is legal only into a strictly lower rank (or the same
/// module); equal-rank cross-module edges are rejected because they are
/// one commit away from a cycle.
constexpr ModuleRank kRanks[] = {
    {"util", 0},    {"obs", 1},      {"sim", 2},
    {"repository", 3}, {"grid", 3},  {"datagen", 4},
    {"freeride", 4},  {"apps", 5},   {"core", 5},
    {"service", 6},
};

std::string_view module_of(std::string_view rel_path) {
  if (rel_path.rfind("src/", 0) != 0) return {};
  std::string_view rest = rel_path.substr(4);
  const std::size_t slash = rest.find('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : rest.substr(0, slash);
}

int rank_of_module(std::string_view module) {
  for (const auto& r : kRanks)
    if (r.module == module) return r.rank;
  return -1;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace

int layer_rank(std::string_view rel_path) {
  return rank_of_module(module_of(rel_path));
}

void collect_names(std::string_view src, const std::string& rel_path,
                   NameIndex& index) {
  const TokenizeResult tr = tokenize(src, rel_path);
  const Tokens& toks = tr.tokens;
  const auto match = build_match_map(toks);

  // `using NAME = ...unordered_*...;` aliases.
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "using") || toks[i + 1].kind != TokKind::Ident ||
        !is_punct(toks[i + 2], "="))
      continue;
    for (std::size_t k = i + 3; k < toks.size(); ++k) {
      if (is_punct(toks[k], ";")) break;
      if (toks[k].kind == TokKind::Ident &&
          toks[k].text.rfind("unordered_", 0) == 0) {
        index.unordered_aliases.insert(toks[i + 1].text);
        break;
      }
    }
  }

  std::vector<Decl> decls;
  scan_declarations(toks, match, 0, toks.size(), index.unordered_aliases,
                    decls);
  for (const auto& d : decls) {
    if (d.is_unordered) index.unordered_vars.insert(d.name);
    if (d.is_atomic) index.atomic_vars.insert(d.name);
    // Event-typed names only matter inside the event engine's home module
    // (the event-order rule is scoped to src/sim).
    if (d.is_event && starts_with(rel_path, "src/sim"))
      index.event_vars.insert(d.name);
  }
}

FileAnalysis analyze_source(std::string_view src, const std::string& rel_path,
                            const NameIndex& index) {
  FileAnalysis out;
  const RawLines raw(src);

  // Scope flags.
  const bool in_src = starts_with(rel_path, "src/");
  const bool in_apps = starts_with(rel_path, "src/apps/");
  const bool in_sim = starts_with(rel_path, "src/sim");
  const bool is_simd_helpers = rel_path == "src/util/simd.h";
  const int my_rank = layer_rank(rel_path);
  const std::string_view my_module = module_of(rel_path);

  TokenizeResult tr = tokenize(src, rel_path);
  std::vector<Finding> findings = std::move(tr.diagnostics);
  const Tokens& toks = tr.tokens;
  const auto match = build_match_map(toks);

  // --- layering ----------------------------------------------------------
  if (my_rank >= 0) {
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_punct(toks[i], "#") || !is_ident(toks[i + 1], "include") ||
          toks[i + 2].kind != TokKind::Str)
        continue;
      const std::string& target = toks[i + 2].text;
      const std::size_t slash = target.find('/');
      if (slash == std::string::npos) continue;
      const std::string target_module = target.substr(0, slash);
      if (target_module == my_module) continue;
      const int target_rank = rank_of_module(target_module);
      if (target_rank < 0) continue;  // not a layered module
      if (target_rank >= my_rank) {
        std::ostringstream msg;
        msg << "src/" << my_module << " (layer " << my_rank
            << ") must not include \"" << target << "\" (layer "
            << target_rank << "): the src/CMakeLists.txt layering is "
            << "util < obs < sim < repository|grid < datagen|freeride < "
            << "apps|core < service, and "
            << (target_rank == my_rank ? "equal-rank cross-module"
                                       : "upward")
            << " edges create cycles";
        findings.push_back(
            {rel_path, toks[i].line, "layering", msg.str()});
      }
    }
  }

  // --- declaration index for this file -----------------------------------
  std::vector<Decl> file_decls;
  scan_declarations(toks, match, 0, toks.size(), index.unordered_aliases,
                    file_decls);
  std::set<std::string> unordered_here = index.unordered_vars;
  std::set<std::string> atomics_here = index.atomic_vars;
  std::set<std::string> float_locals;
  for (const auto& d : file_decls) {
    if (d.is_unordered) unordered_here.insert(d.name);
    if (d.is_atomic) atomics_here.insert(d.name);
    if (d.is_float) float_locals.insert(d.name);
  }

  // --- unordered-iteration (src/ only) ------------------------------------
  if (in_src) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      // Range-for: `for ( ... : RANGE )` — flag when RANGE mentions an
      // unordered-typed variable.
      if (is_ident(toks[i], "for") && is_punct(toks[i + 1], "(") &&
          match[i + 1] != kNpos) {
        const std::size_t open = i + 1;
        const std::size_t close = match[open];
        // The range-for ':' sits at the top parenthesis level.
        std::size_t colon = kNpos;
        for (std::size_t k = open + 1; k < close; ++k) {
          const Token& t = toks[k];
          if (t.kind == TokKind::Punct &&
              (t.text == "(" || t.text == "[" || t.text == "{") &&
              match[k] != kNpos && match[k] < close) {
            k = match[k];
            continue;
          }
          if (is_punct(t, ";")) break;  // classic for loop
          if (is_punct(t, ":") ) {
            colon = k;
            break;
          }
        }
        if (colon != kNpos) {
          for (std::size_t k = colon + 1; k < close; ++k)
            if (toks[k].kind == TokKind::Ident &&
                unordered_here.count(toks[k].text) != 0) {
              findings.push_back(
                  {rel_path, toks[k].line, "unordered-iteration",
                   "range-for over unordered container '" + toks[k].text +
                       "' — iteration order is implementation-defined and "
                       "breaks bit-determinism (DESIGN.md §14); use an "
                       "order-pinned container or sort the keys first"});
              break;
            }
        }
      }
      // Iterator walks: VAR.begin() / VAR.cbegin() / VAR.rbegin().
      if (toks[i].kind == TokKind::Ident &&
          unordered_here.count(toks[i].text) != 0 && i + 3 < toks.size() &&
          (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
          (is_ident(toks[i + 2], "begin") || is_ident(toks[i + 2], "cbegin") ||
           is_ident(toks[i + 2], "rbegin")) &&
          is_punct(toks[i + 3], "(")) {
        findings.push_back(
            {rel_path, toks[i].line, "unordered-iteration",
             "iterator walk over unordered container '" + toks[i].text +
                 "' — iteration order is implementation-defined and breaks "
                 "bit-determinism (DESIGN.md §14)"});
      }
    }
  }

  // --- event-order (src/sim only) -----------------------------------------
  // A heap or sort over sim::Event values that does not name one of the
  // canonical tie-break comparators (EventAfter / EventBefore /
  // event_order_less) orders events by some partial key — usually bare
  // time — and ties then dispatch in container order, which is not part
  // of the replay contract (DESIGN.md §18).
  if (in_sim) {
    std::set<std::string> event_here = index.event_vars;
    for (const auto& d : file_decls)
      if (d.is_event) event_here.insert(d.name);
    static const std::set<std::string> kOrderingAlgos = {
        "sort",      "stable_sort", "partial_sort", "nth_element",
        "sort_heap", "push_heap",   "pop_heap",     "make_heap"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Ident) continue;
      const bool is_queue = t.text == "priority_queue";
      const bool is_algo =
          kOrderingAlgos.count(t.text) != 0 && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "(");
      if (!is_queue && !is_algo) continue;
      // Statement span: forward to the top-level ';' (balanced groups
      // skipped), bounded so hostile input stays linear.
      bool touches_event = false;
      bool canonical = false;
      std::size_t k = i + 1;
      std::size_t steps = 0;
      while (k < toks.size() && steps++ < 512) {
        const Token& u = toks[k];
        if (u.kind == TokKind::Punct &&
            (u.text == ";" || u.text == "}"))
          break;
        if (u.kind == TokKind::Ident) {
          if (u.text == "Event" || event_here.count(u.text) != 0)
            touches_event = true;
          if (u.text == "EventAfter" || u.text == "EventBefore" ||
              u.text == "event_order_less")
            canonical = true;
        }
        ++k;
      }
      if (touches_event && !canonical) {
        findings.push_back(
            {rel_path, t.line, "event-order",
             "'" + t.text + "' over sim events without the canonical "
             "tie-break comparator — order events with EventAfter / "
             "EventBefore / event_order_less ((time, seq, node, kind), "
             "DESIGN.md §18) or replay stops being bit-identical"});
      }
    }
  }

  // --- float-accumulation (src/apps kernels) ------------------------------
  if (in_apps && !is_simd_helpers) {
    // Loop body ranges (token index intervals).
    std::vector<std::pair<std::size_t, std::size_t>> loops;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!(is_ident(toks[i], "for") || is_ident(toks[i], "while"))) continue;
      if (!is_punct(toks[i + 1], "(") || match[i + 1] == kNpos) continue;
      const std::size_t after = match[i + 1] + 1;
      if (after >= toks.size()) continue;
      if (is_punct(toks[after], "{") && match[after] != kNpos) {
        loops.emplace_back(after + 1, match[after]);
      } else {
        std::size_t k = after;
        while (k < toks.size() && !is_punct(toks[k], ";")) {
          if (toks[k].kind == TokKind::Punct &&
              (toks[k].text == "(" || toks[k].text == "{" ||
               toks[k].text == "[") &&
              match[k] != kNpos)
            k = match[k];
          ++k;
        }
        loops.emplace_back(after, k);
      }
    }
    auto in_loop = [&](std::size_t idx) {
      for (const auto& [b, e] : loops)
        if (idx >= b && idx < e) return true;
      return false;
    };
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::Punct || (t.text != "+=" && t.text != "-="))
        continue;
      if (!in_loop(i)) continue;
      Write w;
      if (!extract_lvalue(toks, match, i, 0, w)) continue;
      if (w.subscript) continue;  // slot-owned accumulation (element-wise)
      if (float_locals.count(w.base) == 0) continue;
      // Dot-product shape: the accumulated expression multiplies indexed
      // loads. Scalar statistics (`sum += x`) stay legal — serial order.
      bool has_sub = false, has_mul = false;
      for (std::size_t k = i + 1; k < toks.size(); ++k) {
        const Token& u = toks[k];
        if (u.kind == TokKind::Punct) {
          if (u.text == ";") break;
          if (u.text == "[") has_sub = true;
          if (u.text == "*") has_mul = true;
        }
      }
      if (has_sub && has_mul)
        findings.push_back(
            {rel_path, t.line, "float-accumulation",
             "raw '" + t.text + "' accumulation of an indexed product into "
                 "float/double '" + w.base +
                 "' — kernel reductions must pin their accumulation order "
                 "through the util/simd.h blocked helpers (DESIGN.md §10)"});
    }
  }

  // --- parallel-capture (all scanned dirs) --------------------------------
  {
    std::vector<Lambda> lambdas = find_lambdas(toks, match);
    mark_parallel_lambdas(toks, match, lambdas);
    for (const auto& lam : lambdas) {
      if (!lam.parallel) continue;
      if (lam.body_begin == kNpos || lam.body_end == kNpos) continue;
      if (!lam.default_ref && lam.ref_captures.empty())
        continue;  // copy captures: the compiler enforces immutability
      // Locals visible anywhere in the body (including nested scopes —
      // over-approximating locals only suppresses findings, never adds).
      std::set<std::string> locals = lam.params;
      std::vector<Decl> body_decls;
      scan_declarations(toks, match, lam.body_begin, lam.body_end,
                        index.unordered_aliases, body_decls);
      for (const auto& d : body_decls) locals.insert(d.name);
      // Nested lambda headers (capture + parameter lists) are skipped in
      // the write scan: their '=' tokens are captures, not assignments.
      std::vector<std::pair<std::size_t, std::size_t>> nested_headers;
      for (const auto& other : lambdas) {
        if (other.intro <= lam.intro || other.intro >= lam.body_end) continue;
        if (other.header_end == kNpos) continue;
        nested_headers.emplace_back(other.intro, other.header_end);
        for (const auto& nm : other.params) locals.insert(nm);
        for (const auto& nm : other.copy_captures) locals.insert(nm);
      }
      auto in_nested_header = [&](std::size_t idx) {
        for (const auto& [b, e] : nested_headers)
          if (idx >= b && idx <= e) return true;
        return false;
      };
      auto is_shared_write = [&](const Write& w) {
        if (w.subscript) return false;  // index-owned slot: the protocol
        if (locals.count(w.base) != 0) return false;
        if (atomics_here.count(w.base) != 0) return false;
        if (lam.default_ref) return lam.copy_captures.count(w.base) == 0;
        return lam.ref_captures.count(w.base) != 0;
      };
      for (std::size_t k = lam.body_begin; k < lam.body_end; ++k) {
        const Token& t = toks[k];
        if (t.kind != TokKind::Punct) continue;
        if (in_nested_header(k)) continue;
        static const std::set<std::string_view> kAssign = {
            "=",  "+=", "-=", "*=", "/=", "%=",
            "&=", "|=", "^=", "<<=", ">>="};
        if (kAssign.count(t.text) != 0) {
          Write w;
          if (!extract_lvalue(toks, match, k, lam.body_begin - 1, w))
            continue;
          if (!is_shared_write(w)) continue;
          findings.push_back(
              {rel_path, t.line, "parallel-capture",
               "lambda passed to a parallel fan-out assigns ('" + t.text +
                   "') to by-reference capture '" + w.base +
                   "' — helpers race on it; give each index its own slot "
                   "(the block-reduction protocol, DESIGN.md §11) or make "
                   "it atomic"});
        } else if (t.text == "++" || t.text == "--") {
          Write w;
          bool got = false;
          if (k + 1 < lam.body_end && toks[k + 1].kind == TokKind::Ident &&
              !is_control_keyword(toks[k + 1].text)) {
            w.base = toks[k + 1].text;
            w.line = toks[k + 1].line;
            got = true;  // prefix
          } else if (extract_lvalue(toks, match, k, lam.body_begin - 1, w)) {
            got = true;  // postfix
          }
          if (!got || !is_shared_write(w)) continue;
          findings.push_back(
              {rel_path, t.line, "parallel-capture",
               "lambda passed to a parallel fan-out increments "
                   "by-reference capture '" + w.base +
                   "' — helpers race on it; use std::atomic or a per-index "
                   "slot (DESIGN.md §11)"});
        }
      }
    }
  }

  // --- allow-annotation filter --------------------------------------------
  for (std::size_t ln = 1; ln <= raw.lines.size(); ++ln) {
    const auto allows = allows_on(raw.at(ln));
    for (const auto& a : allows) {
      if (a == "*") {
        findings.push_back(
            {rel_path, ln, "allow-hygiene",
             "blanket allow annotation — name the rule being exempted: "
             "fgpcheck: " "allow(rule)"});
      } else {
        ++out.exemptions[a];
      }
    }
  }
  for (auto& f : findings) {
    const auto allows = allows_on(raw.at(f.line));
    if (allows.count(f.rule) != 0) continue;
    out.findings.push_back(std::move(f));
  }
  std::sort(out.findings.begin(), out.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return out;
}

// ---------------------------------------------------------------------------
// Tree driver

namespace {

std::vector<fs::path> scanned_files(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".h" && ext != ".cpp") continue;
      // The fixture corpus is deliberately contract-breaking.
      if (entry.path().generic_string().find("lint_fixtures") !=
          std::string::npos)
        continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

TreeAnalysis analyze_tree(const fs::path& root) {
  TreeAnalysis out;
  const auto files = scanned_files(root);
  out.files = files.size();

  NameIndex index;
  for (const auto& p : files) {
    const std::string rel = fs::relative(p, root).generic_string();
    if (starts_with(rel, "src/")) collect_names(read_file(p), rel, index);
  }
  for (const auto& p : files) {
    const std::string rel = fs::relative(p, root).generic_string();
    FileAnalysis fa = analyze_source(read_file(p), rel, index);
    out.findings.insert(out.findings.end(),
                        std::make_move_iterator(fa.findings.begin()),
                        std::make_move_iterator(fa.findings.end()));
    for (const auto& [rule, count] : fa.exemptions)
      out.exemptions[rule] += count;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppression audit

std::vector<Finding> audit_suppression_file(const fs::path& supp,
                                            const fs::path& root) {
  std::vector<Finding> out;
  const std::string rel = supp.filename().string();
  std::ifstream f(supp);
  if (!f) return out;  // no file, nothing stale

  // Gather the tree's raw contents once; every pattern token is then a
  // substring probe against this corpus.
  std::string corpus;
  for (const auto& p : scanned_files(root)) corpus += read_file(p);

  std::string line;
  std::size_t ln = 0;
  while (std::getline(f, line)) {
    ++ln;
    // Trim.
    std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    std::size_t e = line.find_last_not_of(" \t\r");
    const std::string body = line.substr(b, e - b + 1);
    if (body.empty() || body[0] == '#') continue;
    const std::size_t colon = body.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= body.size()) {
      out.push_back({rel, ln, "suppression-syntax",
                     "suppression must look like kind:symbol_pattern"});
      continue;
    }
    const std::string pattern = body.substr(colon + 1);
    // Identifier-ish fragments of the pattern (wildcards split them);
    // a suppression is live when any fragment of length >= 3 occurs in
    // the tree. Shorter fragments match everything and prove nothing.
    std::vector<std::string> frags;
    std::string cur;
    for (char c : pattern) {
      if (is_word_char(c)) {
        cur += c;
      } else {
        if (cur.size() >= 3) frags.push_back(cur);
        cur.clear();
      }
    }
    if (cur.size() >= 3) frags.push_back(cur);
    if (frags.empty()) {
      out.push_back({rel, ln, "suppression-syntax",
                     "pattern '" + pattern +
                         "' has no symbol fragment of length >= 3 — too "
                         "broad to audit"});
      continue;
    }
    bool live = false;
    for (const auto& frag : frags)
      if (corpus.find(frag) != std::string::npos) {
        live = true;
        break;
      }
    if (!live)
      out.push_back({rel, ln, "stale-suppression",
                     "no symbol fragment of '" + pattern +
                         "' matches anything under src/tests/bench/"
                         "examples/tools — delete the dead suppression"});
  }
  return out;
}

std::vector<Finding> audit_suppressions(const fs::path& root) {
  std::vector<Finding> out;
  const fs::path dir = root / "tools" / "sanitizers";
  if (!fs::exists(dir)) return out;
  std::vector<fs::path> supps;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".supp")
      supps.push_back(entry.path());
  std::sort(supps.begin(), supps.end());
  for (const auto& p : supps) {
    auto file_findings = audit_suppression_file(p, root);
    out.insert(out.end(), std::make_move_iterator(file_findings.begin()),
               std::make_move_iterator(file_findings.end()));
  }
  return out;
}

}  // namespace fgpcheck
