// fgpcheck CLI — contract-aware static analysis over the repo tree.
//
//   fgpcheck [root]                 run all source rules (default: cwd)
//   fgpcheck --suppressions [root]  audit tools/sanitizers/*.supp for
//                                   dead patterns
//
// Exit code 0 when clean, 1 on findings, 2 on usage errors. See
// fgpcheck.h for the rule catalogue and DESIGN.md §14 for the contract
// mapping.
#include "fgpcheck.h"

#include <cstdio>
#include <filesystem>
#include <string>

int main(int argc, char** argv) {
  bool suppressions = false;
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--suppressions") {
      suppressions = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: fgpcheck [--suppressions] [repo-root]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fgpcheck: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      root = arg;
    }
  }

  // A wrong root must fail loudly, not pass as "0 files scanned": CI
  // gates on our exit code, so a silently-empty scan would green-light
  // anything.
  if (!std::filesystem::is_directory(std::filesystem::path(root) / "src")) {
    std::fprintf(stderr,
                 "fgpcheck: %s does not look like the fgpred repo root "
                 "(no src/)\n",
                 root.c_str());
    return 2;
  }

  if (suppressions) {
    const auto findings = fgpcheck::audit_suppressions(root);
    for (const auto& f : findings)
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
    if (findings.empty()) {
      std::printf("fgpcheck --suppressions: all sanitizer suppressions "
                  "are live\n");
      return 0;
    }
    std::fprintf(stderr, "fgpcheck --suppressions: %zu finding(s)\n",
                 findings.size());
    return 1;
  }

  const fgpcheck::TreeAnalysis result = fgpcheck::analyze_tree(root);
  for (const auto& f : result.findings)
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());

  std::size_t exempted = 0;
  for (const auto& [rule, count] : result.exemptions) exempted += count;
  std::printf("fgpcheck: %zu file(s) scanned, %zu finding(s), %zu "
              "exemption(s)\n",
              result.files, result.findings.size(), exempted);
  if (!result.exemptions.empty()) {
    std::printf("fgpcheck: exemptions by rule:\n");
    for (const auto& [rule, count] : result.exemptions)
      std::printf("  %-24s %zu\n", rule.c_str(), count);
  }
  return result.findings.empty() ? 0 : 1;
}
