// fgpcheck — contract-aware static analyzer for the determinism,
// reduction and layering contracts (DESIGN.md §14).
//
// fgplint (tools/fgplint.cpp) bans token-level nondeterminism sources with
// line regexes; fgpcheck enforces the contracts a regex cannot express. It
// tokenizes each translation unit and runs a lightweight per-function /
// per-lambda scope analyzer — no type checker, no preprocessor — tuned so
// that every rule is cheap, linear in the source size, and safe on hostile
// input (the tokenizer diagnoses malformed files instead of crashing).
//
// Rules (each maps to a DESIGN contract; see DESIGN.md §14 for the table):
//   parallel-capture     a lambda passed to ThreadPool::parallel_for /
//                        ThreadPool::submit (or a known fan-out wrapper)
//                        that captures by reference and assigns to a
//                        captured name without an index-owned slot
//                        (`name[i] = ...`) violates the block-reduction
//                        sharing protocol of DESIGN §11 — the data races
//                        TSan only finds when the schedule cooperates.
//   unordered-iteration  range-for or .begin() iterator walks over
//                        std::unordered_map / std::unordered_set variables
//                        in src/ — iteration order is
//                        implementation-defined, so any accumulation fed
//                        by it breaks the bit-identity contract (§10/§11).
//   float-accumulation   dot-product-shaped `acc += a[i] * b[j]` loops
//                        over float/double accumulators in src/apps/
//                        kernels — accumulation order must be pinned by
//                        the util/simd.h blocked helpers (§10).
//   event-order          a std::priority_queue / sort / heap algorithm
//                        over sim::Event values in src/sim that does not
//                        name one of the canonical tie-break comparators
//                        (EventAfter / EventBefore / event_order_less) —
//                        partial keys (bare time) leave ties in container
//                        order, which breaks the deterministic-replay
//                        contract of the event engine (DESIGN.md §18).
//   layering             the project include graph must follow the layer
//                        order of src/CMakeLists.txt (util → obs → sim →
//                        repository|grid → datagen|freeride → apps|core);
//                        upward or same-rank cross-module includes are
//                        cycles waiting to happen and are rejected at the
//                        source level (§14).
//   tokenizer            malformed input the tokenizer cannot recover
//                        from (unterminated string / raw string / block
//                        comment) — diagnosed, never a crash or a hang.
//   allow-hygiene        a blanket allow annotation (no rule name) is an
//                        error; exemptions must name the rule they exempt.
//
// Escape hatch: a line whose trailing comment contains the tool-name
// prefix followed by `allow(<rule>)` is exempt from that rule (repeat
// the annotation to exempt several rules). Annotations only count inside
// a // comment. Every annotation is counted and reported in the
// exemption summary so allow-creep stays visible in CI logs.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace fgpcheck {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

// ---------------------------------------------------------------------------
// Tokenizer

enum class TokKind { Ident, Number, Punct, Str, Chr, Eof };

struct Token {
  TokKind kind = TokKind::Eof;
  std::string text;       // for Str: the literal's contents, quotes stripped
  std::size_t line = 0;   // 1-based
};

struct TokenizeResult {
  std::vector<Token> tokens;
  std::vector<Finding> diagnostics;  // rule "tokenizer"
};

/// Tokenizes one translation unit. Comments are skipped; string / char /
/// raw-string literals become single tokens; multi-character operators use
/// maximal munch. Linear time, never throws on malformed input — problems
/// become "tokenizer" diagnostics attributed to `file`.
TokenizeResult tokenize(std::string_view src, const std::string& file);

// ---------------------------------------------------------------------------
// Analysis

/// Names with project-wide meaning collected in a first pass over the
/// tree: variables of unordered container type (including via `using`
/// aliases) and variables of std::atomic type (writes to which are not
/// data races).
struct NameIndex {
  std::set<std::string> unordered_vars;
  std::set<std::string> unordered_aliases;  // type names aliasing unordered_*
  std::set<std::string> atomic_vars;
  /// Variables in src/sim declared as sim::Event (or a container of them)
  /// — the event-order rule's subjects.
  std::set<std::string> event_vars;
};

/// Pass 1 over one file: records unordered-typed / atomic-typed variable
/// declarations and `using X = std::unordered_*` aliases into `index`.
void collect_names(std::string_view src, const std::string& rel_path,
                   NameIndex& index);

struct FileAnalysis {
  std::vector<Finding> findings;
  /// rule name -> number of allow(rule) annotations seen.
  std::map<std::string, std::size_t> exemptions;
};

/// Pass 2 over one file: runs every rule whose scope includes `rel_path`
/// (paths are repo-relative, forward slashes: "src/apps/kmeans.cpp") and
/// applies the allow-annotation filter. `index` may be empty.
FileAnalysis analyze_source(std::string_view src, const std::string& rel_path,
                            const NameIndex& index);

struct TreeAnalysis {
  std::vector<Finding> findings;
  std::map<std::string, std::size_t> exemptions;
  std::size_t files = 0;
};

/// Walks src/tests/bench/examples/tools under `root` (skipping the
/// deliberately-dirty tests/lint_fixtures corpus), builds the name index
/// and analyzes every .h/.cpp file.
TreeAnalysis analyze_tree(const std::filesystem::path& root);

// ---------------------------------------------------------------------------
// Layering

/// Layer rank of a repo-relative path, or -1 when the file is outside
/// src/ (layering is only enforced inside the library tree). Ranks mirror
/// the link graph in src/CMakeLists.txt.
int layer_rank(std::string_view rel_path);

// ---------------------------------------------------------------------------
// Suppression audit

/// Checks that every suppression pattern in the sanitizer suppression
/// file at `supp` still names a symbol that occurs somewhere under the
/// scanned tree at `root`. Dead suppressions (nothing matches) become
/// findings with rule "stale-suppression"; malformed lines (no
/// `kind:pattern` shape) become "suppression-syntax".
std::vector<Finding> audit_suppression_file(
    const std::filesystem::path& supp, const std::filesystem::path& root);

/// Audits tools/sanitizers/*.supp under `root`.
std::vector<Finding> audit_suppressions(const std::filesystem::path& root);

}  // namespace fgpcheck
