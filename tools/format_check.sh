#!/bin/sh
# format_check.sh — flag clang-format drift without rewriting the tree.
#
# Usage: tools/format_check.sh [repo-root]
#
# Exits 0 when every tracked C++ file matches .clang-format, 1 when any
# file drifts (listing the offenders), and 0 with a notice when
# clang-format is not installed so offline/container builds stay green
# (tools/fgplint still enforces the formatting basics mechanically).
set -u

root="${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}"
cd "$root" || exit 2

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check: clang-format not found; skipping drift check" >&2
  exit 0
fi

# tests/lint_fixtures is a frozen, deliberately-dirty corpus; reformatting
# it would shift the exact line numbers tests/test_fgpcheck.cpp asserts.
status=0
for f in $(find src tests bench examples tools \
             -path '*/lint_fixtures/*' -prune -o \
             \( -name '*.h' -o -name '*.cpp' \) -print | sort); do
  if ! clang-format --style=file --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "format_check: drift in $f" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "format_check: clean"
else
  echo "format_check: run clang-format -i on the files above" >&2
fi
exit "$status"
