// Tests for the prediction framework: profile collection, the class
// taxonomy and its auto-detection, the IPC probe, the three predictor
// models (including exactness under a frictionless cluster — the key
// analytical property), heterogeneous scaling, and resource selection.
#include <gtest/gtest.h>

#include <cmath>

#include "core/classes.h"
#include "core/hetero.h"
#include "core/ipc_probe.h"
#include "core/predictor.h"
#include "core/profile.h"
#include "core/selector.h"
#include "helpers.h"
#include "util/stats.h"

namespace fgp::core {
namespace {

using fgp::testing::SumKernel;
using fgp::testing::SumKernelParams;
using fgp::testing::ideal_setup;
using fgp::testing::make_sum_dataset;
using fgp::testing::pentium_setup;

// ---------------------------------------------------------------- profile

TEST(Profile, CollectorRecordsConfigurationAndBreakdown) {
  const auto ds = make_sum_dataset(16, 64, 10.0);
  auto setup = pentium_setup(&ds, 2, 4);
  SumKernel kernel;
  const Profile p = ProfileCollector::collect(setup, kernel);
  EXPECT_EQ(p.app, "sum");
  EXPECT_EQ(p.config.data_nodes, 2);
  EXPECT_EQ(p.config.compute_nodes, 4);
  EXPECT_DOUBLE_EQ(p.config.dataset_bytes, ds.total_virtual_bytes());
  EXPECT_DOUBLE_EQ(p.config.bandwidth_Bps, setup.wan.per_link_Bps);
  EXPECT_EQ(p.config.compute_cluster, "pentium-myrinet");
  EXPECT_GT(p.t_disk, 0.0);
  EXPECT_GT(p.t_network, 0.0);
  EXPECT_GT(p.t_compute, 0.0);
  EXPECT_GE(p.t_compute, p.t_ro + p.t_g);
  EXPECT_GT(p.object_bytes, 0.0);
  EXPECT_EQ(p.passes, 1);
  EXPECT_DOUBLE_EQ(p.total(), p.t_disk + p.t_network + p.t_compute);
}

// ---------------------------------------------------------------- classes

Profile synthetic_profile(int c, double s, double r, double tg) {
  Profile p;
  p.app = "synthetic";
  p.config.data_nodes = 1;
  p.config.compute_nodes = c;
  p.config.dataset_bytes = s;
  p.config.bandwidth_Bps = 1e6;
  p.object_bytes = r;
  p.t_g = tg;
  p.t_disk = p.t_network = 1.0;
  p.t_compute = 10.0 + tg;
  return p;
}

TEST(Classes, ConstantObjectEstimateIgnoresTarget) {
  const Profile p = synthetic_profile(2, 100.0, 64.0, 1.0);
  ProfileConfig target;
  target.data_nodes = 1;
  target.compute_nodes = 16;
  target.dataset_bytes = 400.0;
  target.bandwidth_Bps = 1e6;
  EXPECT_DOUBLE_EQ(estimate_object_bytes(RoSizeClass::Constant, p, target),
                   64.0);
}

TEST(Classes, LinearObjectEstimateTracksDataPerNode) {
  const Profile p = synthetic_profile(2, 100.0, 64.0, 1.0);
  ProfileConfig target;
  target.compute_nodes = 8;
  target.dataset_bytes = 400.0;
  // r̂ = 64 * (400/100) * (2/8) = 64.
  EXPECT_DOUBLE_EQ(
      estimate_object_bytes(RoSizeClass::LinearWithData, p, target), 64.0);
  target.compute_nodes = 2;
  EXPECT_DOUBLE_EQ(
      estimate_object_bytes(RoSizeClass::LinearWithData, p, target), 256.0);
}

TEST(Classes, GlobalTimeEstimators) {
  const Profile p = synthetic_profile(2, 100.0, 64.0, 3.0);
  ProfileConfig target;
  target.compute_nodes = 8;
  target.dataset_bytes = 200.0;
  EXPECT_DOUBLE_EQ(
      estimate_global_time(GlobalReductionClass::LinearConstant, p, target),
      12.0);  // 3 * 8/2
  EXPECT_DOUBLE_EQ(
      estimate_global_time(GlobalReductionClass::ConstantLinear, p, target),
      6.0);  // 3 * 200/100
}

TEST(Classes, DetectConstantObjectLinearConstantGlobal) {
  // r constant across node counts; t_g grows with node count.
  const std::vector<Profile> profiles{synthetic_profile(1, 100, 64, 1.0),
                                      synthetic_profile(4, 100, 64, 4.0),
                                      synthetic_profile(8, 100, 64, 8.0)};
  const auto cls = detect_classes(profiles);
  EXPECT_EQ(cls.ro, RoSizeClass::Constant);
  EXPECT_EQ(cls.global, GlobalReductionClass::LinearConstant);
}

TEST(Classes, DetectLinearObjectConstantLinearGlobal) {
  // r halves when node count doubles; grows with data; t_g tracks data.
  const std::vector<Profile> profiles{
      synthetic_profile(1, 100, 1000, 2.0), synthetic_profile(4, 100, 250, 2.0),
      synthetic_profile(1, 400, 4000, 8.0)};
  const auto cls = detect_classes(profiles);
  EXPECT_EQ(cls.ro, RoSizeClass::LinearWithData);
  EXPECT_EQ(cls.global, GlobalReductionClass::ConstantLinear);
}

TEST(Classes, DetectionRequiresVariation) {
  const std::vector<Profile> same{synthetic_profile(2, 100, 64, 1.0),
                                  synthetic_profile(2, 100, 64, 1.0)};
  EXPECT_THROW(detect_classes(same), util::Error);
  const std::vector<Profile> one{synthetic_profile(2, 100, 64, 1.0)};
  EXPECT_THROW(detect_classes(one), util::Error);
}

TEST(Classes, DetectionFromRealRuns) {
  // Constant-object kernel profiles at two node counts.
  const auto ds = make_sum_dataset(16, 64);
  std::vector<Profile> profiles;
  for (int c : {2, 8}) {
    auto setup = pentium_setup(&ds, 1, c);
    SumKernelParams params;
    params.constant_ballast = 2048;
    params.merge_flops = 500.0;
    params.global_flops = 500.0;
    SumKernel kernel(params);
    profiles.push_back(ProfileCollector::collect(setup, kernel));
  }
  EXPECT_EQ(detect_classes(profiles).ro, RoSizeClass::Constant);

  // Linear-object kernel.
  profiles.clear();
  for (int c : {2, 8}) {
    auto setup = pentium_setup(&ds, 1, c);
    SumKernelParams params;
    params.ballast_per_element = 4.0;
    params.scales_with_data = true;
    SumKernel kernel(params);
    profiles.push_back(ProfileCollector::collect(setup, kernel));
  }
  EXPECT_EQ(detect_classes(profiles).ro, RoSizeClass::LinearWithData);
}

TEST(Classes, ToStringsAreStable) {
  EXPECT_STREQ(to_string(RoSizeClass::Constant), "constant");
  EXPECT_STREQ(to_string(GlobalReductionClass::ConstantLinear),
               "constant-linear");
}

// -------------------------------------------------------------- ipc probe

TEST(IpcProbe, RecoversInterconnectParametersExactly) {
  const auto cluster = sim::cluster_pentium_myrinet();
  const IpcParams p = measure_ipc(cluster);
  EXPECT_NEAR(p.w, 1.0 / cluster.interconnect.bandwidth_Bps, 1e-18);
  EXPECT_NEAR(p.l, cluster.interconnect.latency_s, 1e-12);
}

TEST(IpcProbe, IdealClusterHasZeroLatency) {
  const IpcParams p = measure_ipc(sim::cluster_ideal());
  EXPECT_NEAR(p.l, 0.0, 1e-15);
}

// -------------------------------------------------------------- predictor

PredictorOptions global_options(const sim::ClusterSpec& target_cluster,
                                AppClasses classes = {}) {
  PredictorOptions opts;
  opts.model = PredictionModel::GlobalReduction;
  opts.classes = classes;
  opts.ipc = measure_ipc(target_cluster);
  return opts;
}

TEST(Predictor, ValidatesProfileAndTarget) {
  Profile p = synthetic_profile(2, 100.0, 64.0, 1.0);
  PredictorOptions opts;
  opts.ipc = {1e-8, 1e-5};
  const Predictor predictor(p, opts);
  ProfileConfig bad;
  bad.data_nodes = 4;
  bad.compute_nodes = 2;  // violates M >= N
  bad.dataset_bytes = 100.0;
  bad.bandwidth_Bps = 1e6;
  EXPECT_THROW(predictor.predict(bad), util::Error);

  Profile empty = p;
  empty.config.dataset_bytes = 0.0;
  EXPECT_THROW(Predictor(empty, opts), util::Error);
}

TEST(Predictor, IdentityPredictionReproducesProfile) {
  // Predicting the profile's own configuration must return the profile's
  // own component times under every model (the scale factors are all 1 and
  // T̂_ro/T̂_g reduce to the measured values).
  const auto ds = make_sum_dataset(16, 64);
  auto setup = pentium_setup(&ds, 2, 4);
  SumKernelParams params;
  params.constant_ballast = 8192;
  params.merge_flops = 2000.0;
  params.global_flops = 2000.0;
  SumKernel kernel(params);
  const Profile p = ProfileCollector::collect(setup, kernel);

  for (const auto model :
       {PredictionModel::NoCommunication,
        PredictionModel::ReductionCommunication,
        PredictionModel::GlobalReduction}) {
    auto opts = global_options(setup.compute_cluster,
                               {RoSizeClass::Constant,
                                GlobalReductionClass::LinearConstant});
    opts.model = model;
    const auto predicted = Predictor(p, opts).predict(p.config);
    EXPECT_NEAR(predicted.disk, p.t_disk, 1e-9);
    EXPECT_NEAR(predicted.network, p.t_network, 1e-9);
    if (model == PredictionModel::NoCommunication) {
      EXPECT_NEAR(predicted.compute, p.t_compute, 1e-9);
    }
  }
}

/// Runs the SumKernel on a frictionless grid and checks that the
/// global-reduction model predicts *exactly* — the analytical property the
/// paper's model has by construction on ideal hardware.
class ExactnessSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExactnessSweep, GlobalReductionModelExactOnIdealGrid) {
  const auto [n_hat, c_hat] = GetParam();
  if (c_hat < n_hat) GTEST_SKIP();

  const auto ds = make_sum_dataset(16, 64);
  SumKernelParams params;
  params.constant_ballast = 4096;
  params.merge_flops = 1000.0;
  params.global_flops = 1000.0;
  params.passes = 2;

  // Profile at 1-2 so the gather path is exercised in the profile.
  auto profile_setup = ideal_setup(&ds, 1, 2);
  profile_setup.wan = sim::wan_ideal(50.0);
  SumKernel profile_kernel(params);
  const Profile p = ProfileCollector::collect(profile_setup, profile_kernel);

  auto opts = global_options(profile_setup.compute_cluster,
                             {RoSizeClass::Constant,
                              GlobalReductionClass::LinearConstant});
  const Predictor predictor(p, opts);

  auto target_setup = ideal_setup(&ds, n_hat, c_hat);
  target_setup.wan = sim::wan_ideal(50.0);
  SumKernel target_kernel(params);
  const auto actual = freeride::Runtime().run(target_setup, target_kernel);

  ProfileConfig target = p.config;
  target.data_nodes = n_hat;
  target.compute_nodes = c_hat;
  const auto predicted = predictor.predict(target);

  EXPECT_NEAR(predicted.disk, actual.timing.total.disk,
              1e-9 * std::max(1.0, actual.timing.total.disk));
  EXPECT_NEAR(predicted.network, actual.timing.total.network,
              1e-9 * std::max(1.0, actual.timing.total.network));
  EXPECT_NEAR(predicted.compute, actual.timing.total.compute(),
              1e-9 * std::max(1.0, actual.timing.total.compute()));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ExactnessSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 2, 4, 8, 16)));

TEST(Predictor, ExactForLinearObjectClassOnIdealGrid) {
  // Large ballast so the constant serialization header is negligible: the
  // linear-size estimate r̂ = r·(ŝ/s)·(c/ĉ) is exact only up to that
  // constant, so this property is "exact to within the header overhead".
  const auto ds = make_sum_dataset(16, 64);
  SumKernelParams params;
  params.ballast_per_element = 64.0;
  params.scales_with_data = true;

  auto profile_setup = ideal_setup(&ds, 1, 2);
  profile_setup.wan = sim::wan_ideal(50.0);
  SumKernel profile_kernel(params);
  const Profile p = ProfileCollector::collect(profile_setup, profile_kernel);

  auto opts = global_options(profile_setup.compute_cluster,
                             {RoSizeClass::LinearWithData,
                              GlobalReductionClass::ConstantLinear});
  const Predictor predictor(p, opts);

  for (const int c_hat : {4, 8, 16}) {
    auto target_setup = ideal_setup(&ds, 1, c_hat);
    target_setup.wan = sim::wan_ideal(50.0);
    SumKernel target_kernel(params);
    const auto actual = freeride::Runtime().run(target_setup, target_kernel);
    ProfileConfig target = p.config;
    target.compute_nodes = c_hat;
    const auto predicted = predictor.predict(target);
    EXPECT_NEAR(predicted.compute, actual.timing.total.compute(),
                0.01 * actual.timing.total.compute())
        << "c=" << c_hat;
  }
}

TEST(Predictor, ExactForDatasetScalingOnIdealGrid) {
  const auto small = make_sum_dataset(16, 64);
  const auto big = make_sum_dataset(16, 256);
  SumKernelParams params;
  params.constant_ballast = 1024;
  auto profile_setup = ideal_setup(&small, 1, 2);
  profile_setup.wan = sim::wan_ideal(50.0);
  SumKernel kernel(params);
  const Profile p = ProfileCollector::collect(profile_setup, kernel);

  auto opts = global_options(profile_setup.compute_cluster,
                             {RoSizeClass::Constant,
                              GlobalReductionClass::ConstantLinear});
  const Predictor predictor(p, opts);

  auto target_setup = ideal_setup(&big, 1, 2);
  target_setup.wan = sim::wan_ideal(50.0);
  SumKernel target_kernel(params);
  const auto actual = freeride::Runtime().run(target_setup, target_kernel);
  ProfileConfig target = p.config;
  target.dataset_bytes = big.total_virtual_bytes();
  const auto predicted = predictor.predict(target);
  EXPECT_NEAR(predicted.total(), actual.timing.total.total(),
              1e-9 * actual.timing.total.total());
}

TEST(Predictor, ExactForBandwidthChangeOnIdealGrid) {
  const auto ds = make_sum_dataset(16, 64);
  auto profile_setup = ideal_setup(&ds, 2, 4);
  profile_setup.wan = sim::wan_ideal(50.0);
  SumKernel kernel;
  const Profile p = ProfileCollector::collect(profile_setup, kernel);

  auto opts = global_options(profile_setup.compute_cluster);
  const Predictor predictor(p, opts);

  auto target_setup = ideal_setup(&ds, 2, 4);
  target_setup.wan = sim::wan_ideal(12.5);  // quarter the bandwidth
  SumKernel target_kernel;
  const auto actual = freeride::Runtime().run(target_setup, target_kernel);
  ProfileConfig target = p.config;
  target.bandwidth_Bps = target_setup.wan.per_link_Bps;
  const auto predicted = predictor.predict(target);
  EXPECT_NEAR(predicted.network, actual.timing.total.network,
              1e-9 * actual.timing.total.network);
  EXPECT_NEAR(predicted.network, 4.0 * p.t_network, 1e-9 * p.t_network);
}

TEST(Predictor, GlobalModelBeatsNoCommOnRealisticCluster) {
  const auto ds = make_sum_dataset(32, 64, 1000.0);
  SumKernelParams params;
  params.constant_ballast = 256 * 1024;
  params.merge_flops = 5e6;
  params.global_flops = 5e6;
  auto profile_setup = pentium_setup(&ds, 1, 1);
  SumKernel kernel(params);
  const Profile p = ProfileCollector::collect(profile_setup, kernel);

  auto target_setup = pentium_setup(&ds, 1, 16);
  SumKernel target_kernel(params);
  const auto actual =
      freeride::Runtime().run(target_setup, target_kernel).timing.total;
  ProfileConfig target = p.config;
  target.compute_nodes = 16;

  auto err_for = [&](PredictionModel model) {
    auto opts = global_options(profile_setup.compute_cluster,
                               {RoSizeClass::Constant,
                                GlobalReductionClass::LinearConstant});
    opts.model = model;
    const auto predicted = Predictor(p, opts).predict(target);
    return util::relative_error(actual.total(), predicted.total());
  };
  const double e_none = err_for(PredictionModel::NoCommunication);
  const double e_global = err_for(PredictionModel::GlobalReduction);
  EXPECT_LT(e_global, e_none);
  EXPECT_LT(e_global, 0.05);
}

TEST(Predictor, NetworkNodeScalingTermCanBeRemoved) {
  Profile p = synthetic_profile(2, 100.0, 64.0, 0.0);
  p.config.data_nodes = 2;
  PredictorOptions opts;
  opts.model = PredictionModel::NoCommunication;
  opts.ipc = {1e-8, 1e-5};
  ProfileConfig target = p.config;
  target.data_nodes = 4;
  target.compute_nodes = 4;
  opts.network_throughput_scales_with_nodes = true;
  const auto scaled = Predictor(p, opts).predict(target);
  opts.network_throughput_scales_with_nodes = false;
  const auto unscaled = Predictor(p, opts).predict(target);
  EXPECT_DOUBLE_EQ(scaled.network, 0.5 * unscaled.network);
  EXPECT_DOUBLE_EQ(scaled.disk, unscaled.disk);  // disk term unaffected
}

// ----------------------------------------------------------------- hetero

TEST(Hetero, ScalingFactorsAverageComponentRatios) {
  std::vector<Profile> on_a, on_b;
  for (int i = 0; i < 3; ++i) {
    Profile a = synthetic_profile(4, 100.0, 64.0, 1.0);
    a.app = "app" + std::to_string(i);
    a.t_disk = 10.0;
    a.t_network = 20.0;
    a.t_compute = 40.0;
    Profile b = a;
    b.t_disk = 5.0;                      // ratio 0.5
    b.t_network = 10.0;                  // ratio 0.5
    b.t_compute = 10.0 * (i + 1);        // ratios 0.25, 0.5, 0.75
    on_a.push_back(a);
    on_b.push_back(b);
  }
  const auto f = compute_scaling_factors(on_a, on_b);
  EXPECT_DOUBLE_EQ(f.disk, 0.5);
  EXPECT_DOUBLE_EQ(f.network, 0.5);
  EXPECT_DOUBLE_EQ(f.compute, 0.5);
}

TEST(Hetero, MismatchedConfigurationsThrow) {
  Profile a = synthetic_profile(4, 100.0, 64.0, 1.0);
  Profile b = synthetic_profile(8, 100.0, 64.0, 1.0);  // different c
  b.app = a.app;
  EXPECT_THROW(
      compute_scaling_factors(std::vector<Profile>{a}, std::vector<Profile>{b}),
      util::Error);
}

TEST(Hetero, MissingAppThrows) {
  Profile a = synthetic_profile(4, 100.0, 64.0, 1.0);
  a.app = "only-on-a";
  Profile b = synthetic_profile(4, 100.0, 64.0, 1.0);
  b.app = "different";
  EXPECT_THROW(
      compute_scaling_factors(std::vector<Profile>{a}, std::vector<Profile>{b}),
      util::Error);
}

TEST(Hetero, EndToEndPredictionAcrossClusters) {
  // Profile and representative apps on Pentium; predict for Opteron.
  const auto ds = make_sum_dataset(32, 64, 100.0);

  // Three representative apps with different flop:byte mixes.
  std::vector<SumKernelParams> rep_params(3);
  rep_params[0].flops_per_element = 30.0;
  rep_params[0].bytes_per_element = 8.0;
  rep_params[1].flops_per_element = 10.0;
  rep_params[1].bytes_per_element = 24.0;
  rep_params[2].flops_per_element = 20.0;
  rep_params[2].bytes_per_element = 16.0;

  std::vector<Profile> on_a, on_b;
  for (int i = 0; i < 3; ++i) {
    auto setup_a = pentium_setup(&ds, 2, 4);
    SumKernel ka(rep_params[static_cast<std::size_t>(i)]);
    Profile pa = ProfileCollector::collect(setup_a, ka);
    pa.app = "rep" + std::to_string(i);
    on_a.push_back(pa);

    auto setup_b = setup_a;
    setup_b.data_cluster = sim::cluster_opteron_infiniband();
    setup_b.compute_cluster = sim::cluster_opteron_infiniband();
    SumKernel kb(rep_params[static_cast<std::size_t>(i)]);
    Profile pb = ProfileCollector::collect(setup_b, kb);
    pb.app = pa.app;
    on_b.push_back(pb);
  }
  const auto factors = compute_scaling_factors(on_a, on_b);
  EXPECT_LT(factors.compute, 1.0);  // Opteron is faster

  // Target app: a fourth mix, profiled on Pentium only.
  SumKernelParams target_params;
  target_params.flops_per_element = 25.0;
  target_params.bytes_per_element = 12.0;
  auto profile_setup = pentium_setup(&ds, 2, 4);
  SumKernel target_a(target_params);
  const Profile p = ProfileCollector::collect(profile_setup, target_a);

  auto opts = global_options(profile_setup.compute_cluster);
  const HeteroPredictor hp(Predictor(p, opts), factors);

  // Actual execution on the Opteron cluster at 4-8.
  auto actual_setup = pentium_setup(&ds, 4, 8);
  actual_setup.data_cluster = sim::cluster_opteron_infiniband();
  actual_setup.compute_cluster = sim::cluster_opteron_infiniband();
  SumKernel target_b(target_params);
  const auto actual =
      freeride::Runtime().run(actual_setup, target_b).timing.total;

  ProfileConfig target = p.config;
  target.data_nodes = 4;
  target.compute_nodes = 8;
  const auto predicted = hp.predict(target);
  // Averaged factors carry error, but must land in the right ballpark.
  EXPECT_LT(util::relative_error(actual.total(), predicted.total()), 0.25);
}

// --------------------------------------------------------------- selector

TEST(Selector, PicksTheTrulyCheapestCandidate) {
  const auto ds = make_sum_dataset(32, 64, 200.0);

  grid::GridCatalog catalog;
  catalog.register_repository_site(
      {"repo-near", sim::cluster_pentium_myrinet(), 4});
  catalog.register_repository_site(
      {"repo-far", sim::cluster_pentium_myrinet(), 8});
  catalog.register_compute_site({"hpc", sim::cluster_pentium_myrinet(), 16});
  catalog.register_link("repo-near", "hpc", sim::wan_mbps(200));
  catalog.register_link("repo-far", "hpc", sim::wan_mbps(10));
  catalog.register_replica({"data", "repo-near", 2});
  catalog.register_replica({"data", "repo-far", 8});

  // Profile on the same compute cluster.
  auto profile_setup = pentium_setup(&ds, 1, 1);
  SumKernel profile_kernel;
  const Profile p = ProfileCollector::collect(profile_setup, profile_kernel);

  PredictorOptions opts;
  opts.model = PredictionModel::GlobalReduction;
  opts.classes = {RoSizeClass::Constant,
                  GlobalReductionClass::LinearConstant};
  const ResourceSelector selector(&catalog, p, opts);

  const auto ranked = selector.rank("data", ds.total_virtual_bytes());
  ASSERT_FALSE(ranked.empty());
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].predicted.total(), ranked[i].predicted.total());

  // Ground truth: simulate every candidate and find the true optimum.
  double best_actual = 1e300;
  grid::Candidate best_candidate;
  for (const auto& cand : catalog.enumerate_candidates("data")) {
    freeride::JobSetup setup;
    setup.dataset = &ds;
    setup.data_cluster =
        catalog.repository_site(cand.replica.repository).cluster;
    setup.compute_cluster = catalog.compute_site(cand.compute_site).cluster;
    setup.wan = cand.wan;
    setup.config.data_nodes = cand.replica.storage_nodes;
    setup.config.compute_nodes = cand.compute_nodes;
    SumKernel k;
    const double t = freeride::Runtime().run(setup, k).timing.total.total();
    if (t < best_actual) {
      best_actual = t;
      best_candidate = cand;
    }
  }
  const auto chosen = selector.best("data", ds.total_virtual_bytes());
  EXPECT_EQ(chosen.candidate.replica.repository,
            best_candidate.replica.repository);
  EXPECT_EQ(chosen.candidate.compute_nodes, best_candidate.compute_nodes);
  // The predicted cost of the winner is close to its simulated cost.
  EXPECT_LT(util::relative_error(best_actual, chosen.predicted.total()), 0.15);
}

TEST(Selector, SkipsClustersWithoutScalingFactors) {
  const auto ds = make_sum_dataset(8, 32);
  grid::GridCatalog catalog;
  catalog.register_repository_site(
      {"repo", sim::cluster_pentium_myrinet(), 2});
  catalog.register_compute_site(
      {"other", sim::cluster_opteron_infiniband(), 8});
  catalog.register_link("repo", "other", sim::wan_mbps(50));
  catalog.register_replica({"data", "repo", 2});

  auto profile_setup = pentium_setup(&ds, 1, 1);
  SumKernel kernel;
  const Profile p = ProfileCollector::collect(profile_setup, kernel);
  PredictorOptions opts;
  opts.ipc = measure_ipc(profile_setup.compute_cluster);

  const ResourceSelector no_scalers(&catalog, p, opts);
  EXPECT_TRUE(no_scalers.rank("data", ds.total_virtual_bytes()).empty());
  EXPECT_THROW(no_scalers.best("data", ds.total_virtual_bytes()),
               util::Error);

  std::map<std::string, ScalingFactors> scalers;
  scalers["opteron-infiniband"] = {0.5, 0.6, 0.3};
  const ResourceSelector with_scalers(&catalog, p, opts, scalers);
  const auto ranked = with_scalers.rank("data", ds.total_virtual_bytes());
  EXPECT_FALSE(ranked.empty());
  for (const auto& rc : ranked) EXPECT_TRUE(rc.used_hetero_scaling);
}

}  // namespace
}  // namespace fgp::core
