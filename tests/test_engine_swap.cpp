// Engine-swap bit-identity: the discrete-event core (EngineMode::Event)
// and the reference phase loop (EngineMode::PhaseLoop) must be
// indistinguishable byte-for-byte — same reduction-object bits, same
// virtual-time components, same deterministic trace/metrics exports, and
// same residual reports — across every figure-style workload shape and at
// host pools 0 (serial), 2 and 8 (DESIGN.md §18). Any divergence means
// the event queue's dispatch order leaked into an accounting fold.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/kmeans.h"
#include "apps/vortex.h"
#include "core/ipc_probe.h"
#include "core/predictor.h"
#include "core/profile.h"
#include "core/residuals.h"
#include "datagen/flowfield.h"
#include "datagen/points.h"
#include "freeride/runtime.h"
#include "helpers.h"
#include "obs/metrics.h"
#include "obs/residual.h"
#include "obs/trace.h"
#include "sim/cluster.h"
#include "sim/network.h"
#include "util/serial.h"

namespace fgp {
namespace {

// Pool sizes the swap must hold under: 0 = the serial Runtime(), then an
// owned pool of 2 and of 8 host threads.
constexpr std::size_t kPools[] = {0, 2, 8};

struct Scenario {
  std::string name;
  std::function<std::unique_ptr<freeride::ReductionKernel>()> kernel;
  std::function<freeride::JobSetup()> setup;  ///< engine/sinks left unset
};

/// Everything one run exports, reduced to bytes so equality is
/// bit-identity: the serialized reduction object, every timing double
/// (memcmp'd, so NaN or signed-zero drift is caught), and the
/// deterministic trace/metrics JSON.
struct SwapArtifacts {
  std::vector<std::uint8_t> object_bytes;
  std::vector<double> doubles;
  int passes = 0;
  freeride::CacheMode cache_mode = freeride::CacheMode::None;
  std::string trace_json;
  std::string metrics_json;

  void add(double v) { doubles.push_back(v); }
};

void expect_identical(const SwapArtifacts& a, const SwapArtifacts& b,
                      const std::string& label) {
  EXPECT_EQ(a.passes, b.passes) << label;
  EXPECT_EQ(a.cache_mode, b.cache_mode) << label;
  EXPECT_EQ(a.object_bytes, b.object_bytes) << label << ": object bytes";
  ASSERT_EQ(a.doubles.size(), b.doubles.size()) << label;
  for (std::size_t i = 0; i < a.doubles.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.doubles[i], &b.doubles[i], sizeof(double)), 0)
        << label << ": timing double #" << i << " (" << a.doubles[i]
        << " vs " << b.doubles[i] << ")";
  }
  EXPECT_EQ(a.trace_json, b.trace_json) << label << ": trace export";
  EXPECT_EQ(a.metrics_json, b.metrics_json) << label << ": metrics export";
}

SwapArtifacts run_once(const Scenario& s, freeride::EngineMode mode,
                       std::size_t pool) {
  obs::TraceRecorder trace;
  obs::Registry metrics;
  freeride::JobSetup setup = s.setup();
  setup.engine = mode;
  setup.trace = &trace;
  setup.metrics = &metrics;
  auto kernel = s.kernel();
  const freeride::RunResult result =
      pool == 0 ? freeride::Runtime().run(setup, *kernel)
                : freeride::Runtime(pool).run(setup, *kernel);

  SwapArtifacts art;
  util::ByteWriter w;
  result.result->serialize(w);
  art.object_bytes = w.take();
  art.passes = result.passes;
  art.cache_mode = result.cache_mode;

  art.add(result.timing.elapsed);
  art.add(result.timing.max_object_bytes);
  art.add(result.timing.total.disk);
  art.add(result.timing.total.network);
  art.add(result.timing.total.compute_local);
  art.add(result.timing.total.ro_comm);
  art.add(result.timing.total.global_red);
  art.add(result.total_work.flops);
  art.add(result.total_work.bytes);
  for (const auto& pass : result.timing.passes) {
    art.add(pass.elapsed);
    art.add(pass.max_object_bytes);
    art.add(pass.timing.disk);
    art.add(pass.timing.network);
    art.add(pass.timing.compute_local);
    art.add(pass.timing.ro_comm);
    art.add(pass.timing.global_red);
    for (const double nc : pass.node_compute) art.add(nc);
  }

  // Deterministic-domain exports only: the event engine's own counters
  // live in the host domain precisely so the swap stays byte-clean here.
  art.trace_json = trace.to_chrome_json(false);
  art.metrics_json = metrics.to_json(false);
  return art;
}

/// The swap contract for one scenario: at every pool size, Event and
/// PhaseLoop agree byte-for-byte; and (cheap extra) Event stays
/// bit-identical across pool sizes, so the engine did not break the
/// existing host-parallelism determinism contract.
void check_swap(const Scenario& s) {
  std::vector<SwapArtifacts> event_runs;
  for (const std::size_t pool : kPools) {
    SwapArtifacts ev = run_once(s, freeride::EngineMode::Event, pool);
    SwapArtifacts ph = run_once(s, freeride::EngineMode::PhaseLoop, pool);
    expect_identical(ev, ph,
                     s.name + " event-vs-phaseloop @pool=" +
                         std::to_string(pool));
    event_runs.push_back(std::move(ev));
  }
  for (std::size_t i = 1; i < event_runs.size(); ++i) {
    expect_identical(event_runs[0], event_runs[i],
                     s.name + " event pool=0 vs pool=" +
                         std::to_string(kPools[i]));
  }
}

// ---------------------------------------------------------------------------
// Workload builders (reduced-scale versions of the figure workloads).

datagen::PointsDataset kmeans_points(std::uint64_t seed) {
  datagen::PointsSpec spec;
  spec.num_points = 2000;
  spec.dim = 4;
  spec.num_components = 3;
  spec.points_per_chunk = 100;
  spec.seed = seed;
  return datagen::generate_points(spec);
}

Scenario kmeans_scenario(std::string name,
                         const datagen::PointsDataset* data,
                         std::function<freeride::JobSetup()> setup,
                         int fixed_passes = 0) {
  Scenario s;
  s.name = std::move(name);
  s.kernel = [data, fixed_passes] {
    apps::KMeansParams params;
    params.k = 3;
    params.dim = 4;
    params.initial_centers =
        apps::initial_centers_from_dataset(data->dataset, 3, 4);
    if (fixed_passes > 0) params.fixed_passes = fixed_passes;
    return std::make_unique<apps::KMeansKernel>(params);
  };
  s.setup = std::move(setup);
  return s;
}

// ---------------------------------------------------------------------------

TEST(EngineSwap, KMeansPentiumGrid) {
  // fig02-style: iterative k-means on the Pentium/Myrinet cluster across
  // grid corners 1-1, 2-4 and 4-8.
  const auto data = kmeans_points(42);
  for (const auto& [n, c] : {std::pair{1, 1}, {2, 4}, {4, 8}}) {
    check_swap(kmeans_scenario(
        "kmeans-pentium-" + std::to_string(n) + "-" + std::to_string(c),
        &data, [&data, n = n, c = c] {
          return testing::pentium_setup(&data.dataset, n, c);
        }));
  }
}

TEST(EngineSwap, KMeansOpteronCluster) {
  // fig11-style heterogeneous target: same workload on the
  // Opteron/Infiniband cluster.
  const auto data = kmeans_points(7);
  check_swap(kmeans_scenario("kmeans-opteron-4-8", &data, [&data] {
    auto setup = testing::pentium_setup(&data.dataset, 4, 8);
    setup.data_cluster = sim::cluster_opteron_infiniband();
    setup.compute_cluster = sim::cluster_opteron_infiniband();
    return setup;
  }));
}

TEST(EngineSwap, KMeansSlowWan) {
  // fig08-style bandwidth change: a 500 Kbps shared pipe makes network
  // time dominant, so WAN accounting order differences would show here.
  const auto data = kmeans_points(9);
  check_swap(kmeans_scenario("kmeans-wan500k-2-4", &data, [&data] {
    auto setup = testing::pentium_setup(&data.dataset, 2, 4);
    setup.wan = sim::wan_kbps(500);
    return setup;
  }, /*fixed_passes=*/3));
}

TEST(EngineSwap, VortexDetection) {
  // fig05-style single-pass mining on a flow field.
  datagen::FlowSpec spec;
  spec.width = 64;
  spec.height = 64;
  spec.num_vortices = 3;
  spec.rows_per_chunk = 8;
  spec.seed = 11;
  const auto flow = datagen::generate_flowfield(spec);
  Scenario s;
  s.name = "vortex-pentium-3-6";
  s.kernel = [] {
    return std::make_unique<apps::VortexKernel>(apps::VortexParams{});
  };
  s.setup = [&flow] { return testing::pentium_setup(&flow.dataset, 3, 6); };
  check_swap(s);
}

TEST(EngineSwap, LocalDiskCaching) {
  // abl01-style: multi-pass job with compute-side caching; later passes
  // are served from local disk, exercising the cache populate/read paths.
  const auto data = kmeans_points(13);
  check_swap(kmeans_scenario("kmeans-cache-local-2-4", &data, [&data] {
    auto setup = testing::pentium_setup(&data.dataset, 2, 4);
    setup.config.enable_caching = true;
    return setup;
  }, /*fixed_passes=*/4));
}

TEST(EngineSwap, NonLocalSiteCaching) {
  // ext02-style: local capacity too small, so the runtime forwards chunks
  // to a non-local cache site over its own pipe (the forward/cache-read
  // transfers ride distinct SharedPipes in Event mode).
  const auto data = kmeans_points(17);
  check_swap(kmeans_scenario("kmeans-cache-site-2-4", &data, [&data] {
    auto setup = testing::pentium_setup(&data.dataset, 2, 4);
    setup.config.enable_caching = true;
    setup.config.local_cache_capacity_bytes = 1.0;  // force the site
    freeride::CacheSiteSetup site;
    site.cluster = sim::cluster_pentium_myrinet();
    site.nodes = 2;
    site.wan_to_compute = sim::wan_mbps(200.0);
    setup.cache_site = site;
    return setup;
  }, /*fixed_passes=*/4));
}

TEST(EngineSwap, OverlappedPhases) {
  // ext03-style: pipelined retrieval/movement/reduction. Elapsed time is
  // a max-composition instead of a sum — exactly where an event-ordering
  // bug would change bits.
  const auto data = kmeans_points(19);
  check_swap(kmeans_scenario("kmeans-overlap-2-4", &data, [&data] {
    auto setup = testing::pentium_setup(&data.dataset, 2, 4);
    setup.config.overlap_phases = true;
    return setup;
  }, /*fixed_passes=*/3));
}

TEST(EngineSwap, StragglerInjection) {
  // abl05-style: two nodes run 3x slower, so per-node compute times are
  // heterogeneous and the phase barrier is decided by the slow tail.
  const auto data = kmeans_points(23);
  check_swap(kmeans_scenario("kmeans-stragglers-2-4", &data, [&data] {
    auto setup = testing::pentium_setup(&data.dataset, 2, 4);
    setup.config.straggler_count = 2;
    setup.config.straggler_slowdown = 3.0;
    return setup;
  }, /*fixed_passes=*/3));
}

TEST(EngineSwap, SmpStrategies) {
  // ext01-style cluster-of-SMPs: 4 threads per node under each strategy.
  const auto data = kmeans_points(29);
  for (const auto strategy :
       {freeride::SmpStrategy::FullReplication,
        freeride::SmpStrategy::FullLocking,
        freeride::SmpStrategy::CacheSensitiveLocking}) {
    check_swap(kmeans_scenario(
        "kmeans-smp-" + std::to_string(static_cast<int>(strategy)), &data,
        [&data, strategy] {
          auto setup = testing::pentium_setup(&data.dataset, 2, 4);
          setup.compute_cluster.machine.cores = 4;
          setup.config.threads_per_node = 4;
          setup.config.smp_strategy = strategy;
          return setup;
        },
        /*fixed_passes=*/3));
  }
}

TEST(EngineSwap, SumKernelIdealCluster) {
  // Frictionless baseline: on the ideal cluster most component times are
  // zero, so the swap also holds at the degenerate corner (zero-duration
  // events, signed-zero accumulation).
  const auto ds = testing::make_sum_dataset(24, 50);
  Scenario s;
  s.name = "sum-ideal-2-4";
  s.kernel = [] {
    testing::SumKernelParams p;
    p.passes = 3;
    return std::make_unique<testing::SumKernel>(p);
  };
  s.setup = [&ds] { return testing::ideal_setup(&ds, 2, 4); };
  check_swap(s);
}

TEST(EngineSwap, ResidualReportsMatch) {
  // The residual export (prediction-vs-exact decomposition) is the last
  // deterministic artifact a figure emits; pin it across the swap too.
  const auto data = kmeans_points(31);
  const auto report_for = [&](freeride::EngineMode mode) {
    auto make_setup = [&data](int n, int c) {
      auto setup = testing::pentium_setup(&data.dataset, n, c);
      return setup;
    };
    // Base profile at 1-1 under the mode being tested.
    auto base_setup = make_setup(1, 1);
    base_setup.engine = mode;
    apps::KMeansParams params;
    params.k = 3;
    params.dim = 4;
    params.initial_centers =
        apps::initial_centers_from_dataset(data.dataset, 3, 4);
    params.fixed_passes = 3;
    apps::KMeansKernel profile_kernel(params);
    const core::Profile base =
        core::ProfileCollector::collect(base_setup, profile_kernel, nullptr);

    core::PredictorOptions opts;
    opts.ipc = core::measure_ipc(base_setup.compute_cluster);
    const core::Predictor predictor(base, opts);

    obs::ResidualReport report;
    report.set_sweep("engine-swap");
    report.set_model("global-reduction");
    for (const auto& [n, c] : {std::pair{1, 2}, {2, 4}, {4, 8}}) {
      auto setup = make_setup(n, c);
      setup.engine = mode;
      apps::KMeansKernel kernel(params);
      const auto actual = freeride::Runtime().run(setup, kernel);
      core::ProfileConfig target = base.config;
      target.data_nodes = n;
      target.compute_nodes = c;
      const core::PredictedTime predicted = predictor.predict(target);
      report.add(core::make_residual_point(
          std::to_string(n) + "-" + std::to_string(c), predicted,
          actual.timing.total));
    }
    return report.to_json();
  };

  EXPECT_EQ(report_for(freeride::EngineMode::Event),
            report_for(freeride::EngineMode::PhaseLoop));
}

}  // namespace
}  // namespace fgp
