// Tests for apriori association mining: the transactions generator,
// candidate generation, agreement with the exhaustive reference, planted
// pattern recovery, and multi-pass behaviour on the middleware.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/apriori.h"
#include "datagen/transactions.h"
#include "helpers.h"

namespace fgp::apps {
namespace {

using datagen::Item;
using datagen::Itemset;
using fgp::testing::ideal_setup;

datagen::TransactionsDataset small_baskets(std::uint64_t seed = 17,
                                           std::uint64_t txns = 4000) {
  auto spec = datagen::default_market_baskets(txns, seed);
  spec.transactions_per_chunk = 250;
  return datagen::generate_transactions(spec);
}

AprioriParams default_params() {
  AprioriParams p;
  p.num_items = 200;
  p.min_support = 0.08;
  p.max_level = 4;
  return p;
}

// ------------------------------------------------------------- generator

TEST(Transactions, GeneratesRequestedCount) {
  const auto data = small_baskets();
  std::uint64_t total = 0;
  for (const auto& chunk : data.dataset.chunks())
    total += datagen::parse_transactions(chunk).size();
  EXPECT_EQ(total, 4000u);
}

TEST(Transactions, ItemsAreSortedAndUnique) {
  const auto data = small_baskets();
  for (const auto& chunk : data.dataset.chunks()) {
    for (const auto& txn : datagen::parse_transactions(chunk)) {
      EXPECT_TRUE(std::is_sorted(txn.items.begin(), txn.items.end()));
      EXPECT_EQ(std::adjacent_find(txn.items.begin(), txn.items.end()),
                txn.items.end());
    }
  }
}

TEST(Transactions, PlantedPatternsAppearAtRoughlyTheirFrequency) {
  const auto data = small_baskets();
  for (const auto& pattern : data.patterns) {
    std::uint64_t hits = 0, total = 0;
    for (const auto& chunk : data.dataset.chunks()) {
      for (const auto& txn : datagen::parse_transactions(chunk)) {
        ++total;
        hits += std::includes(txn.items.begin(), txn.items.end(),
                              pattern.items.begin(), pattern.items.end());
      }
    }
    const double observed =
        static_cast<double>(hits) / static_cast<double>(total);
    // Sub-patterns of other planted patterns gain support, so observed can
    // only exceed the planted frequency (plus sampling noise).
    EXPECT_GT(observed, pattern.frequency - 0.03);
  }
}

TEST(Transactions, Deterministic) {
  const auto a = small_baskets(5);
  const auto b = small_baskets(5);
  for (std::size_t i = 0; i < a.dataset.chunk_count(); ++i)
    EXPECT_EQ(a.dataset.chunk(i).checksum(), b.dataset.chunk(i).checksum());
}

TEST(Transactions, MalformedChunkRejected) {
  const auto chunk = repository::make_chunk<std::uint8_t>(0, {1, 2});
  EXPECT_THROW(datagen::parse_transactions(chunk), util::Error);
}

// ------------------------------------------------ candidate generation

TEST(Apriori, CandidateGenerationJoinsPrefixes) {
  const std::vector<Itemset> frequent{{1, 2}, {1, 3}, {2, 3}, {2, 4}};
  const auto candidates = apriori_generate_candidates(frequent);
  // {1,2}+{1,3} -> {1,2,3} (all 2-subsets frequent);
  // {2,3}+{2,4} -> {2,3,4} pruned because {3,4} is not frequent.
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (Itemset{1, 2, 3}));
}

TEST(Apriori, CandidateGenerationEmptyInput) {
  EXPECT_TRUE(apriori_generate_candidates({}).empty());
}

TEST(Apriori, CandidateGenerationSingletons) {
  const std::vector<Itemset> frequent{{1}, {5}, {9}};
  const auto candidates = apriori_generate_candidates(frequent);
  // All pairs join (prefix is empty): {1,5}, {1,9}, {5,9}.
  EXPECT_EQ(candidates.size(), 3u);
}

// ----------------------------------------------------------- middleware

TEST(Apriori, MatchesExhaustiveReference) {
  const auto data = small_baskets();
  const auto params = default_params();
  AprioriKernel kernel(params);
  auto setup = ideal_setup(&data.dataset, 2, 4);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);

  auto mined = kernel.frequent_itemsets();
  std::sort(mined.begin(), mined.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size())
                return a.items.size() < b.items.size();
              return a.items < b.items;
            });
  const auto ref =
      apriori_reference(data, params.min_support, params.max_level);
  ASSERT_EQ(mined.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(mined[i].items, ref[i].items);
    EXPECT_EQ(mined[i].support, ref[i].support);
  }
}

TEST(Apriori, RecoversPlantedPatterns) {
  const auto data = small_baskets();
  AprioriKernel kernel(default_params());
  auto setup = ideal_setup(&data.dataset, 1, 2);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);

  for (const auto& pattern : data.patterns) {
    if (pattern.frequency < 0.09) continue;  // below mining threshold
    const bool found = std::any_of(
        kernel.frequent_itemsets().begin(), kernel.frequent_itemsets().end(),
        [&](const FrequentItemset& f) { return f.items == pattern.items; });
    EXPECT_TRUE(found) << "planted pattern not mined";
  }
}

TEST(Apriori, RunsOnePassPerLevel) {
  const auto data = small_baskets();
  auto params = default_params();
  params.max_level = 3;
  AprioriKernel kernel(params);
  auto setup = ideal_setup(&data.dataset, 1, 1);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  // One pass per level actually mined; never more than max_level.
  EXPECT_LE(result.passes, 3);
  EXPECT_GE(result.passes, 2);  // planted pairs guarantee a level-2 pass
}

TEST(Apriori, InvariantAcrossConfigs) {
  const auto data = small_baskets();
  std::vector<FrequentItemset> baseline;
  for (const auto& [n, c] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 4}, {4, 8}}) {
    AprioriKernel kernel(default_params());
    auto setup = ideal_setup(&data.dataset, n, c);
    freeride::Runtime runtime;
    runtime.run(setup, kernel);
    if (baseline.empty()) {
      baseline = kernel.frequent_itemsets();
    } else {
      ASSERT_EQ(kernel.frequent_itemsets().size(), baseline.size());
      for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(kernel.frequent_itemsets()[i].items, baseline[i].items);
        EXPECT_EQ(kernel.frequent_itemsets()[i].support,
                  baseline[i].support);
      }
    }
  }
}

TEST(Apriori, SupportMonotoneDownLevels) {
  // A superset can never be more frequent than its subsets.
  const auto data = small_baskets();
  AprioriKernel kernel(default_params());
  auto setup = ideal_setup(&data.dataset, 1, 2);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  const auto& mined = kernel.frequent_itemsets();
  for (const auto& f : mined) {
    if (f.items.size() < 2) continue;
    for (const auto& g : mined) {
      if (g.items.size() != f.items.size() - 1) continue;
      if (std::includes(f.items.begin(), f.items.end(), g.items.begin(),
                        g.items.end())) {
        EXPECT_LE(f.support, g.support);
      }
    }
  }
}

TEST(Apriori, ObjectSerializationRoundTrip) {
  AprioriObject o(3);
  o.counts = {5, 10, 15};
  o.transactions = 100;
  util::ByteWriter w;
  o.serialize(w);
  AprioriObject back;
  util::ByteReader r(w.bytes());
  back.deserialize(r);
  EXPECT_EQ(back.counts, o.counts);
  EXPECT_EQ(back.transactions, 100u);
}

TEST(Apriori, RejectsBadParams) {
  AprioriParams p;
  p.num_items = 0;
  EXPECT_THROW(AprioriKernel{p}, util::Error);
  p.num_items = 10;
  p.min_support = 0.0;
  EXPECT_THROW(AprioriKernel{p}, util::Error);
}

TEST(Apriori, BroadcastTracksCandidateSet) {
  AprioriParams p;
  p.num_items = 50;
  AprioriKernel kernel(p);
  // 50 singleton candidates, each 2 bytes + 2-byte length.
  EXPECT_DOUBLE_EQ(kernel.broadcast_bytes(), 50.0 * 4.0);
}

}  // namespace
}  // namespace fgp::apps
