// Hostile input: a raw string literal whose close delimiter never
// appears. The tokenizer must diagnose and consume to EOF — no hang.
static const char* kPayload = R"fgp(this raw string never terminates
and the rest of the file is swallowed by it
int not_a_real_declaration;
