// POSITIVE fixture: iteration over unordered containers inside src/
// deterministic code. Order is implementation-defined, so any fold over
// it breaks bit-identity. Analyzed as "src/grid/fixture.cpp".
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fgp {

using CellIndex = std::unordered_map<std::uint64_t, double>;

double fold_cells(const CellIndex& cells) {
  CellIndex scratch = cells;
  double sum = 0.0;
  for (const auto& kv : scratch) {  // finding: range-for over unordered
    sum += kv.second;
  }
  return sum;
}

std::size_t walk_names(const std::unordered_set<std::string>& names) {
  std::unordered_set<std::string> live = names;
  std::size_t n = 0;
  for (auto it = live.begin(); it != live.end(); ++it) {  // finding
    n += it->size();
  }
  return n;
}

}  // namespace fgp
