// Hostile input: trigraph-era junk, an unterminated character literal,
// an unterminated string literal, an unterminated block comment.
??=include ??(??)??<??>??-??/
int x = ';
const char* s = "never closed
/* and this block comment never ends
