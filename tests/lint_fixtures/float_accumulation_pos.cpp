// POSITIVE fixture: raw dot-product accumulation into a float/double
// scalar inside a src/apps kernel — the §10 contract requires the
// util/simd.h blocked helpers. Analyzed as "src/apps/fixture.cpp".
#include <cstddef>
#include <vector>

namespace fgp {

double raw_dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];  // finding: unblocked dot product
  }
  return acc;
}

float raw_sqdist(const float* a, const float* b, std::size_t n) {
  float d = 0.0F;
  std::size_t i = 0;
  while (i < n) {
    d -= a[i] * b[i];  // finding: '-=' counts too
    ++i;
  }
  return d;
}

}  // namespace fgp
