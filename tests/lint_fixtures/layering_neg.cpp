// NEGATIVE fixture: strictly-downward include edges. Analyzed under
// "src/core/fixture.cpp" (rank 5) — freeride (4), grid (3) and util (0)
// are all lower layers, so fgpcheck must report nothing.
#include "freeride/runtime.h"
#include "grid/grid.h"
#include "util/check.h"

namespace fgp {
int fixture_marker();
}  // namespace fgp
