// NEGATIVE fixture: accumulation shapes the §10 contract permits — the
// blocked simd helpers, plain scalar statistics (serial order is already
// pinned), squared scalars without indexed loads, and element-wise
// writes into index-owned slots. Analyzed as "src/apps/fixture.cpp".
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/simd.h"

namespace fgp {

double blocked_dot(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return util::simd::dot(a.data(), b.data(), a.size());  // sanctioned path
}

double log_sum_exp(const std::vector<double>& logp, double mx) {
  double sum = 0.0;
  for (double v : logp) {
    sum += std::exp(v - mx);  // scalar statistic, no indexed product: fine
  }
  return sum;
}

double centroid_shift(const std::vector<double>& a,
                      const std::vector<double>& b) {
  double shift = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    shift += diff * diff;  // product of locals, no indexed load: fine
  }
  return shift;
}

void slot_axpy(std::vector<double>& out, const std::vector<double>& x,
               const std::vector<double>& y) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] += x[i] * y[i];  // element-wise into an owned slot: fine
  }
}

}  // namespace fgp
