// event-order negative fixture: every heap/sort over sim::Event values
// names a canonical comparator, and ordering of non-event data needs no
// comparator at all. Analyzed under the virtual path src/sim/fixture.cpp;
// tests/test_fgpcheck.cpp asserts zero findings.
#include <algorithm>
#include <vector>

namespace fgp::sim {

struct Event {
  double time = 0.0;
  unsigned long long seq = 0;
  int node = -1;
  int kind = 0;
};

inline bool event_order_less(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return event_order_less(b, a);
  }
};

struct EventBefore {
  bool operator()(const Event& a, const Event& b) const {
    return event_order_less(a, b);
  }
};

inline void canonical_heap() {
  std::vector<Event> heap;
  heap.push_back({});
  std::push_heap(heap.begin(), heap.end(), EventAfter{});
  std::pop_heap(heap.begin(), heap.end(), EventAfter{});
}

inline void canonical_sort() {
  std::vector<Event> pending;
  std::sort(pending.begin(), pending.end(), EventBefore{});
  std::stable_sort(pending.begin(), pending.end(), event_order_less);
}

inline void non_event_sort() {
  std::vector<int> xs = {3, 1, 2};
  std::sort(xs.begin(), xs.end());  // not an event container: fine
}

}  // namespace fgp::sim
