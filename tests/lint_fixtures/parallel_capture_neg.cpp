// NEGATIVE fixture: parallel lambdas that follow the DESIGN §11 sharing
// protocol — index-owned slots, locals, atomics, copy captures. fgpcheck
// must report nothing here. Analyzed as "src/freeride/fixture.cpp".
#include <atomic>
#include <cstddef>
#include <vector>

#include "util/thread_pool.h"

namespace fgp {

void block_reduction(util::ThreadPool& pool, const std::vector<double>& xs,
                     std::vector<double>& partial) {
  pool.parallel_for(partial.size(), [&](std::size_t b) {
    double acc = 0.0;           // local accumulator: fine
    for (std::size_t i = b; i < xs.size(); i += partial.size())
      acc += xs[i];
    partial[b] = acc;           // index-owned slot: fine
  });
}

void atomic_counter(util::ThreadPool& pool) {
  std::atomic<int> done{0};
  pool.parallel_for(8, [&](std::size_t) {
    ++done;                     // atomic: fine
  });
}

void copy_capture(util::ThreadPool& pool, std::vector<int>& out) {
  int scale = 3;
  pool.parallel_for(out.size(), [&out, scale](std::size_t i) mutable {
    scale = static_cast<int>(i);  // mutates the lambda's own copy: fine
    out[i] = scale;
  });
}

void nested_blocks(util::ThreadPool& pool, std::vector<double>& block_sum,
                   const std::vector<double>& xs) {
  auto reduce_block = [&](std::size_t b) {
    double t = 0.0;
    for (std::size_t i = b; i < xs.size(); i += block_sum.size()) t += xs[i];
    block_sum[b] = t;           // slot write through nested lambda: fine
  };
  pool.parallel_for(block_sum.size(), reduce_block);
}

}  // namespace fgp
