// POSITIVE fixture: lambdas handed to a parallel fan-out that assign to
// by-reference captures. Every write below races across pool helpers.
// Analyzed under the virtual path "src/freeride/fixture.cpp".
#include <cstddef>
#include <vector>

#include "util/thread_pool.h"

namespace fgp {

void bad_sum(util::ThreadPool& pool, const std::vector<double>& xs) {
  double sum = 0.0;
  pool.parallel_for(xs.size(), [&](std::size_t i) {
    sum += xs[i];  // finding: '+=' to by-ref capture 'sum'
  });
  (void)sum;
}

void bad_count(util::ThreadPool& pool) {
  int done = 0;
  auto task = [&done](std::size_t) {
    ++done;  // finding: '++' on by-ref capture 'done'
  };
  pool.parallel_for(8, task);  // bound-name lambda reaches the sink too
}

void bad_flag(util::ThreadPool& pool, std::vector<int>& out) {
  bool seen = false;
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = 1;    // fine: index-owned slot
    seen = true;   // finding: '=' to by-ref capture 'seen'
  });
  (void)seen;
}

}  // namespace fgp
