// POSITIVE fixture: include edges *into* src/service from lower layers.
// service sits at the top of the layer order (rank 6), so nothing in
// src/ may include it. The self-test analyzes this file twice: under
// "src/core/fixture.cpp" (rank 5) and "src/grid/fixture.cpp" (rank 3)
// both service includes below are upward edges.
#include "service/sharded_catalog.h"
#include "service/selection_service.h"
#include "util/check.h"

namespace fgp {
int fixture_marker();
}  // namespace fgp
