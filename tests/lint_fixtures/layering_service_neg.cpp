// NEGATIVE fixture: the edges src/service is allowed to have. Analyzed
// under "src/service/fixture.cpp" (rank 6, the top layer) — core (5),
// grid (3), obs (1) and util (0) are all lower layers, so fgpcheck must
// report nothing.
#include "core/selector.h"
#include "grid/catalog.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace fgp {
int fixture_marker();
}  // namespace fgp
