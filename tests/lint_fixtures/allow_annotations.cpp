// Fixture for the allow-annotation syntax: a named allow suppresses its
// rule on that line and is counted in the exemption summary; a blanket
// allow (no rule name) is an allow-hygiene error and suppresses nothing.
#include <cstddef>
#include <vector>

namespace fgp {

double allowed_dot(const std::vector<double>& a,
                   const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += a[i] * b[i];  // fgpcheck: allow(float-accumulation)
  return acc;
}

double blanket_dot(const std::vector<double>& a,
                   const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += a[i] * b[i];  // fgpcheck: allow
  return acc;
}

}  // namespace fgp
