// POSITIVE fixture: include edges that violate the src/ layer order
// (util < obs < sim < repository|grid < datagen|freeride < apps|core).
// The self-test analyzes this file twice: under "src/util/fixture.cpp"
// both project includes below are upward edges; under
// "src/grid/fixture.cpp" the repository include is an illegal same-rank
// cross-module edge (one commit away from a cycle).
#include "sim/engine.h"
#include "repository/store.h"
#include "util/check.h"

namespace fgp {
int fixture_marker();
}  // namespace fgp
