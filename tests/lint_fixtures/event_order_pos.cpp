// event-order positive fixture: heaps and sorts over sim::Event values
// that never name a canonical tie-break comparator. Analyzed under the
// virtual path src/sim/fixture.cpp (the rule is scoped to src/sim);
// expected findings are pinned in tests/test_fgpcheck.cpp.
#include <algorithm>
#include <queue>
#include <vector>

namespace fgp::sim {

struct Event {
  double time = 0.0;
  unsigned long long seq = 0;
  int node = -1;
  int kind = 0;
};

inline void default_heap_order() {
  std::vector<Event> heap;
  heap.push_back({});
  std::push_heap(heap.begin(), heap.end());  // flagged: std::less on Event
}

inline void time_only_sort() {
  std::vector<Event> pending;
  std::sort(pending.begin(), pending.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });
}

inline void default_priority_queue() {
  std::priority_queue<Event, std::vector<Event>,
                      bool (*)(const Event&, const Event&)>
      q{nullptr};
  (void)q;
}

}  // namespace fgp::sim
