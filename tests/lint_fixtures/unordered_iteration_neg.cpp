// NEGATIVE fixture: unordered containers used as lookup tables (point
// queries only) plus iteration over *ordered* containers — all fine.
// Analyzed as "src/grid/fixture.cpp".
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fgp {

double lookup_only(const std::unordered_map<std::uint64_t, double>& table,
                   const std::vector<std::uint64_t>& keys) {
  std::unordered_map<std::uint64_t, double> cache = table;
  double sum = 0.0;
  for (std::uint64_t k : keys) {          // ordered driver: fine
    auto it = cache.find(k);              // point query: fine
    if (it != cache.end()) sum += it->second;
  }
  cache.try_emplace(0, sum);              // mutation without walk: fine
  return sum;
}

double ordered_fold(const std::map<std::uint64_t, double>& cells) {
  double sum = 0.0;
  for (const auto& kv : cells) sum += kv.second;  // std::map: pinned order
  return sum;
}

}  // namespace fgp
