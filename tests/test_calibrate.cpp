// Tests for machine calibration: exact recovery from synthetic samples,
// degeneracy detection, residual reporting, and a smoke test of the real
// wall-clock measurement path.
#include <gtest/gtest.h>

#include "apps/kmeans.h"
#include "core/calibrate.h"
#include "datagen/points.h"

namespace fgp::core {
namespace {

CalibrationSample sample_for(double flops, double bytes, double F, double B) {
  CalibrationSample s;
  s.work = {flops, bytes};
  s.seconds = flops / F + bytes / B;
  return s;
}

TEST(Calibrate, RecoversExactRatesFromCleanSamples) {
  const double F = 2.4e9, B = 3.0e9;
  const std::vector<CalibrationSample> samples{
      sample_for(1e9, 1e8, F, B),   // compute-heavy
      sample_for(1e8, 1e9, F, B),   // memory-heavy
      sample_for(5e8, 5e8, F, B),   // balanced
  };
  const auto result = calibrate_machine(samples);
  EXPECT_NEAR(result.cpu_flops, F, F * 1e-9);
  EXPECT_NEAR(result.mem_Bps, B, B * 1e-9);
  EXPECT_LT(result.max_residual_fraction, 1e-9);
}

TEST(Calibrate, ReportsResidualForNoisySamples) {
  const double F = 1e9, B = 1e9;
  std::vector<CalibrationSample> samples{
      sample_for(1e9, 1e8, F, B),
      sample_for(1e8, 1e9, F, B),
      sample_for(5e8, 5e8, F, B),
  };
  samples[2].seconds *= 1.2;  // 20% measurement noise on one point
  const auto result = calibrate_machine(samples);
  EXPECT_GT(result.max_residual_fraction, 0.02);
  // Rates still land in the right decade.
  EXPECT_NEAR(result.cpu_flops, F, F * 0.5);
  EXPECT_NEAR(result.mem_Bps, B, B * 0.5);
}

TEST(Calibrate, RejectsIdenticalMixes) {
  const std::vector<CalibrationSample> samples{
      sample_for(1e9, 1e9, 1e9, 1e9),
      sample_for(2e9, 2e9, 1e9, 1e9),  // same 1:1 mix, just scaled
  };
  EXPECT_THROW(calibrate_machine(samples), util::Error);
}

TEST(Calibrate, RejectsTooFewOrDegenerateSamples) {
  const std::vector<CalibrationSample> one{sample_for(1e9, 1e8, 1e9, 1e9)};
  EXPECT_THROW(calibrate_machine(one), util::Error);

  std::vector<CalibrationSample> bad{sample_for(1e9, 1e8, 1e9, 1e9),
                                     sample_for(1e8, 1e9, 1e9, 1e9)};
  bad[0].seconds = 0.0;
  EXPECT_THROW(calibrate_machine(bad), util::Error);
}

TEST(Calibrate, MeasuresRealKernelWallClock) {
  datagen::PointsSpec spec;
  spec.num_points = 20000;
  spec.dim = 8;
  spec.points_per_chunk = 20000;
  const auto data = datagen::generate_points(spec);

  apps::KMeansParams params;
  params.k = 8;
  params.dim = 8;
  params.initial_centers =
      apps::initial_centers_from_dataset(data.dataset, 8, 8);
  apps::KMeansKernel kernel(params);

  const auto sample =
      measure_kernel_sample(kernel, data.dataset.chunk(0), 4);
  EXPECT_GT(sample.seconds, 0.0);
  EXPECT_GT(sample.work.flops, 0.0);
  EXPECT_GT(sample.work.bytes, 0.0);
  // Implied host rate is physically plausible (MFLOPs to TFLOPs).
  const double implied = sample.work.flops / sample.seconds;
  EXPECT_GT(implied, 1e6);
  EXPECT_LT(implied, 1e13);
}

}  // namespace
}  // namespace fgp::core
