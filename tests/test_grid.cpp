// Tests for the grid information service: site registration, replica
// bookkeeping, link lookup, and candidate enumeration.
#include <gtest/gtest.h>

#include "grid/catalog.h"
#include "sim/cluster.h"
#include "util/check.h"

namespace fgp::grid {
namespace {

GridCatalog two_site_catalog() {
  GridCatalog cat;
  cat.register_repository_site(
      {"repo-east", sim::cluster_pentium_myrinet(), 8});
  cat.register_repository_site(
      {"repo-west", sim::cluster_pentium_myrinet(), 4});
  cat.register_compute_site(
      {"hpc-a", sim::cluster_pentium_myrinet(), 16});
  cat.register_compute_site(
      {"hpc-b", sim::cluster_opteron_infiniband(), 8});
  cat.register_link("repo-east", "hpc-a", sim::wan_mbps(100));
  cat.register_link("repo-east", "hpc-b", sim::wan_mbps(20));
  cat.register_link("repo-west", "hpc-a", sim::wan_mbps(50));
  // repo-west -> hpc-b deliberately unreachable.
  cat.register_replica({"genome", "repo-east", 4});
  cat.register_replica({"genome", "repo-west", 2});
  return cat;
}

TEST(Catalog, RegisteredSitesAreFindable) {
  const auto cat = two_site_catalog();
  EXPECT_EQ(cat.compute_site("hpc-a").available_nodes, 16);
  EXPECT_EQ(cat.repository_site("repo-west").available_nodes, 4);
  EXPECT_EQ(cat.compute_site_count(), 2u);
  EXPECT_EQ(cat.repository_site_count(), 2u);
}

TEST(Catalog, UnknownSiteThrows) {
  const auto cat = two_site_catalog();
  EXPECT_THROW(cat.compute_site("nope"), util::Error);
  EXPECT_THROW(cat.repository_site("nope"), util::Error);
}

TEST(Catalog, DuplicateSiteThrows) {
  auto cat = two_site_catalog();
  EXPECT_THROW(cat.register_compute_site(
                   {"hpc-a", sim::cluster_ideal(), 4}),
               util::Error);
}

TEST(Catalog, ReplicaValidation) {
  auto cat = two_site_catalog();
  // Unknown repository.
  EXPECT_THROW(cat.register_replica({"x", "nope", 1}), util::Error);
  // More storage nodes than the site offers.
  EXPECT_THROW(cat.register_replica({"x", "repo-west", 5}), util::Error);
}

TEST(Catalog, ReplicasOfFiltersByDataset) {
  const auto cat = two_site_catalog();
  EXPECT_EQ(cat.replicas_of("genome").size(), 2u);
  EXPECT_TRUE(cat.replicas_of("unknown").empty());
}

TEST(Catalog, LinkLookup) {
  const auto cat = two_site_catalog();
  EXPECT_DOUBLE_EQ(cat.link("repo-east", "hpc-b").per_link_Bps,
                   20e6 / 8.0);
  EXPECT_THROW(cat.link("repo-west", "hpc-b"), util::Error);
}

TEST(Catalog, CandidatesRespectComputeGeDataRule) {
  const auto cat = two_site_catalog();
  const auto cands = cat.enumerate_candidates("genome");
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands)
    EXPECT_GE(c.compute_nodes, c.replica.storage_nodes);
}

TEST(Catalog, CandidatesSkipUnreachablePairs) {
  const auto cat = two_site_catalog();
  for (const auto& c : cat.enumerate_candidates("genome"))
    EXPECT_FALSE(c.replica.repository == "repo-west" &&
                 c.compute_site == "hpc-b");
}

TEST(Catalog, CandidateCountMatchesEnumeration) {
  const auto cat = two_site_catalog();
  // repo-east (4 storage nodes):
  //   hpc-a: c in {4, 8, 16} -> 3;  hpc-b: c in {4, 8} -> 2.
  // repo-west (2 storage nodes):
  //   hpc-a: c in {2, 4, 8, 16} -> 4;  hpc-b unreachable.
  EXPECT_EQ(cat.enumerate_candidates("genome").size(), 9u);
}

TEST(Catalog, CandidatesCarryTheRightWan) {
  const auto cat = two_site_catalog();
  for (const auto& c : cat.enumerate_candidates("genome")) {
    const auto expected = cat.link(c.replica.repository, c.compute_site);
    EXPECT_DOUBLE_EQ(c.wan.per_link_Bps, expected.per_link_Bps);
  }
}

TEST(Catalog, EmptyCatalogYieldsNoCandidates) {
  GridCatalog cat;
  EXPECT_TRUE(cat.enumerate_candidates("anything").empty());
}

}  // namespace
}  // namespace fgp::grid
