// test_dataplane.cpp — the zero-copy data plane's bit-identity contract
// (DESIGN.md §13): a size-scaling figure driven by aliasing dataset views
// (bench::with_virtual_size) is byte-identical — serialized residual
// reports, deterministic traces and metrics alike — to the same figure
// driven by a deep-copied control dataset, at sweep pool sizes 1, 2 and 8.
// Sharing payload slabs between grid points must never change a single
// output bit.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "obs/metrics.h"
#include "obs/residual.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace fgp::bench {
namespace {

/// A control app whose dataset holds freshly allocated copies of every
/// payload (same ids, scales and bytes — different slabs). This is the
/// pre-zero-copy behaviour the aliasing views replaced.
BenchApp deep_copy_control(const BenchApp& app) {
  auto ds = std::make_shared<repository::ChunkedDataset>(app.dataset->meta());
  for (const auto& c : app.dataset->chunks()) {
    const auto bytes = c.payload();
    ds->add_chunk(repository::Chunk(
        c.id(), std::vector<std::uint8_t>(bytes.begin(), bytes.end()),
        c.virtual_scale()));
  }
  BenchApp copy = app;
  copy.dataset = std::move(ds);
  return copy;
}

/// Every deterministic artifact a fig07-style run produces, flattened to
/// strings so equality means bit-identity.
struct FigureArtifacts {
  std::string residuals_json;
  std::string trace_json;    ///< to_chrome_json(false): host stripped
  std::string metrics_json;  ///< to_json(false): host stripped
};

bool operator==(const FigureArtifacts& a, const FigureArtifacts& b) {
  return a.residuals_json == b.residuals_json && a.trace_json == b.trace_json &&
         a.metrics_json == b.metrics_json;
}

/// One fig07-style run: global-reduction profile on `profile_app`,
/// predictions and exact runs on `target_app`, every observability sink
/// attached.
FigureArtifacts run_figure(const BenchApp& profile_app,
                           const BenchApp& target_app,
                           util::ThreadPool* pool) {
  const SweepRunner sweep(pool);
  obs::TraceRecorder trace;
  obs::Registry metrics;
  obs::ResidualReport residuals;
  FigureObs fig_obs;
  fig_obs.trace = &trace;
  fig_obs.metrics = &metrics;
  fig_obs.residuals = &residuals;
  global_model_figure(sweep, "dataplane bit-identity probe", profile_app,
                      target_app, sim::cluster_pentium_myrinet(),
                      sim::wan_mbps(800.0), sim::wan_mbps(800.0), fig_obs);
  return {residuals.to_json(), trace.to_chrome_json(false),
          metrics.to_json(false)};
}

TEST(DataPlane, SharedViewSweepBitIdenticalToDeepCopyAcrossPools) {
  const BenchApp target = make_em_app(80.0, 1.0, 42, 2);
  const BenchApp view_profile = with_virtual_size(target, 20.0);
  const BenchApp copy_profile = deep_copy_control(view_profile);

  // Preconditions: the view aliases the target's slabs, the control does
  // not, and both present identical chunk bytes and virtual sizes.
  ASSERT_EQ(view_profile.dataset->chunk_count(), target.dataset->chunk_count());
  for (std::size_t i = 0; i < target.dataset->chunk_count(); ++i) {
    ASSERT_EQ(view_profile.dataset->chunk(i).payload().data(),
              target.dataset->chunk(i).payload().data());
    ASSERT_NE(copy_profile.dataset->chunk(i).payload().data(),
              target.dataset->chunk(i).payload().data());
    ASSERT_EQ(view_profile.dataset->chunk(i).checksum(),
              copy_profile.dataset->chunk(i).checksum());
  }
  ASSERT_DOUBLE_EQ(view_profile.dataset->total_virtual_bytes(), 20.0 * 1e6);

  // Serial deep-copy run is the reference; every pool size and either
  // data-plane strategy must reproduce it bit for bit.
  const FigureArtifacts reference =
      run_figure(copy_profile, target, nullptr);
  EXPECT_FALSE(reference.residuals_json.empty());
  for (const std::size_t n : {1, 2, 8}) {
    util::ThreadPool pool(n);
    EXPECT_TRUE(reference == run_figure(copy_profile, target, &pool))
        << "deep-copy control, pool of " << n;
    EXPECT_TRUE(reference == run_figure(view_profile, target, &pool))
        << "shared-view profile, pool of " << n;
  }
  EXPECT_TRUE(reference == run_figure(view_profile, target, nullptr))
      << "shared-view profile, serial";
}

TEST(DataPlane, StreamedSweepBitIdenticalToInMemoryAcrossPools) {
  // The out-of-core plane (DESIGN.md §15): the same fig07-style figure
  // driven through budget-bounded mmap windows with block prefetch must
  // reproduce the in-memory artifacts bit for bit at pools 1, 2 and 8 —
  // prefetch and window recycling only move host wall-clock time.
  const BenchApp target = make_em_app(80.0, 1.0, 42, 2);
  const BenchApp profile = with_virtual_size(target, 20.0);
  // A deliberately tight budget, so the sweep recycles windows constantly
  // while it runs.
  const BenchApp streamed_target = streamed_copy(target, 1u << 20);
  const BenchApp streamed_profile =
      with_virtual_size(streamed_target, 20.0);
  ASSERT_TRUE(streamed_target.dataset->streamed());
  ASSERT_TRUE(streamed_profile.dataset->streamed());

  const FigureArtifacts reference = run_figure(profile, target, nullptr);
  EXPECT_TRUE(reference ==
              run_figure(streamed_profile, streamed_target, nullptr))
      << "streamed plane, serial";
  for (const std::size_t n : {1, 2, 8}) {
    util::ThreadPool pool(n);
    EXPECT_TRUE(reference ==
                run_figure(streamed_profile, streamed_target, &pool))
        << "streamed plane, pool of " << n;
  }
}

TEST(DataPlane, PrefetchTasksDrainBeforeRunReturns) {
  // Regression: the runtime's block-prefetch tasks go to the (often
  // long-lived) shared pool, but the streamed source records into a
  // caller-scoped metrics registry. A task that outlived run() once
  // dereferenced a destroyed registry mid-bench — and a straggler could
  // equally wedge the pool's worker on a destroyed mutex at process
  // exit. Every pass now drains its own tasks, so the registry, the
  // dataset handle and its temp store may all die the moment run()
  // returns. Under the sanitizer presets any straggler task turns the
  // churn below into a hard failure.
  util::ThreadPool pool(2);
  const BenchApp base = make_em_app(40.0, 1.0, 42, 2);
  for (int round = 0; round < 4; ++round) {
    {
      obs::Registry metrics;
      const BenchApp streamed = streamed_copy(base, 1u << 20, &metrics);
      ASSERT_TRUE(streamed.dataset->streamed());
      (void)simulate(streamed, sim::cluster_pentium_myrinet(),
                     sim::cluster_pentium_myrinet(), sim::wan_mbps(800.0),
                     {4, 8}, false, &pool, nullptr, &metrics);
    }  // registry, streamed dataset and its temp store are gone here
    // Churn the pool: a leftover prefetch task would now run against the
    // destroyed registry/window pool instead of these no-ops.
    for (int i = 0; i < 32; ++i) pool.submit([] {}).wait();
  }
}

TEST(DataPlane, WithVirtualSizeRescalesWithoutTouchingTheOriginal) {
  const BenchApp app = make_kmeans_app(40.0, 1.0, 7, 2);
  const double before = app.dataset->total_virtual_bytes();
  const BenchApp half = with_virtual_size(app, 20.0);
  EXPECT_DOUBLE_EQ(half.dataset->total_virtual_bytes(), 20.0 * 1e6);
  EXPECT_DOUBLE_EQ(app.dataset->total_virtual_bytes(), before);
  // Kernel factory and classes ride along unchanged.
  EXPECT_EQ(half.name, app.name);
  ASSERT_TRUE(half.factory != nullptr);
}

}  // namespace
}  // namespace fgp::bench
