// Tests for the molecular defect detection and categorization application:
// recall of planted defects, cross-slab joining, catalog behaviour, and
// agreement with the serial reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/defect.h"
#include "datagen/lattice.h"
#include "helpers.h"

namespace fgp::apps {
namespace {

using fgp::testing::ideal_setup;

datagen::LatticeDataset small_lattice(std::uint64_t seed = 11,
                                      int zslabs_per_chunk = 4) {
  datagen::LatticeSpec spec;
  spec.nx = 16;
  spec.ny = 16;
  spec.nz = 32;
  spec.num_vacancy_clusters = 3;
  spec.num_interstitials = 2;
  spec.num_displaced_clusters = 2;
  spec.max_cluster_cells = 4;
  spec.zslabs_per_chunk = zslabs_per_chunk;
  spec.seed = seed;
  return datagen::generate_lattice(spec);
}

std::vector<CategorizedDefect> run_parallel(
    const datagen::LatticeDataset& lattice, int n, int c,
    DefectKernel* kernel_out = nullptr) {
  DefectKernel kernel;
  auto setup = ideal_setup(&lattice.dataset, n, c);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  if (kernel_out) *kernel_out = kernel;
  return dynamic_cast<const DefectObject&>(*result.result).categorized;
}

std::set<std::array<int, 3>> cell_set(const std::vector<std::int32_t>& cells) {
  std::set<std::array<int, 3>> out;
  for (std::size_t c = 0; c + 2 < cells.size() + 1; c += 3)
    out.insert({cells[c], cells[c + 1], cells[c + 2]});
  return out;
}

TEST(Defect, SignatureIsTranslationInvariant) {
  const std::vector<std::int32_t> at_origin{0, 0, 0, 1, 0, 0};
  const std::vector<std::int32_t> shifted{5, 7, 9, 6, 7, 9};
  EXPECT_EQ(defect_signature(0, at_origin), defect_signature(0, shifted));
}

TEST(Defect, SignatureDistinguishesKinds) {
  const std::vector<std::int32_t> cells{0, 0, 0};
  EXPECT_NE(defect_signature(0, cells), defect_signature(1, cells));
}

TEST(Defect, SignatureDistinguishesShapes) {
  const std::vector<std::int32_t> line{0, 0, 0, 1, 0, 0};
  const std::vector<std::int32_t> column{0, 0, 0, 0, 1, 0};
  EXPECT_NE(defect_signature(0, line), defect_signature(0, column));
}

TEST(Defect, ObjectSerializationRoundTrip) {
  DefectObject o;
  o.structures.push_back({2, {1, 2, 3, 4, 5, 6}});
  CategorizedDefect cd;
  cd.class_id = 3;
  cd.kind = 1;
  cd.cell_count = 1;
  cd.cx = 1.0;
  cd.cells = {1, 1, 1};
  o.categorized.push_back(cd);
  util::ByteWriter w;
  o.serialize(w);
  DefectObject back;
  util::ByteReader r(w.bytes());
  back.deserialize(r);
  ASSERT_EQ(back.structures.size(), 1u);
  EXPECT_EQ(back.structures[0].cells, o.structures[0].cells);
  ASSERT_EQ(back.categorized.size(), 1u);
  EXPECT_EQ(back.categorized[0].class_id, 3u);
}

TEST(Defect, DetectsAllPlantedDefects) {
  const auto lattice = small_lattice();
  const auto found = run_parallel(lattice, 2, 4);
  ASSERT_EQ(found.size(), lattice.defects.size());

  for (const auto& planted : lattice.defects) {
    std::set<std::array<int, 3>> planted_cells;
    for (const auto& c : planted.cells)
      planted_cells.insert({c[0], c[1], c[2]});
    bool matched = false;
    for (const auto& f : found) {
      if (f.kind != static_cast<std::uint8_t>(planted.kind)) continue;
      if (cell_set(f.cells) == planted_cells) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "planted defect not recovered exactly";
  }
}

TEST(Defect, ParallelMatchesSerialReference) {
  const auto lattice = small_lattice();
  const auto ref = defect_reference(lattice);
  const auto par = run_parallel(lattice, 2, 8);
  ASSERT_EQ(par.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(par[i].class_id, ref[i].class_id);
    EXPECT_EQ(par[i].kind, ref[i].kind);
    EXPECT_EQ(par[i].cells, ref[i].cells);
  }
}

TEST(Defect, ResultInvariantToSlabThickness) {
  const auto thin = small_lattice(11, 2);
  const auto thick = small_lattice(11, 16);
  const auto a = run_parallel(thin, 1, 4);
  const auto b = run_parallel(thick, 1, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cells, b[i].cells);
    EXPECT_EQ(a[i].kind, b[i].kind);
  }
}

TEST(Defect, SameShapesShareClasses) {
  const auto lattice = small_lattice();
  const auto found = run_parallel(lattice, 1, 2);
  std::map<DefectSignature, std::uint32_t> seen;
  for (const auto& f : found) {
    const auto sig = defect_signature(f.kind, f.cells);
    const auto [it, inserted] = seen.emplace(sig, f.class_id);
    if (!inserted) {
      EXPECT_EQ(it->second, f.class_id);
    }
  }
}

TEST(Defect, CatalogGrowsOnlyForNewShapes) {
  const auto lattice = small_lattice();
  DefectKernel kernel;
  auto setup = ideal_setup(&lattice.dataset, 1, 2);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  const auto catalog_after_first = kernel.catalog();
  EXPECT_GT(catalog_after_first.size(), 0u);
  EXPECT_EQ(static_cast<std::size_t>(kernel.new_classes()),
            catalog_after_first.size());

  // Re-running the same data against the learned catalog adds nothing.
  DefectParams params;
  params.initial_catalog = catalog_after_first;
  DefectKernel warm(params);
  freeride::Runtime runtime2;
  auto setup2 = ideal_setup(&lattice.dataset, 1, 2);
  runtime2.run(setup2, warm);
  EXPECT_EQ(warm.new_classes(), 0);
  EXPECT_EQ(warm.catalog().size(), catalog_after_first.size());
}

TEST(Defect, BroadcastBytesTrackCatalog) {
  DefectKernel empty;
  EXPECT_DOUBLE_EQ(empty.broadcast_bytes(), 0.0);
  DefectParams params;
  params.initial_catalog[{0, 0, 0, 0}] = 0;
  DefectKernel seeded(params);
  EXPECT_GT(seeded.broadcast_bytes(), 0.0);
}

TEST(Defect, PristineLatticeHasNoDefects) {
  datagen::LatticeSpec spec;
  spec.nx = 12;
  spec.ny = 12;
  spec.nz = 12;
  spec.num_vacancy_clusters = 0;
  spec.num_interstitials = 0;
  spec.num_displaced_clusters = 0;
  const auto lattice = datagen::generate_lattice(spec);
  const auto found = run_parallel(lattice, 1, 1);
  EXPECT_TRUE(found.empty());
}

TEST(Defect, KindsAreReportedCorrectly) {
  const auto lattice = small_lattice();
  const auto found = run_parallel(lattice, 1, 2);
  int vac = 0, inter = 0, disp = 0;
  for (const auto& f : found) {
    if (f.kind == static_cast<std::uint8_t>(datagen::DefectKind::Vacancy))
      ++vac;
    if (f.kind == static_cast<std::uint8_t>(datagen::DefectKind::Interstitial))
      ++inter;
    if (f.kind == static_cast<std::uint8_t>(datagen::DefectKind::Displaced))
      ++disp;
  }
  EXPECT_EQ(vac, 3);
  EXPECT_EQ(inter, 2);
  EXPECT_EQ(disp, 2);
}

class DefectConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DefectConfigSweep, InvariantAcrossConfigs) {
  const auto [n, c] = GetParam();
  if (c < n) GTEST_SKIP();
  static const auto lattice = small_lattice();
  static const auto baseline = defect_reference(lattice);
  const auto found = run_parallel(lattice, n, c);
  ASSERT_EQ(found.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i)
    EXPECT_EQ(found[i].cells, baseline[i].cells);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DefectConfigSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 2, 8)));

}  // namespace
}  // namespace fgp::apps
