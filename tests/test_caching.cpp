// Tests for the extended caching subsystem: capacity-gated local caching,
// non-local cache sites, the overlap execution mode, and the cache
// planner's agreement with the simulated ground truth.
#include <gtest/gtest.h>

#include "core/cache_planner.h"
#include "freeride/runtime.h"
#include "helpers.h"
#include "util/stats.h"

namespace fgp::freeride {
namespace {

using fgp::testing::SumKernel;
using fgp::testing::SumKernelParams;
using fgp::testing::expected_sum;
using fgp::testing::make_sum_dataset;
using fgp::testing::pentium_setup;

/// A cache site on fast hardware one hop from the compute cluster.
CacheSiteSetup nearby_cache_site(int nodes = 2, double mbps = 400.0) {
  CacheSiteSetup site;
  site.cluster = sim::cluster_opteron_infiniband();
  site.cluster.name = "cache-site";
  site.nodes = nodes;
  site.wan_to_compute = sim::wan_mbps(mbps);
  return site;
}

JobSetup multi_pass_setup(const repository::ChunkedDataset* ds, int passes_cap) {
  auto setup = pentium_setup(ds, 2, 4, /*wan_mbps_value=*/40.0);
  setup.config.enable_caching = true;
  setup.config.max_passes = passes_cap;
  return setup;
}

TEST(NonLocalCache, LocalWinsWhenCapacityAllows) {
  const auto ds = make_sum_dataset(16, 64, 100.0);
  SumKernelParams p;
  p.passes = 3;
  auto setup = multi_pass_setup(&ds, 10);
  setup.cache_site = nearby_cache_site();
  SumKernel kernel(p);
  const auto result = Runtime().run(setup, kernel);
  EXPECT_EQ(result.cache_mode, CacheMode::LocalDisk);
}

TEST(NonLocalCache, CapacityForcesNonLocalSite) {
  const auto ds = make_sum_dataset(16, 64, 100.0);
  SumKernelParams p;
  p.passes = 3;
  auto setup = multi_pass_setup(&ds, 10);
  setup.config.local_cache_capacity_bytes = 1.0;  // nothing fits locally
  setup.cache_site = nearby_cache_site();
  SumKernel kernel(p);
  const auto result = Runtime().run(setup, kernel);
  EXPECT_EQ(result.cache_mode, CacheMode::NonLocalSite);

  // Later passes are served from the cache: the repository is not read
  // again, but the cache pipe is.
  ASSERT_EQ(result.timing.passes.size(), 3u);
  EXPECT_FALSE(result.timing.passes[0].from_cache);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_TRUE(result.timing.passes[i].from_cache);
    EXPECT_GT(result.timing.passes[i].timing.network, 0.0);
    EXPECT_LT(result.timing.passes[i].timing.network,
              result.timing.passes[0].timing.network);
  }
}

TEST(NonLocalCache, NoSiteMeansRefetch) {
  const auto ds = make_sum_dataset(16, 64, 100.0);
  SumKernelParams p;
  p.passes = 3;
  auto setup = multi_pass_setup(&ds, 10);
  setup.config.local_cache_capacity_bytes = 1.0;
  SumKernel kernel(p);
  const auto result = Runtime().run(setup, kernel);
  EXPECT_EQ(result.cache_mode, CacheMode::None);
  for (const auto& pass : result.timing.passes)
    EXPECT_FALSE(pass.from_cache);
}

TEST(NonLocalCache, ResultsIdenticalUnderEveryMode) {
  const auto ds = make_sum_dataset(16, 64, 100.0);
  SumKernelParams p;
  p.passes = 3;
  for (int mode = 0; mode < 3; ++mode) {
    auto setup = multi_pass_setup(&ds, 10);
    if (mode == 1) setup.config.local_cache_capacity_bytes = 1.0;
    if (mode >= 1) setup.cache_site = nearby_cache_site();
    if (mode == 2) setup.config.enable_caching = false;
    SumKernel kernel(p);
    const auto result = Runtime().run(setup, kernel);
    const auto& obj =
        dynamic_cast<const fgp::testing::SumObject&>(*result.result);
    EXPECT_DOUBLE_EQ(obj.sum, expected_sum(16, 64)) << "mode " << mode;
  }
}

TEST(NonLocalCache, BeatsRefetchingOverASlowRepositoryLink) {
  // Repository link is slow; the cache site sits on a fast pipe.
  const auto ds = make_sum_dataset(16, 64, 2000.0);
  SumKernelParams p;
  p.passes = 5;
  auto run_with = [&](bool use_site) {
    auto setup = multi_pass_setup(&ds, 10);
    setup.config.local_cache_capacity_bytes = 1.0;
    if (use_site) setup.cache_site = nearby_cache_site(2, 400.0);
    SumKernel kernel(p);
    return Runtime().run(setup, kernel).timing.total.total();
  };
  EXPECT_LT(run_with(true), run_with(false));
}

// ---------------------------------------------------------------- overlap

TEST(Overlap, ElapsedIsMaxPlusSerialized) {
  const auto ds = make_sum_dataset(16, 64, 500.0);
  SumKernelParams p;
  p.merge_flops = 1e5;
  p.global_flops = 1e5;
  auto additive = pentium_setup(&ds, 2, 4);
  auto overlapped = pentium_setup(&ds, 2, 4);
  overlapped.config.overlap_phases = true;
  SumKernel k1(p), k2(p);
  const auto ra = Runtime().run(additive, k1);
  const auto ro = Runtime().run(overlapped, k2);

  // Component accounting is mode-independent.
  EXPECT_DOUBLE_EQ(ra.timing.total.disk, ro.timing.total.disk);
  EXPECT_DOUBLE_EQ(ra.timing.total.network, ro.timing.total.network);

  // Additive elapsed == component sum; overlapped elapsed == max + serial.
  EXPECT_DOUBLE_EQ(ra.timing.elapsed, ra.timing.total.total());
  const auto& t = ro.timing.passes[0].timing;
  EXPECT_DOUBLE_EQ(ro.timing.elapsed,
                   std::max({t.disk, t.network, t.compute_local}) + t.ro_comm +
                       t.global_red);
  EXPECT_LT(ro.timing.elapsed, ra.timing.elapsed);
}

TEST(Overlap, NeverSlowerThanAdditive) {
  const auto ds = make_sum_dataset(20, 64, 300.0);
  for (const auto& [n, c] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 4}, {4, 8}}) {
    auto setup = pentium_setup(&ds, n, c);
    setup.config.overlap_phases = true;
    SumKernel kernel;
    const auto result = Runtime().run(setup, kernel);
    EXPECT_LE(result.timing.elapsed, result.timing.total.total() + 1e-12);
  }
}

}  // namespace
}  // namespace fgp::freeride

namespace fgp::core {
namespace {

using fgp::testing::SumKernel;
using fgp::testing::SumKernelParams;
using fgp::testing::make_sum_dataset;

CachePlannerInputs planner_inputs(const repository::ChunkedDataset& ds,
                                  double compute_per_pass) {
  CachePlannerInputs in;
  in.dataset_bytes = ds.total_virtual_bytes();
  in.chunks = ds.chunk_count();
  in.data_nodes = 2;
  in.compute_nodes = 4;
  in.data_cluster = sim::cluster_pentium_myrinet();
  in.compute_cluster = sim::cluster_pentium_myrinet();
  in.wan = sim::wan_mbps(40.0);
  in.compute_time_per_pass_s = compute_per_pass;
  return in;
}

TEST(CachePlanner, RejectsEmptyInputs) {
  CachePlannerInputs in;
  EXPECT_THROW(CachePlanner{in}, util::Error);
}

TEST(CachePlanner, LocalPlanRespectsCapacity) {
  const auto ds = make_sum_dataset(16, 64, 100.0);
  auto in = planner_inputs(ds, 1.0);
  in.local_cache_capacity_bytes = 1.0;
  const CachePlanner planner(in);
  EXPECT_FALSE(planner.plan_local_disk().has_value());
  in.local_cache_capacity_bytes = 1e18;
  EXPECT_TRUE(CachePlanner(in).plan_local_disk().has_value());
}

TEST(CachePlanner, SinglePassPrefersNoCache) {
  const auto ds = make_sum_dataset(16, 64, 100.0);
  const CachePlanner planner(planner_inputs(ds, 1.0));
  const auto ranked = planner.rank(1, {});
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front().mode, freeride::CacheMode::None);
}

TEST(CachePlanner, ManyPassesPreferLocalCaching) {
  const auto ds = make_sum_dataset(16, 64, 2000.0);
  const CachePlanner planner(planner_inputs(ds, 1.0));
  const auto ranked = planner.rank(10, {});
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked.front().mode, freeride::CacheMode::LocalDisk);
}

TEST(CachePlanner, MatchesSimulatedGroundTruthWithinTolerance) {
  const auto ds = make_sum_dataset(16, 64, 2000.0);
  const int passes = 5;

  // Measure compute-per-pass from a 2-4 run.
  SumKernelParams p;
  p.passes = passes;

  auto simulate_mode = [&](int which) {
    freeride::JobSetup setup;
    setup.dataset = &ds;
    setup.data_cluster = sim::cluster_pentium_myrinet();
    setup.compute_cluster = sim::cluster_pentium_myrinet();
    setup.wan = sim::wan_mbps(40.0);
    setup.config.data_nodes = 2;
    setup.config.compute_nodes = 4;
    setup.config.max_passes = 100;
    if (which == 1) setup.config.enable_caching = true;
    if (which == 2) {
      setup.config.enable_caching = true;
      setup.config.local_cache_capacity_bytes = 1.0;
      freeride::CacheSiteSetup site;
      site.cluster = sim::cluster_opteron_infiniband();
      site.nodes = 2;
      site.wan_to_compute = sim::wan_mbps(400.0);
      setup.cache_site = site;
    }
    SumKernel kernel(p);
    return freeride::Runtime().run(setup, kernel).timing.total.total();
  };

  const double actual_none = simulate_mode(0);
  const double actual_local = simulate_mode(1);
  const double actual_site = simulate_mode(2);

  auto in = planner_inputs(ds, (actual_none / passes) -
                                   (actual_none / passes) *
                                       0.0);  // placeholder, refined below
  // Compute-per-pass from the no-cache run: subtract movement analytically
  // is fragile; instead derive it from the planner's own no-cache estimate
  // being matched against the simulation.
  in.compute_time_per_pass_s = 0.0;
  const double movement_only =
      CachePlanner(in).plan_no_cache().total_s(passes);
  in.compute_time_per_pass_s =
      (actual_none - movement_only) / static_cast<double>(passes);
  const CachePlanner planner(in);

  freeride::CacheSiteSetup site;
  site.cluster = sim::cluster_opteron_infiniband();
  site.nodes = 2;
  site.wan_to_compute = sim::wan_mbps(400.0);

  EXPECT_LT(util::relative_error(actual_none,
                                 planner.plan_no_cache().total_s(passes)),
            0.02);
  EXPECT_LT(util::relative_error(
                actual_local, planner.plan_local_disk()->total_s(passes)),
            0.05);
  EXPECT_LT(util::relative_error(actual_site,
                                 planner.plan_site(site).total_s(passes)),
            0.05);

  // And the ranking matches the simulated ordering.
  const std::vector<freeride::CacheSiteSetup> sites{site};
  const auto ranked = planner.rank(passes, sites);
  std::vector<std::pair<double, freeride::CacheMode>> truth{
      {actual_none, freeride::CacheMode::None},
      {actual_local, freeride::CacheMode::LocalDisk},
      {actual_site, freeride::CacheMode::NonLocalSite}};
  std::sort(truth.begin(), truth.end());
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked.front().mode, truth.front().second);
}

}  // namespace
}  // namespace fgp::core
