// Sweep-runner determinism: a fig02-style evaluation grid executed
// serially must be byte-identical to the same grid executed concurrently
// through a SweepRunner at pool sizes 1, 2 and 8 — RunResult timings and
// serialized reduction objects alike (DESIGN.md §11). Each configuration
// also borrows the sweep's pool for its own two-level reduction, so this
// exercises both levels at once.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace fgp::bench {
namespace {

/// One configuration's outcome, flattened to raw bytes so equality means
/// bit-identity (the serialized object plus every timing component).
std::vector<std::uint8_t> fingerprint(const freeride::RunResult& r) {
  util::ByteWriter w;
  r.result->serialize(w);
  w.put_f64(r.timing.elapsed);
  w.put_f64(r.timing.max_object_bytes);
  w.put_f64(r.timing.total.disk);
  w.put_f64(r.timing.total.network);
  w.put_f64(r.timing.total.compute_local);
  w.put_f64(r.timing.total.ro_comm);
  w.put_f64(r.timing.total.global_red);
  w.put_f64(r.total_work.flops);
  w.put_f64(r.total_work.bytes);
  return w.take();
}

TEST(SweepRunner, MapPreservesIndexOrder) {
  // map() must place result i at slot i no matter which worker computed
  // it; a serial runner is the reference.
  util::ThreadPool pool(4);
  const SweepRunner serial(nullptr);
  const SweepRunner pooled(&pool);
  const auto fn = [](std::size_t i) { return i * 31 + 7; };
  const auto a = serial.map(64, fn);
  const auto b = pooled.map(64, fn);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[5], 5u * 31 + 7);
}

TEST(SweepRunner, Fig02StyleGridBitIdenticalAcrossPoolSizes) {
  const BenchApp app = make_kmeans_app(80.0, 1.0, 42, 2);
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(800.0);
  const std::vector<NodeConfig> grid = paper_grid();

  const auto run_grid = [&](const SweepRunner& sweep) {
    return sweep.map(grid.size(), [&](std::size_t i) {
      return fingerprint(
          simulate(app, cluster, cluster, wan, grid[i], false, sweep.pool()));
    });
  };

  const SweepRunner serial(nullptr);
  const auto reference = run_grid(serial);
  ASSERT_EQ(reference.size(), grid.size());
  for (const std::size_t n : {1, 2, 8}) {
    util::ThreadPool pool(n);
    const SweepRunner runner(&pool);
    EXPECT_EQ(reference, run_grid(runner)) << "sweep pool of " << n;
  }
}

}  // namespace
}  // namespace fgp::bench
