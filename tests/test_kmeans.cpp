// Tests for the k-means application: correctness vs the serial reference,
// invariance across parallel configurations, objective monotonicity, and
// reduction-object behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/kmeans.h"
#include "datagen/points.h"
#include "helpers.h"

namespace fgp::apps {
namespace {

using fgp::testing::ideal_setup;

struct Fixture {
  datagen::PointsDataset data;
  std::vector<double> all_points;

  explicit Fixture(std::uint64_t seed = 42, std::uint64_t n = 3000, int dim = 4,
                   int comps = 3) {
    datagen::PointsSpec spec;
    spec.num_points = n;
    spec.dim = dim;
    spec.num_components = comps;
    spec.points_per_chunk = 250;
    spec.seed = seed;
    data = datagen::generate_points(spec);
    for (const auto& chunk : data.dataset.chunks()) {
      const auto pts = chunk.as_span<double>();
      all_points.insert(all_points.end(), pts.begin(), pts.end());
    }
  }
};

KMeansParams make_params(const Fixture& f, int k, int fixed_passes = 0) {
  KMeansParams p;
  p.k = k;
  p.dim = f.data.dim;
  p.initial_centers = initial_centers_from_dataset(f.data.dataset, k, f.data.dim);
  p.fixed_passes = fixed_passes;
  return p;
}

TEST(KMeans, ObjectSerializationRoundTrip) {
  KMeansObject o(3, 2);
  o.sums_ = {1, 2, 3, 4, 5, 6};
  o.counts_ = {7, 8, 9};
  o.sse = 2.5;
  util::ByteWriter w;
  o.serialize(w);
  KMeansObject back;
  util::ByteReader r(w.bytes());
  back.deserialize(r);
  EXPECT_EQ(back.sums_, o.sums_);
  EXPECT_EQ(back.counts_, o.counts_);
  EXPECT_DOUBLE_EQ(back.sse, o.sse);
}

TEST(KMeans, RejectsBadParams) {
  KMeansParams p;
  p.k = 3;
  p.dim = 2;
  p.initial_centers = {1.0};  // wrong size
  EXPECT_THROW(KMeansKernel{p}, util::Error);
}

TEST(KMeans, InitialCentersComeFromFirstPoints) {
  Fixture f;
  const auto centers = initial_centers_from_dataset(f.data.dataset, 2, 4);
  ASSERT_EQ(centers.size(), 8u);
  for (int j = 0; j < 8; ++j)
    EXPECT_DOUBLE_EQ(centers[j], f.all_points[j]);
}

TEST(KMeans, InitialCentersThrowWhenTooFewPoints) {
  Fixture f(1, 4, 4, 1);  // only 4 points
  EXPECT_THROW(initial_centers_from_dataset(f.data.dataset, 5, 4),
               util::Error);
}

TEST(KMeans, MatchesSerialReference) {
  Fixture f;
  const auto params = make_params(f, 3, 8);
  KMeansKernel kernel(params);
  auto setup = ideal_setup(&f.data.dataset, 2, 4);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);

  const auto ref = kmeans_reference(f.all_points, f.data.dim, 3,
                                    params.initial_centers, -1.0, 8, nullptr);
  ASSERT_EQ(kernel.centers().size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(kernel.centers()[i], ref[i], 1e-8);
}

TEST(KMeans, ObjectiveNonIncreasing) {
  Fixture f;
  KMeansKernel kernel(make_params(f, 3, 10));
  auto setup = ideal_setup(&f.data.dataset, 1, 2);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  const auto& hist = kernel.objective_history();
  ASSERT_GE(hist.size(), 2u);
  for (std::size_t i = 1; i < hist.size(); ++i)
    EXPECT_LE(hist[i], hist[i - 1] + 1e-6);
}

TEST(KMeans, RecoversPlantedCenters) {
  Fixture f(7, 6000, 2, 3);
  KMeansKernel kernel(make_params(f, 3, 25));
  auto setup = ideal_setup(&f.data.dataset, 1, 4);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  // Every planted centre must be close to some recovered centre.
  for (int c = 0; c < 3; ++c) {
    double best = 1e300;
    for (int r = 0; r < 3; ++r) {
      double d2 = 0.0;
      for (int j = 0; j < 2; ++j) {
        const double diff = f.data.true_centers[2 * c + j] -
                            kernel.centers()[2 * r + j];
        d2 += diff * diff;
      }
      best = std::min(best, d2);
    }
    EXPECT_LT(best, 1.0);
  }
}

TEST(KMeans, ConvergesUnderTolerance) {
  Fixture f;
  auto params = make_params(f, 3);
  params.tol = 1e-3;
  KMeansKernel kernel(params);
  auto setup = ideal_setup(&f.data.dataset, 1, 1);
  setup.config.max_passes = 100;
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  EXPECT_LT(result.passes, 100);
  EXPECT_EQ(result.passes, kernel.passes_run());
}

TEST(KMeans, ConstantObjectSizeAcrossConfigs) {
  Fixture f;
  double size_1 = 0, size_8 = 0;
  {
    KMeansKernel kernel(make_params(f, 3, 2));
    auto setup = ideal_setup(&f.data.dataset, 1, 1);
    freeride::Runtime runtime;
    size_1 = runtime.run(setup, kernel).timing.max_object_bytes;
  }
  {
    KMeansKernel kernel(make_params(f, 3, 2));
    auto setup = ideal_setup(&f.data.dataset, 1, 8);
    freeride::Runtime runtime;
    size_8 = runtime.run(setup, kernel).timing.max_object_bytes;
  }
  EXPECT_DOUBLE_EQ(size_1, size_8);
  EXPECT_FALSE(KMeansKernel(make_params(f, 3)).reduction_object_scales_with_data());
}

TEST(KMeans, BroadcastsCenters) {
  Fixture f;
  KMeansKernel kernel(make_params(f, 3));
  EXPECT_DOUBLE_EQ(kernel.broadcast_bytes(), 3 * 4 * sizeof(double));
}

TEST(KMeans, EmptyClusterKeepsItsCenter) {
  // Two identical far-away initial centres: one will starve and must not
  // produce NaNs.
  repository::DatasetMeta meta{"tiny", "f64", 0};
  repository::ChunkedDataset ds(meta);
  ds.add_chunk(repository::make_chunk<double>(0, {0.0, 0.0, 1.0, 1.0}));
  KMeansParams p;
  p.k = 2;
  p.dim = 2;
  p.initial_centers = {0.5, 0.5, 99.0, 99.0};
  p.fixed_passes = 3;
  KMeansKernel kernel(p);
  auto setup = ideal_setup(&ds, 1, 1);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  EXPECT_DOUBLE_EQ(kernel.centers()[2], 99.0);
  for (double c : kernel.centers()) EXPECT_TRUE(std::isfinite(c));
}

class KMeansConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KMeansConfigSweep, CentersInvariantAcrossConfigs) {
  const auto [n, c] = GetParam();
  if (c < n) GTEST_SKIP();
  static const Fixture f;  // shared across instantiations
  const auto params = make_params(f, 3, 5);

  static std::vector<double> baseline;
  if (baseline.empty()) {
    KMeansKernel ref(params);
    auto setup = ideal_setup(&f.data.dataset, 1, 1);
    freeride::Runtime runtime;
    runtime.run(setup, ref);
    baseline = ref.centers();
  }

  KMeansKernel kernel(params);
  auto setup = ideal_setup(&f.data.dataset, n, c);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  ASSERT_EQ(kernel.centers().size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i)
    EXPECT_NEAR(kernel.centers()[i], baseline[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KMeansConfigSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 2, 4, 8)));

}  // namespace
}  // namespace fgp::apps
