// Focused ThreadPool tests: exception propagation order, degenerate
// sizes, and shutdown semantics with work still queued. test_util covers
// the happy paths; these are the cases TSan and the determinism invariant
// care about.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/check.h"
#include "util/thread_pool.h"

namespace fgp::util {
namespace {

TEST(ThreadPool, ParallelForZeroTasksIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ZeroThreadsDefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, ParallelForFirstExceptionWins) {
  // Every task throws; the lowest-index task's exception must be the one
  // rethrown regardless of completion order.
  ThreadPool pool(4);
  try {
    pool.parallel_for(16, [](std::size_t i) {
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ThreadPool, ParallelForSingleFailureStillRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(32, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 7) throw std::runtime_error("7");
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "7");
  }
  // No task may still be running (or skipped) once parallel_for returns.
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  {
    ThreadPool pool(1);
    // Block the single worker so the remaining submissions stay queued,
    // then destroy the pool while they are still in the queue.
    auto gate = pool.submit([&] {
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return release; });
    });
    for (int i = 0; i < 8; ++i)
      pool.submit([&] { completed.fetch_add(1); });
    {
      std::lock_guard lock(mu);
      release = true;
    }
    cv.notify_all();
    gate.get();
  }  // ~ThreadPool: stop was requested with tasks possibly still queued
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPool, SubmittedFutureRethrowsTypedError) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { FGP_CHECK_MSG(false, "typed failure"); });
  EXPECT_THROW(fut.get(), Error);
}

}  // namespace
}  // namespace fgp::util
