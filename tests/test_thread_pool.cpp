// Focused ThreadPool tests: exception propagation order, degenerate
// sizes, shutdown semantics with work still queued, and the nested /
// concurrent parallel_for contract (thread_pool.h). test_util covers the
// happy paths; these are the cases TSan and the determinism invariant
// care about — the CI tsan preset runs the stress tests below to certify
// the shared-range claiming protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace fgp::util {
namespace {

TEST(ThreadPool, ParallelForZeroTasksIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ZeroThreadsDefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, ParallelForFirstExceptionWins) {
  // Every task throws; the lowest-index task's exception must be the one
  // rethrown regardless of completion order.
  ThreadPool pool(4);
  try {
    pool.parallel_for(16, [](std::size_t i) {
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ThreadPool, ParallelForSingleFailureStillRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(32, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 7) throw std::runtime_error("7");
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "7");
  }
  // No task may still be running (or skipped) once parallel_for returns.
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  {
    ThreadPool pool(1);
    // Block the single worker so the remaining submissions stay queued,
    // then destroy the pool while they are still in the queue.
    auto gate = pool.submit([&] {
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return release; });
    });
    for (int i = 0; i < 8; ++i)
      pool.submit([&] { completed.fetch_add(1); });
    {
      std::lock_guard lock(mu);
      release = true;
    }
    cv.notify_all();
    gate.get();
  }  // ~ThreadPool: stop was requested with tasks possibly still queued
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPool, SubmittedFutureRethrowsTypedError) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { FGP_CHECK_MSG(false, "typed failure"); });
  EXPECT_THROW(fut.get(), Error);
}

TEST(ThreadPool, TryRunOneExecutesQueuedWorkOnTheCaller) {
  ThreadPool pool(1);
  // Park the only worker so submitted tasks stay queued. Wait until the
  // worker has actually dequeued the parking task — otherwise the
  // try_run_one loop below could steal it and park the caller instead.
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> started{false};
  bool release = false;
  auto parked = pool.submit([&] {
    std::unique_lock lock(mu);
    started.store(true);
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return started.load(); });
  }

  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 3; ++i)
    futs.push_back(pool.submit([&ran] { ran.fetch_add(1); }));

  // The caller drains the queue itself — this is the help-first waiting
  // protocol the runtime's prefetch drain relies on: a thread blocked on
  // queued pool work must run tasks, not park, or a saturated pool
  // deadlocks.
  int helped = 0;
  while (pool.try_run_one()) ++helped;
  EXPECT_EQ(helped, 3);
  EXPECT_EQ(ran.load(), 3);
  for (auto& f : futs) f.wait();

  // Empty queue: false immediately, no blocking, and the still-running
  // parked task is not "runnable" a second time.
  EXPECT_FALSE(pool.try_run_one());
  {
    const std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_one();
  parked.wait();
}

TEST(ThreadPool, NestedParallelForFromWorkerCompletes) {
  // A parallel_for body that itself calls parallel_for on the same pool
  // must complete: the nested caller claims blocks of its own range
  // instead of blocking on workers that may all be occupied (the old
  // central-queue design deadlocked here).
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 8 * 16);
}

TEST(ThreadPool, TriplyNestedParallelForOnOneWorkerDoesNotDeadlock) {
  // With a single worker no helper is ever free for the nested ranges;
  // only caller participation keeps this from hanging.
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  pool.parallel_for(3, [&](std::size_t) {
    pool.parallel_for(3, [&](std::size_t) {
      pool.parallel_for(3, [&](std::size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 27);
}

TEST(ThreadPool, ConcurrentNestedParallelForStress) {
  // Several external threads hammer one pool with overlapping
  // parallel_for calls whose bodies nest again — exactly the shape a
  // SweepRunner produces when every concurrent configuration fans its
  // chunk blocks out over the shared pool.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(6);
  for (int t = 0; t < 6; ++t) {
    callers.emplace_back([&] {
      for (int rep = 0; rep < 20; ++rep) {
        pool.parallel_for(32, [&](std::size_t) {
          pool.parallel_for(4, [&](std::size_t) { total.fetch_add(1); });
        });
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(total.load(), 6 * 20 * 32 * 4);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
  // An exception thrown inside a nested range must surface through both
  // levels, and every outer index must still have run (the no-skip
  // guarantee applies per level).
  ThreadPool pool(2);
  std::atomic<int> outer_ran{0};
  try {
    pool.parallel_for(4, [&](std::size_t) {
      outer_ran.fetch_add(1);
      pool.parallel_for(8, [](std::size_t j) {
        if (j == 3) throw std::runtime_error("inner");
      });
    });
    FAIL() << "nested exception must propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "inner");
  }
  EXPECT_EQ(outer_ran.load(), 4);
}

}  // namespace
}  // namespace fgp::util
