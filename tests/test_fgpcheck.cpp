// Self-test for the fgpcheck contract analyzer (tools/fgpcheck_core.cpp).
// Drives the analyzer in-process over the deliberately contract-breaking
// corpus in tests/lint_fixtures/, asserting exact (rule, line) findings —
// this is what pins each rule's false-positive / false-negative envelope.
// Also certifies the hostile-input contract: the tokenizer must diagnose
// malformed files, never crash or hang (test_fuzz.cpp style).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fgpcheck.h"

#ifndef FGPCHECK_FIXTURE_DIR
#error "build must define FGPCHECK_FIXTURE_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

using fgpcheck::FileAnalysis;
using fgpcheck::Finding;
using fgpcheck::NameIndex;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(FGPCHECK_FIXTURE_DIR) + "/" + name;
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Analyzes a fixture under a virtual src/-style path (the corpus lives
/// in tests/lint_fixtures/, which the tree walk skips; scope-sensitive
/// rules key off the path we claim here).
FileAnalysis analyze_fixture(const std::string& name,
                             const std::string& virtual_path) {
  const std::string src = read_fixture(name);
  NameIndex index;
  fgpcheck::collect_names(src, virtual_path, index);
  return fgpcheck::analyze_source(src, virtual_path, index);
}

std::vector<std::pair<std::string, std::size_t>> rule_lines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(findings.size());
  for (const auto& f : findings) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

using RL = std::vector<std::pair<std::string, std::size_t>>;

// ---------------------------------------------------------------------------
// parallel-capture

TEST(FgpcheckParallelCapture, PositiveFixtureFlagsEveryRacyWrite) {
  const auto fa = analyze_fixture("parallel_capture_pos.cpp",
                                  "src/freeride/fixture.cpp");
  const RL expected = {{"parallel-capture", 14},
                       {"parallel-capture", 22},
                       {"parallel-capture", 31}};
  EXPECT_EQ(rule_lines(fa.findings), expected);
}

TEST(FgpcheckParallelCapture, NegativeFixtureIsClean) {
  const auto fa = analyze_fixture("parallel_capture_neg.cpp",
                                  "src/freeride/fixture.cpp");
  EXPECT_EQ(rule_lines(fa.findings), RL{});
}

// ---------------------------------------------------------------------------
// unordered-iteration

TEST(FgpcheckUnorderedIteration, PositiveFixtureFlagsRangeForAndIterWalk) {
  const auto fa = analyze_fixture("unordered_iteration_pos.cpp",
                                  "src/grid/fixture.cpp");
  const RL expected = {{"unordered-iteration", 16},
                       {"unordered-iteration", 25}};
  EXPECT_EQ(rule_lines(fa.findings), expected);
}

TEST(FgpcheckUnorderedIteration, NegativeFixtureIsClean) {
  const auto fa = analyze_fixture("unordered_iteration_neg.cpp",
                                  "src/grid/fixture.cpp");
  EXPECT_EQ(rule_lines(fa.findings), RL{});
}

TEST(FgpcheckUnorderedIteration, RuleOnlyAppliesUnderSrc) {
  // The same violating code outside src/ (tests, bench) is not flagged —
  // determinism contracts bind the library tree.
  const auto fa = analyze_fixture("unordered_iteration_pos.cpp",
                                  "tests/fixture.cpp");
  EXPECT_EQ(rule_lines(fa.findings), RL{});
}

// ---------------------------------------------------------------------------
// float-accumulation

TEST(FgpcheckFloatAccumulation, PositiveFixtureFlagsRawDotProducts) {
  const auto fa = analyze_fixture("float_accumulation_pos.cpp",
                                  "src/apps/fixture.cpp");
  const RL expected = {{"float-accumulation", 12},
                       {"float-accumulation", 21}};
  EXPECT_EQ(rule_lines(fa.findings), expected);
}

TEST(FgpcheckFloatAccumulation, NegativeFixtureIsClean) {
  const auto fa = analyze_fixture("float_accumulation_neg.cpp",
                                  "src/apps/fixture.cpp");
  EXPECT_EQ(rule_lines(fa.findings), RL{});
}

TEST(FgpcheckFloatAccumulation, RuleOnlyAppliesToAppsKernels) {
  // The repository layer does bulk byte accounting, not FP kernels; the
  // §10 contract (and this rule) binds src/apps only.
  const auto fa = analyze_fixture("float_accumulation_pos.cpp",
                                  "src/repository/fixture.cpp");
  EXPECT_EQ(rule_lines(fa.findings), RL{});
}

// ---------------------------------------------------------------------------
// event-order

TEST(FgpcheckEventOrder, PositiveFixtureFlagsNonCanonicalOrdering) {
  const auto fa =
      analyze_fixture("event_order_pos.cpp", "src/sim/fixture.cpp");
  const RL expected = {{"event-order", 21},
                       {"event-order", 26},
                       {"event-order", 31}};
  EXPECT_EQ(rule_lines(fa.findings), expected);
}

TEST(FgpcheckEventOrder, NegativeFixtureIsClean) {
  const auto fa =
      analyze_fixture("event_order_neg.cpp", "src/sim/fixture.cpp");
  EXPECT_EQ(rule_lines(fa.findings), RL{});
}

TEST(FgpcheckEventOrder, RuleOnlyAppliesToSim) {
  // The canonical comparators live in src/sim; other layers ordering
  // their own data are not the event engine's business.
  const auto fa =
      analyze_fixture("event_order_pos.cpp", "src/grid/fixture.cpp");
  EXPECT_EQ(rule_lines(fa.findings), RL{});
}

// ---------------------------------------------------------------------------
// layering

TEST(FgpcheckLayering, UpwardIncludesFromUtilAreFlagged) {
  const auto fa =
      analyze_fixture("layering_pos.cpp", "src/util/fixture.cpp");
  const RL expected = {{"layering", 7}, {"layering", 8}};
  EXPECT_EQ(rule_lines(fa.findings), expected);
}

TEST(FgpcheckLayering, SameRankCrossModuleIncludeIsFlagged) {
  const auto fa =
      analyze_fixture("layering_pos.cpp", "src/grid/fixture.cpp");
  const RL expected = {{"layering", 8}};  // grid -> repository (rank 3 = 3)
  EXPECT_EQ(rule_lines(fa.findings), expected);
}

TEST(FgpcheckLayering, DownwardIncludesAreClean) {
  const auto fa =
      analyze_fixture("layering_neg.cpp", "src/core/fixture.cpp");
  EXPECT_EQ(rule_lines(fa.findings), RL{});
}

TEST(FgpcheckLayering, ServiceIsTheTopLayerNothingMayIncludeIt) {
  // service (rank 6) caps the layer order: an include of service/ from
  // any other layered module is an upward edge.
  {
    const auto fa = analyze_fixture("layering_service_pos.cpp",
                                    "src/core/fixture.cpp");
    const RL expected = {{"layering", 6}, {"layering", 7}};
    EXPECT_EQ(rule_lines(fa.findings), expected);
  }
  {
    const auto fa = analyze_fixture("layering_service_pos.cpp",
                                    "src/grid/fixture.cpp");
    const RL expected = {{"layering", 6}, {"layering", 7}};
    EXPECT_EQ(rule_lines(fa.findings), expected);
  }
}

TEST(FgpcheckLayering, ServiceMayIncludeEveryLowerLayer) {
  const auto fa = analyze_fixture("layering_service_neg.cpp",
                                  "src/service/fixture.cpp");
  EXPECT_EQ(rule_lines(fa.findings), RL{});
}

TEST(FgpcheckLayering, RanksMirrorTheCmakeLinkGraph) {
  EXPECT_EQ(fgpcheck::layer_rank("src/util/check.h"), 0);
  EXPECT_EQ(fgpcheck::layer_rank("src/obs/metrics.h"), 1);
  EXPECT_EQ(fgpcheck::layer_rank("src/sim/engine.h"), 2);
  EXPECT_EQ(fgpcheck::layer_rank("src/repository/store.h"), 3);
  EXPECT_EQ(fgpcheck::layer_rank("src/grid/grid.h"), 3);
  EXPECT_EQ(fgpcheck::layer_rank("src/datagen/points.h"), 4);
  EXPECT_EQ(fgpcheck::layer_rank("src/freeride/runtime.h"), 4);
  EXPECT_EQ(fgpcheck::layer_rank("src/apps/kmeans.h"), 5);
  EXPECT_EQ(fgpcheck::layer_rank("src/core/predictor.h"), 5);
  EXPECT_EQ(fgpcheck::layer_rank("src/service/selection_service.h"), 6);
  EXPECT_EQ(fgpcheck::layer_rank("tests/test_util.cpp"), -1);
  EXPECT_EQ(fgpcheck::layer_rank("bench/sweep.h"), -1);
}

// ---------------------------------------------------------------------------
// allow annotations

TEST(FgpcheckAllow, NamedAllowSuppressesAndIsCounted) {
  const auto fa =
      analyze_fixture("allow_annotations.cpp", "src/apps/fixture.cpp");
  // The named allow (line 13) suppresses its finding; the blanket allow
  // (line 21) suppresses nothing and is itself an error.
  const RL expected = {{"allow-hygiene", 21}, {"float-accumulation", 21}};
  EXPECT_EQ(rule_lines(fa.findings), expected);
  ASSERT_EQ(fa.exemptions.size(), 1u);
  EXPECT_EQ(fa.exemptions.at("float-accumulation"), 1u);
}

// ---------------------------------------------------------------------------
// tokenizer hostility (fixtures on disk)

TEST(FgpcheckTokenizer, UnterminatedRawStringIsDiagnosedNotFatal) {
  const std::string src = read_fixture("hostile_unterminated_raw.cpp");
  const auto tr = fgpcheck::tokenize(src, "hostile_unterminated_raw.cpp");
  const RL expected = {{"tokenizer", 3}};
  EXPECT_EQ(rule_lines(tr.diagnostics), expected);
}

TEST(FgpcheckTokenizer, JunkFileYieldsOneDiagnosticPerMalformation) {
  const std::string src = read_fixture("hostile_junk.cpp");
  const auto tr = fgpcheck::tokenize(src, "hostile_junk.cpp");
  const RL expected = {{"tokenizer", 4},   // unterminated char literal
                       {"tokenizer", 5},   // unterminated string literal
                       {"tokenizer", 6}};  // unterminated block comment
  EXPECT_EQ(rule_lines(tr.diagnostics), expected);
}

// ---------------------------------------------------------------------------
// tokenizer hostility (generated in memory, test_fuzz.cpp style)

TEST(FgpcheckTokenizer, TenMegabyteSingleLineFileTerminatesQuickly) {
  std::string src = "int main() { return 0";
  src.reserve(10u << 20);
  while (src.size() < (10u << 20)) src += " + 0x7f + kConstant";
  src += "; }";
  const auto t0 = std::chrono::steady_clock::now();
  const auto tr = fgpcheck::tokenize(src, "huge.cpp");
  const auto fa = fgpcheck::analyze_source(src, "src/apps/huge.cpp", {});
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(tr.diagnostics.empty());
  EXPECT_GT(tr.tokens.size(), 1000u);
  EXPECT_TRUE(fa.findings.empty());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
}

TEST(FgpcheckTokenizer, DeeplyNestedBracketsDoNotBlowUp) {
  // 100k unbalanced openers followed by assignments: the bracket-match
  // map is a single stack pass, so this must stay linear.
  std::string src;
  for (int i = 0; i < 100000; ++i) src += "[({";
  src += "x = 1;";
  const auto fa = fgpcheck::analyze_source(src, "src/apps/deep.cpp", {});
  (void)fa;
  SUCCEED();  // surviving without a crash/hang is the contract
}

TEST(FgpcheckTokenizer, EveryPrefixOfAValidFileIsSurvivable) {
  // Truncation fuzz: chopping a real-ish source at any byte must never
  // crash the analyzer (worst case: tokenizer diagnostics).
  const std::string src = read_fixture("parallel_capture_pos.cpp");
  for (std::size_t cut = 0; cut <= src.size(); cut += 7) {
    const auto fa = fgpcheck::analyze_source(src.substr(0, cut),
                                             "src/freeride/cut.cpp", {});
    (void)fa;
  }
  SUCCEED();
}

TEST(FgpcheckTokenizer, RawStringsAndDigitSeparatorsTokenize) {
  const std::string src =
      "const char* s = R\"x(no \" escape)x\";\n"
      "int big = 1'000'000;\n"
      "double d = 1.5e-3;\n";
  const auto tr = fgpcheck::tokenize(src, "ok.cpp");
  EXPECT_TRUE(tr.diagnostics.empty());
  bool saw_raw = false;
  for (const auto& t : tr.tokens)
    if (t.kind == fgpcheck::TokKind::Str && t.text == "no \" escape")
      saw_raw = true;
  EXPECT_TRUE(saw_raw);
}

// ---------------------------------------------------------------------------
// stale-suppression audit

TEST(FgpcheckSuppressions, LiveFixturePatternsPass) {
  const auto findings = fgpcheck::audit_suppression_file(
      std::string(FGPCHECK_FIXTURE_DIR) + "/supp/live.supp",
      FGPCHECK_REPO_ROOT);
  EXPECT_EQ(rule_lines(findings), RL{});
}

TEST(FgpcheckSuppressions, DeadAndMalformedFixturePatternsAreFlagged) {
  const auto findings = fgpcheck::audit_suppression_file(
      std::string(FGPCHECK_FIXTURE_DIR) + "/supp/dead.supp",
      FGPCHECK_REPO_ROOT);
  const RL expected = {{"stale-suppression", 2},
                       {"stale-suppression", 3},
                       {"suppression-syntax", 4}};
  EXPECT_EQ(rule_lines(findings), expected);
}

TEST(FgpcheckSuppressions, RealSanitizerSuppressionsAreAllLive) {
  const auto findings = fgpcheck::audit_suppressions(FGPCHECK_REPO_ROOT);
  EXPECT_EQ(rule_lines(findings), RL{});
}

// ---------------------------------------------------------------------------
// the real tree stays clean

TEST(FgpcheckTree, RealTreeHasNoFindings) {
  const auto result = fgpcheck::analyze_tree(FGPCHECK_REPO_ROOT);
  for (const auto& f : result.findings)
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] "
                  << f.message;
  EXPECT_GT(result.files, 100u);  // the walk actually visited the tree
}

}  // namespace
