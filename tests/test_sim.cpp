// Unit and property tests for the virtual-cluster substrate: machine,
// cluster, and WAN models.
#include <gtest/gtest.h>

#include <limits>

#include "sim/cluster.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "util/check.h"

namespace fgp::sim {
namespace {

// ---------------------------------------------------------------- machine

TEST(Work, AdditionAndScaling) {
  Work a{10.0, 20.0};
  Work b{1.0, 2.0};
  const Work c = a + b;
  EXPECT_DOUBLE_EQ(c.flops, 11.0);
  EXPECT_DOUBLE_EQ(c.bytes, 22.0);
  const Work d = 2.0 * b;
  EXPECT_DOUBLE_EQ(d.flops, 2.0);
  EXPECT_DOUBLE_EQ(d.bytes, 4.0);
}

TEST(Machine, ComputeTimeIsRooflineAdditive) {
  MachineSpec m;
  m.cpu_flops = 1e9;
  m.mem_Bps = 2e9;
  const double t = m.compute_time({3e9, 4e9});
  EXPECT_DOUBLE_EQ(t, 3.0 + 2.0);
}

TEST(Machine, ComputeTimeZeroWorkIsZero) {
  MachineSpec m;
  EXPECT_DOUBLE_EQ(m.compute_time({}), 0.0);
}

TEST(Machine, InvalidRatesThrow) {
  MachineSpec m;
  m.cpu_flops = 0.0;
  EXPECT_THROW(m.compute_time({1, 1}), util::Error);
}

TEST(Disk, AccessTimeBreakdown) {
  DiskSpec d;
  d.bandwidth_Bps = 100e6;
  d.disks = 2;
  d.seek_s = 0.001;
  d.startup_s = 0.01;
  // 200 MB over 10 chunks on 2 disks: 0.01 + 10*0.001 + 200e6/200e6.
  EXPECT_NEAR(d.access_time(200e6, 10), 0.01 + 0.01 + 1.0, 1e-12);
}

TEST(Disk, MultipleDisksScaleBandwidth) {
  DiskSpec d;
  d.bandwidth_Bps = 50e6;
  d.disks = 4;
  EXPECT_DOUBLE_EQ(d.effective_bandwidth(), 200e6);
}

TEST(Disk, NegativeBytesThrow) {
  DiskSpec d;
  EXPECT_THROW(d.access_time(-1.0, 0), util::Error);
}

TEST(Machine, ReferenceMachinesAreOrdered) {
  // The Opteron cluster must beat the Pentium cluster on every axis the
  // paper's scaling factors capture.
  const MachineSpec p = pentium700();
  const MachineSpec o = opteron250();
  EXPECT_GT(o.cpu_flops, p.cpu_flops);
  EXPECT_GT(o.mem_Bps, p.mem_Bps);
  EXPECT_LT(o.nic.latency_s, p.nic.latency_s);
}

// ---------------------------------------------------------------- cluster

TEST(Cluster, PerNodeRetrievalCappedByBackplane) {
  ClusterSpec c = cluster_pentium_myrinet();
  const double one = c.per_node_retrieval_Bps(1);
  EXPECT_DOUBLE_EQ(one, c.machine.disk.effective_bandwidth());
  // With many nodes the backplane share binds.
  const double eight = c.per_node_retrieval_Bps(8);
  EXPECT_DOUBLE_EQ(eight, c.storage_backplane_Bps / 8.0);
  EXPECT_LT(eight, one);
}

TEST(Cluster, AggregateRetrievalThroughputMonotone) {
  ClusterSpec c = cluster_pentium_myrinet();
  double prev = 0.0;
  for (int n = 1; n <= 16; n *= 2) {
    const double agg = n * c.per_node_retrieval_Bps(n);
    EXPECT_GE(agg, prev - 1e-9);
    prev = agg;
  }
  // ... but saturates at the backplane.
  EXPECT_LE(prev, c.storage_backplane_Bps + 1e-9);
}

TEST(Cluster, ZeroNodesThrow) {
  ClusterSpec c = cluster_ideal();
  EXPECT_THROW(c.per_node_retrieval_Bps(0), util::Error);
}

TEST(Cluster, IdealClusterIsIdeal) {
  EXPECT_TRUE(cluster_ideal().is_ideal());
  EXPECT_FALSE(cluster_pentium_myrinet().is_ideal());
  EXPECT_FALSE(cluster_opteron_infiniband().is_ideal());
}

TEST(Cluster, InterconnectMessageTimeLinearInSize) {
  InterconnectSpec ic;
  ic.bandwidth_Bps = 100e6;
  ic.latency_s = 1e-4;
  const double t1 = ic.message_time(1e6);
  const double t2 = ic.message_time(2e6);
  EXPECT_NEAR(t2 - t1, 1e6 / 100e6, 1e-12);
  EXPECT_NEAR(ic.message_time(0.0), 1e-4, 1e-15);
}

// -------------------------------------------------------------------- wan

TEST(Wan, PerSenderBandwidthRespectsAllCaps) {
  WanSpec w;
  w.per_link_Bps = 10e6;
  w.aggregate_cap_Bps = 40e6;
  w.protocol_overhead = 0.0;
  // 2 senders: per-link binds (40/2 = 20 > 10).
  EXPECT_DOUBLE_EQ(w.per_sender_bandwidth(2, 1e9), 10e6);
  // 8 senders: aggregate binds (40/8 = 5 < 10).
  EXPECT_DOUBLE_EQ(w.per_sender_bandwidth(8, 1e9), 5e6);
  // Slow NIC binds everything.
  EXPECT_DOUBLE_EQ(w.per_sender_bandwidth(2, 1e6), 1e6);
}

TEST(Wan, ProtocolOverheadShavesBandwidth) {
  WanSpec w;
  w.per_link_Bps = 100e6;
  w.aggregate_cap_Bps = 1e18;
  w.protocol_overhead = 0.10;
  EXPECT_DOUBLE_EQ(w.per_sender_bandwidth(1, 1e9), 90e6);
}

TEST(Wan, TransferTimeIncludesPerMessageLatency) {
  WanSpec w;
  w.per_link_Bps = 10e6;
  w.aggregate_cap_Bps = 1e18;
  w.latency_s = 0.002;
  w.protocol_overhead = 0.0;
  const double t = w.transfer_time(10e6, 5, 1, 1e9);
  EXPECT_NEAR(t, 5 * 0.002 + 1.0, 1e-12);
}

TEST(Wan, TransferTimeMonotoneInSenders) {
  WanSpec w = wan_mbps(100.0);
  const double few = w.transfer_time(1e6, 1, 2, 1e9);
  const double many = w.transfer_time(1e6, 1, 32, 1e9);
  EXPECT_LE(few, many);  // more contention can never speed one sender up
}

TEST(Wan, KbpsConstructorMatchesPaperUnits) {
  const WanSpec w = wan_kbps(500.0);
  EXPECT_DOUBLE_EQ(w.per_link_Bps, 500.0 * 1000.0 / 8.0);
  const WanSpec half = wan_kbps(250.0);
  EXPECT_DOUBLE_EQ(half.per_link_Bps, w.per_link_Bps / 2.0);
}

TEST(Wan, IdealWanHasNoFriction) {
  const WanSpec w = wan_ideal(100.0);
  EXPECT_DOUBLE_EQ(w.latency_s, 0.0);
  EXPECT_DOUBLE_EQ(w.protocol_overhead, 0.0);
  // Halving data halves time exactly.
  const double t1 = w.transfer_time(2e6, 4, 1, 1e18);
  const double t2 = w.transfer_time(1e6, 2, 1, 1e18);
  EXPECT_NEAR(t1, 2.0 * t2, 1e-12);
}

TEST(Wan, ZeroSendersThrow) {
  WanSpec w;
  EXPECT_THROW(w.per_sender_bandwidth(0, 1e9), util::Error);
}

// ----------------------------------------------- parameterized properties

class WanScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(WanScalingTest, PerSenderShareNeverExceedsLink) {
  const int senders = GetParam();
  WanSpec w = wan_mbps(64.0);
  EXPECT_LE(w.per_sender_bandwidth(senders, 1e9), w.per_link_Bps);
}

TEST_P(WanScalingTest, AggregateThroughputNeverExceedsCap) {
  const int senders = GetParam();
  WanSpec w = wan_mbps(64.0);
  const double agg = senders * w.per_sender_bandwidth(senders, 1e9);
  EXPECT_LE(agg, w.aggregate_cap_Bps + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(SenderCounts, WanScalingTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

class DiskChunksTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiskChunksTest, TimeMonotoneInChunkCount) {
  DiskSpec d;
  const double base = d.access_time(1e8, GetParam());
  const double more = d.access_time(1e8, GetParam() + 1);
  EXPECT_GT(more, base);
}

INSTANTIATE_TEST_SUITE_P(ChunkCounts, DiskChunksTest,
                         ::testing::Values(0u, 1u, 10u, 1000u));

// --------------------------------------------------------- spec validation

TEST(SpecValidation, ReferenceSpecsAreValid) {
  EXPECT_NO_THROW(pentium700().validate());
  EXPECT_NO_THROW(opteron250().validate());
  EXPECT_NO_THROW(cluster_pentium_myrinet().validate());
  EXPECT_NO_THROW(cluster_opteron_infiniband().validate());
  EXPECT_NO_THROW(cluster_ideal().validate());
  EXPECT_NO_THROW(wan_kbps(500).validate());
  EXPECT_NO_THROW(wan_mbps(10).validate());
  EXPECT_NO_THROW(wan_ideal(100).validate());
}

TEST(SpecValidation, MachineRejectsBadRates) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {0.0, -1.0, nan, inf, -inf}) {
    MachineSpec m = pentium700();
    m.cpu_flops = bad;
    EXPECT_THROW(m.validate(), util::ConfigError) << "cpu_flops=" << bad;
    m = pentium700();
    m.mem_Bps = bad;
    EXPECT_THROW(m.validate(), util::ConfigError) << "mem_Bps=" << bad;
    m = pentium700();
    m.disk.bandwidth_Bps = bad;
    EXPECT_THROW(m.validate(), util::ConfigError) << "disk bw=" << bad;
    m = pentium700();
    m.nic.bandwidth_Bps = bad;
    EXPECT_THROW(m.validate(), util::ConfigError) << "nic bw=" << bad;
  }
}

TEST(SpecValidation, MachineRejectsNegativeLatencies) {
  MachineSpec m = pentium700();
  m.disk.seek_s = -1e-3;
  EXPECT_THROW(m.validate(), util::ConfigError);
  m = pentium700();
  m.nic.latency_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(m.validate(), util::ConfigError);
}

TEST(SpecValidation, MachineRejectsBadCounts) {
  MachineSpec m = pentium700();
  m.cores = 0;
  EXPECT_THROW(m.validate(), util::ConfigError);
  m = pentium700();
  m.disk.disks = -1;
  EXPECT_THROW(m.validate(), util::ConfigError);
}

TEST(SpecValidation, WanRejectsOverheadOutsideUnitInterval) {
  WanSpec w = wan_mbps(10);
  w.protocol_overhead = 1.0;
  EXPECT_THROW(w.validate(), util::ConfigError);
  w = wan_mbps(10);
  w.protocol_overhead = -0.1;
  EXPECT_THROW(w.validate(), util::ConfigError);
  w = wan_mbps(10);
  w.protocol_overhead = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(w.validate(), util::ConfigError);
}

TEST(SpecValidation, ClusterRejectsBadBackplaneAndNodeCount) {
  ClusterSpec c = cluster_pentium_myrinet();
  c.storage_backplane_Bps = 0.0;
  EXPECT_THROW(c.validate(), util::ConfigError);
  c = cluster_pentium_myrinet();
  c.max_nodes = 0;
  EXPECT_THROW(c.validate(), util::ConfigError);
  c = cluster_pentium_myrinet();
  c.interconnect.bandwidth_Bps = -5.0;
  EXPECT_THROW(c.validate(), util::ConfigError);
}

}  // namespace
}  // namespace fgp::sim
