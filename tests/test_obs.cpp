// test_obs.cpp — the observability layer's contracts: byte-identical
// trace/metrics exports across host pool sizes (DESIGN.md §12), Chrome-trace
// shape via the shared validator, registry semantics, residual reports,
// per-node pass timing and the overlap-mode elapsed pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <vector>
#include <string>
#include <utility>

#include "core/predictor.h"
#include "core/profile.h"
#include "core/residuals.h"
#include "helpers.h"
#include "obs/drift.h"
#include "obs/hdr.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/pool.h"
#include "obs/residual.h"
#include "obs/slowlog.h"
#include "obs/snapshot_ring.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "repository/payload.h"
#include "repository/store.h"
#include "repository/stream.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fgp {
namespace {

struct TracedRun {
  std::string trace_json;    ///< to_chrome_json(false): host stripped
  std::string metrics_json;  ///< to_json(false): host stripped
  freeride::RunResult result;
};

/// One fixed multi-pass job on the Pentium cluster with both sinks
/// attached; exports are taken in byte-comparison mode.
TracedRun run_traced(util::ThreadPool* pool, bool caching = false) {
  const auto ds = testing::make_sum_dataset(24, 64);
  testing::SumKernelParams params;
  params.passes = 3;
  testing::SumKernel kernel(params);
  auto setup = testing::pentium_setup(&ds, 2, 4);
  setup.config.enable_caching = caching;
  obs::TraceRecorder trace;
  obs::Registry metrics;
  setup.trace = &trace;
  setup.metrics = &metrics;
  auto result = freeride::Runtime(pool).run(setup, kernel);
  return {trace.to_chrome_json(false), metrics.to_json(false),
          std::move(result)};
}

TEST(Obs, TraceAndMetricsByteIdenticalAcrossPoolSizes) {
  const TracedRun serial = run_traced(nullptr);
  ASSERT_FALSE(serial.trace_json.empty());
  ASSERT_FALSE(serial.metrics_json.empty());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const TracedRun pooled = run_traced(&pool);
    EXPECT_EQ(serial.trace_json, pooled.trace_json)
        << "trace diverged at pool size " << threads;
    EXPECT_EQ(serial.metrics_json, pooled.metrics_json)
        << "metrics diverged at pool size " << threads;
  }
}

TEST(Obs, TraceValidatesAndHostEventsStrip) {
  const auto ds = testing::make_sum_dataset(8, 32);
  testing::SumKernel kernel;
  auto setup = testing::pentium_setup(&ds, 1, 2);
  obs::TraceRecorder trace;
  trace.enable_host(true);
  setup.trace = &trace;
  freeride::Runtime().run(setup, kernel);

  const std::string with_host = trace.to_chrome_json(true);
  const std::string without = trace.to_chrome_json(false);
  for (const std::string& text : {with_host, without}) {
    const auto v = obs::validate_report_text(text);
    EXPECT_EQ(v.kind, obs::ReportKind::Trace);
    EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors.front());
  }
  // The runtime records its HostSpan("runtime", "run") on the host pid;
  // byte-comparison mode must drop it.
  EXPECT_NE(with_host.find("\"pid\": 10000"), std::string::npos);
  EXPECT_EQ(without.find("\"pid\": 10000"), std::string::npos);
  // Virtual phase spans survive either way.
  for (const char* needle :
       {"local-reduction", "network-transfer", "ro-comm", "global-reduction",
        "retrieval/repository"}) {
    EXPECT_NE(without.find(needle), std::string::npos) << needle;
  }
}

TEST(Obs, RuntimeRecordsExpectedCounters) {
  const TracedRun run = run_traced(nullptr);
  const auto doc = obs::json::parse(run.metrics_json);
  const auto v = obs::validate_report(doc);
  EXPECT_EQ(v.kind, obs::ReportKind::Metrics);
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors.front());

  // Re-run to read values straight off a registry.
  const auto ds = testing::make_sum_dataset(24, 64);
  testing::SumKernelParams params;
  params.passes = 3;
  testing::SumKernel kernel(params);
  auto setup = testing::pentium_setup(&ds, 2, 4);
  obs::Registry metrics;
  setup.metrics = &metrics;
  freeride::Runtime().run(setup, kernel);
  EXPECT_DOUBLE_EQ(metrics.value("runtime.passes"), 3.0);
  // Without caching every pass retrieves all 24 chunks from the repository.
  EXPECT_DOUBLE_EQ(metrics.value("runtime.chunks.repository"), 72.0);
  EXPECT_GT(metrics.value("wan.repo-compute.bytes"), 0.0);
  // One metered transfer per data node per pass: 2 nodes x 3 passes.
  EXPECT_DOUBLE_EQ(metrics.value("wan.repo-compute.transfers"), 6.0);
  EXPECT_GT(metrics.value("runtime.max_object_bytes"), 0.0);
}

TEST(Obs, CachingSplitsChunkCountersByTier) {
  const auto ds = testing::make_sum_dataset(24, 64);
  testing::SumKernelParams params;
  params.passes = 3;
  testing::SumKernel kernel(params);
  auto setup = testing::pentium_setup(&ds, 2, 4);
  setup.config.enable_caching = true;
  obs::Registry metrics;
  setup.metrics = &metrics;
  freeride::Runtime().run(setup, kernel);
  // Pass 0 populates the per-node caches; passes 1 and 2 hit them.
  EXPECT_DOUBLE_EQ(metrics.value("cache.inserted_chunks"), 24.0);
  EXPECT_GT(metrics.value("cache.inserted_bytes"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.value("runtime.chunks.repository"), 24.0);
  EXPECT_DOUBLE_EQ(metrics.value("runtime.chunks.local-cache"), 48.0);
}

TEST(Obs, PassRecordTracksPerNodeComputeTime) {
  const TracedRun run = run_traced(nullptr);
  const auto& passes = run.result.timing.passes;
  ASSERT_EQ(passes.size(), 3u);
  for (const auto& rec : passes) {
    ASSERT_EQ(rec.node_compute.size(), 4u);
    double slowest = 0.0;
    for (const double t : rec.node_compute) {
      EXPECT_GT(t, 0.0);
      slowest = std::max(slowest, t);
    }
    EXPECT_DOUBLE_EQ(slowest, rec.timing.compute_local);
  }
}

// Pins the JobTiming::elapsed contract the header documents: additive mode
// sums every phase; overlap mode takes max(disk, network, local) + the
// serialized parts, which is *strictly* less whenever all three pipelined
// phases take non-zero time.
TEST(Obs, OverlapElapsedStrictlyBelowAdditiveTotal) {
  const auto ds = testing::make_sum_dataset(24, 64);

  auto run_with = [&](bool overlap) {
    testing::SumKernelParams params;
    params.passes = 2;
    testing::SumKernel kernel(params);
    auto setup = testing::pentium_setup(&ds, 2, 4);
    setup.config.overlap_phases = overlap;
    return freeride::Runtime().run(setup, kernel);
  };

  const auto additive = run_with(false);
  EXPECT_DOUBLE_EQ(additive.timing.elapsed, additive.timing.total.total());

  const auto overlapped = run_with(true);
  double expected_elapsed = 0.0;
  for (const auto& rec : overlapped.timing.passes) {
    ASSERT_GT(rec.timing.disk, 0.0);
    ASSERT_GT(rec.timing.network, 0.0);
    ASSERT_GT(rec.timing.compute_local, 0.0);
    EXPECT_LT(rec.elapsed, rec.timing.total());
    EXPECT_DOUBLE_EQ(rec.elapsed,
                     std::max({rec.timing.disk, rec.timing.network,
                               rec.timing.compute_local}) +
                         rec.timing.ro_comm + rec.timing.global_red);
    expected_elapsed += rec.elapsed;
  }
  EXPECT_DOUBLE_EQ(overlapped.timing.elapsed, expected_elapsed);
  EXPECT_LT(overlapped.timing.elapsed, overlapped.timing.total.total());
}

TEST(Obs, RegistrySemantics) {
  obs::Registry reg;
  reg.add("c", 2.0);
  reg.add("c", 3.0);
  EXPECT_DOUBLE_EQ(reg.value("c"), 5.0);
  reg.set("g", 7.0);
  reg.set("g", 4.0);
  EXPECT_DOUBLE_EQ(reg.value("g"), 4.0);
  reg.set_max("m", 1.0);
  reg.set_max("m", 9.0);
  reg.set_max("m", 3.0);
  EXPECT_DOUBLE_EQ(reg.value("m"), 9.0);
  EXPECT_DOUBLE_EQ(reg.value("absent"), 0.0);

  reg.observe("h", 1e-3);
  reg.observe("h", 1e2);
  reg.add("host.only", 1.0, obs::Domain::Host);

  const std::string with_host = reg.to_json(true);
  const std::string without = reg.to_json(false);
  for (const std::string& text : {with_host, without}) {
    const auto v = obs::validate_report_text(text);
    EXPECT_EQ(v.kind, obs::ReportKind::Metrics);
    EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors.front());
  }
  EXPECT_NE(with_host.find("host.only"), std::string::npos);
  EXPECT_EQ(without.find("host.only"), std::string::npos);

  reg.clear();
  EXPECT_DOUBLE_EQ(reg.value("c"), 0.0);
}

// --- store counters -------------------------------------------------------

/// A small dataset saved under a fresh temp root with `metrics` attached.
repository::DatasetStore saved_store(const std::filesystem::path& root,
                                     obs::Registry* metrics) {
  std::filesystem::remove_all(root);
  repository::DatasetStore store(root, nullptr, metrics);
  repository::ChunkedDataset ds(repository::DatasetMeta{"counters", "f64", 3});
  ds.add_chunk(repository::make_chunk<double>(0, {1, 2, 3}, 2.0));
  ds.add_chunk(repository::make_chunk<double>(1, {4, 5}, 2.0));
  ds.add_chunk(repository::make_chunk<double>(2, {6}, 2.0));
  store.save(ds);
  return store;
}

TEST(Obs, StoreCountersSymmetricAcrossSaveAndLoad) {
  // Load-side counters mirror save-side ones exactly: every byte written
  // is read back, so loaded_bytes == saved_bytes and chunk counts match.
  const auto root =
      std::filesystem::temp_directory_path() / "fgp_obs_store_sym";
  obs::Registry metrics;
  const auto store = saved_store(root, &metrics);
  (void)store.load("counters");
  EXPECT_DOUBLE_EQ(metrics.value("store.saved_chunks"), 3.0);
  EXPECT_DOUBLE_EQ(metrics.value("store.loaded_chunks"),
                   metrics.value("store.saved_chunks"));
  EXPECT_GT(metrics.value("store.saved_bytes"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.value("store.loaded_bytes"),
                   metrics.value("store.saved_bytes"));
  std::filesystem::remove_all(root);
}

TEST(Obs, MappedLoadKeepsDeterministicExportIdentical) {
  // The load path is a host-machine concern: streamed and mapped loads
  // must produce byte-identical deterministic metric exports. The mmap
  // accounting (store.mapped_bytes) lives in the host domain and shows
  // only in to_json(true).
  const auto root =
      std::filesystem::temp_directory_path() / "fgp_obs_store_mapped";
  obs::Registry streamed_metrics;
  const auto store = saved_store(root, &streamed_metrics);
  obs::Registry mapped_metrics;
  const repository::DatasetStore mapped_store(root, nullptr, &mapped_metrics);

  streamed_metrics.clear();  // drop the save-side counters
  (void)store.load("counters");
  (void)mapped_store.load_mapped("counters");
  EXPECT_EQ(streamed_metrics.to_json(false), mapped_metrics.to_json(false));
  if (repository::PayloadBuffer::mmap_supported()) {
    EXPECT_DOUBLE_EQ(mapped_metrics.host_value("store.mapped_bytes"),
                     mapped_metrics.value("store.loaded_bytes"));
    EXPECT_NE(mapped_metrics.to_json(true).find("store.mapped_bytes"),
              std::string::npos);
    EXPECT_EQ(mapped_metrics.to_json(false).find("store.mapped_bytes"),
              std::string::npos);
  }
  std::filesystem::remove_all(root);
}

TEST(Obs, StreamerCountersSplitDomains) {
  // The streaming window layer (DESIGN.md §15) records its byte totals in
  // the deterministic domain (fixed by the fetch sequence) and its
  // timing-dependent pool activity (maps, recycles, prefetch outcomes) in
  // the host domain, so streamed runs export byte-identically.
  if (!repository::PayloadBuffer::mmap_supported())
    GTEST_SKIP() << "no mmap on this platform; load_streamed falls back";
  const auto root =
      std::filesystem::temp_directory_path() / "fgp_obs_store_streamer";
  obs::Registry metrics;
  const auto store = saved_store(root, &metrics);
  metrics.clear();  // drop the save-side counters

  const auto streamed = store.load_streamed("counters");
  for (std::size_t i = 0; i < streamed.chunk_count(); ++i)
    streamed.prefetch(i);
  for (std::size_t i = 0; i < streamed.chunk_count(); ++i)
    (void)streamed.materialize(i);

  EXPECT_DOUBLE_EQ(metrics.value("store.windowed_bytes"), 48.0);  // 6 f64
  EXPECT_DOUBLE_EQ(metrics.value("store.stitched_chunks"), 0.0);
  EXPECT_GT(metrics.host_value("store.window_maps"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.host_value("store.prefetch_issued"), 3.0);
  EXPECT_GT(metrics.host_value("store.prefetch_hits"), 0.0);

  const std::string deterministic = metrics.to_json(false);
  EXPECT_NE(deterministic.find("store.windowed_bytes"), std::string::npos);
  EXPECT_EQ(deterministic.find("store.window_maps"), std::string::npos);
  EXPECT_EQ(deterministic.find("store.prefetch_hits"), std::string::npos);
  // Both export modes stay valid metrics snapshots.
  EXPECT_TRUE(obs::validate_report_text(deterministic).ok());
  EXPECT_TRUE(obs::validate_report_text(metrics.to_json(true)).ok());
  std::filesystem::remove_all(root);
}

TEST(Obs, StreamedRuntimeKeepsDeterministicExportsByteIdentical) {
  // Streaming is purely a host IO concern: a runtime pass pulling chunks
  // through budget-bounded windows with prefetch leaves the virtual-time
  // trace and deterministic metrics byte-identical to the in-memory run.
  if (!repository::PayloadBuffer::mmap_supported())
    GTEST_SKIP() << "no mmap on this platform; load_streamed falls back";
  const TracedRun reference = run_traced(nullptr);

  const auto root =
      std::filesystem::temp_directory_path() / "fgp_obs_streamed_run";
  std::filesystem::remove_all(root);
  const repository::DatasetStore store(root);
  const auto ds = testing::make_sum_dataset(24, 64);
  store.save(ds);
  repository::StreamConfig cfg;
  cfg.window_bytes = 1;  // one page per window
  cfg.budget_bytes = 8192;
  const auto streamed = store.load_streamed(ds.meta().name, cfg);
  ASSERT_TRUE(streamed.streamed());

  testing::SumKernelParams params;
  params.passes = 3;
  testing::SumKernel kernel(params);
  auto setup = testing::pentium_setup(&streamed, 2, 4);
  obs::TraceRecorder trace;
  obs::Registry metrics;
  setup.trace = &trace;
  setup.metrics = &metrics;
  util::ThreadPool pool(4);
  const auto result = freeride::Runtime(&pool).run(setup, kernel);

  EXPECT_EQ(trace.to_chrome_json(false), reference.trace_json);
  EXPECT_EQ(metrics.to_json(false), reference.metrics_json);
  EXPECT_EQ(result.timing.elapsed, reference.result.timing.elapsed);
  std::filesystem::remove_all(root);
}

TEST(Obs, SharedViewCounterCountsEveryChunk) {
  repository::ChunkedDataset ds(repository::DatasetMeta{"views", "f64", 1});
  ds.add_chunk(repository::make_chunk<double>(0, {1, 2}, 1.0));
  ds.add_chunk(repository::make_chunk<double>(1, {3, 4}, 1.0));
  obs::Registry metrics;
  const auto view = ds.with_uniform_virtual_scale(5.0, &metrics);
  EXPECT_DOUBLE_EQ(metrics.value("payload.shared_views"), 2.0);
  EXPECT_DOUBLE_EQ(view.total_virtual_bytes(), 5.0 * 32.0);
}

TEST(Obs, TraceRecorderRejectsOutOfOrderSpans) {
  obs::TraceRecorder trace;
  EXPECT_THROW(trace.span("cat", "bad", obs::kJobNode, 0, 2.0, 1.0),
               util::Error);
  EXPECT_THROW(trace.span("cat", "bad", obs::kJobNode, 0, -1.0, 1.0),
               util::Error);
  trace.span("cat", "good", obs::kJobNode, 0, 1.0, 2.0);
  EXPECT_EQ(trace.event_count(), 1u);
  trace.clear();
  EXPECT_EQ(trace.event_count(), 0u);
}

TEST(Obs, ResidualReportRoundTrip) {
  core::PredictedTime predicted;
  predicted.disk = 1.0;
  predicted.network = 2.0;
  predicted.compute_local = 3.0;
  predicted.ro_comm = 0.5;
  predicted.global_red = 0.25;
  predicted.compute =
      predicted.compute_local + predicted.ro_comm + predicted.global_red;

  freeride::TimingBreakdown observed;
  observed.disk = 1.1;
  observed.network = 1.9;
  observed.compute_local = 3.2;
  observed.ro_comm = 0.5;
  observed.global_red = 0.3;

  const auto point = core::make_residual_point("2-4", predicted, observed);
  EXPECT_EQ(point.label, "2-4");
  EXPECT_DOUBLE_EQ(point.predicted.total(), predicted.total());
  EXPECT_DOUBLE_EQ(point.observed.total(), observed.total());
  EXPECT_NEAR(point.residual().disk, -0.1, 1e-12);
  EXPECT_NEAR(point.rel_error_total(),
              std::abs(predicted.total() - observed.total()) / observed.total(),
              1e-12);

  obs::ResidualReport report("unit-sweep", "global-reduction");
  report.add(point);
  const auto v = obs::validate_report_text(report.to_json());
  EXPECT_EQ(v.kind, obs::ReportKind::Residuals);
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors.front());
}

// The predictor's component split must stay consistent with its total —
// the residual reports subtract these per component.
TEST(Obs, PredictedTimeComponentSplitSumsToCompute) {
  const auto ds = testing::make_sum_dataset(16, 32);
  testing::SumKernel kernel;
  auto setup = testing::pentium_setup(&ds, 1, 1);
  util::ThreadPool* const no_pool = nullptr;
  const auto profile = core::ProfileCollector::collect(setup, kernel, no_pool);
  for (const auto model : {core::PredictionModel::NoCommunication,
                           core::PredictionModel::ReductionCommunication,
                           core::PredictionModel::GlobalReduction}) {
    core::PredictorOptions opts;
    opts.model = model;
    auto target = profile.config;
    target.data_nodes = 2;
    target.compute_nodes = 4;
    const auto t = core::Predictor(profile, opts).predict(target);
    EXPECT_NEAR(t.compute, t.compute_local + t.ro_comm + t.global_red, 1e-12);
    EXPECT_GE(t.compute_local, 0.0);
    EXPECT_GE(t.ro_comm, 0.0);
    EXPECT_GE(t.global_red, 0.0);
  }
}

TEST(Obs, PoolTracingAndHostStats) {
  util::ThreadPool pool(2);
  obs::TraceRecorder trace;
  trace.enable_host(true);
  obs::attach_pool_tracing(pool, &trace);
  std::atomic<int> hits{0};
  pool.parallel_for(64, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 64);
  EXPECT_GE(trace.event_count(), 1u);
  obs::attach_pool_tracing(pool, nullptr);
  pool.submit([] {}).get();

  const auto stats = pool.stats();
  EXPECT_EQ(stats.parallel_for_calls, 1ull);
  EXPECT_GE(stats.blocks_total, 1ull);
  EXPECT_EQ(stats.tasks_submitted, 1ull);

  // Pool stats are host-domain: present with host, gone without.
  obs::Registry reg;
  obs::record_pool_stats(stats, reg);
  EXPECT_NE(reg.to_json(true).find("pool.parallel_for_calls"),
            std::string::npos);
  EXPECT_EQ(reg.to_json(false).find("pool.parallel_for_calls"),
            std::string::npos);

  // The pool span lands on the segregated host pid and strips cleanly.
  const std::string with_host = trace.to_chrome_json(true);
  EXPECT_NE(with_host.find("parallel_for"), std::string::npos);
  EXPECT_EQ(trace.to_chrome_json(false).find("parallel_for"),
            std::string::npos);
}

// --- obs::Histogram decade-edge boundary math (PR 9 satellite) -----------

TEST(Obs, HistogramObserveMatchesUpperBoundAtEveryDecadeEdge) {
  // The log10-indexed observe must agree with the documented boundary
  // semantics — smallest b with v <= upper_bound(b) — exactly at every
  // decade edge and one ulp past it.
  for (int b = 0; b < obs::Histogram::kBuckets - 1; ++b) {
    const double edge = obs::Histogram::upper_bound(b);
    {
      obs::Histogram h;
      h.observe(edge);  // inclusive upper bound: lands in bucket b
      EXPECT_EQ(h.buckets[static_cast<std::size_t>(b)], 1u)
          << "edge of bucket " << b;
    }
    {
      obs::Histogram h;
      h.observe(std::nextafter(edge, HUGE_VAL));  // one ulp past: bucket b+1
      EXPECT_EQ(h.buckets[static_cast<std::size_t>(b) + 1], 1u)
          << "past the edge of bucket " << b;
    }
  }
  obs::Histogram h;
  h.observe(0.0);                 // below the first edge
  h.observe(-1.0);                // negative clamps into bucket 0
  h.observe(std::nan(""));        // NaN clamps into bucket 0
  EXPECT_EQ(h.buckets[0], 3u);
  h.observe(1e30);                // far past the last edge: overflow bucket
  EXPECT_EQ(h.buckets[obs::Histogram::kBuckets - 1], 1u);
}

TEST(Obs, HistogramObserveMatchesLinearScanReference) {
  // Against the retired linear scan over a log sweep three decades wider
  // than the bucket range on each side.
  util::Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    const double v = std::pow(10.0, rng.uniform(-12.0, 8.0));
    int want = 0;
    while (want < obs::Histogram::kBuckets - 1 &&
           v > obs::Histogram::upper_bound(want))
      ++want;
    obs::Histogram h;
    h.observe(v);
    EXPECT_EQ(h.buckets[static_cast<std::size_t>(want)], 1u) << "v=" << v;
  }
}

// --- HDR latency histograms ----------------------------------------------

TEST(Obs, HdrBucketIndexRespectsBoundedRelativeError) {
  // Every bucket's upper edge maps back into that bucket, the next
  // nanosecond into the following one, and the bucket width never
  // exceeds 1/32 of its lower edge (the advertised ~3.1% bound).
  for (const std::uint64_t ns :
       {0ull, 1ull, 63ull, 64ull, 65ull, 127ull, 128ull, 1000ull, 27000ull,
        1000000ull, 123456789ull, 1ull << 40, (1ull << 63) + 12345ull}) {
    const std::size_t idx = obs::HdrHistogram::bucket_index(ns);
    ASSERT_LT(idx, obs::HdrHistogram::kBucketCount);
    const std::uint64_t edge = obs::HdrHistogram::bucket_upper_edge(idx);
    EXPECT_GE(edge, ns);
    if (edge < ~0ull) {
      EXPECT_EQ(obs::HdrHistogram::bucket_index(edge + 1), idx + 1);
    }
    if (ns >= obs::HdrHistogram::kSubBuckets) {
      const std::uint64_t lower =
          obs::HdrHistogram::bucket_upper_edge(idx - 1) + 1;
      EXPECT_LE(edge - lower + 1, lower / 32 + 1) << "ns=" << ns;
    }
  }
  // The extremes stay in range.
  EXPECT_EQ(obs::HdrHistogram::bucket_index(~0ull),
            obs::HdrHistogram::kBucketCount - 1);
  EXPECT_EQ(obs::HdrHistogram::bucket_upper_edge(
                obs::HdrHistogram::kBucketCount - 1),
            ~0ull);
}

TEST(Obs, HdrQuantilesBoundedErrorAndExactExtremes) {
  obs::HdrHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  // 1..1000 µs uniformly: p50 ~ 500 µs, p99 ~ 990 µs, within 3.2%.
  for (int i = 1; i <= 1000; ++i)
    h.observe_seconds(static_cast<double>(i) * 1e-6);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.quantile(0.50), 500e-6, 500e-6 * 0.032);
  EXPECT_NEAR(h.quantile(0.99), 990e-6, 990e-6 * 0.032);
  // min/max are tracked exactly and clamp the quantile read-back: the
  // top quantile is exactly max, the bottom within one bucket of min.
  EXPECT_DOUBLE_EQ(h.min_seconds(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1000e-6);
  EXPECT_GE(h.quantile(0.0), h.min_seconds());
  EXPECT_NEAR(h.quantile(0.0), h.min_seconds(), h.min_seconds() * 0.032);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max_seconds());
  EXPECT_NEAR(h.sum_seconds(), 500500e-6, 1e-6);
  // Hostile inputs clamp instead of corrupting the counts.
  h.observe_seconds(-1.0);
  h.observe_seconds(std::nan(""));
  EXPECT_EQ(h.count(), 1002u);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.0);
}

/// Records kValues deterministic latencies partitioned over `recorders`
/// per-thread recorders (parallel when a pool is given), merges them in
/// index order and returns the canonical JSON export.
std::string hdr_merged_json(util::ThreadPool* pool, std::size_t recorders) {
  constexpr std::size_t kValues = 20000;
  const auto value_ns = [](std::size_t i) {
    // Spreads across five decades deterministically.
    return 100 + (i * 1000003ull) % 10000000ull;
  };
  std::vector<obs::HdrHistogram> per_thread(recorders);
  const auto record_slice = [&](std::size_t r) {
    for (std::size_t i = r; i < kValues; i += recorders)
      per_thread[r].observe_ns(value_ns(i));
  };
  if (pool == nullptr) {
    for (std::size_t r = 0; r < recorders; ++r) record_slice(r);
  } else {
    pool->parallel_for(recorders, record_slice);
  }
  obs::HdrHistogram merged;
  for (std::size_t r = 0; r < recorders; ++r) merged.merge(per_thread[r]);
  return merged.to_json_object();
}

TEST(Obs, HdrMergeByteIdenticalAcrossPoolSizes) {
  // The §17 contract: per-thread recorders merged in index order export
  // byte-identically no matter how the recording work was scheduled —
  // serial, or pools of 1/2/8 threads — and no matter how many
  // recorders partition the stream (integral state commutes).
  const std::string reference = hdr_merged_json(nullptr, 1);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(hdr_merged_json(&pool, threads), reference)
        << "HDR merge diverged at pool size " << threads;
  }
  EXPECT_EQ(hdr_merged_json(nullptr, 7), reference);
}

// --- slow-query log -------------------------------------------------------

TEST(Obs, SlowQueryLogRingKeepsNewestAndCountsSeen) {
  obs::SlowQueryLog log(0.01, 2);
  const auto entry = [](const char* dataset, double latency) {
    obs::SlowQueryEntry e;
    e.app = "em";
    e.dataset = dataset;
    e.latency_s = latency;
    e.candidates_considered = 5;
    e.chosen = "repo-1/hpc-2/4";
    e.topology_version = 9;
    return e;
  };
  log.maybe_record(entry("fast", 0.005));   // under threshold: dropped
  log.maybe_record(entry("a", 0.02));
  log.maybe_record(entry("b", 0.03));
  log.maybe_record(entry("c", 0.04));       // evicts "a"
  EXPECT_EQ(log.seen(), 3u);
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].dataset, "b");  // oldest surviving first
  EXPECT_EQ(entries[1].dataset, "c");

  const auto v = obs::validate_report_text(log.to_json());
  EXPECT_EQ(v.kind, obs::ReportKind::Slowlog);
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors.front());
  log.clear();
  EXPECT_EQ(log.seen(), 0u);
  EXPECT_TRUE(log.entries().empty());
}

// --- drift monitor --------------------------------------------------------

obs::ResidualPoint drift_point(double predicted_disk, double observed_disk) {
  obs::ResidualPoint pt;
  pt.label = "p";
  pt.predicted = {predicted_disk, 2.0, 3.0, 0.5, 0.25};
  pt.observed = {observed_disk, 2.0, 3.0, 0.5, 0.25};
  return pt;
}

TEST(Obs, DriftMonitorStaysSteadyOnMatchingStream) {
  obs::DriftMonitor drift;
  for (int i = 0; i < 200; ++i) drift.observe(drift_point(1.0, 1.0));
  EXPECT_EQ(drift.points(), 200u);
  for (int c = 0; c < obs::DriftMonitor::kComponents; ++c) {
    EXPECT_DOUBLE_EQ(drift.ewma(c), 0.0);
    EXPECT_DOUBLE_EQ(drift.window_mean(c), 0.0);
    EXPECT_DOUBLE_EQ(drift.window_variance(c), 0.0);
    EXPECT_FALSE(drift.drifting(c));
  }
  EXPECT_FALSE(drift.any_drifting());
  const auto v = obs::validate_report_text(drift.to_json());
  EXPECT_EQ(v.kind, obs::ReportKind::Drift);
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors.front());
}

TEST(Obs, DriftMonitorFlagsDriftingComponentAndRecovers) {
  obs::DriftMonitor drift;
  // The disk model under-predicts by half the observed total: the signed
  // relative residual is (1 - 3) / (3 + 2 + 3 + 0.5 + 0.25) ~ -0.229,
  // past the default 0.1 band once the EWMA converges.
  for (int i = 0; i < 50; ++i) drift.observe(drift_point(1.0, 3.0));
  EXPECT_TRUE(drift.drifting(0)) << "disk ewma " << drift.ewma(0);
  EXPECT_LT(drift.ewma(0), -0.1);
  for (int c = 1; c < obs::DriftMonitor::kComponents; ++c)
    EXPECT_FALSE(drift.drifting(c));
  EXPECT_TRUE(drift.any_drifting());
  EXPECT_NE(drift.to_json().find("\"drifting\": true"), std::string::npos);

  // A corrected model decays the EWMA back inside the band.
  for (int i = 0; i < 50; ++i) drift.observe(drift_point(1.0, 1.0));
  EXPECT_FALSE(drift.any_drifting());
  // Monitor state is a pure function of the fed sequence: a second
  // monitor fed the same stream exports byte-identically.
  obs::DriftMonitor replay;
  for (int i = 0; i < 50; ++i) replay.observe(drift_point(1.0, 3.0));
  for (int i = 0; i < 50; ++i) replay.observe(drift_point(1.0, 1.0));
  EXPECT_EQ(drift.to_json(), replay.to_json());
}

TEST(Obs, DriftMonitorWindowStatsAndConfigValidation) {
  obs::DriftConfig config;
  config.window = 4;
  obs::DriftMonitor drift(config);
  // Alternating over/under prediction: window mean ~0, variance > 0.
  for (int i = 0; i < 16; ++i)
    drift.observe(drift_point(i % 2 == 0 ? 1.2 : 0.8, 1.0));
  EXPECT_NEAR(drift.window_mean(0), 0.0, 1e-12);
  EXPECT_GT(drift.window_variance(0), 0.0);
  // Points with no usable observation are counted but change nothing.
  obs::ResidualPoint zero;
  drift.observe(zero);
  EXPECT_EQ(drift.points(), 17u);

  EXPECT_THROW(obs::DriftMonitor(obs::DriftConfig{0.0, 64, 0.1}),
               util::ConfigError);
  EXPECT_THROW(obs::DriftMonitor(obs::DriftConfig{1.5, 64, 0.1}),
               util::ConfigError);
  EXPECT_THROW(obs::DriftMonitor(obs::DriftConfig{0.2, 0, 0.1}),
               util::ConfigError);
  EXPECT_THROW(obs::DriftMonitor(obs::DriftConfig{0.2, 64, -1.0}),
               util::ConfigError);
}

// --- snapshot ring --------------------------------------------------------

TEST(Obs, SnapshotRingCapturesRatesAndStripsHost) {
  obs::Registry reg;
  obs::SnapshotRing ring(2);
  reg.add("service.queries", 100.0);
  reg.add("host.io", 1.0, obs::Domain::Host);
  ring.capture(reg, 1.0);
  reg.add("service.queries", 150.0);
  ring.capture(reg, 2.0);
  reg.add("service.queries", 50.0);
  ring.capture(reg, 3.0);  // evicts seq 0 (capacity 2)

  EXPECT_EQ(ring.captured(), 3u);
  const auto snaps = ring.snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].seq, 1u);
  EXPECT_EQ(snaps[1].seq, 2u);
  ASSERT_EQ(snaps[1].deterministic.size(), 1u);
  EXPECT_EQ(snaps[1].deterministic[0].first, "service.queries");
  EXPECT_DOUBLE_EQ(snaps[1].deterministic[0].second, 300.0);
  ASSERT_EQ(snaps[1].host.size(), 1u);
  EXPECT_EQ(snaps[1].host[0].first, "host.io");

  const std::string with_host = ring.to_json(true);
  const std::string without = ring.to_json(false);
  for (const std::string& text : {with_host, without}) {
    const auto v = obs::validate_report_text(text);
    EXPECT_EQ(v.kind, obs::ReportKind::Snapshots);
    EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors.front());
  }
  EXPECT_NE(with_host.find("host_seconds"), std::string::npos);
  EXPECT_EQ(without.find("host_seconds"), std::string::npos);
  EXPECT_NE(with_host.find("host.io"), std::string::npos);
  EXPECT_EQ(without.find("host.io"), std::string::npos);
  ring.clear();
  EXPECT_EQ(ring.captured(), 0u);
}

}  // namespace
}  // namespace fgp
