// Tests for the out-of-core streaming window layer (DESIGN.md §15):
// windowed mmap round trips, the stitched fallback for payloads larger
// than a window, budget-bounded recycling, typed failures on truncated or
// corrupted chunk files, and the lazy materialization contract of
// streamed datasets.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "obs/metrics.h"
#include "repository/chunk.h"
#include "repository/dataset.h"
#include "repository/payload.h"
#include "repository/store.h"
#include "repository/stream.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace fgp::repository {
namespace {

namespace fs = std::filesystem;

fs::path temp_root(const char* tag) {
  auto p = fs::temp_directory_path() /
           ("fgp_stream_test_" + std::string(tag) + "_" +
            std::to_string(::getpid()));
  fs::remove_all(p);
  return p;
}

/// A dataset of byte chunks with a deterministic per-chunk pattern, so any
/// stitching or aliasing mistake shows up as a byte mismatch.
ChunkedDataset make_dataset(const std::vector<std::size_t>& sizes,
                            double scale = 2.0) {
  DatasetMeta meta;
  meta.name = "streamed";
  meta.schema = "bytes";
  meta.seed = 1;
  ChunkedDataset ds(meta);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::uint8_t> bytes(sizes[i]);
    for (std::size_t j = 0; j < bytes.size(); ++j)
      bytes[j] = static_cast<std::uint8_t>((j * 31 + i * 7 + 3) & 0xff);
    ds.add_chunk(Chunk(static_cast<ChunkId>(i), std::move(bytes), scale));
  }
  return ds;
}

bool same_payload(const Chunk& a, const Chunk& b) {
  const auto pa = a.payload();
  const auto pb = b.payload();
  return pa.size() == pb.size() && std::equal(pa.begin(), pa.end(), pb.begin());
}

/// One small (page-sized) window per config, so multi-KB chunks straddle.
StreamConfig tiny_windows(std::size_t budget_windows = 4) {
  StreamConfig cfg;
  cfg.window_bytes = 1;  // rounds up to one page
  cfg.budget_bytes = budget_windows * 4096;
  return cfg;
}

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!PayloadBuffer::mmap_supported())
      GTEST_SKIP() << "no mmap on this platform; load_streamed falls back";
  }
};

TEST_F(StreamTest, RoundTripMatchesEagerLoad) {
  const auto root = temp_root("roundtrip");
  const DatasetStore store(root);
  // Sizes chosen to cover: empty, sub-window, exactly one page, straddling
  // 2 and 4 windows, and a non-aligned tail.
  const auto ds = make_dataset({0, 100, 4096, 5000, 12345, 16384});
  store.save(ds);

  const auto eager = store.load("streamed");
  const auto streamed = store.load_streamed("streamed", tiny_windows());
  ASSERT_TRUE(streamed.streamed());
  ASSERT_EQ(streamed.chunk_count(), eager.chunk_count());
  EXPECT_EQ(streamed.total_real_bytes(), eager.total_real_bytes());
  for (std::size_t i = 0; i < streamed.chunk_count(); ++i) {
    const Chunk c = streamed.materialize(i);
    EXPECT_TRUE(same_payload(c, eager.chunk(i))) << "chunk " << i;
    EXPECT_EQ(c.id(), eager.chunk(i).id());
    EXPECT_EQ(c.checksum(), eager.chunk(i).checksum());
    EXPECT_DOUBLE_EQ(c.virtual_scale(), eager.chunk(i).virtual_scale());
  }
  fs::remove_all(root);
}

TEST_F(StreamTest, ResidentChunksStayMetadataOnly) {
  const auto root = temp_root("metadata");
  const DatasetStore store(root);
  store.save(make_dataset({100, 5000}));

  const auto streamed = store.load_streamed("streamed", tiny_windows());
  // The resident handles carry sizes but no bytes, before AND after a
  // materialize — a materialized chunk is a value handed to the caller,
  // never cached back into the dataset.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < streamed.chunk_count(); ++i) {
      EXPECT_FALSE(streamed.chunk(i).loaded());
      EXPECT_GT(streamed.chunk(i).real_bytes(), 0u);
      EXPECT_THROW(streamed.chunk(i).payload(), util::Error);
    }
    for (std::size_t i = 0; i < streamed.chunk_count(); ++i)
      EXPECT_TRUE(streamed.materialize(i).loaded());
  }
  fs::remove_all(root);
}

TEST_F(StreamTest, SingleWindowChunkAliasesTheMapping) {
  const auto root = temp_root("alias");
  const DatasetStore store(root);
  store.save(make_dataset({1000}));

  obs::Registry metrics;
  const DatasetStore reader(root, nullptr, &metrics);
  const auto streamed = reader.load_streamed("streamed", tiny_windows());
  const Chunk c = streamed.materialize(0);
  ASSERT_NE(c.payload_buffer(), nullptr);
  EXPECT_TRUE(c.payload_buffer()->borrowed());  // zero-copy mmap view
  EXPECT_EQ(metrics.value("store.stitched_chunks"), 0.0);
  EXPECT_EQ(metrics.value("store.windowed_bytes"), 1000.0);
  fs::remove_all(root);
}

TEST_F(StreamTest, ChunkLargerThanWindowStitchesAcrossBoundaries) {
  const auto root = temp_root("stitch");
  const DatasetStore store(root);
  const auto ds = make_dataset({10000});  // window is one 4 KiB page
  store.save(ds);

  obs::Registry metrics;
  const DatasetStore reader(root, nullptr, &metrics);
  // Budget of ONE window — strictly smaller than the chunk — is the
  // degenerate case the contract requires to fall back, not fail.
  const auto streamed = reader.load_streamed("streamed", tiny_windows(1));
  const Chunk c = streamed.materialize(0);
  ASSERT_NE(c.payload_buffer(), nullptr);
  EXPECT_FALSE(c.payload_buffer()->borrowed());  // stitched heap slab
  EXPECT_TRUE(same_payload(c, ds.chunk(0)));
  EXPECT_GE(metrics.value("store.stitched_chunks"), 1.0);
  fs::remove_all(root);
}

TEST_F(StreamTest, PoolRecyclesUnderBudget) {
  const auto root = temp_root("budget");
  const DatasetStore store(root);
  std::vector<std::size_t> sizes(32, 6000);
  store.save(make_dataset(sizes));

  obs::Registry metrics;
  const DatasetStore reader(root, nullptr, &metrics);
  const StreamConfig cfg = tiny_windows(2);  // 2-page budget, 2-page chunks
  const auto streamed = reader.load_streamed("streamed", cfg);
  const auto* source =
      dynamic_cast<const StoreStreamSource*>(streamed.source().get());
  ASSERT_NE(source, nullptr);
  double total = 0.0;
  for (std::size_t i = 0; i < streamed.chunk_count(); ++i) {
    total += static_cast<double>(streamed.materialize(i).payload().size());
    EXPECT_LE(source->resident_window_bytes(), cfg.budget_bytes);
  }
  EXPECT_EQ(total, 32.0 * 6000.0);
  EXPECT_GT(metrics.host_value("store.window_recycles"), 0.0);
  EXPECT_EQ(metrics.value("store.windowed_bytes"), total);
  fs::remove_all(root);
}

TEST_F(StreamTest, TruncatedFileThrowsTypedError) {
  const auto root = temp_root("truncated");
  const DatasetStore store(root);
  store.save(make_dataset({100, 9000}));

  const auto streamed = store.load_streamed("streamed", tiny_windows());
  // Truncate chunk 1 *after* the metadata scan: the next acquire re-stats
  // the file and must throw instead of mapping past EOF (SIGBUS).
  fs::resize_file(root / "streamed" / "chunk_1.bin",
                  Chunk::kWireHeaderBytes + 10);
  EXPECT_NO_THROW(streamed.materialize(0));
  EXPECT_THROW(streamed.materialize(1), util::SerializationError);
  fs::remove_all(root);
}

TEST_F(StreamTest, CorruptedPayloadFailsChecksum) {
  const auto root = temp_root("corrupt");
  const DatasetStore store(root);
  store.save(make_dataset({5000}));

  const auto streamed = store.load_streamed("streamed", tiny_windows());
  {
    // Flip one payload byte in place (size unchanged, so only the
    // checksum can catch it).
    std::fstream f(root / "streamed" / "chunk_0.bin",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(Chunk::kWireHeaderBytes + 2500));
    const int byte = f.get();
    f.seekp(static_cast<std::streamoff>(Chunk::kWireHeaderBytes + 2500));
    f.put(static_cast<char>(byte ^ 0x40));
  }
  EXPECT_THROW(streamed.materialize(0), util::SerializationError);
  fs::remove_all(root);
}

TEST_F(StreamTest, HeaderScanRejectsMissingOrShortFiles) {
  const auto root = temp_root("scan");
  const DatasetStore store(root);
  store.save(make_dataset({100, 100}));

  fs::remove(root / "streamed" / "chunk_1.bin");
  EXPECT_THROW(store.load_streamed("streamed", tiny_windows()),
               util::SerializationError);

  std::ofstream(root / "streamed" / "chunk_1.bin", std::ios::binary)
      << "short";
  EXPECT_THROW(store.load_streamed("streamed", tiny_windows()),
               util::SerializationError);
  fs::remove_all(root);
}

TEST_F(StreamTest, RescaledViewMaterializesAtViewScale) {
  const auto root = temp_root("rescale");
  const DatasetStore store(root);
  const auto ds = make_dataset({5000}, 2.0);
  store.save(ds);

  const auto streamed = store.load_streamed("streamed", tiny_windows());
  const auto view = streamed.with_uniform_virtual_scale(8.0);
  ASSERT_TRUE(view.streamed());  // the view shares the source
  const Chunk c = view.materialize(0);
  EXPECT_DOUBLE_EQ(c.virtual_scale(), 8.0);
  EXPECT_DOUBLE_EQ(c.virtual_bytes(), 8.0 * 5000.0);
  EXPECT_TRUE(same_payload(c, ds.chunk(0)));
  // The base dataset still materializes at its own scale.
  EXPECT_DOUBLE_EQ(streamed.materialize(0).virtual_scale(), 2.0);
  fs::remove_all(root);
}

TEST_F(StreamTest, PrefetchWarmsTheWindowPool) {
  const auto root = temp_root("prefetch");
  const DatasetStore store(root);
  store.save(make_dataset({3000, 3000, 3000, 3000}));

  obs::Registry metrics;
  const DatasetStore reader(root, nullptr, &metrics);
  const auto streamed = reader.load_streamed("streamed", tiny_windows(8));
  for (std::size_t i = 0; i < streamed.chunk_count(); ++i)
    streamed.prefetch(i);
  EXPECT_EQ(metrics.host_value("store.prefetch_issued"), 4.0);
  for (std::size_t i = 0; i < streamed.chunk_count(); ++i)
    (void)streamed.materialize(i);
  // Every fetch found its window resident from the prefetch pass.
  EXPECT_GT(metrics.host_value("store.prefetch_hits"), 0.0);
  EXPECT_EQ(metrics.host_value("store.prefetch_misses"), 0.0);
  fs::remove_all(root);
}

TEST_F(StreamTest, VerifyAllLeavesChunksUnloaded) {
  const auto root = temp_root("verify");
  const DatasetStore store(root);
  store.save(make_dataset({100, 7000}));

  const auto streamed = store.load_streamed("streamed", tiny_windows());
  EXPECT_TRUE(streamed.verify_all());
  for (std::size_t i = 0; i < streamed.chunk_count(); ++i)
    EXPECT_EQ(streamed.chunk(i).loaded(), streamed.chunk(i).real_bytes() == 0);
  fs::remove_all(root);
}

TEST_F(StreamTest, ConcurrentMaterializeIsSafeAndCorrect) {
  const auto root = temp_root("concurrent");
  const DatasetStore store(root);
  std::vector<std::size_t> sizes;
  for (std::size_t i = 0; i < 24; ++i) sizes.push_back(1000 + 700 * i);
  const auto ds = make_dataset(sizes);
  store.save(ds);

  const auto streamed = store.load_streamed("streamed", tiny_windows(3));
  util::ThreadPool pool(4);
  std::vector<int> ok(sizes.size(), 0);
  for (int round = 0; round < 4; ++round) {
    std::fill(ok.begin(), ok.end(), 0);
    pool.parallel_for(sizes.size(), [&](std::size_t i) {
      ok[i] = same_payload(streamed.materialize(i), ds.chunk(i)) ? 1 : 0;
    });
    EXPECT_EQ(std::count(ok.begin(), ok.end(), 1),
              static_cast<std::ptrdiff_t>(sizes.size()));
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace fgp::repository
