// Tests for jobs whose data repository and compute site live on
// *different* cluster types (the normal grid situation): phase accounting
// uses the right machine for each role, and profiles collected on such
// asymmetric setups still predict correctly.
#include <gtest/gtest.h>

#include "core/ipc_probe.h"
#include "core/predictor.h"
#include "core/profile.h"
#include "freeride/runtime.h"
#include "helpers.h"
#include "util/stats.h"

namespace fgp::freeride {
namespace {

using fgp::testing::SumKernel;
using fgp::testing::SumKernelParams;
using fgp::testing::expected_sum;
using fgp::testing::make_sum_dataset;

JobSetup asymmetric_setup(const repository::ChunkedDataset* ds, int n, int c) {
  JobSetup setup;
  setup.dataset = ds;
  setup.data_cluster = sim::cluster_pentium_myrinet();    // slow disks
  setup.compute_cluster = sim::cluster_opteron_infiniband();  // fast CPUs
  setup.wan = sim::wan_mbps(200.0);
  setup.config.data_nodes = n;
  setup.config.compute_nodes = c;
  return setup;
}

TEST(MixedClusters, ResultsCorrect) {
  const auto ds = make_sum_dataset(16, 64);
  auto setup = asymmetric_setup(&ds, 2, 4);
  SumKernel kernel;
  const auto result = Runtime().run(setup, kernel);
  const auto& obj = dynamic_cast<const fgp::testing::SumObject&>(*result.result);
  EXPECT_DOUBLE_EQ(obj.sum, expected_sum(16, 64));
}

TEST(MixedClusters, DiskUsesRepositoryMachineComputeUsesComputeMachine) {
  const auto ds = make_sum_dataset(16, 64, 1000.0);
  SumKernelParams p;
  p.flops_per_element = 100.0;

  // Asymmetric: pentium repo + opteron compute.
  auto mixed = asymmetric_setup(&ds, 1, 1);
  // Swapped: opteron repo + pentium compute.
  auto swapped = asymmetric_setup(&ds, 1, 1);
  std::swap(swapped.data_cluster, swapped.compute_cluster);

  SumKernel k1(p), k2(p);
  const auto t_mixed = Runtime().run(mixed, k1).timing.total;
  const auto t_swapped = Runtime().run(swapped, k2).timing.total;

  // Pentium disks (50 MB/s) are slower than Opteron's (100 MB/s), and
  // Pentium CPUs (0.7 Gflop/s) slower than Opteron's (2.4): each phase
  // must track its own cluster.
  EXPECT_GT(t_mixed.disk, t_swapped.disk);
  EXPECT_LT(t_mixed.compute_local, t_swapped.compute_local);
}

TEST(MixedClusters, GatherUsesComputeClusterInterconnect) {
  const auto ds = make_sum_dataset(16, 64);
  SumKernelParams p;
  p.constant_ballast = 64 * 1024;
  auto mixed = asymmetric_setup(&ds, 1, 4);
  auto swapped = asymmetric_setup(&ds, 1, 4);
  std::swap(swapped.data_cluster, swapped.compute_cluster);
  SumKernel k1(p), k2(p);
  const double ro_opteron = Runtime().run(mixed, k1).timing.total.ro_comm;
  const double ro_pentium = Runtime().run(swapped, k2).timing.total.ro_comm;
  // Opteron interconnect (1 ms, 300 MB/s) beats the Pentium one (4 ms,
  // 100 MB/s), so gathers on the Opteron compute side are cheaper.
  EXPECT_LT(ro_opteron, ro_pentium);
}

TEST(MixedClusters, PredictionStillWorksFromAsymmetricProfile) {
  const auto ds = make_sum_dataset(32, 64, 1000.0);
  SumKernelParams p;
  p.constant_ballast = 4096;
  auto profile_setup = asymmetric_setup(&ds, 1, 1);
  SumKernel profile_kernel(p);
  const core::Profile profile =
      core::ProfileCollector::collect(profile_setup, profile_kernel);
  EXPECT_EQ(profile.config.data_cluster, "pentium-myrinet");
  EXPECT_EQ(profile.config.compute_cluster, "opteron-infiniband");

  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.ipc = core::measure_ipc(profile_setup.compute_cluster);
  const core::Predictor predictor(profile, opts);

  auto target_setup = asymmetric_setup(&ds, 4, 8);
  SumKernel target_kernel(p);
  const auto actual = Runtime().run(target_setup, target_kernel);
  core::ProfileConfig target = profile.config;
  target.data_nodes = 4;
  target.compute_nodes = 8;
  const double predicted = predictor.predict(target).total();
  EXPECT_LT(util::relative_error(actual.timing.total.total(), predicted),
            0.06);
}

}  // namespace
}  // namespace fgp::freeride
