// Tests for the ADR-like chunked repository: chunks, datasets, partition
// maps, and on-disk persistence (including corruption handling).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "repository/chunk.h"
#include "repository/dataset.h"
#include "repository/partition.h"
#include "repository/payload.h"
#include "repository/store.h"
#include "util/thread_pool.h"

namespace fgp::repository {
namespace {

std::filesystem::path temp_root() {
  auto p = std::filesystem::temp_directory_path() /
           ("fgp_store_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(p);
  return p;
}

/// Byte equality of two payload views (std::span has no operator==).
bool same_payload(const Chunk& a, const Chunk& b) {
  const auto pa = a.payload();
  const auto pb = b.payload();
  return pa.size() == pb.size() && std::equal(pa.begin(), pa.end(), pb.begin());
}

// ------------------------------------------------------------------ chunk

TEST(Chunk, BuildsFromTypedElements) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const Chunk c = make_chunk(7, xs, 2.0);
  EXPECT_EQ(c.id(), 7u);
  EXPECT_EQ(c.real_bytes(), 24u);
  EXPECT_DOUBLE_EQ(c.virtual_bytes(), 48.0);
  EXPECT_DOUBLE_EQ(c.virtual_scale(), 2.0);
  const auto view = c.as_span<double>();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_DOUBLE_EQ(view[1], 2.0);
}

TEST(Chunk, ChecksumVerifies) {
  const Chunk c = make_chunk<std::uint32_t>(0, {1, 2, 3});
  EXPECT_TRUE(c.verify());
}

TEST(Chunk, SerializationRoundTrip) {
  const Chunk c = make_chunk<double>(3, {4.5, -1.0}, 100.0);
  util::ByteWriter w;
  c.serialize(w);
  util::ByteReader r(w.bytes());
  const Chunk back = Chunk::deserialize(r);
  EXPECT_EQ(back.id(), 3u);
  EXPECT_DOUBLE_EQ(back.virtual_scale(), 100.0);
  EXPECT_TRUE(same_payload(back, c));
  EXPECT_TRUE(back.verify());
}

TEST(Chunk, CorruptedPayloadFailsDeserialize) {
  const Chunk c = make_chunk<double>(1, {1.0, 2.0});
  util::ByteWriter w;
  c.serialize(w);
  auto bytes = w.take();
  bytes.back() ^= 0xFF;  // flip payload bits
  util::ByteReader r(bytes);
  EXPECT_THROW(Chunk::deserialize(r), util::SerializationError);
}

TEST(Chunk, RaggedSpanThrows) {
  const Chunk c = make_chunk<std::uint8_t>(0, {1, 2, 3, 4, 5});
  EXPECT_THROW(c.as_span<double>(), util::Error);
}

TEST(Chunk, NonPositiveScaleThrows) {
  EXPECT_THROW(Chunk(0, std::vector<std::uint8_t>{}, 0.0), util::Error);
  EXPECT_THROW(Chunk(0, std::vector<std::uint8_t>{}, -1.0), util::Error);
}

TEST(Chunk, CopyAndScaleViewsShareThePayloadSlab) {
  const Chunk c = make_chunk<double>(4, {1, 2, 3}, 1.0);
  const Chunk copy = c;
  const Chunk view = c.with_virtual_scale(8.0);
  // Handles, not bytes: every view aliases the same immutable slab.
  EXPECT_EQ(copy.payload().data(), c.payload().data());
  EXPECT_EQ(view.payload().data(), c.payload().data());
  EXPECT_EQ(view.payload_buffer().get(), c.payload_buffer().get());
  EXPECT_EQ(view.checksum(), c.checksum());
  EXPECT_DOUBLE_EQ(view.virtual_bytes(), 8.0 * 24.0);
  // The original's metadata is untouched by the view.
  EXPECT_DOUBLE_EQ(c.virtual_scale(), 1.0);
  EXPECT_TRUE(view.verify());
}

TEST(Chunk, SetVirtualScaleRecomputesVirtualBytes) {
  Chunk c = make_chunk<double>(0, {1, 2, 3}, 1.0);
  c.set_virtual_scale(4.0);
  EXPECT_DOUBLE_EQ(c.virtual_scale(), 4.0);
  EXPECT_DOUBLE_EQ(c.virtual_bytes(), 96.0);
  EXPECT_THROW(c.set_virtual_scale(0.0), util::Error);
}

TEST(Chunk, StreamRoundTripMatchesSerialize) {
  const Chunk c = make_chunk<double>(9, {2.5, -3.0, 7.0}, 5.0);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  c.write_to(ss);
  const std::string wire = ss.str();
  const Chunk back = Chunk::read_from(ss, wire.size());
  EXPECT_EQ(back.id(), 9u);
  EXPECT_DOUBLE_EQ(back.virtual_scale(), 5.0);
  EXPECT_TRUE(same_payload(back, c));
  EXPECT_TRUE(back.verify());

  // The streamed wire format is the same one ByteWriter serialization
  // produces, so stores written either way stay interchangeable.
  util::ByteWriter w;
  c.serialize(w);
  EXPECT_EQ(wire, std::string(w.bytes().begin(), w.bytes().end()));
}

TEST(Chunk, ReadFromRejectsOversizedLengthPrefix) {
  const Chunk c = make_chunk<double>(1, {1.0, 2.0});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  c.write_to(ss);
  // A hostile length prefix larger than the file itself must be rejected
  // before any allocation the size of the claimed payload.
  EXPECT_THROW(Chunk::read_from(ss, 4), util::SerializationError);
}

TEST(Chunk, ReadFromAcceptsZeroLengthPayloadWithTrailingGarbage) {
  const Chunk c(5, std::vector<std::uint8_t>{}, 2.0);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  c.write_to(ss);
  ss << "trailing-garbage-after-the-empty-payload";
  const Chunk back = Chunk::read_from(ss, 64);
  EXPECT_EQ(back.id(), 5u);
  EXPECT_EQ(back.real_bytes(), 0u);
  EXPECT_TRUE(back.verify());
  EXPECT_EQ(back.checksum(), c.checksum());
}

TEST(Chunk, ReadFromRejectsLengthPrefixEqualToLimit) {
  // payload_limit is the file size, which includes the 32-byte wire
  // header, so a prefix claiming payload_limit payload bytes cannot be
  // satisfied: the stream must throw a typed error, never read past the
  // file or under-fill the buffer.
  const Chunk c = make_chunk<double>(2, {1.0, 2.0, 3.0});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  c.write_to(ss);
  const std::uint64_t file_size = ss.str().size();
  // Rewrite the length prefix (bytes 24..31) to exactly file_size.
  ss.seekp(24);
  ss.write(reinterpret_cast<const char*>(&file_size), sizeof(file_size));
  ss.seekg(0);
  EXPECT_THROW(Chunk::read_from(ss, file_size), util::SerializationError);
}

// ---------------------------------------------------------------- dataset

TEST(Dataset, AccumulatesTotals) {
  ChunkedDataset ds(DatasetMeta{"d", "f64", 0});
  ds.add_chunk(make_chunk<double>(0, {1, 2, 3, 4}, 10.0));
  ds.add_chunk(make_chunk<double>(1, {5, 6}, 10.0));
  EXPECT_EQ(ds.chunk_count(), 2u);
  EXPECT_EQ(ds.total_real_bytes(), 48u);
  EXPECT_DOUBLE_EQ(ds.total_virtual_bytes(), 480.0);
  EXPECT_TRUE(ds.verify_all());
}

TEST(Dataset, SetUniformVirtualScaleMatchesRebuild) {
  // Rescaling in place (the probe-pattern fast path in bench/common.cpp)
  // must agree with constructing the chunks at the new scale outright.
  ChunkedDataset ds(DatasetMeta{"d", "f64", 0});
  ds.add_chunk(make_chunk<double>(0, {1, 2, 3, 4}, 1.0));
  ds.add_chunk(make_chunk<double>(1, {5, 6}, 1.0));
  ds.set_uniform_virtual_scale(10.0);
  EXPECT_DOUBLE_EQ(ds.total_virtual_bytes(), 480.0);
  EXPECT_DOUBLE_EQ(ds.chunk(0).virtual_scale(), 10.0);
  EXPECT_DOUBLE_EQ(ds.chunk(1).virtual_bytes(), 160.0);
  EXPECT_TRUE(ds.verify_all());
}

TEST(Dataset, MetaRoundTrips) {
  ChunkedDataset ds(DatasetMeta{"name", "schema", 42});
  EXPECT_EQ(ds.meta().name, "name");
  EXPECT_EQ(ds.meta().seed, 42u);
}

// -------------------------------------------------------------- partition

TEST(Partition, BlockCoversAllChunksOnce) {
  const auto pm = PartitionMap::block(17, 4);
  EXPECT_TRUE(pm.covers_all());
  EXPECT_EQ(pm.parts(), 4);
  EXPECT_EQ(pm.chunk_count(), 17u);
}

TEST(Partition, BlockIsContiguous) {
  const auto pm = PartitionMap::block(10, 2);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(pm.owner_of(i), 0);
  for (std::size_t i = 5; i < 10; ++i) EXPECT_EQ(pm.owner_of(i), 1);
}

TEST(Partition, BlockBalancedWithinOne) {
  const auto pm = PartitionMap::block(17, 4);
  EXPECT_LE(pm.imbalance(), 1u);
}

TEST(Partition, RoundRobinInterleaves) {
  const auto pm = PartitionMap::round_robin(8, 3);
  EXPECT_EQ(pm.owner_of(0), 0);
  EXPECT_EQ(pm.owner_of(1), 1);
  EXPECT_EQ(pm.owner_of(2), 2);
  EXPECT_EQ(pm.owner_of(3), 0);
  EXPECT_TRUE(pm.covers_all());
}

TEST(Partition, MorePartsThanChunksLeavesSomeEmpty) {
  const auto pm = PartitionMap::block(3, 8);
  EXPECT_TRUE(pm.covers_all());
  int empty = 0;
  for (int p = 0; p < pm.parts(); ++p) empty += pm.chunks_of(p).empty();
  EXPECT_EQ(empty, 5);
}

TEST(Partition, ZeroPartsThrow) {
  EXPECT_THROW(PartitionMap::block(4, 0), util::Error);
  EXPECT_THROW(PartitionMap::round_robin(4, -1), util::Error);
}

TEST(Partition, OutOfRangeLookupsThrow) {
  const auto pm = PartitionMap::block(4, 2);
  EXPECT_THROW(pm.owner_of(4), util::Error);
  EXPECT_THROW(pm.chunks_of(2), util::Error);
}

class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(PartitionPropertyTest, BothPoliciesCoverAllAndBalance) {
  const auto [chunks, parts] = GetParam();
  for (const auto& pm : {PartitionMap::block(chunks, parts),
                         PartitionMap::round_robin(chunks, parts)}) {
    EXPECT_TRUE(pm.covers_all());
    EXPECT_LE(pm.imbalance(), 1u);
    std::size_t total = 0;
    for (int p = 0; p < pm.parts(); ++p) total += pm.chunks_of(p).size();
    EXPECT_EQ(total, chunks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 7, 16, 64, 100),
                       ::testing::Values(1, 2, 3, 8, 16)));

// ------------------------------------------------------------------ store

TEST(Store, SaveLoadRoundTrip) {
  DatasetStore store(temp_root());
  ChunkedDataset ds(DatasetMeta{"roundtrip", "f64", 7});
  ds.add_chunk(make_chunk<double>(0, {1, 2, 3}, 5.0));
  ds.add_chunk(make_chunk<double>(1, {4, 5}, 5.0));
  store.save(ds);
  EXPECT_TRUE(store.exists("roundtrip"));

  const ChunkedDataset back = store.load("roundtrip");
  EXPECT_EQ(back.meta().name, "roundtrip");
  EXPECT_EQ(back.meta().seed, 7u);
  EXPECT_EQ(back.chunk_count(), 2u);
  EXPECT_DOUBLE_EQ(back.total_virtual_bytes(), ds.total_virtual_bytes());
  EXPECT_TRUE(same_payload(back.chunk(1), ds.chunk(1)));
  store.remove("roundtrip");
  std::filesystem::remove_all(store.root());
}

TEST(Store, ParallelSaveLoadMatchesSerial) {
  // A pooled save followed by serial and pooled loads must reproduce the
  // dataset exactly: each chunk file's name is fixed by index and each
  // loaded chunk lands at its manifest index, so pool size never shows.
  util::ThreadPool pool(4);
  DatasetStore store(temp_root());
  ChunkedDataset ds(DatasetMeta{"par", "f64", 11});
  for (std::size_t i = 0; i < 17; ++i) {
    std::vector<double> xs(32);
    for (std::size_t j = 0; j < xs.size(); ++j)
      xs[j] = static_cast<double>(i) * 100.0 + static_cast<double>(j);
    ds.add_chunk(make_chunk(i, xs, 3.0));
  }
  store.save(ds, &pool);

  const ChunkedDataset serial_load = store.load("par");
  const ChunkedDataset pooled_load = store.load("par", &pool);
  ASSERT_EQ(serial_load.chunk_count(), ds.chunk_count());
  ASSERT_EQ(pooled_load.chunk_count(), ds.chunk_count());
  EXPECT_DOUBLE_EQ(pooled_load.total_virtual_bytes(),
                   ds.total_virtual_bytes());
  for (std::size_t i = 0; i < ds.chunk_count(); ++i) {
    EXPECT_TRUE(same_payload(serial_load.chunk(i), ds.chunk(i)));
    EXPECT_EQ(pooled_load.chunk(i).id(), ds.chunk(i).id());
    EXPECT_TRUE(same_payload(pooled_load.chunk(i), ds.chunk(i)));
    EXPECT_DOUBLE_EQ(pooled_load.chunk(i).virtual_scale(), 3.0);
  }
  std::filesystem::remove_all(store.root());
}

TEST(Store, MissingDatasetThrows) {
  DatasetStore store(temp_root());
  EXPECT_FALSE(store.exists("nope"));
  EXPECT_THROW(store.load("nope"), util::SerializationError);
  std::filesystem::remove_all(store.root());
}

TEST(Store, CorruptedChunkFileDetected) {
  DatasetStore store(temp_root());
  ChunkedDataset ds(DatasetMeta{"corrupt", "f64", 0});
  ds.add_chunk(make_chunk<double>(0, {9, 8, 7}));
  store.save(ds);

  // Flip a byte in the stored payload.
  const auto path = store.root() / "corrupt" / "chunk_0.bin";
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-1, std::ios::end);
  char last;
  f.seekg(-1, std::ios::end);
  f.get(last);
  f.seekp(-1, std::ios::end);
  f.put(static_cast<char>(last ^ 0x1));
  f.close();

  EXPECT_THROW(store.load("corrupt"), util::SerializationError);
  std::filesystem::remove_all(store.root());
}

TEST(Store, RejectsPathTraversalNames) {
  DatasetStore store(temp_root());
  EXPECT_THROW(store.load("../etc"), util::Error);
  std::filesystem::remove_all(store.root());
}

TEST(Store, MappedLoadMatchesStreamedLoad) {
  util::ThreadPool pool(3);
  DatasetStore store(temp_root());
  ChunkedDataset ds(DatasetMeta{"mapped", "f64", 13});
  ds.add_chunk(make_chunk<double>(0, {1, 2, 3}, 2.0));
  ds.add_chunk(make_chunk<double>(1, {}, 2.0));  // zero-length payload
  ds.add_chunk(make_chunk<double>(2, {4, 5, 6, 7}, 2.0));
  store.save(ds);

  const ChunkedDataset streamed = store.load("mapped");
  const ChunkedDataset mapped = store.load_mapped("mapped");
  const ChunkedDataset pooled_mapped = store.load_mapped("mapped", &pool);
  ASSERT_EQ(mapped.chunk_count(), ds.chunk_count());
  ASSERT_EQ(pooled_mapped.chunk_count(), ds.chunk_count());
  EXPECT_DOUBLE_EQ(mapped.total_virtual_bytes(), ds.total_virtual_bytes());
  for (std::size_t i = 0; i < ds.chunk_count(); ++i) {
    EXPECT_EQ(mapped.chunk(i).id(), streamed.chunk(i).id());
    EXPECT_EQ(mapped.chunk(i).checksum(), streamed.chunk(i).checksum());
    EXPECT_TRUE(same_payload(mapped.chunk(i), streamed.chunk(i)));
    EXPECT_TRUE(same_payload(pooled_mapped.chunk(i), streamed.chunk(i)));
    EXPECT_TRUE(mapped.chunk(i).verify());
  }
  if (PayloadBuffer::mmap_supported()) {
    // Non-empty payloads alias the mapped file region, not a heap copy.
    EXPECT_TRUE(mapped.chunk(0).payload_buffer()->mapped());
  }
  std::filesystem::remove_all(store.root());
}

TEST(Store, MappedLoadDetectsCorruption) {
  DatasetStore store(temp_root());
  ChunkedDataset ds(DatasetMeta{"mcorrupt", "f64", 0});
  ds.add_chunk(make_chunk<double>(0, {9, 8, 7}));
  store.save(ds);
  const auto path = store.root() / "mcorrupt" / "chunk_0.bin";
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  char last;
  f.seekg(-1, std::ios::end);
  f.get(last);
  f.seekp(-1, std::ios::end);
  f.put(static_cast<char>(last ^ 0x1));
  f.close();
  EXPECT_THROW(store.load_mapped("mcorrupt"), util::SerializationError);
  std::filesystem::remove_all(store.root());
}

TEST(Store, ExistsFalseForManifestlessDirectoryAndMissingName) {
  DatasetStore store(temp_root());
  EXPECT_FALSE(store.exists("never-saved"));
  // A bare directory without a manifest is not a dataset.
  std::filesystem::create_directories(store.root() / "bare");
  EXPECT_FALSE(store.exists("bare"));
  std::filesystem::remove_all(store.root());
}

TEST(Store, MissingChunkFileThrowsWhileManifestExists) {
  DatasetStore store(temp_root());
  ChunkedDataset ds(DatasetMeta{"holey", "f64", 0});
  ds.add_chunk(make_chunk<double>(0, {1}));
  ds.add_chunk(make_chunk<double>(1, {2}));
  store.save(ds);
  std::filesystem::remove(store.root() / "holey" / "chunk_1.bin");
  EXPECT_TRUE(store.exists("holey"));  // manifest still present
  EXPECT_THROW(store.load("holey"), util::SerializationError);
  EXPECT_THROW(store.load_mapped("holey"), util::SerializationError);
  std::filesystem::remove_all(store.root());
}

TEST(Store, RemoveOfNeverSavedNameIsNoOp) {
  DatasetStore store(temp_root());
  store.remove("ghost");  // must not throw
  EXPECT_FALSE(store.exists("ghost"));
  std::filesystem::remove_all(store.root());
}

TEST(Store, OverwriteReplacesOldChunks) {
  DatasetStore store(temp_root());
  ChunkedDataset big(DatasetMeta{"ow", "f64", 0});
  big.add_chunk(make_chunk<double>(0, {1}));
  big.add_chunk(make_chunk<double>(1, {2}));
  store.save(big);
  ChunkedDataset small(DatasetMeta{"ow", "f64", 0});
  small.add_chunk(make_chunk<double>(0, {3}));
  store.save(small);
  const auto back = store.load("ow");
  EXPECT_EQ(back.chunk_count(), 1u);
  EXPECT_DOUBLE_EQ(back.chunk(0).as_span<double>()[0], 3.0);
  std::filesystem::remove_all(store.root());
}

}  // namespace
}  // namespace fgp::repository
