// Tests for the FREERIDE-G middleware runtime: configuration rules, phase
// accounting, caching, determinism, scaling behaviour, and failure
// injection — all with the controllable SumKernel.
#include <gtest/gtest.h>

#include "freeride/cache.h"
#include "freeride/config.h"
#include "freeride/runtime.h"
#include "helpers.h"

namespace fgp::freeride {
namespace {

using fgp::testing::SumKernel;
using fgp::testing::SumKernelParams;
using fgp::testing::expected_sum;
using fgp::testing::ideal_setup;
using fgp::testing::make_sum_dataset;
using fgp::testing::pentium_setup;

// ----------------------------------------------------------------- config

TEST(JobConfig, ValidConfigPasses) {
  JobConfig cfg;
  cfg.data_nodes = 2;
  cfg.compute_nodes = 4;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(JobConfig, RejectsComputeBelowData) {
  // The paper's M >= N rule (§2.1).
  JobConfig cfg;
  cfg.data_nodes = 8;
  cfg.compute_nodes = 4;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
}

TEST(JobConfig, RejectsNonPositiveCounts) {
  JobConfig cfg;
  cfg.data_nodes = 0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg.data_nodes = 1;
  cfg.compute_nodes = -2;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg.compute_nodes = 1;
  cfg.max_passes = 0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
}

// ------------------------------------------------------------------ cache

/// A one-byte chunk whose virtual size is exactly `virtual_bytes`.
repository::Chunk cache_chunk(repository::ChunkId id, double virtual_bytes) {
  return repository::Chunk(id, std::vector<std::uint8_t>{0xab}, virtual_bytes);
}

TEST(NodeCache, TracksChunksAndBytes) {
  NodeCache cache;
  cache.insert(cache_chunk(1, 100.0));
  cache.insert(cache_chunk(2, 50.0));
  cache.insert(cache_chunk(1, 100.0));  // duplicate ignored
  EXPECT_EQ(cache.chunk_count(), 2u);
  EXPECT_DOUBLE_EQ(cache.virtual_bytes(), 150.0);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(3));
  cache.clear();
  EXPECT_EQ(cache.chunk_count(), 0u);
}

TEST(NodeCache, HoldsSharedPayloadViewsNotCopies) {
  // Caching a chunk stores a handle onto the dataset's immutable slab
  // (DESIGN.md §13): the cached view aliases the source payload bytes.
  const auto src = repository::make_chunk<double>(7, {1, 2, 3}, 2.0);
  NodeCache cache;
  cache.insert(src);
  ASSERT_EQ(cache.chunk_count(), 1u);
  EXPECT_EQ(cache.chunks().front().payload().data(), src.payload().data());
  EXPECT_EQ(cache.chunks().front().payload_buffer().get(),
            src.payload_buffer().get());
}

TEST(CacheSet, PerNodeIsolation) {
  CacheSet set(3);
  set.node(0).insert(cache_chunk(1, 10.0));
  EXPECT_FALSE(set.node(1).contains(1));
  EXPECT_THROW(set.node(3), util::Error);
  EXPECT_FALSE(set.warm());
  set.mark_warm();
  EXPECT_TRUE(set.warm());
}

// ---------------------------------------------------------------- runtime

TEST(Runtime, ComputesTheRightAnswer) {
  const auto ds = make_sum_dataset(16, 100);
  auto setup = ideal_setup(&ds, 2, 4);
  SumKernel kernel;
  Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const fgp::testing::SumObject&>(*result.result);
  EXPECT_DOUBLE_EQ(obj.sum, expected_sum(16, 100));
  EXPECT_EQ(obj.count, 1600u);
  EXPECT_EQ(result.passes, 1);
}

TEST(Runtime, ResultInvariantAcrossConfigurations) {
  const auto ds = make_sum_dataset(24, 50);
  for (const auto& [n, c] : std::vector<std::pair<int, int>>{
           {1, 1}, {1, 5}, {2, 2}, {3, 8}, {8, 16}}) {
    auto setup = ideal_setup(&ds, n, c);
    SumKernel kernel;
    Runtime runtime;
    const auto result = runtime.run(setup, kernel);
    const auto& obj =
        dynamic_cast<const fgp::testing::SumObject&>(*result.result);
    EXPECT_DOUBLE_EQ(obj.sum, expected_sum(24, 50)) << n << "-" << c;
  }
}

TEST(Runtime, RejectsInvalidSetups) {
  const auto ds = make_sum_dataset(4, 10);
  Runtime runtime;
  SumKernel kernel;
  {
    auto setup = ideal_setup(&ds, 4, 2);  // M < N
    EXPECT_THROW(runtime.run(setup, kernel), util::ConfigError);
  }
  {
    auto setup = ideal_setup(&ds, 1, 1);
    setup.dataset = nullptr;
    EXPECT_THROW(runtime.run(setup, kernel), util::Error);
  }
  {
    auto setup = ideal_setup(&ds, 1, 1);
    setup.config.compute_nodes = setup.compute_cluster.max_nodes + 1;
    setup.config.data_nodes = 1;
    EXPECT_THROW(runtime.run(setup, kernel), util::Error);
  }
}

TEST(Runtime, TimingIsDeterministic) {
  const auto ds = make_sum_dataset(20, 64);
  auto run_once = [&ds] {
    auto setup = pentium_setup(&ds, 2, 4);
    SumKernel kernel;
    Runtime runtime;
    return runtime.run(setup, kernel).timing.total.total();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Runtime, BreakdownComponentsAllPositiveOnRealCluster) {
  const auto ds = make_sum_dataset(16, 64);
  auto setup = pentium_setup(&ds, 2, 4);
  SumKernelParams p;
  p.merge_flops = 100.0;
  p.global_flops = 100.0;
  SumKernel kernel(p);
  Runtime runtime;
  const auto t = runtime.run(setup, kernel).timing.total;
  EXPECT_GT(t.disk, 0.0);
  EXPECT_GT(t.network, 0.0);
  EXPECT_GT(t.compute_local, 0.0);
  EXPECT_GT(t.ro_comm, 0.0);
  EXPECT_GT(t.global_red, 0.0);
  EXPECT_DOUBLE_EQ(t.total(), t.disk + t.network + t.compute());
}

TEST(Runtime, SingleComputeNodeHasNoObjectCommunication) {
  const auto ds = make_sum_dataset(8, 32);
  auto setup = pentium_setup(&ds, 1, 1);
  SumKernel kernel;
  Runtime runtime;
  const auto t = runtime.run(setup, kernel).timing.total;
  EXPECT_DOUBLE_EQ(t.ro_comm, 0.0);
}

TEST(Runtime, MorePassesAccumulateTime) {
  const auto ds = make_sum_dataset(8, 32);
  SumKernelParams one_pass, three_pass;
  three_pass.passes = 3;
  Runtime runtime;
  auto setup = pentium_setup(&ds, 1, 2);
  SumKernel k1(one_pass), k3(three_pass);
  const auto r1 = runtime.run(setup, k1);
  const auto r3 = runtime.run(setup, k3);
  EXPECT_EQ(r1.passes, 1);
  EXPECT_EQ(r3.passes, 3);
  EXPECT_NEAR(r3.timing.total.total(), 3.0 * r1.timing.total.total(), 1e-9);
  EXPECT_EQ(r3.timing.passes.size(), 3u);
}

TEST(Runtime, MaxPassesCapsIterativeKernels) {
  const auto ds = make_sum_dataset(4, 16);
  SumKernelParams p;
  p.passes = 1000;
  SumKernel kernel(p);
  auto setup = ideal_setup(&ds, 1, 1);
  setup.config.max_passes = 5;
  Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  EXPECT_EQ(result.passes, 5);
}

TEST(Runtime, ComputeTimeShrinksWithMoreNodes) {
  const auto ds = make_sum_dataset(32, 256);
  Runtime runtime;
  double prev = 1e300;
  for (int c : {1, 2, 4, 8}) {
    auto setup = pentium_setup(&ds, 1, c);
    SumKernel kernel;
    const auto t = runtime.run(setup, kernel).timing.total;
    EXPECT_LT(t.compute_local, prev);
    prev = t.compute_local;
  }
}

TEST(Runtime, DiskTimeShrinksWithMoreDataNodes) {
  const auto ds = make_sum_dataset(32, 256);
  Runtime runtime;
  double prev = 1e300;
  for (int n : {1, 2, 4}) {
    auto setup = pentium_setup(&ds, n, 8);
    SumKernel kernel;
    const auto t = runtime.run(setup, kernel).timing.total;
    EXPECT_LT(t.disk, prev);
    prev = t.disk;
  }
}

TEST(Runtime, BackplaneMakesRetrievalSubLinear) {
  // Large virtual scale so byte transfer (not per-chunk seeks) dominates,
  // and an aggressive backplane so the shared-I/O cap clearly binds.
  const auto ds = make_sum_dataset(64, 256, 20000.0);
  Runtime runtime;
  auto time_at = [&](int n) {
    auto setup = pentium_setup(&ds, n, 16);
    setup.data_cluster.storage_backplane_Bps = 120e6;
    SumKernel kernel;
    return runtime.run(setup, kernel).timing.total.disk;
  };
  const double t1 = time_at(1);
  const double t8 = time_at(8);
  // Faster than 1 node, but clearly slower than the ideal t1/8.
  EXPECT_LT(t8, t1);
  EXPECT_GT(t8, t1 / 8.0 * 1.1);
}

TEST(Runtime, NetworkTimeScalesWithBandwidth) {
  // Large virtual scale so bytes (not per-message latency) dominate.
  const auto ds = make_sum_dataset(16, 128, 20000.0);
  Runtime runtime;
  auto setup_fast = pentium_setup(&ds, 1, 2, 100.0);
  auto setup_slow = pentium_setup(&ds, 1, 2, 25.0);
  SumKernel k1, k2;
  const double fast = runtime.run(setup_fast, k1).timing.total.network;
  const double slow = runtime.run(setup_slow, k2).timing.total.network;
  EXPECT_NEAR(slow / fast, 4.0, 0.2);
}

TEST(Runtime, VirtualScaleMultipliesTimeNotResults) {
  Runtime runtime;
  const auto small = make_sum_dataset(8, 64, 1.0);
  const auto scaled = make_sum_dataset(8, 64, 10000.0);
  auto s1 = pentium_setup(&small, 1, 2);
  auto s2 = pentium_setup(&scaled, 1, 2);
  SumKernel k1, k2;
  const auto r1 = runtime.run(s1, k1);
  const auto r2 = runtime.run(s2, k2);
  const auto& o1 = dynamic_cast<const fgp::testing::SumObject&>(*r1.result);
  const auto& o2 = dynamic_cast<const fgp::testing::SumObject&>(*r2.result);
  EXPECT_DOUBLE_EQ(o1.sum, o2.sum);  // same real data
  // Disk time has a fixed per-chunk seek component, so the ratio is large
  // but well below the raw scale; compute work scales with the full factor.
  EXPECT_GT(r2.timing.total.disk, 20.0 * r1.timing.total.disk);
  EXPECT_GT(r2.timing.total.compute_local,
            50.0 * r1.timing.total.compute_local);
}

TEST(Runtime, RecordsMaxReductionObjectBytes) {
  const auto ds = make_sum_dataset(8, 32);
  SumKernelParams p;
  p.constant_ballast = 4096;
  auto setup = pentium_setup(&ds, 1, 4);
  SumKernel kernel(p);
  Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  EXPECT_GT(result.timing.max_object_bytes, 4096.0);
}

TEST(Runtime, ObjectScaleChargesLinearKernels) {
  // The same ballast is charged at the dataset's virtual scale when the
  // kernel declares its object linear with data.
  const auto ds = make_sum_dataset(8, 32, 50.0);
  SumKernelParams constant, linear;
  constant.ballast_per_element = 1.0;
  linear.ballast_per_element = 1.0;
  linear.scales_with_data = true;
  Runtime runtime;
  auto s1 = pentium_setup(&ds, 1, 2);
  SumKernel kc(constant), kl(linear);
  const auto rc = runtime.run(s1, kc);
  const auto rl = runtime.run(s1, kl);
  EXPECT_NEAR(rl.timing.max_object_bytes / rc.timing.max_object_bytes, 50.0,
              1.0);
  EXPECT_GT(rl.timing.total.ro_comm, rc.timing.total.ro_comm);
}

// ---------------------------------------------------------------- caching

TEST(Runtime, CachingEliminatesNetworkAfterFirstPass) {
  const auto ds = make_sum_dataset(12, 64);
  SumKernelParams p;
  p.passes = 3;
  auto setup = pentium_setup(&ds, 2, 4);
  setup.config.enable_caching = true;
  SumKernel kernel(p);
  Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  ASSERT_EQ(result.timing.passes.size(), 3u);
  EXPECT_FALSE(result.timing.passes[0].from_cache);
  EXPECT_GT(result.timing.passes[0].timing.network, 0.0);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_TRUE(result.timing.passes[i].from_cache);
    EXPECT_DOUBLE_EQ(result.timing.passes[i].timing.network, 0.0);
    EXPECT_GT(result.timing.passes[i].timing.disk, 0.0);  // local reads
  }
}

TEST(Runtime, CachingBeatsRefetchingForMultiPassJobs) {
  const auto ds = make_sum_dataset(12, 64);
  SumKernelParams p;
  p.passes = 4;
  Runtime runtime;
  auto cached = pentium_setup(&ds, 2, 4);
  cached.config.enable_caching = true;
  auto uncached = pentium_setup(&ds, 2, 4);
  SumKernel k1(p), k2(p);
  const double with_cache = runtime.run(cached, k1).timing.total.total();
  const double without = runtime.run(uncached, k2).timing.total.total();
  EXPECT_LT(with_cache, without);
}

TEST(Runtime, CacheWriteChargeIsOptional) {
  const auto ds = make_sum_dataset(12, 64);
  SumKernelParams p;
  p.passes = 2;
  Runtime runtime;
  auto charged = pentium_setup(&ds, 1, 2);
  charged.config.enable_caching = true;
  charged.config.charge_cache_write = true;
  auto free_write = pentium_setup(&ds, 1, 2);
  free_write.config.enable_caching = true;
  free_write.config.charge_cache_write = false;
  SumKernel k1(p), k2(p);
  const double t_charged = runtime.run(charged, k1).timing.total.disk;
  const double t_free = runtime.run(free_write, k2).timing.total.disk;
  EXPECT_GT(t_charged, t_free);
}

// ------------------------------------------------------- failure injection

TEST(Runtime, CorruptedChunkDetectedWhenVerifying) {
  // Build a dataset whose chunk payload is corrupted after construction.
  repository::DatasetMeta meta{"bad", "f64", 0};
  repository::ChunkedDataset ds(meta);
  std::vector<double> values(32, 1.0);
  util::ByteWriter w;
  repository::make_chunk<double>(0, values).serialize(w);
  auto bytes = w.take();
  // Corrupt the payload region but keep the stored checksum: deserialize
  // catches it. To inject the bad chunk into a dataset we bypass
  // deserialize and flip bits in a reconstructed chunk's buffer is not
  // possible through the public API — so instead verify detection at the
  // deserialization boundary, which is where the data server receives
  // chunks from disk.
  bytes.back() ^= 0x01;
  util::ByteReader r(bytes);
  EXPECT_THROW(repository::Chunk::deserialize(r), util::SerializationError);
}

TEST(Runtime, EmptyComputeNodesAreHarmless) {
  // More compute nodes than chunks: some nodes idle, result unchanged.
  const auto ds = make_sum_dataset(3, 16);
  auto setup = ideal_setup(&ds, 1, 8);
  SumKernel kernel;
  Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const fgp::testing::SumObject&>(*result.result);
  EXPECT_DOUBLE_EQ(obj.sum, expected_sum(3, 16));
}

// ------------------------------------------------ parameterized properties

class RuntimeConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RuntimeConfigSweep, AnswerAndPhaseAccountingHold) {
  const auto [n, c] = GetParam();
  if (c < n) GTEST_SKIP() << "violates M >= N";
  const auto ds = make_sum_dataset(30, 40);
  auto setup = pentium_setup(&ds, n, c);
  SumKernel kernel;
  Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const fgp::testing::SumObject&>(*result.result);
  EXPECT_DOUBLE_EQ(obj.sum, expected_sum(30, 40));
  const auto& t = result.timing.total;
  EXPECT_DOUBLE_EQ(t.compute(), t.compute_local + t.ro_comm + t.global_red);
  EXPECT_GE(t.disk, 0.0);
  EXPECT_GE(t.network, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RuntimeConfigSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 2, 4, 8, 16)));

}  // namespace
}  // namespace fgp::freeride
