// Tests for the deterministic discrete-event simulation core: canonical
// event ordering, monotone virtual clock, engine counters, and the
// SharedPipe fair-share WAN contention model (DESIGN.md §18).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_engine.h"
#include "sim/network.h"
#include "util/check.h"

namespace fgp::sim {
namespace {

// ------------------------------------------------------------ EventEngine

TEST(EventOrder, TotalOrderKeyIsTimeSeqNodeKind) {
  Event a{1.0, 0, 0, EventKind::Barrier, 0};
  Event b{2.0, 0, 0, EventKind::Barrier, 0};
  EXPECT_TRUE(event_order_less(a, b));
  EXPECT_FALSE(event_order_less(b, a));

  // Same time: sequence breaks the tie.
  a = {1.0, 3, 9, EventKind::WanRelease, 0};
  b = {1.0, 4, 0, EventKind::Barrier, 0};
  EXPECT_TRUE(event_order_less(a, b));

  // seq is unique per engine, so distinct events never compare equal.
  a = {1.0, 5, 0, EventKind::Barrier, 0};
  b = {1.0, 5, 1, EventKind::Barrier, 0};
  EXPECT_TRUE(event_order_less(a, b) || event_order_less(b, a));
}

TEST(EventEngine, PopsInCanonicalOrderRegardlessOfInsertion) {
  EventEngine engine;
  // Deliberately scrambled insertion times, with duplicates.
  const double times[] = {5.0, 1.0, 3.0, 1.0, 4.0, 3.0, 2.0, 1.0};
  std::vector<Event> inserted;
  for (int i = 0; i < 8; ++i) {
    engine.schedule(times[i], i, EventKind::ComputeBlockDone,
                    static_cast<std::uint64_t>(i));
    inserted.push_back(
        {times[i], static_cast<std::uint64_t>(i), i,
         EventKind::ComputeBlockDone, static_cast<std::uint64_t>(i)});
  }
  std::sort(inserted.begin(), inserted.end(), EventBefore{});

  std::vector<Event> popped;
  while (!engine.empty()) popped.push_back(engine.pop());

  ASSERT_EQ(popped.size(), inserted.size());
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].seq, inserted[i].seq) << "position " << i;
    EXPECT_EQ(popped[i].payload, inserted[i].payload);
    if (i > 0)
      EXPECT_TRUE(event_order_less(popped[i - 1], popped[i]))
          << "dispatch not strictly increasing at " << i;
  }
}

TEST(EventEngine, SameTimeEventsDispatchInScheduleOrder) {
  EventEngine engine;
  for (int i = 0; i < 5; ++i)
    engine.schedule(7.0, 4 - i, EventKind::Barrier,
                    static_cast<std::uint64_t>(i));
  for (std::uint64_t i = 0; i < 5; ++i) {
    const Event e = engine.pop();
    EXPECT_EQ(e.payload, i);  // seq order, not node order
  }
}

TEST(EventEngine, ClockAdvancesToDispatchedEventTime) {
  EventEngine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  engine.schedule(2.5, 0, EventKind::Barrier);
  engine.schedule(1.5, 0, EventKind::Barrier);
  EXPECT_DOUBLE_EQ(engine.pop().time, 1.5);
  EXPECT_DOUBLE_EQ(engine.now(), 1.5);
  EXPECT_DOUBLE_EQ(engine.pop().time, 2.5);
  EXPECT_DOUBLE_EQ(engine.now(), 2.5);
}

TEST(EventEngine, RejectsTimeTravelAndNonFiniteTimes) {
  EventEngine engine;
  engine.schedule(3.0, 0, EventKind::Barrier);
  (void)engine.pop();  // now = 3.0
  EXPECT_THROW(engine.schedule(2.0, 0, EventKind::Barrier), util::Error);
  EXPECT_THROW(
      engine.schedule(std::numeric_limits<double>::quiet_NaN(), 0,
                      EventKind::Barrier),
      util::Error);
  EXPECT_THROW(
      engine.schedule(std::numeric_limits<double>::infinity(), 0,
                      EventKind::Barrier),
      util::Error);
  EXPECT_THROW(engine.schedule_after(-1.0, 0, EventKind::Barrier),
               util::Error);
  EXPECT_NO_THROW(engine.schedule(3.0, 0, EventKind::Barrier));  // == now ok
}

TEST(EventEngine, PeekAndPopOnEmptyThrow) {
  EventEngine engine;
  EXPECT_THROW(engine.peek(), util::Error);
  EXPECT_THROW(engine.pop(), util::Error);
}

TEST(EventEngine, ResetRequiresDrainedQueue) {
  EventEngine engine;
  engine.schedule(1.0, 0, EventKind::Barrier);
  EXPECT_THROW(engine.reset(), util::Error);
  (void)engine.pop();
  EXPECT_NO_THROW(engine.reset(0.5));
  EXPECT_DOUBLE_EQ(engine.now(), 0.5);
  // Sequence numbers keep counting across reset.
  const std::uint64_t seq = engine.schedule(1.0, 0, EventKind::Barrier);
  EXPECT_GT(seq, 0u);
  (void)engine.pop();
}

TEST(EventEngine, CountersTrackScheduleDispatchAndHeapPeak) {
  EventEngine engine;
  for (int i = 0; i < 10; ++i)
    engine.schedule(static_cast<double>(i), i, EventKind::DiskSegmentDone);
  EXPECT_EQ(engine.events_scheduled(), 10u);
  EXPECT_EQ(engine.heap_peak(), 10u);
  while (!engine.empty()) (void)engine.pop();
  EXPECT_EQ(engine.events_dispatched(), 10u);

  obs::Registry reg;
  engine.flush_counters(&reg);
  EXPECT_DOUBLE_EQ(reg.host_value("engine.events_scheduled"), 10.0);
  EXPECT_DOUBLE_EQ(reg.host_value("engine.events_dispatched"), 10.0);
  EXPECT_DOUBLE_EQ(reg.host_value("engine.heap_peak"), 10.0);
  // Host domain only: the deterministic export must not change when an
  // engine is attached (the engine-swap byte-identity contract).
  EXPECT_EQ(reg.to_json(false).find("engine."), std::string::npos);
  engine.flush_counters(nullptr);  // null-safe
}

// ------------------------------------------------------------- SharedPipe

WanSpec test_wan() {
  WanSpec w;
  w.per_link_Bps = 1e6;
  w.aggregate_cap_Bps = 1.5e6;
  w.latency_s = 0.25;
  w.protocol_overhead = 0.0;
  return w;
}

/// Drains the engine through the pipe, returning completions in dispatch
/// order.
std::vector<SharedPipe::Completion> drain(EventEngine& engine,
                                          SharedPipe& pipe) {
  std::vector<SharedPipe::Completion> done;
  while (!engine.empty()) {
    const Event ev = engine.pop();
    if (auto c = pipe.on_event(engine, ev)) done.push_back(*c);
  }
  return done;
}

TEST(SharedPipe, SingleTransferMatchesClosedForm) {
  EventEngine engine;
  const WanSpec w = test_wan();
  SharedPipe pipe(w, "wan");
  pipe.begin_transfer(engine, 0.0, 0, 4e6, 3, 2e6);
  const auto done = drain(engine, pipe);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].end_time - done[0].start_time,
                   w.transfer_time(4e6, 3, 1, 2e6));
  EXPECT_EQ(pipe.active_transfers(), 0);
  EXPECT_EQ(pipe.total_transfers(), 1u);
}

TEST(SharedPipe, SimultaneousEqualSendersMatchClosedForm) {
  // Every sender acquires at t=0 with the same byte count: no churn
  // happens before the first completion, so the dynamic model must
  // reproduce the phase-structured closed form at senders=k exactly.
  for (const int k : {2, 3, 5}) {
    EventEngine engine;
    const WanSpec w = test_wan();
    SharedPipe pipe(w, "wan");
    for (int i = 0; i < k; ++i)
      pipe.begin_transfer(engine, 0.0, i, 2e6, 2, 2e6);
    const auto done = drain(engine, pipe);
    ASSERT_EQ(done.size(), static_cast<std::size_t>(k));
    const double expected = w.transfer_time(2e6, 2, k, 2e6);
    for (const auto& c : done)
      EXPECT_DOUBLE_EQ(c.end_time, expected) << "senders=" << k;
  }
}

TEST(SharedPipe, ZeroByteTransferTakesOnlyLatency) {
  EventEngine engine;
  const WanSpec w = test_wan();
  SharedPipe pipe(w, "wan");
  pipe.begin_transfer(engine, 1.0, 0, 0.0, 4, 2e6);
  const auto done = drain(engine, pipe);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].end_time, 1.0 + 4 * w.latency_s);
}

TEST(SharedPipe, LateJoinerSlowsTheFirstTransfer) {
  const WanSpec w = test_wan();
  // Solo baseline.
  const double solo = w.transfer_time(6e6, 1, 1, 2e6);
  // B joins while A is mid-flight: A must finish later than solo but
  // earlier than the both-from-start fair split.
  EventEngine engine;
  SharedPipe pipe(w, "wan");
  pipe.begin_transfer(engine, 0.0, 0, 6e6, 1, 2e6);
  pipe.begin_transfer(engine, 2.0, 1, 6e6, 1, 2e6);
  const auto done = drain(engine, pipe);
  ASSERT_EQ(done.size(), 2u);
  const double a_end = done[0].node == 0 ? done[0].end_time : done[1].end_time;
  EXPECT_GT(a_end, solo);
  EXPECT_LT(a_end, w.transfer_time(6e6, 1, 2, 2e6));
  EXPECT_GT(pipe.fair_share_recomputes(), 0u);
}

TEST(SharedPipe, ContendedScheduleIsDeterministic) {
  // Same staggered scenario twice: completions must agree bitwise.
  const auto run = [] {
    EventEngine engine;
    SharedPipe pipe(test_wan(), "wan");
    for (int i = 0; i < 16; ++i)
      pipe.begin_transfer(engine, 0.1 * static_cast<double>(i % 5), i,
                          1e6 + 1e5 * i, 1 + i % 3, 2e6);
    return drain(engine, pipe);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 16u);
  ASSERT_EQ(b.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].end_time, b[i].end_time);  // bitwise, not approximate
  }
}

TEST(SharedPipe, EveryTransferCompletesExactlyOnceUnderChurn) {
  // Heavy churn: every acquire/release re-epochs in-flight completions;
  // stale events must be dropped, and each transfer must still complete
  // exactly once.
  EventEngine engine;
  SharedPipe pipe(test_wan(), "wan");
  constexpr int kTransfers = 64;
  for (int i = 0; i < kTransfers; ++i)
    pipe.begin_transfer(engine, 0.05 * static_cast<double>(i), i,
                        5e5 + 1e4 * static_cast<double>(i), 1, 2e6);
  const auto done = drain(engine, pipe);
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kTransfers));
  std::vector<bool> seen(kTransfers, false);
  for (const auto& c : done) {
    ASSERT_LT(c.transfer, static_cast<std::uint64_t>(kTransfers));
    EXPECT_FALSE(seen[static_cast<std::size_t>(c.transfer)])
        << "transfer " << c.transfer << " completed twice";
    seen[static_cast<std::size_t>(c.transfer)] = true;
    EXPECT_GT(c.end_time, c.start_time);
  }
  EXPECT_GT(pipe.fair_share_recomputes(), static_cast<std::uint64_t>(1));
  EXPECT_EQ(pipe.active_transfers(), 0);
}

TEST(SharedPipe, TwoPipesShareOneEngineWithoutCrosstalk) {
  EventEngine engine;
  const WanSpec w = test_wan();
  SharedPipe fast(w, "fast");
  WanSpec slow_spec = w;
  slow_spec.per_link_Bps = 1e5;
  SharedPipe slow(slow_spec, "slow");
  fast.begin_transfer(engine, 0.0, 0, 1e6, 1, 2e6);
  slow.begin_transfer(engine, 0.0, 1, 1e6, 1, 2e6);
  std::vector<SharedPipe::Completion> done_fast, done_slow;
  while (!engine.empty()) {
    const Event ev = engine.pop();
    if (auto c = fast.on_event(engine, ev)) done_fast.push_back(*c);
    if (auto c = slow.on_event(engine, ev)) done_slow.push_back(*c);
  }
  ASSERT_EQ(done_fast.size(), 1u);
  ASSERT_EQ(done_slow.size(), 1u);
  EXPECT_DOUBLE_EQ(done_fast[0].end_time, w.transfer_time(1e6, 1, 1, 2e6));
  EXPECT_DOUBLE_EQ(done_slow[0].end_time,
                   slow_spec.transfer_time(1e6, 1, 1, 2e6));
}

TEST(SharedPipe, RejectsInvalidSpecAndInputs) {
  WanSpec bad = test_wan();
  bad.per_link_Bps = 0.0;
  EXPECT_THROW((SharedPipe(bad, "wan")), util::ConfigError);

  EventEngine engine;
  SharedPipe pipe(test_wan(), "wan");
  EXPECT_THROW(pipe.begin_transfer(engine, 0.0, 0, -1.0, 1, 2e6),
               util::Error);
  EXPECT_THROW(pipe.begin_transfer(engine, 0.0, 0, 1e6, 1, 0.0),
               util::Error);
  EXPECT_THROW(
      pipe.begin_transfer(engine, 0.0, 0,
                          std::numeric_limits<double>::quiet_NaN(), 1, 2e6),
      util::Error);
}

}  // namespace
}  // namespace fgp::sim
