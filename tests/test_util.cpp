// Unit tests for the util module: serialization, RNG determinism,
// statistics, tables, thread pool, union-find.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/union_find.h"

namespace fgp::util {
namespace {

// ---------------------------------------------------------------- checks

TEST(Check, PassesOnTrueCondition) { EXPECT_NO_THROW(FGP_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsOnFalseCondition) {
  EXPECT_THROW(FGP_CHECK(1 + 1 == 3), Error);
}

TEST(Check, MessageContainsContext) {
  try {
    FGP_CHECK_MSG(false, "node " << 7 << " missing");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("node 7 missing"), std::string::npos);
  }
}

TEST(Check, ConfigErrorIsAnError) {
  const ConfigError e("bad");
  EXPECT_NE(dynamic_cast<const Error*>(&e), nullptr);
}

// ---------------------------------------------------------- serialization

TEST(Serial, ScalarRoundTrip) {
  ByteWriter w;
  w.put_u32(42);
  w.put_u64(1ull << 40);
  w.put_i64(-17);
  w.put_f64(3.25);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u32(), 42u);
  EXPECT_EQ(r.get_u64(), 1ull << 40);
  EXPECT_EQ(r.get_i64(), -17);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serial, StringRoundTrip) {
  ByteWriter w;
  w.put_string("hello grid");
  w.put_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello grid");
  EXPECT_EQ(r.get_string(), "");
}

TEST(Serial, VectorRoundTrip) {
  ByteWriter w;
  const std::vector<double> xs{1.5, -2.5, 1e300};
  const std::vector<std::uint8_t> empty;
  w.put_vector(xs);
  w.put_vector(empty);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_vector<double>(), xs);
  EXPECT_TRUE(r.get_vector<std::uint8_t>().empty());
}

TEST(Serial, SizeTracksBytesWritten) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.put_u32(1);
  EXPECT_EQ(w.size(), 4u);
  w.put_f64(1.0);
  EXPECT_EQ(w.size(), 12u);
}

TEST(Serial, TruncatedScalarThrows) {
  ByteWriter w;
  w.put_u32(5);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_u64(), SerializationError);
}

TEST(Serial, TruncatedVectorThrows) {
  ByteWriter w;
  w.put_u64(1000);  // claims 1000 doubles, provides none
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_vector<double>(), SerializationError);
}

TEST(Serial, TruncatedStringThrows) {
  ByteWriter w;
  w.put_u64(64);
  w.put_bytes("short", 5);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_string(), SerializationError);
}

TEST(Serial, OverflowingVectorLengthThrows) {
  // A length that would overflow count*sizeof(T) must not wrap around.
  ByteWriter w;
  w.put_u64(~0ull / 2);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_vector<double>(), SerializationError);
}

TEST(Serial, RemainingCountsDown) {
  ByteWriter w;
  w.put_u32(1);
  w.put_u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.get_u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Serial, Fnv1aMatchesKnownVector) {
  // FNV-1a("a") is a published constant.
  const std::uint8_t a = 'a';
  EXPECT_EQ(fnv1a(&a, 1), 0xaf63dc4c8601ec8cull);
}

TEST(Serial, Fnv1aDetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(128, 0x5A);
  const auto h1 = fnv1a(data.data(), data.size());
  data[64] ^= 1;
  EXPECT_NE(h1, fnv1a(data.data(), data.size()));
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng r(11);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(r.next_gaussian());
  EXPECT_NEAR(acc.mean(), 0.0, 0.05);
  EXPECT_NEAR(acc.stdev(), 1.0, 0.05);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitMixKnownProgressionIsDeterministic) {
  SplitMix64 a(0), b(0);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
}

// ------------------------------------------------------------------ stats

TEST(Stats, AccumulatorBasics) {
  Accumulator a;
  a.add(1.0);
  a.add(3.0);
  a.add(5.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_NEAR(a.stdev(), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(Stats, AccumulatorEmptyThrows) {
  Accumulator a;
  EXPECT_THROW(a.mean(), Error);
  EXPECT_THROW(a.min(), Error);
  EXPECT_THROW(a.stdev(), Error);
}

TEST(Stats, SpanHelpers) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 6.0);
}

TEST(Stats, RelativeErrorMatchesPaperDefinition) {
  EXPECT_DOUBLE_EQ(relative_error(10.0, 9.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(10.0, 11.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(5.0, 5.0), 0.0);
}

TEST(Stats, RelativeErrorRequiresPositiveExact) {
  EXPECT_THROW(relative_error(0.0, 1.0), Error);
}

TEST(Stats, FitLineRecoversSlopeIntercept) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{1, 3, 5, 7};  // y = 1 + 2x
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

TEST(Stats, FitLineDegenerateXGivesMean) {
  const std::vector<double> xs{2, 2, 2};
  const std::vector<double> ys{1, 2, 3};
  const auto fit = fit_line(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Stats, FitLineNeedsTwoPoints) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(fit_line(one, one), Error);
}

// ------------------------------------------------------------------ table

TEST(Table, PrintsAlignedColumns) {
  Table t({"config", "error"});
  t.add_row({"1-1", "0.50%"});
  t.add_row({"8-16", "12.30%"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("config"), std::string::npos);
  EXPECT_NE(s.find("8-16"), std::string::npos);
  EXPECT_NE(s.find("12.30%"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.0123, 2), "1.23%");
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

// ------------------------------------------------------------- union-find

TEST(UnionFind, SingletonsInitiallyDisjoint) {
  UnionFind uf(4);
  EXPECT_EQ(uf.component_count(), 4u);
  EXPECT_FALSE(uf.connected(0, 3));
}

TEST(UnionFind, UniteMergesComponents) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already connected
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_EQ(uf.component_count(), 3u);
  EXPECT_EQ(uf.set_size(2), 3u);
}

TEST(UnionFind, TransitiveChains) {
  UnionFind uf(100);
  for (std::size_t i = 0; i + 1 < 100; ++i) uf.unite(i, i + 1);
  EXPECT_TRUE(uf.connected(0, 99));
  EXPECT_EQ(uf.component_count(), 1u);
  EXPECT_EQ(uf.set_size(50), 100u);
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), Error);
}

}  // namespace
}  // namespace fgp::util
