// Robustness / failure-injection tests: every reduction object and chunk
// format must survive adversarial bytes — truncations and random
// corruptions either deserialize to *something* or throw a typed error;
// they never crash or hang.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>

#include "apps/ann.h"
#include "apps/apriori.h"
#include "apps/defect.h"
#include "apps/em.h"
#include "apps/kmeans.h"
#include "apps/knn.h"
#include "apps/knn_classify.h"
#include "apps/vortex.h"
#include "datagen/flowfield.h"
#include "datagen/lattice.h"
#include "datagen/transactions.h"
#include "obs/drift.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/validate.h"
#include "repository/chunk.h"
#include "repository/payload.h"
#include "repository/store.h"
#include "repository/stream.h"
#include "service/config.h"
#include "sim/cluster.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "util/rng.h"
#include "util/serial.h"

namespace fgp {
namespace {

/// Builds one populated object of each application type.
struct NamedObject {
  std::string name;
  std::function<std::unique_ptr<freeride::ReductionObject>()> make_empty;
  std::vector<std::uint8_t> valid_bytes;
};

std::vector<NamedObject> populated_objects() {
  std::vector<NamedObject> out;

  {
    apps::KMeansObject o(4, 3);
    o.sums_.assign(12, 1.5);
    o.counts_.assign(4, 9);
    o.sse = 3.25;
    util::ByteWriter w;
    o.serialize(w);
    out.push_back({"kmeans",
                   [] { return std::make_unique<apps::KMeansObject>(); },
                   w.take()});
  }
  {
    apps::EMObject o(2, 3);
    o.resp = {1, 2};
    o.sum_x.assign(6, 0.5);
    o.sum_x2.assign(6, 0.25);
    o.labels[7] = {0, 1, 0, 1};
    o.points = 4;
    util::ByteWriter w;
    o.serialize(w);
    out.push_back(
        {"em", [] { return std::make_unique<apps::EMObject>(); }, w.take()});
  }
  {
    apps::KnnObject o(2, 3, 2);
    const double p[2] = {1.0, 2.0};
    o.insert(0, 1.0, p);
    o.insert(1, 2.0, p);
    util::ByteWriter w;
    o.serialize(w);
    out.push_back(
        {"knn", [] { return std::make_unique<apps::KnnObject>(); }, w.take()});
  }
  {
    apps::KnnClassifyObject o(2, 3);
    o.insert(0, 1.0, 5);
    o.predicted = {5, -1};
    util::ByteWriter w;
    o.serialize(w);
    out.push_back({"knn-classify",
                   [] { return std::make_unique<apps::KnnClassifyObject>(); },
                   w.take()});
  }
  {
    apps::VortexObject o;
    apps::RegionFragment f;
    f.sign = 1;
    f.cells = 9;
    f.boundary = {{1, 2}, {1, 3}};
    o.fragments.push_back(f);
    o.vortices.push_back({1, 2, 9, 1});
    util::ByteWriter w;
    o.serialize(w);
    out.push_back({"vortex",
                   [] { return std::make_unique<apps::VortexObject>(); },
                   w.take()});
  }
  {
    apps::DefectObject o;
    o.structures.push_back({1, {0, 0, 0, 1, 0, 0}});
    util::ByteWriter w;
    o.serialize(w);
    out.push_back({"defect",
                   [] { return std::make_unique<apps::DefectObject>(); },
                   w.take()});
  }
  {
    apps::AprioriObject o(3);
    o.counts = {1, 2, 3};
    o.transactions = 6;
    util::ByteWriter w;
    o.serialize(w);
    out.push_back({"apriori",
                   [] { return std::make_unique<apps::AprioriObject>(); },
                   w.take()});
  }
  {
    apps::AnnObject o(2, 3, 2);
    o.loss = 1.0;
    o.examples = 3;
    util::ByteWriter w;
    o.serialize(w);
    out.push_back(
        {"ann", [] { return std::make_unique<apps::AnnObject>(); }, w.take()});
  }
  return out;
}

TEST(Fuzz, ValidBytesRoundTripForEveryObject) {
  for (const auto& obj : populated_objects()) {
    auto fresh = obj.make_empty();
    util::ByteReader r(obj.valid_bytes);
    EXPECT_NO_THROW(fresh->deserialize(r)) << obj.name;
    // Re-serialization is byte-identical (canonical form).
    util::ByteWriter w;
    fresh->serialize(w);
    EXPECT_EQ(w.bytes(), obj.valid_bytes) << obj.name;
  }
}

TEST(Fuzz, EveryTruncationEitherThrowsOrParses) {
  for (const auto& obj : populated_objects()) {
    for (std::size_t cut = 0; cut < obj.valid_bytes.size(); ++cut) {
      std::vector<std::uint8_t> truncated(obj.valid_bytes.begin(),
                                          obj.valid_bytes.begin() +
                                              static_cast<std::ptrdiff_t>(cut));
      auto fresh = obj.make_empty();
      util::ByteReader r(truncated);
      try {
        fresh->deserialize(r);  // success is acceptable (prefix happens to parse)
      } catch (const util::Error&) {
        // typed failure is the expected outcome
      }
    }
  }
}

TEST(Fuzz, RandomCorruptionNeverCrashes) {
  util::Rng rng(2024);
  for (const auto& obj : populated_objects()) {
    for (int trial = 0; trial < 200; ++trial) {
      auto bytes = obj.valid_bytes;
      const int flips = 1 + static_cast<int>(rng.next_below(4));
      for (int f = 0; f < flips; ++f)
        bytes[rng.next_below(bytes.size())] ^=
            static_cast<std::uint8_t>(1 + rng.next_below(255));
      auto fresh = obj.make_empty();
      util::ByteReader r(bytes);
      try {
        fresh->deserialize(r);
      } catch (const std::exception&) {
        // Any typed failure is a controlled outcome (SerializationError
        // from the bounds checks, or length/alloc errors when a corrupted
        // container length slips past them). What must never happen is a
        // crash or hang.
      }
    }
  }
  SUCCEED();
}

// --- ByteReader malformed/truncated corpora ------------------------------
// Direct attacks on the deserialization layer in util/serial: every entry
// is a hostile byte string a corrupted repository could hand us. Each must
// throw SerializationError — never crash, over-read, or allocate wildly.
// The asan-ubsan preset turns any over-read into a hard failure.

std::vector<std::uint8_t> le64(std::uint64_t v) {
  util::ByteWriter w;
  w.put_u64(v);
  return w.take();
}

void append(std::vector<std::uint8_t>& dst,
            const std::vector<std::uint8_t>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

TEST(Fuzz, ByteReaderEmptyBufferThrowsTyped) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(util::ByteReader(empty).get_u32(), util::SerializationError);
  EXPECT_THROW(util::ByteReader(empty).get_u64(), util::SerializationError);
  EXPECT_THROW(util::ByteReader(empty).get_f64(), util::SerializationError);
  EXPECT_THROW(util::ByteReader(empty).get_string(),
               util::SerializationError);
  EXPECT_THROW(util::ByteReader(empty).get_vector<double>(),
               util::SerializationError);
}

TEST(Fuzz, ByteReaderTruncatedMidScalarThrowsTyped) {
  // Every strict prefix of an 8-byte scalar must be rejected.
  const auto full = le64(0x1122334455667788ull);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> bytes(full.begin(),
                                    full.begin() +
                                        static_cast<std::ptrdiff_t>(cut));
    util::ByteReader r(bytes);
    EXPECT_THROW(r.get_u64(), util::SerializationError) << "cut=" << cut;
  }
}

TEST(Fuzz, ByteReaderHostileStringLengthThrowsTyped) {
  // Length prefixes far beyond the buffer, including ones chosen to
  // overflow naive `pos + n` arithmetic.
  for (const std::uint64_t n :
       {std::uint64_t{9}, std::uint64_t{1} << 32, std::uint64_t{1} << 62,
        ~std::uint64_t{0}}) {
    auto bytes = le64(n);
    bytes.push_back('x');  // one byte of payload, n promised
    util::ByteReader r(bytes);
    EXPECT_THROW(r.get_string(), util::SerializationError) << "n=" << n;
  }
}

TEST(Fuzz, ByteReaderHostileVectorCountThrowsTyped) {
  // Element counts whose byte size overflows or overruns must be rejected
  // *before* any allocation of that size is attempted.
  for (const std::uint64_t n :
       {std::uint64_t{3}, std::uint64_t{1} << 32, std::uint64_t{1} << 61,
        ~std::uint64_t{0} / 8, ~std::uint64_t{0}}) {
    auto bytes = le64(n);
    append(bytes, le64(0xdeadbeefull));  // 8 bytes of payload, n*8 promised
    util::ByteReader r(bytes);
    EXPECT_THROW(r.get_vector<double>(), util::SerializationError)
        << "n=" << n;
  }
}

TEST(Fuzz, ByteReaderNestedContainerTruncationThrowsTyped) {
  // A valid outer count whose inner payload is cut off mid-element: the
  // vector<double> read must fail typed, at every truncation point.
  util::ByteWriter w;
  w.put_vector(std::vector<double>{1.0, 2.0, 3.0});
  const auto full = w.take();
  for (std::size_t cut = sizeof(std::uint64_t); cut < full.size(); ++cut) {
    std::vector<std::uint8_t> bytes(full.begin(),
                                    full.begin() +
                                        static_cast<std::ptrdiff_t>(cut));
    util::ByteReader r(bytes);
    EXPECT_THROW(r.get_vector<double>(), util::SerializationError)
        << "cut=" << cut;
  }
}

TEST(Fuzz, ObjectCountPrefixesAreBoundedByPayload) {
  // A corrupted fragment/structure-count prefix must throw a typed error
  // *before* any count-driven allocation — under asan-ubsan a raw
  // reserve(count) here aborts with allocation-size-too-big.
  for (const std::uint64_t n :
       {std::uint64_t{1} << 40, std::uint64_t{1} << 61, ~std::uint64_t{0}}) {
    const auto bytes = le64(n);
    {
      apps::VortexObject o;
      util::ByteReader r(bytes);
      EXPECT_THROW(o.deserialize(r), util::SerializationError) << "n=" << n;
    }
    {
      apps::DefectObject o;
      util::ByteReader r(bytes);
      EXPECT_THROW(o.deserialize(r), util::SerializationError) << "n=" << n;
    }
  }
}

TEST(Fuzz, ByteReaderRandomGarbageNeverCrashesTypedOnly) {
  // Random byte soup against a mixed read schedule. Outcomes are either a
  // clean parse (tiny reads can succeed by chance) or SerializationError;
  // anything else — crash, hang, foreign exception — fails the test.
  util::Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    util::ByteReader r(junk);
    try {
      while (!r.exhausted()) {
        switch (rng.next_below(4)) {
          case 0: (void)r.get_u32(); break;
          case 1: (void)r.get_f64(); break;
          case 2: (void)r.get_string(); break;
          default: (void)r.get_vector<std::uint32_t>(); break;
        }
      }
    } catch (const util::SerializationError&) {
      // the only acceptable failure mode
    }
  }
  SUCCEED();
}

// --- Observability report corpora ----------------------------------------
// The obs JSON parser and report validators read files that may come off
// disk or a CI artifact store: every hostile input must end in a typed
// SerializationError (unparseable) or a validation error list (parseable
// but malformed) — never a crash, hang or unbounded recursion.

/// A small valid metrics report to truncate and corrupt.
std::string valid_metrics_report() {
  obs::Registry reg;
  reg.add("wan.repo-compute.bytes", 4096.0);
  reg.set("runtime.passes", 3.0);
  reg.observe("phase.disk", 0.25);
  reg.add("pool.steals", 7.0, obs::Domain::Host);
  return reg.to_json(true);
}

TEST(Fuzz, ObsJsonRejectsMalformedDocumentsTyped) {
  const char* corpus[] = {
      "",
      "   ",
      "{",
      "}",
      "[",
      "[1,",
      "{\"a\":}",
      "{\"a\" 1}",
      "{\"a\":1,}",
      "[1, 2,, 3]",
      "\"unterminated",
      "\"bad \\x escape\"",
      "\"\\u12\"",
      "tru",
      "nulll",
      "+1",
      "1e",
      "1.",
      "- 1",
      "NaN",
      "Infinity",
      "{\"a\":1} trailing",
      "\x01\x02\x03",
  };
  for (const char* text : corpus)
    EXPECT_THROW(obs::json::parse(text), util::SerializationError) << text;
}

TEST(Fuzz, ObsJsonBoundsRecursionDepth) {
  // 4000 nested arrays / objects: far past max_depth, must reject rather
  // than recurse (the asan preset turns a stack overflow into a crash).
  std::string arrays(4000, '[');
  arrays.append(4000, ']');
  EXPECT_THROW(obs::json::parse(arrays), util::SerializationError);

  std::string objects;
  for (int i = 0; i < 4000; ++i) objects += "{\"k\":";
  objects += "1";
  objects.append(4000, '}');
  EXPECT_THROW(obs::json::parse(objects), util::SerializationError);
}

TEST(Fuzz, ReportValidatorSurvivesEveryTruncation) {
  const std::string report = valid_metrics_report();
  ASSERT_TRUE(obs::validate_report_text(report).ok());
  // Cuts that only strip trailing whitespace leave a complete document;
  // every shorter prefix must fail in a controlled way.
  const std::size_t meaningful = report.find_last_of('}') + 1;
  for (std::size_t cut = 0; cut < report.size(); ++cut) {
    const std::string truncated = report.substr(0, cut);
    try {
      // Parseable prefixes must yield an error list, never a crash; a
      // clean pass is only possible for the whitespace-only cuts.
      const auto v = obs::validate_report_text(truncated);
      EXPECT_TRUE(!v.ok() || cut >= meaningful) << "cut=" << cut;
    } catch (const util::SerializationError&) {
      // unparseable prefix: typed failure is the expected outcome
    }
  }
}

TEST(Fuzz, ReportValidatorSurvivesRandomCorruption) {
  const std::string report = valid_metrics_report();
  util::Rng rng(4711);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = report;
    const int flips = 1 + static_cast<int>(rng.next_below(6));
    for (int f = 0; f < flips; ++f)
      bytes[rng.next_below(bytes.size())] =
          static_cast<char>(rng.next_below(256));
    try {
      (void)obs::validate_report_text(bytes);
    } catch (const util::SerializationError&) {
      // controlled outcome; anything else (crash, hang, other exception
      // type) fails the test run
    }
  }
  SUCCEED();
}

TEST(Fuzz, ReportValidatorRejectsWrongShapesWithErrors) {
  // Parseable documents whose shape is wrong: the validator must return
  // error lists (kind Unknown or errors non-empty), never throw.
  const char* corpus[] = {
      "null",
      "42",
      "[]",
      "{}",
      "{\"schema\":\"unknown-schema\"}",
      "{\"schema\":42}",
      "{\"schema\":\"fgpred-trace-v1\"}",
      "{\"schema\":\"fgpred-trace-v1\",\"traceEvents\":42}",
      "{\"schema\":\"fgpred-trace-v1\",\"traceEvents\":[42]}",
      "{\"schema\":\"fgpred-trace-v1\",\"traceEvents\":[{\"ph\":\"Q\"}]}",
      "{\"schema\":\"fgpred-trace-v1\",\"traceEvents\":[{\"ph\":\"B\","
      "\"pid\":0,\"tid\":0,\"ts\":-5,\"name\":\"x\"}]}",
      "{\"schema\":\"fgpred-metrics-v1\"}",
      "{\"schema\":\"fgpred-metrics-v1\",\"deterministic\":[]}",
      "{\"schema\":\"fgpred-metrics-v1\",\"deterministic\":"
      "{\"a\":{\"type\":\"counter\"}}}",
      "{\"schema\":\"fgpred-residuals-v1\"}",
      "{\"schema\":\"fgpred-residuals-v1\",\"points\":[{}]}",
      "{\"schema\":\"fgpred-residuals-v1\",\"points\":[{\"label\":\"1-1\","
      "\"predicted\":{},\"observed\":{},\"residual\":{},"
      "\"rel_error_total\":0}]}",
      // PR 9 service-observability schemas.
      "{\"schema\":\"fgpred-slowlog-v1\"}",
      "{\"schema\":\"fgpred-slowlog-v1\",\"threshold_s\":-1,"
      "\"capacity\":1,\"seen\":0,\"entries\":[]}",
      // An entry despite zero threshold crossings, and an empty entry.
      "{\"schema\":\"fgpred-slowlog-v1\",\"threshold_s\":0,"
      "\"capacity\":4,\"seen\":0,\"entries\":[{}]}",
      // A logged latency that does not exceed the threshold.
      "{\"schema\":\"fgpred-slowlog-v1\",\"threshold_s\":0.5,"
      "\"capacity\":4,\"seen\":1,\"entries\":[{\"app\":\"em\","
      "\"dataset\":\"d\",\"latency_s\":0.1,\"candidates_considered\":1,"
      "\"chosen\":\"\",\"error\":\"\",\"topology_version\":0}]}",
      "{\"schema\":\"fgpred-drift-v1\"}",
      "{\"schema\":\"fgpred-drift-v1\",\"alpha\":2,\"window\":64,"
      "\"band\":0.1,\"points\":0,\"components\":{},\"drifting\":false}",
      // Top-level verdict contradicting the (all-steady) components.
      "{\"schema\":\"fgpred-drift-v1\",\"alpha\":0.2,\"window\":64,"
      "\"band\":0.1,\"points\":5,\"components\":{"
      "\"disk\":{\"ewma\":0,\"window_mean\":0,\"window_var\":0,"
      "\"drifting\":false},"
      "\"network\":{\"ewma\":0,\"window_mean\":0,\"window_var\":0,"
      "\"drifting\":false},"
      "\"compute_local\":{\"ewma\":0,\"window_mean\":0,\"window_var\":0,"
      "\"drifting\":false},"
      "\"ro_comm\":{\"ewma\":0,\"window_mean\":0,\"window_var\":0,"
      "\"drifting\":false},"
      "\"global_red\":{\"ewma\":0,\"window_mean\":0,\"window_var\":0,"
      "\"drifting\":false}},\"drifting\":true}",
      "{\"schema\":\"fgpred-snapshots-v1\"}",
      "{\"schema\":\"fgpred-snapshots-v1\",\"capacity\":1,\"captured\":2,"
      "\"snapshots\":[{\"seq\":0,\"deterministic\":{}},"
      "{\"seq\":1,\"deterministic\":{}}]}",
      // Sequence numbers must be strictly increasing.
      "{\"schema\":\"fgpred-snapshots-v1\",\"capacity\":4,\"captured\":2,"
      "\"snapshots\":[{\"seq\":1,\"deterministic\":{}},"
      "{\"seq\":1,\"deterministic\":{}}]}",
  };
  for (const char* text : corpus) {
    const auto v = obs::validate_report_text(text);
    EXPECT_FALSE(v.ok()) << text;
  }
}

TEST(Fuzz, ServiceObservabilityReportsSurviveTruncationAndCorruption) {
  // Valid slowlog and drift documents straight from their recorders,
  // then the same truncation / corruption discipline as the metrics
  // report: typed error or an error list, never a crash.
  obs::SlowQueryLog slowlog(0.001, 4);
  obs::SlowQueryEntry entry;
  entry.app = "em";
  entry.dataset = "ds-\"quoted\"\n";  // hostile strings must escape cleanly
  entry.latency_s = 0.25;
  entry.candidates_considered = 7;
  entry.chosen = "repo-0/hpc-1/8";
  entry.topology_version = 3;
  slowlog.maybe_record(entry);
  obs::DriftMonitor drift;
  obs::ResidualPoint pt;
  pt.label = "p";
  pt.predicted = {1.0, 2.0, 3.0, 0.5, 0.25};
  pt.observed = {2.0, 2.0, 3.0, 0.5, 0.25};
  for (int i = 0; i < 8; ++i) drift.observe(pt);

  util::Rng rng(20260808);
  for (const std::string& report : {slowlog.to_json(), drift.to_json()}) {
    ASSERT_TRUE(obs::validate_report_text(report).ok());
    const std::size_t meaningful = report.find_last_of('}') + 1;
    for (std::size_t cut = 0; cut < report.size(); ++cut) {
      try {
        const auto v = obs::validate_report_text(report.substr(0, cut));
        EXPECT_TRUE(!v.ok() || cut >= meaningful) << "cut=" << cut;
      } catch (const util::SerializationError&) {
        // unparseable prefix: typed failure is the expected outcome
      }
    }
    for (int trial = 0; trial < 150; ++trial) {
      std::string bytes = report;
      const int flips = 1 + static_cast<int>(rng.next_below(6));
      for (int f = 0; f < flips; ++f)
        bytes[rng.next_below(bytes.size())] =
            static_cast<char>(rng.next_below(256));
      try {
        (void)obs::validate_report_text(bytes);
      } catch (const util::SerializationError&) {
        // controlled outcome
      }
    }
  }
}

// --- Chunk wire-format corpora -------------------------------------------
// Hostile byte streams against Chunk::read_from, the parser every store
// load path funnels through. Acceptable outcomes: a verified chunk or a
// typed SerializationError — never a crash, over-read, or a chunk whose
// checksum was not validated.

/// The canonical wire image of a small chunk.
std::string chunk_wire_image(const repository::Chunk& c) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  c.write_to(ss);
  return ss.str();
}

TEST(Fuzz, ChunkWireEveryTruncationThrowsTyped) {
  const auto c = repository::make_chunk<double>(1, {1.0, 2.0, 3.0}, 2.0);
  const std::string full = chunk_wire_image(c);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream ss(full.substr(0, cut),
                         std::ios::in | std::ios::binary);
    EXPECT_THROW(repository::Chunk::read_from(ss, full.size()),
                 util::SerializationError)
        << "cut=" << cut;
  }
}

TEST(Fuzz, ChunkWireZeroLengthPayloadWithTrailingGarbageParses) {
  // An empty payload followed by junk: the parser must consume exactly the
  // 32-byte header, skip the payload read entirely (an empty vector's
  // data() may be null), and leave the garbage untouched in the stream.
  const repository::Chunk c(3, std::vector<std::uint8_t>{}, 1.0);
  std::stringstream ss(chunk_wire_image(c) + "\xde\xad\xbe\xef garbage",
                       std::ios::in | std::ios::binary);
  const auto back = repository::Chunk::read_from(ss, 1 << 20);
  EXPECT_EQ(back.id(), 3u);
  EXPECT_EQ(back.real_bytes(), 0u);
  EXPECT_TRUE(back.verify());
}

TEST(Fuzz, ChunkWireLengthPrefixAtLimitThrowsTyped) {
  // A length prefix exactly equal to payload_limit (the file size, header
  // included) passes the bound check but can never be satisfied by the
  // remaining bytes: the short read must throw typed, not return a chunk
  // built from an under-filled buffer.
  const auto c = repository::make_chunk<double>(4, {5.0, 6.0}, 1.0);
  std::string image = chunk_wire_image(c);
  const std::uint64_t limit = image.size();
  std::memcpy(image.data() + 24, &limit, sizeof(limit));
  std::stringstream ss(image, std::ios::in | std::ios::binary);
  EXPECT_THROW(repository::Chunk::read_from(ss, limit),
               util::SerializationError);
}

TEST(Fuzz, ChunkWireRandomCorruptionTypedOnly) {
  // Random flips anywhere in the image: the checksum (or an earlier bounds
  // check) must catch payload damage; header damage may also trip the
  // positive-scale invariant. Any util::Error is controlled; scale flips
  // that leave a valid positive double can still parse cleanly.
  const auto c = repository::make_chunk<double>(9, {1.5, 2.5, 3.5}, 4.0);
  const std::string full = chunk_wire_image(c);
  util::Rng rng(31337);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = full;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f)
      bytes[rng.next_below(bytes.size())] ^=
          static_cast<char>(1 + rng.next_below(255));
    std::stringstream ss(bytes, std::ios::in | std::ios::binary);
    try {
      const auto back = repository::Chunk::read_from(ss, bytes.size());
      EXPECT_TRUE(back.verify());  // a surviving parse is checksum-clean
    } catch (const util::Error&) {
      // typed rejection is the expected outcome
    }
  }
  SUCCEED();
}

// --- Streamed-reader corpus ----------------------------------------------
// The out-of-core reader (DatasetStore::load_streamed + materialize,
// DESIGN.md §15) parses chunk files in two stages — a 32-byte header scan,
// then windowed payload mapping with a checksum re-verify — and both must
// hold the same line as Chunk::read_from: a hostile store directory ends
// in a typed error or a checksum-clean chunk, never a crash, SIGBUS or
// unverified bytes.

TEST(Fuzz, StreamedReaderSurvivesHostileStoreDirectories) {
  if (!repository::PayloadBuffer::mmap_supported())
    GTEST_SKIP() << "no mmap on this platform; load_streamed falls back";
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() /
                        ("fgp_fuzz_stream_" + std::to_string(::getpid()));
  fs::remove_all(root);
  const repository::DatasetStore store(root);

  repository::DatasetMeta meta;
  meta.name = "hostile";
  meta.schema = "bytes";
  repository::ChunkedDataset ds(meta);
  util::Rng rng(4242);
  for (std::uint64_t i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> bytes(600 + 997 * i);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    ds.add_chunk(repository::Chunk(i, std::move(bytes), 2.0));
  }
  store.save(ds);
  const fs::path dir = root / "hostile";

  repository::StreamConfig cfg;
  cfg.window_bytes = 1;  // one page: payloads straddle windows
  cfg.budget_bytes = 8192;
  const auto original =
      [&](std::size_t i) { return ds.chunk(i).payload(); };

  for (int trial = 0; trial < 200; ++trial) {
    // Re-save pristine files, then mutate one chunk file: byte flips,
    // truncation, or header-only junk, chosen per trial.
    store.save(ds);
    const std::size_t victim = rng.next_below(4);
    const fs::path p = dir / ("chunk_" + std::to_string(victim) + ".bin");
    const auto mode = rng.next_below(3);
    if (mode == 0) {
      std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
      const std::uint64_t size = fs::file_size(p);
      const int flips = 1 + static_cast<int>(rng.next_below(4));
      for (int k = 0; k < flips; ++k) {
        const auto off = static_cast<std::streamoff>(rng.next_below(size));
        f.seekg(off);
        const int byte = f.get();
        f.seekp(off);
        f.put(static_cast<char>(byte ^ (1 + rng.next_below(255))));
      }
    } else if (mode == 1) {
      fs::resize_file(p, rng.next_below(fs::file_size(p)));
    } else {
      std::ofstream f(p, std::ios::binary | std::ios::trunc);
      std::vector<char> junk(32 + rng.next_below(128));
      for (auto& b : junk) b = static_cast<char>(rng.next_below(256));
      f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
    }

    try {
      const auto streamed = store.load_streamed("hostile", cfg);
      for (std::size_t i = 0; i < streamed.chunk_count(); ++i) {
        const auto chunk = streamed.materialize(i);
        // A chunk that materializes cleanly must carry verified bytes;
        // untouched chunks must be byte-exact.
        EXPECT_TRUE(chunk.verify()) << "trial " << trial << " chunk " << i;
        if (i != victim) {
          const auto got = chunk.payload();
          const auto want = original(i);
          EXPECT_TRUE(got.size() == want.size() &&
                      std::equal(got.begin(), got.end(), want.begin()))
              << "trial " << trial << " chunk " << i;
        }
      }
    } catch (const util::Error&) {
      // typed rejection is the expected outcome for damaged files
    }
  }
  fs::remove_all(root);
}

// --- Prediction-service configuration corpora ----------------------------
// The selection service is configured by files and fed query batches from
// outside the trust boundary (src/service/config.h). Contract: malformed
// JSON throws SerializationError, parseable documents violating a
// documented bound throw ConfigError — never a crash, hang, or a config
// silently clamped to something the caller did not write.

TEST(Fuzz, ServiceConfigRejectsHostileDocumentsTyped) {
  // Unparseable bytes: the JSON layer's typed rejection.
  const char* unparseable[] = {"", "{", "{\"shards\":}", "\x01\x02", "tru"};
  for (const char* text : unparseable)
    EXPECT_THROW(service::parse_service_config(text),
                 util::SerializationError)
        << text;

  // Parseable but out of contract: typed ConfigError.
  const char* invalid[] = {
      "[]",
      "null",
      "42",
      "{\"shards\": 0}",
      "{\"shards\": -4}",
      "{\"shards\": 4097}",
      "{\"shards\": 2.5}",
      "{\"shards\": \"many\"}",
      "{\"shards\": 1e300}",
      "{\"max_top_k\": 0}",
      "{\"max_batch\": -1}",
      "{\"unknown_field\": 1}",
      "{\"shards\": 4, \"sharks\": 4}",
  };
  for (const char* text : invalid)
    EXPECT_THROW(service::parse_service_config(text), util::ConfigError)
        << text;
}

TEST(Fuzz, ServiceQueryBatchRejectsHostileDocumentsTyped) {
  const service::ServiceConfig config;  // defaults: max_top_k 64
  const char* invalid[] = {
      "{}",
      "42",
      "[42]",
      "[{}]",
      "[{\"app\": \"a\"}]",
      "[{\"app\": \"\", \"dataset\": \"d\", \"dataset_bytes\": 1}]",
      "[{\"app\": \"a\", \"dataset\": \"\", \"dataset_bytes\": 1}]",
      "[{\"app\": 42, \"dataset\": \"d\", \"dataset_bytes\": 1}]",
      "[{\"app\": \"a\", \"dataset\": \"d\", \"dataset_bytes\": 0}]",
      "[{\"app\": \"a\", \"dataset\": \"d\", \"dataset_bytes\": -5}]",
      "[{\"app\": \"a\", \"dataset\": \"d\", \"dataset_bytes\": \"big\"}]",
      "[{\"app\": \"a\", \"dataset\": \"d\", \"dataset_bytes\": 1,"
      " \"top_k\": 0}]",
      "[{\"app\": \"a\", \"dataset\": \"d\", \"dataset_bytes\": 1,"
      " \"top_k\": 65}]",
      "[{\"app\": \"a\", \"dataset\": \"d\", \"dataset_bytes\": 1,"
      " \"top_k\": 1.5}]",
      "[{\"app\": \"a\", \"dataset\": \"d\", \"dataset_bytes\": 1,"
      " \"extra\": 1}]",
  };
  for (const char* text : invalid)
    EXPECT_THROW(service::parse_query_batch(text, config), util::ConfigError)
        << text;
  EXPECT_THROW(service::parse_query_batch("[{", config),
               util::SerializationError);

  // Batch-size cap: one query over the limit is refused whole.
  service::ServiceConfig tiny;
  tiny.max_batch = 2;
  EXPECT_THROW(service::parse_query_batch(
                   "[{\"app\":\"a\",\"dataset\":\"d\",\"dataset_bytes\":1},"
                   "{\"app\":\"a\",\"dataset\":\"d\",\"dataset_bytes\":1},"
                   "{\"app\":\"a\",\"dataset\":\"d\",\"dataset_bytes\":1}]",
                   tiny),
               util::ConfigError);
}

TEST(Fuzz, ServiceConfigEveryTruncationThrowsTyped) {
  const std::string full =
      R"({"shards": 64, "max_top_k": 8, "max_batch": 4096})";
  ASSERT_EQ(service::parse_service_config(full).shards, 64);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_THROW((void)service::parse_service_config(full.substr(0, cut)),
                 util::Error)
        << "cut=" << cut;
  }
}

TEST(Fuzz, ServiceQueryBatchSurvivesRandomCorruption) {
  const service::ServiceConfig config;
  const std::string valid =
      R"([{"app": "em", "dataset": "ds-1", "dataset_bytes": 1e9,
           "top_k": 4},
          {"app": "kmeans", "dataset": "ds-2", "dataset_bytes": 2e8}])";
  ASSERT_EQ(service::parse_query_batch(valid, config).size(), 2u);
  util::Rng rng(20260808);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = valid;
    const int flips = 1 + static_cast<int>(rng.next_below(6));
    for (int f = 0; f < flips; ++f)
      bytes[rng.next_below(bytes.size())] =
          static_cast<char>(rng.next_below(256));
    try {
      // A surviving parse must still respect the documented bounds.
      const auto queries = service::parse_query_batch(bytes, config);
      for (const auto& q : queries) {
        EXPECT_FALSE(q.app.empty());
        EXPECT_FALSE(q.dataset.empty());
        EXPECT_GT(q.dataset_bytes, 0.0);
        EXPECT_GE(q.top_k, 1);
        EXPECT_LE(q.top_k, config.max_top_k);
      }
    } catch (const util::Error&) {
      // typed rejection is the expected outcome for damaged documents
    }
  }
}

TEST(Fuzz, ChunkParsersRejectRandomBytes) {
  util::Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> junk(16 + rng.next_below(256));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    const repository::Chunk chunk(0, junk, 1.0);
    // Each parser must throw a typed error or return a consistent view;
    // random bytes virtually never form a valid header, so expect throws.
    EXPECT_THROW(
        {
          try {
            datagen::parse_field_chunk(chunk);
            datagen::parse_lattice_chunk(chunk);
            datagen::parse_transactions(chunk);
          } catch (const util::Error&) {
            throw;
          }
        },
        util::Error)
        << "trial " << trial;
  }
}

// --- hostile simulation specs -------------------------------------------
//
// Scenario specs (machines, clusters, WAN pipes) arrive from config files
// and sweep generators; a NaN bandwidth or negative latency poisons every
// virtual-time charge downstream. validate() must either accept a spec or
// throw typed ConfigError — never crash, and never let a non-finite,
// negative or zero rate through.

namespace {

/// Values every numeric spec field is battered with. The first group must
/// be rejected wherever a positive rate is required; the second group is
/// legal there and must never throw.
const double kHostileRates[] = {
    0.0,
    -0.0,
    -1.0,
    -1e308,
    std::numeric_limits<double>::quiet_NaN(),
    std::numeric_limits<double>::signaling_NaN(),
    std::numeric_limits<double>::infinity(),
    -std::numeric_limits<double>::infinity(),
};
const double kLegalRates[] = {
    std::numeric_limits<double>::denorm_min(),
    std::numeric_limits<double>::min(),
    1e-300,
    1.0,
    1.7e308,
};

}  // namespace

TEST(Fuzz, MachineSpecRejectsHostileRatesTyped) {
  // Every positive-rate field of the machine model, one mutation at a time.
  const auto mutate = std::vector<std::function<void(sim::MachineSpec&,
                                                     double)>>{
      [](sim::MachineSpec& m, double v) { m.cpu_flops = v; },
      [](sim::MachineSpec& m, double v) { m.mem_Bps = v; },
      [](sim::MachineSpec& m, double v) { m.disk.bandwidth_Bps = v; },
      [](sim::MachineSpec& m, double v) { m.nic.bandwidth_Bps = v; },
  };
  for (std::size_t f = 0; f < mutate.size(); ++f) {
    for (const double v : kHostileRates) {
      sim::MachineSpec m = sim::opteron250();
      mutate[f](m, v);
      EXPECT_THROW(m.validate(), util::ConfigError)
          << "field " << f << " value " << v;
    }
    for (const double v : kLegalRates) {
      sim::MachineSpec m = sim::opteron250();
      mutate[f](m, v);
      EXPECT_NO_THROW(m.validate()) << "field " << f << " value " << v;
    }
  }
}

TEST(Fuzz, MachineSpecRejectsHostileCostsAndCounts) {
  // Non-negative costs: negative and non-finite rejected, zero accepted.
  const auto costs = std::vector<std::function<void(sim::MachineSpec&,
                                                    double)>>{
      [](sim::MachineSpec& m, double v) { m.disk.seek_s = v; },
      [](sim::MachineSpec& m, double v) { m.disk.startup_s = v; },
      [](sim::MachineSpec& m, double v) { m.nic.latency_s = v; },
  };
  for (std::size_t f = 0; f < costs.size(); ++f) {
    for (const double v : kHostileRates) {
      if (v == 0.0) continue;  // zero cost is legal
      sim::MachineSpec m = sim::opteron250();
      costs[f](m, v);
      EXPECT_THROW(m.validate(), util::ConfigError)
          << "cost field " << f << " value " << v;
    }
    sim::MachineSpec zero = sim::opteron250();
    costs[f](zero, 0.0);
    EXPECT_NO_THROW(zero.validate());
  }
  for (const int v : {0, -1, std::numeric_limits<int>::min()}) {
    sim::MachineSpec m = sim::opteron250();
    m.cores = v;
    EXPECT_THROW(m.validate(), util::ConfigError) << "cores " << v;
    m = sim::opteron250();
    m.disk.disks = v;
    EXPECT_THROW(m.validate(), util::ConfigError) << "disks " << v;
  }
}

TEST(Fuzz, WanSpecRejectsHostileFieldsTyped) {
  for (const double v : kHostileRates) {
    sim::WanSpec w = sim::wan_mbps(10);
    w.per_link_Bps = v;
    EXPECT_THROW(w.validate(), util::ConfigError) << "per_link " << v;
    w = sim::wan_mbps(10);
    w.aggregate_cap_Bps = v;
    EXPECT_THROW(w.validate(), util::ConfigError) << "aggregate_cap " << v;
    if (v != 0.0) {
      w = sim::wan_mbps(10);
      w.latency_s = v;
      EXPECT_THROW(w.validate(), util::ConfigError) << "latency " << v;
    }
  }
  // protocol_overhead lives in [0, 1): both ends battered.
  for (const double v : {-1e-9, -1.0, 1.0, 1.5,
                         std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity()}) {
    sim::WanSpec w = sim::wan_mbps(10);
    w.protocol_overhead = v;
    EXPECT_THROW(w.validate(), util::ConfigError) << "overhead " << v;
  }
  sim::WanSpec edge = sim::wan_mbps(10);
  edge.protocol_overhead = 0.0;
  EXPECT_NO_THROW(edge.validate());
  edge.protocol_overhead = 0.999999;
  EXPECT_NO_THROW(edge.validate());
}

TEST(Fuzz, ClusterSpecRejectsHostileFieldsTyped) {
  for (const double v : kHostileRates) {
    sim::ClusterSpec c = sim::cluster_pentium_myrinet();
    c.storage_backplane_Bps = v;
    EXPECT_THROW(c.validate(), util::ConfigError) << "backplane " << v;
    c = sim::cluster_pentium_myrinet();
    c.interconnect.bandwidth_Bps = v;
    EXPECT_THROW(c.validate(), util::ConfigError) << "interconnect bw " << v;
    if (v != 0.0) {
      c = sim::cluster_pentium_myrinet();
      c.interconnect.latency_s = v;
      EXPECT_THROW(c.validate(), util::ConfigError)
          << "interconnect latency " << v;
    }
  }
  for (const int v : {0, -7}) {
    sim::ClusterSpec c = sim::cluster_pentium_myrinet();
    c.max_nodes = v;
    EXPECT_THROW(c.validate(), util::ConfigError) << "max_nodes " << v;
  }
  // A hostile machine nested inside an otherwise-sane cluster still trips.
  sim::ClusterSpec nested = sim::cluster_opteron_infiniband();
  nested.machine.cpu_flops = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(nested.validate(), util::ConfigError);
}

}  // namespace
}  // namespace fgp
