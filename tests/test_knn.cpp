// Tests for the k-NN search application: exactness vs brute force,
// invariance across configurations, and k-list mechanics.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/knn.h"
#include "datagen/points.h"
#include "helpers.h"

namespace fgp::apps {
namespace {

using fgp::testing::ideal_setup;

struct Fixture {
  datagen::PointsDataset data;
  std::vector<double> all_points;
  std::vector<double> queries;

  explicit Fixture(std::uint64_t seed = 42, std::uint64_t n = 1500,
                   int dim = 3) {
    datagen::PointsSpec spec;
    spec.num_points = n;
    spec.dim = dim;
    spec.num_components = 4;
    spec.points_per_chunk = 128;
    spec.seed = seed;
    data = datagen::generate_points(spec);
    for (const auto& chunk : data.dataset.chunks()) {
      const auto pts = chunk.as_span<double>();
      all_points.insert(all_points.end(), pts.begin(), pts.end());
    }
    // Queries: a few perturbed data points plus one far outlier.
    for (int q = 0; q < 4; ++q)
      for (int j = 0; j < dim; ++j)
        queries.push_back(all_points[static_cast<std::size_t>(q) * 37 *
                                         static_cast<std::size_t>(dim) +
                                     static_cast<std::size_t>(j)] +
                          0.01 * q);
    for (int j = 0; j < dim; ++j) queries.push_back(500.0 + j);
  }
};

KnnParams make_params(const Fixture& f, int k) {
  KnnParams p;
  p.queries = f.queries;
  p.k = k;
  p.dim = f.data.dim;
  return p;
}

TEST(Knn, ObjectInsertKeepsSorted) {
  KnnObject o(1, 3, 2);
  const double p1[2] = {1, 1}, p2[2] = {2, 2}, p3[2] = {3, 3}, p4[2] = {0, 0};
  o.insert(0, 5.0, p1);
  o.insert(0, 2.0, p2);
  o.insert(0, 9.0, p3);
  EXPECT_DOUBLE_EQ(o.dists[0], 2.0);
  EXPECT_DOUBLE_EQ(o.dists[1], 5.0);
  EXPECT_DOUBLE_EQ(o.dists[2], 9.0);
  o.insert(0, 1.0, p4);  // evicts 9.0
  EXPECT_DOUBLE_EQ(o.dists[0], 1.0);
  EXPECT_DOUBLE_EQ(o.dists[2], 5.0);
  EXPECT_DOUBLE_EQ(o.coords[0], 0.0);  // p4 moved to front
}

TEST(Knn, InsertWorseThanKthIsIgnored) {
  KnnObject o(1, 2, 1);
  const double p[1] = {1};
  o.insert(0, 1.0, p);
  o.insert(0, 2.0, p);
  o.insert(0, 3.0, p);
  EXPECT_DOUBLE_EQ(o.kth_distance(0), 2.0);
}

TEST(Knn, ObjectSerializationRoundTrip) {
  KnnObject o(2, 2, 1);
  const double p[1] = {7};
  o.insert(0, 1.5, p);
  util::ByteWriter w;
  o.serialize(w);
  KnnObject back;
  util::ByteReader r(w.bytes());
  back.deserialize(r);
  EXPECT_EQ(back.num_queries, 2);
  EXPECT_DOUBLE_EQ(back.dists[0], 1.5);
  EXPECT_DOUBLE_EQ(back.coords[0], 7.0);
}

TEST(Knn, RejectsBadParams) {
  KnnParams p;
  p.k = 2;
  p.dim = 3;
  p.queries = {1.0, 2.0};  // not a multiple of dim
  EXPECT_THROW(KnnKernel{p}, util::Error);
}

TEST(Knn, MatchesBruteForceExactly) {
  Fixture f;
  KnnKernel kernel(make_params(f, 8));
  auto setup = ideal_setup(&f.data.dataset, 2, 4);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const KnnObject&>(*result.result);

  const std::size_t m = f.queries.size() / 3;
  for (std::size_t q = 0; q < m; ++q) {
    const auto ref =
        knn_reference(f.all_points, 3, f.queries.data() + q * 3, 8);
    for (int i = 0; i < 8; ++i)
      EXPECT_DOUBLE_EQ(obj.dists[q * 8 + i], ref[static_cast<std::size_t>(i)])
          << "query " << q << " rank " << i;
  }
}

TEST(Knn, NeighbourCoordinatesAreConsistentWithDistances) {
  Fixture f;
  KnnKernel kernel(make_params(f, 4));
  auto setup = ideal_setup(&f.data.dataset, 1, 2);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const KnnObject&>(*result.result);
  const std::size_t m = f.queries.size() / 3;
  for (std::size_t q = 0; q < m; ++q) {
    for (int i = 0; i < 4; ++i) {
      double d2 = 0.0;
      for (int j = 0; j < 3; ++j) {
        const double diff = obj.coords[(q * 4 + i) * 3 + j] -
                            f.queries[q * 3 + static_cast<std::size_t>(j)];
        d2 += diff * diff;
      }
      EXPECT_NEAR(d2, obj.dists[q * 4 + static_cast<std::size_t>(i)], 1e-9);
    }
  }
}

TEST(Knn, SinglePassAlgorithm) {
  Fixture f;
  KnnKernel kernel(make_params(f, 4));
  auto setup = ideal_setup(&f.data.dataset, 1, 1);
  freeride::Runtime runtime;
  EXPECT_EQ(runtime.run(setup, kernel).passes, 1);
}

TEST(Knn, KLargerThanDatasetPadsWithInfinity) {
  repository::DatasetMeta meta{"tiny", "f64", 0};
  repository::ChunkedDataset ds(meta);
  ds.add_chunk(repository::make_chunk<double>(0, {0.0, 0.0}));
  KnnParams p;
  p.k = 4;
  p.dim = 2;
  p.queries = {0.0, 0.0};
  KnnKernel kernel(p);
  auto setup = ideal_setup(&ds, 1, 1);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const KnnObject&>(*result.result);
  EXPECT_DOUBLE_EQ(obj.dists[0], 0.0);
  for (int i = 1; i < 4; ++i)
    EXPECT_TRUE(std::isinf(obj.dists[static_cast<std::size_t>(i)]));
}

class KnnConfigSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KnnConfigSweep, ExactAcrossConfigs) {
  const auto [n, c] = GetParam();
  if (c < n) GTEST_SKIP();
  static const Fixture f;
  KnnKernel kernel(make_params(f, 5));
  auto setup = ideal_setup(&f.data.dataset, n, c);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const KnnObject&>(*result.result);
  const auto ref = knn_reference(f.all_points, 3, f.queries.data(), 5);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(obj.dists[static_cast<std::size_t>(i)],
                     ref[static_cast<std::size_t>(i)]);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KnnConfigSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 4, 8)));

}  // namespace
}  // namespace fgp::apps
