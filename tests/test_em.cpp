// Tests for the EM clustering application: log-likelihood monotonicity,
// agreement with the serial reference, label shipping, and the
// linear-object-size behaviour the prediction model relies on.
#include <gtest/gtest.h>

#include "apps/em.h"
#include "datagen/points.h"
#include "helpers.h"

namespace fgp::apps {
namespace {

using fgp::testing::ideal_setup;

struct Fixture {
  datagen::PointsDataset data;
  std::vector<double> all_points;

  explicit Fixture(std::uint64_t seed = 42, std::uint64_t n = 2000, int dim = 3,
                   int comps = 3) {
    datagen::PointsSpec spec;
    spec.num_points = n;
    spec.dim = dim;
    spec.num_components = comps;
    spec.points_per_chunk = 200;
    spec.seed = seed;
    data = datagen::generate_points(spec);
    for (const auto& chunk : data.dataset.chunks()) {
      const auto pts = chunk.as_span<double>();
      all_points.insert(all_points.end(), pts.begin(), pts.end());
    }
  }
};

EMParams make_params(const Fixture& f, int g, int fixed_passes = 0) {
  EMParams p;
  p.g = g;
  p.dim = f.data.dim;
  p.initial_means.assign(
      f.all_points.begin(),
      f.all_points.begin() + static_cast<std::ptrdiff_t>(g * f.data.dim));
  p.fixed_passes = fixed_passes;
  return p;
}

TEST(EM, ObjectSerializationRoundTrip) {
  EMObject o(2, 2);
  o.resp = {1.5, 2.5};
  o.sum_x = {1, 2, 3, 4};
  o.sum_x2 = {5, 6, 7, 8};
  o.loglik = -42.0;
  o.points = 10;
  o.labels[3] = {0, 1, 1, 0};
  util::ByteWriter w;
  o.serialize(w);
  EMObject back;
  util::ByteReader r(w.bytes());
  back.deserialize(r);
  EXPECT_EQ(back.resp, o.resp);
  EXPECT_EQ(back.sum_x2, o.sum_x2);
  EXPECT_EQ(back.labels, o.labels);
  EXPECT_EQ(back.points, 10u);
}

TEST(EM, RejectsBadParams) {
  EMParams p;
  p.g = 2;
  p.dim = 2;
  p.initial_means = {1.0};
  EXPECT_THROW(EMKernel{p}, util::Error);
}

TEST(EM, LogLikelihoodMonotone) {
  Fixture f;
  EMKernel kernel(make_params(f, 3, 8));
  auto setup = ideal_setup(&f.data.dataset, 1, 2);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  const auto& hist = kernel.loglik_history();
  ASSERT_GE(hist.size(), 2u);
  // EM guarantees monotone non-decreasing log-likelihood.
  for (std::size_t i = 1; i < hist.size(); ++i)
    EXPECT_GE(hist[i], hist[i - 1] - 1e-6 * std::abs(hist[i - 1]));
}

TEST(EM, MatchesSerialReference) {
  Fixture f;
  const auto params = make_params(f, 3, 6);
  EMKernel kernel(params);
  auto setup = ideal_setup(&f.data.dataset, 2, 4);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);

  const auto ref_hist =
      em_reference(f.all_points, f.data.dim, 3, params.initial_means,
                   params.initial_variance, -1.0, 6);
  ASSERT_EQ(kernel.loglik_history().size(), ref_hist.size());
  for (std::size_t i = 0; i < ref_hist.size(); ++i)
    EXPECT_NEAR(kernel.loglik_history()[i], ref_hist[i],
                1e-6 * std::abs(ref_hist[i]));
}

TEST(EM, ResultInvariantAcrossConfigs) {
  Fixture f;
  const auto params = make_params(f, 3, 5);
  std::vector<double> baseline;
  for (const auto& [n, c] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 3}, {4, 8}}) {
    EMKernel kernel(params);
    auto setup = ideal_setup(&f.data.dataset, n, c);
    freeride::Runtime runtime;
    runtime.run(setup, kernel);
    if (baseline.empty()) {
      baseline = kernel.means();
    } else {
      ASSERT_EQ(kernel.means().size(), baseline.size());
      for (std::size_t i = 0; i < baseline.size(); ++i)
        EXPECT_NEAR(kernel.means()[i], baseline[i],
                    1e-7 * std::max(1.0, std::abs(baseline[i])));
    }
  }
}

TEST(EM, LabelsCoverEveryPoint) {
  Fixture f;
  EMKernel kernel(make_params(f, 3, 2));
  auto setup = ideal_setup(&f.data.dataset, 1, 4);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const EMObject&>(*result.result);
  std::size_t labelled = 0;
  for (const auto& [chunk_id, lbls] : obj.labels) labelled += lbls.size();
  EXPECT_EQ(labelled, 2000u);
  EXPECT_EQ(obj.points, 2000u);
}

TEST(EM, LabelChangeFractionDecaysAsItConverges) {
  Fixture f;
  EMKernel kernel(make_params(f, 3, 12));
  auto setup = ideal_setup(&f.data.dataset, 1, 1);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  // After many passes assignments are essentially frozen.
  EXPECT_LT(kernel.label_change_fraction(), 0.02);
}

TEST(EM, ObjectSizeTracksLocalData) {
  Fixture f;
  // With more compute nodes, each node's object holds fewer labels.
  auto object_size = [&f](int c) {
    EMKernel kernel(make_params(f, 3, 1));
    auto setup = ideal_setup(&f.data.dataset, 1, c);
    freeride::Runtime runtime;
    return runtime.run(setup, kernel).timing.max_object_bytes;
  };
  const double at_1 = object_size(1);
  const double at_4 = object_size(4);
  EXPECT_GT(at_1, 2.5 * at_4);
  EXPECT_TRUE(EMKernel(make_params(f, 3)).reduction_object_scales_with_data());
}

TEST(EM, ConvergesUnderTolerance) {
  Fixture f;
  auto params = make_params(f, 3);
  params.tol = 1e-4;
  EMKernel kernel(params);
  auto setup = ideal_setup(&f.data.dataset, 1, 1);
  setup.config.max_passes = 60;
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  EXPECT_LT(result.passes, 60);
}

TEST(EM, RecoversPlantedComponents) {
  Fixture f(11, 6000, 2, 2);
  EMKernel kernel(make_params(f, 2, 30));
  auto setup = ideal_setup(&f.data.dataset, 1, 2);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  for (int c = 0; c < 2; ++c) {
    double best = 1e300;
    for (int r = 0; r < 2; ++r) {
      double d2 = 0.0;
      for (int j = 0; j < 2; ++j) {
        const double diff =
            f.data.true_centers[2 * c + j] - kernel.means()[2 * r + j];
        d2 += diff * diff;
      }
      best = std::min(best, d2);
    }
    EXPECT_LT(best, 0.5);
  }
}

TEST(EM, DuplicateChunkInObjectThrows) {
  Fixture f;
  EMKernel kernel(make_params(f, 2));
  auto obj = kernel.create_object();
  kernel.process_chunk(f.data.dataset.chunk(0), *obj);
  EXPECT_THROW(kernel.process_chunk(f.data.dataset.chunk(0), *obj),
               util::Error);
}

TEST(EM, MergeRejectsOverlappingLabelSets) {
  Fixture f;
  EMKernel kernel(make_params(f, 2));
  auto a = kernel.create_object();
  auto b = kernel.create_object();
  kernel.process_chunk(f.data.dataset.chunk(0), *a);
  kernel.process_chunk(f.data.dataset.chunk(0), *b);
  EXPECT_THROW(kernel.merge(*a, *b), util::Error);
}

}  // namespace
}  // namespace fgp::apps
