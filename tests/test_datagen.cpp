// Tests for the synthetic dataset generators: reproducibility, structural
// invariants, and parseability of the chunk formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "datagen/flowfield.h"
#include "datagen/lattice.h"
#include "datagen/points.h"

namespace fgp::datagen {
namespace {

/// Byte equality of two payload views (std::span has no operator==).
bool same_payload(const repository::Chunk& a, const repository::Chunk& b) {
  const auto pa = a.payload();
  const auto pb = b.payload();
  return pa.size() == pb.size() && std::equal(pa.begin(), pa.end(), pb.begin());
}

// ----------------------------------------------------------------- points

TEST(Points, GeneratesRequestedShape) {
  PointsSpec spec;
  spec.num_points = 2500;
  spec.dim = 4;
  spec.points_per_chunk = 1000;
  const auto out = generate_points(spec);
  EXPECT_EQ(out.num_points, 2500u);
  EXPECT_EQ(out.dataset.chunk_count(), 3u);  // 1000 + 1000 + 500
  std::size_t total = 0;
  for (const auto& c : out.dataset.chunks())
    total += c.as_span<double>().size() / 4;
  EXPECT_EQ(total, 2500u);
}

TEST(Points, DeterministicForSameSeed) {
  PointsSpec spec;
  spec.seed = 77;
  const auto a = generate_points(spec);
  const auto b = generate_points(spec);
  ASSERT_EQ(a.dataset.chunk_count(), b.dataset.chunk_count());
  for (std::size_t i = 0; i < a.dataset.chunk_count(); ++i)
    EXPECT_EQ(a.dataset.chunk(i).checksum(), b.dataset.chunk(i).checksum());
  EXPECT_EQ(a.true_centers, b.true_centers);
}

TEST(Points, ParallelGenerationBitIdentical) {
  PointsSpec spec;
  spec.num_points = 5500;
  spec.points_per_chunk = 500;
  spec.seed = 99;
  const auto serial = generate_points(spec);
  for (int threads : {2, 3, 8}) {
    spec.threads = threads;
    const auto parallel = generate_points(spec);
    ASSERT_EQ(serial.dataset.chunk_count(), parallel.dataset.chunk_count());
    for (std::size_t i = 0; i < serial.dataset.chunk_count(); ++i) {
      EXPECT_TRUE(
          same_payload(serial.dataset.chunk(i), parallel.dataset.chunk(i)))
          << "chunk " << i << " differs at threads=" << threads;
    }
  }
}

TEST(Points, ParallelLabeledGenerationBitIdentical) {
  PointsSpec spec;
  spec.num_points = 3200;
  spec.points_per_chunk = 300;  // ragged final chunk
  spec.seed = 12;
  const auto serial = generate_labeled_points(spec);
  spec.threads = 4;
  const auto parallel = generate_labeled_points(spec);
  ASSERT_EQ(serial.dataset.chunk_count(), parallel.dataset.chunk_count());
  for (std::size_t i = 0; i < serial.dataset.chunk_count(); ++i)
    EXPECT_TRUE(
        same_payload(serial.dataset.chunk(i), parallel.dataset.chunk(i)));
}

TEST(Points, DifferentSeedsDiffer) {
  PointsSpec spec;
  spec.seed = 1;
  const auto a = generate_points(spec);
  spec.seed = 2;
  const auto b = generate_points(spec);
  EXPECT_NE(a.dataset.chunk(0).checksum(), b.dataset.chunk(0).checksum());
}

TEST(Points, TrueCentersHaveRightShape) {
  PointsSpec spec;
  spec.num_components = 5;
  spec.dim = 3;
  const auto out = generate_points(spec);
  EXPECT_EQ(out.true_centers.size(), 15u);
}

TEST(Points, PointsClusterAroundPlantedCenters) {
  PointsSpec spec;
  spec.num_points = 4000;
  spec.dim = 2;
  spec.num_components = 2;
  spec.center_box = 20.0;
  spec.noise_sigma = 0.5;
  spec.seed = 5;
  const auto out = generate_points(spec);
  // Every point must be close to one of the two planted centres.
  for (const auto& chunk : out.dataset.chunks()) {
    const auto pts = chunk.as_span<double>();
    for (std::size_t p = 0; p + 1 < pts.size(); p += 2) {
      double best = 1e300;
      for (int c = 0; c < 2; ++c) {
        const double dx = pts[p] - out.true_centers[2 * c];
        const double dy = pts[p + 1] - out.true_centers[2 * c + 1];
        best = std::min(best, dx * dx + dy * dy);
      }
      EXPECT_LT(best, 25.0);  // 10 sigma
    }
  }
}

TEST(Points, ScaledSpecMatchesVirtualSize) {
  const auto spec = scaled_points_spec(1400.0, 4.0, 8, 42);
  const auto out = generate_points(spec);
  EXPECT_NEAR(out.dataset.total_virtual_bytes(), 1400e6,
              1400e6 * 0.01);  // within 1%
  EXPECT_LT(out.dataset.total_real_bytes(), 5e6);
}

// -------------------------------------------------------------- flowfield

TEST(Flow, ChunksCoverAllRowsExactlyOnce) {
  FlowSpec spec;
  spec.height = 100;
  spec.rows_per_chunk = 16;
  const auto out = generate_flowfield(spec);
  std::set<std::uint32_t> owned;
  for (const auto& chunk : out.dataset.chunks()) {
    const auto view = parse_field_chunk(chunk);
    for (std::uint32_t r = 0; r < view.header.rows; ++r) {
      const auto [it, inserted] = owned.insert(view.header.row0 + r);
      EXPECT_TRUE(inserted) << "row owned twice";
    }
  }
  EXPECT_EQ(owned.size(), 100u);
}

TEST(Flow, HaloRowsMatchNeighbourChunks) {
  FlowSpec spec;
  spec.height = 64;
  spec.rows_per_chunk = 16;
  spec.seed = 3;
  const auto out = generate_flowfield(spec);
  // The halo row below chunk k's band equals the first owned row of
  // chunk k+1, bit for bit.
  for (std::size_t k = 0; k + 1 < out.dataset.chunk_count(); ++k) {
    const auto a = parse_field_chunk(out.dataset.chunk(k));
    const auto b = parse_field_chunk(out.dataset.chunk(k + 1));
    const std::uint32_t shared_row = b.header.row0;
    for (std::uint32_t x = 0; x < a.header.width; ++x) {
      EXPECT_EQ(a.at(shared_row, x).u, b.at(shared_row, x).u);
      EXPECT_EQ(a.at(shared_row, x).v, b.at(shared_row, x).v);
    }
  }
}

TEST(Flow, PlantedVorticesStayInBounds) {
  FlowSpec spec;
  const auto out = generate_flowfield(spec);
  EXPECT_EQ(out.vortices.size(), static_cast<std::size_t>(spec.num_vortices));
  for (const auto& v : out.vortices) {
    EXPECT_GE(v.cx, 0.0);
    EXPECT_LT(v.cx, spec.width);
    EXPECT_GE(v.cy, 0.0);
    EXPECT_LT(v.cy, spec.height);
    EXPECT_GE(v.core_radius, spec.min_radius);
    EXPECT_LE(v.core_radius, spec.max_radius);
  }
}

TEST(Flow, Deterministic) {
  FlowSpec spec;
  spec.seed = 9;
  const auto a = generate_flowfield(spec);
  const auto b = generate_flowfield(spec);
  for (std::size_t i = 0; i < a.dataset.chunk_count(); ++i)
    EXPECT_EQ(a.dataset.chunk(i).checksum(), b.dataset.chunk(i).checksum());
}

TEST(Flow, MalformedChunkRejected) {
  const auto chunk = repository::make_chunk<std::uint8_t>(0, {1, 2, 3});
  EXPECT_THROW(parse_field_chunk(chunk), util::Error);
}

// ---------------------------------------------------------------- lattice

TEST(Lattice, SlabsCoverAllPlanes) {
  LatticeSpec spec;
  spec.nz = 50;
  spec.zslabs_per_chunk = 8;
  const auto out = generate_lattice(spec);
  std::set<std::uint32_t> planes;
  for (const auto& chunk : out.dataset.chunks()) {
    const auto view = parse_lattice_chunk(chunk);
    for (std::uint32_t z = 0; z < view.header.zslabs; ++z)
      EXPECT_TRUE(planes.insert(view.header.z0 + z).second);
  }
  EXPECT_EQ(planes.size(), 50u);
}

TEST(Lattice, AtomCountReflectsPlantedDefects) {
  LatticeSpec spec;
  spec.num_vacancy_clusters = 2;
  spec.num_interstitials = 2;
  spec.num_displaced_clusters = 0;
  spec.seed = 21;
  const auto out = generate_lattice(spec);
  std::size_t atoms = 0;
  for (const auto& chunk : out.dataset.chunks())
    atoms += parse_lattice_chunk(chunk).atoms.size();
  std::size_t vacancy_cells = 0, interstitial_cells = 0;
  for (const auto& d : out.defects) {
    if (d.kind == DefectKind::Vacancy) vacancy_cells += d.cells.size();
    if (d.kind == DefectKind::Interstitial)
      interstitial_cells += d.cells.size();
  }
  const std::size_t sites = static_cast<std::size_t>(spec.nx) * spec.ny *
                            spec.nz;
  EXPECT_EQ(atoms, sites - vacancy_cells + interstitial_cells);
}

TEST(Lattice, PlantedDefectsAreSeparated) {
  LatticeSpec spec;
  spec.seed = 33;
  const auto out = generate_lattice(spec);
  // No two planted defects may own adjacent cells (halo reservation).
  std::set<std::array<int, 3>> all;
  for (const auto& d : out.defects)
    for (const auto& c : d.cells) EXPECT_TRUE(all.insert(c).second);
  for (std::size_t i = 0; i < out.defects.size(); ++i) {
    for (std::size_t j = i + 1; j < out.defects.size(); ++j) {
      for (const auto& a : out.defects[i].cells) {
        for (const auto& b : out.defects[j].cells) {
          const int dist = std::abs(a[0] - b[0]) + std::abs(a[1] - b[1]) +
                           std::abs(a[2] - b[2]);
          EXPECT_GT(dist, 1) << "planted defects touch";
        }
      }
    }
  }
}

TEST(Lattice, ThermalNoiseStaysUnderTolerance) {
  LatticeSpec spec;
  spec.num_vacancy_clusters = 0;
  spec.num_interstitials = 0;
  spec.num_displaced_clusters = 0;
  spec.thermal_sigma = 0.02;
  const auto out = generate_lattice(spec);
  for (const auto& chunk : out.dataset.chunks()) {
    const auto view = parse_lattice_chunk(chunk);
    for (const auto& a : view.atoms) {
      const double dx = a.x - std::lround(a.x);
      const double dy = a.y - std::lround(a.y);
      const double dz = a.z - std::lround(a.z);
      EXPECT_LT(dx * dx + dy * dy + dz * dz,
                view.header.displacement_tol * view.header.displacement_tol);
    }
  }
}

TEST(Lattice, Deterministic) {
  LatticeSpec spec;
  spec.seed = 44;
  const auto a = generate_lattice(spec);
  const auto b = generate_lattice(spec);
  ASSERT_EQ(a.dataset.chunk_count(), b.dataset.chunk_count());
  for (std::size_t i = 0; i < a.dataset.chunk_count(); ++i)
    EXPECT_EQ(a.dataset.chunk(i).checksum(), b.dataset.chunk(i).checksum());
}

TEST(Lattice, ParallelGenerationBitIdentical) {
  LatticeSpec spec;
  spec.nz = 50;  // ragged final slab with zslabs_per_chunk = 6
  spec.seed = 44;
  const auto serial = generate_lattice(spec);
  for (int threads : {2, 8}) {
    spec.threads = threads;
    const auto parallel = generate_lattice(spec);
    ASSERT_EQ(serial.dataset.chunk_count(), parallel.dataset.chunk_count());
    for (std::size_t i = 0; i < serial.dataset.chunk_count(); ++i) {
      EXPECT_TRUE(
          same_payload(serial.dataset.chunk(i), parallel.dataset.chunk(i)))
          << "slab " << i << " differs at threads=" << threads;
    }
  }
}

TEST(Lattice, MalformedChunkRejected) {
  const auto chunk = repository::make_chunk<std::uint8_t>(0, {1});
  EXPECT_THROW(parse_lattice_chunk(chunk), util::Error);
}

}  // namespace
}  // namespace fgp::datagen
