// Tests for the neural-network application: gradient-descent training on
// the middleware, agreement with the serial reference, loss behaviour,
// classification accuracy on planted mixtures, and the k-NN classifier
// (both consume the labeled-points generator).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/ann.h"
#include "apps/knn_classify.h"
#include "datagen/points.h"
#include "helpers.h"

namespace fgp::apps {
namespace {

using fgp::testing::ideal_setup;

struct Fixture {
  datagen::LabeledPointsDataset data;
  std::vector<double> all_rows;

  explicit Fixture(std::uint64_t seed = 42, std::uint64_t n = 1600,
                   int dim = 4, int classes = 3) {
    datagen::PointsSpec spec;
    spec.num_points = n;
    spec.dim = dim;
    spec.num_components = classes;
    spec.points_per_chunk = 200;
    spec.center_box = 8.0;
    spec.noise_sigma = 0.6;
    spec.seed = seed;
    data = datagen::generate_labeled_points(spec);
    for (const auto& chunk : data.dataset.chunks()) {
      const auto rows = chunk.as_span<double>();
      all_rows.insert(all_rows.end(), rows.begin(), rows.end());
    }
  }
};

AnnParams ann_params(const Fixture& f, int passes = 15) {
  AnnParams p;
  p.dim = f.data.dim;
  p.classes = f.data.num_classes;
  p.hidden = 12;
  p.fixed_passes = passes;
  return p;
}

// -------------------------------------------------------- labeled points

TEST(LabeledPoints, RowsCarryValidLabels) {
  Fixture f;
  const std::size_t row = static_cast<std::size_t>(f.data.dim) + 1;
  ASSERT_EQ(f.all_rows.size() % row, 0u);
  for (std::size_t p = 0; p * row < f.all_rows.size(); ++p) {
    const double label = f.all_rows[p * row];
    EXPECT_EQ(label, std::floor(label));
    EXPECT_GE(label, 0.0);
    EXPECT_LT(label, f.data.num_classes);
  }
}

TEST(LabeledPoints, LabelsMatchNearestPlantedCenter) {
  Fixture f;
  const std::size_t row = static_cast<std::size_t>(f.data.dim) + 1;
  const std::size_t d = static_cast<std::size_t>(f.data.dim);
  std::size_t agree = 0, total = 0;
  for (std::size_t p = 0; p * row < f.all_rows.size(); ++p) {
    const double* r = f.all_rows.data() + p * row;
    double best = 1e300;
    std::size_t best_c = 0;
    for (int c = 0; c < f.data.num_classes; ++c) {
      double dist = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff =
            r[1 + j] - f.data.true_centers[static_cast<std::size_t>(c) * d + j];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_c = static_cast<std::size_t>(c);
      }
    }
    agree += static_cast<double>(best_c) == r[0];
    ++total;
  }
  // Well-separated mixtures: nearly every point is closest to its own
  // component's centre.
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.95);
}

// -------------------------------------------------------------------- ann

TEST(Ann, RejectsBadParams) {
  AnnParams p;
  p.classes = 1;
  EXPECT_THROW(AnnKernel{p}, util::Error);
}

TEST(Ann, LossDecreasesOverTraining) {
  Fixture f;
  AnnKernel kernel(ann_params(f));
  auto setup = ideal_setup(&f.data.dataset, 1, 2);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  const auto& hist = kernel.loss_history();
  ASSERT_GE(hist.size(), 10u);
  EXPECT_LT(hist.back(), hist.front());
  EXPECT_LT(hist.back(), 0.8 * hist.front());
}

TEST(Ann, MatchesSerialReference) {
  Fixture f;
  const auto params = ann_params(f, 8);
  AnnKernel kernel(params);
  auto setup = ideal_setup(&f.data.dataset, 2, 4);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);
  const auto ref = ann_reference(f.all_rows, params);
  ASSERT_EQ(kernel.loss_history().size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(kernel.loss_history()[i], ref[i], 1e-8 * std::abs(ref[i]) + 1e-10);
}

TEST(Ann, InvariantAcrossConfigs) {
  Fixture f;
  const auto params = ann_params(f, 6);
  std::vector<double> baseline;
  for (const auto& [n, c] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 4}, {4, 8}}) {
    AnnKernel kernel(params);
    auto setup = ideal_setup(&f.data.dataset, n, c);
    freeride::Runtime runtime;
    runtime.run(setup, kernel);
    if (baseline.empty()) {
      baseline = kernel.loss_history();
    } else {
      for (std::size_t i = 0; i < baseline.size(); ++i)
        EXPECT_NEAR(kernel.loss_history()[i], baseline[i],
                    1e-8 * std::abs(baseline[i]));
    }
  }
}

TEST(Ann, LearnsToClassifyPlantedMixture) {
  Fixture f(7, 2400, 4, 3);
  auto params = ann_params(f, 40);
  AnnKernel kernel(params);
  auto setup = ideal_setup(&f.data.dataset, 1, 4);
  freeride::Runtime runtime;
  runtime.run(setup, kernel);

  const std::size_t row = static_cast<std::size_t>(f.data.dim) + 1;
  std::size_t correct = 0, total = 0;
  for (std::size_t p = 0; p * row < f.all_rows.size(); ++p) {
    const double* r = f.all_rows.data() + p * row;
    correct += kernel.predict(r + 1) == static_cast<std::int32_t>(r[0]);
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

TEST(Ann, ObjectSerializationRoundTrip) {
  AnnObject o(2, 3, 2);
  o.grad_w1 = {1, 2, 3, 4, 5, 6};
  o.grad_b2 = {7, 8};
  o.loss = 4.5;
  o.examples = 12;
  util::ByteWriter w;
  o.serialize(w);
  AnnObject back;
  util::ByteReader r(w.bytes());
  back.deserialize(r);
  EXPECT_EQ(back.grad_w1, o.grad_w1);
  EXPECT_EQ(back.grad_b2, o.grad_b2);
  EXPECT_EQ(back.examples, 12u);
}

TEST(Ann, ConstantObjectSize) {
  Fixture f;
  auto object_size = [&f](int c) {
    AnnKernel kernel(ann_params(f, 1));
    auto setup = ideal_setup(&f.data.dataset, 1, c);
    freeride::Runtime runtime;
    return runtime.run(setup, kernel).timing.max_object_bytes;
  };
  EXPECT_DOUBLE_EQ(object_size(1), object_size(8));
}

// ----------------------------------------------------------- knn classify

TEST(KnnClassify, MatchesReferenceExactly) {
  Fixture f;
  KnnClassifyParams params;
  params.k = 7;
  params.dim = f.data.dim;
  // Queries: the planted centres themselves plus an off-grid point.
  params.queries = f.data.true_centers;
  for (int j = 0; j < f.data.dim; ++j) params.queries.push_back(2.5 + j);

  KnnClassifyKernel kernel(params);
  auto setup = ideal_setup(&f.data.dataset, 2, 4);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const KnnClassifyObject&>(*result.result);

  const std::size_t m = params.queries.size() / static_cast<std::size_t>(f.data.dim);
  ASSERT_EQ(obj.predicted.size(), m);
  for (std::size_t q = 0; q < m; ++q) {
    const auto ref = knn_classify_reference(
        f.all_rows, f.data.dim,
        params.queries.data() + q * static_cast<std::size_t>(f.data.dim),
        params.k);
    EXPECT_EQ(obj.predicted[q], ref) << "query " << q;
  }
}

TEST(KnnClassify, CentersClassifyAsTheirOwnComponent) {
  Fixture f;
  KnnClassifyParams params;
  params.k = 9;
  params.dim = f.data.dim;
  params.queries = f.data.true_centers;
  KnnClassifyKernel kernel(params);
  auto setup = ideal_setup(&f.data.dataset, 1, 2);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const KnnClassifyObject&>(*result.result);
  for (int c = 0; c < f.data.num_classes; ++c)
    EXPECT_EQ(obj.predicted[static_cast<std::size_t>(c)], c);
}

TEST(KnnClassify, InvariantAcrossConfigs) {
  Fixture f;
  KnnClassifyParams params;
  params.k = 5;
  params.dim = f.data.dim;
  params.queries = f.data.true_centers;
  std::vector<std::int32_t> baseline;
  for (const auto& [n, c] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 2}, {4, 8}}) {
    KnnClassifyKernel kernel(params);
    auto setup = ideal_setup(&f.data.dataset, n, c);
    freeride::Runtime runtime;
    const auto result = runtime.run(setup, kernel);
    const auto& obj = dynamic_cast<const KnnClassifyObject&>(*result.result);
    if (baseline.empty())
      baseline = obj.predicted;
    else
      EXPECT_EQ(obj.predicted, baseline);
  }
}

TEST(KnnClassify, ObjectSerializationRoundTrip) {
  KnnClassifyObject o(2, 3);
  o.insert(0, 1.0, 7);
  o.insert(1, 2.0, 9);
  o.predicted = {7, 9};
  util::ByteWriter w;
  o.serialize(w);
  KnnClassifyObject back;
  util::ByteReader r(w.bytes());
  back.deserialize(r);
  EXPECT_EQ(back.labels[0], 7);
  EXPECT_EQ(back.predicted, o.predicted);
}

TEST(KnnClassify, RejectsBadParams) {
  KnnClassifyParams p;
  p.dim = 3;
  p.queries = {1.0};  // not a multiple of dim
  EXPECT_THROW(KnnClassifyKernel{p}, util::Error);
}

}  // namespace
}  // namespace fgp::apps
