// Tests for the cluster-of-SMPs support: intra-node threading, the three
// shared-memory strategies, and the thread-aware prediction model.
#include <gtest/gtest.h>

#include "apps/kmeans.h"
#include "core/ipc_probe.h"
#include "core/predictor.h"
#include "core/profile.h"
#include "datagen/points.h"
#include "freeride/runtime.h"
#include "helpers.h"
#include "util/stats.h"

namespace fgp::freeride {
namespace {

using fgp::testing::SumKernel;
using fgp::testing::SumKernelParams;
using fgp::testing::expected_sum;
using fgp::testing::ideal_setup;
using fgp::testing::make_sum_dataset;

JobSetup smp_setup(const repository::ChunkedDataset* ds, int n, int c,
                   int threads, SmpStrategy strategy) {
  auto setup = ideal_setup(ds, n, c);
  setup.config.threads_per_node = threads;
  setup.config.smp_strategy = strategy;
  return setup;
}

TEST(Smp, ConfigValidatesThreadCount) {
  JobConfig cfg;
  cfg.threads_per_node = 0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg.threads_per_node = 4;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Smp, RejectsMoreThreadsThanCores) {
  const auto ds = make_sum_dataset(8, 32);
  auto setup = ideal_setup(&ds, 1, 1);
  setup.compute_cluster.machine.cores = 2;
  setup.config.threads_per_node = 4;
  SumKernel kernel;
  Runtime runtime;
  EXPECT_THROW(runtime.run(setup, kernel), util::Error);
}

class SmpStrategySweep : public ::testing::TestWithParam<
                             std::tuple<SmpStrategy, int>> {};

TEST_P(SmpStrategySweep, ResultIdenticalUnderEveryStrategy) {
  const auto [strategy, threads] = GetParam();
  const auto ds = make_sum_dataset(24, 64);
  auto setup = smp_setup(&ds, 2, 4, threads, strategy);
  SumKernel kernel;
  Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj =
      dynamic_cast<const fgp::testing::SumObject&>(*result.result);
  EXPECT_DOUBLE_EQ(obj.sum, expected_sum(24, 64));
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SmpStrategySweep,
    ::testing::Combine(::testing::Values(SmpStrategy::FullReplication,
                                         SmpStrategy::FullLocking,
                                         SmpStrategy::CacheSensitiveLocking),
                       ::testing::Values(1, 2, 4)));

TEST(Smp, ThreadsShrinkLocalComputeTime) {
  const auto ds = make_sum_dataset(32, 128);
  Runtime runtime;
  double prev = 1e300;
  for (int t : {1, 2, 4, 8}) {
    auto setup =
        smp_setup(&ds, 1, 2, t, SmpStrategy::FullReplication);
    SumKernel kernel;
    const auto timing = runtime.run(setup, kernel).timing.total;
    EXPECT_LT(timing.compute_local, prev) << t << " threads";
    prev = timing.compute_local;
  }
}

TEST(Smp, ReplicationNearlyPerfectOnIdealCluster) {
  const auto ds = make_sum_dataset(32, 128);
  Runtime runtime;
  auto time_with = [&](int t) {
    auto setup = smp_setup(&ds, 1, 2, t, SmpStrategy::FullReplication);
    SumKernel kernel;
    return runtime.run(setup, kernel).timing.total.compute_local;
  };
  // 32 chunks over 2 nodes over 4 threads divide evenly; merges are free
  // for the SumKernel, so the speedup is exactly 4.
  EXPECT_NEAR(time_with(1) / time_with(4), 4.0, 1e-9);
}

TEST(Smp, LockingPaysContention) {
  const auto ds = make_sum_dataset(32, 128);
  Runtime runtime;
  auto time_with = [&](SmpStrategy s) {
    auto setup = smp_setup(&ds, 1, 2, 4, s);
    SumKernel kernel;
    return runtime.run(setup, kernel).timing.total.compute_local;
  };
  const double replication = time_with(SmpStrategy::FullReplication);
  const double cache_sensitive = time_with(SmpStrategy::CacheSensitiveLocking);
  const double full_locking = time_with(SmpStrategy::FullLocking);
  EXPECT_LT(replication, cache_sensitive);
  EXPECT_LT(cache_sensitive, full_locking);
}

TEST(Smp, ReplicationChargesIntraNodeCombine) {
  // With non-zero merge work, replication must cost more than the raw
  // per-thread split.
  const auto ds = make_sum_dataset(32, 128);
  SumKernelParams params;
  params.merge_flops = 1e6;
  Runtime runtime;
  auto setup1 = smp_setup(&ds, 1, 1, 1, SmpStrategy::FullReplication);
  auto setup4 = smp_setup(&ds, 1, 1, 4, SmpStrategy::FullReplication);
  SumKernel k1(params), k4(params);
  const double t1 = runtime.run(setup1, k1).timing.total.compute_local;
  const double t4 = runtime.run(setup4, k4).timing.total.compute_local;
  EXPECT_GT(t4, t1 / 4.0);  // combine overhead breaks perfect speedup
}

TEST(Smp, PredictorScalesWithThreads) {
  // Profile single-threaded; predict a multi-threaded configuration on the
  // frictionless grid: the thread-aware model must be exact.
  const auto ds = make_sum_dataset(32, 128);
  auto profile_setup = smp_setup(&ds, 1, 2, 1, SmpStrategy::FullReplication);
  profile_setup.wan = sim::wan_ideal(50.0);
  SumKernel profile_kernel;
  const core::Profile profile =
      core::ProfileCollector::collect(profile_setup, profile_kernel);
  EXPECT_EQ(profile.config.threads_per_node, 1);

  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.ipc = core::measure_ipc(profile_setup.compute_cluster);
  const core::Predictor predictor(profile, opts);

  auto target_setup = smp_setup(&ds, 1, 4, 4, SmpStrategy::FullReplication);
  target_setup.wan = sim::wan_ideal(50.0);
  SumKernel target_kernel;
  const auto actual = freeride::Runtime().run(target_setup, target_kernel);

  core::ProfileConfig target = profile.config;
  target.compute_nodes = 4;
  target.threads_per_node = 4;
  const auto predicted = predictor.predict(target);
  EXPECT_NEAR(predicted.compute, actual.timing.total.compute(),
              1e-9 * std::max(1.0, actual.timing.total.compute()));
}

TEST(Smp, KMeansCorrectUnderThreads) {
  datagen::PointsSpec spec;
  spec.num_points = 2000;
  spec.dim = 3;
  spec.points_per_chunk = 125;
  spec.seed = 9;
  const auto data = datagen::generate_points(spec);

  apps::KMeansParams params;
  params.k = 3;
  params.dim = 3;
  params.initial_centers =
      apps::initial_centers_from_dataset(data.dataset, 3, 3);
  params.fixed_passes = 5;

  std::vector<double> baseline;
  for (const auto strategy :
       {SmpStrategy::FullReplication, SmpStrategy::FullLocking}) {
    apps::KMeansKernel kernel(params);
    auto setup = smp_setup(&data.dataset, 1, 2, 4, strategy);
    Runtime runtime;
    runtime.run(setup, kernel);
    if (baseline.empty()) {
      baseline = kernel.centers();
    } else {
      for (std::size_t i = 0; i < baseline.size(); ++i)
        EXPECT_NEAR(kernel.centers()[i], baseline[i], 1e-8);
    }
  }
}

TEST(Smp, OpteronIsDualCore) {
  EXPECT_EQ(sim::opteron250().cores, 2);
  EXPECT_EQ(sim::pentium700().cores, 1);
}

}  // namespace
}  // namespace fgp::freeride
