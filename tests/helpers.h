// helpers.h — shared test fixtures: a fully controllable synthetic
// reduction kernel plus ideal-cluster job setups under which the paper's
// global-reduction predictor must be exact.
#pragma once

#include <memory>
#include <numeric>
#include <vector>

#include "freeride/runtime.h"
#include "repository/dataset.h"
#include "sim/cluster.h"
#include "sim/network.h"

namespace fgp::testing {

/// Reduction object of the SumKernel: a running sum plus optional ballast
/// bytes that make the serialized size either constant or proportional to
/// the data processed.
class SumObject final : public freeride::ReductionObject {
 public:
  void serialize(util::ByteWriter& w) const override {
    w.put_f64(sum);
    w.put_u64(count);
    w.put_vector(ballast);
  }
  void deserialize(util::ByteReader& r) override {
    sum = r.get_f64();
    count = r.get_u64();
    ballast = r.get_vector<std::uint8_t>();
  }

  double sum = 0.0;
  std::uint64_t count = 0;
  std::vector<std::uint8_t> ballast;
};

struct SumKernelParams {
  double flops_per_element = 10.0;
  double bytes_per_element = 8.0;
  int passes = 1;
  /// Constant ballast added once per object (constant-size class).
  std::size_t constant_ballast = 0;
  /// Ballast bytes appended per processed element (linear-size class).
  double ballast_per_element = 0.0;
  bool scales_with_data = false;
  /// Work charged per merge and per global reduction (usually zero so the
  /// exactness property tests have T_g == 0).
  double merge_flops = 0.0;
  double global_flops = 0.0;
};

/// Sums the doubles in every chunk. Fully deterministic work accounting,
/// controllable object size — the test double for runtime and predictor.
class SumKernel final : public freeride::ReductionKernel {
 public:
  explicit SumKernel(SumKernelParams params = {}) : params_(params) {}

  std::string name() const override { return "sum"; }

  std::unique_ptr<freeride::ReductionObject> create_object() const override {
    auto obj = std::make_unique<SumObject>();
    obj->ballast.resize(params_.constant_ballast, 0xAB);
    return obj;
  }

  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override {
    auto& o = dynamic_cast<SumObject&>(obj);
    const auto values = chunk.as_span<double>();
    o.sum = std::accumulate(values.begin(), values.end(), o.sum);
    o.count += values.size();
    const auto extra = static_cast<std::size_t>(
        params_.ballast_per_element * static_cast<double>(values.size()));
    o.ballast.resize(o.ballast.size() + extra, 0xCD);
    sim::Work w;
    w.flops = params_.flops_per_element * static_cast<double>(values.size());
    w.bytes = params_.bytes_per_element * static_cast<double>(values.size());
    return w;
  }

  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override {
    auto& a = dynamic_cast<SumObject&>(into);
    const auto& b = dynamic_cast<const SumObject&>(other);
    a.sum += b.sum;
    a.count += b.count;
    // Constant ballast is replicated per node, not additive.
    const std::size_t linear_part =
        b.ballast.size() - std::min(b.ballast.size(), params_.constant_ballast);
    a.ballast.insert(a.ballast.end(), b.ballast.begin(),
                     b.ballast.begin() + static_cast<std::ptrdiff_t>(linear_part));
    return {params_.merge_flops, 0.0};
  }

  sim::Work global_reduce(freeride::ReductionObject&,
                          bool& more_passes) override {
    ++passes_done_;
    more_passes = passes_done_ < params_.passes;
    return {params_.global_flops, 0.0};
  }

  bool reduction_object_scales_with_data() const override {
    return params_.scales_with_data;
  }

  int passes_done() const { return passes_done_; }

 private:
  SumKernelParams params_;
  int passes_done_ = 0;
};

/// A dataset of `chunks` chunks, each holding `per_chunk` doubles equal to
/// their global index (so the expected sum is closed-form).
inline repository::ChunkedDataset make_sum_dataset(std::size_t chunks,
                                                   std::size_t per_chunk,
                                                   double virtual_scale = 1.0) {
  repository::DatasetMeta meta;
  meta.name = "sum-data";
  meta.schema = "f64";
  repository::ChunkedDataset ds(meta);
  double next = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::vector<double> values(per_chunk);
    for (auto& v : values) v = next++;
    ds.add_chunk(repository::make_chunk(c, values, virtual_scale));
  }
  return ds;
}

/// Expected sum of make_sum_dataset(chunks, per_chunk): 0 + 1 + ... + N-1.
inline double expected_sum(std::size_t chunks, std::size_t per_chunk) {
  const double n = static_cast<double>(chunks * per_chunk);
  return n * (n - 1.0) / 2.0;
}

/// A frictionless setup: ideal clusters + ideal WAN. Under it the
/// global-reduction predictor is exact for constant-object kernels.
inline freeride::JobSetup ideal_setup(const repository::ChunkedDataset* ds,
                                      int data_nodes, int compute_nodes) {
  freeride::JobSetup setup;
  setup.dataset = ds;
  setup.data_cluster = sim::cluster_ideal();
  setup.compute_cluster = sim::cluster_ideal();
  setup.wan = sim::wan_ideal(100.0);
  setup.config.data_nodes = data_nodes;
  setup.config.compute_nodes = compute_nodes;
  setup.config.verify_chunks = false;
  return setup;
}

/// A realistic setup on the paper's Pentium/Myrinet cluster.
inline freeride::JobSetup pentium_setup(const repository::ChunkedDataset* ds,
                                        int data_nodes, int compute_nodes,
                                        double wan_mbps_value = 80.0) {
  freeride::JobSetup setup;
  setup.dataset = ds;
  setup.data_cluster = sim::cluster_pentium_myrinet();
  setup.compute_cluster = sim::cluster_pentium_myrinet();
  setup.wan = sim::wan_mbps(wan_mbps_value);
  setup.config.data_nodes = data_nodes;
  setup.config.compute_nodes = compute_nodes;
  return setup;
}

}  // namespace fgp::testing
