// Tests for the prediction-as-a-service layer (DESIGN.md §16): sharded
// catalog snapshot semantics, GridCatalog parity, compiled-profile
// caching, batched selection bit-identity across pool sizes, and
// concurrent readers racing snapshot swaps (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ipc_probe.h"
#include "core/selector.h"
#include "grid/catalog.h"
#include "obs/hdr.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "service/config.h"
#include "service/selection_service.h"
#include "service/sharded_catalog.h"
#include "sim/cluster.h"
#include "sim/network.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fgp::service {
namespace {

core::Profile synthetic_profile(const std::string& app,
                                const std::string& cluster) {
  core::Profile p;
  p.app = app;
  p.config.data_nodes = 2;
  p.config.compute_nodes = 4;
  p.config.dataset_bytes = 350e6;
  p.config.bandwidth_Bps = 1e7;
  p.config.data_cluster = cluster;
  p.config.compute_cluster = cluster;
  p.t_disk = 30.0;
  p.t_network = 60.0;
  p.t_compute = 100.0;
  p.t_ro = 5.0;
  p.t_g = 3.0;
  p.object_bytes = 64e3;
  p.passes = 5;
  return p;
}

core::PredictorOptions synthetic_options() {
  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes.ro = core::RoSizeClass::Constant;
  opts.classes.global = core::GlobalReductionClass::LinearConstant;
  return opts;
}

/// Registers the same small grid into both catalog implementations.
template <typename Catalog>
void populate(Catalog& cat) {
  const auto pentium = sim::cluster_pentium_myrinet();
  const auto opteron = sim::cluster_opteron_infiniband();
  cat.register_repository_site({"repo-east", pentium, 8});
  cat.register_repository_site({"repo-west", pentium, 4});
  cat.register_compute_site({"hpc-pentium", pentium, 16});
  cat.register_compute_site({"hpc-opteron", opteron, 16});
  cat.register_link("repo-east", "hpc-pentium", sim::wan_mbps(80));
  cat.register_link("repo-east", "hpc-opteron", sim::wan_mbps(20));
  cat.register_link("repo-west", "hpc-pentium", sim::wan_mbps(30));
  cat.register_replica({"em-data", "repo-east", 4});
  cat.register_replica({"em-data", "repo-west", 2});
  cat.register_replica({"points", "repo-west", 1});
}

std::map<std::string, core::ScalingFactors> opteron_scalers() {
  return {{"opteron-infiniband", core::ScalingFactors{0.8, 0.9, 0.3}}};
}

bool same_candidate(const grid::Candidate& a, const grid::Candidate& b) {
  return a.replica.dataset == b.replica.dataset &&
         a.replica.repository == b.replica.repository &&
         a.replica.storage_nodes == b.replica.storage_nodes &&
         a.compute_site == b.compute_site &&
         a.compute_nodes == b.compute_nodes &&
         a.wan.per_link_Bps == b.wan.per_link_Bps;
}

// ---------------------------------------------------------------------------
// ShardedCatalog

TEST(ShardedCatalog, ShardCountBoundsAreEnforced) {
  EXPECT_THROW(ShardedCatalog(0), util::ConfigError);
  EXPECT_THROW(ShardedCatalog(4097), util::ConfigError);
  // Validation must run before the shard vector is sized: a count this
  // large would otherwise die in allocation (bad_alloc), not ConfigError.
  EXPECT_THROW(ShardedCatalog(std::size_t{1} << 60), util::ConfigError);
  EXPECT_NO_THROW(ShardedCatalog(1));
  EXPECT_NO_THROW(ShardedCatalog(4096));
}

TEST(ShardedCatalog, ShardOfIsStableAndInRange) {
  for (std::size_t shards : {1u, 4u, 16u, 4096u}) {
    EXPECT_EQ(shard_of("em-data", shards), shard_of("em-data", shards));
    EXPECT_LT(shard_of("em-data", shards), shards);
  }
}

TEST(ShardedCatalog, ValidationMatchesGridCatalog) {
  ShardedCatalog cat(4);
  populate(cat);
  EXPECT_THROW(cat.register_compute_site(
                   {"hpc-pentium", sim::cluster_ideal(), 4}),
               util::Error);
  EXPECT_THROW(cat.register_replica({"x", "nope", 1}), util::Error);
  EXPECT_THROW(cat.register_replica({"x", "repo-west", 5}), util::Error);
  EXPECT_THROW(cat.register_link("repo-east", "nope", sim::wan_mbps(10)),
               util::Error);
}

TEST(ShardedCatalog, BulkRegisterIsAllOrNothing) {
  ShardedCatalog cat(4);
  populate(cat);
  const std::size_t before = cat.replica_count();
  std::vector<grid::Replica> batch = {{"ok", "repo-east", 2},
                                      {"bad", "repo-west", 99}};
  EXPECT_THROW(cat.register_replicas(std::move(batch)), util::Error);
  EXPECT_EQ(cat.replica_count(), before);
}

TEST(ShardedCatalog, EnumerationMatchesGridCatalogExactly) {
  grid::GridCatalog flat;
  populate(flat);
  for (std::size_t shards : {1u, 3u, 16u}) {
    ShardedCatalog sharded(shards);
    populate(sharded);
    for (const std::string dataset : {"em-data", "points", "unknown"}) {
      const auto expect = flat.enumerate_candidates(dataset);
      const auto got = ShardedCatalog::enumerate_candidates(
          *sharded.topology(), *sharded.shard_for(dataset), dataset);
      ASSERT_EQ(got.size(), expect.size()) << dataset << " @" << shards;
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(same_candidate(got[i], expect[i]))
            << dataset << " candidate " << i;
    }
  }
}

TEST(ShardedCatalog, SnapshotSurvivesLaterPublishes) {
  ShardedCatalog cat(2);
  populate(cat);
  const auto topo = cat.topology();
  const auto shard = cat.shard_for("em-data");
  const std::size_t replicas_before = shard->replicas_of("em-data").size();
  cat.register_compute_site({"late", sim::cluster_ideal(), 8});
  cat.register_replica({"em-data", "repo-east", 2});
  // The held snapshots still describe the pre-publish catalog...
  EXPECT_EQ(topo->find_compute("late"), nullptr);
  EXPECT_EQ(shard->replicas_of("em-data").size(), replicas_before);
  // ...while fresh loads see the updates (and a bumped version).
  EXPECT_NE(cat.topology()->find_compute("late"), nullptr);
  EXPECT_GT(cat.topology()->version, topo->version);
  EXPECT_EQ(cat.shard_for("em-data")->replicas_of("em-data").size(),
            replicas_before + 1);
}

// ---------------------------------------------------------------------------
// ProfileCache

TEST(ProfileCache, ResolveCompilesOncePerTopologyVersion) {
  ShardedCatalog cat(2);
  populate(cat);
  ProfileCache cache;
  cache.register_app(synthetic_profile("em", "pentium-myrinet"),
                     synthetic_options(), opteron_scalers());
  unsigned long long hits = 0;
  unsigned long long misses = 0;
  const auto topo = cat.topology();
  const auto first = cache.resolve("em", topo, &hits, &misses);
  ASSERT_NE(first, nullptr);
  const auto second = cache.resolve("em", topo, &hits, &misses);
  EXPECT_EQ(first.get(), second.get());  // compiled state reused
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);

  // A topology publish invalidates the compiled state.
  cat.register_compute_site({"late", sim::cluster_opteron_infiniband(), 4});
  const auto third = cache.resolve("em", cat.topology(), &hits, &misses);
  ASSERT_NE(third, nullptr);
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(misses, 2u);
  EXPECT_EQ(third->site_predictors.size(), 3u);
}

TEST(ProfileCache, UnknownAppResolvesNull) {
  ShardedCatalog cat(2);
  populate(cat);
  ProfileCache cache;
  EXPECT_EQ(cache.resolve("nope", cat.topology()), nullptr);
}

TEST(ProfileCache, SitePredictorsMirrorSelectorRules) {
  ShardedCatalog cat(2);
  populate(cat);
  ProfileCache cache;
  // No scalers: the opteron site must be unpredictable, the pentium site
  // predictable without hetero scaling.
  cache.register_app(synthetic_profile("em", "pentium-myrinet"),
                     synthetic_options());
  const auto compiled = cache.resolve("em", cat.topology());
  ASSERT_NE(compiled, nullptr);
  ASSERT_EQ(compiled->site_predictors.size(), 2u);
  EXPECT_TRUE(compiled->site_predictors[0].predictable());
  EXPECT_FALSE(compiled->site_predictors[0].uses_hetero_scaling());
  EXPECT_FALSE(compiled->site_predictors[1].predictable());
}

// ---------------------------------------------------------------------------
// SelectionService

SelectionQuery em_query(double bytes = 700e6, int top_k = 4) {
  SelectionQuery q;
  q.app = "em";
  q.dataset = "em-data";
  q.dataset_bytes = bytes;
  q.top_k = top_k;
  return q;
}

TEST(SelectionService, AgreesWithResourceSelector) {
  grid::GridCatalog flat;
  populate(flat);
  ShardedCatalog sharded(4);
  populate(sharded);

  const auto profile = synthetic_profile("em", "pentium-myrinet");
  // Both engines share one contract: options.ipc is the profile
  // cluster's interconnect, and it seeds the hetero base predictor.
  auto opts = synthetic_options();
  opts.ipc = core::measure_ipc(sim::cluster_pentium_myrinet());
  SelectionService svc(&sharded);
  svc.register_app(profile, opts, opteron_scalers());
  const core::ResourceSelector selector(&flat, profile, opts,
                                        opteron_scalers());

  const auto expect = selector.rank("em-data", 700e6);
  const auto got = svc.query(em_query(700e6, 1 << 20));
  ASSERT_TRUE(got.ok()) << got.error;
  ASSERT_EQ(got.ranked.size(), expect.size());
  for (std::size_t i = 0; i < got.ranked.size(); ++i) {
    EXPECT_TRUE(same_candidate(got.ranked[i].candidate,
                               expect[i].candidate))
        << "rank " << i;
    EXPECT_EQ(got.ranked[i].predicted.total(), expect[i].predicted.total());
    EXPECT_EQ(got.ranked[i].predicted.disk, expect[i].predicted.disk);
    EXPECT_EQ(got.ranked[i].predicted.network, expect[i].predicted.network);
    EXPECT_EQ(got.ranked[i].predicted.compute, expect[i].predicted.compute);
    EXPECT_EQ(got.ranked[i].used_hetero_scaling,
              expect[i].used_hetero_scaling);
  }
}

TEST(SelectionService, BadQueriesFailAloneWithoutThrowing) {
  ShardedCatalog cat(4);
  populate(cat);
  SelectionService svc(&cat);
  svc.register_app(synthetic_profile("em", "pentium-myrinet"),
                   synthetic_options(), opteron_scalers());

  std::vector<SelectionQuery> batch;
  batch.push_back(em_query());                       // ok
  batch.push_back({});                               // empty app/dataset
  batch.push_back({"nope", "em-data", 1e6, 1});      // unknown app
  batch.push_back({"em", "missing", 1e6, 1});        // unknown dataset
  batch.push_back({"em", "em-data", -1.0, 1});       // bad bytes
  batch.push_back({"em", "em-data", 1e6, 0});        // bad top_k
  const auto results = svc.query_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_TRUE(results[0].ok());
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_FALSE(results[i].ok()) << i;
  EXPECT_THROW(results[1].best(), util::Error);
}

TEST(SelectionService, TopKBoundsTheRanking) {
  ShardedCatalog cat(4);
  populate(cat);
  SelectionService svc(&cat);
  svc.register_app(synthetic_profile("em", "pentium-myrinet"),
                   synthetic_options(), opteron_scalers());
  const auto full = svc.query(em_query(700e6, 1 << 20));
  const auto top2 = svc.query(em_query(700e6, 2));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(top2.ok());
  ASSERT_GE(full.ranked.size(), 2u);
  ASSERT_EQ(top2.ranked.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(same_candidate(top2.ranked[i].candidate,
                               full.ranked[i].candidate));
  }
  EXPECT_EQ(full.candidates_considered, top2.candidates_considered);
}

/// Builds a larger catalog + mixed query stream for the determinism and
/// concurrency tests.
struct BigFixture {
  ShardedCatalog catalog{16};
  std::vector<SelectionQuery> queries;

  BigFixture() {
    const auto pentium = sim::cluster_pentium_myrinet();
    const auto opteron = sim::cluster_opteron_infiniband();
    for (int r = 0; r < 4; ++r)
      catalog.register_repository_site(
          {"repo-" + std::to_string(r), pentium, 8});
    for (int c = 0; c < 6; ++c)
      catalog.register_compute_site(
          {"hpc-" + std::to_string(c), c % 2 == 0 ? pentium : opteron, 16});
    for (int r = 0; r < 4; ++r)
      for (int c = 0; c < 6; ++c)
        if ((r + c) % 3 != 0)  // leave some pairs unreachable
          catalog.register_link("repo-" + std::to_string(r),
                                "hpc-" + std::to_string(c),
                                sim::wan_mbps(20.0 + 10.0 * (r + c)));
    std::vector<grid::Replica> replicas;
    for (int d = 0; d < 400; ++d)
      for (int r = 0; r < 1 + d % 3; ++r)
        replicas.push_back({"ds-" + std::to_string(d),
                            "repo-" + std::to_string((d + r) % 4),
                            1 << (d % 3)});
    catalog.register_replicas(std::move(replicas));

    util::Rng rng(2026);
    for (int i = 0; i < 96; ++i) {
      SelectionQuery q;
      q.app = i % 3 == 0 ? "em" : "kmeans";
      q.dataset = "ds-" + std::to_string(rng.next_below(400));
      q.dataset_bytes = rng.uniform(100e6, 4e9);
      q.top_k = 1 + static_cast<int>(rng.next_below(8));
      queries.push_back(std::move(q));
    }
  }

  void register_apps(SelectionService& svc) const {
    auto em_opts = synthetic_options();
    em_opts.classes.ro = core::RoSizeClass::LinearWithData;
    svc.register_app(synthetic_profile("em", "pentium-myrinet"), em_opts,
                     opteron_scalers());
    svc.register_app(synthetic_profile("kmeans", "pentium-myrinet"),
                     synthetic_options(), opteron_scalers());
  }
};

void expect_identical(const std::vector<SelectionResult>& a,
                      const std::vector<SelectionResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].error, b[i].error) << i;
    EXPECT_EQ(a[i].candidates_considered, b[i].candidates_considered) << i;
    ASSERT_EQ(a[i].ranked.size(), b[i].ranked.size()) << i;
    for (std::size_t j = 0; j < a[i].ranked.size(); ++j) {
      EXPECT_TRUE(same_candidate(a[i].ranked[j].candidate,
                                 b[i].ranked[j].candidate))
          << i << "/" << j;
      // Bit-identical predictions, not merely close ones.
      EXPECT_EQ(a[i].ranked[j].predicted.disk, b[i].ranked[j].predicted.disk);
      EXPECT_EQ(a[i].ranked[j].predicted.network,
                b[i].ranked[j].predicted.network);
      EXPECT_EQ(a[i].ranked[j].predicted.compute,
                b[i].ranked[j].predicted.compute);
    }
  }
}

TEST(SelectionService, BatchBitIdenticalSerialVsPools128) {
  const BigFixture fx;
  SelectionService serial(&fx.catalog);
  fx.register_apps(serial);
  const auto reference = serial.query_batch(fx.queries);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    SelectionService pooled(&fx.catalog, &pool);
    fx.register_apps(pooled);
    expect_identical(pooled.query_batch(fx.queries), reference);
  }
}

TEST(SelectionService, DeterministicCountersAreByteIdenticalAcrossPools) {
  const BigFixture fx;
  std::vector<std::string> snapshots;
  for (const std::size_t threads : {0u, 2u, 8u}) {
    obs::Registry metrics;
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    SelectionService svc(&fx.catalog, pool.get(), &metrics);
    fx.register_apps(svc);
    svc.query_batch(fx.queries);
    svc.query_batch(fx.queries);  // second batch: cache hits this time
    EXPECT_EQ(metrics.value("service.queries"),
              2.0 * static_cast<double>(fx.queries.size()));
    EXPECT_GT(metrics.value("service.cache_hits"), 0.0);
    EXPECT_EQ(metrics.value("service.cache_misses"), 2.0);  // em + kmeans
    EXPECT_GT(metrics.value("service.shard_fanout"), 0.0);
    snapshots.push_back(metrics.to_json(false));
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
}

TEST(SelectionService, BatchLatencyHistogramLandsInHostDomain) {
  const BigFixture fx;
  obs::Registry metrics;
  SelectionService svc(&fx.catalog, nullptr, &metrics);
  fx.register_apps(svc);
  svc.query_batch(fx.queries);
  const std::string with_host = metrics.to_json(true);
  const std::string without = metrics.to_json(false);
  EXPECT_NE(with_host.find("service.batch_seconds"), std::string::npos);
  EXPECT_EQ(without.find("service.batch_seconds"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrent readers vs snapshot swaps (TSan stress targets)

TEST(SelectionService, ConcurrentQueriesRaceSnapshotSwaps) {
  BigFixture fx;
  util::ThreadPool pool(4);
  SelectionService svc(&fx.catalog, &pool);
  fx.register_apps(svc);

  // One replica of a fresh dataset exists up front; the writer keeps
  // publishing more replicas and topology bumps while readers query.
  fx.catalog.register_replica({"hot", "repo-0", 1});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Bounded: every publish copies the whole topology, so an unbounded
    // writer on a small host turns quadratic.
    for (int i = 0; i < 400 && !stop.load(); ++i) {
      fx.catalog.register_replica({"hot", "repo-" + std::to_string(i % 4),
                                   1 << (i % 3)});
      fx.catalog.register_compute_site(
          {"swap-" + std::to_string(i), sim::cluster_pentium_myrinet(), 4});
      // Snapshot-skew window: a batch that captured the topology before
      // these three publishes but loads the shard after them sees a "hot"
      // replica whose repository is missing from its topology. The service
      // must rank it as unreachable for that batch, not abort.
      const std::string fresh = "fresh-" + std::to_string(i);
      fx.catalog.register_repository_site(
          {fresh, sim::cluster_pentium_myrinet(), 4});
      fx.catalog.register_link(fresh, "hpc-1", sim::wan_mbps(40.0));
      fx.catalog.register_replica({"hot", fresh, 1});
    }
  });

  SelectionQuery hot;
  hot.app = "em";
  hot.dataset = "hot";
  hot.dataset_bytes = 1e9;
  hot.top_k = 3;
  std::vector<SelectionQuery> batch(16, hot);
  std::size_t last_considered = 0;
  for (int round = 0; round < 50; ++round) {
    const auto results = svc.query_batch(batch);
    for (const auto& r : results) {
      ASSERT_TRUE(r.ok()) << r.error;
      // Replicas only accumulate, so within one batch (one shard
      // snapshot) every slot agrees, and across batches the candidate
      // count never shrinks.
      EXPECT_EQ(r.candidates_considered,
                results.front().candidates_considered);
    }
    EXPECT_GE(results.front().candidates_considered, last_considered);
    last_considered = results.front().candidates_considered;
  }
  stop.store(true);
  writer.join();
}

// ---------------------------------------------------------------------------
// Service observability (PR 9): attaching the full instrumentation set
// must not perturb what the service computes.

TEST(SelectionService, ObserversDoNotChangeRankingsOrDeterministicMetrics) {
  const BigFixture fx;
  // Uninstrumented reference.
  obs::Registry plain_metrics;
  SelectionService plain(&fx.catalog, nullptr, &plain_metrics);
  fx.register_apps(plain);
  const auto reference = plain.query_batch(fx.queries);
  const std::string reference_metrics = plain_metrics.to_json(false);

  for (const std::size_t threads : {0u, 2u, 8u}) {
    obs::Registry metrics;
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    SelectionService svc(&fx.catalog, pool.get(), &metrics);
    fx.register_apps(svc);

    obs::TraceRecorder trace;
    trace.enable_host(true);
    obs::SlowQueryLog slowlog(0.0);  // threshold 0: every query logs
    obs::HdrHistogram latency;
    ServiceObservers observers;
    observers.trace = &trace;
    observers.slowlog = &slowlog;
    observers.latency = &latency;
    svc.set_observers(observers);

    expect_identical(svc.query_batch(fx.queries), reference);
    EXPECT_EQ(metrics.to_json(false), reference_metrics)
        << "instrumentation leaked into the deterministic domain";

    // The instrumentation itself saw every query: one latency sample and
    // one slow-query entry each, three phase spans plus one span per
    // query in the trace.
    EXPECT_EQ(latency.count(), fx.queries.size());
    EXPECT_GT(latency.quantile(0.99), 0.0);
    EXPECT_EQ(slowlog.seen(), fx.queries.size());
    EXPECT_EQ(trace.event_count(), fx.queries.size() + 3);
    const auto v = obs::validate_report_text(trace.to_chrome_json(true));
    EXPECT_EQ(v.kind, obs::ReportKind::Trace);
    EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors.front());
    // Latency is wall-clock: every service span is Host-domain and gone
    // from the byte-comparison export.
    EXPECT_EQ(trace.to_chrome_json(false).find("service/query"),
              std::string::npos);
  }
}

TEST(SelectionService, SlowQueryLogRecordsFailedQueriesWithTheirError) {
  ShardedCatalog cat(4);
  populate(cat);
  SelectionService svc(&cat);
  svc.register_app(synthetic_profile("em", "pentium-myrinet"),
                   synthetic_options(), opteron_scalers());
  obs::SlowQueryLog slowlog(0.0);
  ServiceObservers observers;
  observers.slowlog = &slowlog;
  svc.set_observers(observers);

  std::vector<SelectionQuery> batch;
  batch.push_back(em_query());
  batch.push_back({"em", "missing", 1e6, 1});  // unknown dataset
  svc.query_batch(batch);
  const auto entries = slowlog.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_FALSE(entries[0].chosen.empty());
  EXPECT_TRUE(entries[0].error.empty());
  EXPECT_TRUE(entries[1].chosen.empty());
  EXPECT_FALSE(entries[1].error.empty());
}

TEST(SelectionService, ConcurrentBatchesShareOneHdrRecorderAndSlowlog) {
  // TSan stress target (CI runs *Concurrent* under --gtest_repeat): two
  // callers drive query_batch into one shared observer set. Per-task
  // latency slots are index-owned; the only cross-batch state is the
  // batch-end merge under the service's latency mutex and the internally
  // locked slowlog/trace sinks.
  const BigFixture fx;
  util::ThreadPool pool(4);
  SelectionService svc(&fx.catalog, &pool);
  fx.register_apps(svc);

  obs::TraceRecorder trace;
  trace.enable_host(true);
  obs::SlowQueryLog slowlog(0.0, 32);
  obs::HdrHistogram latency;
  ServiceObservers observers;
  observers.trace = &trace;
  observers.slowlog = &slowlog;
  observers.latency = &latency;
  svc.set_observers(observers);

  constexpr std::size_t kRounds = 5;
  std::thread other([&] {
    for (std::size_t i = 0; i < kRounds; ++i) svc.query_batch(fx.queries);
  });
  for (std::size_t i = 0; i < kRounds; ++i) svc.query_batch(fx.queries);
  other.join();

  const std::size_t total = 2 * kRounds * fx.queries.size();
  EXPECT_EQ(latency.count(), total);
  EXPECT_EQ(slowlog.seen(), total);
  EXPECT_EQ(slowlog.entries().size(), 32u);
  EXPECT_EQ(trace.event_count(), 2 * kRounds * (fx.queries.size() + 3));
}

TEST(ProfileCache, ConcurrentResolveRacesTopologyPublishes) {
  ShardedCatalog cat(4);
  populate(cat);
  ProfileCache cache;
  cache.register_app(synthetic_profile("em", "pentium-myrinet"),
                     synthetic_options(), opteron_scalers());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 400 && !stop.load(); ++i) {
      cat.register_compute_site(
          {"cache-swap-" + std::to_string(i),
           sim::cluster_opteron_infiniband(), 4});
    }
  });
  util::ThreadPool pool(8);
  pool.parallel_for(256, [&](std::size_t) {
    const auto topo = cat.topology();
    const auto compiled = cache.resolve("em", topo);
    ASSERT_NE(compiled, nullptr);
    // The compiled snapshot is internally consistent with the topology
    // it was compiled against — even if that topology is already stale.
    ASSERT_EQ(compiled->site_predictors.size(),
              compiled->topology->compute_sites.size());
  });
  stop.store(true);
  writer.join();
}

// ---------------------------------------------------------------------------
// Config / query parsing

TEST(ServiceConfig, DefaultsAndOverridesParse) {
  const auto def = parse_service_config("{}");
  EXPECT_EQ(def.shards, 16);
  EXPECT_EQ(def.max_top_k, 64);
  const auto cfg = parse_service_config(
      R"({"shards": 64, "max_top_k": 8, "max_batch": 1000})");
  EXPECT_EQ(cfg.shards, 64);
  EXPECT_EQ(cfg.max_top_k, 8);
  EXPECT_EQ(cfg.max_batch, 1000);
}

TEST(ServiceConfig, RejectsHostileValuesTyped) {
  EXPECT_THROW(parse_service_config("not json"), util::SerializationError);
  EXPECT_THROW(parse_service_config("[]"), util::ConfigError);
  EXPECT_THROW(parse_service_config(R"({"shards": 0})"), util::ConfigError);
  EXPECT_THROW(parse_service_config(R"({"shards": 4097})"),
               util::ConfigError);
  EXPECT_THROW(parse_service_config(R"({"shards": 2.5})"),
               util::ConfigError);
  EXPECT_THROW(parse_service_config(R"({"shards": "many"})"),
               util::ConfigError);
  EXPECT_THROW(parse_service_config(R"({"sharks": 4})"), util::ConfigError);
}

TEST(ServiceConfig, QueryBatchParsesAndEnforcesLimits) {
  ServiceConfig cfg;
  cfg.max_top_k = 4;
  cfg.max_batch = 2;
  const auto queries = parse_query_batch(
      R"([{"app": "em", "dataset": "ds-1", "dataset_bytes": 1e9,
           "top_k": 4},
          {"app": "kmeans", "dataset": "ds-2", "dataset_bytes": 2e8}])",
      cfg);
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].app, "em");
  EXPECT_EQ(queries[0].top_k, 4);
  EXPECT_EQ(queries[1].top_k, 1);

  EXPECT_THROW(parse_query_batch(
                   R"([{"app": "a", "dataset": "d", "dataset_bytes": 1,
                        "top_k": 5}])",
                   cfg),
               util::ConfigError);
  EXPECT_THROW(
      parse_query_batch(
          R"([{"app": "a", "dataset": "d", "dataset_bytes": 1},
              {"app": "a", "dataset": "d", "dataset_bytes": 1},
              {"app": "a", "dataset": "d", "dataset_bytes": 1}])",
          cfg),
      util::ConfigError);
}

}  // namespace
}  // namespace fgp::service
