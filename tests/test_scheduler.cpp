// Tests for the prediction-driven grid scheduler: queueing correctness
// (capacity never exceeded, no starts before submit), policy behaviour,
// and the value of the model vs model-blind policies.
#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "helpers.h"

namespace fgp::core {
namespace {

grid::GridCatalog one_site_catalog(int compute_nodes = 8) {
  grid::GridCatalog cat;
  cat.register_repository_site(
      {"repo", sim::cluster_pentium_myrinet(), 2});
  cat.register_compute_site(
      {"hpc", sim::cluster_pentium_myrinet(), compute_nodes});
  cat.register_link("repo", "hpc", sim::wan_mbps(100));
  cat.register_replica({"data", "repo", 2});
  return cat;
}

/// A synthetic profile: compute-dominated so predictions scale ~1/ĉ.
Profile synthetic_profile(double compute_s = 100.0) {
  Profile p;
  p.app = "synthetic";
  p.config.data_nodes = 2;
  p.config.compute_nodes = 2;
  p.config.dataset_bytes = 1e9;
  p.config.bandwidth_Bps = 100e6 / 8.0;
  p.config.compute_cluster = "pentium-myrinet";
  p.config.data_cluster = "pentium-myrinet";
  p.t_disk = 1.0;
  p.t_network = 1.0;
  p.t_compute = compute_s;
  p.passes = 1;
  p.object_bytes = 1024.0;
  return p;
}

JobRequest job(const std::string& id, double submit, double compute_s = 100.0) {
  JobRequest j;
  j.id = id;
  j.dataset = "data";
  j.dataset_bytes = 1e9;
  j.profile = synthetic_profile(compute_s);
  j.classes = {RoSizeClass::Constant, GlobalReductionClass::LinearConstant};
  j.submit_time_s = submit;
  return j;
}

/// Ground truth: execution behaves exactly like the prediction (so
/// scheduling quality differences come from the policy alone).
GridScheduler::ActualRunner faithful_runner(const grid::GridCatalog& cat) {
  return [&cat](const JobRequest& j, const grid::Candidate& c) {
    PredictorOptions opts;
    opts.classes = j.classes;
    opts.ipc = measure_ipc(cat.compute_site(c.compute_site).cluster);
    ProfileConfig target;
    target.data_nodes = c.replica.storage_nodes;
    target.compute_nodes = c.compute_nodes;
    target.dataset_bytes = j.dataset_bytes;
    target.bandwidth_Bps = c.wan.per_link_Bps;
    return Predictor(j.profile, opts).predict(target).total();
  };
}

/// Invariant: at no instant does any site's committed usage exceed its
/// capacity, and no job starts before its submission.
void check_invariants(const grid::GridCatalog& cat,
                      const std::vector<Placement>& placements,
                      const std::vector<JobRequest>& jobs) {
  for (std::size_t i = 0; i < placements.size(); ++i)
    EXPECT_GE(placements[i].start_s, jobs[i].submit_time_s) << jobs[i].id;
  for (const auto& p : placements) {
    int used = 0;
    for (const auto& q : placements) {
      if (q.candidate.compute_site != p.candidate.compute_site) continue;
      if (q.start_s <= p.start_s && p.start_s < q.finish_s)
        used += q.candidate.compute_nodes;
    }
    EXPECT_LE(used,
              cat.compute_site(p.candidate.compute_site).available_nodes)
        << "capacity exceeded at t=" << p.start_s;
  }
}

TEST(Scheduler, RequiresCatalog) {
  EXPECT_THROW(GridScheduler(nullptr, SchedulingPolicy::PredictedBest),
               util::Error);
}

TEST(Scheduler, SingleJobStartsImmediately) {
  const auto cat = one_site_catalog();
  GridScheduler sched(&cat, SchedulingPolicy::PredictedBest);
  const std::vector<JobRequest> jobs{job("j1", 10.0)};
  const auto placements = sched.schedule(jobs, faithful_runner(cat));
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_DOUBLE_EQ(placements[0].start_s, 10.0);
  EXPECT_GT(placements[0].finish_s, 10.0);
  EXPECT_DOUBLE_EQ(placements[0].predicted_exec_s,
                   placements[0].actual_exec_s);
  check_invariants(cat, placements, jobs);
}

TEST(Scheduler, PredictedBestPicksTheBiggestFreeAllocation) {
  // Compute-dominated job: more nodes is strictly better when free.
  const auto cat = one_site_catalog(8);
  GridScheduler sched(&cat, SchedulingPolicy::PredictedBest);
  const std::vector<JobRequest> jobs{job("j1", 0.0)};
  const auto placements = sched.schedule(jobs, faithful_runner(cat));
  EXPECT_EQ(placements[0].candidate.compute_nodes, 8);
}

TEST(Scheduler, QueueingDelaysSecondFullSizeJob) {
  const auto cat = one_site_catalog(8);
  GridScheduler sched(&cat, SchedulingPolicy::MaxNodes);
  const std::vector<JobRequest> jobs{job("j1", 0.0), job("j2", 0.0)};
  const auto placements = sched.schedule(jobs, faithful_runner(cat));
  ASSERT_EQ(placements.size(), 2u);
  // MaxNodes grabs all 8 nodes twice: the second job must wait.
  EXPECT_DOUBLE_EQ(placements[1].start_s, placements[0].finish_s);
  check_invariants(cat, placements, jobs);
}

TEST(Scheduler, PredictedBestPacksSmallerAllocationsUnderLoad) {
  // Two simultaneous jobs on an 8-node site: the model realizes two 4-node
  // runs complete earlier than two queued 8-node runs when the job scales
  // sub-linearly past 4 nodes... with perfectly linear scaling the halves
  // tie; use a disk-heavy profile so 8 nodes barely helps compute.
  const auto cat = one_site_catalog(8);
  std::vector<JobRequest> jobs{job("a", 0.0), job("b", 0.0)};
  // Disk/network dominated: scaling compute nodes does almost nothing.
  for (auto& j : jobs) {
    j.profile.t_disk = 50.0;
    j.profile.t_compute = 10.0;
  }
  GridScheduler best(&cat, SchedulingPolicy::PredictedBest);
  const auto p_best = best.schedule(jobs, faithful_runner(cat));
  GridScheduler greedy(&cat, SchedulingPolicy::MaxNodes);
  const auto p_greedy = greedy.schedule(jobs, faithful_runner(cat));
  EXPECT_LE(best.makespan(), greedy.makespan());
  check_invariants(cat, p_best, jobs);
  check_invariants(cat, p_greedy, jobs);
}

TEST(Scheduler, PredictedBestBeatsRoundRobinOnMixedLoad) {
  const auto cat = one_site_catalog(8);
  std::vector<JobRequest> jobs;
  for (int i = 0; i < 6; ++i)
    jobs.push_back(job("j" + std::to_string(i),
                       static_cast<double>(i) * 5.0,
                       i % 2 == 0 ? 200.0 : 40.0));
  GridScheduler best(&cat, SchedulingPolicy::PredictedBest);
  const auto p_best = best.schedule(jobs, faithful_runner(cat));
  const double best_turnaround = best.mean_turnaround();
  GridScheduler rr(&cat, SchedulingPolicy::RoundRobin);
  const auto p_rr = rr.schedule(jobs, faithful_runner(cat));
  EXPECT_LE(best_turnaround, rr.mean_turnaround());
  check_invariants(cat, p_best, jobs);
  check_invariants(cat, p_rr, jobs);
}

TEST(Scheduler, ForeignClustersNeedScalers) {
  grid::GridCatalog cat;
  cat.register_repository_site({"repo", sim::cluster_pentium_myrinet(), 2});
  cat.register_compute_site(
      {"foreign", sim::cluster_opteron_infiniband(), 8});
  cat.register_link("repo", "foreign", sim::wan_mbps(100));
  cat.register_replica({"data", "repo", 2});

  const std::vector<JobRequest> jobs{job("j1", 0.0)};
  GridScheduler no_scalers(&cat, SchedulingPolicy::PredictedBest);
  EXPECT_THROW(no_scalers.schedule(jobs, faithful_runner(cat)), util::Error);

  std::map<std::string, ScalingFactors> scalers;
  scalers["opteron-infiniband"] = {0.5, 0.8, 0.3};
  GridScheduler with(&cat, SchedulingPolicy::PredictedBest, scalers);
  auto runner = [](const JobRequest&, const grid::Candidate&) { return 7.0; };
  const auto placements = with.schedule(jobs, runner);
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_DOUBLE_EQ(placements[0].actual_exec_s, 7.0);
}

TEST(Scheduler, MetricsMatchPlacements) {
  const auto cat = one_site_catalog(8);
  GridScheduler sched(&cat, SchedulingPolicy::PredictedBest);
  const std::vector<JobRequest> jobs{job("a", 0.0), job("b", 3.0)};
  const auto placements = sched.schedule(jobs, faithful_runner(cat));
  double expected_makespan = 0.0, turnaround = 0.0;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    expected_makespan = std::max(expected_makespan, placements[i].finish_s);
    turnaround += placements[i].finish_s - jobs[i].submit_time_s;
  }
  EXPECT_DOUBLE_EQ(sched.makespan(), expected_makespan);
  EXPECT_DOUBLE_EQ(sched.mean_turnaround(), turnaround / 2.0);
}

TEST(Scheduler, ReschedulingResetsState) {
  const auto cat = one_site_catalog(8);
  GridScheduler sched(&cat, SchedulingPolicy::MaxNodes);
  const std::vector<JobRequest> jobs{job("a", 0.0)};
  const auto first = sched.schedule(jobs, faithful_runner(cat));
  const auto second = sched.schedule(jobs, faithful_runner(cat));
  // Same stream, fresh reservations: identical placement both times.
  EXPECT_DOUBLE_EQ(first[0].start_s, second[0].start_s);
  EXPECT_DOUBLE_EQ(first[0].finish_s, second[0].finish_s);
}

}  // namespace
}  // namespace fgp::core
