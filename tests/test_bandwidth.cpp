// Tests for the bandwidth-estimation service (the model's b̂ source).
#include <gtest/gtest.h>

#include "grid/bandwidth.h"
#include "util/check.h"

namespace fgp::grid {
namespace {

TEST(Bandwidth, RejectsBadAlpha) {
  EXPECT_THROW(BandwidthEstimator{0.0}, util::Error);
  EXPECT_THROW(BandwidthEstimator{1.5}, util::Error);
  EXPECT_NO_THROW(BandwidthEstimator{1.0});
}

TEST(Bandwidth, NoDataThrows) {
  BandwidthEstimator est;
  EXPECT_FALSE(est.has_estimate());
  EXPECT_THROW(est.estimate_Bps(), util::Error);
  EXPECT_THROW(est.last_Bps(), util::Error);
}

TEST(Bandwidth, SingleObservationIsItsOwnEstimate) {
  BandwidthEstimator est(0.3);
  est.observe({1.0, 100e6, 10.0});  // 10 MB/s
  EXPECT_DOUBLE_EQ(est.estimate_Bps(), 10e6);
  EXPECT_DOUBLE_EQ(est.last_Bps(), 10e6);
  EXPECT_DOUBLE_EQ(est.mean_Bps(), 10e6);
  EXPECT_EQ(est.observations(), 1u);
}

TEST(Bandwidth, EwmaSmoothsAnOutlier) {
  BandwidthEstimator est(0.2);
  for (int i = 0; i < 10; ++i)
    est.observe({static_cast<double>(i), 100e6, 10.0});  // steady 10 MB/s
  est.observe({11.0, 100e6, 100.0});  // one 1 MB/s outlier
  // The estimate moves, but stays far closer to 10 MB/s than to 1 MB/s.
  EXPECT_GT(est.estimate_Bps(), 7e6);
  EXPECT_LT(est.estimate_Bps(), 10e6);
  EXPECT_DOUBLE_EQ(est.last_Bps(), 1e6);
}

TEST(Bandwidth, TracksALevelShift) {
  BandwidthEstimator est(0.5);
  for (int i = 0; i < 5; ++i)
    est.observe({static_cast<double>(i), 100e6, 10.0});  // 10 MB/s
  for (int i = 5; i < 15; ++i)
    est.observe({static_cast<double>(i), 100e6, 50.0});  // drops to 2 MB/s
  EXPECT_NEAR(est.estimate_Bps(), 2e6, 0.1e6);
}

TEST(Bandwidth, RejectsMalformedObservations) {
  BandwidthEstimator est;
  EXPECT_THROW(est.observe({0.0, 0.0, 1.0}), util::Error);
  EXPECT_THROW(est.observe({0.0, 1.0, 0.0}), util::Error);
  est.observe({5.0, 1e6, 1.0});
  EXPECT_THROW(est.observe({4.0, 1e6, 1.0}), util::Error);  // out of order
}

TEST(LinkMonitorTest, PerLinkIsolation) {
  LinkMonitor monitor;
  monitor.observe("repo-a", "hpc", {0.0, 100e6, 10.0});
  monitor.observe("repo-b", "hpc", {0.0, 100e6, 2.0});
  EXPECT_TRUE(monitor.knows("repo-a", "hpc"));
  EXPECT_FALSE(monitor.knows("hpc", "repo-a"));  // direction matters
  EXPECT_DOUBLE_EQ(monitor.estimate_Bps("repo-a", "hpc"), 10e6);
  EXPECT_DOUBLE_EQ(monitor.estimate_Bps("repo-b", "hpc"), 50e6);
}

TEST(LinkMonitorTest, UnknownLinkThrows) {
  LinkMonitor monitor;
  EXPECT_THROW(monitor.estimate_Bps("a", "b"), util::Error);
}

TEST(LinkMonitorTest, DenseIdMatchesStringPath) {
  LinkMonitor monitor;
  const LinkId ab = monitor.link("repo-a", "hpc");
  const LinkId ba = monitor.link("repo-b", "hpc");
  ASSERT_TRUE(ab.valid());
  ASSERT_TRUE(ba.valid());
  EXPECT_NE(ab.index, ba.index);
  // Resolving again returns the same slot.
  EXPECT_EQ(monitor.link("repo-a", "hpc").index, ab.index);
  EXPECT_EQ(monitor.link_count(), 2u);

  // A resolved-but-silent link is not "known" yet.
  EXPECT_FALSE(monitor.knows(ab));
  EXPECT_FALSE(monitor.knows("repo-a", "hpc"));

  monitor.observe(ab, {0.0, 100e6, 10.0});
  monitor.observe("repo-a", "hpc", {1.0, 100e6, 10.0});
  EXPECT_TRUE(monitor.knows(ab));
  // Both surfaces read the same estimator.
  EXPECT_DOUBLE_EQ(monitor.estimate_Bps(ab),
                   monitor.estimate_Bps("repo-a", "hpc"));
  EXPECT_DOUBLE_EQ(monitor.estimate_Bps(ab), 10e6);
}

TEST(LinkMonitorTest, InvalidDenseIdThrows) {
  LinkMonitor monitor;
  EXPECT_THROW(monitor.estimate_Bps(LinkId{}), util::Error);
  EXPECT_THROW(monitor.observe(LinkId{7}, {0.0, 1.0, 1.0}), util::Error);
}

}  // namespace
}  // namespace fgp::grid
