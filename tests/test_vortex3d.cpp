// Tests for volumetric (3-D) vortex detection: planted-tube recall,
// agreement with the serial reference, slab-thickness invariance, and
// cross-slab joining of tubes spanning many chunks.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/vortex3d.h"
#include "datagen/flowfield3d.h"
#include "helpers.h"

namespace fgp::apps {
namespace {

using fgp::testing::ideal_setup;

datagen::Flow3dDataset small_volume(std::uint64_t seed = 23,
                                    int planes_per_chunk = 4) {
  datagen::Flow3dSpec spec;
  spec.nx = 40;
  spec.ny = 40;
  spec.nz = 64;
  spec.num_tubes = 3;
  spec.min_radius = 4.0;
  spec.max_radius = 7.0;
  spec.min_length = 24.0;
  spec.planes_per_chunk = planes_per_chunk;
  spec.seed = seed;
  return datagen::generate_flowfield3d(spec);
}

Vortex3dParams default_params() {
  Vortex3dParams p;
  p.vorticity_threshold = 0.8;
  p.min_cells = 64;
  return p;
}

std::vector<Vortex3d> run_parallel(const datagen::Flow3dDataset& flow, int n,
                                   int c, const Vortex3dParams& params) {
  Vortex3dKernel kernel(params);
  auto setup = ideal_setup(&flow.dataset, n, c);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  return dynamic_cast<const Vortex3dObject&>(*result.result).vortices;
}

TEST(Volume, ChunksCoverAllPlanesOnce) {
  const auto flow = small_volume();
  std::vector<int> owned(static_cast<std::size_t>(flow.nz), 0);
  for (const auto& chunk : flow.dataset.chunks()) {
    const auto view = datagen::parse_volume_chunk(chunk);
    for (std::uint32_t p = 0; p < view.header.planes; ++p)
      owned[view.header.z0 + p] += 1;
  }
  for (const int count : owned) EXPECT_EQ(count, 1);
}

TEST(Volume, HaloPlanesMatchNeighbours) {
  const auto flow = small_volume();
  for (std::size_t k = 0; k + 1 < flow.dataset.chunk_count(); ++k) {
    const auto a = datagen::parse_volume_chunk(flow.dataset.chunk(k));
    const auto b = datagen::parse_volume_chunk(flow.dataset.chunk(k + 1));
    const std::uint32_t shared = b.header.z0;
    for (std::uint32_t y = 0; y < a.header.ny; ++y)
      for (std::uint32_t x = 0; x < a.header.nx; ++x)
        EXPECT_EQ(a.at(shared, y, x).u, b.at(shared, y, x).u);
  }
}

TEST(Volume, MalformedChunkRejected) {
  const auto chunk = repository::make_chunk<std::uint8_t>(0, {1, 2, 3});
  EXPECT_THROW(datagen::parse_volume_chunk(chunk), util::Error);
}

TEST(Vortex3d, DetectsAllPlantedTubes) {
  const auto flow = small_volume();
  const auto found = run_parallel(flow, 2, 4, default_params());
  ASSERT_EQ(found.size(), flow.tubes.size());
  for (const auto& tube : flow.tubes) {
    double best = 1e300;
    const Vortex3d* match = nullptr;
    for (const auto& v : found) {
      const double d = std::hypot(v.cx - tube.cx, v.cy - tube.cy);
      if (d < best) {
        best = d;
        match = &v;
      }
    }
    ASSERT_NE(match, nullptr);
    EXPECT_LT(best, tube.core_radius);
    // The tube's centroid-z falls inside its planted extent.
    EXPECT_GT(match->cz, tube.z_lo - 2.0);
    EXPECT_LT(match->cz, tube.z_hi + 2.0);
    EXPECT_EQ(match->sign, tube.circulation > 0 ? 1 : -1);
  }
}

TEST(Vortex3d, ParallelMatchesSerialReference) {
  const auto flow = small_volume();
  const auto params = default_params();
  const auto ref = vortex3d_reference(flow, params);
  const auto par = run_parallel(flow, 2, 8, params);
  ASSERT_EQ(par.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(par[i].cells, ref[i].cells);
    EXPECT_EQ(par[i].sign, ref[i].sign);
    EXPECT_NEAR(par[i].cx, ref[i].cx, 1e-9);
    EXPECT_NEAR(par[i].cz, ref[i].cz, 1e-9);
  }
}

TEST(Vortex3d, InvariantToSlabThickness) {
  const auto thin = small_volume(23, 2);
  const auto thick = small_volume(23, 16);
  const auto params = default_params();
  const auto a = run_parallel(thin, 1, 8, params);
  const auto b = run_parallel(thick, 1, 2, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cells, b[i].cells);
    EXPECT_NEAR(a[i].cz, b[i].cz, 1e-9);
  }
}

TEST(Vortex3d, TubesSpanManySlabs) {
  // With 2-plane slabs, each >=24-plane tube crosses >=12 chunk
  // boundaries; the joined result must still be one region per tube.
  const auto flow = small_volume(23, 2);
  EXPECT_GE(flow.dataset.chunk_count(), 32u);
  const auto found = run_parallel(flow, 4, 8, default_params());
  EXPECT_EQ(found.size(), flow.tubes.size());
}

TEST(Vortex3d, QuietVolumeHasNoVortices) {
  datagen::Flow3dSpec spec;
  spec.nx = 24;
  spec.ny = 24;
  spec.nz = 24;
  spec.num_tubes = 0;
  spec.noise = 0.005;
  const auto flow = datagen::generate_flowfield3d(spec);
  EXPECT_TRUE(run_parallel(flow, 1, 2, default_params()).empty());
}

TEST(Vortex3d, SortedBySizeDescending) {
  const auto flow = small_volume();
  const auto found = run_parallel(flow, 1, 2, default_params());
  for (std::size_t i = 1; i < found.size(); ++i)
    EXPECT_LE(found[i].cells, found[i - 1].cells);
}

TEST(Vortex3d, ObjectSerializationRoundTrip) {
  Vortex3dObject o;
  RegionFragment3d f;
  f.sign = -1;
  f.cells = 5;
  f.sum_z = 10.0;
  f.boundary = {{1, 2, 3}};
  o.fragments.push_back(f);
  o.vortices.push_back({1, 2, 3, 99, -1});
  util::ByteWriter w;
  o.serialize(w);
  Vortex3dObject back;
  util::ByteReader r(w.bytes());
  back.deserialize(r);
  ASSERT_EQ(back.fragments.size(), 1u);
  EXPECT_EQ(back.fragments[0].boundary[0].x, 3);
  ASSERT_EQ(back.vortices.size(), 1u);
  EXPECT_EQ(back.vortices[0].cells, 99u);
}

TEST(Vortex3d, ObjectSizeTracksLocalData) {
  const auto flow = small_volume();
  auto object_size = [&flow](int c) {
    Vortex3dKernel kernel(default_params());
    auto setup = ideal_setup(&flow.dataset, 1, c);
    freeride::Runtime runtime;
    return runtime.run(setup, kernel).timing.max_object_bytes;
  };
  EXPECT_GT(object_size(1), 1.8 * object_size(4));
}

class Vortex3dConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Vortex3dConfigSweep, InvariantAcrossConfigs) {
  const auto [n, c] = GetParam();
  if (c < n) GTEST_SKIP();
  static const auto flow = small_volume();
  static const auto baseline = vortex3d_reference(flow, default_params());
  const auto found = run_parallel(flow, n, c, default_params());
  ASSERT_EQ(found.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i)
    EXPECT_EQ(found[i].cells, baseline[i].cells);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Vortex3dConfigSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 2, 8)));

}  // namespace
}  // namespace fgp::apps
