// Property sweeps over the prediction model: monotonicity in every knob,
// exact linearity in dataset size, symmetry/consistency properties, and
// straggler behaviour of the runtime. These pin down the algebra of the
// model independent of any particular workload.
#include <gtest/gtest.h>

#include "core/ipc_probe.h"
#include "core/predictor.h"
#include "core/profile.h"
#include "helpers.h"
#include "util/stats.h"

namespace fgp::core {
namespace {

using fgp::testing::SumKernel;
using fgp::testing::SumKernelParams;
using fgp::testing::make_sum_dataset;
using fgp::testing::pentium_setup;

/// A fixed realistic profile shared by the sweeps.
const Profile& shared_profile() {
  static const Profile profile = [] {
    static const auto ds = make_sum_dataset(32, 64, 500.0);
    auto setup = pentium_setup(&ds, 2, 4);
    SumKernelParams params;
    params.constant_ballast = 8192;
    params.merge_flops = 1e5;
    params.global_flops = 1e5;
    params.passes = 3;
    SumKernel kernel(params);
    return ProfileCollector::collect(setup, kernel);
  }();
  return profile;
}

PredictorOptions default_options() {
  PredictorOptions opts;
  opts.model = PredictionModel::GlobalReduction;
  opts.classes = {RoSizeClass::Constant,
                  GlobalReductionClass::LinearConstant};
  opts.ipc = measure_ipc(sim::cluster_pentium_myrinet());
  return opts;
}

class ModelSweep : public ::testing::TestWithParam<PredictionModel> {};

TEST_P(ModelSweep, DiskTimeMonotoneInDataNodes) {
  auto opts = default_options();
  opts.model = GetParam();
  const Predictor predictor(shared_profile(), opts);
  ProfileConfig target = shared_profile().config;
  double prev_disk = 1e300, prev_net = 1e300;
  for (int n : {1, 2, 4, 8, 16}) {
    target.data_nodes = n;
    target.compute_nodes = 16;
    const auto p = predictor.predict(target);
    EXPECT_LT(p.disk, prev_disk);
    EXPECT_LT(p.network, prev_net);
    prev_disk = p.disk;
    prev_net = p.network;
  }
}

TEST_P(ModelSweep, NetworkTimeInverselyLinearInBandwidth) {
  auto opts = default_options();
  opts.model = GetParam();
  const Predictor predictor(shared_profile(), opts);
  ProfileConfig target = shared_profile().config;
  target.bandwidth_Bps = shared_profile().config.bandwidth_Bps * 2.0;
  const auto doubled = predictor.predict(target);
  target.bandwidth_Bps = shared_profile().config.bandwidth_Bps;
  const auto base = predictor.predict(target);
  EXPECT_NEAR(doubled.network, base.network / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(doubled.disk, base.disk);     // bandwidth is network-only
  EXPECT_DOUBLE_EQ(doubled.compute, base.compute);
}

TEST_P(ModelSweep, TotalExactlyLinearInDatasetSize) {
  auto opts = default_options();
  opts.model = GetParam();
  const Predictor predictor(shared_profile(), opts);
  ProfileConfig target = shared_profile().config;
  target.data_nodes = 4;
  target.compute_nodes = 8;
  const double t1 = predictor.predict(target).total();
  target.dataset_bytes *= 3.0;
  const double t3 = predictor.predict(target).total();
  if (GetParam() == PredictionModel::NoCommunication) {
    EXPECT_NEAR(t3, 3.0 * t1, 1e-9 * t1);
  } else {
    // The latency part of T̂_ro does not scale with s; everything else does.
    EXPECT_LE(t3, 3.0 * t1 + 1e-9);
    EXPECT_GT(t3, 2.5 * t1);
  }
}

TEST_P(ModelSweep, IdentityTargetReturnsProfileDiskAndNetwork) {
  auto opts = default_options();
  opts.model = GetParam();
  const Predictor predictor(shared_profile(), opts);
  const auto p = predictor.predict(shared_profile().config);
  EXPECT_NEAR(p.disk, shared_profile().t_disk, 1e-12);
  EXPECT_NEAR(p.network, shared_profile().t_network, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Models, ModelSweep,
                         ::testing::Values(
                             PredictionModel::NoCommunication,
                             PredictionModel::ReductionCommunication,
                             PredictionModel::GlobalReduction));

TEST(PredictorProperties, ComputeMonotoneInComputeNodesForNoComm) {
  auto opts = default_options();
  opts.model = PredictionModel::NoCommunication;
  const Predictor predictor(shared_profile(), opts);
  ProfileConfig target = shared_profile().config;
  double prev = 1e300;
  for (int c : {4, 8, 16, 32}) {
    target.compute_nodes = c;
    const double t = predictor.predict(target).compute;
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(PredictorProperties, GlobalModelComputeCanGrowWithNodes) {
  // With the serialized terms modeled, piling on nodes eventually *costs*:
  // T̂_ro grows with (ĉ-1) while the parallel part shrinks.
  auto opts = default_options();
  opts.ipc.l = 0.05;  // expensive per-message latency
  const Predictor predictor(shared_profile(), opts);
  ProfileConfig target = shared_profile().config;
  target.compute_nodes = 4;
  const double at4 = predictor.predict(target).compute;
  target.compute_nodes = 512;
  // Allow very large targets by raising data nodes too (M >= N holds).
  const double at512 = predictor.predict(target).compute;
  EXPECT_GT(at512, at4);
}

TEST(PredictorProperties, ChainedPredictionsCompose) {
  // Predicting A->B directly equals predicting A->B via the ratios of two
  // separate targets (the model is a pure product of scale factors), for
  // the no-communication model where no absolute terms intervene.
  auto opts = default_options();
  opts.model = PredictionModel::NoCommunication;
  const Predictor predictor(shared_profile(), opts);
  ProfileConfig mid = shared_profile().config;
  mid.data_nodes = 4;
  mid.compute_nodes = 8;
  mid.dataset_bytes *= 2.0;
  ProfileConfig far = mid;
  far.data_nodes = 8;
  far.compute_nodes = 16;
  far.dataset_bytes *= 2.0;
  const auto t_mid = predictor.predict(mid);
  const auto t_far = predictor.predict(far);
  // far = mid scaled by (s x2, n x2, c x2): disk x1, net x1, compute x1.
  EXPECT_NEAR(t_far.disk, t_mid.disk, 1e-12);
  EXPECT_NEAR(t_far.network, t_mid.network, 1e-12);
  EXPECT_NEAR(t_far.compute, t_mid.compute, 1e-12);
}

}  // namespace
}  // namespace fgp::core

namespace fgp::freeride {
namespace {

using fgp::testing::SumKernel;
using fgp::testing::make_sum_dataset;
using fgp::testing::pentium_setup;

TEST(Stragglers, ConfigValidation) {
  JobConfig cfg;
  cfg.compute_nodes = 4;
  cfg.straggler_count = 5;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg.straggler_count = 2;
  cfg.straggler_slowdown = 0.5;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg.straggler_slowdown = 2.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Stragglers, SlowNodeStretchesLocalPhaseOnly) {
  const auto ds = make_sum_dataset(32, 64, 100.0);
  Runtime runtime;
  auto clean = pentium_setup(&ds, 2, 4);
  auto slowed = pentium_setup(&ds, 2, 4);
  slowed.config.straggler_count = 1;
  slowed.config.straggler_slowdown = 3.0;
  SumKernel k1, k2;
  const auto rc = runtime.run(clean, k1).timing.total;
  const auto rs = runtime.run(slowed, k2).timing.total;
  EXPECT_NEAR(rs.compute_local, 3.0 * rc.compute_local,
              1e-9 * rc.compute_local);
  EXPECT_DOUBLE_EQ(rs.disk, rc.disk);
  EXPECT_DOUBLE_EQ(rs.network, rc.network);
}

TEST(Stragglers, MoreStragglersNoWorseThanOneAtSameSlowdown) {
  // The local phase is a max: one slow node already sets the pace.
  const auto ds = make_sum_dataset(32, 64, 100.0);
  Runtime runtime;
  auto one = pentium_setup(&ds, 2, 4);
  one.config.straggler_count = 1;
  one.config.straggler_slowdown = 2.0;
  auto all = pentium_setup(&ds, 2, 4);
  all.config.straggler_count = 4;
  all.config.straggler_slowdown = 2.0;
  SumKernel k1, k2;
  const double t_one = runtime.run(one, k1).timing.total.compute_local;
  const double t_all = runtime.run(all, k2).timing.total.compute_local;
  EXPECT_DOUBLE_EQ(t_one, t_all);
}

TEST(Stragglers, ResultsUnaffected) {
  const auto ds = make_sum_dataset(16, 32);
  auto setup = pentium_setup(&ds, 1, 4);
  setup.config.straggler_count = 2;
  setup.config.straggler_slowdown = 5.0;
  SumKernel kernel;
  Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  const auto& obj = dynamic_cast<const fgp::testing::SumObject&>(*result.result);
  EXPECT_DOUBLE_EQ(obj.sum, fgp::testing::expected_sum(16, 32));
}

}  // namespace
}  // namespace fgp::freeride
