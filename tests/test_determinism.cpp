// Determinism regression: the virtual cluster must be bit-deterministic
// regardless of how much *host* parallelism executes it, or measured
// profiles become noisy and the paper's prediction model stops being
// falsifiable. Runs k-means and vortex end-to-end with the runtime's host
// pool at 1, 2 and 8 threads and asserts that the final reduction
// objects, every virtual-time component, and the resulting predictions
// are bit-identical (not merely approximately equal).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/kmeans.h"
#include "apps/vortex.h"
#include "core/ipc_probe.h"
#include "core/predictor.h"
#include "core/profile.h"
#include "datagen/flowfield.h"
#include "datagen/points.h"
#include "helpers.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace fgp {
namespace {

constexpr std::size_t kPoolSizes[] = {1, 2, 8};

/// Everything one end-to-end run produces, reduced to raw bytes so
/// equality means bit-identity (doubles compared via memcmp, so NaN or
/// signed-zero drift would also be caught).
struct RunFingerprint {
  std::vector<std::uint8_t> object_bytes;
  std::vector<double> doubles;

  void add(double v) { doubles.push_back(v); }

  bool bit_identical_to(const RunFingerprint& o) const {
    if (object_bytes != o.object_bytes) return false;
    if (doubles.size() != o.doubles.size()) return false;
    return doubles.empty() ||
           std::memcmp(doubles.data(), o.doubles.data(),
                       doubles.size() * sizeof(double)) == 0;
  }
};

RunFingerprint fingerprint(const freeride::JobSetup& setup,
                           const std::string& app,
                           const freeride::RunResult& result) {
  RunFingerprint fp;
  util::ByteWriter w;
  result.result->serialize(w);
  fp.object_bytes = w.take();

  fp.add(result.timing.elapsed);
  fp.add(result.timing.max_object_bytes);
  fp.add(result.timing.total.disk);
  fp.add(result.timing.total.network);
  fp.add(result.timing.total.compute_local);
  fp.add(result.timing.total.ro_comm);
  fp.add(result.timing.total.global_red);
  fp.add(result.total_work.flops);
  fp.add(result.total_work.bytes);
  for (const auto& pass : result.timing.passes) {
    fp.add(pass.elapsed);
    fp.add(pass.max_object_bytes);
  }

  // Predictions inherit determinism from the profile; pin them too so a
  // nondeterministic collector or predictor cannot slip through.
  const core::Profile profile =
      core::ProfileCollector::from_result(setup, app, result);
  core::PredictorOptions opts;
  opts.ipc = core::measure_ipc(setup.compute_cluster);
  core::ProfileConfig target = profile.config;
  target.data_nodes = 8;
  target.compute_nodes = 16;
  const core::PredictedTime predicted =
      core::Predictor(profile, opts).predict(target);
  fp.add(predicted.disk);
  fp.add(predicted.network);
  fp.add(predicted.compute);
  return fp;
}

TEST(Determinism, KMeansBitIdenticalAcrossPoolSizes) {
  datagen::PointsSpec spec;
  spec.num_points = 4000;
  spec.dim = 4;
  spec.num_components = 3;
  spec.points_per_chunk = 200;
  spec.seed = 42;
  const auto data = datagen::generate_points(spec);

  std::vector<RunFingerprint> runs;
  for (const std::size_t pool : kPoolSizes) {
    apps::KMeansParams params;
    params.k = 3;
    params.dim = spec.dim;
    params.initial_centers =
        apps::initial_centers_from_dataset(data.dataset, 3, spec.dim);
    apps::KMeansKernel kernel(params);

    auto setup = testing::pentium_setup(&data.dataset, 4, 8);
    const auto result = freeride::Runtime(pool).run(setup, kernel);
    EXPECT_GT(result.passes, 1) << "want a genuinely iterative run";
    runs.push_back(fingerprint(setup, kernel.name(), result));
  }
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_TRUE(runs[0].bit_identical_to(runs[1])) << "pool=1 vs pool=2";
  EXPECT_TRUE(runs[0].bit_identical_to(runs[2])) << "pool=1 vs pool=8";
}

TEST(Determinism, VortexBitIdenticalAcrossPoolSizes) {
  datagen::FlowSpec spec;
  spec.width = 96;
  spec.height = 96;
  spec.num_vortices = 4;
  spec.rows_per_chunk = 8;
  spec.seed = 7;
  const auto flow = datagen::generate_flowfield(spec);

  std::vector<RunFingerprint> runs;
  for (const std::size_t pool : kPoolSizes) {
    apps::VortexKernel kernel(apps::VortexParams{});

    auto setup = testing::pentium_setup(&flow.dataset, 3, 6);
    const auto result = freeride::Runtime(pool).run(setup, kernel);
    runs.push_back(fingerprint(setup, kernel.name(), result));
  }
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_TRUE(runs[0].bit_identical_to(runs[1])) << "pool=1 vs pool=2";
  EXPECT_TRUE(runs[0].bit_identical_to(runs[2])) << "pool=1 vs pool=8";
}

TEST(Determinism, MultiBlockReductionMatchesSerialRuntime) {
  // Enough chunks per compute node (48 chunks over 4 nodes = 12, well
  // above the 4-chunk block size) that the two-level reduction genuinely
  // splits every node into several chunk blocks. The default serial
  // Runtime() must produce the same bits as every pooled variant — owned
  // pools of each size and a borrowed shared pool (DESIGN.md §11).
  datagen::PointsSpec spec;
  spec.num_points = 4800;
  spec.dim = 4;
  spec.num_components = 3;
  spec.points_per_chunk = 100;
  spec.seed = 21;
  const auto data = datagen::generate_points(spec);

  const auto run_with = [&](const freeride::Runtime& runtime) {
    apps::KMeansParams params;
    params.k = 3;
    params.dim = spec.dim;
    params.initial_centers =
        apps::initial_centers_from_dataset(data.dataset, 3, spec.dim);
    apps::KMeansKernel kernel(params);
    auto setup = testing::pentium_setup(&data.dataset, 2, 4);
    const auto result = runtime.run(setup, kernel);
    return fingerprint(setup, kernel.name(), result);
  };

  const RunFingerprint serial = run_with(freeride::Runtime());
  for (const std::size_t pool : kPoolSizes) {
    EXPECT_TRUE(serial.bit_identical_to(run_with(freeride::Runtime(pool))))
        << "serial vs owned pool of " << pool;
  }
  util::ThreadPool shared(2);
  EXPECT_TRUE(serial.bit_identical_to(run_with(freeride::Runtime(&shared))))
      << "serial vs borrowed shared pool";
}

TEST(Determinism, SmpStrategiesStayDeterministicUnderHostPool) {
  // The simulated SMP strategies reorder nothing observable: every
  // (strategy, pool size) pair must agree with the serial baseline of the
  // same strategy bit-for-bit.
  const auto data = [] {
    datagen::PointsSpec spec;
    spec.num_points = 1500;
    spec.dim = 4;
    spec.points_per_chunk = 125;
    return datagen::generate_points(spec);
  }();

  for (const auto strategy :
       {freeride::SmpStrategy::FullReplication,
        freeride::SmpStrategy::FullLocking,
        freeride::SmpStrategy::CacheSensitiveLocking}) {
    std::vector<RunFingerprint> runs;
    for (const std::size_t pool : kPoolSizes) {
      apps::KMeansParams params;
      params.k = 3;
      params.dim = 4;
      params.initial_centers =
          apps::initial_centers_from_dataset(data.dataset, 3, 4);
      params.fixed_passes = 3;
      apps::KMeansKernel kernel(params);

      auto setup = testing::pentium_setup(&data.dataset, 2, 4);
      setup.compute_cluster.machine.cores = 4;
      setup.config.threads_per_node = 4;
      setup.config.smp_strategy = strategy;
      const auto result = freeride::Runtime(pool).run(setup, kernel);
      runs.push_back(fingerprint(setup, "kmeans", result));
    }
    EXPECT_TRUE(runs[0].bit_identical_to(runs[1]));
    EXPECT_TRUE(runs[0].bit_identical_to(runs[2]));
  }
}

}  // namespace
}  // namespace fgp
