// test_kernel_equivalence.cpp — blocked fast paths vs naive scalar
// references.
//
// The kernels in src/apps/ run on the register-blocked helpers in
// util/simd.h, which reassociate floating-point sums (four lanes combined
// as (l0+l1)+(l2+l3)). These tests pin the contract from DESIGN.md
// "Blocked-reduction determinism": every fast path agrees with a serial
// scalar evaluation within a small relative tolerance, repeat runs are
// bit-identical, and the shapes that stress the lane tail (odd counts,
// tiny d, d not a multiple of the block width) behave like the aligned
// ones.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <vector>

#include "apps/ann.h"
#include "apps/em.h"
#include "apps/kmeans.h"
#include "apps/knn.h"
#include "repository/chunk.h"
#include "repository/store.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/simd.h"

namespace fgp {
namespace {

// Dimensions that exercise the 4-lane main loop, the 1/2/3-element tail,
// and the d < kLanes degenerate cases.
const std::vector<std::size_t> kDims = {1, 2, 3, 4, 5, 7, 8, 11, 16, 33};

std::vector<double> random_vec(util::Rng& rng, std::size_t n, double lo = -3.0,
                               double hi = 3.0) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

double naive_squared_distance(const double* a, const double* b,
                              std::size_t d) {
  double acc = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double diff = a[j] - b[j];
    acc += diff * diff;
  }
  return acc;
}

double naive_weighted_squared_distance(const double* x, const double* mu,
                                       const double* w, std::size_t d) {
  double acc = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double diff = x[j] - mu[j];
    acc += diff * diff * w[j];
  }
  return acc;
}

double naive_dot(const double* a, const double* b, std::size_t d) {
  double acc = 0.0;
  for (std::size_t j = 0; j < d; ++j) acc += a[j] * b[j];
  return acc;
}

void expect_rel_near(double expected, double actual, double rel,
                     const std::string& what) {
  const double scale = std::max({1.0, std::abs(expected), std::abs(actual)});
  EXPECT_NEAR(expected, actual, rel * scale) << what;
}

// ------------------------------------------------------------- simd layer

TEST(SimdEquivalence, SquaredDistanceMatchesNaive) {
  util::Rng rng(101);
  for (std::size_t d : kDims) {
    const auto a = random_vec(rng, d);
    const auto b = random_vec(rng, d);
    expect_rel_near(naive_squared_distance(a.data(), b.data(), d),
                    util::simd::squared_distance(a.data(), b.data(), d),
                    1e-13, "d=" + std::to_string(d));
  }
}

TEST(SimdEquivalence, WeightedSquaredDistanceMatchesNaive) {
  util::Rng rng(102);
  for (std::size_t d : kDims) {
    const auto x = random_vec(rng, d);
    const auto mu = random_vec(rng, d);
    const auto w = random_vec(rng, d, 0.1, 4.0);
    expect_rel_near(
        naive_weighted_squared_distance(x.data(), mu.data(), w.data(), d),
        util::simd::weighted_squared_distance(x.data(), mu.data(), w.data(),
                                              d),
        1e-13, "d=" + std::to_string(d));
  }
}

TEST(SimdEquivalence, DotMatchesNaive) {
  util::Rng rng(103);
  for (std::size_t d : kDims) {
    const auto a = random_vec(rng, d);
    const auto b = random_vec(rng, d);
    expect_rel_near(naive_dot(a.data(), b.data(), d),
                    util::simd::dot(a.data(), b.data(), d), 1e-13,
                    "d=" + std::to_string(d));
  }
}

TEST(SimdEquivalence, ElementwiseHelpersMatchNaiveExactly) {
  util::Rng rng(104);
  for (std::size_t d : kDims) {
    const auto x = random_vec(rng, d);
    const double r = rng.uniform(0.0, 1.0);

    auto acc = random_vec(rng, d);
    auto acc_ref = acc;
    util::simd::accumulate(acc.data(), x.data(), d);
    for (std::size_t j = 0; j < d; ++j) acc_ref[j] += x[j];
    EXPECT_EQ(acc, acc_ref);  // one add per slot: bit-exact

    auto y = random_vec(rng, d);
    auto y_ref = y;
    util::simd::axpy(y.data(), r, x.data(), d);
    for (std::size_t j = 0; j < d; ++j) y_ref[j] += r * x[j];
    EXPECT_EQ(y, y_ref);

    auto sx = random_vec(rng, d);
    auto sx2 = random_vec(rng, d);
    auto sx_ref = sx;
    auto sx2_ref = sx2;
    util::simd::weighted_moments(sx.data(), sx2.data(), r, x.data(), d);
    for (std::size_t j = 0; j < d; ++j) {
      const double rx = r * x[j];
      sx_ref[j] += rx;
      sx2_ref[j] += rx * x[j];
    }
    EXPECT_EQ(sx, sx_ref);
    EXPECT_EQ(sx2, sx2_ref);
  }
}

TEST(SimdEquivalence, ReductionsBitIdenticalAcrossRepeatRuns) {
  util::Rng rng(105);
  for (std::size_t d : kDims) {
    const auto a = random_vec(rng, d);
    const auto b = random_vec(rng, d);
    const double first = util::simd::squared_distance(a.data(), b.data(), d);
    for (int rep = 0; rep < 3; ++rep) {
      const double again =
          util::simd::squared_distance(a.data(), b.data(), d);
      EXPECT_EQ(0, std::memcmp(&first, &again, sizeof(double)));
    }
  }
}

TEST(SimdEquivalence, AllBytesEqual8MatchesScalarSweep) {
  util::Rng rng(106);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint8_t buf[8];
    const std::uint8_t fill = (trial % 2 == 0) ? 0 : 0xFF;
    for (auto& x : buf)
      x = rng.next_below(4) == 0 ? static_cast<std::uint8_t>(rng.next_below(256))
                                 : fill;
    bool naive = true;
    for (std::uint8_t x : buf) naive = naive && (x == fill);
    EXPECT_EQ(naive, util::simd::all_bytes_equal8(buf, fill));
  }
}

// ------------------------------------------------------------ app kernels

TEST(KernelEquivalence, KMeansChunkMatchesNaiveScalar) {
  util::Rng rng(201);
  const std::size_t d = 5;  // not a multiple of the block width
  const std::size_t k = 3;
  const std::size_t count = 101;  // odd
  const auto points = random_vec(rng, count * d, -8.0, 8.0);

  apps::KMeansParams params;
  params.k = static_cast<int>(k);
  params.dim = static_cast<int>(d);
  params.initial_centers.assign(points.begin(), points.begin() + k * d);
  apps::KMeansKernel kernel(params);
  const auto chunk = repository::make_chunk(0, points);

  auto obj = kernel.create_object();
  kernel.process_chunk(chunk, *obj);
  const auto& fast = dynamic_cast<const apps::KMeansObject&>(*obj);

  // Naive scalar: serial-order distances, serial accumulation.
  std::vector<double> sums(k * d, 0.0);
  std::vector<std::uint64_t> counts(k, 0);
  double sse = 0.0;
  for (std::size_t p = 0; p < count; ++p) {
    const double* x = points.data() + p * d;
    double best = std::numeric_limits<double>::max();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double dist =
          naive_squared_distance(x, params.initial_centers.data() + c * d, d);
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    for (std::size_t j = 0; j < d; ++j) sums[best_c * d + j] += x[j];
    counts[best_c] += 1;
    sse += best;
  }

  EXPECT_EQ(fast.counts_, counts);
  for (std::size_t i = 0; i < sums.size(); ++i)
    expect_rel_near(sums[i], fast.sums_[i], 1e-12,
                    "sum[" + std::to_string(i) + "]");
  expect_rel_near(sse, fast.sse, 1e-12, "sse");

  // Repeat run into a fresh object: bit-identical serialized bytes.
  auto obj2 = kernel.create_object();
  kernel.process_chunk(chunk, *obj2);
  util::ByteWriter w1, w2;
  obj->serialize(w1);
  obj2->serialize(w2);
  EXPECT_EQ(w1.bytes(), w2.bytes());
}

TEST(KernelEquivalence, KnnChunkMatchesNaiveScalar) {
  util::Rng rng(202);
  const std::size_t d = 3;  // smaller than the block width
  const int k = 4;
  const std::size_t m = 2;
  const std::size_t count = 51;
  const auto points = random_vec(rng, count * d, -5.0, 5.0);

  apps::KnnParams params;
  params.k = k;
  params.dim = static_cast<int>(d);
  params.queries = random_vec(rng, m * d, -5.0, 5.0);
  apps::KnnKernel kernel(params);
  const auto chunk = repository::make_chunk(0, points);

  auto obj = kernel.create_object();
  kernel.process_chunk(chunk, *obj);
  const auto& fast = dynamic_cast<const apps::KnnObject&>(*obj);

  // Naive scalar: serial distances into a separate object via the same
  // bounded insert.
  apps::KnnObject naive(static_cast<int>(m), k, static_cast<int>(d));
  for (std::size_t p = 0; p < count; ++p) {
    const double* x = points.data() + p * d;
    for (std::size_t q = 0; q < m; ++q)
      naive.insert(q,
                   naive_squared_distance(x, params.queries.data() + q * d, d),
                   x);
  }

  ASSERT_EQ(fast.dists.size(), naive.dists.size());
  for (std::size_t i = 0; i < naive.dists.size(); ++i)
    expect_rel_near(naive.dists[i], fast.dists[i], 1e-12,
                    "dist[" + std::to_string(i) + "]");
  EXPECT_EQ(fast.coords, naive.coords);  // same neighbour selection

  auto obj2 = kernel.create_object();
  kernel.process_chunk(chunk, *obj2);
  util::ByteWriter w1, w2;
  obj->serialize(w1);
  obj2->serialize(w2);
  EXPECT_EQ(w1.bytes(), w2.bytes());
}

TEST(KernelEquivalence, EmChunkMatchesNaiveScalar) {
  util::Rng rng(203);
  const std::size_t d = 5;
  const std::size_t g = 3;
  const std::size_t count = 61;
  const auto points = random_vec(rng, count * d, -4.0, 4.0);

  apps::EMParams params;
  params.g = static_cast<int>(g);
  params.dim = static_cast<int>(d);
  params.initial_means = random_vec(rng, g * d, -4.0, 4.0);
  params.initial_variance = 1.5;
  apps::EMKernel kernel(params);
  const auto chunk = repository::make_chunk(7, points);

  auto obj = kernel.create_object();
  kernel.process_chunk(chunk, *obj);
  const auto& fast = dynamic_cast<const apps::EMObject&>(*obj);

  // Naive scalar E-step: per-coordinate divisions, log-normalizer computed
  // per point (the pre-hoisted formulation).
  const double kLog2Pi = 1.8378770664093453;
  std::vector<double> resp(g, 0.0), sum_x(g * d, 0.0), sum_x2(g * d, 0.0);
  std::vector<double> logp(g);
  std::vector<std::uint8_t> labels(count);
  double loglik = 0.0;
  for (std::size_t p = 0; p < count; ++p) {
    const double* x = points.data() + p * d;
    for (std::size_t c = 0; c < g; ++c) {
      double quad = 0.0, logdet = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = x[j] - params.initial_means[c * d + j];
        quad += diff * diff / params.initial_variance;
        logdet += std::log(params.initial_variance);
      }
      logp[c] = std::log(1.0 / static_cast<double>(g)) -
                0.5 * (quad + logdet + static_cast<double>(d) * kLog2Pi);
    }
    double mx = logp[0];
    for (std::size_t c = 1; c < g; ++c) mx = std::max(mx, logp[c]);
    double sum = 0.0;
    for (std::size_t c = 0; c < g; ++c) sum += std::exp(logp[c] - mx);
    const double lse = mx + std::log(sum);
    loglik += lse;
    std::size_t best = 0;
    for (std::size_t c = 0; c < g; ++c) {
      const double r = std::exp(logp[c] - lse);
      resp[c] += r;
      for (std::size_t j = 0; j < d; ++j) {
        sum_x[c * d + j] += r * x[j];
        sum_x2[c * d + j] += r * x[j] * x[j];
      }
      if (logp[c] > logp[best]) best = c;
    }
    labels[p] = static_cast<std::uint8_t>(best);
  }

  expect_rel_near(loglik, fast.loglik, 1e-9, "loglik");
  for (std::size_t c = 0; c < g; ++c)
    expect_rel_near(resp[c], fast.resp[c], 1e-9,
                    "resp[" + std::to_string(c) + "]");
  for (std::size_t i = 0; i < sum_x.size(); ++i) {
    expect_rel_near(sum_x[i], fast.sum_x[i], 1e-9,
                    "sum_x[" + std::to_string(i) + "]");
    expect_rel_near(sum_x2[i], fast.sum_x2[i], 1e-9,
                    "sum_x2[" + std::to_string(i) + "]");
  }
  ASSERT_TRUE(fast.labels.count(7));
  EXPECT_EQ(fast.labels.at(7), labels);

  auto obj2 = kernel.create_object();
  kernel.process_chunk(chunk, *obj2);
  util::ByteWriter w1, w2;
  obj->serialize(w1);
  obj2->serialize(w2);
  EXPECT_EQ(w1.bytes(), w2.bytes());
}

TEST(KernelEquivalence, AnnChunkMatchesNaiveScalar) {
  util::Rng data_rng(204);
  const int dim = 5, hidden = 7, classes = 3;
  const std::size_t count = 41;
  const std::size_t row = static_cast<std::size_t>(dim) + 1;
  std::vector<double> rows(count * row);
  for (std::size_t p = 0; p < count; ++p) {
    rows[p * row] = static_cast<double>(data_rng.next_below(classes));
    for (std::size_t j = 1; j < row; ++j)
      rows[p * row + j] = data_rng.uniform(-2.0, 2.0);
  }

  apps::AnnParams params;
  params.dim = dim;
  params.hidden = hidden;
  params.classes = classes;
  params.seed = 5;
  apps::AnnKernel kernel(params);
  const auto chunk = repository::make_chunk(0, rows);

  auto obj = kernel.create_object();
  kernel.process_chunk(chunk, *obj);
  const auto& fast = dynamic_cast<const apps::AnnObject&>(*obj);

  // Replicate the kernel's weight init (same seed, same draw order), then
  // run the naive strided forward/backward the blocked version replaced.
  const auto d = static_cast<std::size_t>(dim);
  const auto h = static_cast<std::size_t>(hidden);
  const auto cc = static_cast<std::size_t>(classes);
  util::Rng wrng(params.seed);
  std::vector<double> w1(d * h), b1(h, 0.0), w2(h * cc), b2(cc, 0.0);
  const double s1 = 1.0 / std::sqrt(static_cast<double>(d));
  const double s2 = 1.0 / std::sqrt(static_cast<double>(h));
  for (auto& w : w1) w = wrng.uniform(-s1, s1);
  for (auto& w : w2) w = wrng.uniform(-s2, s2);

  std::vector<double> grad_w1(d * h, 0.0), grad_b1(h, 0.0);
  std::vector<double> grad_w2(h * cc, 0.0), grad_b2(cc, 0.0);
  double loss = 0.0;
  for (std::size_t p = 0; p < count; ++p) {
    const double* r = rows.data() + p * row;
    const double* x = r + 1;
    const auto label = static_cast<std::size_t>(r[0]);

    std::vector<double> a1(h), prob(cc);
    for (std::size_t k = 0; k < h; ++k) {
      double z = b1[k];
      for (std::size_t j = 0; j < d; ++j) z += w1[j * h + k] * x[j];
      a1[k] = std::tanh(z);
    }
    double zmax = -1e300;
    for (std::size_t c = 0; c < cc; ++c) {
      double z = b2[c];
      for (std::size_t k = 0; k < h; ++k) z += w2[k * cc + c] * a1[k];
      prob[c] = z;
      zmax = std::max(zmax, z);
    }
    double sum = 0.0;
    for (std::size_t c = 0; c < cc; ++c) {
      prob[c] = std::exp(prob[c] - zmax);
      sum += prob[c];
    }
    for (std::size_t c = 0; c < cc; ++c) prob[c] /= sum;
    loss += -std::log(std::max(prob[label], 1e-300));

    std::vector<double> dz2(cc), dz1(h);
    for (std::size_t c = 0; c < cc; ++c)
      dz2[c] = prob[c] - (c == label ? 1.0 : 0.0);
    for (std::size_t k = 0; k < h; ++k)
      for (std::size_t c = 0; c < cc; ++c)
        grad_w2[k * cc + c] += a1[k] * dz2[c];
    for (std::size_t c = 0; c < cc; ++c) grad_b2[c] += dz2[c];
    for (std::size_t k = 0; k < h; ++k) {
      double da = 0.0;
      for (std::size_t c = 0; c < cc; ++c) da += w2[k * cc + c] * dz2[c];
      dz1[k] = da * (1.0 - a1[k] * a1[k]);
    }
    for (std::size_t j = 0; j < d; ++j)
      for (std::size_t k = 0; k < h; ++k)
        grad_w1[j * h + k] += x[j] * dz1[k];
    for (std::size_t k = 0; k < h; ++k) grad_b1[k] += dz1[k];
  }

  expect_rel_near(loss, fast.loss, 1e-10, "loss");
  for (std::size_t i = 0; i < grad_w1.size(); ++i)
    expect_rel_near(grad_w1[i], fast.grad_w1[i], 1e-10,
                    "grad_w1[" + std::to_string(i) + "]");
  for (std::size_t i = 0; i < grad_b1.size(); ++i)
    expect_rel_near(grad_b1[i], fast.grad_b1[i], 1e-10,
                    "grad_b1[" + std::to_string(i) + "]");
  for (std::size_t i = 0; i < grad_w2.size(); ++i)
    expect_rel_near(grad_w2[i], fast.grad_w2[i], 1e-10,
                    "grad_w2[" + std::to_string(i) + "]");
  for (std::size_t i = 0; i < grad_b2.size(); ++i)
    expect_rel_near(grad_b2[i], fast.grad_b2[i], 1e-10,
                    "grad_b2[" + std::to_string(i) + "]");

  auto obj2 = kernel.create_object();
  kernel.process_chunk(chunk, *obj2);
  util::ByteWriter wa, wb;
  obj->serialize(wa);
  obj2->serialize(wb);
  EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(KernelEquivalence, MmapLoadedChunkBitIdenticalToHeapChunk) {
  // A kernel must not care where the payload bytes live: processing a
  // chunk whose payload aliases an mmap'd file region produces serialized
  // results byte-identical to the same chunk held in heap memory
  // (DESIGN.md §13 — the data plane is ownership-transparent).
  util::Rng rng(205);
  const std::size_t d = 5, k = 3, count = 101;
  const auto points = random_vec(rng, count * d, -8.0, 8.0);

  apps::KMeansParams params;
  params.k = static_cast<int>(k);
  params.dim = static_cast<int>(d);
  params.initial_centers.assign(points.begin(), points.begin() + k * d);
  apps::KMeansKernel kernel(params);

  repository::ChunkedDataset ds(repository::DatasetMeta{"mmapeq", "f64", 0});
  ds.add_chunk(repository::make_chunk(0, points));
  const auto root =
      std::filesystem::temp_directory_path() / "fgp_kernel_eq_store";
  std::filesystem::remove_all(root);
  repository::DatasetStore store(root);
  store.save(ds);
  const auto mapped = store.load_mapped("mmapeq");
  ASSERT_EQ(mapped.chunk_count(), 1u);

  auto heap_obj = kernel.create_object();
  kernel.process_chunk(ds.chunk(0), *heap_obj);
  auto mapped_obj = kernel.create_object();
  kernel.process_chunk(mapped.chunk(0), *mapped_obj);

  util::ByteWriter heap_bytes, mapped_bytes;
  heap_obj->serialize(heap_bytes);
  mapped_obj->serialize(mapped_bytes);
  EXPECT_EQ(heap_bytes.bytes(), mapped_bytes.bytes());
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace fgp
