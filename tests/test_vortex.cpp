// Tests for the vortex-detection application: recall of planted vortices,
// agreement with the serial reference, cross-band joining, de-noising, and
// object behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/vortex.h"
#include "datagen/flowfield.h"
#include "helpers.h"

namespace fgp::apps {
namespace {

using fgp::testing::ideal_setup;

datagen::FlowDataset small_flow(std::uint64_t seed = 7, int rows_per_chunk = 8) {
  datagen::FlowSpec spec;
  spec.width = 96;
  spec.height = 96;
  spec.num_vortices = 3;
  spec.min_radius = 5.0;
  spec.max_radius = 9.0;
  spec.rows_per_chunk = rows_per_chunk;
  spec.seed = seed;
  return datagen::generate_flowfield(spec);
}

VortexParams default_params() {
  VortexParams p;
  p.vorticity_threshold = 0.8;
  p.min_cells = 8;
  return p;
}

std::vector<Vortex> run_parallel(const datagen::FlowDataset& flow, int n,
                                 int c, const VortexParams& params) {
  VortexKernel kernel(params);
  auto setup = ideal_setup(&flow.dataset, n, c);
  freeride::Runtime runtime;
  const auto result = runtime.run(setup, kernel);
  return dynamic_cast<const VortexObject&>(*result.result).vortices;
}

TEST(Vortex, ObjectSerializationRoundTrip) {
  VortexObject o;
  RegionFragment f;
  f.sign = -1;
  f.cells = 12;
  f.sum_x = 34.0;
  f.sum_y = 56.0;
  f.boundary = {{3, 4}, {3, 5}};
  o.fragments.push_back(f);
  o.vortices.push_back({1.5, 2.5, 20, 1});
  util::ByteWriter w;
  o.serialize(w);
  VortexObject back;
  util::ByteReader r(w.bytes());
  back.deserialize(r);
  ASSERT_EQ(back.fragments.size(), 1u);
  EXPECT_EQ(back.fragments[0].sign, -1);
  EXPECT_EQ(back.fragments[0].boundary.size(), 2u);
  EXPECT_EQ(back.fragments[0].boundary[1].x, 5);
  ASSERT_EQ(back.vortices.size(), 1u);
  EXPECT_DOUBLE_EQ(back.vortices[0].cx, 1.5);
}

TEST(Vortex, DetectsAllPlantedVortices) {
  const auto flow = small_flow();
  const auto found = run_parallel(flow, 2, 4, default_params());
  ASSERT_EQ(found.size(), flow.vortices.size());
  for (const auto& planted : flow.vortices) {
    double best = 1e300;
    const Vortex* match = nullptr;
    for (const auto& v : found) {
      const double d = std::hypot(v.cx - planted.cx, v.cy - planted.cy);
      if (d < best) {
        best = d;
        match = &v;
      }
    }
    ASSERT_NE(match, nullptr);
    EXPECT_LT(best, planted.core_radius) << "centroid too far off";
    // Rotation sense must match the planted circulation sign.
    EXPECT_EQ(match->sign, planted.circulation > 0 ? 1 : -1);
  }
}

TEST(Vortex, ParallelMatchesSerialReference) {
  const auto flow = small_flow();
  const auto params = default_params();
  const auto ref = vortex_reference(flow, params);
  const auto par = run_parallel(flow, 2, 8, params);
  ASSERT_EQ(par.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(par[i].cells, ref[i].cells);
    EXPECT_EQ(par[i].sign, ref[i].sign);
    EXPECT_NEAR(par[i].cx, ref[i].cx, 1e-9);
    EXPECT_NEAR(par[i].cy, ref[i].cy, 1e-9);
  }
}

TEST(Vortex, ResultInvariantToBandWidth) {
  // The same field chunked into thin or thick bands yields the same
  // vortices (halo rows make the stencil seamless; the global combine
  // rejoins what the chunking split).
  const auto thin = small_flow(7, 4);
  const auto thick = small_flow(7, 32);
  const auto params = default_params();
  const auto a = run_parallel(thin, 1, 4, params);
  const auto b = run_parallel(thick, 1, 2, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cells, b[i].cells);
    EXPECT_NEAR(a[i].cx, b[i].cx, 1e-9);
    EXPECT_NEAR(a[i].cy, b[i].cy, 1e-9);
  }
}

TEST(Vortex, SortedBySizeDescending) {
  const auto flow = small_flow();
  const auto found = run_parallel(flow, 1, 2, default_params());
  for (std::size_t i = 1; i < found.size(); ++i)
    EXPECT_LE(found[i].cells, found[i - 1].cells);
}

TEST(Vortex, DenoisingDropsSmallRegions) {
  const auto flow = small_flow();
  auto params = default_params();
  params.min_cells = 1;
  const auto all = run_parallel(flow, 1, 1, params);
  params.min_cells = 1000000;
  const auto none = run_parallel(flow, 1, 1, params);
  EXPECT_GE(all.size(), 3u);
  EXPECT_TRUE(none.empty());
}

TEST(Vortex, QuietFieldHasNoVortices) {
  datagen::FlowSpec spec;
  spec.width = 64;
  spec.height = 64;
  spec.num_vortices = 0;
  spec.noise = 0.005;
  const auto flow = datagen::generate_flowfield(spec);
  const auto found = run_parallel(flow, 1, 2, default_params());
  EXPECT_TRUE(found.empty());
}

TEST(Vortex, ObjectSizeTracksLocalData) {
  const auto flow = small_flow();
  auto object_size = [&flow](int c) {
    VortexKernel kernel(default_params());
    auto setup = ideal_setup(&flow.dataset, 1, c);
    freeride::Runtime runtime;
    return runtime.run(setup, kernel).timing.max_object_bytes;
  };
  EXPECT_GT(object_size(1), 1.9 * object_size(4));
  EXPECT_TRUE(VortexKernel(default_params()).reduction_object_scales_with_data());
}

class VortexConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(VortexConfigSweep, InvariantAcrossConfigs) {
  const auto [n, c] = GetParam();
  if (c < n) GTEST_SKIP();
  static const auto flow = small_flow();
  static const auto baseline = vortex_reference(flow, default_params());
  const auto found = run_parallel(flow, n, c, default_params());
  ASSERT_EQ(found.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i)
    EXPECT_EQ(found[i].cells, baseline[i].cells);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, VortexConfigSweep,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(1, 2, 8)));

}  // namespace
}  // namespace fgp::apps
