// Extension E2: non-local caching resource selection.
//
// Paper §2.1 lists "Finding Non-local Caching Resources" as a resource-
// selection role ("data may be cached at a non-local site ... accessed at
// a lower cost than the original repository") that its implementation
// does not cover. This bench completes the story: a multi-pass EM job
// whose data does not fit the compute nodes' local disks, a slow
// repository link, and a candidate cache site one fast hop away. The
// CachePlanner's analytic ranking is validated against exhaustive
// simulation for several pass counts.
#include <iostream>

#include "common.h"
#include "core/cache_planner.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

const char* mode_name(fgp::freeride::CacheMode mode) {
  switch (mode) {
    case fgp::freeride::CacheMode::None:
      return "no-cache";
    case fgp::freeride::CacheMode::LocalDisk:
      return "local-disk";
    case fgp::freeride::CacheMode::NonLocalSite:
      return "cache-site";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace fgp;
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto repo_wan = sim::wan_mbps(40.0);  // slow wide-area repository

  freeride::CacheSiteSetup site;
  site.cluster = sim::cluster_opteron_infiniband();
  site.cluster.name = "cache-site";
  site.nodes = 2;
  site.wan_to_compute = sim::wan_mbps(400.0);  // fast nearby pipe

  std::cout << "Extension E2: non-local caching (EM, 1.4 GB over a 40 Mbps "
               "repository link; cache site 2 nodes @ 400 Mbps)\n\n";

  util::Table table({"passes", "no-cache(s)", "local(s)", "cache-site(s)",
                     "planner pick", "true best", "match"});

  for (const int passes : {1, 2, 3, 5, 10}) {
    const auto app = bench::make_em_app(1400.0, 4.0, 42, passes);

    auto simulate_mode = [&](int which) {
      freeride::JobSetup setup;
      setup.dataset = app.dataset.get();
      setup.data_cluster = cluster;
      setup.compute_cluster = cluster;
      setup.wan = repo_wan;
      setup.config.data_nodes = 2;
      setup.config.compute_nodes = 4;
      setup.config.max_passes = 100;
      if (which >= 1) setup.config.enable_caching = true;
      if (which == 2) {
        setup.config.local_cache_capacity_bytes = 1.0;
        setup.cache_site = site;
      }
      auto kernel = app.factory();
      return freeride::Runtime(&bench::shared_pool()).run(setup, *kernel).timing.total.total();
    };
    const double t_none = simulate_mode(0);
    const double t_local = simulate_mode(1);
    const double t_site = simulate_mode(2);

    // The planner sees only specs plus the per-pass compute time.
    core::CachePlannerInputs in;
    in.dataset_bytes = app.dataset->total_virtual_bytes();
    in.chunks = app.dataset->chunk_count();
    in.data_nodes = 2;
    in.compute_nodes = 4;
    in.data_cluster = cluster;
    in.compute_cluster = cluster;
    in.wan = repo_wan;
    in.compute_time_per_pass_s = 0.0;
    const double movement =
        core::CachePlanner(in).plan_no_cache().total_s(passes);
    in.compute_time_per_pass_s =
        (t_none - movement) / static_cast<double>(passes);
    // Local disks are "too small": force the realistic scenario.
    in.local_cache_capacity_bytes =
        passes == 1 ? 1e18 : 1e18;  // planner may still choose local
    const core::CachePlanner planner(in);
    const std::vector<freeride::CacheSiteSetup> sites{site};
    const auto ranked = planner.rank(passes, sites);

    const double best_actual = std::min({t_none, t_local, t_site});
    const auto true_best = best_actual == t_none
                               ? freeride::CacheMode::None
                           : best_actual == t_local
                               ? freeride::CacheMode::LocalDisk
                               : freeride::CacheMode::NonLocalSite;
    table.add_row({std::to_string(passes), util::Table::fmt(t_none, 1),
                   util::Table::fmt(t_local, 1), util::Table::fmt(t_site, 1),
                   mode_name(ranked.front().mode), mode_name(true_best),
                   ranked.front().mode == true_best ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n  With local disks too small, the same comparison "
               "degenerates to no-cache vs cache-site: the site wins for "
               "every multi-pass job on the slow repository link, and the "
               "planner identifies the crossover analytically.\n\n";
  return 0;
}
