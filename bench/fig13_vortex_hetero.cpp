// Figure 13: vortex detection on a different cluster — base profile 1-1
// with 710 MB on Pentium/Myrinet, predictions for 1.85 GB on
// Opteron/InfiniBand, scaling factors from k-means, k-NN and EM.
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto profile_app = bench::make_vortex_app(710.0, 256, 7);
  const auto target_app = bench::make_vortex_app(1850.0, 384, 7);
  const std::vector<bench::BenchApp> reps{
      bench::make_kmeans_app(350.0, 1.0, 43),
      bench::make_knn_app(350.0, 1.0, 44),
      bench::make_em_app(350.0, 1.0, 45),
  };
  bench::hetero_figure(
      sweep,
      "Figure 13: Prediction Errors for Vortex Detection on a Different "
      "Cluster, 1.85 GB dataset (base profile: 1-1 with 710 MB)",
      profile_app, target_app, reps, {1, 1}, sim::cluster_pentium_myrinet(),
      sim::cluster_opteron_infiniband(), sim::wan_mbps(800.0));
  return 0;
}
