// Figure 12: molecular defect detection on a different cluster — base
// profile 4-4 with 130 MB on Pentium/Myrinet, predictions for 1.8 GB on
// Opteron/InfiniBand, scaling factors from k-means, k-NN and EM.
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto profile_app = bench::make_defect_app(130.0, 24, 24, 96, 11);
  const auto target_app = bench::make_defect_app(1800.0, 32, 32, 144, 11);
  const std::vector<bench::BenchApp> reps{
      bench::make_kmeans_app(350.0, 1.0, 43),
      bench::make_knn_app(350.0, 1.0, 44),
      bench::make_em_app(350.0, 1.0, 45),
  };
  bench::hetero_figure(
      sweep,
      "Figure 12: Prediction Errors for Molecular Defect Detection On a "
      "Different Cluster, 1.8 GB dataset (base profile: 4-4 with 130 MB)",
      profile_app, target_app, reps, {4, 4}, sim::cluster_pentium_myrinet(),
      sim::cluster_opteron_infiniband(), sim::wan_mbps(800.0));
  return 0;
}
