// naive_kernels.cpp — the seed's scalar per-chunk loops, verbatim (see
// naive_kernels.h for why they are quarantined in this translation unit).
#include "naive_kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "apps/defect.h"
#include "datagen/flowfield.h"
#include "datagen/lattice.h"
#include "util/union_find.h"

namespace fgp::bench::naive {

double kmeans_sweep(const repository::ChunkedDataset& ds,
                    const apps::KMeansParams& params) {
  const std::size_t d = static_cast<std::size_t>(params.dim);
  const std::size_t k = static_cast<std::size_t>(params.k);
  const auto& centers = params.initial_centers;
  std::vector<double> sums(k * d, 0.0);
  std::vector<std::uint64_t> counts(k, 0);
  double sse = 0.0;
  for (const auto& chunk : ds.chunks()) {
    const auto points = chunk.as_span<double>();
    const std::size_t count = points.size() / d;
    for (std::size_t p = 0; p < count; ++p) {
      const double* x = points.data() + p * d;
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double* ctr = centers.data() + c * d;
        double dist = 0.0;
        for (std::size_t j = 0; j < d; ++j) {
          const double diff = x[j] - ctr[j];
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      double* sum = sums.data() + best_c * d;
      for (std::size_t j = 0; j < d; ++j) sum[j] += x[j];
      counts[best_c] += 1;
      sse += best;
    }
  }
  return sse;
}

double em_sweep(const repository::ChunkedDataset& ds,
                const apps::EMParams& params) {
  const std::size_t d = static_cast<std::size_t>(params.dim);
  const std::size_t g = static_cast<std::size_t>(params.g);
  const double kLog2Pi = 1.8378770664093453;
  const auto& means = params.initial_means;
  const std::vector<double> vars(g * d, params.initial_variance);
  const std::vector<double> weights(g, 1.0 / static_cast<double>(g));

  std::vector<double> resp(g, 0.0), sum_x(g * d, 0.0), sum_x2(g * d, 0.0);
  std::vector<double> logp(g);
  double loglik = 0.0;
  for (const auto& chunk : ds.chunks()) {
    const auto points = chunk.as_span<double>();
    const std::size_t count = points.size() / d;
    std::vector<std::uint8_t> lbls(count);
    for (std::size_t p = 0; p < count; ++p) {
      const double* x = points.data() + p * d;
      for (std::size_t c = 0; c < g; ++c) {
        double quad = 0.0, logdet = 0.0;
        const double* mu = means.data() + c * d;
        const double* var = vars.data() + c * d;
        for (std::size_t j = 0; j < d; ++j) {
          const double diff = x[j] - mu[j];
          quad += diff * diff / var[j];
          logdet += std::log(var[j]);
        }
        logp[c] = std::log(weights[c]) -
                  0.5 * (quad + logdet + static_cast<double>(d) * kLog2Pi);
      }
      const double mx = *std::max_element(logp.begin(), logp.end());
      double sum = 0.0;
      for (std::size_t c = 0; c < g; ++c) sum += std::exp(logp[c] - mx);
      const double lse = mx + std::log(sum);
      loglik += lse;
      std::size_t best = 0;
      for (std::size_t c = 0; c < g; ++c) {
        const double resp_c = std::exp(logp[c] - lse);
        resp[c] += resp_c;
        double* sx = sum_x.data() + c * d;
        double* sx2 = sum_x2.data() + c * d;
        for (std::size_t j = 0; j < d; ++j) {
          sx[j] += resp_c * x[j];
          sx2[j] += resp_c * x[j] * x[j];
        }
        if (logp[c] > logp[best]) best = c;
      }
      lbls[p] = static_cast<std::uint8_t>(best);
    }
  }
  return loglik;
}

double knn_sweep(const repository::ChunkedDataset& ds,
                 const apps::KnnParams& params) {
  const std::size_t d = static_cast<std::size_t>(params.dim);
  const std::size_t m = params.queries.size() / d;
  apps::KnnObject o(static_cast<int>(m), params.k, params.dim);
  for (const auto& chunk : ds.chunks()) {
    const auto points = chunk.as_span<double>();
    const std::size_t count = points.size() / d;
    for (std::size_t p = 0; p < count; ++p) {
      const double* x = points.data() + p * d;
      for (std::size_t q = 0; q < m; ++q) {
        const double* qp = params.queries.data() + q * d;
        const double bound = o.kth_distance(q);
        double dist = 0.0;
        std::size_t j = 0;
        for (; j < d; ++j) {
          const double diff = x[j] - qp[j];
          dist += diff * diff;
          if (dist >= bound) break;  // early exit past the kth best
        }
        if (j == d) o.insert(q, dist, x);
      }
    }
  }
  double kth_sum = 0.0;
  for (std::size_t q = 0; q < m; ++q) kth_sum += o.kth_distance(q);
  return kth_sum;
}

namespace {

/// Seed-verbatim central-difference vorticity through the chunk view.
double vorticity(const datagen::FieldChunkView& view, std::uint32_t gy,
                 std::uint32_t gx) {
  const double dvdx = 0.5 * (view.at(gy, gx + 1).v - view.at(gy, gx - 1).v);
  const double dudy = 0.5 * (view.at(gy + 1, gx).u - view.at(gy - 1, gx).u);
  return dvdx - dudy;
}

}  // namespace

std::uint64_t vortex_sweep(const repository::ChunkedDataset& ds,
                           const apps::VortexParams& params) {
  std::vector<apps::RegionFragment> fragments;
  for (const auto& chunk : ds.chunks()) {
    const auto view = datagen::parse_field_chunk(chunk);
    const auto& h = view.header;
    const std::uint32_t W = h.width;
    std::vector<std::int8_t> mark(static_cast<std::size_t>(h.rows) * W, 0);
    for (std::uint32_t row = 0; row < h.rows; ++row) {
      const std::uint32_t gy = h.row0 + row;
      if (gy == 0 || gy + 1 >= h.height) continue;
      for (std::uint32_t gx = 1; gx + 1 < W; ++gx) {
        const double w = vorticity(view, gy, gx);
        if (w > params.vorticity_threshold)
          mark[static_cast<std::size_t>(row) * W + gx] = 1;
        else if (w < -params.vorticity_threshold)
          mark[static_cast<std::size_t>(row) * W + gx] = -1;
      }
    }
    util::UnionFind uf(static_cast<std::size_t>(h.rows) * W);
    for (std::uint32_t row = 0; row < h.rows; ++row) {
      for (std::uint32_t x = 0; x < W; ++x) {
        const std::size_t idx = static_cast<std::size_t>(row) * W + x;
        if (mark[idx] == 0) continue;
        if (x + 1 < W && mark[idx + 1] == mark[idx]) uf.unite(idx, idx + 1);
        if (row + 1 < h.rows && mark[idx + W] == mark[idx])
          uf.unite(idx, idx + W);
      }
    }
    std::unordered_map<std::size_t, std::size_t> root_to_fragment;
    for (std::uint32_t row = 0; row < h.rows; ++row) {
      for (std::uint32_t x = 0; x < W; ++x) {
        const std::size_t idx = static_cast<std::size_t>(row) * W + x;
        if (mark[idx] == 0) continue;
        const std::size_t root = uf.find(idx);
        auto [it, inserted] =
            root_to_fragment.try_emplace(root, fragments.size());
        if (inserted) {
          apps::RegionFragment f;
          f.sign = mark[idx];
          fragments.push_back(std::move(f));
        }
        apps::RegionFragment& f = fragments[it->second];
        f.cells += 1;
        f.sum_x += x;
        f.sum_y += h.row0 + row;
        if (row == 0 || row + 1 == h.rows)
          f.boundary.push_back({static_cast<std::int32_t>(h.row0 + row),
                                static_cast<std::int32_t>(x)});
      }
    }
  }
  std::uint64_t cells = 0;
  for (const auto& f : fragments) cells += f.cells;
  return cells;
}

std::size_t defect_sweep(const repository::ChunkedDataset& ds) {
  constexpr std::uint8_t kNoDefect = 0xFF;
  std::size_t structs = 0;
  for (const auto& chunk : ds.chunks()) {
    const auto view = datagen::parse_lattice_chunk(chunk);
    const auto& h = view.header;
    const std::size_t cells =
        static_cast<std::size_t>(h.nx) * h.ny * h.zslabs;
    std::vector<std::uint16_t> occupancy(cells, 0);
    std::vector<std::uint8_t> displaced(cells, 0);
    const double tol2 = static_cast<double>(h.displacement_tol) *
                        static_cast<double>(h.displacement_tol);
    for (const auto& a : view.atoms) {
      const auto ix = static_cast<std::int64_t>(std::lround(a.x));
      const auto iy = static_cast<std::int64_t>(std::lround(a.y));
      const auto iz = static_cast<std::int64_t>(std::lround(a.z));
      const std::size_t i =
          ((static_cast<std::size_t>(iz - h.z0) * h.ny + iy) * h.nx) + ix;
      occupancy[i] += 1;
      const double dx = a.x - static_cast<double>(ix);
      const double dy = a.y - static_cast<double>(iy);
      const double dz = a.z - static_cast<double>(iz);
      if (dx * dx + dy * dy + dz * dz > tol2) displaced[i] = 1;
    }
    std::vector<std::uint8_t> kind_of(cells, kNoDefect);
    for (std::size_t i = 0; i < cells; ++i) {
      if (occupancy[i] == 0)
        kind_of[i] = static_cast<std::uint8_t>(datagen::DefectKind::Vacancy);
      else if (occupancy[i] >= 2)
        kind_of[i] =
            static_cast<std::uint8_t>(datagen::DefectKind::Interstitial);
      else if (displaced[i])
        kind_of[i] = static_cast<std::uint8_t>(datagen::DefectKind::Displaced);
    }

    const std::size_t nx = h.nx, ny = h.ny, nz = h.zslabs;
    auto idx_of = [&](std::size_t x, std::size_t y, std::size_t z) {
      return (z * ny + y) * nx + x;
    };
    util::UnionFind uf(nx * ny * nz);
    for (std::size_t z = 0; z < nz; ++z)
      for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t x = 0; x < nx; ++x) {
          const std::size_t i = idx_of(x, y, z);
          if (kind_of[i] == kNoDefect) continue;
          if (x + 1 < nx && kind_of[idx_of(x + 1, y, z)] == kind_of[i])
            uf.unite(i, idx_of(x + 1, y, z));
          if (y + 1 < ny && kind_of[idx_of(x, y + 1, z)] == kind_of[i])
            uf.unite(i, idx_of(x, y + 1, z));
          if (z + 1 < nz && kind_of[idx_of(x, y, z + 1)] == kind_of[i])
            uf.unite(i, idx_of(x, y, z + 1));
        }
    std::unordered_map<std::size_t, std::size_t> root_to_struct;
    std::vector<apps::DefectStruct> out;
    for (std::size_t z = 0; z < nz; ++z)
      for (std::size_t y = 0; y < ny; ++y)
        for (std::size_t x = 0; x < nx; ++x) {
          const std::size_t i = idx_of(x, y, z);
          if (kind_of[i] == kNoDefect) continue;
          const std::size_t root = uf.find(i);
          auto [it, inserted] = root_to_struct.try_emplace(root, out.size());
          if (inserted) {
            apps::DefectStruct s;
            s.kind = kind_of[i];
            out.push_back(std::move(s));
          }
          auto& out_cells = out[it->second].cells;
          out_cells.push_back(static_cast<std::int32_t>(x));
          out_cells.push_back(static_cast<std::int32_t>(y));
          out_cells.push_back(static_cast<std::int32_t>(h.z0 + z));
        }
    structs += out.size();
  }
  return structs;
}

}  // namespace fgp::bench::naive
