// Figure 8: dataset-size scaling for molecular defect detection — profile
// at 1-1 on 130 MB, predictions for a 1.8 GB dataset. Both datasets pull
// their payloads through the out-of-core streaming plane
// (bench::streamed_copy — DESIGN.md §15): flat memory in the dataset size,
// bit-identical results to the in-memory path.
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto profile_app =
      bench::streamed_copy(bench::make_defect_app(130.0, 24, 24, 96, 11));
  const auto target_app =
      bench::streamed_copy(bench::make_defect_app(1800.0, 32, 32, 144, 11));
  bench::global_model_figure(
      sweep,
      "Figure 8: Prediction Errors for Molecular Defect Detection, 1.8 GB "
      "dataset (base profile: 1-1 with 130 MB)",
      profile_app, target_app, sim::cluster_pentium_myrinet(),
      sim::wan_mbps(800.0), sim::wan_mbps(800.0));
  return 0;
}
