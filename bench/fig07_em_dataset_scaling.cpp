// Figure 7: dataset-size scaling for EM clustering — profile collected at
// 1-1 on a 350 MB dataset, predictions for a 1.4 GB dataset (global-
// reduction model only, as in the paper's §5.2).
//
// The two dataset sizes are views of ONE generated dataset: the target app
// generates the points once, and the profile app rebinds the same payload
// slabs to the smaller virtual size (bench::with_virtual_size, zero-copy —
// DESIGN.md §13). Both views stream their payloads out-of-core through
// budget-bounded mmap windows (bench::streamed_copy — DESIGN.md §15), so
// the scaling figure's memory footprint stays flat in the dataset size;
// results are bit-identical to the in-memory path (tests/test_dataplane).
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto target_app =
      bench::streamed_copy(bench::make_em_app(1400.0, 4.0, 42));
  const auto profile_app = bench::with_virtual_size(target_app, 350.0);
  bench::global_model_figure(
      sweep,
      "Figure 7: Prediction Errors for EM Clustering, 1.4 GB dataset (base "
      "profile: 1-1 with 350 MB)",
      profile_app, target_app, sim::cluster_pentium_myrinet(),
      sim::wan_mbps(800.0), sim::wan_mbps(800.0));
  return 0;
}
