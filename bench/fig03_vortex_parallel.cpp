// Figure 3: prediction errors for vortex detection, base profile 1-1,
// 710 MB dataset.
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto app = bench::make_vortex_app(710.0, 256, 7);
  bench::three_model_figure(
      sweep,
      "Figure 3: Prediction Errors for Vortex Detection (base profile 1-1, "
      "710 MB)",
      app, sim::cluster_pentium_myrinet(), sim::wan_mbps(800.0));
  return 0;
}
