// Ablation A1: how badly does compute-side caching break the published
// prediction model?
//
// The model scales t_d by n/n̂ — it assumes retrieval lives on the
// repository side on every pass. With FREERIDE-G caching, passes after the
// first read from *compute-local* disk, so part of t_d actually scales
// with ĉ and the network term vanishes after pass 0. This bench runs the
// multi-pass k-means workload with caching off and on, predicting both
// with the unmodified global-reduction model from a 1-1 profile of the
// matching mode.
#include <iostream>

#include "common.h"
#include "core/ipc_probe.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace fgp;
  const auto app = bench::make_kmeans_app(1400.0, 4.0, 42, /*passes=*/10);
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(800.0);

  std::cout << "Ablation A1: prediction error with and without compute-side "
               "caching (k-means, 10 passes, 1.4 GB, global-red model)\n\n";

  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = app.classes;
  opts.ipc = core::measure_ipc(cluster);

  // One profile per mode, both at 1-1.
  auto profile_for = [&](bool caching) {
    freeride::JobSetup setup;
    setup.dataset = app.dataset.get();
    setup.data_cluster = cluster;
    setup.compute_cluster = cluster;
    setup.wan = wan;
    setup.config.data_nodes = 1;
    setup.config.compute_nodes = 1;
    setup.config.enable_caching = caching;
    auto kernel = app.factory();
    return core::ProfileCollector::collect(setup, *kernel,
                                          &bench::shared_pool());
  };
  const core::Profile profile_off = profile_for(false);
  const core::Profile profile_on = profile_for(true);
  const core::Predictor pred_off(profile_off, opts);
  const core::Predictor pred_on(profile_on, opts);

  util::Table table(
      {"data-compute", "err (no caching)", "err (caching)", "speedup"});
  util::Accumulator worst_off, worst_on;
  for (const auto cfg : bench::paper_grid()) {
    const double exact_off =
        bench::simulate(app, cluster, cluster, wan, cfg, false)
            .timing.total.total();
    const double exact_on =
        bench::simulate(app, cluster, cluster, wan, cfg, true)
            .timing.total.total();

    core::ProfileConfig target = profile_off.config;
    target.data_nodes = cfg.n;
    target.compute_nodes = cfg.c;
    const double err_off =
        util::relative_error(exact_off, pred_off.predict(target).total());
    const double err_on =
        util::relative_error(exact_on, pred_on.predict(target).total());
    worst_off.add(err_off);
    worst_on.add(err_on);
    table.add_row({std::to_string(cfg.n) + "-" + std::to_string(cfg.c),
                   util::Table::pct(err_off), util::Table::pct(err_on),
                   util::Table::fmt(exact_off / exact_on, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\n  max error without caching: "
            << util::Table::pct(worst_off.max())
            << "; with caching: " << util::Table::pct(worst_on.max())
            << "\n  Takeaway: caching speeds multi-pass jobs up but mixes "
               "compute-side disk time into t_d, which the published n/n̂ "
               "scaling mispredicts as nodes change.\n\n";
  return 0;
}
