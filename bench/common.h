// common.h — shared harness for the figure-reproduction benches.
//
// Every bench binary reproduces one figure of the paper: it builds the
// figure's workload at paper-scale virtual size, collects the base profile
// the figure prescribes, predicts every configuration of the evaluation
// grid, runs the "exact" execution on the virtual cluster, and prints the
// relative-error table (E = |T_exact - T_pred| / T_exact, paper §5).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/classes.h"
#include "core/hetero.h"
#include "core/predictor.h"
#include "core/profile.h"
#include "freeride/runtime.h"
#include "sim/cluster.h"
#include "sim/network.h"
#include "sweep.h"

namespace fgp::obs {
class Registry;
class ResidualReport;
class TraceRecorder;
}  // namespace fgp::obs

namespace fgp::bench {

using KernelFactory =
    std::function<std::unique_ptr<freeride::ReductionKernel>()>;

struct NodeConfig {
  int n = 1;
  int c = 1;
};

/// The evaluation grid of the paper's Figures 2–13: data nodes 1..8,
/// compute nodes up to 16, compute >= data (14 configurations).
std::vector<NodeConfig> paper_grid();

/// One benchable application instance: a dataset at paper-scale virtual
/// size plus a factory producing fresh kernels (kernels hold per-job state).
struct BenchApp {
  std::string name;
  std::shared_ptr<repository::ChunkedDataset> dataset;
  KernelFactory factory;
  core::AppClasses classes;
};

/// The paper's five applications at configurable virtual/real sizes.
BenchApp make_kmeans_app(double virtual_mb, double real_mb,
                         std::uint64_t seed, int passes = 10);
BenchApp make_em_app(double virtual_mb, double real_mb, std::uint64_t seed,
                     int passes = 10);
BenchApp make_knn_app(double virtual_mb, double real_mb, std::uint64_t seed);
BenchApp make_vortex_app(double virtual_mb, int grid, std::uint64_t seed);
BenchApp make_defect_app(double virtual_mb, int nx, int ny, int nz,
                         std::uint64_t seed);

/// An aliasing view of `app` at another virtual size: the view's dataset
/// shares every payload slab with the original (zero payload bytes copied
/// — DESIGN.md §13), so a size-scaling figure generates its dataset once
/// and derives every scale point from it. Kernel factory and classes are
/// shared with the original app.
BenchApp with_virtual_size(const BenchApp& app, double virtual_mb);

/// An out-of-core copy of `app`: the dataset is saved to a throwaway
/// store under the system temp directory and reloaded with
/// DatasetStore::load_streamed, so every exact run pulls payloads through
/// budget-bounded mmap windows with block prefetch (DESIGN.md §15)
/// instead of holding them resident. Results are bit-identical to the
/// in-memory app (pinned by tests/test_dataplane.cpp). `budget_bytes` 0
/// keeps the default StreamConfig; `metrics` (optional) receives the
/// streamer's counters (store.windowed_bytes, prefetch hits/misses,
/// window recycles). The temp store is removed when the last streamed
/// view of the dataset drops.
BenchApp streamed_copy(const BenchApp& app, std::size_t budget_bytes = 0,
                       obs::Registry* metrics = nullptr);

/// The other generalized-reduction algorithms the paper names (§2.2) plus
/// the volumetric vortex miner.
BenchApp make_apriori_app(double virtual_mb, std::uint64_t seed);
BenchApp make_ann_app(double virtual_mb, std::uint64_t seed, int passes = 10);
BenchApp make_knn_classify_app(double virtual_mb, std::uint64_t seed);
BenchApp make_vortex3d_app(double virtual_mb, std::uint64_t seed);

/// Observability sinks a figure driver can fill in (all optional):
/// `residuals` receives one per-component point per grid configuration
/// (global-reduction model), `trace`/`metrics` receive one traced exact
/// run of the grid's largest configuration.
struct FigureObs {
  obs::TraceRecorder* trace = nullptr;
  obs::Registry* metrics = nullptr;
  obs::ResidualReport* residuals = nullptr;
};

/// Runs one job and returns its timing. By default the runtime borrows the
/// process-wide shared pool (hardware concurrency) for its two-level
/// reduction; pass nullptr for a fully serial reference run — the result is
/// bit-identical either way (DESIGN.md §11). `trace`/`metrics` (optional)
/// are handed to the runtime as its observability sinks. `engine` selects
/// the simulation core; Event and PhaseLoop are byte-identical by contract
/// (tests/test_engine_swap.cpp).
freeride::RunResult simulate(const BenchApp& app,
                             const sim::ClusterSpec& data_cluster,
                             const sim::ClusterSpec& compute_cluster,
                             const sim::WanSpec& wan, NodeConfig config,
                             bool caching = false,
                             util::ThreadPool* pool = &shared_pool(),
                             obs::TraceRecorder* trace = nullptr,
                             obs::Registry* metrics = nullptr,
                             freeride::EngineMode engine =
                                 freeride::EngineMode::Event);

/// Collects the prediction-model profile for one configuration (same pool
/// and engine semantics as simulate()).
core::Profile profile_of(const BenchApp& app,
                         const sim::ClusterSpec& data_cluster,
                         const sim::ClusterSpec& compute_cluster,
                         const sim::WanSpec& wan, NodeConfig config,
                         util::ThreadPool* pool = &shared_pool(),
                         freeride::EngineMode engine =
                             freeride::EngineMode::Event);

/// Figures 2–6: base profile at 1-1, all three prediction models across
/// the grid, one table. The grid's exact runs execute concurrently on
/// `sweep`. When `fig_obs` has sinks, residuals cover every grid point and
/// one extra traced run records the largest configuration.
void three_model_figure(const SweepRunner& sweep, const std::string& title,
                        const BenchApp& app, const sim::ClusterSpec& cluster,
                        const sim::WanSpec& wan, FigureObs fig_obs = {});

/// Figures 7–10: global-reduction model only; the profile may use a
/// different dataset (size scaling) and/or WAN (bandwidth change).
void global_model_figure(const SweepRunner& sweep, const std::string& title,
                         const BenchApp& profile_app,
                         const BenchApp& target_app,
                         const sim::ClusterSpec& cluster,
                         const sim::WanSpec& profile_wan,
                         const sim::WanSpec& target_wan,
                         FigureObs fig_obs = {});

/// Figures 11–13: base profile on cluster A; component scaling factors
/// from representative apps run on identical configurations on A and B;
/// predictions and exact runs on cluster B. When `fig_obs` has sinks,
/// residuals cover every grid point and one extra traced run records the
/// largest configuration on cluster B.
void hetero_figure(const SweepRunner& sweep, const std::string& title,
                   const BenchApp& profile_app, const BenchApp& target_app,
                   const std::vector<BenchApp>& representatives,
                   NodeConfig base_config, const sim::ClusterSpec& cluster_a,
                   const sim::ClusterSpec& cluster_b, const sim::WanSpec& wan,
                   FigureObs fig_obs = {});

}  // namespace fgp::bench
