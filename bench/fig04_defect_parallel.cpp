// Figure 4: prediction errors for molecular defect detection, base profile
// 1-1, 130 MB dataset.
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto app = bench::make_defect_app(130.0, 24, 24, 96, 11);
  bench::three_model_figure(
      sweep,
      "Figure 4: Prediction Errors for Molecular Defect Detection (base "
      "profile 1-1, 130 MB)",
      app, sim::cluster_pentium_myrinet(), sim::wan_mbps(800.0));
  return 0;
}
