// Micro-benchmarks (google-benchmark): per-chunk throughput of the five
// application kernels, reduction-object serialization, and merge cost.
// These are the real-CPU costs behind the work counts the virtual cluster
// charges; they are useful when calibrating MachineSpec parameters against
// new hardware.
#include <benchmark/benchmark.h>

#include "apps/defect.h"
#include "apps/em.h"
#include "apps/kmeans.h"
#include "apps/knn.h"
#include "apps/vortex.h"
#include "common.h"

namespace {

using namespace fgp;

const bench::BenchApp& points_app() {
  static const auto app = bench::make_kmeans_app(100.0, 2.0, 42, 1);
  return app;
}

void BM_KMeansProcessChunk(benchmark::State& state) {
  const auto& app = points_app();
  auto kernel = app.factory();
  auto obj = kernel->create_object();
  const auto& chunk = app.dataset->chunk(0);
  double bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel->process_chunk(chunk, *obj));
    bytes += static_cast<double>(chunk.real_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_KMeansProcessChunk);

void BM_EMProcessChunk(benchmark::State& state) {
  static const auto app = bench::make_em_app(100.0, 2.0, 42, 1);
  auto kernel = app.factory();
  const auto& chunk = app.dataset->chunk(0);
  double bytes = 0;
  for (auto _ : state) {
    auto obj = kernel->create_object();  // labels forbid double-processing
    benchmark::DoNotOptimize(kernel->process_chunk(chunk, *obj));
    bytes += static_cast<double>(chunk.real_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EMProcessChunk);

void BM_KnnProcessChunk(benchmark::State& state) {
  static const auto app = bench::make_knn_app(100.0, 2.0, 42);
  auto kernel = app.factory();
  auto obj = kernel->create_object();
  const auto& chunk = app.dataset->chunk(0);
  double bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel->process_chunk(chunk, *obj));
    bytes += static_cast<double>(chunk.real_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_KnnProcessChunk);

void BM_VortexProcessChunk(benchmark::State& state) {
  static const auto app = bench::make_vortex_app(100.0, 256, 7);
  auto kernel = app.factory();
  const auto& chunk = app.dataset->chunk(0);
  double bytes = 0;
  for (auto _ : state) {
    auto obj = kernel->create_object();
    benchmark::DoNotOptimize(kernel->process_chunk(chunk, *obj));
    bytes += static_cast<double>(chunk.real_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_VortexProcessChunk);

void BM_DefectProcessChunk(benchmark::State& state) {
  static const auto app = bench::make_defect_app(100.0, 24, 24, 96, 11);
  auto kernel = app.factory();
  const auto& chunk = app.dataset->chunk(0);
  double bytes = 0;
  for (auto _ : state) {
    auto obj = kernel->create_object();
    benchmark::DoNotOptimize(kernel->process_chunk(chunk, *obj));
    bytes += static_cast<double>(chunk.real_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DefectProcessChunk);

void BM_ReductionObjectSerialize(benchmark::State& state) {
  const auto& app = points_app();
  auto kernel = app.factory();
  auto obj = kernel->create_object();
  kernel->process_chunk(app.dataset->chunk(0), *obj);
  double bytes = 0;
  for (auto _ : state) {
    util::ByteWriter w;
    obj->serialize(w);
    benchmark::DoNotOptimize(w.size());
    bytes += static_cast<double>(w.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ReductionObjectSerialize);

void BM_ReductionObjectMerge(benchmark::State& state) {
  const auto& app = points_app();
  auto kernel = app.factory();
  auto a = kernel->create_object();
  auto b = kernel->create_object();
  kernel->process_chunk(app.dataset->chunk(0), *a);
  kernel->process_chunk(app.dataset->chunk(1), *b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel->merge(*a, *b));
  }
}
BENCHMARK(BM_ReductionObjectMerge);

void BM_ChunkChecksumVerify(benchmark::State& state) {
  const auto& chunk = points_app().dataset->chunk(0);
  double bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunk.verify());
    bytes += static_cast<double>(chunk.real_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ChunkChecksumVerify);

}  // namespace

BENCHMARK_MAIN();
