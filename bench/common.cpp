#include "common.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <utility>

#include "apps/ann.h"
#include "apps/apriori.h"
#include "apps/defect.h"
#include "apps/em.h"
#include "apps/kmeans.h"
#include "apps/knn.h"
#include "apps/knn_classify.h"
#include "apps/vortex.h"
#include "apps/vortex3d.h"
#include "core/ipc_probe.h"
#include "core/residuals.h"
#include "datagen/flowfield.h"
#include "datagen/flowfield3d.h"
#include "datagen/lattice.h"
#include "datagen/points.h"
#include "datagen/transactions.h"
#include "obs/metrics.h"
#include "obs/residual.h"
#include "obs/trace.h"
#include "repository/store.h"
#include "util/stats.h"
#include "util/table.h"

namespace fgp::bench {

std::vector<NodeConfig> paper_grid() {
  std::vector<NodeConfig> grid;
  for (int n : {1, 2, 4, 8})
    for (int c = n; c <= 16; c *= 2) grid.push_back({n, c});
  return grid;
}

BenchApp make_kmeans_app(double virtual_mb, double real_mb,
                         std::uint64_t seed, int passes) {
  auto spec = datagen::scaled_points_spec(virtual_mb, real_mb, 8, seed);
  spec.num_components = 8;
  spec.name = "kmeans-points";
  auto generated =
      std::make_shared<datagen::PointsDataset>(datagen::generate_points(spec));

  BenchApp app;
  app.name = "kmeans";
  app.dataset = std::shared_ptr<repository::ChunkedDataset>(
      generated, &generated->dataset);
  apps::KMeansParams params;
  params.k = 8;
  params.dim = 8;
  params.initial_centers =
      apps::initial_centers_from_dataset(generated->dataset, 8, 8);
  params.fixed_passes = passes;
  app.factory = [params] {
    return std::make_unique<apps::KMeansKernel>(params);
  };
  app.classes = {core::RoSizeClass::Constant,
                 core::GlobalReductionClass::LinearConstant};
  return app;
}

BenchApp make_em_app(double virtual_mb, double real_mb, std::uint64_t seed,
                     int passes) {
  auto spec = datagen::scaled_points_spec(virtual_mb, real_mb, 8, seed);
  spec.num_components = 4;
  spec.name = "em-points";
  auto generated =
      std::make_shared<datagen::PointsDataset>(datagen::generate_points(spec));

  BenchApp app;
  app.name = "em";
  app.dataset = std::shared_ptr<repository::ChunkedDataset>(
      generated, &generated->dataset);
  apps::EMParams params;
  params.g = 4;
  params.dim = 8;
  params.initial_means =
      apps::initial_centers_from_dataset(generated->dataset, 4, 8);
  params.fixed_passes = passes;
  app.factory = [params] { return std::make_unique<apps::EMKernel>(params); };
  app.classes = {core::RoSizeClass::LinearWithData,
                 core::GlobalReductionClass::ConstantLinear};
  return app;
}

BenchApp make_knn_app(double virtual_mb, double real_mb, std::uint64_t seed) {
  auto spec = datagen::scaled_points_spec(virtual_mb, real_mb, 8, seed);
  spec.num_components = 4;
  spec.name = "knn-points";
  auto generated =
      std::make_shared<datagen::PointsDataset>(datagen::generate_points(spec));

  BenchApp app;
  app.name = "knn";
  app.dataset = std::shared_ptr<repository::ChunkedDataset>(
      generated, &generated->dataset);
  apps::KnnParams params;
  params.k = 16;
  params.dim = 8;
  // 8 query points drawn from the dataset itself.
  params.queries = apps::initial_centers_from_dataset(generated->dataset, 8, 8);
  app.factory = [params] { return std::make_unique<apps::KnnKernel>(params); };
  app.classes = {core::RoSizeClass::Constant,
                 core::GlobalReductionClass::LinearConstant};
  return app;
}

BenchApp make_vortex_app(double virtual_mb, int grid, std::uint64_t seed) {
  datagen::FlowSpec spec;
  spec.width = grid;
  spec.height = grid;
  spec.num_vortices = 6;
  // Aim for ~11 MB virtual chunks (constant chunk size, like the points
  // generator) within what the row count allows.
  const int chunks_wanted =
      std::clamp(static_cast<int>(virtual_mb / 11.0), 8, grid / 2);
  spec.rows_per_chunk = std::max(2, grid / chunks_wanted);
  spec.seed = seed;
  spec.name = "vortex-field";
  // Generate once, then rescale in place: the real payload size (halo rows
  // and headers inflate it beyond grid*grid cells) is only known after
  // generation, and virtual_scale never affects the payload bytes.
  auto generated =
      std::make_shared<datagen::FlowDataset>(datagen::generate_flowfield(spec));
  generated->dataset.set_uniform_virtual_scale(
      virtual_mb * 1e6 /
      static_cast<double>(generated->dataset.total_real_bytes()));

  BenchApp app;
  app.name = "vortex";
  app.dataset = std::shared_ptr<repository::ChunkedDataset>(
      generated, &generated->dataset);
  apps::VortexParams params;
  params.vorticity_threshold = 0.8;
  params.min_cells = 8;
  app.factory = [params] {
    return std::make_unique<apps::VortexKernel>(params);
  };
  app.classes = {core::RoSizeClass::LinearWithData,
                 core::GlobalReductionClass::ConstantLinear};
  return app;
}

BenchApp make_defect_app(double virtual_mb, int nx, int ny, int nz,
                         std::uint64_t seed) {
  datagen::LatticeSpec spec;
  spec.nx = nx;
  spec.ny = ny;
  spec.nz = nz;
  spec.num_vacancy_clusters = 8;
  spec.num_interstitials = 6;
  spec.num_displaced_clusters = 6;
  // Aim for ~2.7 MB virtual chunks within what the plane count allows.
  const int chunks_wanted =
      std::clamp(static_cast<int>(virtual_mb / 2.7), 8, nz);
  spec.zslabs_per_chunk = std::max(1, nz / chunks_wanted);
  spec.seed = seed;
  spec.name = "defect-lattice";
  auto generated =
      std::make_shared<datagen::LatticeDataset>(datagen::generate_lattice(spec));
  generated->dataset.set_uniform_virtual_scale(
      virtual_mb * 1e6 /
      static_cast<double>(generated->dataset.total_real_bytes()));

  BenchApp app;
  app.name = "defect";
  app.dataset = std::shared_ptr<repository::ChunkedDataset>(
      generated, &generated->dataset);
  app.factory = [] { return std::make_unique<apps::DefectKernel>(); };
  app.classes = {core::RoSizeClass::LinearWithData,
                 core::GlobalReductionClass::ConstantLinear};
  return app;
}

namespace {

/// Forwarding ChunkSource that owns the throwaway store directory backing
/// a streamed bench dataset: views share the source, so the directory
/// lives exactly as long as any of them and is removed with the last one.
class ScopedStoreSource final : public repository::ChunkSource {
 public:
  ScopedStoreSource(std::shared_ptr<const repository::ChunkSource> inner,
                    std::filesystem::path dir)
      : inner_(std::move(inner)), dir_(std::move(dir)) {}
  ~ScopedStoreSource() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // best effort
  }
  repository::Chunk fetch(std::size_t index) const override {
    return inner_->fetch(index);
  }
  void prefetch(std::size_t index) const override {
    inner_->prefetch(index);
  }

 private:
  std::shared_ptr<const repository::ChunkSource> inner_;
  std::filesystem::path dir_;
};

}  // namespace

BenchApp streamed_copy(const BenchApp& app, std::size_t budget_bytes,
                       obs::Registry* metrics) {
  namespace fs = std::filesystem;
  // One directory per streamed copy: a process-local sequence number keeps
  // copies within a run apart, the address salt keeps concurrent bench
  // processes from clobbering each other's stores.
  static std::atomic<unsigned> sequence{0};
  const unsigned seq = sequence.fetch_add(1);
  const auto salt = reinterpret_cast<std::uintptr_t>(&sequence);
  const fs::path root =
      fs::temp_directory_path() /
      ("fgp_streamed_" + std::to_string(salt) + "_" + std::to_string(seq));
  const repository::DatasetStore store(root, nullptr, metrics);
  store.save(*app.dataset);

  repository::StreamConfig cfg;
  if (budget_bytes != 0) cfg.budget_bytes = budget_bytes;
  auto ds = store.load_streamed(app.dataset->meta().name, cfg);
  ds.attach_source(
      std::make_shared<const ScopedStoreSource>(ds.source(), root));

  BenchApp out = app;
  out.dataset = std::make_shared<repository::ChunkedDataset>(std::move(ds));
  return out;
}

BenchApp with_virtual_size(const BenchApp& app, double virtual_mb) {
  BenchApp view = app;
  const double scale =
      virtual_mb * 1e6 /
      static_cast<double>(app.dataset->total_real_bytes());
  view.dataset = std::make_shared<repository::ChunkedDataset>(
      app.dataset->with_uniform_virtual_scale(scale));
  return view;
}

BenchApp make_apriori_app(double virtual_mb, std::uint64_t seed) {
  auto spec = datagen::default_market_baskets(30000, seed);
  spec.transactions_per_chunk = 30000 / 64;
  spec.name = "apriori-baskets";
  auto generated = std::make_shared<datagen::TransactionsDataset>(
      datagen::generate_transactions(spec));
  generated->dataset.set_uniform_virtual_scale(
      virtual_mb * 1e6 /
      static_cast<double>(generated->dataset.total_real_bytes()));

  BenchApp app;
  app.name = "apriori";
  app.dataset = std::shared_ptr<repository::ChunkedDataset>(
      generated, &generated->dataset);
  apps::AprioriParams params;
  params.num_items = 200;
  params.min_support = 0.08;
  params.max_level = 4;
  app.factory = [params] {
    return std::make_unique<apps::AprioriKernel>(params);
  };
  app.classes = {core::RoSizeClass::Constant,
                 core::GlobalReductionClass::LinearConstant};
  return app;
}

BenchApp make_ann_app(double virtual_mb, std::uint64_t seed, int passes) {
  auto spec = datagen::scaled_points_spec(virtual_mb, 1.0, 8, seed);
  spec.num_components = 4;
  spec.name = "ann-points";
  auto generated = std::make_shared<datagen::LabeledPointsDataset>(
      datagen::generate_labeled_points(spec));
  generated->dataset.set_uniform_virtual_scale(
      virtual_mb * 1e6 /
      static_cast<double>(generated->dataset.total_real_bytes()));

  BenchApp app;
  app.name = "ann";
  app.dataset = std::shared_ptr<repository::ChunkedDataset>(
      generated, &generated->dataset);
  apps::AnnParams params;
  params.dim = 8;
  params.classes = 4;
  params.hidden = 16;
  params.fixed_passes = passes;
  app.factory = [params] { return std::make_unique<apps::AnnKernel>(params); };
  app.classes = {core::RoSizeClass::Constant,
                 core::GlobalReductionClass::LinearConstant};
  return app;
}

BenchApp make_knn_classify_app(double virtual_mb, std::uint64_t seed) {
  auto spec = datagen::scaled_points_spec(virtual_mb, 1.0, 8, seed);
  spec.num_components = 4;
  spec.name = "knnc-points";
  auto generated = std::make_shared<datagen::LabeledPointsDataset>(
      datagen::generate_labeled_points(spec));
  generated->dataset.set_uniform_virtual_scale(
      virtual_mb * 1e6 /
      static_cast<double>(generated->dataset.total_real_bytes()));

  BenchApp app;
  app.name = "knn-classify";
  app.dataset = std::shared_ptr<repository::ChunkedDataset>(
      generated, &generated->dataset);
  apps::KnnClassifyParams params;
  params.k = 16;
  params.dim = 8;
  params.queries = generated->true_centers;
  app.factory = [params] {
    return std::make_unique<apps::KnnClassifyKernel>(params);
  };
  app.classes = {core::RoSizeClass::Constant,
                 core::GlobalReductionClass::LinearConstant};
  return app;
}

BenchApp make_vortex3d_app(double virtual_mb, std::uint64_t seed) {
  datagen::Flow3dSpec spec;
  spec.nx = 48;
  spec.ny = 48;
  spec.nz = 96;
  spec.num_tubes = 4;
  spec.planes_per_chunk = 2;  // 48 chunks
  spec.seed = seed;
  spec.name = "vortex3d-volume";
  auto generated = std::make_shared<datagen::Flow3dDataset>(
      datagen::generate_flowfield3d(spec));
  generated->dataset.set_uniform_virtual_scale(
      virtual_mb * 1e6 /
      static_cast<double>(generated->dataset.total_real_bytes()));

  BenchApp app;
  app.name = "vortex3d";
  app.dataset = std::shared_ptr<repository::ChunkedDataset>(
      generated, &generated->dataset);
  apps::Vortex3dParams params;
  app.factory = [params] {
    return std::make_unique<apps::Vortex3dKernel>(params);
  };
  app.classes = {core::RoSizeClass::LinearWithData,
                 core::GlobalReductionClass::ConstantLinear};
  return app;
}

freeride::RunResult simulate(const BenchApp& app,
                             const sim::ClusterSpec& data_cluster,
                             const sim::ClusterSpec& compute_cluster,
                             const sim::WanSpec& wan, NodeConfig config,
                             bool caching, util::ThreadPool* pool,
                             obs::TraceRecorder* trace,
                             obs::Registry* metrics,
                             freeride::EngineMode engine) {
  freeride::JobSetup setup;
  setup.dataset = app.dataset.get();
  setup.data_cluster = data_cluster;
  setup.compute_cluster = compute_cluster;
  setup.wan = wan;
  setup.config.data_nodes = config.n;
  setup.config.compute_nodes = config.c;
  setup.config.enable_caching = caching;
  setup.trace = trace;
  setup.metrics = metrics;
  setup.engine = engine;
  auto kernel = app.factory();
  return freeride::Runtime(pool).run(setup, *kernel);
}

core::Profile profile_of(const BenchApp& app,
                         const sim::ClusterSpec& data_cluster,
                         const sim::ClusterSpec& compute_cluster,
                         const sim::WanSpec& wan, NodeConfig config,
                         util::ThreadPool* pool, freeride::EngineMode engine) {
  freeride::JobSetup setup;
  setup.dataset = app.dataset.get();
  setup.data_cluster = data_cluster;
  setup.compute_cluster = compute_cluster;
  setup.wan = wan;
  setup.config.data_nodes = config.n;
  setup.config.compute_nodes = config.c;
  setup.engine = engine;
  auto kernel = app.factory();
  return core::ProfileCollector::collect(setup, *kernel, pool);
}

namespace {

std::string config_label(NodeConfig c) {
  return std::to_string(c.n) + "-" + std::to_string(c.c);
}

core::ProfileConfig target_config(const core::Profile& base, NodeConfig c,
                                  double dataset_bytes, double bandwidth) {
  core::ProfileConfig t = base.config;
  t.data_nodes = c.n;
  t.compute_nodes = c.c;
  t.dataset_bytes = dataset_bytes;
  t.bandwidth_Bps = bandwidth;
  return t;
}

// One extra exact run of the grid's largest configuration, recorded into
// the figure's trace/metrics sinks. Runs from the calling thread (never
// inside sweep.map) so a single recorder sees one deterministic job.
void traced_largest_run(const FigureObs& fig_obs, const BenchApp& app,
                        const sim::ClusterSpec& cluster,
                        const sim::WanSpec& wan, NodeConfig largest,
                        util::ThreadPool* pool) {
  if (fig_obs.trace == nullptr && fig_obs.metrics == nullptr) return;
  simulate(app, cluster, cluster, wan, largest, false, pool, fig_obs.trace,
           fig_obs.metrics);
}

}  // namespace

void three_model_figure(const SweepRunner& sweep, const std::string& title,
                        const BenchApp& app, const sim::ClusterSpec& cluster,
                        const sim::WanSpec& wan, FigureObs fig_obs) {
  std::cout << title << "\n"
            << "  app=" << app.name << "  dataset="
            << app.dataset->total_virtual_bytes() / 1e6
            << " MB (virtual)  base profile 1-1\n\n";

  const core::Profile base =
      profile_of(app, cluster, cluster, wan, {1, 1}, sweep.pool());

  core::PredictorOptions opts;
  opts.classes = app.classes;
  opts.ipc = core::measure_ipc(cluster);

  // The exact runs are independent jobs: fan them out over the sweep pool
  // and read them back in grid order.
  const std::vector<NodeConfig> grid = paper_grid();
  const auto actuals = sweep.map(grid.size(), [&](std::size_t i) {
    return simulate(app, cluster, cluster, wan, grid[i], false, sweep.pool());
  });

  util::Table table({"data-compute", "no-comm", "red-comm", "global-red",
                     "T_exact(s)"});
  util::Accumulator worst_none, worst_rc, worst_gr;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const NodeConfig cfg = grid[i];
    const auto& actual = actuals[i];
    const double exact = actual.timing.total.total();
    const auto target = target_config(
        base, cfg, app.dataset->total_virtual_bytes(), wan.per_link_Bps);

    std::vector<std::string> row{config_label(cfg)};
    for (const auto model : {core::PredictionModel::NoCommunication,
                             core::PredictionModel::ReductionCommunication,
                             core::PredictionModel::GlobalReduction}) {
      opts.model = model;
      const core::PredictedTime predicted_time =
          core::Predictor(base, opts).predict(target);
      const double predicted = predicted_time.total();
      const double err = util::relative_error(exact, predicted);
      row.push_back(util::Table::pct(err));
      if (model == core::PredictionModel::NoCommunication) worst_none.add(err);
      if (model == core::PredictionModel::ReductionCommunication)
        worst_rc.add(err);
      if (model == core::PredictionModel::GlobalReduction) {
        worst_gr.add(err);
        if (fig_obs.residuals != nullptr)
          fig_obs.residuals->add(core::make_residual_point(
              config_label(cfg), predicted_time, actual.timing.total));
      }
    }
    row.push_back(util::Table::fmt(exact, 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n  max error: no-comm " << util::Table::pct(worst_none.max())
            << ", red-comm " << util::Table::pct(worst_rc.max())
            << ", global-red " << util::Table::pct(worst_gr.max()) << "\n\n";

  if (fig_obs.residuals != nullptr) {
    fig_obs.residuals->set_sweep(app.name);
    fig_obs.residuals->set_model("global-reduction");
  }
  traced_largest_run(fig_obs, app, cluster, wan, grid.back(), sweep.pool());
}

void global_model_figure(const SweepRunner& sweep, const std::string& title,
                         const BenchApp& profile_app,
                         const BenchApp& target_app,
                         const sim::ClusterSpec& cluster,
                         const sim::WanSpec& profile_wan,
                         const sim::WanSpec& target_wan, FigureObs fig_obs) {
  std::cout << title << "\n"
            << "  app=" << target_app.name << "  profile dataset="
            << profile_app.dataset->total_virtual_bytes() / 1e6
            << " MB @ " << profile_wan.per_link_Bps * 8 / 1e3
            << " Kbps -> target dataset="
            << target_app.dataset->total_virtual_bytes() / 1e6 << " MB @ "
            << target_wan.per_link_Bps * 8 / 1e3
            << " Kbps  (global-reduction model)\n\n";

  const core::Profile base = profile_of(profile_app, cluster, cluster,
                                        profile_wan, {1, 1}, sweep.pool());

  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = target_app.classes;
  opts.ipc = core::measure_ipc(cluster);
  const core::Predictor predictor(base, opts);

  const std::vector<NodeConfig> grid = paper_grid();
  const auto actuals = sweep.map(grid.size(), [&](std::size_t i) {
    return simulate(target_app, cluster, cluster, target_wan, grid[i], false,
                    sweep.pool());
  });

  util::Table table({"data-compute", "error", "T_exact(s)", "T_pred(s)"});
  util::Accumulator worst;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const NodeConfig cfg = grid[i];
    const auto& actual = actuals[i];
    const double exact = actual.timing.total.total();
    const auto target =
        target_config(base, cfg, target_app.dataset->total_virtual_bytes(),
                      target_wan.per_link_Bps);
    const core::PredictedTime predicted_time = predictor.predict(target);
    const double predicted = predicted_time.total();
    const double err = util::relative_error(exact, predicted);
    worst.add(err);
    if (fig_obs.residuals != nullptr)
      fig_obs.residuals->add(core::make_residual_point(
          config_label(cfg), predicted_time, actual.timing.total));
    table.add_row({config_label(cfg), util::Table::pct(err),
                   util::Table::fmt(exact, 2), util::Table::fmt(predicted, 2)});
  }
  table.print(std::cout);
  std::cout << "\n  max error: " << util::Table::pct(worst.max()) << "\n\n";

  if (fig_obs.residuals != nullptr) {
    fig_obs.residuals->set_sweep(target_app.name);
    fig_obs.residuals->set_model("global-reduction");
  }
  traced_largest_run(fig_obs, target_app, cluster, target_wan, grid.back(),
                     sweep.pool());
}

void hetero_figure(const SweepRunner& sweep, const std::string& title,
                   const BenchApp& profile_app, const BenchApp& target_app,
                   const std::vector<BenchApp>& representatives,
                   NodeConfig base_config, const sim::ClusterSpec& cluster_a,
                   const sim::ClusterSpec& cluster_b,
                   const sim::WanSpec& wan, FigureObs fig_obs) {
  std::cout << title << "\n"
            << "  app=" << target_app.name << "  base profile "
            << base_config.n << "-" << base_config.c << " on "
            << cluster_a.name << " ("
            << profile_app.dataset->total_virtual_bytes() / 1e6
            << " MB) -> predictions for " << cluster_b.name << " ("
            << target_app.dataset->total_virtual_bytes() / 1e6 << " MB)\n";

  // Representative applications on identical configurations on A and B —
  // 2 * |reps| independent profile runs, fanned out together.
  const auto rep_profiles =
      sweep.map(representatives.size(), [&](std::size_t i) {
        const auto& rep = representatives[i];
        core::Profile a =
            profile_of(rep, cluster_a, cluster_a, wan, base_config,
                       sweep.pool());
        a.app = rep.name;
        core::Profile b =
            profile_of(rep, cluster_b, cluster_b, wan, base_config,
                       sweep.pool());
        b.app = rep.name;
        return std::make_pair(std::move(a), std::move(b));
      });
  std::vector<core::Profile> on_a, on_b;
  for (const auto& [a, b] : rep_profiles) {
    on_a.push_back(a);
    on_b.push_back(b);
  }
  const core::ScalingFactors factors = core::compute_scaling_factors(on_a, on_b);
  std::cout << "  scaling factors: s_d=" << util::Table::fmt(factors.disk, 3)
            << " s_n=" << util::Table::fmt(factors.network, 3)
            << " s_c=" << util::Table::fmt(factors.compute, 3) << "\n\n";

  const core::Profile base = profile_of(profile_app, cluster_a, cluster_a,
                                        wan, base_config, sweep.pool());
  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = target_app.classes;
  opts.ipc = core::measure_ipc(cluster_a);
  const core::HeteroPredictor predictor(core::Predictor(base, opts), factors);

  const std::vector<NodeConfig> grid = paper_grid();
  const auto actuals = sweep.map(grid.size(), [&](std::size_t i) {
    return simulate(target_app, cluster_b, cluster_b, wan, grid[i], false,
                    sweep.pool());
  });

  util::Table table({"data-compute", "error", "T_exact(s)", "T_pred(s)"});
  util::Accumulator worst;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const NodeConfig cfg = grid[i];
    const auto& actual = actuals[i];
    const double exact = actual.timing.total.total();
    const auto target = target_config(
        base, cfg, target_app.dataset->total_virtual_bytes(), wan.per_link_Bps);
    const core::PredictedTime predicted_time = predictor.predict(target);
    const double predicted = predicted_time.total();
    const double err = util::relative_error(exact, predicted);
    worst.add(err);
    if (fig_obs.residuals != nullptr)
      fig_obs.residuals->add(core::make_residual_point(
          config_label(cfg), predicted_time, actual.timing.total));
    table.add_row({config_label(cfg), util::Table::pct(err),
                   util::Table::fmt(exact, 2), util::Table::fmt(predicted, 2)});
  }
  table.print(std::cout);
  std::cout << "\n  max error: " << util::Table::pct(worst.max()) << "\n\n";

  if (fig_obs.residuals != nullptr) {
    fig_obs.residuals->set_sweep(target_app.name);
    fig_obs.residuals->set_model("hetero-global-reduction");
  }
  traced_largest_run(fig_obs, target_app, cluster_b, wan, grid.back(),
                     sweep.pool());
}

}  // namespace fgp::bench
