// sweep.h — concurrent execution of the independent configurations of a
// figure sweep over one shared host pool.
//
// Every configuration of a paper grid is an independent job: it builds its
// own kernel, reads the shared (immutable) dataset, and produces one
// RunResult. SweepRunner::map fans those jobs out over a single process-wide
// util::ThreadPool and places each result at its configuration's index, so
// the output order — and, because each Runtime's work partition is a pure
// function of the chunk list (DESIGN.md §11), every timing and reduction
// object — is bit-identical to a serial sweep at any pool size.
//
// The jobs themselves borrow the same pool for their two-level reduction
// (ThreadPool::parallel_for nests safely), so small grids still saturate
// the host.
#pragma once

#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace fgp::bench {

/// The process-wide host pool (hardware_concurrency workers) shared by
/// every sweep and every pooled Runtime in a bench binary. Constructed on
/// first use.
util::ThreadPool& shared_pool();

class SweepRunner {
 public:
  /// Runs sweeps over the process-wide shared pool.
  SweepRunner() : pool_(&shared_pool()) {}

  /// Runs sweeps over `pool`; null means fully serial (reference mode for
  /// determinism tests).
  explicit SweepRunner(util::ThreadPool* pool) : pool_(pool) {}

  /// The pool jobs should borrow for their own Runtime (null = serial).
  util::ThreadPool* pool() const { return pool_; }

  /// Runs fn(i) for i in [0, n) concurrently and returns the results in
  /// index order, independent of completion order.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) const {
    using T = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<std::optional<T>> slots(n);
    if (pool_ == nullptr) {
      for (std::size_t i = 0; i < n; ++i) slots[i].emplace(fn(i));
    } else {
      pool_->parallel_for(n,
                          [&](std::size_t i) { slots[i].emplace(fn(i)); });
    }
    std::vector<T> out;
    out.reserve(n);
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

 private:
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace fgp::bench
