// service_perf.cpp — throughput benchmark for the prediction service,
// tracked in BENCH_service.json at the repo root.
//
// The runner builds a synthetic grid at service scale — a ShardedCatalog
// holding a million-entry replica table (a quarter million datasets at
// 1–4 replicas each) over a dozen compute sites — registers the paper's
// application mix with the SelectionService, and hammers query_batch with
// thousands of seeded mixed queries: random dataset, random size, random
// top_k, three apps. It measures end-to-end queries/sec for a ladder of
// evaluate-phase modes (serial, then pool sizes doubling from 1 up to the
// host core count), after first cross-checking that every ladder rung
// returns bit-identical rankings to the serial reference (DESIGN.md §16 —
// a pool that changed an answer must fail the run, not get timed).
//
// Memory discipline: the catalog is immutable during the query storm, so
// the resident set after warmup must not grow while millions of queries
// stream through — the report records RSS after build, after warmup and
// after the full ladder so regressions show up in bench_diff.
//
// Observability (PR 9): before timing, every ladder rung re-runs one
// stream with the *full* observer set attached — per-query tracing, the
// slow-query log, the HDR latency recorder, a deterministically-fed
// residual drift monitor and a per-batch snapshot ring — and its
// deterministic-domain exports are byte-compared against the serial
// instrumented reference (DESIGN.md §17). The timed streams then carry
// only the lightweight HDR latency recorder, so the ladder's
// queries/sec stays comparable with earlier baselines while each rung
// also reports p50/p99 query latency.
//
// Usage: service_perf [--quick] [--out <path>] [--metrics-out <path>]
//                     [--config <path>] [--trace-out <path>]
//                     [--slowlog-out <path>] [--drift-out <path>]
//                     [--snapshots-out <path>] [--latency-out <path>]
//   --quick         small catalog + short repetitions (CI smoke)
//   --out           write the JSON report to <path> instead of stdout
//   --metrics-out   write the service's obs::Registry snapshot
//                   (fgpred-metrics-v1, validatable by fgptrace --validate)
//   --config        read a service::ServiceConfig JSON (shard count,
//                   slow-query threshold, ...)
//   --trace-out     write the instrumented reference pass's trace
//                   (fgpred-trace-v1)
//   --slowlog-out   write its slow-query log (fgpred-slowlog-v1)
//   --drift-out     write its drift-monitor state (fgpred-drift-v1)
//   --snapshots-out write its snapshot ring (fgpred-snapshots-v1)
//   --latency-out   write the per-rung latency quantile report
//                   (fgpred-servicelat-v1, the BENCH_servicelat.json feed)
//
// Wall-clock readings go through util::Stopwatch, the single sanctioned
// clock access point (tools/fgplint enforces this).
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__)
#include <unistd.h>
#endif

#include "core/ipc_probe.h"
#include "obs/drift.h"
#include "obs/hdr.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/snapshot_ring.h"
#include "obs/trace.h"
#include "service/config.h"
#include "service/selection_service.h"
#include "service/sharded_catalog.h"
#include "sim/cluster.h"
#include "sim/network.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/wallclock.h"

namespace fgp::bench {
namespace {

/// Current resident set size in bytes via /proc/self/statm (0 where the
/// proc filesystem or sysconf is unavailable).
double resident_bytes() {
#if defined(__unix__)
  std::ifstream statm("/proc/self/statm");
  std::uint64_t vm_pages = 0;
  std::uint64_t rss_pages = 0;
  if (!(statm >> vm_pages >> rss_pages)) return 0.0;
  return static_cast<double>(rss_pages) *
         static_cast<double>(::sysconf(_SC_PAGESIZE));
#else
  return 0.0;
#endif
}

/// A synthetic profile of the right shape for the service (the bench
/// measures selection throughput, not model accuracy, so the timing
/// breakdown only has to satisfy the Predictor's validity checks).
core::Profile synthetic_profile(const std::string& app, double t_compute) {
  core::Profile p;
  p.app = app;
  p.config.data_nodes = 2;
  p.config.compute_nodes = 4;
  p.config.dataset_bytes = 350e6;
  p.config.bandwidth_Bps = 1e7;
  p.config.data_cluster = "pentium-myrinet";
  p.config.compute_cluster = "pentium-myrinet";
  p.t_disk = 30.0;
  p.t_network = 60.0;
  p.t_compute = t_compute;
  p.t_ro = 5.0;
  p.t_g = 3.0;
  p.object_bytes = 64e3;
  p.passes = 5;
  return p;
}

struct Workload {
  std::unique_ptr<service::ShardedCatalog> catalog;
  std::vector<service::SelectionQuery> queries;
  std::size_t datasets = 0;
  std::size_t batch_size = 0;
};

std::string dataset_name(std::size_t i) { return "ds-" + std::to_string(i); }

/// Builds the service-scale grid: repositories and compute sites with a
/// sparse link mesh, then the replica table in one bulk registration (the
/// path a real catalog import takes).
Workload build_workload(const service::ServiceConfig& config, bool quick) {
  Workload w;
  // Full mode: 400k datasets at 1–4 replicas (mean 2.5) = 1,000,000
  // replica entries.
  w.datasets = quick ? 20000 : 400000;
  w.batch_size = quick ? 128 : 256;
  const std::size_t num_queries = quick ? 1024 : 4096;

  w.catalog = std::make_unique<service::ShardedCatalog>(
      static_cast<std::size_t>(config.shards));
  const auto pentium = sim::cluster_pentium_myrinet();
  const auto opteron = sim::cluster_opteron_infiniband();
  for (int r = 0; r < 8; ++r)
    w.catalog->register_repository_site(
        {"repo-" + std::to_string(r), pentium, 8});
  for (int c = 0; c < 12; ++c)
    w.catalog->register_compute_site(
        {"hpc-" + std::to_string(c), c % 2 == 0 ? pentium : opteron, 16});
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 12; ++c)
      if ((r + c) % 4 != 0)  // leave some repository/site pairs unreachable
        w.catalog->register_link("repo-" + std::to_string(r),
                                 "hpc-" + std::to_string(c),
                                 sim::wan_mbps(10.0 + 5.0 * ((r + 3 * c) % 9)));

  std::vector<grid::Replica> replicas;
  replicas.reserve(w.datasets * 5 / 2);
  for (std::size_t d = 0; d < w.datasets; ++d) {
    const int copies = 1 + static_cast<int>(d % 4);  // mean 2.5 replicas
    for (int r = 0; r < copies; ++r)
      replicas.push_back({dataset_name(d),
                          "repo-" + std::to_string((d + 3 * r) % 8),
                          1 << (d % 3)});
  }
  w.catalog->register_replicas(std::move(replicas));

  util::Rng rng(20260808);
  const char* apps[] = {"em", "kmeans", "knn"};
  w.queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    service::SelectionQuery q;
    q.app = apps[rng.next_below(3)];
    q.dataset = dataset_name(rng.next_below(w.datasets));
    q.dataset_bytes = rng.uniform(100e6, 4e9);
    q.top_k = 1 + static_cast<int>(rng.next_below(8));
    w.queries.push_back(std::move(q));
  }
  return w;
}

void register_apps(service::SelectionService& svc) {
  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.ipc = core::measure_ipc(sim::cluster_pentium_myrinet());
  const std::map<std::string, core::ScalingFactors> scalers = {
      {"opteron-infiniband", core::ScalingFactors{0.8, 0.9, 0.3}}};
  svc.register_app(synthetic_profile("em", 100.0), opts, scalers);
  svc.register_app(synthetic_profile("kmeans", 80.0), opts, scalers);
  auto knn_opts = opts;
  knn_opts.classes.ro = core::RoSizeClass::LinearWithData;
  svc.register_app(synthetic_profile("knn", 140.0), knn_opts, scalers);
}

/// Streams the whole query set through the service in fixed-size batches.
/// Returns total queries answered (for the throughput denominator).
std::size_t run_stream(const service::SelectionService& svc,
                       const Workload& w,
                       std::vector<service::SelectionResult>* sink) {
  std::size_t answered = 0;
  for (std::size_t off = 0; off < w.queries.size(); off += w.batch_size) {
    const std::size_t n = std::min(w.batch_size, w.queries.size() - off);
    auto results = svc.query_batch({w.queries.data() + off, n});
    answered += results.size();
    if (sink != nullptr)
      sink->insert(sink->end(), std::make_move_iterator(results.begin()),
                   std::make_move_iterator(results.end()));
  }
  return answered;
}

void check_bit_identical(const std::vector<service::SelectionResult>& got,
                         const std::vector<service::SelectionResult>& ref,
                         std::size_t pool_threads) {
  FGP_CHECK_MSG(got.size() == ref.size(),
                "pool=" << pool_threads << " answered " << got.size()
                        << " queries, serial answered " << ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto& a = got[i];
    const auto& b = ref[i];
    FGP_CHECK_MSG(a.error == b.error && a.ranked.size() == b.ranked.size() &&
                      a.candidates_considered == b.candidates_considered,
                  "pool=" << pool_threads << " diverged on query " << i);
    for (std::size_t j = 0; j < a.ranked.size(); ++j) {
      const bool same =
          a.ranked[j].predicted.disk == b.ranked[j].predicted.disk &&
          a.ranked[j].predicted.network == b.ranked[j].predicted.network &&
          a.ranked[j].predicted.compute == b.ranked[j].predicted.compute &&
          a.ranked[j].candidate.compute_site ==
              b.ranked[j].candidate.compute_site &&
          a.ranked[j].candidate.compute_nodes ==
              b.ranked[j].candidate.compute_nodes &&
          a.ranked[j].candidate.replica.repository ==
              b.ranked[j].candidate.replica.repository;
      FGP_CHECK_MSG(same, "pool=" << pool_threads
                                  << " ranking not bit-identical at query "
                                  << i << " rank " << j);
    }
  }
}

struct LadderRung {
  std::size_t pool_threads = 0;  ///< 0 = serial evaluate phase
  double seconds_per_stream = 0.0;
  double queries_per_second = 0.0;
  double p50_s = 0.0;  ///< per-query latency quantiles from the timed
  double p99_s = 0.0;  ///< streams (obs::HdrHistogram, <= ~3.1% error)
  std::string latency_json;  ///< full HDR export for the latency report
};

const char* rung_mode(const LadderRung& r) {
  return r.pool_threads == 0 ? "serial" : "pool";
}

/// One full stream with every observer attached. The deterministic-domain
/// exports (`*_det`) must come back byte-identical from every ladder rung
/// (DESIGN.md §17); the full exports feed the --trace-out/--slowlog-out/
/// --drift-out/--snapshots-out artifacts from the serial reference rung.
struct InstrumentedRun {
  std::string metrics_det;
  std::string trace_det;
  std::string drift_det;
  std::string snapshots_det;
  std::string trace_full;
  std::string slowlog_full;
  std::string drift_full;
  std::string snapshots_full;
  std::uint64_t latency_count = 0;
};

InstrumentedRun run_instrumented(const Workload& w,
                                 const service::ServiceConfig& config,
                                 util::ThreadPool* pool) {
  obs::Registry registry;
  service::SelectionService svc(w.catalog.get(), pool, &registry);
  register_apps(svc);

  obs::TraceRecorder trace;
  trace.enable_host(true);
  obs::SlowQueryLog slowlog(config.slow_query_threshold_s,
                            static_cast<std::size_t>(config.slowlog_capacity));
  obs::HdrHistogram latency;
  service::ServiceObservers observers;
  observers.trace = &trace;
  observers.slowlog = &slowlog;
  observers.latency = &latency;
  svc.set_observers(observers);

  // The drift monitor wants predicted-vs-observed pairs, but a selection
  // bench has no observed execution; synthesize the observation as a
  // seeded perturbation of the prediction, fed *in query order* so the
  // monitor's state is a pool-independent fact.
  obs::DriftMonitor drift;
  obs::SnapshotRing snapshots(64);
  const util::Stopwatch clock;
  util::Rng noise(20260808);
  std::size_t query_index = 0;
  for (std::size_t off = 0; off < w.queries.size(); off += w.batch_size) {
    const std::size_t n = std::min(w.batch_size, w.queries.size() - off);
    const auto results = svc.query_batch({w.queries.data() + off, n});
    for (const auto& r : results) {
      ++query_index;
      if (!r.ok() || r.ranked.empty()) continue;
      const auto& best = r.ranked.front();
      obs::ResidualPoint pt;
      pt.label = "q-" + std::to_string(query_index - 1);
      pt.predicted.disk = best.predicted.disk;
      pt.predicted.network = best.predicted.network;
      pt.predicted.compute_local = best.predicted.compute;
      const double eps = noise.uniform(-0.05, 0.05);
      pt.observed.disk = pt.predicted.disk * (1.0 + eps);
      pt.observed.network = pt.predicted.network * (1.0 + eps);
      pt.observed.compute_local = pt.predicted.compute_local * (1.0 + eps);
      drift.observe(pt);
    }
    // Per-batch snapshots make the ring a rate-over-time series; the
    // deterministic scalars at batch boundaries are pool-independent.
    snapshots.capture(registry, clock.seconds());
  }

  InstrumentedRun out;
  out.metrics_det = registry.to_json(false);
  out.trace_det = trace.to_chrome_json(false);
  out.drift_det = drift.to_json();
  out.snapshots_det = snapshots.to_json(false);
  out.trace_full = trace.to_chrome_json(true);
  out.slowlog_full = slowlog.to_json();
  out.drift_full = drift.to_json();
  out.snapshots_full = snapshots.to_json(true);
  out.latency_count = latency.count();
  return out;
}

void check_instrumented_identical(const InstrumentedRun& got,
                                  const InstrumentedRun& ref,
                                  std::size_t pool_threads) {
  FGP_CHECK_MSG(got.metrics_det == ref.metrics_det,
                "pool=" << pool_threads
                        << ": deterministic metrics diverged under "
                           "instrumentation");
  FGP_CHECK_MSG(got.trace_det == ref.trace_det,
                "pool=" << pool_threads
                        << ": deterministic trace diverged under "
                           "instrumentation");
  FGP_CHECK_MSG(got.drift_det == ref.drift_det,
                "pool=" << pool_threads << ": drift state diverged");
  FGP_CHECK_MSG(got.snapshots_det == ref.snapshots_det,
                "pool=" << pool_threads
                        << ": deterministic snapshots diverged");
}

/// Times one full query stream: warm up once, then repeat until
/// `min_seconds` of accumulated runtime and return mean per-stream seconds.
template <typename Fn>
double time_stream(Fn&& fn, double min_seconds) {
  fn();  // warmup (fault in the catalog, fill the profile cache)
  int reps = 1;
  for (;;) {
    util::Stopwatch sw;
    for (int i = 0; i < reps; ++i) fn();
    const double s = sw.seconds();
    if (s >= min_seconds) return s / reps;
    const double scale = std::min(16.0, 1.2 * min_seconds / std::max(s, 1e-9));
    reps = std::max(reps + 1, static_cast<int>(reps * scale));
  }
}

std::string to_json(const Workload& w, const service::ServiceConfig& config,
                    const std::vector<LadderRung>& ladder, double rss_built,
                    double rss_warm, double rss_after, bool quick) {
  double best = 0.0;
  for (const auto& r : ladder) best = std::max(best, r.queries_per_second);
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"schema\": \"fgpred-service-v1\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  os << "  \"note\": \"batched selection over a sharded catalog; rankings "
        "cross-checked bit-identical serial vs every pool rung before "
        "timing. queries/sec scales with host_cores (queries are "
        "independent); on 1 core the pooled rungs can only break even. "
        "bench_diff refuses comparisons across different host_cores.\",\n";
  os << "  \"shards\": " << config.shards << ",\n";
  os << "  \"datasets\": " << w.datasets << ",\n";
  os << "  \"replica_entries\": " << w.catalog->replica_count() << ",\n";
  os << "  \"queries\": " << w.queries.size() << ",\n";
  os << "  \"batch_size\": " << w.batch_size << ",\n";
  os << "  \"rss_after_build_bytes\": " << rss_built << ",\n";
  os << "  \"rss_after_warmup_bytes\": " << rss_warm << ",\n";
  os << "  \"rss_after_run_bytes\": " << rss_after << ",\n";
  os << "  \"ladder\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& r = ladder[i];
    os << "    {\n";
    os << "      \"mode\": \"" << rung_mode(r) << "\",\n";
    os << "      \"pool_threads\": " << r.pool_threads << ",\n";
    os << "      \"seconds_per_stream\": " << r.seconds_per_stream << ",\n";
    os << "      \"queries_per_second\": " << r.queries_per_second << ",\n";
    os << "      \"p50_s\": " << r.p50_s << ",\n";
    os << "      \"p99_s\": " << r.p99_s << "\n";
    os << "    }" << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"queries_per_second\": " << best << "\n";
  os << "}\n";
  return os.str();
}

/// The per-rung latency quantile report (schema "fgpred-servicelat-v1"),
/// the feed for BENCH_servicelat.json / tools/bench_diff. Latencies are
/// wall-clock, so like fgpred-service-v1 the report is machine-bound:
/// bench_diff refuses comparisons across different host_cores.
std::string latency_to_json(const std::vector<LadderRung>& ladder,
                            bool quick) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"fgpred-servicelat-v1\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  os << "  \"note\": \"per-query wall-clock latency quantiles from the "
        "timed streams (obs::HdrHistogram, <= ~3.1% quantile error). "
        "Machine-bound: bench_diff refuses comparison across different "
        "host_cores; regression direction is a p99 rise.\",\n";
  os << "  \"rungs\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& r = ladder[i];
    os << "    {\n";
    os << "      \"mode\": \"" << rung_mode(r) << "\",\n";
    os << "      \"pool_threads\": " << r.pool_threads << ",\n";
    os << "      \"latency\": " << r.latency_json << "\n";
    os << "    }" << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  FGP_CHECK_MSG(f.good(), "cannot read " << path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace
}  // namespace fgp::bench

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  std::string metrics_out_path;
  std::string config_path;
  std::string trace_out_path;
  std::string slowlog_out_path;
  std::string drift_out_path;
  std::string snapshots_out_path;
  std::string latency_out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--slowlog-out") == 0 && i + 1 < argc) {
      slowlog_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--drift-out") == 0 && i + 1 < argc) {
      drift_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshots-out") == 0 && i + 1 < argc) {
      snapshots_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--latency-out") == 0 && i + 1 < argc) {
      latency_out_path = argv[++i];
    } else {
      std::cerr << "usage: service_perf [--quick] [--out <path>] "
                   "[--metrics-out <path>] [--config <path>] "
                   "[--trace-out <path>] [--slowlog-out <path>] "
                   "[--drift-out <path>] [--snapshots-out <path>] "
                   "[--latency-out <path>]\n";
      return 2;
    }
  }
  const double min_seconds = quick ? 0.05 : 0.5;

  fgp::service::ServiceConfig config;
  config.shards = 64;
  if (!config_path.empty())
    config = fgp::service::parse_service_config(
        fgp::bench::read_file(config_path));

  const auto workload = fgp::bench::build_workload(config, quick);
  const double rss_built = fgp::bench::resident_bytes();
  std::cerr << "catalog: " << workload.catalog->replica_count()
            << " replica entries over " << workload.datasets << " datasets, "
            << config.shards << " shards\n";

  // Serial reference: results + metrics (the registry also feeds the
  // --metrics-out export; only the serial service records, so the
  // deterministic section is a pool-independent fact).
  fgp::obs::Registry metrics;
  fgp::service::SelectionService serial(workload.catalog.get(), nullptr,
                                        &metrics);
  fgp::bench::register_apps(serial);
  std::vector<fgp::service::SelectionResult> reference;
  fgp::bench::run_stream(serial, workload, &reference);
  const double rss_warm = fgp::bench::resident_bytes();
  // Snapshot now, before the timing loops re-run the stream a
  // wall-clock-dependent number of times: one reference stream's counters
  // are a reproducible fact, the timed repetitions are not.
  const std::string metrics_json = metrics.to_json(true);

  // Instrumented reference pass: full observer set attached, serial
  // evaluate. Its deterministic exports are the yardstick every pool
  // rung must reproduce byte-for-byte; its full exports become the
  // --trace-out/--slowlog-out/--drift-out/--snapshots-out artifacts.
  const auto instrumented_ref =
      fgp::bench::run_instrumented(workload, config, nullptr);
  FGP_CHECK_MSG(instrumented_ref.latency_count == workload.queries.size(),
                "HDR latency recorder missed queries: "
                    << instrumented_ref.latency_count << " of "
                    << workload.queries.size());

  std::vector<fgp::bench::LadderRung> ladder;
  {
    fgp::obs::HdrHistogram latency;
    fgp::service::ServiceObservers timed_observers;
    timed_observers.latency = &latency;
    serial.set_observers(timed_observers);
    fgp::bench::LadderRung rung;
    rung.seconds_per_stream = fgp::bench::time_stream(
        [&] { fgp::bench::run_stream(serial, workload, nullptr); },
        min_seconds);
    serial.set_observers({});
    rung.queries_per_second =
        static_cast<double>(workload.queries.size()) / rung.seconds_per_stream;
    rung.p50_s = latency.quantile(0.50);
    rung.p99_s = latency.quantile(0.99);
    rung.latency_json = latency.to_json_object();
    ladder.push_back(rung);
    std::cerr << "serial: " << rung.queries_per_second << " queries/sec\n";
  }
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  for (std::size_t threads = 1; threads <= cores; threads *= 2) {
    fgp::util::ThreadPool pool(threads);
    fgp::service::SelectionService svc(workload.catalog.get(), &pool);
    fgp::bench::register_apps(svc);
    std::vector<fgp::service::SelectionResult> results;
    fgp::bench::run_stream(svc, workload, &results);
    fgp::bench::check_bit_identical(results, reference, threads);
    fgp::bench::check_instrumented_identical(
        fgp::bench::run_instrumented(workload, config, &pool),
        instrumented_ref, threads);

    fgp::obs::HdrHistogram latency;
    fgp::service::ServiceObservers timed_observers;
    timed_observers.latency = &latency;
    svc.set_observers(timed_observers);
    fgp::bench::LadderRung rung;
    rung.pool_threads = threads;
    rung.seconds_per_stream = fgp::bench::time_stream(
        [&] { fgp::bench::run_stream(svc, workload, nullptr); }, min_seconds);
    svc.set_observers({});
    rung.queries_per_second =
        static_cast<double>(workload.queries.size()) / rung.seconds_per_stream;
    rung.p50_s = latency.quantile(0.50);
    rung.p99_s = latency.quantile(0.99);
    rung.latency_json = latency.to_json_object();
    ladder.push_back(rung);
    std::cerr << "pool=" << threads << ": " << rung.queries_per_second
              << " queries/sec (p50 " << rung.p50_s * 1e6 << " us, p99 "
              << rung.p99_s * 1e6 << " us)\n";
  }
  const double rss_after = fgp::bench::resident_bytes();

  const std::string json = fgp::bench::to_json(
      workload, config, ladder, rss_built, rss_warm, rss_after, quick);
  if (out_path.empty()) {
    std::cout << json;
  } else {
    std::ofstream f(out_path);
    f << json;
    std::cerr << "wrote " << out_path << "\n";
  }
  if (!metrics_out_path.empty()) {
    std::ofstream f(metrics_out_path);
    f << metrics_json;
    std::cerr << "wrote " << metrics_out_path << "\n";
  }
  const auto write_artifact = [](const std::string& path,
                                 const std::string& content) {
    if (path.empty()) return;
    std::ofstream f(path);
    f << content;
    std::cerr << "wrote " << path << "\n";
  };
  write_artifact(trace_out_path, instrumented_ref.trace_full);
  write_artifact(slowlog_out_path, instrumented_ref.slowlog_full);
  write_artifact(drift_out_path, instrumented_ref.drift_full);
  write_artifact(snapshots_out_path, instrumented_ref.snapshots_full);
  write_artifact(latency_out_path,
                 fgp::bench::latency_to_json(ladder, quick));
  return 0;
}
