// Extension E3: pipelined (overlapped) execution vs the additive model.
//
// The paper's model decomposes T_exec = T_disk + T_network + T_compute —
// it assumes the middleware runs the stages additively. A middleware that
// pipelines chunk retrieval, movement and processing finishes in roughly
// max(components) + serialized parts instead. This bench runs k-means in
// both modes and predicts both with the published (additive) model: the
// additive prediction stays accurate for additive execution and
// overestimates pipelined execution by the hiding factor — quantifying how
// load-bearing the additive assumption is.
#include <iostream>

#include "common.h"
#include "core/ipc_probe.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace fgp;
  const auto app = bench::make_kmeans_app(1400.0, 4.0, 42);
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(800.0);

  std::cout << "Extension E3: additive vs pipelined execution (k-means, "
               "1.4 GB, published additive model)\n\n";

  auto run_mode = [&](bench::NodeConfig cfg, bool overlap) {
    freeride::JobSetup setup;
    setup.dataset = app.dataset.get();
    setup.data_cluster = cluster;
    setup.compute_cluster = cluster;
    setup.wan = wan;
    setup.config.data_nodes = cfg.n;
    setup.config.compute_nodes = cfg.c;
    setup.config.overlap_phases = overlap;
    auto kernel = app.factory();
    return freeride::Runtime(&bench::shared_pool()).run(setup, *kernel);
  };

  // Profile in additive mode at 1-1 (what the framework would collect).
  const core::Profile base =
      bench::profile_of(app, cluster, cluster, wan, {1, 1});
  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = app.classes;
  opts.ipc = core::measure_ipc(cluster);
  const core::Predictor predictor(base, opts);

  util::Table table({"data-compute", "T_additive(s)", "T_pipelined(s)",
                     "hiding", "err vs additive", "err vs pipelined"});
  util::Accumulator err_additive, err_pipelined;
  for (const auto cfg : bench::paper_grid()) {
    const double t_add = run_mode(cfg, false).timing.elapsed;
    const double t_pipe = run_mode(cfg, true).timing.elapsed;
    core::ProfileConfig target = base.config;
    target.data_nodes = cfg.n;
    target.compute_nodes = cfg.c;
    const double predicted = predictor.predict(target).total();
    const double ea = util::relative_error(t_add, predicted);
    const double ep = util::relative_error(t_pipe, predicted);
    err_additive.add(ea);
    err_pipelined.add(ep);
    table.add_row({std::to_string(cfg.n) + "-" + std::to_string(cfg.c),
                   util::Table::fmt(t_add, 2), util::Table::fmt(t_pipe, 2),
                   util::Table::fmt(t_add / t_pipe, 2) + "x",
                   util::Table::pct(ea), util::Table::pct(ep)});
  }
  table.print(std::cout);
  std::cout << "\n  max error vs additive execution: "
            << util::Table::pct(err_additive.max())
            << "; vs pipelined execution: "
            << util::Table::pct(err_pipelined.max())
            << "\n  The additive model is tied to the additive middleware: "
               "pipelining would require predicting max(T_d, T_n, T_c) "
               "instead of the sum.\n\n";
  return 0;
}
