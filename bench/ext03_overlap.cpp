// Extension E3: pipelined (overlapped) execution vs the additive model.
//
// The paper's model decomposes T_exec = T_disk + T_network + T_compute —
// it assumes the middleware runs the stages additively. A middleware that
// pipelines chunk retrieval, movement and processing finishes in roughly
// max(components) + serialized parts instead. This bench runs k-means in
// both modes and predicts both with the published (additive) model: the
// additive prediction stays accurate for additive execution and
// overestimates pipelined execution by the hiding factor — quantifying how
// load-bearing the additive assumption is.
#include <iostream>

#include "common.h"
#include "core/ipc_probe.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace fgp;
  const auto app = bench::make_kmeans_app(1400.0, 4.0, 42);
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(800.0);

  std::cout << "Extension E3: additive vs pipelined execution (k-means, "
               "1.4 GB, published additive model)\n\n";

  auto run_app = [&](const bench::BenchApp& a, bench::NodeConfig cfg,
                     bool overlap) {
    freeride::JobSetup setup;
    setup.dataset = a.dataset.get();
    setup.data_cluster = cluster;
    setup.compute_cluster = cluster;
    setup.wan = wan;
    setup.config.data_nodes = cfg.n;
    setup.config.compute_nodes = cfg.c;
    setup.config.overlap_phases = overlap;
    auto kernel = a.factory();
    return freeride::Runtime(&bench::shared_pool()).run(setup, *kernel);
  };
  auto run_mode = [&](bench::NodeConfig cfg, bool overlap) {
    return run_app(app, cfg, overlap);
  };

  // Profile in additive mode at 1-1 (what the framework would collect).
  const core::Profile base =
      bench::profile_of(app, cluster, cluster, wan, {1, 1});
  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = app.classes;
  opts.ipc = core::measure_ipc(cluster);
  const core::Predictor predictor(base, opts);

  util::Table table({"data-compute", "T_additive(s)", "T_pipelined(s)",
                     "hiding", "err vs additive", "err vs pipelined"});
  util::Accumulator err_additive, err_pipelined;
  for (const auto cfg : bench::paper_grid()) {
    const double t_add = run_mode(cfg, false).timing.elapsed;
    const double t_pipe = run_mode(cfg, true).timing.elapsed;
    core::ProfileConfig target = base.config;
    target.data_nodes = cfg.n;
    target.compute_nodes = cfg.c;
    const double predicted = predictor.predict(target).total();
    const double ea = util::relative_error(t_add, predicted);
    const double ep = util::relative_error(t_pipe, predicted);
    err_additive.add(ea);
    err_pipelined.add(ep);
    table.add_row({std::to_string(cfg.n) + "-" + std::to_string(cfg.c),
                   util::Table::fmt(t_add, 2), util::Table::fmt(t_pipe, 2),
                   util::Table::fmt(t_add / t_pipe, 2) + "x",
                   util::Table::pct(ea), util::Table::pct(ep)});
  }
  table.print(std::cout);
  std::cout << "\n  max error vs additive execution: "
            << util::Table::pct(err_additive.max())
            << "; vs pipelined execution: "
            << util::Table::pct(err_pipelined.max())
            << "\n  The additive model is tied to the additive middleware: "
               "pipelining would require predicting max(T_d, T_n, T_c) "
               "instead of the sum.\n\n";

  // Cross-check against the real host overlap path (DESIGN.md §15). The
  // pipelined *virtual-time* model above and the *host* prefetch/compute
  // overlap of the streamed data plane are independent layers: one
  // reshapes the modelled phase timings, the other only hides host IO
  // latency behind kernel compute. Re-running the job out-of-core must
  // therefore reproduce the exact pass structure and virtual times of the
  // in-memory run in both modes — enforced here, not just reported.
  obs::Registry stream_metrics;
  const auto streamed = bench::streamed_copy(app, 8u << 20, &stream_metrics);
  std::cout << "  Host-overlap cross-check (streamed data plane, 8 MiB "
               "window budget, config 4-8):\n";
  util::Table xtable(
      {"execution", "passes", "T_virtual(s)", "vs in-memory"});
  for (const bool overlap : {false, true}) {
    const auto mem = run_mode({4, 8}, overlap);
    const auto str = run_app(streamed, {4, 8}, overlap);
    bool identical = mem.passes == str.passes &&
                     mem.timing.elapsed == str.timing.elapsed &&
                     mem.timing.passes.size() == str.timing.passes.size();
    for (std::size_t p = 0; identical && p < mem.timing.passes.size(); ++p) {
      const auto& a = mem.timing.passes[p];
      const auto& b = str.timing.passes[p];
      identical = a.elapsed == b.elapsed && a.timing.disk == b.timing.disk &&
                  a.timing.network == b.timing.network &&
                  a.timing.compute() == b.timing.compute();
    }
    FGP_CHECK_MSG(identical,
                  "streamed run diverged from in-memory run in "
                      << (overlap ? "pipelined" : "additive") << " mode");
    xtable.add_row({overlap ? "pipelined" : "additive",
                    std::to_string(str.passes),
                    util::Table::fmt(str.timing.elapsed, 2),
                    "bit-identical"});
  }
  xtable.print(std::cout);
  std::cout << "  streamer: prefetch hits/misses "
            << static_cast<long long>(
                   stream_metrics.host_value("store.prefetch_hits"))
            << "/"
            << static_cast<long long>(
                   stream_metrics.host_value("store.prefetch_misses"))
            << ", window recycles "
            << static_cast<long long>(
                   stream_metrics.host_value("store.window_recycles"))
            << ", stitched chunks "
            << static_cast<long long>(
                   stream_metrics.value("store.stitched_chunks"))
            << "\n\n";
  return 0;
}
