// Figure 10: impact of network bandwidth for EM clustering — profile at
// 1-1 with a 500 Kbps link, predictions for a 250 Kbps link.
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto app = bench::make_em_app(1400.0, 4.0, 42);
  bench::global_model_figure(
      sweep,
      "Figure 10: Prediction Errors for EM Clustering with 250 Kbps (base "
      "profile: 1-1 with 500 Kbps)",
      app, app, sim::cluster_pentium_myrinet(), sim::wan_kbps(500.0),
      sim::wan_kbps(250.0));
  return 0;
}
