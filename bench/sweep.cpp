#include "sweep.h"

namespace fgp::bench {

util::ThreadPool& shared_pool() {
  static util::ThreadPool pool;  // defaults to hardware concurrency
  return pool;
}

}  // namespace fgp::bench
