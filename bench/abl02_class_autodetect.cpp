// Ablation A2: class auto-detection from multiple profile runs.
//
// The paper allows the reduction-object-size class and the global-
// reduction-time class to be "determined by analyzing multiple profile
// runs" instead of declared by the user. This bench collects two profiles
// per application (varying compute nodes and dataset size), runs the
// detector, and compares the detected classes against the declared ones.
#include <iostream>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace fgp;
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(800.0);

  std::cout << "Ablation A2: class auto-detection vs declared classes\n\n";

  struct Case {
    bench::BenchApp small;  ///< smaller dataset (same seed)
    bench::BenchApp large;
  };
  std::vector<Case> cases;
  cases.push_back({bench::make_kmeans_app(350.0, 1.0, 42),
                   bench::make_kmeans_app(1400.0, 4.0, 42)});
  cases.push_back({bench::make_em_app(350.0, 1.0, 42),
                   bench::make_em_app(1400.0, 4.0, 42)});
  cases.push_back({bench::make_knn_app(350.0, 1.0, 42),
                   bench::make_knn_app(1400.0, 4.0, 42)});
  cases.push_back({bench::make_vortex_app(350.0, 192, 7),
                   bench::make_vortex_app(710.0, 256, 7)});
  cases.push_back({bench::make_defect_app(130.0, 24, 24, 96, 11),
                   bench::make_defect_app(520.0, 32, 32, 96, 11)});

  util::Table table({"app", "declared r / T_g", "detected r / T_g", "match"});
  int matches = 0;
  for (const auto& c : cases) {
    // Three profiles: vary compute nodes at fixed size, then vary size.
    std::vector<core::Profile> profiles;
    profiles.push_back(bench::profile_of(c.large, cluster, cluster, wan, {1, 2}));
    profiles.push_back(bench::profile_of(c.large, cluster, cluster, wan, {1, 8}));
    profiles.push_back(bench::profile_of(c.small, cluster, cluster, wan, {1, 2}));
    const auto detected = core::detect_classes(profiles);

    const bool match = detected.ro == c.large.classes.ro &&
                       detected.global == c.large.classes.global;
    matches += match;
    table.add_row(
        {c.large.name,
         std::string(core::to_string(c.large.classes.ro)) + " / " +
             core::to_string(c.large.classes.global),
         std::string(core::to_string(detected.ro)) + " / " +
             core::to_string(detected.global),
         match ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n  " << matches << "/" << cases.size()
            << " applications detected correctly from profile runs alone\n\n";
  return 0;
}
