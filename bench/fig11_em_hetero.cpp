// Figure 11: EM clustering predicted on a *different* cluster — base
// profile 8-8 with 350 MB on the Pentium/Myrinet cluster, predictions for
// a 700 MB dataset on the Opteron/InfiniBand cluster, component scaling
// factors from k-means, k-NN and vortex detection.
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto profile_app = bench::make_em_app(350.0, 1.0, 42);
  const auto target_app = bench::make_em_app(700.0, 2.0, 42);
  const std::vector<bench::BenchApp> reps{
      bench::make_kmeans_app(350.0, 1.0, 43),
      bench::make_knn_app(350.0, 1.0, 44),
      bench::make_vortex_app(350.0, 256, 45),
  };
  bench::hetero_figure(
      sweep,
      "Figure 11: Prediction Errors for EM Clustering On a Different "
      "Cluster, 700 MB dataset (base profile: 8-8 with 350 MB)",
      profile_app, target_app, reps, {8, 8}, sim::cluster_pentium_myrinet(),
      sim::cluster_opteron_infiniband(), sim::wan_mbps(800.0));
  return 0;
}
