// Ablation A3: end-to-end resource selection quality.
//
// The whole point of the prediction model is picking the cheapest
// (replica, configuration) pair. This bench builds a small virtual grid
// (two repositories with different link qualities, two compute sites on
// different hardware), ranks every candidate with the selector, then
// simulates every candidate to find the true optimum and reports the
// regret of the predicted choice.
#include <iostream>

#include "common.h"
#include "core/ipc_probe.h"
#include "core/selector.h"
#include "grid/catalog.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace fgp;
  const auto app = bench::make_em_app(700.0, 2.0, 42);
  const auto pentium = sim::cluster_pentium_myrinet();
  const auto opteron = sim::cluster_opteron_infiniband();

  std::cout << "Ablation A3: resource-selection quality (EM, 700 MB, two "
               "replicas x two compute sites)\n\n";

  grid::GridCatalog catalog;
  catalog.register_repository_site({"repo-east", pentium, 8});
  catalog.register_repository_site({"repo-west", pentium, 4});
  catalog.register_compute_site({"hpc-pentium", pentium, 16});
  catalog.register_compute_site({"hpc-opteron", opteron, 16});
  catalog.register_link("repo-east", "hpc-pentium", sim::wan_mbps(80));
  catalog.register_link("repo-east", "hpc-opteron", sim::wan_mbps(20));
  catalog.register_link("repo-west", "hpc-pentium", sim::wan_mbps(30));
  catalog.register_link("repo-west", "hpc-opteron", sim::wan_mbps(60));
  catalog.register_replica({"em-data", "repo-east", 4});
  catalog.register_replica({"em-data", "repo-west", 2});

  // Profile on the Pentium cluster; scaling factors for the Opteron one.
  const core::Profile profile =
      bench::profile_of(app, pentium, pentium, sim::wan_mbps(80), {1, 1});
  std::vector<core::Profile> on_a, on_b;
  for (auto& rep : {bench::make_kmeans_app(350.0, 1.0, 43),
                    bench::make_knn_app(350.0, 1.0, 44),
                    bench::make_vortex_app(350.0, 192, 45)}) {
    on_a.push_back(
        bench::profile_of(rep, pentium, pentium, sim::wan_mbps(80), {2, 4}));
    on_b.push_back(
        bench::profile_of(rep, opteron, opteron, sim::wan_mbps(80), {2, 4}));
  }
  std::map<std::string, core::ScalingFactors> scalers;
  scalers[opteron.name] = core::compute_scaling_factors(on_a, on_b);

  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = app.classes;
  opts.ipc = core::measure_ipc(pentium);
  const core::ResourceSelector selector(&catalog, profile, opts, scalers);
  const auto ranked =
      selector.rank("em-data", app.dataset->total_virtual_bytes());

  // Ground truth by exhaustive simulation.
  struct Truth {
    std::string label;
    double actual;
  };
  std::vector<Truth> truths;
  double best_actual = 1e300;
  for (const auto& cand : catalog.enumerate_candidates("em-data")) {
    const auto& site = catalog.compute_site(cand.compute_site);
    const auto& repo = catalog.repository_site(cand.replica.repository);
    const auto run = bench::simulate(
        app, repo.cluster, site.cluster, cand.wan,
        {cand.replica.storage_nodes, cand.compute_nodes});
    const double t = run.timing.total.total();
    best_actual = std::min(best_actual, t);
    truths.push_back({cand.replica.repository + "/" + cand.compute_site +
                          "/" + std::to_string(cand.replica.storage_nodes) +
                          "-" + std::to_string(cand.compute_nodes),
                      t});
  }

  util::Table table({"rank", "candidate", "T_pred(s)", "T_actual(s)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(ranked.size(), 8); ++i) {
    const auto& rc = ranked[i];
    const std::string label =
        rc.candidate.replica.repository + "/" + rc.candidate.compute_site +
        "/" + std::to_string(rc.candidate.replica.storage_nodes) + "-" +
        std::to_string(rc.candidate.compute_nodes);
    double actual = 0.0;
    for (const auto& t : truths)
      if (t.label == label) actual = t.actual;
    table.add_row({std::to_string(i + 1), label,
                   util::Table::fmt(rc.predicted.total(), 2),
                   util::Table::fmt(actual, 2)});
  }
  table.print(std::cout);

  const auto& chosen = ranked.front();
  double chosen_actual = 0.0;
  const std::string chosen_label =
      chosen.candidate.replica.repository + "/" +
      chosen.candidate.compute_site + "/" +
      std::to_string(chosen.candidate.replica.storage_nodes) + "-" +
      std::to_string(chosen.candidate.compute_nodes);
  for (const auto& t : truths)
    if (t.label == chosen_label) chosen_actual = t.actual;
  std::cout << "\n  predicted best: " << chosen_label << "  regret = "
            << util::Table::pct((chosen_actual - best_actual) /
                                best_actual)
            << " (0% means the selector picked the true optimum)\n\n";
  return 0;
}
