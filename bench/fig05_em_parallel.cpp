// Figure 5: prediction errors for EM clustering, base profile 1-1, 1.4 GB
// dataset.
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto app = bench::make_em_app(1400.0, 4.0, 42);
  bench::three_model_figure(
      sweep,
      "Figure 5: Prediction Errors for EM Clustering (base profile 1-1, "
      "1.4 GB)",
      app, sim::cluster_pentium_myrinet(), sim::wan_mbps(800.0));
  return 0;
}
