// host_perf.cpp — host wall-clock microbenchmark for the blocked kernel
// fast paths, tracked in BENCH_kernels.json at the repo root.
//
// For each of the paper's five applications this runner times one full
// sweep of process_chunk over a synthetic dataset twice: once through the
// kernel's current blocked implementation ("fast") and once through a
// verbatim copy of the seed's naive scalar loop ("naive", quarantined in
// naive_kernels.cpp so the compiler sees the same runtime shapes the seed
// kernels saw). It prints per-kernel per-sweep timings and the geometric-
// mean speedup as JSON. Both paths are cross-checked against each other
// before timing, so a baseline that silently diverges from the kernel
// fails the run instead of producing a meaningless ratio.
//
// A second section times an end-to-end figure sweep (the Figure-2 k-means
// grid) twice: once fully serial and once through bench::SweepRunner over
// the shared pool with the two-level runtime. Both sweeps are cross-checked
// for bit-identical virtual timings and reduction objects before timing
// (DESIGN.md §11), and the wall-clock ratio is tracked in BENCH_sweeps.json.
//
// A third section times the zero-copy data plane (DESIGN.md §13): a
// fig07-style multi-scale sweep derives several virtual sizes from one
// generated dataset, timed as deep payload copies (the pre-shared-slab
// behavior) vs aliasing views, with resident-set deltas for both; and a
// store round-trip timed as streamed load vs mmap-backed load_mapped.
//
// A fourth section measures the out-of-core streaming plane (DESIGN.md
// §15): one generated dataset is replicated 10–100x on disk (payload slabs
// shared in memory, so only the store grows) and scanned through
// DatasetStore::load_streamed under a fixed window budget, recording
// streamed throughput, sampled peak RSS and getrusage(ru_maxrss) growth
// per size — the proof that memory stays flat while the dataset scales.
// The combined report goes to BENCH_dataplane.json (schema
// fgpred-dataplane-v2).
//
// Usage: host_perf [--quick] [--out <path>] [--sweep-out <path>]
//                  [--dataplane-out <path>] [--assert-flat-rss]
//   --quick           smaller datasets + shorter repetitions (CI smoke)
//   --out             write the kernel JSON report to <path> instead of stdout
//   --sweep-out       write the sweep JSON report to <path> instead of stdout
//   --dataplane-out   write the data-plane JSON report to <path>
//   --assert-flat-rss fail (exit nonzero) unless peak RSS growth across the
//                     streaming size ladder stays bounded by the window
//                     budget instead of the dataset size (CI gate)
//
// Wall-clock readings go through util::Stopwatch, the single sanctioned
// clock access point (tools/fgplint enforces this).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "apps/defect.h"
#include "apps/em.h"
#include "apps/kmeans.h"
#include "apps/knn.h"
#include "apps/vortex.h"
#include "common.h"
#include "datagen/flowfield.h"
#include "datagen/lattice.h"
#include "datagen/points.h"
#include "freeride/reduction.h"
#include "naive_kernels.h"
#include "obs/metrics.h"
#include "repository/store.h"
#include "util/check.h"
#include "util/serial.h"
#include "util/wallclock.h"

namespace fgp::bench {
namespace {

struct KernelResult {
  std::string name;
  std::size_t chunks = 0;
  std::size_t elements = 0;  ///< points / cells per sweep
  double naive_sweep_s = 0.0;
  double fast_sweep_s = 0.0;
  double speedup() const { return naive_sweep_s / fast_sweep_s; }
};

/// Times one sweep: warm up once, then repeat until `min_seconds` of
/// accumulated runtime and return the mean per-sweep seconds.
template <typename Fn>
double time_sweep(Fn&& fn, double min_seconds) {
  fn();  // warmup (page in the dataset, size the allocator pools)
  int reps = 1;
  for (;;) {
    util::Stopwatch sw;
    for (int i = 0; i < reps; ++i) fn();
    const double s = sw.seconds();
    if (s >= min_seconds) return s / reps;
    const double scale = std::min(16.0, 1.2 * min_seconds / std::max(s, 1e-9));
    reps = std::max(reps + 1, static_cast<int>(reps * scale));
  }
}

void check_close(double a, double b, double rel, const char* what) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  FGP_CHECK_MSG(std::abs(a - b) <= rel * scale,
                what << ": fast path (" << a << ") diverged from the naive"
                     << " baseline (" << b << ")");
}

KernelResult bench_kmeans(double min_seconds, bool quick) {
  datagen::PointsSpec spec;
  spec.num_points = quick ? 12000 : 60000;
  spec.dim = 8;
  spec.points_per_chunk = quick ? 4000 : 20000;
  spec.num_components = 8;
  spec.seed = 17;
  const auto data = datagen::generate_points(spec);
  const auto& ds = data.dataset;

  apps::KMeansParams params;
  params.k = 8;
  params.dim = 8;
  params.initial_centers = apps::initial_centers_from_dataset(ds, 8, 8);
  apps::KMeansKernel kernel(params);

  double naive_sse = 0.0;
  const auto naive_sweep = [&] { naive_sse = naive::kmeans_sweep(ds, params); };

  double fast_sse = 0.0;
  const auto fast_sweep = [&] {
    auto obj = kernel.create_object();
    for (const auto& chunk : ds.chunks()) kernel.process_chunk(chunk, *obj);
    fast_sse = dynamic_cast<const apps::KMeansObject&>(*obj).sse;
  };

  naive_sweep();
  fast_sweep();
  check_close(fast_sse, naive_sse, 1e-9, "kmeans sse");

  KernelResult r;
  r.name = "kmeans";
  r.chunks = ds.chunk_count();
  r.elements = spec.num_points;
  r.naive_sweep_s = time_sweep(naive_sweep, min_seconds);
  r.fast_sweep_s = time_sweep(fast_sweep, min_seconds);
  return r;
}

KernelResult bench_em(double min_seconds, bool quick) {
  datagen::PointsSpec spec;
  spec.num_points = quick ? 8000 : 40000;
  spec.dim = 8;
  spec.points_per_chunk = quick ? 4000 : 10000;
  spec.num_components = 4;
  spec.seed = 23;
  const auto data = datagen::generate_points(spec);
  const auto& ds = data.dataset;

  apps::EMParams params;
  params.g = 4;
  params.dim = 8;
  params.initial_means = apps::initial_centers_from_dataset(ds, 4, 8);
  params.initial_variance = 1.0;
  apps::EMKernel kernel(params);

  double naive_loglik = 0.0;
  const auto naive_sweep = [&] { naive_loglik = naive::em_sweep(ds, params); };

  double fast_loglik = 0.0;
  const auto fast_sweep = [&] {
    auto obj = kernel.create_object();
    for (const auto& chunk : ds.chunks()) kernel.process_chunk(chunk, *obj);
    fast_loglik = dynamic_cast<const apps::EMObject&>(*obj).loglik;
  };

  naive_sweep();
  fast_sweep();
  check_close(fast_loglik, naive_loglik, 1e-6, "em loglik");

  KernelResult r;
  r.name = "em";
  r.chunks = ds.chunk_count();
  r.elements = spec.num_points;
  r.naive_sweep_s = time_sweep(naive_sweep, min_seconds);
  r.fast_sweep_s = time_sweep(fast_sweep, min_seconds);
  return r;
}

KernelResult bench_knn(double min_seconds, bool quick) {
  datagen::PointsSpec spec;
  spec.num_points = quick ? 12000 : 60000;
  spec.dim = 8;
  spec.points_per_chunk = quick ? 4000 : 20000;
  spec.num_components = 4;
  spec.seed = 31;
  const auto data = datagen::generate_points(spec);
  const auto& ds = data.dataset;

  apps::KnnParams params;
  params.k = 16;
  params.dim = 8;
  params.queries = apps::initial_centers_from_dataset(ds, 8, 8);
  apps::KnnKernel kernel(params);
  const std::size_t m = params.queries.size() / 8;

  double naive_kth_sum = 0.0;
  const auto naive_sweep = [&] { naive_kth_sum = naive::knn_sweep(ds, params); };

  double fast_kth_sum = 0.0;
  const auto fast_sweep = [&] {
    auto obj = kernel.create_object();
    for (const auto& chunk : ds.chunks()) kernel.process_chunk(chunk, *obj);
    const auto& o = dynamic_cast<const apps::KnnObject&>(*obj);
    fast_kth_sum = 0.0;
    for (std::size_t q = 0; q < m; ++q) fast_kth_sum += o.kth_distance(q);
  };

  naive_sweep();
  fast_sweep();
  check_close(fast_kth_sum, naive_kth_sum, 1e-9, "knn kth distances");

  KernelResult r;
  r.name = "knn";
  r.chunks = ds.chunk_count();
  r.elements = spec.num_points;
  r.naive_sweep_s = time_sweep(naive_sweep, min_seconds);
  r.fast_sweep_s = time_sweep(fast_sweep, min_seconds);
  return r;
}

KernelResult bench_vortex(double min_seconds, bool quick) {
  datagen::FlowSpec spec;
  spec.width = quick ? 192 : 448;
  spec.height = quick ? 192 : 448;
  spec.rows_per_chunk = quick ? 32 : 56;
  spec.num_vortices = 6;
  spec.seed = 41;
  const auto data = datagen::generate_flowfield(spec);
  const auto& ds = data.dataset;

  apps::VortexParams params;
  apps::VortexKernel kernel(params);

  std::uint64_t naive_cells = 0;
  const auto naive_sweep = [&] {
    naive_cells = naive::vortex_sweep(ds, params);
  };

  std::uint64_t fast_cells = 0;
  const auto fast_sweep = [&] {
    auto obj = kernel.create_object();
    for (const auto& chunk : ds.chunks()) kernel.process_chunk(chunk, *obj);
    const auto& o = dynamic_cast<const apps::VortexObject&>(*obj);
    fast_cells = 0;
    for (const auto& f : o.fragments) fast_cells += f.cells;
  };

  naive_sweep();
  fast_sweep();
  FGP_CHECK_MSG(fast_cells == naive_cells,
                "vortex marked-cell totals diverged: fast="
                    << fast_cells << " naive=" << naive_cells);

  KernelResult r;
  r.name = "vortex";
  r.chunks = ds.chunk_count();
  r.elements = static_cast<std::size_t>(spec.width) * spec.height;
  r.naive_sweep_s = time_sweep(naive_sweep, min_seconds);
  r.fast_sweep_s = time_sweep(fast_sweep, min_seconds);
  return r;
}

KernelResult bench_defect(double min_seconds, bool quick) {
  datagen::LatticeSpec spec;
  spec.nx = quick ? 40 : 72;
  spec.ny = quick ? 40 : 72;
  spec.nz = quick ? 40 : 72;
  spec.zslabs_per_chunk = 12;
  spec.seed = 47;
  const auto data = datagen::generate_lattice(spec);
  const auto& ds = data.dataset;

  apps::DefectKernel kernel;

  std::size_t naive_structs = 0;
  const auto naive_sweep = [&] { naive_structs = naive::defect_sweep(ds); };

  std::size_t fast_structs = 0;
  const auto fast_sweep = [&] {
    auto obj = kernel.create_object();
    for (const auto& chunk : ds.chunks()) kernel.process_chunk(chunk, *obj);
    fast_structs =
        dynamic_cast<const apps::DefectObject&>(*obj).structures.size();
  };

  naive_sweep();
  fast_sweep();
  FGP_CHECK_MSG(fast_structs == naive_structs,
                "defect structure counts diverged: fast="
                    << fast_structs << " naive=" << naive_structs);

  KernelResult r;
  r.name = "defect";
  r.chunks = ds.chunk_count();
  r.elements = static_cast<std::size_t>(spec.nx) * spec.ny * spec.nz;
  r.naive_sweep_s = time_sweep(naive_sweep, min_seconds);
  r.fast_sweep_s = time_sweep(fast_sweep, min_seconds);
  return r;
}

struct SweepResult {
  std::string name;
  std::size_t configs = 0;
  unsigned host_cores = 0;
  double serial_sweep_s = 0.0;
  double twolevel_sweep_s = 0.0;
  double speedup() const { return serial_sweep_s / twolevel_sweep_s; }
};

/// Times the Figure-2-style k-means grid end to end: fully serial vs the
/// SweepRunner + two-level runtime over the shared pool. The two modes are
/// first cross-checked for bit-identical virtual timings and reduction
/// objects, so the ratio below always compares equal work.
SweepResult bench_sweep(double min_seconds, bool quick) {
  const auto app = quick ? make_kmeans_app(80.0, 1.0, 42, /*passes=*/2)
                         : make_kmeans_app(1400.0, 4.0, 42, /*passes=*/10);
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(800.0);
  const std::vector<NodeConfig> grid = paper_grid();

  const SweepRunner serial_mode(nullptr);
  const SweepRunner pooled_mode;  // process-wide shared pool

  const auto run_grid = [&](const SweepRunner& runner) {
    return runner.map(grid.size(), [&](std::size_t i) {
      return simulate(app, cluster, cluster, wan, grid[i], false,
                      runner.pool());
    });
  };

  const auto serial_results = run_grid(serial_mode);
  const auto pooled_results = run_grid(pooled_mode);
  util::ByteWriter wa, wb;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& a = serial_results[i];
    const auto& b = pooled_results[i];
    FGP_CHECK_MSG(a.timing.elapsed == b.timing.elapsed &&
                      a.timing.total.total() == b.timing.total.total(),
                  "sweep config " << grid[i].n << "-" << grid[i].c
                                  << ": virtual timings diverged between "
                                     "serial and two-level execution");
    wa.clear();
    wb.clear();
    a.result->serialize(wa);
    b.result->serialize(wb);
    FGP_CHECK_MSG(wa.bytes() == wb.bytes(),
                  "sweep config " << grid[i].n << "-" << grid[i].c
                                  << ": reduction objects diverged between "
                                     "serial and two-level execution");
  }

  SweepResult r;
  r.name = "kmeans-grid";
  r.configs = grid.size();
  r.host_cores = std::thread::hardware_concurrency();
  r.serial_sweep_s = time_sweep([&] { run_grid(serial_mode); }, min_seconds);
  r.twolevel_sweep_s = time_sweep([&] { run_grid(pooled_mode); }, min_seconds);
  return r;
}

/// Current resident set size in bytes via /proc/self/statm (0 where the
/// proc filesystem or sysconf is unavailable).
double resident_bytes() {
#if defined(__unix__)
  std::ifstream statm("/proc/self/statm");
  std::uint64_t vm_pages = 0;
  std::uint64_t rss_pages = 0;
  if (!(statm >> vm_pages >> rss_pages)) return 0.0;
  return static_cast<double>(rss_pages) *
         static_cast<double>(::sysconf(_SC_PAGESIZE));
#else
  return 0.0;
#endif
}

/// Rebuilds `ds` with owned payload copies — the pre-shared-slab cost of
/// giving a concurrent sweep point its own rescalable dataset (allocate,
/// copy, re-checksum every chunk).
repository::ChunkedDataset deep_copy_dataset(
    const repository::ChunkedDataset& ds) {
  repository::ChunkedDataset out(ds.meta());
  for (const auto& c : ds.chunks()) {
    const auto bytes = c.payload();
    out.add_chunk(repository::Chunk(
        c.id(), std::vector<std::uint8_t>(bytes.begin(), bytes.end()),
        c.virtual_scale()));
  }
  return out;
}

struct DataPlaneResult {
  std::string name;
  std::size_t chunks = 0;
  double payload_bytes = 0.0;  ///< real bytes moved per baseline sweep
  double baseline_s = 0.0;
  double zerocopy_s = 0.0;
  double baseline_rss_delta = 0.0;
  double zerocopy_rss_delta = 0.0;
  double speedup() const { return baseline_s / zerocopy_s; }
};

/// Times a fig07-style multi-scale sweep's data plane: four virtual sizes
/// derived from one generated EM dataset, once by deep-copying + rescaling
/// (what concurrent scale points required when virtual_scale was chunk
/// state) and once as aliasing views. Both variants are cross-checked for
/// identical ids, checksums and virtual totals before timing.
DataPlaneResult bench_clone_rescale(double min_seconds, bool quick) {
  const auto app = quick ? make_em_app(350.0, 1.0, 42, /*passes=*/2)
                         : make_em_app(350.0, 4.0, 42, /*passes=*/2);
  const auto& ds = *app.dataset;
  const std::vector<double> scales_mb = {350.0, 700.0, 1050.0, 1400.0};
  const double real = static_cast<double>(ds.total_real_bytes());

  {
    const double scale = scales_mb[1] * 1e6 / real;
    const auto view = ds.with_uniform_virtual_scale(scale);
    auto copy = deep_copy_dataset(ds);
    copy.set_uniform_virtual_scale(scale);
    FGP_CHECK(view.chunk_count() == copy.chunk_count());
    FGP_CHECK(view.total_virtual_bytes() == copy.total_virtual_bytes());
    for (std::size_t i = 0; i < view.chunk_count(); ++i) {
      FGP_CHECK(view.chunk(i).id() == copy.chunk(i).id());
      FGP_CHECK(view.chunk(i).checksum() == copy.chunk(i).checksum());
      FGP_CHECK(view.chunk(i).virtual_bytes() == copy.chunk(i).virtual_bytes());
      // The view aliases the original slabs; the deep copy owns fresh ones.
      FGP_CHECK(view.chunk(i).payload().data() == ds.chunk(i).payload().data());
      FGP_CHECK(copy.chunk(i).payload().data() != ds.chunk(i).payload().data());
    }
  }

  double sink = 0.0;
  const auto baseline = [&] {
    for (double mb : scales_mb) {
      auto copy = deep_copy_dataset(ds);
      copy.set_uniform_virtual_scale(mb * 1e6 / real);
      sink += copy.total_virtual_bytes();
    }
  };
  const auto zerocopy = [&] {
    for (double mb : scales_mb)
      sink +=
          ds.with_uniform_virtual_scale(mb * 1e6 / real).total_virtual_bytes();
  };

  DataPlaneResult r;
  r.name = "clone-rescale";
  r.chunks = ds.chunk_count();
  r.payload_bytes = real * static_cast<double>(scales_mb.size());
  r.baseline_s = time_sweep(baseline, min_seconds);
  r.zerocopy_s = time_sweep(zerocopy, min_seconds);

  // Peak-RSS effect of holding every scale point at once, as a concurrent
  // sweep does. Views first, so retained allocator arenas from the deep
  // copies cannot inflate the view-side reading.
  {
    std::vector<repository::ChunkedDataset> held;
    const double before = resident_bytes();
    for (double mb : scales_mb)
      held.push_back(ds.with_uniform_virtual_scale(mb * 1e6 / real));
    r.zerocopy_rss_delta = std::max(0.0, resident_bytes() - before);
  }
  {
    std::vector<repository::ChunkedDataset> held;
    const double before = resident_bytes();
    for (double mb : scales_mb) {
      held.push_back(deep_copy_dataset(ds));
      held.back().set_uniform_virtual_scale(mb * 1e6 / real);
    }
    r.baseline_rss_delta = std::max(0.0, resident_bytes() - before);
  }
  FGP_CHECK_MSG(sink > 0.0, "data-plane sweeps produced no work");
  return r;
}

/// Times a store round trip: streamed load (one heap buffer per chunk) vs
/// load_mapped (chunks alias the mapped files). Both loads are
/// cross-checked for byte-identical payloads before timing.
DataPlaneResult bench_store_load(double min_seconds, bool quick) {
  const auto app = quick ? make_em_app(350.0, 1.0, 43, /*passes=*/2)
                         : make_em_app(350.0, 4.0, 43, /*passes=*/2);
  const auto& ds = *app.dataset;
  const auto root =
      std::filesystem::temp_directory_path() / "fgp_dataplane_store";
  const repository::DatasetStore store(root);
  store.save(ds);

  const auto streamed = store.load(ds.meta().name);
  const auto mapped = store.load_mapped(ds.meta().name);
  FGP_CHECK(streamed.chunk_count() == mapped.chunk_count());
  for (std::size_t i = 0; i < streamed.chunk_count(); ++i) {
    const auto a = streamed.chunk(i).payload();
    const auto b = mapped.chunk(i).payload();
    FGP_CHECK_MSG(a.size() == b.size() &&
                      std::equal(a.begin(), a.end(), b.begin()),
                  "chunk " << i << ": streamed and mapped loads diverged");
    FGP_CHECK(streamed.chunk(i).checksum() == mapped.chunk(i).checksum());
  }

  DataPlaneResult r;
  r.name = "store-load";
  r.chunks = ds.chunk_count();
  r.payload_bytes = static_cast<double>(ds.total_real_bytes());
  r.baseline_s = time_sweep([&] { store.load(ds.meta().name); }, min_seconds);
  r.zerocopy_s =
      time_sweep([&] { store.load_mapped(ds.meta().name); }, min_seconds);
  store.remove(ds.meta().name);
  return r;
}

/// Process-lifetime peak resident set in bytes via getrusage (0 where
/// unavailable). Monotone: growth between two readings bounds how much the
/// peak moved in between — the flat-RSS proof compares readings taken
/// after each streaming size.
double peak_rss_bytes() {
#if defined(__unix__)
  struct rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) * 1024.0;  // Linux reports KB
#else
  return 0.0;
#endif
}

struct StreamingResult {
  std::string name;
  std::size_t chunks = 0;
  double payload_bytes = 0.0;  ///< real bytes on disk (and per scan)
  std::size_t budget_bytes = 0;
  std::size_t window_bytes = 0;
  double streamed_s = 0.0;  ///< one full materializing scan
  double sampled_rss_delta = 0.0;  ///< statm peak during one scan
  double ru_maxrss_delta = 0.0;    ///< peak growth vs the smallest size
  double prefetch_hits = 0.0;
  double prefetch_misses = 0.0;
  double window_recycles = 0.0;
  double stitched_chunks = 0.0;
  double bytes_per_second() const { return payload_bytes / streamed_s; }
};

/// `base` replicated `factor` times under a new name: every replica chunk
/// aliases the original payload slab (DESIGN.md §13), so the in-memory
/// cost of building a 100x dataset stays one copy of the base — only the
/// saved store grows. Chunk ids are renumbered to stay unique.
repository::ChunkedDataset replicate_dataset(
    const repository::ChunkedDataset& base, std::size_t factor,
    const std::string& name) {
  repository::DatasetMeta meta = base.meta();
  meta.name = name;
  repository::ChunkedDataset out(meta);
  repository::ChunkId next = 0;
  for (std::size_t rep = 0; rep < factor; ++rep)
    for (const auto& c : base.chunks())
      out.add_chunk(
          repository::Chunk(next++, c.payload_buffer(), c.virtual_scale()));
  return out;
}

/// The out-of-core streaming ladder (DESIGN.md §15): one generated point
/// dataset, replicated x1 .. x40 on disk, scanned through load_streamed
/// under a fixed window budget. Records streamed throughput and two
/// independent memory readings per size (sampled /proc RSS during the
/// scan, getrusage peak growth after it). With `assert_flat_rss` the
/// ladder FAILS unless the largest size is >=10x the smallest and peak
/// growth beyond the smallest size stays bounded by the window budget —
/// i.e. memory is flat in the dataset size. An EM job over the same
/// streamed plane is cross-checked bit-identical to its in-memory run
/// first, so the numbers always describe correct streaming.
std::vector<StreamingResult> bench_streaming(double min_seconds, bool quick,
                                             bool assert_flat_rss) {
  obs::Registry metrics;
  repository::StreamConfig cfg;  // default 8 MiB budget, 256 KiB windows

  // Correctness gate: runtime passes over the streamed plane (block
  // prefetch overlapping kernel compute on the shared pool) must be
  // bit-identical to the in-memory dataset.
  {
    const auto app = quick ? make_em_app(80.0, 1.0, 42, /*passes=*/2)
                           : make_em_app(350.0, 4.0, 42, /*passes=*/2);
    const auto streamed = streamed_copy(app, cfg.budget_bytes, &metrics);
    const auto cluster = sim::cluster_pentium_myrinet();
    const auto wan = sim::wan_mbps(800.0);
    const auto mem = simulate(app, cluster, cluster, wan, {2, 4});
    const auto str = simulate(streamed, cluster, cluster, wan, {2, 4});
    util::ByteWriter wa, wb;
    mem.result->serialize(wa);
    str.result->serialize(wb);
    FGP_CHECK_MSG(
        mem.timing.elapsed == str.timing.elapsed && wa.bytes() == wb.bytes(),
        "streamed EM run diverged from the in-memory run");
  }

  datagen::PointsSpec spec;
  spec.num_points = quick ? 20000 : 40000;
  spec.dim = 8;
  spec.points_per_chunk = quick ? 2000 : 4000;
  spec.num_components = 4;
  spec.seed = 71;
  const auto base = datagen::generate_points(spec);

  const auto root =
      std::filesystem::temp_directory_path() / "fgp_streaming_ladder";
  const repository::DatasetStore store(root, nullptr, &metrics);
  const std::vector<std::size_t> factors =
      quick ? std::vector<std::size_t>{1, 4, 10}
            : std::vector<std::size_t>{1, 10, 40};

  std::vector<StreamingResult> results;
  double sink = 0.0;
  double ru_base = 0.0;
  for (const std::size_t factor : factors) {
    const std::string name = "points-x" + std::to_string(factor);
    store.save(replicate_dataset(base.dataset, factor, name));
    const auto ds = store.load_streamed(name, cfg);

    const auto scan = [&] {
      double bytes = 0.0;
      for (std::size_t i = 0; i < ds.chunk_count(); ++i)
        bytes += static_cast<double>(ds.materialize(i).payload().size());
      sink += bytes;
    };

    StreamingResult r;
    r.name = name;
    r.chunks = ds.chunk_count();
    r.payload_bytes = static_cast<double>(ds.total_real_bytes());
    r.budget_bytes = cfg.budget_bytes;
    r.window_bytes = cfg.window_bytes;
    const double hits0 = metrics.host_value("store.prefetch_hits");
    const double miss0 = metrics.host_value("store.prefetch_misses");
    const double rec0 = metrics.host_value("store.window_recycles");
    const double stitch0 = metrics.value("store.stitched_chunks");
    r.streamed_s = time_sweep(scan, min_seconds);

    // One extra scan with per-chunk RSS sampling: the high-water mark the
    // stream actually reaches while chunks materialize and drop.
    {
      const double before = resident_bytes();
      double peak = before;
      for (std::size_t i = 0; i < ds.chunk_count(); ++i) {
        sink += static_cast<double>(ds.materialize(i).payload().size());
        peak = std::max(peak, resident_bytes());
      }
      r.sampled_rss_delta = std::max(0.0, peak - before);
    }
    r.prefetch_hits = metrics.host_value("store.prefetch_hits") - hits0;
    r.prefetch_misses = metrics.host_value("store.prefetch_misses") - miss0;
    r.window_recycles = metrics.host_value("store.window_recycles") - rec0;
    r.stitched_chunks = metrics.value("store.stitched_chunks") - stitch0;

    if (results.empty()) {
      // The smallest size's run absorbs every one-time allocation (pools,
      // window budget, allocator arenas); later sizes are measured as
      // growth beyond this baseline.
      ru_base = peak_rss_bytes();
      r.ru_maxrss_delta = 0.0;
    } else {
      r.ru_maxrss_delta = std::max(0.0, peak_rss_bytes() - ru_base);
    }
    results.push_back(r);
    store.remove(name);
  }
  FGP_CHECK_MSG(sink > 0.0, "streaming scans produced no work");

  if (assert_flat_rss) {
    FGP_CHECK_MSG(
        results.back().payload_bytes >= 10.0 * results.front().payload_bytes,
        "streaming ladder spans less than 10x: "
            << results.front().payload_bytes << " .. "
            << results.back().payload_bytes);
    const double bound =
        std::max(64.0 * 1024.0 * 1024.0,
                 4.0 * static_cast<double>(cfg.budget_bytes));
    for (std::size_t i = 1; i < results.size(); ++i) {
      FGP_CHECK_MSG(results[i].ru_maxrss_delta <= bound,
                    results[i].name << ": peak RSS grew by "
                                    << results[i].ru_maxrss_delta
                                    << " bytes over the x"
                                    << factors.front()
                                    << " baseline (bound " << bound
                                    << ") — streaming is not flat");
    }
  }
  return results;
}

std::string to_dataplane_json(const std::vector<DataPlaneResult>& results,
                              const std::vector<StreamingResult>& streaming,
                              bool quick) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"schema\": \"fgpred-dataplane-v2\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  os << "  \"mmap\": "
     << (fgp::repository::PayloadBuffer::mmap_supported() ? "true" : "false")
     << ",\n";
  os << "  \"dataplane\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\n";
    os << "      \"name\": \"" << r.name << "\",\n";
    os << "      \"chunks\": " << r.chunks << ",\n";
    os << "      \"payload_bytes\": " << r.payload_bytes << ",\n";
    os << "      \"baseline_seconds\": " << r.baseline_s << ",\n";
    os << "      \"zerocopy_seconds\": " << r.zerocopy_s << ",\n";
    os << "      \"baseline_bytes_per_second\": "
       << r.payload_bytes / r.baseline_s << ",\n";
    os << "      \"zerocopy_bytes_per_second\": "
       << r.payload_bytes / r.zerocopy_s << ",\n";
    os << "      \"baseline_rss_delta_bytes\": " << r.baseline_rss_delta
       << ",\n";
    os << "      \"zerocopy_rss_delta_bytes\": " << r.zerocopy_rss_delta
       << ",\n";
    os << "      \"speedup\": " << r.speedup() << "\n";
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"streaming\": [\n";
  for (std::size_t i = 0; i < streaming.size(); ++i) {
    const auto& s = streaming[i];
    const double issued = s.prefetch_hits + s.prefetch_misses;
    os << "    {\n";
    os << "      \"name\": \"" << s.name << "\",\n";
    os << "      \"chunks\": " << s.chunks << ",\n";
    os << "      \"payload_bytes\": " << s.payload_bytes << ",\n";
    os << "      \"budget_bytes\": " << s.budget_bytes << ",\n";
    os << "      \"window_bytes\": " << s.window_bytes << ",\n";
    os << "      \"streamed_seconds\": " << s.streamed_s << ",\n";
    os << "      \"streamed_bytes_per_second\": " << s.bytes_per_second()
       << ",\n";
    os << "      \"sampled_rss_delta_bytes\": " << s.sampled_rss_delta
       << ",\n";
    os << "      \"ru_maxrss_delta_bytes\": " << s.ru_maxrss_delta << ",\n";
    os << "      \"prefetch_hits\": " << s.prefetch_hits << ",\n";
    os << "      \"prefetch_misses\": " << s.prefetch_misses << ",\n";
    os << "      \"prefetch_hit_rate\": "
       << (issued > 0.0 ? s.prefetch_hits / issued : 0.0) << ",\n";
    os << "      \"window_recycles\": " << s.window_recycles << ",\n";
    os << "      \"stitched_chunks\": " << s.stitched_chunks << "\n";
    os << "    }" << (i + 1 < streaming.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::string to_sweep_json(const std::vector<SweepResult>& results,
                          bool quick) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"schema\": \"fgpred-sweep-perf-v1\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"host_cores\": " << (results.empty() ? 0 : results[0].host_cores)
     << ",\n";
  os << "  \"note\": \"sweep speedup scales with host_cores (the grid "
        "configurations are independent); on 1 core the two-level path can "
        "only break even. bench_diff refuses comparisons across different "
        "host_cores.\",\n";
  os << "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\n";
    os << "      \"name\": \"" << r.name << "\",\n";
    os << "      \"configs\": " << r.configs << ",\n";
    os << "      \"serial_sweep_seconds\": " << r.serial_sweep_s << ",\n";
    os << "      \"twolevel_sweep_seconds\": " << r.twolevel_sweep_s << ",\n";
    os << "      \"speedup\": " << r.speedup() << "\n";
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::string to_json(const std::vector<KernelResult>& results, bool quick) {
  double log_sum = 0.0;
  for (const auto& r : results) log_sum += std::log(r.speedup());
  const double geomean =
      std::exp(log_sum / static_cast<double>(results.size()));

  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"schema\": \"fgpred-host-perf-v1\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double elems = static_cast<double>(r.elements);
    os << "    {\n";
    os << "      \"name\": \"" << r.name << "\",\n";
    os << "      \"chunks\": " << r.chunks << ",\n";
    os << "      \"elements\": " << r.elements << ",\n";
    os << "      \"naive_sweep_seconds\": " << r.naive_sweep_s << ",\n";
    os << "      \"fast_sweep_seconds\": " << r.fast_sweep_s << ",\n";
    os << "      \"naive_elements_per_second\": " << elems / r.naive_sweep_s
       << ",\n";
    os << "      \"fast_elements_per_second\": " << elems / r.fast_sweep_s
       << ",\n";
    os << "      \"speedup\": " << r.speedup() << "\n";
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"geomean_speedup\": " << geomean << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace
}  // namespace fgp::bench

int main(int argc, char** argv) {
  bool quick = false;
  bool assert_flat_rss = false;
  std::string out_path;
  std::string sweep_out_path;
  std::string dataplane_out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--assert-flat-rss") == 0) {
      assert_flat_rss = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-out") == 0 && i + 1 < argc) {
      sweep_out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dataplane-out") == 0 && i + 1 < argc) {
      dataplane_out_path = argv[++i];
    } else {
      std::cerr << "usage: host_perf [--quick] [--out <path>] "
                   "[--sweep-out <path>] [--dataplane-out <path>] "
                   "[--assert-flat-rss]\n";
      return 2;
    }
  }
  const double min_seconds = quick ? 0.02 : 0.2;

  std::vector<fgp::bench::KernelResult> results;
  results.push_back(fgp::bench::bench_kmeans(min_seconds, quick));
  std::cerr << "kmeans: " << results.back().speedup() << "x\n";
  results.push_back(fgp::bench::bench_em(min_seconds, quick));
  std::cerr << "em: " << results.back().speedup() << "x\n";
  results.push_back(fgp::bench::bench_knn(min_seconds, quick));
  std::cerr << "knn: " << results.back().speedup() << "x\n";
  results.push_back(fgp::bench::bench_vortex(min_seconds, quick));
  std::cerr << "vortex: " << results.back().speedup() << "x\n";
  results.push_back(fgp::bench::bench_defect(min_seconds, quick));
  std::cerr << "defect: " << results.back().speedup() << "x\n";

  const std::string json = fgp::bench::to_json(results, quick);
  if (out_path.empty()) {
    std::cout << json;
  } else {
    std::ofstream f(out_path);
    f << json;
    std::cerr << "wrote " << out_path << "\n";
  }

  std::vector<fgp::bench::SweepResult> sweeps;
  sweeps.push_back(fgp::bench::bench_sweep(min_seconds, quick));
  std::cerr << "sweep " << sweeps.back().name << " ("
            << sweeps.back().host_cores
            << " cores): " << sweeps.back().speedup() << "x\n";
  const std::string sweep_json = fgp::bench::to_sweep_json(sweeps, quick);
  if (sweep_out_path.empty()) {
    std::cout << sweep_json;
  } else {
    std::ofstream f(sweep_out_path);
    f << sweep_json;
    std::cerr << "wrote " << sweep_out_path << "\n";
  }

  std::vector<fgp::bench::DataPlaneResult> dataplane;
  dataplane.push_back(fgp::bench::bench_clone_rescale(min_seconds, quick));
  std::cerr << "dataplane " << dataplane.back().name << ": "
            << dataplane.back().speedup() << "x\n";
  dataplane.push_back(fgp::bench::bench_store_load(min_seconds, quick));
  std::cerr << "dataplane " << dataplane.back().name << ": "
            << dataplane.back().speedup() << "x\n";
  const auto streaming =
      fgp::bench::bench_streaming(min_seconds, quick, assert_flat_rss);
  for (const auto& s : streaming)
    std::cerr << "streaming " << s.name << ": "
              << s.bytes_per_second() / 1e6 << " MB/s, ru_maxrss growth "
              << s.ru_maxrss_delta / 1e6 << " MB\n";
  const std::string dataplane_json =
      fgp::bench::to_dataplane_json(dataplane, streaming, quick);
  if (dataplane_out_path.empty()) {
    std::cout << dataplane_json;
  } else {
    std::ofstream f(dataplane_out_path);
    f << dataplane_json;
    std::cerr << "wrote " << dataplane_out_path << "\n";
  }
  return 0;
}
