// Figure 9: impact of network bandwidth for molecular defect detection —
// profile at 1-1 with a 500 Kbps link, predictions for a 250 Kbps link
// (same dataset).
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto app = bench::make_defect_app(130.0, 24, 24, 96, 11);
  bench::global_model_figure(
      sweep,
      "Figure 9: Prediction Errors for Molecular Defect Detection with "
      "250 Kbps (base profile: 1-1 with 500 Kbps)",
      app, app, sim::cluster_pentium_myrinet(), sim::wan_kbps(500.0),
      sim::wan_kbps(250.0));
  return 0;
}
