// Figure 2: prediction errors for k-means clustering across parallel
// configurations (1-1 … 8-16), three prediction models, base profile 1-1,
// 1.4 GB dataset.
//
// Flags (all optional):
//   --quick               small dataset / few passes, for CI smoke runs
//   --trace-out FILE      write a Chrome-trace JSON of the largest config
//   --metrics-out FILE    write the metrics-registry snapshot JSON
//   --residuals-out FILE  write the per-component residual report JSON
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common.h"
#include "obs/metrics.h"
#include "obs/pool.h"
#include "obs/residual.h"
#include "obs/trace.h"

namespace {

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
  if (!out) {
    std::cerr << "fig02: cannot write " << path << "\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fgp;
  bool quick = false;
  std::string trace_out, metrics_out, residuals_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "fig02: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick")
      quick = true;
    else if (arg == "--trace-out")
      trace_out = value();
    else if (arg == "--metrics-out")
      metrics_out = value();
    else if (arg == "--residuals-out")
      residuals_out = value();
    else {
      std::cerr << "fig02: unknown flag " << arg << "\n";
      return 2;
    }
  }

  const bench::SweepRunner sweep;
  const auto app = quick ? bench::make_kmeans_app(80.0, 1.0, 42, 2)
                         : bench::make_kmeans_app(1400.0, 4.0, 42);

  // Observability sinks are only materialized (and only recorded into)
  // when a flag asks for them — the default run stays untraced.
  obs::TraceRecorder trace;
  obs::Registry metrics;
  obs::ResidualReport residuals;
  bench::FigureObs fig_obs;
  if (!trace_out.empty()) {
    trace.enable_host(true);
    obs::attach_pool_tracing(*sweep.pool(), &trace);
    fig_obs.trace = &trace;
  }
  if (!metrics_out.empty()) fig_obs.metrics = &metrics;
  if (!residuals_out.empty()) fig_obs.residuals = &residuals;

  bench::three_model_figure(
      sweep,
      std::string("Figure 2: Prediction Errors for k-means Clustering (base "
                  "profile 1-1, ") +
          (quick ? "80 MB quick)" : "1.4 GB)"),
      app, sim::cluster_pentium_myrinet(), sim::wan_mbps(800.0), fig_obs);

  if (fig_obs.trace != nullptr) {
    obs::attach_pool_tracing(*sweep.pool(), nullptr);
    write_file(trace_out, trace.to_chrome_json());
  }
  if (!metrics_out.empty()) {
    obs::record_pool_stats(sweep.pool()->stats(), metrics);
    write_file(metrics_out, metrics.to_json());
  }
  if (!residuals_out.empty()) write_file(residuals_out, residuals.to_json());
  return 0;
}
