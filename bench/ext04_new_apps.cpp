// Extension E4: does the prediction framework generalize beyond the
// paper's five applications?
//
// Paper §2.2 claims the generalized-reduction structure covers "apriori
// association mining, k-means clustering, k-nearest neighbor classifier
// and artificial neural networks". We implemented the three the
// evaluation skipped — apriori, the k-NN *classifier*, and a neural
// network — and here run the full Figure-2-style experiment on each, with
// the application classes *auto-detected* from two profile runs rather
// than user-declared (the end-to-end workflow a new application would
// actually get).
#include <iostream>

#include "common.h"
#include "core/ipc_probe.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace fgp;
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(800.0);

  std::cout << "Extension E4: prediction accuracy for the paper's *other* "
               "generalized-reduction apps (classes auto-detected)\n\n";

  std::vector<bench::BenchApp> apps_under_test{
      bench::make_apriori_app(700.0, 17),
      bench::make_ann_app(700.0, 42),
      bench::make_knn_classify_app(700.0, 42),
  };

  util::Table table(
      {"app", "detected classes", "max err (global-red)", "mean err"});
  for (auto& app : apps_under_test) {
    // Detect the classes from two profiles differing in node count.
    std::vector<core::Profile> profiles{
        bench::profile_of(app, cluster, cluster, wan, {1, 2}),
        bench::profile_of(app, cluster, cluster, wan, {1, 8})};
    const auto classes = core::detect_classes(profiles);
    app.classes = classes;

    const core::Profile base =
        bench::profile_of(app, cluster, cluster, wan, {1, 1});
    core::PredictorOptions opts;
    opts.model = core::PredictionModel::GlobalReduction;
    opts.classes = classes;
    opts.ipc = core::measure_ipc(cluster);
    const core::Predictor predictor(base, opts);

    util::Accumulator errs;
    for (const auto cfg : bench::paper_grid()) {
      const auto actual = bench::simulate(app, cluster, cluster, wan, cfg);
      core::ProfileConfig target = base.config;
      target.data_nodes = cfg.n;
      target.compute_nodes = cfg.c;
      errs.add(util::relative_error(actual.timing.total.total(),
                                    predictor.predict(target).total()));
    }
    table.add_row({app.name,
                   std::string(core::to_string(classes.ro)) + " / " +
                       core::to_string(classes.global),
                   util::Table::pct(errs.max()), util::Table::pct(errs.mean())});
  }
  table.print(std::cout);
  std::cout << "\n  The framework needed zero per-application work: profile "
               "twice, detect classes, predict the whole grid.\n\n";
  return 0;
}
