// sim_perf.cpp — scaling ladder for the discrete-event simulation core,
// tracked in BENCH_sim.json at the repo root.
//
// The phase-structured engine did work proportional to nodes × phases, so
// scenario scale stopped at the paper's 8×16 grid. The event engine's cost
// is proportional to *events* (state changes), so a thousand-machine grid
// where almost nothing changes per step costs almost nothing. This bench
// makes that claim falsifiable: a ladder of 128 → 4,096 heterogeneous
// machines drives a fixed transfer count through eight contended
// SharedPipe WAN repositories (a bounded in-flight window cycling over all
// nodes, plus one startup compute event per machine), and records
// wall-clock per rung. Because the event count is fixed and only the heap
// depth grows with the fleet, wall-clock growth across the ladder must be
// sub-linear in node count — if it turns linear, per-node work leaked back
// into the event loop.
//
// Determinism: before timing, the smallest rung runs twice and the bit
// pattern of every completion time is folded into a checksum that must
// match exactly — a nondeterministic engine must fail the run, not get
// timed. Each rung's checksum is also recorded in the report.
//
// Usage: sim_perf [--quick] [--nodes <n>] [--out <path>]
//                 [--trace-out <path>] [--metrics-out <path>]
//   --quick        short ladder + fewer transfers (CI smoke)
//   --nodes <n>    replace the ladder with the single rung of n machines
//   --out          write the JSON report to <path> instead of stdout
//   --trace-out    write the largest rung's queue-depth trace
//                  (fgpred-trace-v1, validatable by fgptrace --validate)
//   --metrics-out  write the largest rung's obs::Registry snapshot
//                  (fgpred-metrics-v1)
//
// Wall-clock readings go through util::Stopwatch, the single sanctioned
// clock access point (tools/fgplint enforces this).
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_engine.h"
#include "sim/network.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/wallclock.h"

namespace fgp::bench {
namespace {

constexpr int kPipes = 8;              ///< contended WAN repositories
constexpr std::size_t kWindow = 256;   ///< in-flight transfer window

struct RungResult {
  int nodes = 0;
  std::uint64_t transfers = 0;
  std::uint64_t events = 0;            ///< events dispatched
  std::uint64_t recomputes = 0;        ///< fair-share recomputations
  std::size_t heap_peak = 0;
  double virtual_end_s = 0.0;          ///< virtual clock at drain
  double wall_s = 0.0;
  double events_per_second = 0.0;
  std::uint64_t checksum = 0;          ///< xor-fold of completion bits
};

/// One heterogeneous fleet: per-node NIC rates cycle over four hardware
/// generations with deterministic per-node jitter, and each repository
/// pipe gets its own bandwidth/latency point.
struct Fleet {
  std::vector<double> nic_Bps;
  std::vector<sim::WanSpec> pipe_specs;
};

Fleet make_fleet(int nodes) {
  Fleet fleet;
  util::Rng rng(0x51e9f00d);
  fleet.nic_Bps.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    // Slow enough that the per-node NIC genuinely binds against the pipe
    // shares for the older generations — node identity must matter, or
    // the ladder degenerates into identical rungs.
    static constexpr double kGenerations[] = {2e6, 4e6, 8e6, 16e6};
    const double base = kGenerations[n % 4];
    fleet.nic_Bps.push_back(base * rng.uniform(0.75, 1.0));
  }
  for (int p = 0; p < kPipes; ++p) {
    sim::WanSpec wan;
    wan.per_link_Bps = 4e6 * (1 + p % 4);
    wan.aggregate_cap_Bps = wan.per_link_Bps * 12.0;
    wan.latency_s = 0.002 * (1 + p % 3);
    wan.protocol_overhead = 0.05;
    fleet.pipe_specs.push_back(wan);
  }
  return fleet;
}

/// Runs one rung: `transfers` WAN transfers through kPipes contended
/// pipes, at most kWindow in flight, cycling senders over all `nodes`
/// machines. A startup wave gives every machine one compute event so the
/// heap really holds the whole fleet at once (heap depth ~ nodes +
/// window). `trace`/`metrics` (optional) receive queue-depth samples and
/// the engine/pipe counters.
RungResult run_rung(int nodes, std::uint64_t transfers,
                    obs::TraceRecorder* trace, obs::Registry* metrics) {
  const Fleet fleet = make_fleet(nodes);
  sim::EventEngine engine;
  std::vector<sim::SharedPipe> pipes;
  pipes.reserve(kPipes);
  for (int p = 0; p < kPipes; ++p)
    pipes.emplace_back(fleet.pipe_specs[static_cast<std::size_t>(p)],
                       "repo-" + std::to_string(p));

  // Startup wave: one compute completion per machine, staggered so the
  // heap momentarily holds the entire fleet.
  for (int n = 0; n < nodes; ++n)
    engine.schedule(1e-6 * (n + 1), n, sim::EventKind::ComputeBlockDone);

  util::Rng rng(0xbe7c4a11);
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t checksum = 0;
  const auto begin_next = [&](double start) {
    const int node = static_cast<int>(started % static_cast<std::uint64_t>(
                                                    nodes));
    auto& pipe = pipes[started % kPipes];
    const double bytes = rng.uniform(64e3, 4e6);
    const std::uint64_t messages = 1 + (started % 7);
    pipe.begin_transfer(engine, start, node, bytes, messages,
                        fleet.nic_Bps[static_cast<std::size_t>(node)]);
    ++started;
  };

  util::Stopwatch wall;
  const std::uint64_t initial =
      std::min<std::uint64_t>(transfers, kWindow);
  for (std::uint64_t t = 0; t < initial; ++t) begin_next(1e-5 * (t + 1));

  std::uint64_t dispatched_since_sample = 0;
  while (!engine.empty()) {
    const sim::Event ev = engine.pop();
    for (auto& pipe : pipes) {
      const auto done = pipe.on_event(engine, ev);
      if (!done) continue;
      ++completed;
      // Fold the completion's bit pattern: any dispatch-order or FP drift
      // between runs changes the checksum.
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(done->end_time));
      std::memcpy(&bits, &done->end_time, sizeof(bits));
      checksum ^= bits + 0x9e3779b97f4a7c15ULL * done->transfer;
      if (started < transfers) begin_next(engine.now());
      break;
    }
    if (trace != nullptr && ++dispatched_since_sample >= 1024) {
      dispatched_since_sample = 0;
      trace->counter("sim", "queue_depth", obs::kJobNode, engine.now(),
                     static_cast<double>(engine.pending()));
    }
  }
  const double wall_s = wall.seconds();
  FGP_CHECK_MSG(completed == transfers,
                "rung lost transfers: " << completed << " of " << transfers);

  RungResult r;
  r.nodes = nodes;
  r.transfers = transfers;
  r.events = engine.events_dispatched();
  r.heap_peak = engine.heap_peak();
  r.virtual_end_s = engine.now();
  r.wall_s = wall_s;
  r.events_per_second =
      wall_s > 0.0 ? static_cast<double>(r.events) / wall_s : 0.0;
  r.checksum = checksum;
  for (const auto& pipe : pipes) r.recomputes += pipe.fair_share_recomputes();
  if (metrics != nullptr) {
    engine.flush_counters(metrics);
    for (const auto& pipe : pipes) {
      metrics->add("sim." + pipe.name() + ".transfers",
                   static_cast<double>(pipe.total_transfers()),
                   obs::Domain::Host);
      metrics->add("sim." + pipe.name() + ".recomputes",
                   static_cast<double>(pipe.fair_share_recomputes()),
                   obs::Domain::Host);
    }
  }
  return r;
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

std::string to_json(const std::vector<RungResult>& ladder, bool quick) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"schema\": \"fgpred-sim-v1\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  os << "  \"note\": \"discrete-event core ladder: fixed transfer count "
        "through 8 contended WAN pipes, in-flight window "
     << kWindow
     << ", senders cycling over the fleet. events_per_second is wall-clock "
        "and machine-bound; bench_diff refuses comparisons across "
        "different host_cores. wall_s growth across rungs must stay "
        "sub-linear in nodes (only heap depth grows).\",\n";
  os << "  \"pipes\": " << kPipes << ",\n";
  os << "  \"window\": " << kWindow << ",\n";
  os << "  \"ladder\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const RungResult& r = ladder[i];
    os << "    {\n";
    os << "      \"nodes\": " << r.nodes << ",\n";
    os << "      \"transfers\": " << r.transfers << ",\n";
    os << "      \"events\": " << r.events << ",\n";
    os << "      \"recomputes\": " << r.recomputes << ",\n";
    os << "      \"heap_peak\": " << r.heap_peak << ",\n";
    os << "      \"virtual_end_s\": " << r.virtual_end_s << ",\n";
    os << "      \"wall_s\": " << r.wall_s << ",\n";
    os << "      \"events_per_second\": " << r.events_per_second << ",\n";
    os << "      \"checksum\": \"" << hex(r.checksum) << "\"\n";
    os << "    }" << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  // Headline: the largest rung's throughput (the claim under test is that
  // it holds up at fleet scale).
  os << "  \"events_per_second\": "
     << (ladder.empty() ? 0.0 : ladder.back().events_per_second) << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace
}  // namespace fgp::bench

int main(int argc, char** argv) {
  bool quick = false;
  int single_nodes = 0;
  std::string out_path, trace_path, metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--nodes" && i + 1 < argc) {
      single_nodes = std::stoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const std::uint64_t transfers = quick ? 20'000 : 200'000;
  std::vector<int> rungs;
  if (single_nodes > 0) {
    rungs = {single_nodes};
  } else if (quick) {
    rungs = {128, 512, 1024};
  } else {
    rungs = {128, 256, 512, 1024, 2048, 4096};
  }

  // Determinism gate: the smallest rung, twice, must produce the same
  // completion-bit checksum before anything gets timed for the report.
  {
    const auto a = fgp::bench::run_rung(rungs.front(), transfers / 10,
                                        nullptr, nullptr);
    const auto b = fgp::bench::run_rung(rungs.front(), transfers / 10,
                                        nullptr, nullptr);
    FGP_CHECK_MSG(a.checksum == b.checksum,
                  "nondeterministic engine: checksum mismatch across replays");
    std::cerr << "replay gate ok (checksum " << fgp::bench::hex(a.checksum)
              << ")\n";
  }

  fgp::obs::TraceRecorder trace;
  fgp::obs::Registry metrics;
  std::vector<fgp::bench::RungResult> ladder;
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const bool largest = i + 1 == rungs.size();
    const auto r = fgp::bench::run_rung(
        rungs[i], transfers, largest ? &trace : nullptr,
        largest ? &metrics : nullptr);
    std::cerr << "nodes=" << r.nodes << " events=" << r.events
              << " wall_s=" << r.wall_s
              << " events/s=" << static_cast<std::uint64_t>(
                                     r.events_per_second)
              << " heap_peak=" << r.heap_peak << "\n";
    ladder.push_back(r);
  }

  const std::string json = fgp::bench::to_json(ladder, quick);
  if (out_path.empty()) {
    std::cout << json;
  } else {
    std::ofstream f(out_path);
    f << json;
  }
  if (!trace_path.empty()) {
    std::ofstream f(trace_path);
    f << trace.to_chrome_json(true);
  }
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path);
    f << metrics.to_json(true);
  }
  return 0;
}
