// naive_kernels.h — seed-verbatim scalar sweeps for host_perf's "before"
// side.
//
// These are the pre-blocking per-chunk loops, kept verbatim from the seed
// kernels as the committed wall-clock baseline. They live in their own
// translation unit on purpose: dimensions and counts stay runtime values
// here exactly as they were in the seed kernels, so the compiler cannot
// constant-fold the baseline into something the original code never was
// (host_perf.cpp knows its dataset shapes as literals, and inlining the
// loops there would let GCC fully unroll them).
//
// Each sweep returns a cheap summary statistic so host_perf can cross-check
// the fast path against the baseline before timing either.
#pragma once

#include <cstddef>
#include <cstdint>

#include "apps/em.h"
#include "apps/kmeans.h"
#include "apps/knn.h"
#include "apps/vortex.h"
#include "repository/dataset.h"

namespace fgp::bench::naive {

/// One assignment pass over all chunks; returns the summed squared error.
double kmeans_sweep(const repository::ChunkedDataset& ds,
                    const apps::KMeansParams& params);

/// One E-step over all chunks with the initial parameters; returns the
/// data log-likelihood.
double em_sweep(const repository::ChunkedDataset& ds,
                const apps::EMParams& params);

/// One neighbour sweep over all chunks; returns the sum of the kth-best
/// squared distances over all queries.
double knn_sweep(const repository::ChunkedDataset& ds,
                 const apps::KnnParams& params);

/// Detection + union-find + fragment build over all chunks; returns the
/// total number of vortical cells across all fragments.
std::uint64_t vortex_sweep(const repository::ChunkedDataset& ds,
                           const apps::VortexParams& params);

/// Per-atom detection + dense aggregation over all chunks; returns the
/// number of local defect structures found.
std::size_t defect_sweep(const repository::ChunkedDataset& ds);

}  // namespace fgp::bench::naive
