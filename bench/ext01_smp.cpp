// Extension E1: cluster-of-SMPs execution.
//
// FREERIDE-G promises "execution on distributed memory and shared memory
// systems, as well as on cluster of SMPs, starting from a common
// high-level interface" (paper §1), but the evaluation runs one process
// per node. This bench exercises the SMP dimension on a 4-core variant of
// the Opteron cluster: per-node threading under the three shared-memory
// reduction strategies (full replication vs. locking schemes from the
// FREERIDE predecessor), and the thread-aware prediction model's accuracy.
#include <iostream>

#include "common.h"
#include "core/ipc_probe.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace fgp;
  const auto app = bench::make_em_app(700.0, 2.0, 42);
  auto cluster = sim::cluster_opteron_infiniband();
  cluster.machine.cores = 4;  // a quad-core SMP variant
  const auto wan = sim::wan_mbps(800.0);

  std::cout << "Extension E1: cluster-of-SMPs execution (EM, 700 MB, "
               "4-core nodes)\n\n";

  auto run_with = [&](int c, int threads, freeride::SmpStrategy strategy) {
    freeride::JobSetup setup;
    setup.dataset = app.dataset.get();
    setup.data_cluster = cluster;
    setup.compute_cluster = cluster;
    setup.wan = wan;
    setup.config.data_nodes = 2;
    setup.config.compute_nodes = c;
    setup.config.threads_per_node = threads;
    setup.config.smp_strategy = strategy;
    auto kernel = app.factory();
    return freeride::Runtime(&bench::shared_pool()).run(setup, *kernel);
  };

  // Profile: 2-4, single-threaded.
  freeride::JobSetup profile_setup;
  profile_setup.dataset = app.dataset.get();
  profile_setup.data_cluster = cluster;
  profile_setup.compute_cluster = cluster;
  profile_setup.wan = wan;
  profile_setup.config.data_nodes = 2;
  profile_setup.config.compute_nodes = 4;
  auto profile_kernel = app.factory();
  const core::Profile profile =
      core::ProfileCollector::collect(profile_setup, *profile_kernel,
                                      &bench::shared_pool());

  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = app.classes;
  opts.ipc = core::measure_ipc(cluster);
  const core::Predictor predictor(profile, opts);

  const double t_base =
      run_with(4, 1, freeride::SmpStrategy::FullReplication)
          .timing.total.compute()
          ;

  util::Table table({"nodes x threads", "strategy", "T_compute(s)",
                     "speedup", "pred err (thread-aware)"});
  for (const int threads : {1, 2, 4}) {
    for (const auto& [strategy, name] :
         std::vector<std::pair<freeride::SmpStrategy, std::string>>{
             {freeride::SmpStrategy::FullReplication, "replication"},
             {freeride::SmpStrategy::FullLocking, "full-locking"},
             {freeride::SmpStrategy::CacheSensitiveLocking,
              "cache-sensitive"}}) {
      if (threads == 1 &&
          strategy != freeride::SmpStrategy::FullReplication)
        continue;  // strategies are indistinguishable at one thread
      const auto result = run_with(4, threads, strategy);
      core::ProfileConfig target = profile.config;
      target.compute_nodes = 4;
      target.threads_per_node = threads;
      const double predicted = predictor.predict(target).total();
      const double err =
          util::relative_error(result.timing.total.total(), predicted);
      table.add_row({"4 x " + std::to_string(threads), name,
                     util::Table::fmt(result.timing.total.compute(), 2),
                     util::Table::fmt(
                         t_base / result.timing.total.compute(), 2) +
                         "x",
                     util::Table::pct(err)});
    }
  }
  table.print(std::cout);
  std::cout << "\n  Takeaway: full replication parallelizes best (and the "
               "thread-aware c*t scaling predicts it well); the locking "
               "strategies trade replicas for contention, which the model "
               "does not see.\n\n";
  return 0;
}
