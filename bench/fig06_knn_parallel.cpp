// Figure 6: prediction errors for k-NN search, base profile 1-1, 1.4 GB
// dataset.
#include "common.h"

int main() {
  using namespace fgp;
  const bench::SweepRunner sweep;
  const auto app = bench::make_knn_app(1400.0, 4.0, 42);
  bench::three_model_figure(
      sweep,
      "Figure 6: Prediction Errors for KNN Search (base profile 1-1, "
      "1.4 GB)",
      app, sim::cluster_pentium_myrinet(), sim::wan_mbps(800.0));
  return 0;
}
