// Ablation A5: stragglers vs the homogeneous model.
//
// The prediction model assumes every compute node runs at the cluster's
// nominal speed. Real grids have stragglers — shared machines, ailing
// disks. This bench slows a subset of compute nodes down and measures how
// the published global-reduction model degrades as the straggler gets
// worse: the local reduction finishes when the *slowest* node does, so a
// single 2x straggler can cost the whole cluster half its compute speedup.
#include <iostream>

#include "common.h"
#include "core/ipc_probe.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace fgp;
  const auto app = bench::make_kmeans_app(1400.0, 4.0, 42);
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(800.0);

  std::cout << "Ablation A5: prediction error under compute-node "
               "stragglers (k-means, 8-16, global-red model, clean 1-1 "
               "profile)\n\n";

  const core::Profile base =
      bench::profile_of(app, cluster, cluster, wan, {1, 1});
  core::PredictorOptions opts;
  opts.model = core::PredictionModel::GlobalReduction;
  opts.classes = app.classes;
  opts.ipc = core::measure_ipc(cluster);
  core::ProfileConfig target = base.config;
  target.data_nodes = 8;
  target.compute_nodes = 16;
  const double predicted = core::Predictor(base, opts).predict(target).total();

  auto run_with = [&](int stragglers, double slowdown) {
    freeride::JobSetup setup;
    setup.dataset = app.dataset.get();
    setup.data_cluster = cluster;
    setup.compute_cluster = cluster;
    setup.wan = wan;
    setup.config.data_nodes = 8;
    setup.config.compute_nodes = 16;
    setup.config.straggler_count = stragglers;
    setup.config.straggler_slowdown = slowdown;
    auto kernel = app.factory();
    return freeride::Runtime(&bench::shared_pool()).run(setup, *kernel).timing.total.total();
  };

  util::Table table(
      {"stragglers", "slowdown", "T_exact(s)", "T_pred(s)", "error"});
  for (const auto& [count, slowdown] :
       std::vector<std::pair<int, double>>{{0, 1.0},
                                           {1, 1.5},
                                           {1, 2.0},
                                           {1, 4.0},
                                           {4, 2.0},
                                           {8, 2.0}}) {
    const double exact = run_with(count, slowdown);
    table.add_row({std::to_string(count), util::Table::fmt(slowdown, 1) + "x",
                   util::Table::fmt(exact, 2), util::Table::fmt(predicted, 2),
                   util::Table::pct(util::relative_error(exact, predicted))});
  }
  table.print(std::cout);
  std::cout << "\n  The model underestimates as soon as one node lags: "
               "barrier-synchronized local reductions inherit the slowest "
               "node's speed. Production use needs either straggler-aware "
               "profiling or runtime re-prediction.\n\n";
  return 0;
}
