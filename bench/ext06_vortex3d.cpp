// Extension E6: volumetric (3-D) vortex detection under the prediction
// framework — the fully "volumetric regions" version of the paper's §4.4
// feature miner, run through the same Figure-3-style experiment.
#include "common.h"

int main() {
  const fgp::bench::SweepRunner sweep;
  const auto app = fgp::bench::make_vortex3d_app(710.0, 23);
  fgp::bench::three_model_figure(
      sweep,
      "Extension E6: Prediction Errors for Volumetric (3-D) Vortex "
      "Detection (base profile 1-1, 710 MB)",
      app, fgp::sim::cluster_pentium_myrinet(), fgp::sim::wan_mbps(800.0));
  return 0;
}
