// Extension E5: what the prediction model buys the middleware.
//
// The paper's opening claim: "for a middleware to perform resource
// allocation, prediction models are needed, which can determine how long
// an application will take". This bench quantifies that: a mixed stream
// of real FREERIDE-G jobs (k-means, EM, k-NN, vortex, defect) arrives at
// a two-site grid, and three allocation policies are compared —
// prediction-driven (argmin predicted completion), round-robin, and
// grab-the-most-nodes. Ground truth executions run on the virtual
// cluster; queueing is simulated with real reservations.
#include <iostream>

#include "common.h"
#include "core/scheduler.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace fgp;
  const auto pentium = sim::cluster_pentium_myrinet();

  grid::GridCatalog catalog;
  catalog.register_repository_site({"repo", pentium, 8});
  catalog.register_compute_site({"hpc-small", pentium, 8});
  catalog.register_compute_site({"hpc-large", pentium, 16});
  catalog.register_link("repo", "hpc-small", sim::wan_mbps(800));
  catalog.register_link("repo", "hpc-large", sim::wan_mbps(200));

  std::cout << "Extension E5: prediction-driven scheduling vs model-blind "
               "policies (mixed 10-job stream, two compute sites)\n\n";

  // The application mix. Each app gets one dataset + one 1-1 profile.
  std::vector<bench::BenchApp> apps{
      bench::make_kmeans_app(700.0, 2.0, 42),
      bench::make_em_app(700.0, 2.0, 43),
      bench::make_knn_app(700.0, 2.0, 44),
      bench::make_vortex_app(700.0, 256, 45),
      bench::make_defect_app(260.0, 24, 24, 96, 46),
  };
  std::vector<core::Profile> profiles;
  for (auto& app : apps) {
    catalog.register_replica({app.name + "-data", "repo", 2});
    profiles.push_back(
        bench::profile_of(app, pentium, pentium, sim::wan_mbps(800), {1, 1}));
  }

  // A 10-job stream cycling through the apps, arriving every 20 seconds.
  std::vector<core::JobRequest> jobs;
  for (int i = 0; i < 10; ++i) {
    const auto& app = apps[static_cast<std::size_t>(i) % apps.size()];
    core::JobRequest j;
    j.id = app.name + "-" + std::to_string(i);
    j.dataset = app.name + "-data";
    j.dataset_bytes = app.dataset->total_virtual_bytes();
    j.profile = profiles[static_cast<std::size_t>(i) % apps.size()];
    j.classes = app.classes;
    j.submit_time_s = 20.0 * i;
    jobs.push_back(std::move(j));
  }

  // Ground truth: run the job's kernel on the candidate's resources.
  auto runner = [&](const core::JobRequest& job,
                    const grid::Candidate& cand) {
    for (const auto& app : apps) {
      if (app.name + "-data" != job.dataset) continue;
      const auto& site = catalog.compute_site(cand.compute_site);
      const auto& repo = catalog.repository_site(cand.replica.repository);
      return bench::simulate(app, repo.cluster, site.cluster, cand.wan,
                             {cand.replica.storage_nodes, cand.compute_nodes})
          .timing.total.total();
    }
    throw util::Error("unknown job dataset " + job.dataset);
  };

  util::Table table({"policy", "makespan(s)", "mean turnaround(s)",
                     "mean |pred-actual|/actual"});
  for (const auto& [policy, name] :
       std::vector<std::pair<core::SchedulingPolicy, std::string>>{
           {core::SchedulingPolicy::PredictedBest, "predicted-best"},
           {core::SchedulingPolicy::RoundRobin, "round-robin"},
           {core::SchedulingPolicy::MaxNodes, "max-nodes"}}) {
    core::GridScheduler scheduler(&catalog, policy);
    const auto placements = scheduler.schedule(jobs, runner);
    util::Accumulator errs;
    for (const auto& p : placements)
      errs.add(util::relative_error(p.actual_exec_s, p.predicted_exec_s));
    table.add_row({name, util::Table::fmt(scheduler.makespan(), 1),
                   util::Table::fmt(scheduler.mean_turnaround(), 1),
                   util::Table::pct(errs.mean())});
  }
  table.print(std::cout);
  std::cout << "\n  Accurate per-configuration estimates let the middleware "
               "trade queue wait against parallelism: predicted-best wins "
               "decisively on makespan. (Greedy per-job optimization can "
               "still lose a little mean turnaround to policies that spread "
               "allocations by accident — scheduling on top of a perfect "
               "model remains a policy question.)\n\n";
  return 0;
}
