// Ablation A4: sensitivity to mis-declared application classes.
//
// What happens when the user (or a buggy detector) assigns the wrong
// reduction-object-size or global-reduction-time class? This bench
// predicts EM clustering (truly linear / constant-linear) under all four
// class combinations with the global-reduction model.
#include <iostream>

#include "common.h"
#include "core/ipc_probe.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace fgp;
  const auto app = bench::make_em_app(1400.0, 4.0, 42);
  const auto cluster = sim::cluster_pentium_myrinet();
  const auto wan = sim::wan_mbps(800.0);

  std::cout << "Ablation A4: prediction error under mis-declared classes "
               "(EM clustering, global-reduction model, base profile 1-2)\n\n";

  // Profile at 1-2 so the object size and gather path are observable.
  const core::Profile base = bench::profile_of(app, cluster, cluster, wan, {1, 2});

  const std::vector<std::pair<std::string, core::AppClasses>> variants{
      {"correct: linear / constant-linear",
       {core::RoSizeClass::LinearWithData,
        core::GlobalReductionClass::ConstantLinear}},
      {"wrong r: constant / constant-linear",
       {core::RoSizeClass::Constant,
        core::GlobalReductionClass::ConstantLinear}},
      {"wrong T_g: linear / linear-constant",
       {core::RoSizeClass::LinearWithData,
        core::GlobalReductionClass::LinearConstant}},
      {"both wrong: constant / linear-constant",
       {core::RoSizeClass::Constant,
        core::GlobalReductionClass::LinearConstant}},
  };

  util::Table table({"data-compute", "correct", "wrong r", "wrong T_g",
                     "both wrong"});
  std::vector<util::Accumulator> acc(variants.size());
  for (const auto cfg : bench::paper_grid()) {
    const double exact = bench::simulate(app, cluster, cluster, wan, cfg)
                             .timing.total.total();
    std::vector<std::string> row{std::to_string(cfg.n) + "-" +
                                 std::to_string(cfg.c)};
    for (std::size_t v = 0; v < variants.size(); ++v) {
      core::PredictorOptions opts;
      opts.model = core::PredictionModel::GlobalReduction;
      opts.classes = variants[v].second;
      opts.ipc = core::measure_ipc(cluster);
      core::ProfileConfig target = base.config;
      target.data_nodes = cfg.n;
      target.compute_nodes = cfg.c;
      const double err = util::relative_error(
          exact, core::Predictor(base, opts).predict(target).total());
      acc[v].add(err);
      row.push_back(util::Table::pct(err));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n  max errors:";
  for (std::size_t v = 0; v < variants.size(); ++v)
    std::cout << "  [" << variants[v].first << "] "
              << util::Table::pct(acc[v].max());
  std::cout << "\n\n";
  return 0;
}
