// rng.h — deterministic random number generation.
//
// All synthetic datasets and placement decisions derive from explicit seeds
// so that every experiment in bench/ is exactly reproducible run-to-run
// (virtual time depends on actual work counts, which depend on the data).
#pragma once

#include <cstdint>
#include <cmath>

namespace fgp::util {

/// SplitMix64 — tiny, high-quality 64-bit PRNG; also used to seed streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator for dataset synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box–Muller (one value per call; cached pair).
  double next_gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = next_double();
    double u2 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    cached_ = mag * std::sin(6.283185307179586 * u2);
    have_cached_ = true;
    return mag * std::cos(6.283185307179586 * u2);
  }

  /// Derive an independent child stream (for per-chunk generation).
  Rng fork(std::uint64_t salt) {
    SplitMix64 sm(next_u64() ^ (salt * 0x9e3779b97f4a7c15ull));
    return Rng(sm.next());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace fgp::util
