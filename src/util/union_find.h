// union_find.h — disjoint-set forest with path halving and union by size.
// Used by the feature-mining applications (vortex regions, defect clusters)
// for local aggregation and the cross-node join in the global combine.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace fgp::util {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    FGP_CHECK(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Unites the sets of a and b; returns true when they were disjoint.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t set_size(std::size_t x) { return size_[find(x)]; }
  std::size_t element_count() const { return parent_.size(); }

  std::size_t component_count() {
    std::size_t roots = 0;
    for (std::size_t i = 0; i < parent_.size(); ++i)
      if (find(i) == i) ++roots;
    return roots;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace fgp::util
