// stats.h — small descriptive-statistics helpers used by the prediction
// framework (scaling-factor averaging, error summaries) and the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fgp::util {

/// Streaming accumulator: count / mean / min / max / (population) stdev.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double min() const;
  double max() const;
  double stdev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double stdev(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// The paper's error metric: E = |exact - predicted| / exact.
/// Precondition: exact > 0.
double relative_error(double exact, double predicted);

/// Simple least-squares fit of y = a + b*x. Returns {a, b}.
/// Used by class auto-detection (log-space exponent fitting).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace fgp::util
