#include "util/thread_pool.h"

#include "util/check.h"

namespace fgp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 2;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lock(mu_);
    FGP_CHECK_MSG(!stop_, "submit on stopped ThreadPool");
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  std::exception_ptr first;
  try {
    for (std::size_t i = 0; i < n; ++i)
      futures.push_back(submit([&fn, i] { fn(i); }));
  } catch (...) {
    first = std::current_exception();
  }
  // Wait for *every* submitted task before rethrowing: tasks capture `fn`
  // by reference, so returning while any still run would let the caller
  // destroy it under a worker. The lowest-index failure wins.
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace fgp::util
