#include "util/thread_pool.h"

#include <algorithm>
#include <memory>

#include "util/check.h"

namespace fgp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 2;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto pt = std::make_shared<std::packaged_task<void()>>(std::move(task));
  auto fut = pt->get_future();
  {
    std::lock_guard lock(mu_);
    FGP_CHECK_MSG(!stop_, "submit on stopped ThreadPool");
    tasks_.push([pt] { (*pt)(); });
  }
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  return fut;
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard lock(mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  return true;
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.parallel_for_calls = parallel_for_calls_.load(std::memory_order_relaxed);
  s.blocks_total = blocks_total_.load(std::memory_order_relaxed);
  s.blocks_by_helpers = blocks_by_helpers_.load(std::memory_order_relaxed);
  s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::set_task_observer(TaskObserver observer) {
  observer_ = std::move(observer);
}

void ThreadPool::ForState::drain(std::atomic<unsigned long long>* helper_blocks) {
  for (;;) {
    const std::size_t b = next_block.fetch_add(1);
    if (b >= num_blocks) return;
    if (helper_blocks) helper_blocks->fetch_add(1, std::memory_order_relaxed);
    const std::size_t begin = b * block;
    const std::size_t end = std::min(n, begin + block);
    for (std::size_t i = begin; i < end; ++i) {
      // Run *every* index even after a failure: callers rely on all side
      // effects happening before parallel_for returns.
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard lock(mu);
        if (!error || i < first_error_index) {
          first_error_index = i;
          error = std::current_exception();
        }
      }
    }
    if (blocks_done.fetch_add(1) + 1 == num_blocks) {
      // Last block: wake the owning caller, which may already be waiting.
      std::lock_guard lock(mu);
      done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const double begin_s = observer_ ? epoch_.seconds() : 0.0;
  auto state = std::make_shared<ForState>();
  state->fn = &fn;
  state->n = n;
  // Block-chunk the range: ~4 blocks per worker keeps the queue short while
  // still letting fast workers steal from slow ones. The block size is a
  // function of the *pool size* only, which is wall-clock bookkeeping — any
  // determinism-sensitive partition (e.g. the runtime's chunk blocks) is
  // computed by the caller before dispatch.
  const std::size_t target = std::max<std::size_t>(1, workers_.size() * 4);
  state->block = std::max<std::size_t>(1, (n + target - 1) / target);
  state->num_blocks = (n + state->block - 1) / state->block;

  // Enqueue helpers for idle workers; the caller participates regardless, so
  // even with zero helpers (or a fully busy pool) the range completes.
  const std::size_t helpers =
      std::min(workers_.size(), state->num_blocks > 0 ? state->num_blocks - 1
                                                      : std::size_t{0});
  {
    std::lock_guard lock(mu_);
    if (!stop_)
      for (std::size_t h = 0; h < helpers; ++h)
        tasks_.push([state, counter = &blocks_by_helpers_] {
          state->drain(counter);
        });
  }
  if (helpers > 0) cv_.notify_all();

  state->drain();
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  blocks_total_.fetch_add(state->num_blocks, std::memory_order_relaxed);
  {
    std::unique_lock lock(state->mu);
    state->done_cv.wait(lock, [&] {
      return state->blocks_done.load() == state->num_blocks;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
  if (observer_) observer_(n, begin_s, epoch_.seconds());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace fgp::util
