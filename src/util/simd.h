// simd.h — fixed-width register-blocked reduction primitives.
//
// The compute kernels in src/apps/ spend almost all of their time in small
// dense loops (distance evaluations, weighted accumulations, stencils).
// These helpers restructure those loops into kLanes independent scalar
// accumulators so the compiler can keep them in vector registers and
// autovectorize — no intrinsics, portable everywhere, and measurably close
// to hand-written SIMD for the shapes we care about (d in the 2..64 range).
//
// Determinism contract (DESIGN "Blocked-reduction determinism"): the
// floating-point accumulation order of every helper is a pure function of
// the element count. Lane-blocked reductions (dot, weighted_squared_distance)
// give lane j elements j, j+kLanes, j+2*kLanes,…; the tail (count % kLanes
// elements) is folded into the lanes in index order; lanes combine as
// (l0 + l1) + (l2 + l3). The point-tiled distance helpers
// (squared_distance_x4) instead keep each point's accumulation strictly
// serial in coordinate order — identical bits to a plain scalar loop — and
// draw their parallelism from four independent per-point chains. Nothing
// here may ever depend on thread count, chunk partitioning, or pool size —
// that is what keeps tests/test_determinism.cpp bit-identical at pool
// sizes 1/2/8. Reference implementations that tests compare bit-exactly
// against the kernels (e.g. knn_reference) must use the helper with the
// same per-point order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace fgp::util::simd {

/// Register-blocking width. Four 64-bit lanes fill one AVX2 register; on
/// narrower ISAs the compiler splits them into two 128-bit operations,
/// which still beats a serial dependency chain.
inline constexpr std::size_t kLanes = 4;

/// Combines the four lane accumulators in the fixed contract order.
inline double combine(double l0, double l1, double l2, double l3) {
  return (l0 + l1) + (l2 + l3);
}

/// Blocked squared Euclidean distance |a - b|^2 over d coordinates.
inline double squared_distance(const double* a, const double* b,
                               std::size_t d) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t j = 0;
  for (; j + kLanes <= d; j += kLanes) {
    const double d0 = a[j] - b[j];
    const double d1 = a[j + 1] - b[j + 1];
    const double d2 = a[j + 2] - b[j + 2];
    const double d3 = a[j + 3] - b[j + 3];
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  switch (d - j) {  // tail folds into the lanes in index order
    case 3: {
      const double d2t = a[j + 2] - b[j + 2];
      l2 += d2t * d2t;
      [[fallthrough]];
    }
    case 2: {
      const double d1t = a[j + 1] - b[j + 1];
      l1 += d1t * d1t;
      [[fallthrough]];
    }
    case 1: {
      const double d0t = a[j] - b[j];
      l0 += d0t * d0t;
      break;
    }
    default:
      break;
  }
  return combine(l0, l1, l2, l3);
}

/// Serial-order squared distance: one accumulator, coordinates in index
/// order — the exact bits of the pre-blocking scalar loop. This is the
/// per-point order of the tiled distance kernels and their references.
inline double squared_distance_serial(const double* a, const double* b,
                                      std::size_t d) {
  double acc = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double diff = a[j] - b[j];
    acc += diff * diff;
  }
  return acc;
}

/// Point tile width for the distance kernels: four points share one centre
/// row per sweep, so the centre streams from L1 once per tile and the four
/// serial accumulation chains run in parallel.
inline constexpr std::size_t kPointTile = 4;

/// Squared distances of four points (rows of `x`, `stride` doubles apart;
/// stride == d for dense point arrays, d+1 for labeled rows) from one
/// centre `c`. Each out[t] carries the serial coordinate order — bit-equal
/// to squared_distance_serial(x + t*stride, c, d) — while the four
/// independent chains give the ILP a single chain cannot.
inline void squared_distance_x4(const double* x, std::size_t stride,
                                const double* c, std::size_t d,
                                double out[4]) {
  const double* x0 = x;
  const double* x1 = x + stride;
  const double* x2 = x + 2 * stride;
  const double* x3 = x + 3 * stride;
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double cj = c[j];
    const double d0 = x0[j] - cj;
    const double d1 = x1[j] - cj;
    const double d2 = x2[j] - cj;
    const double d3 = x3[j] - cj;
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  out[0] = a0;
  out[1] = a1;
  out[2] = a2;
  out[3] = a3;
}

/// Blocked weighted quadratic form: sum_j (x[j]-mu[j])^2 * w[j]. Used by
/// the EM E-step with w = 1/var (precomputed per pass).
inline double weighted_squared_distance(const double* x, const double* mu,
                                        const double* w, std::size_t d) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t j = 0;
  for (; j + kLanes <= d; j += kLanes) {
    const double d0 = x[j] - mu[j];
    const double d1 = x[j + 1] - mu[j + 1];
    const double d2 = x[j + 2] - mu[j + 2];
    const double d3 = x[j + 3] - mu[j + 3];
    l0 += d0 * d0 * w[j];
    l1 += d1 * d1 * w[j + 1];
    l2 += d2 * d2 * w[j + 2];
    l3 += d3 * d3 * w[j + 3];
  }
  switch (d - j) {
    case 3: {
      const double d2t = x[j + 2] - mu[j + 2];
      l2 += d2t * d2t * w[j + 2];
      [[fallthrough]];
    }
    case 2: {
      const double d1t = x[j + 1] - mu[j + 1];
      l1 += d1t * d1t * w[j + 1];
      [[fallthrough]];
    }
    case 1: {
      const double d0t = x[j] - mu[j];
      l0 += d0t * d0t * w[j];
      break;
    }
    default:
      break;
  }
  return combine(l0, l1, l2, l3);
}

/// Blocked dot product sum_j a[j] * b[j].
inline double dot(const double* a, const double* b, std::size_t d) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t j = 0;
  for (; j + kLanes <= d; j += kLanes) {
    l0 += a[j] * b[j];
    l1 += a[j + 1] * b[j + 1];
    l2 += a[j + 2] * b[j + 2];
    l3 += a[j + 3] * b[j + 3];
  }
  switch (d - j) {
    case 3:
      l2 += a[j + 2] * b[j + 2];
      [[fallthrough]];
    case 2:
      l1 += a[j + 1] * b[j + 1];
      [[fallthrough]];
    case 1:
      l0 += a[j] * b[j];
      break;
    default:
      break;
  }
  return combine(l0, l1, l2, l3);
}

/// Element-wise accumulate acc[j] += x[j]. Order-free (one FP add per
/// slot), so a plain loop the compiler unrolls and vectorizes freely.
inline void accumulate(double* acc, const double* x, std::size_t d) {
  for (std::size_t j = 0; j < d; ++j) acc[j] += x[j];
}

/// Element-wise y[j] += a * x[j].
inline void axpy(double* y, double a, const double* x, std::size_t d) {
  for (std::size_t j = 0; j < d; ++j) y[j] += a * x[j];
}

/// EM sufficient-statistics update: sx[j] += r*x[j], sx2[j] += r*x[j]*x[j].
/// Both updates stream over x once, each slot independent.
inline void weighted_moments(double* sx, double* sx2, double r,
                             const double* x, std::size_t d) {
  for (std::size_t j = 0; j < d; ++j) {
    const double rx = r * x[j];
    sx[j] += rx;
    sx2[j] += rx * x[j];
  }
}

/// True when the 8 bytes at p are all equal to `fill`. Lets sparse sweeps
/// (union-find over mostly-empty mark/kind arrays) skip empty cell groups
/// with one 64-bit compare instead of eight branchy loads.
inline bool all_bytes_equal8(const void* p, std::uint8_t fill) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v == 0x0101010101010101ull * fill;
}

}  // namespace fgp::util::simd
