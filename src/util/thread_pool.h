// thread_pool.h — fixed-size worker pool used to run independent simulated
// nodes' local reductions concurrently. The virtual-time accounting is
// independent of real parallelism: the pool only shortens wall-clock time.
//
// Nesting contract
// ----------------
// `parallel_for` may be called from *any* thread, including a pool worker
// that is itself executing a `parallel_for` index. The calling thread never
// blocks on queued helper tasks: the range is split into contiguous blocks
// claimed from a shared atomic cursor, the caller drains blocks alongside
// the workers, and only waits (on a condition variable) for blocks that
// other threads have already claimed but not yet finished. Helper tasks
// that reach the front of the queue after the range is exhausted observe
// the spent cursor and return without touching the callable, so nested and
// concurrent invocations can never deadlock and never dangle. This contract
// is exercised by nested/concurrent stress tests in tests/test_thread_pool.cpp
// (run under TSan in CI).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/wallclock.h"

namespace fgp::util {

/// Monotonic pool activity counters. All values are host-side bookkeeping:
/// blocks_by_helpers depends on scheduling races and MUST NOT feed any
/// deterministic output (see DESIGN.md §12 — it belongs to the Host metric
/// domain).
struct PoolStats {
  unsigned long long parallel_for_calls = 0;
  unsigned long long blocks_total = 0;
  unsigned long long blocks_by_helpers = 0;  ///< claimed off the caller thread
  unsigned long long tasks_submitted = 0;    ///< submit() calls
};

class ThreadPool {
 public:
  /// Creates `threads` workers (>= 1). Defaults to hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for *all* indices
  /// to finish, even when some throw; the lowest-index task's exception is
  /// then rethrown ("first one wins"). n == 0 is a no-op. Safe to call from
  /// pool workers (nested) and from several threads at once — see the
  /// nesting contract above. Indices are dispatched in contiguous blocks so
  /// large ranges do not pay per-index enqueue overhead.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Pops and runs one queued task on the *calling* thread; returns false
  /// without blocking when the queue is empty. This is how a thread waits
  /// on pool work without parking: a caller that must block until a
  /// submitted task finishes may itself be a pool worker (parallel_for
  /// runs whole jobs on helpers), and parking on a queued task from
  /// inside a saturated pool deadlocks it — help-first, wait only when
  /// the queue is empty (the task is then running elsewhere or done).
  /// A task exception propagates to the submitter's future, never here.
  bool try_run_one();

  std::size_t size() const { return workers_.size(); }

  /// Snapshot of the activity counters (atomically consistent per field,
  /// not across fields — fine for monitoring).
  PoolStats stats() const;

  /// Observer invoked on the *calling* thread after every parallel_for,
  /// with the range size and the wall-clock window [begin_s, end_s) in
  /// seconds since the pool's construction. Wall-clock only: intended for
  /// host-domain tracing (obs::attach_pool_tracing). Pass nullptr to
  /// detach. Not thread-safe against concurrent parallel_for callers —
  /// install before handing the pool out.
  using TaskObserver =
      std::function<void(std::size_t n, double begin_s, double end_s)>;
  void set_task_observer(TaskObserver observer);

 private:
  // Shared state of one parallel_for invocation. Helpers hold it via
  // shared_ptr, so a late-dequeued helper outliving the call is harmless:
  // it observes next_block >= num_blocks and never dereferences `fn`.
  struct ForState {
    const std::function<void(std::size_t)>* fn = nullptr;  // caller-owned
    std::size_t n = 0;
    std::size_t block = 1;       // indices per block
    std::size_t num_blocks = 0;
    std::atomic<std::size_t> next_block{0};
    std::atomic<std::size_t> blocks_done{0};
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t first_error_index = 0;
    std::exception_ptr error;

    /// Claims and runs blocks until the range is spent. `helper_blocks`
    /// (when non-null) counts blocks claimed by queue helpers rather than
    /// the owning caller.
    void drain(std::atomic<unsigned long long>* helper_blocks = nullptr);
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  Stopwatch epoch_;  // wall-clock origin for the task observer
  TaskObserver observer_;
  std::atomic<unsigned long long> parallel_for_calls_{0};
  std::atomic<unsigned long long> blocks_total_{0};
  std::atomic<unsigned long long> blocks_by_helpers_{0};
  std::atomic<unsigned long long> tasks_submitted_{0};
};

}  // namespace fgp::util
