// thread_pool.h — fixed-size worker pool used to run independent simulated
// nodes' local reductions concurrently. The virtual-time accounting is
// independent of real parallelism: the pool only shortens wall-clock time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fgp::util {

class ThreadPool {
 public:
  /// Creates `threads` workers (>= 1). Defaults to hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for *all* tasks
  /// to finish, even when some throw; the lowest-index task's exception is
  /// then rethrown ("first one wins"). n == 0 is a no-op.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace fgp::util
