// check.h — error-handling primitives shared by every fgpred module.
//
// Convention (C++ Core Guidelines E.2/E.3): violations of *preconditions and
// invariants that depend on caller input* throw fgp::util::Error so that a
// misconfigured job or malformed chunk is reportable; internal logic errors
// use FGP_ASSERT which aborts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fgp::util {

/// Base exception for all recoverable fgpred errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when deserialization encounters truncated or malformed bytes.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// Thrown when a job/cluster configuration violates a documented constraint
/// (e.g. the FREERIDE-G rule that compute nodes >= data nodes).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

[[noreturn]] inline void assert_failure(const char* expr, const char* file,
                                        int line, const char* msg) {
  // Last words before abort(): the one place a library writes to stderr.
  std::fprintf(stderr, "fgpred internal invariant violated: %s at %s:%d%s%s\n",  // fgplint: allow(console-io)
               expr, file, line, msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace detail

}  // namespace fgp::util

/// Validate a condition that depends on runtime input; throws fgp::util::Error.
#define FGP_CHECK(expr)                                                       \
  do {                                                                        \
    if (!(expr))                                                              \
      ::fgp::util::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// FGP_CHECK with a context message (streamed-in string).
#define FGP_CHECK_MSG(expr, msg)                                              \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream fgp_os_;                                             \
      fgp_os_ << msg;                                                         \
      ::fgp::util::detail::throw_check_failure(#expr, __FILE__, __LINE__,     \
                                               fgp_os_.str());                \
    }                                                                         \
  } while (false)

/// Internal invariant that no caller input can violate; aborts (never
/// throws) because a failure is a bug in fgpred itself. Enabled in every
/// build type — the virtual cluster is cheap enough to check always.
#define FGP_ASSERT(expr)                                                      \
  do {                                                                        \
    if (!(expr))                                                              \
      ::fgp::util::detail::assert_failure(#expr, __FILE__, __LINE__, "");     \
  } while (false)

/// FGP_ASSERT with a static context message (plain C string).
#define FGP_ASSERT_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr))                                                              \
      ::fgp::util::detail::assert_failure(#expr, __FILE__, __LINE__, msg);    \
  } while (false)
