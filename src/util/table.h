// table.h — column-aligned text tables. Every bench binary prints the
// corresponding paper figure as one of these tables, so the formatting
// lives in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fgp::util {

/// Collects rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must match the header's column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string fmt(double v, int precision = 3);
  /// Formats a fraction (0.0123) as a percentage string ("1.23%").
  static std::string pct(double fraction, int precision = 2);

  void print(std::ostream& os) const;
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fgp::util
