// wallclock.h — the single sanctioned wall-clock access point in fgpred.
//
// Determinism invariant: everything outside util/ charges *virtual* time
// through the phase engine (sim::MachineSpec and friends); real wall-clock
// readings are only legitimate where the point is to measure the host
// machine itself (least-squares calibration, benchmark harnesses). Those
// callers go through this stopwatch so that tools/fgplint can mechanically
// forbid every direct std::chrono clock use outside src/util/.
#pragma once

#include <chrono>

namespace fgp::util {

/// Monotonic stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fgp::util
