// serial.h — byte-oriented serialization used for reduction objects and
// chunk payloads. Reduction-object sizes feed directly into the prediction
// model's T_ro = w*r + l term, so the writer tracks exact byte counts.
//
// Format: little-endian fixed-width scalars, length-prefixed containers.
// (All supported hosts are little-endian; a static_assert guards this.)
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.h"

namespace fgp::util {

static_assert(std::endian::native == std::endian::little,
              "fgpred serialization assumes a little-endian host");

/// Appends scalars/containers to a growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_u32(std::uint32_t v) { put(v); }
  void put_u64(std::uint64_t v) { put(v); }
  void put_i64(std::int64_t v) { put(v); }
  void put_f64(double v) { put(v); }

  void put_string(const std::string& s) {
    put_u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put_u64(v.size());
    if (!v.empty()) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
      buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
    }
  }

  void put_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Bytes written so far — this is the reduction-object size "r".
  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

  /// Drops the contents but keeps the capacity, so one writer can be
  /// reused across many serialize calls without reallocating.
  void clear() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads scalars/containers back; throws SerializationError on truncation.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    require(sizeof(T));
    T out;
    std::memcpy(&out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return out;
  }

  std::uint32_t get_u32() { return get<std::uint32_t>(); }
  std::uint64_t get_u64() { return get<std::uint64_t>(); }
  std::int64_t get_i64() { return get<std::int64_t>(); }
  double get_f64() { return get<double>(); }

  std::string get_string() {
    const std::uint64_t n = get_u64();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const std::uint64_t n = get_u64();
    require_count(n, sizeof(T));
    std::vector<T> v(n);
    if (n) std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  /// Reads a container count and validates it against the bytes left:
  /// each element occupies at least `min_elem_bytes` on the wire, so any
  /// larger count is hostile. Deserializers must use this (not get_u64)
  /// before count-driven allocation, so a corrupted length prefix throws
  /// SerializationError instead of reaching the allocator.
  std::uint64_t get_count(std::size_t min_elem_bytes = 1) {
    const std::uint64_t n = get_u64();
    require_count(n, min_elem_bytes);
    return n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  void require(std::size_t n) const {
    if (size_ - pos_ < n)
      throw SerializationError("truncated buffer: need " + std::to_string(n) +
                               " bytes, have " + std::to_string(size_ - pos_));
  }
  void require_count(std::uint64_t count, std::size_t elem) const {
    if (elem != 0 && count > (size_ - pos_) / elem)
      throw SerializationError("truncated buffer: vector of " +
                               std::to_string(count) + " elements overruns");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// FNV-1a checksum over a byte range; used by the chunk format to detect
/// corrupted payloads (failure-injection tests rely on this).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n);

}  // namespace fgp::util
