#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fgp::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

double Accumulator::mean() const {
  FGP_CHECK(n_ > 0);
  return sum_ / static_cast<double>(n_);
}

double Accumulator::min() const {
  FGP_CHECK(n_ > 0);
  return min_;
}

double Accumulator::max() const {
  FGP_CHECK(n_ > 0);
  return max_;
}

double Accumulator::stdev() const {
  FGP_CHECK(n_ > 0);
  const double m = mean();
  const double var = sum_sq_ / static_cast<double>(n_) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double mean(std::span<const double> xs) {
  Accumulator a;
  for (double x : xs) a.add(x);
  return a.mean();
}

double stdev(std::span<const double> xs) {
  Accumulator a;
  for (double x : xs) a.add(x);
  return a.stdev();
}

double max_value(std::span<const double> xs) {
  Accumulator a;
  for (double x : xs) a.add(x);
  return a.max();
}

double relative_error(double exact, double predicted) {
  FGP_CHECK_MSG(exact > 0.0, "relative_error requires exact > 0");
  return std::abs(exact - predicted) / exact;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  FGP_CHECK(xs.size() == ys.size());
  FGP_CHECK_MSG(xs.size() >= 2, "fit_line needs at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (std::abs(denom) < 1e-12) {
    // Degenerate (all x equal): horizontal line through the mean.
    fit.slope = 0.0;
    fit.intercept = sy / n;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  return fit;
}

}  // namespace fgp::util
