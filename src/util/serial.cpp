#include "util/serial.h"

namespace fgp::util {

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace fgp::util
