// catalog.h — a minimal grid information service.
//
// The paper assumes "a standard grid service can identify such potential
// resources": r replica sites holding the dataset and c candidate compute
// configurations. This catalog is that service for the virtual grid: it
// registers compute sites, repository sites, dataset replicas, and the WAN
// links between site pairs, and enumerates the (replica, configuration)
// pairs the resource-selection framework must cost out.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/network.h"

namespace fgp::grid {

using SiteId = std::string;

/// A cluster offering computation.
struct ComputeSite {
  SiteId id;
  sim::ClusterSpec cluster;
  int available_nodes = 0;
};

/// A cluster hosting datasets (data repository).
struct RepositorySite {
  SiteId id;
  sim::ClusterSpec cluster;
  int available_nodes = 0;
};

/// One replica of a dataset: which repository hosts it and across how many
/// storage nodes the chunks are declustered.
struct Replica {
  std::string dataset;
  SiteId repository;
  int storage_nodes = 0;
};

/// A candidate resource mapping to be costed by the prediction framework.
struct Candidate {
  Replica replica;
  SiteId compute_site;
  int compute_nodes = 0;
  sim::WanSpec wan;  ///< link between the replica's repository and the site
};

class GridCatalog {
 public:
  void register_compute_site(ComputeSite site);
  void register_repository_site(RepositorySite site);
  void register_replica(Replica replica);
  /// Declares the WAN between a repository site and a compute site.
  void register_link(const SiteId& repository, const SiteId& compute,
                     sim::WanSpec wan);

  const ComputeSite& compute_site(const SiteId& id) const;
  const RepositorySite& repository_site(const SiteId& id) const;
  std::vector<Replica> replicas_of(const std::string& dataset) const;
  sim::WanSpec link(const SiteId& repository, const SiteId& compute) const;

  /// Enumerates every (replica, compute site, node count) combination that
  /// satisfies the FREERIDE-G constraint compute_nodes >= storage_nodes.
  /// Node counts sweep powers of two up to the site's availability.
  std::vector<Candidate> enumerate_candidates(const std::string& dataset) const;

  std::size_t compute_site_count() const { return compute_sites_.size(); }
  std::size_t repository_site_count() const { return repository_sites_.size(); }

 private:
  std::vector<ComputeSite> compute_sites_;
  std::vector<RepositorySite> repository_sites_;
  std::vector<Replica> replicas_;
  struct Link {
    SiteId repository;
    SiteId compute;
    sim::WanSpec wan;
  };
  std::vector<Link> links_;
};

}  // namespace fgp::grid
