#include "grid/bandwidth.h"

#include "util/check.h"

namespace fgp::grid {

BandwidthEstimator::BandwidthEstimator(double alpha) : alpha_(alpha) {
  FGP_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
}

void BandwidthEstimator::observe(const TransferObservation& obs) {
  FGP_CHECK_MSG(obs.bytes > 0.0 && obs.duration_s > 0.0,
                "transfer must have positive bytes and duration");
  FGP_CHECK_MSG(obs.timestamp_s >= last_timestamp_,
                "observations must be time-ordered");
  const double throughput = obs.bytes / obs.duration_s;
  ewma_ = count_ == 0 ? throughput
                      : alpha_ * throughput + (1.0 - alpha_) * ewma_;
  last_ = throughput;
  sum_ += throughput;
  last_timestamp_ = obs.timestamp_s;
  ++count_;
}

double BandwidthEstimator::estimate_Bps() const {
  FGP_CHECK_MSG(count_ > 0, "no observations yet");
  return ewma_;
}

double BandwidthEstimator::last_Bps() const {
  FGP_CHECK_MSG(count_ > 0, "no observations yet");
  return last_;
}

double BandwidthEstimator::mean_Bps() const {
  FGP_CHECK_MSG(count_ > 0, "no observations yet");
  return sum_ / static_cast<double>(count_);
}

LinkId LinkMonitor::link(const std::string& repository,
                         const std::string& compute) {
  const auto [it, inserted] =
      slots_.try_emplace(key(repository, compute), estimators_.size());
  if (inserted) estimators_.emplace_back(alpha_);
  return LinkId{it->second};
}

const BandwidthEstimator& LinkMonitor::at(LinkId id) const {
  FGP_CHECK_MSG(id.index < estimators_.size(),
                "LinkId " << id.index << " out of range ("
                          << estimators_.size() << " links)");
  return estimators_[id.index];
}

void LinkMonitor::observe(const std::string& repository,
                          const std::string& compute,
                          const TransferObservation& obs) {
  observe(link(repository, compute), obs);
}

void LinkMonitor::observe(LinkId id, const TransferObservation& obs) {
  FGP_CHECK_MSG(id.index < estimators_.size(),
                "LinkId " << id.index << " out of range ("
                          << estimators_.size() << " links)");
  estimators_[id.index].observe(obs);
}

bool LinkMonitor::knows(const std::string& repository,
                        const std::string& compute) const {
  const auto it = slots_.find(key(repository, compute));
  return it != slots_.end() && knows(LinkId{it->second});
}

bool LinkMonitor::knows(LinkId id) const { return at(id).has_estimate(); }

double LinkMonitor::estimate_Bps(const std::string& repository,
                                 const std::string& compute) const {
  const auto it = slots_.find(key(repository, compute));
  FGP_CHECK_MSG(it != slots_.end(),
                "no observations for link " << repository << "->" << compute);
  return estimate_Bps(LinkId{it->second});
}

double LinkMonitor::estimate_Bps(LinkId id) const {
  return at(id).estimate_Bps();
}

}  // namespace fgp::grid
