#include "grid/bandwidth.h"

#include "util/check.h"

namespace fgp::grid {

BandwidthEstimator::BandwidthEstimator(double alpha) : alpha_(alpha) {
  FGP_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
}

void BandwidthEstimator::observe(const TransferObservation& obs) {
  FGP_CHECK_MSG(obs.bytes > 0.0 && obs.duration_s > 0.0,
                "transfer must have positive bytes and duration");
  FGP_CHECK_MSG(obs.timestamp_s >= last_timestamp_,
                "observations must be time-ordered");
  const double throughput = obs.bytes / obs.duration_s;
  ewma_ = count_ == 0 ? throughput
                      : alpha_ * throughput + (1.0 - alpha_) * ewma_;
  last_ = throughput;
  sum_ += throughput;
  last_timestamp_ = obs.timestamp_s;
  ++count_;
}

double BandwidthEstimator::estimate_Bps() const {
  FGP_CHECK_MSG(count_ > 0, "no observations yet");
  return ewma_;
}

double BandwidthEstimator::last_Bps() const {
  FGP_CHECK_MSG(count_ > 0, "no observations yet");
  return last_;
}

double BandwidthEstimator::mean_Bps() const {
  FGP_CHECK_MSG(count_ > 0, "no observations yet");
  return sum_ / static_cast<double>(count_);
}

void LinkMonitor::observe(const std::string& repository,
                          const std::string& compute,
                          const TransferObservation& obs) {
  auto [it, inserted] =
      links_.try_emplace(key(repository, compute), alpha_);
  it->second.observe(obs);
}

bool LinkMonitor::knows(const std::string& repository,
                        const std::string& compute) const {
  return links_.count(key(repository, compute)) > 0;
}

double LinkMonitor::estimate_Bps(const std::string& repository,
                                 const std::string& compute) const {
  const auto it = links_.find(key(repository, compute));
  FGP_CHECK_MSG(it != links_.end(),
                "no observations for link " << repository << "->" << compute);
  return it->second.estimate_Bps();
}

}  // namespace fgp::grid
