// bandwidth.h — estimating the effective repository->compute bandwidth.
//
// The prediction model needs b̂, the bandwidth the data-movement task will
// actually see. The paper points at wide-area transfer-prediction work
// (Vazhkudai & Schopf; Dinda; Qiao et al.) and says "we can directly use
// this work to determine b̂". This estimator is that plug-in point: it
// watches completed transfers on a link and produces a smoothed
// throughput estimate, robust to one-off outliers.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace fgp::grid {

/// One completed data movement on a link.
struct TransferObservation {
  double timestamp_s = 0.0;  ///< completion time (monotone per link)
  double bytes = 0.0;
  double duration_s = 0.0;
};

/// Exponentially-weighted throughput estimator for one link.
class BandwidthEstimator {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit BandwidthEstimator(double alpha = 0.3);

  /// Records a finished transfer. Observations must arrive in time order;
  /// zero-duration or zero-byte transfers are rejected.
  void observe(const TransferObservation& obs);

  bool has_estimate() const { return count_ > 0; }
  /// The smoothed estimate b̂ (bytes/s); throws when no data yet.
  double estimate_Bps() const;
  /// Throughput of the most recent transfer.
  double last_Bps() const;
  /// Unsmoothed mean over all history.
  double mean_Bps() const;
  std::size_t observations() const { return count_; }

 private:
  double alpha_;
  double ewma_ = 0.0;
  double last_ = 0.0;
  double sum_ = 0.0;
  double last_timestamp_ = -1.0;
  std::size_t count_ = 0;
};

/// Per-link estimator registry for a grid: keyed by "repo->compute".
class LinkMonitor {
 public:
  explicit LinkMonitor(double alpha = 0.3) : alpha_(alpha) {}

  void observe(const std::string& repository, const std::string& compute,
               const TransferObservation& obs);
  /// True when the link has at least one observation.
  bool knows(const std::string& repository, const std::string& compute) const;
  /// b̂ for the link; throws when unknown.
  double estimate_Bps(const std::string& repository,
                      const std::string& compute) const;

 private:
  static std::string key(const std::string& repository,
                         const std::string& compute) {
    return repository + "->" + compute;
  }
  double alpha_;
  std::map<std::string, BandwidthEstimator> links_;
};

}  // namespace fgp::grid
