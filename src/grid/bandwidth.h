// bandwidth.h — estimating the effective repository->compute bandwidth.
//
// The prediction model needs b̂, the bandwidth the data-movement task will
// actually see. The paper points at wide-area transfer-prediction work
// (Vazhkudai & Schopf; Dinda; Qiao et al.) and says "we can directly use
// this work to determine b̂". This estimator is that plug-in point: it
// watches completed transfers on a link and produces a smoothed
// throughput estimate, robust to one-off outliers.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace fgp::grid {

/// One completed data movement on a link.
struct TransferObservation {
  double timestamp_s = 0.0;  ///< completion time (monotone per link)
  double bytes = 0.0;
  double duration_s = 0.0;
};

/// Exponentially-weighted throughput estimator for one link.
class BandwidthEstimator {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit BandwidthEstimator(double alpha = 0.3);

  /// Records a finished transfer. Observations must arrive in time order;
  /// zero-duration or zero-byte transfers are rejected.
  void observe(const TransferObservation& obs);

  bool has_estimate() const { return count_ > 0; }
  /// The smoothed estimate b̂ (bytes/s); throws when no data yet.
  double estimate_Bps() const;
  /// Throughput of the most recent transfer.
  double last_Bps() const;
  /// Unsmoothed mean over all history.
  double mean_Bps() const;
  std::size_t observations() const { return count_; }

 private:
  double alpha_;
  double ewma_ = 0.0;
  double last_ = 0.0;
  double sum_ = 0.0;
  double last_timestamp_ = -1.0;
  std::size_t count_ = 0;
};

/// Dense handle for one repository->compute link inside a LinkMonitor.
/// Resolve once with LinkMonitor::link(), then observe/read in O(1) —
/// the hot-path alternative to the string-keyed API, whose per-call key
/// materialization plus map walk is measurable when a scheduler probes
/// every link of a 1,000-node grid each tick.
struct LinkId {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};

/// Per-link estimator registry for a grid: keyed by "repo->compute".
/// Estimators live in a dense vector; the name map only resolves keys to
/// slots, so LinkId accessors never touch a string.
class LinkMonitor {
 public:
  explicit LinkMonitor(double alpha = 0.3) : alpha_(alpha) {}

  /// Resolves (creating if absent) the dense id of a link. Ids are stable
  /// for the monitor's lifetime and count up from zero in resolution
  /// order.
  LinkId link(const std::string& repository, const std::string& compute);

  void observe(const std::string& repository, const std::string& compute,
               const TransferObservation& obs);
  void observe(LinkId id, const TransferObservation& obs);
  /// True when the link has at least one observation.
  bool knows(const std::string& repository, const std::string& compute) const;
  bool knows(LinkId id) const;
  /// b̂ for the link; throws when unknown.
  double estimate_Bps(const std::string& repository,
                      const std::string& compute) const;
  double estimate_Bps(LinkId id) const;

  std::size_t link_count() const { return estimators_.size(); }

 private:
  static std::string key(const std::string& repository,
                         const std::string& compute) {
    return repository + "->" + compute;
  }
  const BandwidthEstimator& at(LinkId id) const;
  double alpha_;
  std::map<std::string, std::size_t> slots_;
  std::vector<BandwidthEstimator> estimators_;
};

}  // namespace fgp::grid
