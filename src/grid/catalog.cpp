#include "grid/catalog.h"

#include <algorithm>

#include "util/check.h"

namespace fgp::grid {

void GridCatalog::register_compute_site(ComputeSite site) {
  FGP_CHECK_MSG(!site.id.empty(), "compute site needs an id");
  FGP_CHECK_MSG(site.available_nodes > 0, "compute site needs nodes");
  FGP_CHECK_MSG(std::none_of(compute_sites_.begin(), compute_sites_.end(),
                             [&](const auto& s) { return s.id == site.id; }),
                "duplicate compute site " << site.id);
  compute_sites_.push_back(std::move(site));
}

void GridCatalog::register_repository_site(RepositorySite site) {
  FGP_CHECK_MSG(!site.id.empty(), "repository site needs an id");
  FGP_CHECK_MSG(site.available_nodes > 0, "repository site needs nodes");
  FGP_CHECK_MSG(
      std::none_of(repository_sites_.begin(), repository_sites_.end(),
                   [&](const auto& s) { return s.id == site.id; }),
      "duplicate repository site " << site.id);
  repository_sites_.push_back(std::move(site));
}

void GridCatalog::register_replica(Replica replica) {
  const auto& repo = repository_site(replica.repository);  // validates id
  FGP_CHECK_MSG(replica.storage_nodes > 0 &&
                    replica.storage_nodes <= repo.available_nodes,
                "replica of " << replica.dataset << " wants "
                              << replica.storage_nodes << " nodes, site "
                              << repo.id << " has " << repo.available_nodes);
  replicas_.push_back(std::move(replica));
}

void GridCatalog::register_link(const SiteId& repository, const SiteId& compute,
                                sim::WanSpec wan) {
  repository_site(repository);  // validate
  compute_site(compute);
  links_.push_back({repository, compute, wan});
}

const ComputeSite& GridCatalog::compute_site(const SiteId& id) const {
  for (const auto& s : compute_sites_)
    if (s.id == id) return s;
  throw util::Error("unknown compute site: " + id);
}

const RepositorySite& GridCatalog::repository_site(const SiteId& id) const {
  for (const auto& s : repository_sites_)
    if (s.id == id) return s;
  throw util::Error("unknown repository site: " + id);
}

std::vector<Replica> GridCatalog::replicas_of(const std::string& dataset) const {
  std::vector<Replica> out;
  for (const auto& r : replicas_)
    if (r.dataset == dataset) out.push_back(r);
  return out;
}

sim::WanSpec GridCatalog::link(const SiteId& repository,
                               const SiteId& compute) const {
  for (const auto& l : links_)
    if (l.repository == repository && l.compute == compute) return l.wan;
  throw util::Error("no registered link " + repository + " -> " + compute);
}

std::vector<Candidate> GridCatalog::enumerate_candidates(
    const std::string& dataset) const {
  std::vector<Candidate> out;
  for (const auto& replica : replicas_of(dataset)) {
    for (const auto& site : compute_sites_) {
      sim::WanSpec wan;
      try {
        wan = link(replica.repository, site.id);
      } catch (const util::Error&) {
        continue;  // unreachable pair
      }
      for (int c = 1; c <= site.available_nodes; c *= 2) {
        if (c < replica.storage_nodes) continue;  // FREERIDE-G: M >= N
        out.push_back({replica, site.id, c, wan});
      }
    }
  }
  return out;
}

}  // namespace fgp::grid
