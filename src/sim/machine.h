// machine.h — the virtual-cluster substrate's machine model.
//
// The paper ran on two physical clusters (700 MHz Pentium III / Myrinet and
// 2.4 GHz Opteron / InfiniBand). We replace physical time with virtual time
// charged against explicit machine parameters. Application kernels report
// the *actual* work they performed (floating-point operations and bytes
// touched); machines convert work into seconds. Two-dimensional work is
// essential for the heterogeneous-cluster experiments (paper §3.4): apps
// with different flop:byte mixes scale differently across machine types,
// which is exactly why the paper's averaged scaling factor s_c carries
// error (observed per-app factors ranged 0.233–0.370).
#pragma once

#include <cstdint>
#include <string>

namespace fgp::sim {

/// Work actually performed by a kernel: floating-point operations plus
/// bytes moved through the memory system. Addable; scalable.
struct Work {
  double flops = 0.0;
  double bytes = 0.0;

  Work& operator+=(const Work& o) {
    flops += o.flops;
    bytes += o.bytes;
    return *this;
  }
  friend Work operator+(Work a, const Work& b) { return a += b; }
  friend Work operator*(double k, Work w) {
    return Work{w.flops * k, w.bytes * k};
  }
};

/// Disk subsystem of one node. `seek_s` is charged once per chunk access;
/// `startup_s` once per retrieval phase — these are the non-idealities that
/// keep retrieval from scaling perfectly linearly (the prediction model
/// assumes linearity, so they are a real source of modeled error).
struct DiskSpec {
  double bandwidth_Bps = 50e6;  ///< sustained sequential bandwidth, bytes/s
  int disks = 1;                ///< disks per node (bandwidth multiplies)
  double seek_s = 0.005;        ///< per-chunk positioning cost
  double startup_s = 0.01;      ///< per-phase fixed cost

  double effective_bandwidth() const { return bandwidth_Bps * disks; }
  /// Time to read (or write) `chunks` chunks totalling `bytes` bytes.
  double access_time(double bytes, std::uint64_t chunks) const;

  /// Throws util::ConfigError on non-finite, negative or zero rates (and
  /// non-finite/negative fixed costs): a NaN bandwidth poisons every
  /// virtual-time charge downstream, so specs are rejected at the door.
  void validate() const;
};

/// Network interface of one node.
struct NicSpec {
  double bandwidth_Bps = 100e6;  ///< link bandwidth, bytes/s
  double latency_s = 50e-6;      ///< per-message latency

  /// Throws util::ConfigError on non-finite/negative/zero bandwidth or a
  /// non-finite/negative latency.
  void validate() const;
};

/// A machine type. All nodes of a cluster share one spec (homogeneous
/// clusters, as in the paper; heterogeneity is *between* clusters).
struct MachineSpec {
  std::string name = "generic";
  double cpu_flops = 1e9;  ///< floating-point throughput per core, flop/s
  double mem_Bps = 1e9;    ///< memory-system throughput, bytes/s
  int cores = 1;           ///< processors per node (SMP width)
  DiskSpec disk;
  NicSpec nic;

  /// Virtual seconds to execute `w` on one node (roofline-style additive
  /// model: compute time plus memory time).
  double compute_time(const Work& w) const;

  /// Throws util::ConfigError unless every rate is finite and positive,
  /// every fixed cost finite and non-negative, and every count >= 1.
  /// Validates the nested disk and nic specs too.
  void validate() const;
};

namespace detail {
/// Shared numeric-field guards for the spec validators. `what` names the
/// field in the ConfigError message (e.g. "MachineSpec.cpu_flops").
void require_rate(double v, const char* what);     ///< finite and > 0
void require_nonneg(double v, const char* what);   ///< finite and >= 0
void require_count(int v, const char* what);       ///< >= 1
}  // namespace detail

/// Reference machine of the paper's base cluster: 700 MHz Pentium III,
/// Myrinet LANai 7.0.
MachineSpec pentium700();

/// Reference machine of the paper's second cluster: dual 2.4 GHz
/// Opteron 250, Mellanox InfiniBand (1 Gb).
MachineSpec opteron250();

}  // namespace fgp::sim
