#include "sim/machine.h"

#include <cmath>

#include "util/check.h"

namespace fgp::sim {

namespace detail {

void require_rate(double v, const char* what) {
  if (!std::isfinite(v) || v <= 0.0)
    throw util::ConfigError(std::string(what) +
                            " must be a finite positive rate, got " +
                            std::to_string(v));
}

void require_nonneg(double v, const char* what) {
  if (!std::isfinite(v) || v < 0.0)
    throw util::ConfigError(std::string(what) +
                            " must be finite and non-negative, got " +
                            std::to_string(v));
}

void require_count(int v, const char* what) {
  if (v < 1)
    throw util::ConfigError(std::string(what) + " must be >= 1, got " +
                            std::to_string(v));
}

}  // namespace detail

void DiskSpec::validate() const {
  detail::require_rate(bandwidth_Bps, "DiskSpec.bandwidth_Bps");
  detail::require_count(disks, "DiskSpec.disks");
  detail::require_nonneg(seek_s, "DiskSpec.seek_s");
  detail::require_nonneg(startup_s, "DiskSpec.startup_s");
}

void NicSpec::validate() const {
  detail::require_rate(bandwidth_Bps, "NicSpec.bandwidth_Bps");
  detail::require_nonneg(latency_s, "NicSpec.latency_s");
}

void MachineSpec::validate() const {
  detail::require_rate(cpu_flops, "MachineSpec.cpu_flops");
  detail::require_rate(mem_Bps, "MachineSpec.mem_Bps");
  detail::require_count(cores, "MachineSpec.cores");
  disk.validate();
  nic.validate();
}

double DiskSpec::access_time(double bytes, std::uint64_t chunks) const {
  FGP_CHECK(bytes >= 0.0);
  const double bw = effective_bandwidth();
  FGP_CHECK_MSG(bw > 0.0, "disk bandwidth must be positive");
  return startup_s + static_cast<double>(chunks) * seek_s + bytes / bw;
}

double MachineSpec::compute_time(const Work& w) const {
  FGP_CHECK_MSG(cpu_flops > 0.0 && mem_Bps > 0.0,
                "machine rates must be positive");
  return w.flops / cpu_flops + w.bytes / mem_Bps;
}

MachineSpec pentium700() {
  MachineSpec m;
  m.name = "pentium700-myrinet";
  m.cpu_flops = 0.7e9;   // 700 MHz, ~1 flop/cycle sustained
  m.mem_Bps = 0.8e9;     // PC100/133-era memory system
  m.disk.bandwidth_Bps = 50e6;
  m.disk.disks = 1;
  m.disk.seek_s = 0.002;
  m.disk.startup_s = 0.01;
  m.nic.bandwidth_Bps = 160e6;  // Myrinet LANai 7.0 (~1.28 Gb/s)
  m.nic.latency_s = 20e-6;
  return m;
}

MachineSpec opteron250() {
  MachineSpec m;
  m.name = "opteron250-infiniband";
  m.cpu_flops = 2.4e9;  // 2.4 GHz per core
  m.cores = 2;          // dual-processor nodes, per the paper
  m.mem_Bps = 3.0e9;
  m.disk.bandwidth_Bps = 100e6;
  m.disk.disks = 1;
  m.disk.seek_s = 0.0015;
  m.disk.startup_s = 0.008;
  m.nic.bandwidth_Bps = 125e6;  // 1 Gb InfiniBand, per the paper
  m.nic.latency_s = 5e-6;
  return m;
}

}  // namespace fgp::sim
