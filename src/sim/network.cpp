#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "sim/machine.h"
#include "util/check.h"

namespace fgp::sim {

void WanSpec::validate() const {
  detail::require_rate(per_link_Bps, "WanSpec.per_link_Bps");
  detail::require_rate(aggregate_cap_Bps, "WanSpec.aggregate_cap_Bps");
  detail::require_nonneg(latency_s, "WanSpec.latency_s");
  if (!std::isfinite(protocol_overhead) || protocol_overhead < 0.0 ||
      protocol_overhead >= 1.0)
    throw util::ConfigError(
        "WanSpec.protocol_overhead must be in [0, 1), got " +
        std::to_string(protocol_overhead));
}

double WanSpec::per_sender_bandwidth(int senders, double sender_nic_Bps) const {
  FGP_CHECK_MSG(senders > 0, "need at least one sender");
  FGP_CHECK(per_link_Bps > 0.0 && sender_nic_Bps > 0.0);
  const double fair_share = aggregate_cap_Bps / static_cast<double>(senders);
  const double raw = std::min({per_link_Bps, fair_share, sender_nic_Bps});
  return raw * (1.0 - protocol_overhead);
}

double WanSpec::transfer_time(double bytes, std::uint64_t messages, int senders,
                              double sender_nic_Bps) const {
  FGP_CHECK(bytes >= 0.0);
  const double bw = per_sender_bandwidth(senders, sender_nic_Bps);
  return static_cast<double>(messages) * latency_s + bytes / bw;
}

double metered_transfer_time(const WanSpec& wan, obs::Registry* metrics,
                             std::string_view pipe, double bytes,
                             std::uint64_t messages, int senders,
                             double sender_nic_Bps) {
  const double t = wan.transfer_time(bytes, messages, senders, sender_nic_Bps);
  if (metrics != nullptr) {
    const std::string base = "wan." + std::string(pipe);
    metrics->add(base + ".bytes", bytes);
    metrics->add(base + ".messages", static_cast<double>(messages));
    metrics->add(base + ".transfers", 1.0);
  }
  return t;
}

WanMeter::WanMeter(obs::Registry* metrics, std::string_view pipe)
    : registry_(metrics), base_("wan." + std::string(pipe)) {}

double WanMeter::transfer(const WanSpec& wan, double bytes,
                          std::uint64_t messages, int senders,
                          double sender_nic_Bps) const {
  const double t = wan.transfer_time(bytes, messages, senders, sender_nic_Bps);
  if (registry_ != nullptr) {
    if (!resolved_) {
      bytes_ = obs::Registry::counter(registry_, base_ + ".bytes");
      messages_ = obs::Registry::counter(registry_, base_ + ".messages");
      transfers_ = obs::Registry::counter(registry_, base_ + ".transfers");
      resolved_ = true;
    }
    bytes_.add(bytes);
    messages_.add(static_cast<double>(messages));
    transfers_.add(1.0);
  }
  return t;
}

WanSpec wan_kbps(double kbps) {
  WanSpec w;
  w.per_link_Bps = kbps * 1000.0 / 8.0;
  w.aggregate_cap_Bps = w.per_link_Bps * 12.0;  // shared backbone
  w.latency_s = 5e-3;                           // wide-area scale
  w.protocol_overhead = 0.03;
  return w;
}

WanSpec wan_mbps(double mbps) {
  WanSpec w;
  w.per_link_Bps = mbps * 1e6 / 8.0;
  w.aggregate_cap_Bps = w.per_link_Bps * 12.0;
  w.latency_s = 1e-3;
  w.protocol_overhead = 0.03;
  return w;
}

WanSpec wan_ideal(double mbps) {
  WanSpec w;
  w.per_link_Bps = mbps * 1e6 / 8.0;
  w.aggregate_cap_Bps = 1e18;
  w.latency_s = 0.0;
  w.protocol_overhead = 0.0;
  return w;
}

}  // namespace fgp::sim
