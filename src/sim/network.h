// network.h — the wide-area pipe between the data repository cluster and
// the compute cluster.
//
// The prediction model's "b" is the bandwidth available to each data-server
// node for its data-movement task (what a bandwidth-estimation service such
// as the ones the paper cites [23, 28, 35, 36] would report). Aggregate
// throughput therefore grows with the number of storage nodes — matching
// the model's n/n̂ scaling — until the optional shared backbone capacity
// saturates, which is one of the non-idealities the linear model misses.
// Figures 9 and 10 of the paper vary b synthetically (500 and 250 Kbps).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace fgp::sim {

/// WAN between repository and compute clusters.
struct WanSpec {
  double per_link_Bps = 10e6;  ///< the model's "b": bandwidth per sender
  /// Shared backbone capacity across all concurrent senders. Senders split
  /// it evenly (TCP-fair) when it binds.
  double aggregate_cap_Bps = 1e18;
  double latency_s = 1e-3;  ///< per-message (per-chunk) latency
  /// Fraction of nominal bandwidth lost to framing/protocol; another mild
  /// non-ideality the linear model does not see.
  double protocol_overhead = 0.03;

  /// Effective bandwidth seen by each of `senders` concurrent senders whose
  /// NICs run at `sender_nic_Bps`.
  double per_sender_bandwidth(int senders, double sender_nic_Bps) const;

  /// Time for one sender (among `senders` concurrent ones) to push
  /// `bytes` bytes split over `messages` messages.
  double transfer_time(double bytes, std::uint64_t messages, int senders,
                       double sender_nic_Bps) const;

  /// Throws util::ConfigError on non-finite, negative or zero rates
  /// (per_link_Bps, aggregate_cap_Bps), a non-finite/negative latency, or
  /// a protocol_overhead outside [0, 1) — an overhead of 1 zeroes the
  /// effective bandwidth and every transfer takes forever.
  void validate() const;
};

/// transfer_time plus metric accounting. When `metrics` is non-null, bumps
/// the deterministic counters
///   wan.<pipe>.bytes / wan.<pipe>.messages / wan.<pipe>.transfers
/// (`pipe` names the logical link, e.g. "repo-compute" or "cache-compute").
/// Byte/message counts are integral, so concurrent recording stays exact;
/// with a null registry this is exactly WanSpec::transfer_time.
///
/// Each call materializes three metric names and walks the registry map
/// three times. Fine for a one-off; inside a per-node phase loop use a
/// WanMeter, which resolves the handles once.
double metered_transfer_time(const WanSpec& wan, obs::Registry* metrics,
                             std::string_view pipe, double bytes,
                             std::uint64_t messages, int senders,
                             double sender_nic_Bps);

/// Cached counter handles for one logical WAN pipe — the flat replacement
/// for metered_transfer_time's per-call string building and associative
/// lookups (three concats + three O(log n) map walks per node per phase,
/// which dominates the accounting cost at 1,000+ nodes). Handles resolve
/// on the first transfer(), so a pipe that never moves a byte never
/// creates its metrics, and afterwards every call is a lock plus one
/// accumulation per counter. Records the same counters in the same order
/// with the same values as metered_transfer_time, so metric exports are
/// byte-identical. Not safe to share one meter across threads (the
/// runtime meters from its master thread only).
class WanMeter {
 public:
  /// A disconnected meter: transfer() is exactly WanSpec::transfer_time.
  WanMeter() = default;

  /// Meters wan.<pipe>.{bytes,messages,transfers} on `metrics`.
  /// Null-registry safe (yields a disconnected meter).
  WanMeter(obs::Registry* metrics, std::string_view pipe);

  /// WanSpec::transfer_time plus the three counter bumps.
  double transfer(const WanSpec& wan, double bytes, std::uint64_t messages,
                  int senders, double sender_nic_Bps) const;

 private:
  obs::Registry* registry_ = nullptr;
  std::string base_;
  mutable obs::Registry::Counter bytes_;
  mutable obs::Registry::Counter messages_;
  mutable obs::Registry::Counter transfers_;
  mutable bool resolved_ = false;
};

/// Convenience constructors matching the paper's setups.
WanSpec wan_kbps(double kbps);   ///< e.g. wan_kbps(500), wan_kbps(250)
WanSpec wan_mbps(double mbps);   ///< LAN-class pipe
WanSpec wan_ideal(double mbps);  ///< zero latency/overhead/cap (tests)

}  // namespace fgp::sim
