// network.h — the wide-area pipe between the data repository cluster and
// the compute cluster.
//
// The prediction model's "b" is the bandwidth available to each data-server
// node for its data-movement task (what a bandwidth-estimation service such
// as the ones the paper cites [23, 28, 35, 36] would report). Aggregate
// throughput therefore grows with the number of storage nodes — matching
// the model's n/n̂ scaling — until the optional shared backbone capacity
// saturates, which is one of the non-idealities the linear model misses.
// Figures 9 and 10 of the paper vary b synthetically (500 and 250 Kbps).
#pragma once

#include <cstdint>
#include <string_view>

namespace fgp::obs {
class Registry;
}

namespace fgp::sim {

/// WAN between repository and compute clusters.
struct WanSpec {
  double per_link_Bps = 10e6;  ///< the model's "b": bandwidth per sender
  /// Shared backbone capacity across all concurrent senders. Senders split
  /// it evenly (TCP-fair) when it binds.
  double aggregate_cap_Bps = 1e18;
  double latency_s = 1e-3;  ///< per-message (per-chunk) latency
  /// Fraction of nominal bandwidth lost to framing/protocol; another mild
  /// non-ideality the linear model does not see.
  double protocol_overhead = 0.03;

  /// Effective bandwidth seen by each of `senders` concurrent senders whose
  /// NICs run at `sender_nic_Bps`.
  double per_sender_bandwidth(int senders, double sender_nic_Bps) const;

  /// Time for one sender (among `senders` concurrent ones) to push
  /// `bytes` bytes split over `messages` messages.
  double transfer_time(double bytes, std::uint64_t messages, int senders,
                       double sender_nic_Bps) const;
};

/// transfer_time plus metric accounting. When `metrics` is non-null, bumps
/// the deterministic counters
///   wan.<pipe>.bytes / wan.<pipe>.messages / wan.<pipe>.transfers
/// (`pipe` names the logical link, e.g. "repo-compute" or "cache-compute").
/// Byte/message counts are integral, so concurrent recording stays exact;
/// with a null registry this is exactly WanSpec::transfer_time.
double metered_transfer_time(const WanSpec& wan, obs::Registry* metrics,
                             std::string_view pipe, double bytes,
                             std::uint64_t messages, int senders,
                             double sender_nic_Bps);

/// Convenience constructors matching the paper's setups.
WanSpec wan_kbps(double kbps);   ///< e.g. wan_kbps(500), wan_kbps(250)
WanSpec wan_mbps(double mbps);   ///< LAN-class pipe
WanSpec wan_ideal(double mbps);  ///< zero latency/overhead/cap (tests)

}  // namespace fgp::sim
