// event_engine.h — the deterministic discrete-event simulation core.
//
// The phase-structured engine the repo started from does work proportional
// to nodes × phases per pass, which caps scenario scale at the paper's
// 8×16 grid. This engine replaces the time axis with a virtual-time event
// queue: simulated cost scales with the number of *events* (state
// changes), so a thousand-machine grid where almost nothing changes per
// step costs almost nothing to simulate (bench/sim_perf measures the
// 128→4,096-node ladder).
//
// Determinism contract (DESIGN.md §18): events dispatch in the canonical
// total order (time, sequence, node_id, event_kind). `sequence` is the
// engine-assigned insertion counter and already unique, so the full key is
// a *total* order — replay is bit-identical regardless of host pool size,
// heap layout, or the container used to drain it. Every heap or sort over
// events inside src/sim must name one of the canonical comparators below
// (EventAfter / EventBefore / event_order_less); fgpcheck's `event-order`
// rule enforces this.
//
// Floating-point accumulation order at event boundaries is pinned the same
// way as kernel reductions (§10): any state a handler folds across events
// must be folded in dispatch order, which the total order makes unique.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/network.h"

namespace fgp::obs {
class Registry;
}

namespace fgp::sim {

/// What happened. The numeric values participate in the canonical order's
/// final tie-break, so they are part of the replay contract — append new
/// kinds, never renumber.
enum class EventKind : std::uint8_t {
  ComputeBlockDone = 0,  ///< one chunk block's local reduction finished
  DiskSegmentDone = 1,   ///< a node's retrieval (or cache write) finished
  NicSegmentDone = 2,    ///< an intra-cluster transfer segment finished
  WanAcquire = 3,        ///< a sender joins a shared WAN pipe
  WanSegmentDone = 4,    ///< a sender's current WAN segment drained
  WanRelease = 5,        ///< a sender leaves a shared WAN pipe
  Barrier = 6,           ///< synchronization point (pass/phase boundary)
};

const char* to_string(EventKind kind);

/// One scheduled occurrence. `payload` is caller-owned (the runtime stores
/// dense node slots, SharedPipe stores transfer-id | epoch).
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  std::int32_t node = -1;
  EventKind kind = EventKind::Barrier;
  std::uint64_t payload = 0;
};

/// The canonical total order: (time, seq, node, kind), ascending. seq is
/// unique per engine, so two distinct events never compare equal.
bool event_order_less(const Event& a, const Event& b);

/// Canonical comparator making containers pop the *earliest* event: a
/// max-heap (std::priority_queue, std::push_heap) ordered by EventAfter is
/// a min-queue on the canonical order.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return event_order_less(b, a);
  }
};

/// Canonical ascending comparator for sorts over event vectors.
struct EventBefore {
  bool operator()(const Event& a, const Event& b) const {
    return event_order_less(a, b);
  }
};

/// Binary-heap virtual-time event queue with a monotone clock. Not
/// thread-safe: one engine belongs to one simulation thread (host
/// parallelism lives *underneath* events, in the kernels that really
/// execute — never in the event order).
class EventEngine {
 public:
  EventEngine() = default;

  /// Schedules an event at absolute virtual time `time` (must be finite
  /// and >= now(): virtual time never runs backwards). Returns the
  /// assigned sequence number.
  std::uint64_t schedule(double time, int node, EventKind kind,
                         std::uint64_t payload = 0);

  /// schedule(now() + delay, ...) with a non-negative finite delay.
  std::uint64_t schedule_after(double delay, int node, EventKind kind,
                               std::uint64_t payload = 0);

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// The earliest pending event (canonical order). Engine must not be
  /// empty.
  const Event& peek() const;

  /// Dispatches the earliest pending event: removes it from the queue and
  /// advances the virtual clock to its time.
  Event pop();

  /// Current virtual time: the time of the last dispatched event (0 before
  /// the first pop, or whatever reset() installed).
  double now() const { return now_; }

  /// Rewinds the clock for a fresh scenario (queue must be drained).
  /// Sequence numbers keep counting — they are unique per engine lifetime.
  void reset(double time = 0.0);

  std::uint64_t events_scheduled() const { return scheduled_; }
  std::uint64_t events_dispatched() const { return dispatched_; }
  std::size_t heap_peak() const { return heap_peak_; }

  /// Writes the engine counters into `metrics` (host domain, so the
  /// deterministic export stays byte-identical with the engine attached):
  /// engine.events_scheduled / engine.events_dispatched / engine.heap_peak.
  /// Null-safe no-op.
  void flush_counters(obs::Registry* metrics) const;

 private:
  std::vector<Event> heap_;  ///< binary max-heap under EventAfter
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t heap_peak_ = 0;
};

/// A shared WAN pipe with cross-transfer contention: concurrent senders
/// split the pipe fairly, and the fair share is recomputed ONLY at event
/// boundaries (a WanAcquire or WanRelease dispatch), never mid-flight —
/// bandwidth is piecewise constant between events, which keeps the model
/// deterministic and the simulation cost proportional to sender churn.
///
/// Each sender's share is min(per_link, aggregate_cap / active, its NIC)
/// × (1 − protocol_overhead) — WanSpec::per_sender_bandwidth evaluated at
/// the current sender count. Per-message latency is a head term consumed
/// before bytes start flowing, so a recompute mid-latency rescales only
/// the byte part. In-flight completions are rescheduled lazily: a
/// rescheduled WanSegmentDone carries a new epoch and the stale event is
/// ignored on dispatch (classic lazy heap invalidation — O(log n) per
/// recompute instead of a heap rebuild).
///
/// The phase-structured closed form (WanSpec::transfer_time) is the
/// special case where every sender acquires at the same instant and
/// carries the same byte count: no churn happens before the first
/// completion, so every transfer sees one constant rate. The freeride
/// runtime's network phase charges exactly that closed form per segment
/// (model parity with the paper); this class is the *contended* mode for
/// multi-tenant scenario sweeps (bench/sim_perf).
class SharedPipe {
 public:
  /// Validates `spec` (WanSpec::validate).
  SharedPipe(const WanSpec& spec, std::string name);

  /// Registers a transfer of `bytes` bytes over `messages` messages from
  /// `node` (NIC rate `nic_Bps`), acquiring the pipe at virtual time
  /// `start` (>= engine.now()). Returns the transfer id. The pipe only
  /// changes state inside on_event(), so the acquisition itself is an
  /// engine event like any other.
  std::uint64_t begin_transfer(EventEngine& engine, double start, int node,
                               double bytes, std::uint64_t messages,
                               double nic_Bps);

  struct Completion {
    std::uint64_t transfer = 0;
    int node = -1;
    double start_time = 0.0;
    double end_time = 0.0;
    double bytes = 0.0;
  };

  /// Feeds one dispatched event to the pipe. Events the pipe does not own
  /// — foreign payloads, other kinds, stale (re-epoched) segment
  /// completions — are ignored. Returns the finished transfer when `ev`
  /// is one of this pipe's WanRelease events.
  std::optional<Completion> on_event(EventEngine& engine, const Event& ev);

  int active_transfers() const { return static_cast<int>(active_.size()); }
  std::size_t total_transfers() const { return flows_.size(); }
  std::uint64_t fair_share_recomputes() const { return recomputes_; }
  const std::string& name() const { return name_; }
  const WanSpec& spec() const { return spec_; }

 private:
  struct Flow {
    int node = -1;
    double nic_Bps = 0.0;
    double bytes_total = 0.0;
    double remaining_bytes = 0.0;
    double latency_left_s = 0.0;
    double rate_Bps = 0.0;
    double last_update = 0.0;
    double start_time = 0.0;
    std::uint32_t epoch = 0;
    bool active = false;
    bool done = false;
  };

  static std::uint64_t pack(std::uint64_t id, std::uint32_t epoch);
  bool owns(std::uint64_t payload, std::uint64_t* id,
            std::uint32_t* epoch) const;
  void recompute_shares(EventEngine& engine);

  WanSpec spec_;
  std::string name_;
  std::uint64_t tag_;  ///< distinguishes this pipe's payloads from others'
  std::vector<Flow> flows_;           ///< dense, indexed by transfer id
  std::vector<std::uint64_t> active_;  ///< in-flight ids, ascending
  std::uint64_t recomputes_ = 0;
};

}  // namespace fgp::sim
