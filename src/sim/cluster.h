// cluster.h — a homogeneous cluster of virtual machines plus the shared
// resources (storage backplane, intra-cluster interconnect) that create
// the sub-linear scaling behaviours the prediction model has to cope with.
#pragma once

#include <string>

#include "sim/machine.h"

namespace fgp::sim {

/// Intra-cluster interconnect parameters used for reduction-object
/// communication (the paper's T_ro = w*r + l term). These are the ground
/// truth the prediction framework's IPC probe has to recover.
struct InterconnectSpec {
  double bandwidth_Bps = 100e6;  ///< point-to-point bandwidth
  double latency_s = 50e-6;      ///< per-message latency (the "l")

  /// Time to move one `bytes`-sized message between two nodes.
  double message_time(double bytes) const {
    return latency_s + bytes / bandwidth_Bps;
  }

  /// Throws util::ConfigError on a non-finite/negative/zero bandwidth or
  /// non-finite/negative latency.
  void validate() const;
};

/// A cluster: N identical machines, an interconnect, and an aggregate
/// storage-backplane capacity. The aggregate cap models shared RAID /
/// SAN hardware: total retrieval throughput cannot exceed it no matter how
/// many data-server nodes participate. The paper observed exactly this
/// (molecular defect detection "scales linearly when number of data nodes
/// is 2 or 4, but only demonstrates a sub-linear speedup" beyond that).
struct ClusterSpec {
  std::string name = "cluster";
  MachineSpec machine;
  InterconnectSpec interconnect;
  int max_nodes = 64;
  /// Aggregate storage throughput across all nodes, bytes/s.
  double storage_backplane_Bps = 120e6;

  /// Per-node effective disk bandwidth when `active_nodes` nodes retrieve
  /// concurrently: individual disks, capped by the shared backplane.
  double per_node_retrieval_Bps(int active_nodes) const;

  /// True when every non-ideality is zeroed (used by model-exactness tests).
  bool is_ideal() const;

  /// Throws util::ConfigError when the machine, interconnect, backplane
  /// rate or node count is invalid (see MachineSpec::validate).
  void validate() const;
};

/// The paper's base cluster: 700 MHz Pentium machines on Myrinet.
ClusterSpec cluster_pentium_myrinet(int max_nodes = 32);

/// The paper's second cluster: 2.4 GHz Opteron 250 on InfiniBand.
ClusterSpec cluster_opteron_infiniband(int max_nodes = 32);

/// A frictionless cluster: no seeks, no latency, infinite backplane.
/// Under this spec plus an ideal WAN, the paper's global-reduction
/// predictor must be *exact* — a key property test.
ClusterSpec cluster_ideal(int max_nodes = 64);

}  // namespace fgp::sim
