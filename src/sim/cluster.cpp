#include "sim/cluster.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace fgp::sim {

double ClusterSpec::per_node_retrieval_Bps(int active_nodes) const {
  FGP_CHECK_MSG(active_nodes > 0, "need at least one active node");
  const double own = machine.disk.effective_bandwidth();
  const double share = storage_backplane_Bps / static_cast<double>(active_nodes);
  return std::min(own, share);
}

void InterconnectSpec::validate() const {
  detail::require_rate(bandwidth_Bps, "InterconnectSpec.bandwidth_Bps");
  detail::require_nonneg(latency_s, "InterconnectSpec.latency_s");
}

void ClusterSpec::validate() const {
  machine.validate();
  interconnect.validate();
  detail::require_rate(storage_backplane_Bps,
                       "ClusterSpec.storage_backplane_Bps");
  detail::require_count(max_nodes, "ClusterSpec.max_nodes");
}

bool ClusterSpec::is_ideal() const {
  return machine.disk.seek_s == 0.0 && machine.disk.startup_s == 0.0 &&
         machine.nic.latency_s == 0.0 && interconnect.latency_s == 0.0 &&
         storage_backplane_Bps >= std::numeric_limits<double>::max() / 2;
}

ClusterSpec cluster_pentium_myrinet(int max_nodes) {
  ClusterSpec c;
  c.name = "pentium-myrinet";
  c.machine = pentium700();
  // Reduction-object path through the middleware (serialize, ship, absorb),
  // not raw Myrinet: per-message cost is milliseconds, effective bandwidth
  // well under the wire rate. The IPC probe measures exactly this path.
  c.interconnect.bandwidth_Bps = 100e6;
  c.interconnect.latency_s = 4e-3;
  c.max_nodes = max_nodes;
  c.storage_backplane_Bps = 390e6;  // mild shared-I/O penalty at 8 nodes
  return c;
}

ClusterSpec cluster_opteron_infiniband(int max_nodes) {
  ClusterSpec c;
  c.name = "opteron-infiniband";
  c.machine = opteron250();
  c.interconnect.bandwidth_Bps = 300e6;
  c.interconnect.latency_s = 1e-3;
  c.max_nodes = max_nodes;
  c.storage_backplane_Bps = 780e6;
  return c;
}

ClusterSpec cluster_ideal(int max_nodes) {
  ClusterSpec c;
  c.name = "ideal";
  c.machine.name = "ideal-machine";
  c.machine.cpu_flops = 1e9;
  c.machine.mem_Bps = 1e9;
  c.machine.cores = 64;
  c.machine.disk.bandwidth_Bps = 50e6;
  c.machine.disk.seek_s = 0.0;
  c.machine.disk.startup_s = 0.0;
  c.machine.nic.bandwidth_Bps = 100e6;
  c.machine.nic.latency_s = 0.0;
  c.interconnect.bandwidth_Bps = 100e6;
  c.interconnect.latency_s = 0.0;
  c.max_nodes = max_nodes;
  c.storage_backplane_Bps = std::numeric_limits<double>::max();
  return c;
}

}  // namespace fgp::sim
