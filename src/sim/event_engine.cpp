#include "sim/event_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"

namespace fgp::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::ComputeBlockDone: return "compute-block-done";
    case EventKind::DiskSegmentDone: return "disk-segment-done";
    case EventKind::NicSegmentDone: return "nic-segment-done";
    case EventKind::WanAcquire: return "wan-acquire";
    case EventKind::WanSegmentDone: return "wan-segment-done";
    case EventKind::WanRelease: return "wan-release";
    case EventKind::Barrier: return "barrier";
  }
  return "unknown";
}

bool event_order_less(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.seq != b.seq) return a.seq < b.seq;
  if (a.node != b.node) return a.node < b.node;
  return static_cast<std::uint8_t>(a.kind) < static_cast<std::uint8_t>(b.kind);
}

std::uint64_t EventEngine::schedule(double time, int node, EventKind kind,
                                    std::uint64_t payload) {
  FGP_CHECK_MSG(std::isfinite(time),
                "event time must be finite, got " << time);
  FGP_CHECK_MSG(time >= now_, "virtual time runs forward: event at "
                                  << time << " but clock is at " << now_);
  Event e;
  e.time = time;
  e.seq = next_seq_++;
  e.node = node;
  e.kind = kind;
  e.payload = payload;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  ++scheduled_;
  heap_peak_ = std::max(heap_peak_, heap_.size());
  return e.seq;
}

std::uint64_t EventEngine::schedule_after(double delay, int node,
                                          EventKind kind,
                                          std::uint64_t payload) {
  FGP_CHECK_MSG(std::isfinite(delay) && delay >= 0.0,
                "event delay must be finite and non-negative, got " << delay);
  return schedule(now_ + delay, node, kind, payload);
}

const Event& EventEngine::peek() const {
  FGP_CHECK_MSG(!heap_.empty(), "peek() on an empty event engine");
  return heap_.front();
}

Event EventEngine::pop() {
  FGP_CHECK_MSG(!heap_.empty(), "pop() on an empty event engine");
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  const Event e = heap_.back();
  heap_.pop_back();
  now_ = e.time;
  ++dispatched_;
  return e;
}

void EventEngine::reset(double time) {
  FGP_CHECK_MSG(heap_.empty(), "reset() with " << heap_.size()
                                               << " events still pending");
  FGP_CHECK_MSG(std::isfinite(time), "reset time must be finite");
  now_ = time;
}

void EventEngine::flush_counters(obs::Registry* metrics) const {
  if (metrics == nullptr) return;
  metrics->add("engine.events_scheduled", static_cast<double>(scheduled_),
               obs::Domain::Host);
  metrics->add("engine.events_dispatched", static_cast<double>(dispatched_),
               obs::Domain::Host);
  metrics->set_max("engine.heap_peak", static_cast<double>(heap_peak_),
                   obs::Domain::Host);
}

// --- SharedPipe ----------------------------------------------------------

namespace {

// Per-pipe payload tag so several pipes can share one engine without
// claiming each other's events. Tags never influence event *order* (the
// canonical key ignores payloads), so the process-wide counter cannot
// perturb determinism.
std::uint64_t next_pipe_tag() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed) & 0xFFFF;
}

constexpr std::uint32_t kEpochBits = 16;
constexpr std::uint32_t kEpochMax = (1u << kEpochBits) - 1;

}  // namespace

SharedPipe::SharedPipe(const WanSpec& spec, std::string name)
    : spec_(spec), name_(std::move(name)), tag_(next_pipe_tag()) {
  spec_.validate();
}

std::uint64_t SharedPipe::pack(std::uint64_t id, std::uint32_t epoch) {
  return (id & 0xFFFFFFFFull) | (static_cast<std::uint64_t>(epoch) << 32);
}

bool SharedPipe::owns(std::uint64_t payload, std::uint64_t* id,
                      std::uint32_t* epoch) const {
  if ((payload >> 48) != tag_) return false;
  *id = payload & 0xFFFFFFFFull;
  *epoch = static_cast<std::uint32_t>((payload >> 32) & kEpochMax);
  return *id < flows_.size();
}

std::uint64_t SharedPipe::begin_transfer(EventEngine& engine, double start,
                                         int node, double bytes,
                                         std::uint64_t messages,
                                         double nic_Bps) {
  FGP_CHECK_MSG(std::isfinite(bytes) && bytes >= 0.0,
                "transfer bytes must be finite and non-negative");
  FGP_CHECK_MSG(std::isfinite(nic_Bps) && nic_Bps > 0.0,
                "sender NIC rate must be finite and positive");
  const std::uint64_t id = flows_.size();
  FGP_CHECK_MSG(id < 0xFFFFFFFFull, "transfer id space exhausted");
  Flow f;
  f.node = node;
  f.nic_Bps = nic_Bps;
  f.bytes_total = bytes;
  f.remaining_bytes = bytes;
  f.latency_left_s = static_cast<double>(messages) * spec_.latency_s;
  f.start_time = start;
  flows_.push_back(f);
  engine.schedule(start, node, EventKind::WanAcquire,
                  (tag_ << 48) | pack(id, 0));
  return id;
}

void SharedPipe::recompute_shares(EventEngine& engine) {
  // Fair-share recomputation at an event boundary: advance every active
  // flow to now at its old rate, then install the new rate and reschedule
  // its completion. Flows are visited in ascending id order, so the FP
  // accumulation order is pinned regardless of which event triggered the
  // recompute.
  const double now = engine.now();
  const int senders = static_cast<int>(active_.size());
  ++recomputes_;
  for (const std::uint64_t id : active_) {
    Flow& f = flows_[static_cast<std::size_t>(id)];
    double dt = now - f.last_update;
    if (dt > 0.0) {
      const double lat = std::min(dt, f.latency_left_s);
      f.latency_left_s -= lat;
      dt -= lat;
      if (dt > 0.0 && f.rate_Bps > 0.0)
        f.remaining_bytes =
            std::max(0.0, f.remaining_bytes - f.rate_Bps * dt);
    }
    f.last_update = now;
    f.rate_Bps = spec_.per_sender_bandwidth(senders, f.nic_Bps);
    FGP_CHECK_MSG(f.epoch < kEpochMax,
                  "transfer rescheduled too many times (epoch overflow)");
    ++f.epoch;
    const double done_in = f.latency_left_s + f.remaining_bytes / f.rate_Bps;
    engine.schedule(now + done_in, f.node, EventKind::WanSegmentDone,
                    (tag_ << 48) | pack(id, f.epoch));
  }
}

std::optional<SharedPipe::Completion> SharedPipe::on_event(
    EventEngine& engine, const Event& ev) {
  std::uint64_t id = 0;
  std::uint32_t epoch = 0;
  if (!owns(ev.payload, &id, &epoch)) return std::nullopt;
  Flow& f = flows_[static_cast<std::size_t>(id)];

  switch (ev.kind) {
    case EventKind::WanAcquire: {
      FGP_CHECK_MSG(!f.active && !f.done, "double acquire on one transfer");
      f.active = true;
      f.last_update = engine.now();
      active_.insert(
          std::upper_bound(active_.begin(), active_.end(), id), id);
      recompute_shares(engine);
      return std::nullopt;
    }
    case EventKind::WanSegmentDone: {
      // Stale reschedule (an earlier epoch) or an already-finished flow:
      // lazy invalidation drops it here.
      if (!f.active || f.done || epoch != f.epoch) return std::nullopt;
      engine.schedule(engine.now(), f.node, EventKind::WanRelease,
                      (tag_ << 48) | pack(id, f.epoch));
      return std::nullopt;
    }
    case EventKind::WanRelease: {
      if (f.done || epoch != f.epoch) return std::nullopt;
      f.done = true;
      f.active = false;
      active_.erase(
          std::lower_bound(active_.begin(), active_.end(), id));
      if (!active_.empty()) recompute_shares(engine);
      Completion c;
      c.transfer = id;
      c.node = f.node;
      c.start_time = f.start_time;
      c.end_time = engine.now();
      c.bytes = f.bytes_total;
      return c;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace fgp::sim
