#include "freeride/config.h"

#include "util/check.h"

namespace fgp::freeride {

void JobConfig::validate() const {
  if (data_nodes <= 0)
    throw util::ConfigError("data_nodes must be positive, got " +
                            std::to_string(data_nodes));
  if (compute_nodes <= 0)
    throw util::ConfigError("compute_nodes must be positive, got " +
                            std::to_string(compute_nodes));
  if (compute_nodes < data_nodes)
    throw util::ConfigError(
        "FREERIDE-G requires compute_nodes >= data_nodes (M >= N); got M=" +
        std::to_string(compute_nodes) + ", N=" + std::to_string(data_nodes));
  if (threads_per_node <= 0)
    throw util::ConfigError("threads_per_node must be positive, got " +
                            std::to_string(threads_per_node));
  if (max_passes <= 0)
    throw util::ConfigError("max_passes must be positive");
  if (straggler_count < 0 || straggler_count > compute_nodes)
    throw util::ConfigError("straggler_count must be in [0, compute_nodes]");
  if (straggler_slowdown < 1.0)
    throw util::ConfigError("straggler_slowdown must be >= 1.0");
}

}  // namespace fgp::freeride
