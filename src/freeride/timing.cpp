#include "freeride/timing.h"

namespace fgp::freeride {

TimingBreakdown& TimingBreakdown::operator+=(const TimingBreakdown& o) {
  disk += o.disk;
  network += o.network;
  compute_local += o.compute_local;
  ro_comm += o.ro_comm;
  global_red += o.global_red;
  return *this;
}

}  // namespace fgp::freeride
