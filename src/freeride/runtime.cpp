#include "freeride/runtime.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_engine.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace fgp::freeride {

namespace {

using repository::PartitionMap;

/// Per-data-node virtual byte and chunk-count totals for one partition.
struct NodeVolume {
  double virtual_bytes = 0.0;
  std::uint64_t chunks = 0;
};

/// Chunks per reduction block in the two-level local reduction. A pure
/// constant: the block partition of a node's chunk list depends only on the
/// list itself, never on the host pool size, so every pool size (including
/// the serial runtime) reduces and merges in exactly the same order
/// (DESIGN.md §11).
constexpr std::size_t kChunksPerBlock = 4;

/// Tracks the prefetch tasks a run has handed to the host pool so the pass
/// that submitted them can wait them out. A prefetch task keeps the
/// streaming source (and with it the window pool) alive via its captured
/// shared_ptr, but the metrics registry that pool records into belongs to
/// the caller and may die with the dataset handle as soon as run()
/// returns — so no task submitted by a run may outlive it. drain() uses
/// wait(), not get(): a failed prefetch stays non-fatal, the synchronous
/// fetch of the same chunk surfaces any real error with context.
struct PrefetchDrain {
  util::ThreadPool* pool = nullptr;  ///< set once run() resolves its pool
  std::mutex mu;
  std::vector<std::future<void>> inflight;

  void add(std::future<void> f) {
    const std::lock_guard<std::mutex> lock(mu);
    inflight.push_back(std::move(f));
  }
  void drain() {
    std::vector<std::future<void>> local;
    {
      const std::lock_guard<std::mutex> lock(mu);
      local.swap(inflight);
    }
    for (auto& f : local) {
      if (!f.valid()) continue;
      // Help-first, never park on queued work: this thread may itself be
      // a pool worker (a sweep runs whole jobs on helpers), and a pool
      // whose every thread parks on its own queue deadlocks. Only when
      // the queue is empty is the task guaranteed running elsewhere (or
      // done), making a plain wait finite.
      while (f.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (pool == nullptr || !pool->try_run_one()) f.wait();
      }
    }
  }
  ~PrefetchDrain() { drain(); }
};

/// Sequences one pass's per-node phase completions through either
/// simulation core (EngineMode). complete() records a `dur`-second
/// completion for `node` whose phase accumulator is *acc:
///
///   PhaseLoop  folds max(*acc, dur) inline, in call order — the
///              pre-engine reference behaviour, byte for byte.
///   Event      schedules the completion on the event engine at
///              now() + dur and defers the fold to drain(), which
///              dispatches the queue in the canonical total order
///              (time, seq, node, kind).
///
/// Both modes fold max over the same duration set, and max over doubles
/// is order-insensitive, so the two cores agree bit-for-bit on every
/// accumulator — the engine-swap contract (DESIGN.md §18).
class PhaseDriver {
 public:
  explicit PhaseDriver(sim::EventEngine* engine) : engine_(engine) {}

  void complete(int node, sim::EventKind kind, double dur, double* acc) {
    if (engine_ == nullptr) {
      *acc = std::max(*acc, dur);
      return;
    }
    engine_->schedule_after(dur, node, kind, pending_.size());
    pending_.push_back({dur, acc});
  }

  /// Dispatches every pending completion (canonical order) and applies
  /// its fold. The virtual clock ends at the phase's finish time.
  void drain() {
    if (engine_ == nullptr) return;
    while (!engine_->empty()) {
      const sim::Event ev = engine_->pop();
      const Pending& p = pending_[static_cast<std::size_t>(ev.payload)];
      *p.acc = std::max(*p.acc, p.dur);
    }
    pending_.clear();
  }

  /// Pass boundary: dispatches a Barrier and realigns the virtual clock
  /// to `time`, the accounting chain's pass cursor (vclock). The chained
  /// per-phase sums the clock accumulated and the additive
  /// TimingBreakdown::total() may disagree in the final ulp (FP
  /// association), so the accounting chain owns the canonical value and
  /// the engine adopts it here — §18's virtual-clock ownership rule.
  void barrier(double time) {
    if (engine_ == nullptr) return;
    engine_->schedule(std::max(time, engine_->now()), obs::kJobNode,
                      sim::EventKind::Barrier);
    (void)engine_->pop();
    engine_->reset(time);
  }

 private:
  struct Pending {
    double dur;
    double* acc;
  };
  sim::EventEngine* engine_;
  std::vector<Pending> pending_;
};

std::vector<NodeVolume> volumes(const repository::ChunkedDataset& ds,
                                const PartitionMap& pm) {
  std::vector<NodeVolume> v(static_cast<std::size_t>(pm.parts()));
  for (int p = 0; p < pm.parts(); ++p) {
    for (std::size_t ci : pm.chunks_of(p)) {
      v[static_cast<std::size_t>(p)].virtual_bytes +=
          ds.chunk(ci).virtual_bytes();
      v[static_cast<std::size_t>(p)].chunks += 1;
    }
  }
  return v;
}

}  // namespace

RunResult Runtime::run(const JobSetup& setup, ReductionKernel& kernel) const {
  FGP_CHECK_MSG(setup.dataset != nullptr, "JobSetup.dataset is null");
  setup.config.validate();
  const auto& ds = *setup.dataset;
  const JobConfig& cfg = setup.config;
  const int n = cfg.data_nodes;
  const int c = cfg.compute_nodes;
  FGP_CHECK_MSG(n <= setup.data_cluster.max_nodes,
                "data cluster " << setup.data_cluster.name << " has only "
                                << setup.data_cluster.max_nodes << " nodes");
  FGP_CHECK_MSG(c <= setup.compute_cluster.max_nodes,
                "compute cluster " << setup.compute_cluster.name
                                   << " has only "
                                   << setup.compute_cluster.max_nodes
                                   << " nodes");

  // Data layout on the repository and destination assignment to compute
  // nodes (the data server's "data distribution" role).
  const PartitionMap data_part = PartitionMap::block(ds.chunk_count(), n);
  const PartitionMap dest_part =
      PartitionMap::round_robin(ds.chunk_count(), c);
  const auto data_vol = volumes(ds, data_part);
  const auto dest_vol = volumes(ds, dest_part);

  const double dataset_scale =
      ds.total_real_bytes() > 0
          ? ds.total_virtual_bytes() / static_cast<double>(ds.total_real_bytes())
          : 1.0;
  const double obj_scale =
      kernel.reduction_object_scales_with_data() ? dataset_scale : 1.0;

  const sim::MachineSpec& data_machine = setup.data_cluster.machine;
  const sim::MachineSpec& compute_machine = setup.compute_cluster.machine;
  const sim::InterconnectSpec& ipc = setup.compute_cluster.interconnect;

  RunResult result;
  CacheSet caches(c, setup.metrics);
  obs::TraceRecorder* const trace = setup.trace;
  obs::Registry* const metrics = setup.metrics;
  const obs::HostSpan run_span(trace, "runtime", "run");

  // Simulation core (EngineMode): the discrete-event engine sequences the
  // pass loop by default; PhaseLoop keeps the pre-engine reference fold.
  std::optional<sim::EventEngine> engine;
  if (setup.engine == EngineMode::Event) engine.emplace();
  PhaseDriver phases(engine ? &*engine : nullptr);

  // WAN counter handles, resolved on first use (one map walk per pipe per
  // run instead of three per node per phase).
  const sim::WanMeter repo_pipe(metrics, "repo-compute");
  const sim::WanMeter cache_pipe(metrics, "cache-compute");
  const sim::WanMeter forward_pipe(metrics, "compute-cache");
  // Virtual-time cursor for the trace: passes (and phases within a pass)
  // are laid out additively, matching TimingBreakdown::total(). With
  // overlap_phases the *elapsed* accounting shrinks but the decomposition
  // — which is what the trace visualizes — is unchanged.
  double vclock = 0.0;

  // Streamed datasets pull payloads through this source on demand; the
  // prefetch stage below (two-level reduction) readies the next block's
  // windows while the current block reduces. Null for in-memory datasets.
  const std::shared_ptr<const repository::ChunkSource> streaming_source =
      ds.source();
  // Destroyed (and therefore drained) on every exit path, including a
  // kernel exception unwinding the pass loop.
  PrefetchDrain prefetch_drain;

  // Host thread pool for the local-reduction phase: either borrowed from
  // the caller (shared across concurrent runs) or owned for this run. One
  // pool serves every pass; the work partition never depends on its size,
  // so any pool (or none) yields bit-identical results.
  util::ThreadPool* pool = shared_pool_;
  std::optional<util::ThreadPool> owned_pool;
  if (pool == nullptr && pool_threads_ > 1) {
    owned_pool.emplace(pool_threads_);
    pool = &*owned_pool;
  }
  prefetch_drain.pool = pool;

  // Decide how later passes of a multi-pass job will be served: local disk
  // when the compute nodes can hold their share, otherwise a non-local
  // cache site if the setup names one, otherwise re-retrieval.
  CacheMode cache_mode = CacheMode::None;
  if (cfg.enable_caching) {
    double max_node_share = 0.0;
    for (const auto& v : dest_vol)
      max_node_share = std::max(max_node_share, v.virtual_bytes);
    if (max_node_share <= cfg.local_cache_capacity_bytes) {
      cache_mode = CacheMode::LocalDisk;
    } else if (setup.cache_site && setup.cache_site->nodes > 0) {
      FGP_CHECK_MSG(setup.cache_site->nodes <= setup.cache_site->cluster.max_nodes,
                    "cache site wants more nodes than its cluster has");
      cache_mode = CacheMode::NonLocalSite;
    }
  }
  result.cache_mode = cache_mode;

  // Chunk layout across the non-local cache site's nodes.
  const int cache_nodes =
      cache_mode == CacheMode::NonLocalSite ? setup.cache_site->nodes : 1;
  const PartitionMap cache_part =
      PartitionMap::block(ds.chunk_count(), cache_nodes);
  const auto cache_vol = volumes(ds, cache_part);

  // Per-job scratch reused across passes: the per-node object slots,
  // per-node time/work vectors, SMP thread scratch, and the gather-phase
  // serialization buffer. A multi-pass job otherwise re-allocates all of
  // these every pass.
  std::vector<std::unique_ptr<ReductionObject>> objects;
  objects.reserve(static_cast<std::size_t>(c));
  std::vector<double> node_time(static_cast<std::size_t>(c), 0.0);
  std::vector<sim::Work> node_work(static_cast<std::size_t>(c));
  struct NodeScratch {
    std::vector<std::unique_ptr<ReductionObject>> thread_objects;
    std::vector<double> thread_time;
    // Two-level reduction scratch: private object + virtual-time/work
    // partials for chunk blocks 1..k-1 (block 0 reduces into the node
    // object directly).
    std::vector<std::unique_ptr<ReductionObject>> block_objects;
    std::vector<double> block_time;
    std::vector<sim::Work> block_work;
  };
  std::vector<NodeScratch> scratch(static_cast<std::size_t>(c));
  util::ByteWriter gather;

  bool more_passes = true;
  while (more_passes && result.passes < cfg.max_passes) {
    PassRecord rec;
    const bool cached_pass = cache_mode != CacheMode::None && caches.warm();
    rec.from_cache = cached_pass;

    // --- Phase 1: data retrieval -------------------------------------
    // Every branch records one DiskSegmentDone completion per node with
    // chunks to read; the slowest completion is the phase time.
    if (cached_pass && cache_mode == CacheMode::LocalDisk) {
      // Each compute node reads its chunks back from local disk.
      for (int j = 0; j < c; ++j) {
        const auto& cache = caches.node(j);
        if (cache.chunk_count() == 0) continue;
        phases.complete(j, sim::EventKind::DiskSegmentDone,
                        compute_machine.disk.access_time(
                            cache.virtual_bytes(), cache.chunk_count()),
                        &rec.timing.disk);
      }
    } else if (cached_pass) {
      // The non-local cache site's nodes read their partitions.
      const auto& site = *setup.cache_site;
      const double bw = site.cluster.per_node_retrieval_Bps(cache_nodes);
      for (int d = 0; d < cache_nodes; ++d) {
        const auto& v = cache_vol[static_cast<std::size_t>(d)];
        if (v.chunks == 0) continue;
        phases.complete(d, sim::EventKind::DiskSegmentDone,
                        site.cluster.machine.disk.startup_s +
                            static_cast<double>(v.chunks) *
                                site.cluster.machine.disk.seek_s +
                            v.virtual_bytes / bw,
                        &rec.timing.disk);
      }
    } else {
      // Each data-server node reads its partition; the shared storage
      // backplane caps aggregate throughput.
      const double bw = setup.data_cluster.per_node_retrieval_Bps(n);
      for (int d = 0; d < n; ++d) {
        const auto& v = data_vol[static_cast<std::size_t>(d)];
        if (v.chunks == 0) continue;
        phases.complete(d, sim::EventKind::DiskSegmentDone,
                        data_machine.disk.startup_s +
                            static_cast<double>(v.chunks) *
                                data_machine.disk.seek_s +
                            v.virtual_bytes / bw,
                        &rec.timing.disk);
      }

      if (cfg.verify_chunks && result.passes == 0) {
        // Checksums are independent per chunk, so the sweep fans out over
        // the host pool; parallel_for rethrows the lowest-index failure,
        // keeping the reported chunk deterministic. Streamed chunks are
        // materialized for the check (the fetch itself already throws on
        // corruption) and dropped immediately after.
        const auto verify_chunk = [&ds](std::size_t ci) {
          const repository::Chunk chunk = ds.materialize(ci);
          FGP_CHECK_MSG(chunk.verify(),
                        "chunk " << chunk.id() << " failed checksum");
        };
        if (pool) {
          pool->parallel_for(ds.chunk_count(), verify_chunk);
        } else {
          for (std::size_t ci = 0; ci < ds.chunk_count(); ++ci)
            verify_chunk(ci);
        }
      }
    }
    phases.drain();

    // --- Phase 2: data communication ---------------------------------
    // Per-node transfer segments (NicSegmentDone). Cache population rides
    // along on the first pass: its forward transfers and cache writes fold
    // into cache_tx / cache_tw and are added onto the phase totals once
    // the phase's event set has drained — the same values, in the same
    // order, as the reference fold.
    double cache_tx = 0.0, cache_tw = 0.0;
    if (cached_pass && cache_mode == CacheMode::NonLocalSite) {
      // Cache site -> compute nodes over the cache pipe.
      const auto& site = *setup.cache_site;
      for (int d = 0; d < cache_nodes; ++d) {
        const auto& v = cache_vol[static_cast<std::size_t>(d)];
        if (v.chunks == 0) continue;
        phases.complete(d, sim::EventKind::NicSegmentDone,
                        cache_pipe.transfer(
                            site.wan_to_compute, v.virtual_bytes, v.chunks,
                            cache_nodes,
                            site.cluster.machine.nic.bandwidth_Bps),
                        &rec.timing.network);
      }
    } else if (!cached_pass) {
      for (int d = 0; d < n; ++d) {
        const auto& v = data_vol[static_cast<std::size_t>(d)];
        if (v.chunks == 0) continue;
        phases.complete(d, sim::EventKind::NicSegmentDone,
                        repo_pipe.transfer(setup.wan, v.virtual_bytes,
                                           v.chunks, n,
                                           data_machine.nic.bandwidth_Bps),
                        &rec.timing.network);
      }

      // Populate the cache during the first pass.
      if (cache_mode == CacheMode::LocalDisk && !caches.warm()) {
        for (int j = 0; j < c; ++j) {
          // Chunk views are by-value handles onto the shared payload slabs:
          // the cache ends up holding the actual data without copying it.
          for (std::size_t ci : dest_part.chunks_of(j))
            caches.insert(j, ds.chunk(ci));
          const auto& v = dest_vol[static_cast<std::size_t>(j)];
          if (cfg.charge_cache_write && v.chunks > 0)
            phases.complete(j, sim::EventKind::DiskSegmentDone,
                            compute_machine.disk.access_time(v.virtual_bytes,
                                                             v.chunks),
                            &cache_tw);
        }
        caches.mark_warm();
      } else if (cache_mode == CacheMode::NonLocalSite && !caches.warm()) {
        // Forward the stream to the cache site and write it there.
        const auto& site = *setup.cache_site;
        const double write_bw =
            site.cluster.per_node_retrieval_Bps(cache_nodes);
        for (int d = 0; d < cache_nodes; ++d) {
          const auto& v = cache_vol[static_cast<std::size_t>(d)];
          if (v.chunks == 0) continue;
          phases.complete(d, sim::EventKind::NicSegmentDone,
                          forward_pipe.transfer(
                              site.wan_to_compute, v.virtual_bytes, v.chunks,
                              cache_nodes,
                              compute_machine.nic.bandwidth_Bps),
                          &cache_tx);
          if (cfg.charge_cache_write)
            phases.complete(d, sim::EventKind::DiskSegmentDone,
                            site.cluster.machine.disk.startup_s +
                                static_cast<double>(v.chunks) *
                                    site.cluster.machine.disk.seek_s +
                                v.virtual_bytes / write_bw,
                            &cache_tw);
        }
        caches.mark_warm();
      }
    }
    phases.drain();
    rec.timing.network += cache_tx;
    rec.timing.disk += cache_tw;

    // --- Phase 3a: parallel local reduction --------------------------
    // Each compute node runs `threads` workers (cluster-of-SMPs support).
    // Full replication gives every thread its own reduction object and
    // really merges them; the locking strategies share the node object and
    // pay a modeled per-update contention penalty instead.
    const int threads = cfg.threads_per_node;
    FGP_CHECK_MSG(threads <= compute_machine.cores,
                  "threads_per_node=" << threads << " exceeds "
                                      << compute_machine.name << " cores ("
                                      << compute_machine.cores << ")");
    const double lock_penalty =
        cfg.smp_strategy == SmpStrategy::FullLocking            ? 0.12
        : cfg.smp_strategy == SmpStrategy::CacheSensitiveLocking ? 0.025
                                                                 : 0.0;

    objects.clear();
    for (int j = 0; j < c; ++j) objects.push_back(kernel.create_object());

    // Each node's local reduction writes only its own objects[j] and
    // per-node slots, and process_chunk is const on the kernel, so the
    // host pool may run nodes concurrently. Times and work are reduced in
    // node order afterwards to keep every result bit-identical regardless
    // of pool size.
    const auto reduce_node = [&](std::size_t uj) {
      const int j = static_cast<int>(uj);
      double tj = 0.0;
      sim::Work wj;
      if (threads == 1) {
        // Two-level reduction: the node's chunk list splits into fixed
        // kChunksPerBlock blocks, each block reduces into a private object,
        // and partials fold in ascending block order. The host-side merges
        // are bookkeeping only — they charge no virtual time and no work,
        // exactly as if the node had processed its list serially. Blocks
        // fan out over the (nesting-safe) pool when one is attached.
        const auto& node_chunks = dest_part.chunks_of(j);
        const std::size_t m = node_chunks.size();
        const std::size_t nblocks = (m + kChunksPerBlock - 1) / kChunksPerBlock;
        auto& bs = scratch[uj];
        bs.block_objects.clear();
        for (std::size_t b = 1; b < nblocks; ++b)
          bs.block_objects.push_back(kernel.create_object());
        bs.block_time.assign(nblocks, 0.0);
        bs.block_work.assign(nblocks, sim::Work{});
        const auto reduce_block = [&](std::size_t b) {
          // Host IO/compute overlap for streamed datasets: before this
          // block's kernels start, the *next* block's windows are readied
          // asynchronously on the pool, so its fetches hit resident
          // mappings. Pure wall-clock optimization: prefetch touches only
          // the window pool (plus host-domain counters), the fixed block
          // partition and ascending fold order are untouched, and the
          // task captures the refcounted source, so results stay
          // bit-identical to the non-streamed path at any pool size.
          if (streaming_source != nullptr && pool != nullptr) {
            const std::size_t next_begin = (b + 1) * kChunksPerBlock;
            if (next_begin < m) {
              const std::size_t next_end =
                  std::min(m, next_begin + kChunksPerBlock);
              std::vector<std::size_t> targets(
                  node_chunks.begin() +
                      static_cast<std::ptrdiff_t>(next_begin),
                  node_chunks.begin() + static_cast<std::ptrdiff_t>(next_end));
              prefetch_drain.add(pool->submit(
                  [src = streaming_source, targets = std::move(targets)] {
                    for (const std::size_t ci : targets) src->prefetch(ci);
                  }));
            }
          }
          ReductionObject& obj =
              b == 0 ? *objects[j] : *bs.block_objects[b - 1];
          double tb = 0.0;
          sim::Work wb;
          const std::size_t begin = b * kChunksPerBlock;
          const std::size_t end = std::min(m, begin + kChunksPerBlock);
          for (std::size_t k = begin; k < end; ++k) {
            // By value: a streamed chunk owns its bytes only while this
            // handle lives, so the payload is released as soon as the
            // kernel is done with it (flat resident set).
            const repository::Chunk chunk = ds.materialize(node_chunks[k]);
            const sim::Work w = kernel.process_chunk(chunk, obj);
            const sim::Work scaled = chunk.virtual_scale() * w;
            tb += compute_machine.compute_time(scaled);
            wb += scaled;
          }
          bs.block_time[b] = tb;
          bs.block_work[b] = wb;
        };
        if (pool != nullptr && nblocks > 1) {
          pool->parallel_for(nblocks, reduce_block);
        } else {
          for (std::size_t b = 0; b < nblocks; ++b) reduce_block(b);
        }
        for (std::size_t b = 0; b < nblocks; ++b) {
          tj += bs.block_time[b];
          wj += bs.block_work[b];
          // Host merge of a block partial: free in virtual time.
          if (b > 0) kernel.merge(*objects[j], *bs.block_objects[b - 1]);
        }
      } else if (cfg.smp_strategy == SmpStrategy::FullReplication) {
        // One object per thread; chunks round-robin over threads.
        auto& thread_objects = scratch[uj].thread_objects;
        thread_objects.clear();
        for (int th = 1; th < threads; ++th)
          thread_objects.push_back(kernel.create_object());
        auto& thread_time = scratch[uj].thread_time;
        thread_time.assign(static_cast<std::size_t>(threads), 0.0);
        const auto& node_chunks = dest_part.chunks_of(j);
        for (std::size_t k = 0; k < node_chunks.size(); ++k) {
          const int th = static_cast<int>(k % static_cast<std::size_t>(threads));
          ReductionObject& obj =
              th == 0 ? *objects[j]
                      : *thread_objects[static_cast<std::size_t>(th - 1)];
          const repository::Chunk chunk = ds.materialize(node_chunks[k]);
          const sim::Work w = kernel.process_chunk(chunk, obj);
          const sim::Work scaled = chunk.virtual_scale() * w;
          thread_time[static_cast<std::size_t>(th)] +=
              compute_machine.compute_time(scaled);
          wj += scaled;
        }
        for (double tt : thread_time) tj = std::max(tj, tt);
        // Sequential intra-node combine of the thread replicas.
        for (auto& extra : thread_objects) {
          const sim::Work mw = kernel.merge(*objects[j], *extra);
          const sim::Work scaled = obj_scale * mw;
          tj += compute_machine.compute_time(scaled);
          wj += scaled;
        }
      } else {
        // Locking strategies: one shared object, contention on updates.
        auto& thread_time = scratch[uj].thread_time;
        thread_time.assign(static_cast<std::size_t>(threads), 0.0);
        const auto& node_chunks = dest_part.chunks_of(j);
        for (std::size_t k = 0; k < node_chunks.size(); ++k) {
          const repository::Chunk chunk = ds.materialize(node_chunks[k]);
          const sim::Work w = kernel.process_chunk(chunk, *objects[j]);
          const sim::Work scaled = chunk.virtual_scale() * w;
          thread_time[k % static_cast<std::size_t>(threads)] +=
              compute_machine.compute_time(scaled);
          wj += scaled;
        }
        for (double tt : thread_time) tj = std::max(tj, tt);
        tj *= 1.0 + lock_penalty * static_cast<double>(threads - 1);
      }
      if (j < cfg.straggler_count) tj *= cfg.straggler_slowdown;
      node_time[uj] = tj;
      node_work[uj] = wj;
    };
    if (pool) {
      pool->parallel_for(static_cast<std::size_t>(c), reduce_node);
    } else {
      for (int j = 0; j < c; ++j) reduce_node(static_cast<std::size_t>(j));
    }
    // The pass owns its prefetch tasks: wait them out here so none is
    // still touching the window pool (or its metrics registry) after the
    // caller regains control — see PrefetchDrain.
    prefetch_drain.drain();

    // Work partials fold in node order (FP-ordered); the phase time is the
    // slowest node's ComputeBlockDone completion.
    for (int j = 0; j < c; ++j) {
      const auto uj = static_cast<std::size_t>(j);
      result.total_work += node_work[uj];
      phases.complete(j, sim::EventKind::ComputeBlockDone, node_time[uj],
                      &rec.timing.compute_local);
    }
    phases.drain();
    rec.node_compute.assign(node_time.begin(), node_time.end());

    // --- Phase 3b: reduction-object gather + merge (serialized) ------
    // Record the master's own object size too: the profile's "r" is the
    // maximum reduction-object size regardless of who sent it.
    gather.clear();
    objects[0]->serialize(gather);
    rec.max_object_bytes = static_cast<double>(gather.size()) * obj_scale;
    for (int j = 1; j < c; ++j) {
      gather.clear();
      objects[j]->serialize(gather);
      const double charged = static_cast<double>(gather.size()) * obj_scale;
      rec.max_object_bytes = std::max(rec.max_object_bytes, charged);
      rec.timing.ro_comm += ipc.message_time(charged);

      const sim::Work mw = kernel.merge(*objects[0], *objects[j]);
      const sim::Work scaled_mw = obj_scale * mw;
      rec.timing.global_red += compute_machine.compute_time(scaled_mw);
      result.total_work += scaled_mw;
    }

    // --- Phase 3c: sequential global reduction + broadcast -----------
    more_passes = false;
    const sim::Work gw = kernel.global_reduce(*objects[0], more_passes);
    const sim::Work scaled_gw = obj_scale * gw;
    rec.timing.global_red += compute_machine.compute_time(scaled_gw);
    result.total_work += scaled_gw;

    // Parameter re-broadcast uses a binomial tree (ceil(log2(c)) rounds),
    // like any reasonable collective implementation.
    const double bb = kernel.broadcast_bytes();
    if (bb > 0.0 && c > 1) {
      int rounds = 0;
      for (int reach = 1; reach < c; reach *= 2) ++rounds;
      rec.timing.ro_comm += static_cast<double>(rounds) * ipc.message_time(bb);
    }

    rec.elapsed =
        cfg.overlap_phases
            ? std::max({rec.timing.disk, rec.timing.network,
                        rec.timing.compute_local}) +
                  rec.timing.ro_comm + rec.timing.global_red
            : rec.timing.total();

    // --- Observability (master thread, deterministic program point) ---
    // All virtual timestamps derive from the finished PassRecord, so the
    // recorded event set is independent of the host pool size.
    const int p = result.passes;
    const char* const source = !cached_pass                        ? "repository"
                               : cache_mode == CacheMode::LocalDisk ? "local-cache"
                                                                    : "cache-site";
    if (trace != nullptr) {
      const double t0 = vclock;
      const double t1 = t0 + rec.timing.disk;
      const double t2 = t1 + rec.timing.network;
      const double t3 = t2 + rec.timing.compute_local;
      const double t4 = t3 + rec.timing.ro_comm;
      const double t5 = t4 + rec.timing.global_red;
      trace->span("pass", "pass " + std::to_string(p), obs::kJobNode, p, t0,
                  t5);
      trace->span("phase", std::string("retrieval/") + source, obs::kJobNode,
                  p, t0, t1);
      trace->span("phase", "network-transfer", obs::kJobNode, p, t1, t2);
      trace->span("phase", "local-reduction", obs::kJobNode, p, t2, t3);
      trace->span("phase", "ro-comm", obs::kJobNode, p, t3, t4);
      trace->span("phase", "global-reduction", obs::kJobNode, p, t4, t5);
      for (int j = 0; j < c; ++j) {
        const auto uj = static_cast<std::size_t>(j);
        trace->span("compute", "local-reduction", j, p, t2,
                    t2 + node_time[uj]);
        if (threads == 1) {
          // Chunk-block decomposition of this node's reduction, as "X"
          // complete events on the node's compute/detail track. The block
          // times exclude the straggler factor (applied to the node total
          // only), so the last block may end before the node span does.
          const auto& bt = scratch[uj].block_time;
          double cursor = t2;
          for (std::size_t b = 0; b < bt.size(); ++b) {
            trace->detail("compute", "block " + std::to_string(b), j, p,
                          cursor, cursor + bt[b]);
            cursor += bt[b];
          }
        }
      }
    }
    if (metrics != nullptr) {
      metrics->add("runtime.passes", 1.0);
      metrics->add(std::string("runtime.chunks.") + source,
                   static_cast<double>(ds.chunk_count()));
      metrics->observe("phase.disk", rec.timing.disk);
      metrics->observe("phase.network", rec.timing.network);
      metrics->observe("phase.compute_local", rec.timing.compute_local);
      metrics->observe("phase.ro_comm", rec.timing.ro_comm);
      metrics->observe("phase.global_red", rec.timing.global_red);
      metrics->set_max("runtime.max_object_bytes", rec.max_object_bytes);
    }
    vclock += rec.timing.total();
    phases.barrier(vclock);

    result.timing.elapsed += rec.elapsed;
    result.timing.total += rec.timing;
    result.timing.max_object_bytes =
        std::max(result.timing.max_object_bytes, rec.max_object_bytes);
    result.timing.passes.push_back(rec);
    ++result.passes;
    result.result = std::move(objects[0]);
  }

  if (engine) engine->flush_counters(metrics);
  return result;
}

}  // namespace fgp::freeride
