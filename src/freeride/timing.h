// timing.h — the execution-time breakdown the prediction model consumes.
//
// T_exec = T_disk + T_network + T_compute, with T_compute further split
// into the parallel local reduction, the serialized reduction-object
// communication (T_ro) and the serialized global reduction (T_g) — exactly
// the quantities the paper's profile records.
#pragma once

#include <vector>

namespace fgp::freeride {

/// Virtual-time cost of one pass (or a whole job, summed over passes).
struct TimingBreakdown {
  double disk = 0.0;           ///< t_d: data retrieval (repository or cache)
  double network = 0.0;        ///< t_n: repository -> compute movement
  double compute_local = 0.0;  ///< parallel local-reduction time
  double ro_comm = 0.0;        ///< T_ro: gather + broadcast of objects
  double global_red = 0.0;     ///< T_g: merges + global reduction at master

  /// t_c as the paper defines it: everything in the processing stage.
  double compute() const { return compute_local + ro_comm + global_red; }
  double total() const { return disk + network + compute(); }

  TimingBreakdown& operator+=(const TimingBreakdown& o);
};

/// Per-pass observability for tests and the profile collector.
struct PassRecord {
  TimingBreakdown timing;
  double max_object_bytes = 0.0;  ///< largest charged reduction object (r)
  bool from_cache = false;        ///< pass served from a cache (any kind)
  /// *Virtual* elapsed time of this pass (not host wall-clock — see
  /// DESIGN.md §12): the component sum in the default additive execution,
  /// or max(disk, network, local) + serialized parts when the runtime
  /// pipelines phases (JobConfig::overlap_phases). In the overlap case
  /// this is strictly less than timing.total() whenever disk, network and
  /// local reduction all take non-zero time — pinned by a unit test.
  double elapsed = 0.0;
  /// Per-compute-node virtual local-reduction time for this pass, indexed
  /// by node. The slowest entry (plus any straggler slowdown already
  /// applied) equals timing.compute_local.
  std::vector<double> node_compute;
};

/// Everything a finished job reports.
struct JobTiming {
  TimingBreakdown total;
  std::vector<PassRecord> passes;
  double max_object_bytes = 0.0;  ///< max over passes
  double elapsed = 0.0;           ///< sum of per-pass elapsed times
};

}  // namespace fgp::freeride
