// reduction.h — the FREERIDE-G programming interface.
//
// "During each phase of these algorithms, the computation involves reading
// the data instances in an arbitrary order, processing each data instance,
// and updating elements of a reduction object using associative and
// commutative operators." (paper §2.2)
//
// An application provides:
//   * a ReductionObject — the replicated accumulator state,
//   * process_chunk    — the local reduction,
//   * merge            — the associative/commutative combine,
//   * global_reduce    — the sequential global step (may update kernel
//                        parameters, e.g. new k-means centres, and request
//                        another pass for iterative algorithms).
//
// Kernels report the Work they actually perform so the virtual cluster can
// charge time for it; they never measure wall-clock themselves.
#pragma once

#include <memory>
#include <string>

#include "repository/chunk.h"
#include "sim/machine.h"
#include "util/serial.h"

namespace fgp::freeride {

/// Replicated accumulator updated by local reductions and combined by
/// merge(). Must serialize to a flat byte buffer: the serialized size is
/// the prediction model's reduction-object size "r".
class ReductionObject {
 public:
  virtual ~ReductionObject() = default;
  virtual void serialize(util::ByteWriter& w) const = 0;
  virtual void deserialize(util::ByteReader& r) = 0;
};

/// An application kernel. One instance drives a whole job; per-node state
/// lives exclusively in ReductionObjects. process_chunk is const so that
/// independent nodes may run concurrently; kernel parameters change only
/// in global_reduce (executed once per pass, on the master).
class ReductionKernel {
 public:
  virtual ~ReductionKernel() = default;

  virtual std::string name() const = 0;

  /// Fresh, empty per-node reduction object.
  virtual std::unique_ptr<ReductionObject> create_object() const = 0;

  /// Local reduction of one chunk into `obj`. Returns the work performed
  /// on the chunk's *real* payload; the runtime scales it by the chunk's
  /// virtual scale.
  virtual sim::Work process_chunk(const repository::Chunk& chunk,
                                  ReductionObject& obj) const = 0;

  /// Merges `other` into `into` (associative and commutative). Returns the
  /// work performed.
  virtual sim::Work merge(ReductionObject& into,
                          const ReductionObject& other) const = 0;

  /// Sequential global reduction on the fully merged object. May update
  /// kernel parameters; sets `more_passes` to request another pass over
  /// the data (iterative algorithms). Returns the work performed.
  virtual sim::Work global_reduce(ReductionObject& merged,
                                  bool& more_passes) = 0;

  /// Bytes re-broadcast to compute nodes after global_reduce (updated
  /// centres, defect catalog, ...). Zero when nothing is broadcast.
  virtual double broadcast_bytes() const { return 0.0; }

  /// True when the reduction object's size tracks the local data volume
  /// (the paper's "linear object size class"); the runtime then charges
  /// gather bytes and merge work at the dataset's virtual scale so the
  /// component ratios match paper-scale datasets.
  virtual bool reduction_object_scales_with_data() const { return false; }
};

}  // namespace fgp::freeride
