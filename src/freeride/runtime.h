// runtime.h — the FREERIDE-G execution engine on the virtual cluster.
//
// One run() call executes a complete job: per pass, the n data-server
// nodes retrieve their chunk partitions (data retrieval), assign and send
// every chunk to a compute node (data distribution + communication), the c
// compute nodes run the real local reduction, reduction objects are
// gathered and merged at the master, and the sequential global reduction
// (plus optional parameter broadcast) closes the pass. Virtual time is
// charged per phase from actual byte counts and kernel-reported work;
// the computation itself is real, so results are testable against serial
// references.
#pragma once

#include <memory>
#include <optional>

#include "freeride/cache.h"
#include "freeride/config.h"
#include "freeride/reduction.h"
#include "freeride/timing.h"
#include "repository/dataset.h"
#include "repository/partition.h"
#include "sim/cluster.h"
#include "sim/network.h"

namespace fgp::util {
class ThreadPool;
}  // namespace fgp::util

namespace fgp::obs {
class Registry;
class TraceRecorder;
}  // namespace fgp::obs

namespace fgp::freeride {

/// A non-local caching site: storage "at a location from which [data] can
/// be accessed at a lower cost than the original repository" (paper §2.1,
/// listed as a resource-selection role but not implemented there).
struct CacheSiteSetup {
  sim::ClusterSpec cluster;
  int nodes = 0;
  sim::WanSpec wan_to_compute;  ///< pipe between cache site and compute site
};

/// How a multi-pass job's later passes were actually served.
enum class CacheMode { None, LocalDisk, NonLocalSite };

/// Which simulation core sequences the pass loop.
///
///   Event      the deterministic discrete-event engine (sim::EventEngine):
///              per-node phase completions are scheduled as virtual-time
///              events and accounting folds in canonical dispatch order
///              (time, seq, node, kind). The default.
///   PhaseLoop  the pre-engine phase-structured loop: accounting folds
///              inline at each call site, no event queue. Kept as the
///              reference implementation — both modes must produce
///              byte-identical timings, traces, metrics and residuals
///              (tests/test_engine_swap.cpp pins this; DESIGN.md §18).
enum class EngineMode { Event, PhaseLoop };

/// Everything a job needs: the data, where it lives, where it runs, and
/// the pipe in between.
struct JobSetup {
  const repository::ChunkedDataset* dataset = nullptr;
  sim::ClusterSpec data_cluster;
  sim::ClusterSpec compute_cluster;
  sim::WanSpec wan;
  JobConfig config;
  /// Optional non-local cache site used when the compute nodes' local
  /// cache capacity cannot hold their share of the dataset.
  std::optional<CacheSiteSetup> cache_site;

  /// Simulation core for the pass loop (see EngineMode). Swapping modes
  /// never changes any result, timing or deterministic export byte.
  EngineMode engine = EngineMode::Event;

  /// Observability sinks, both off (null) by default. The runtime records
  /// virtual-time phase spans / deterministic metrics from its master
  /// thread at deterministic program points, so for a fixed seed the
  /// exported trace and metrics snapshot are byte-identical across the
  /// serial runtime and every pool size (tests/test_obs.cpp). Host
  /// wall-clock spans are only recorded when the recorder itself has
  /// host recording enabled.
  obs::TraceRecorder* trace = nullptr;
  obs::Registry* metrics = nullptr;
};

/// Outcome of a job: the timing breakdown the prediction model consumes,
/// the final reduction object (downcast to the kernel's concrete type to
/// read results), and aggregate work for sanity checks.
struct RunResult {
  JobTiming timing;
  int passes = 0;
  std::unique_ptr<ReductionObject> result;
  sim::Work total_work;
  CacheMode cache_mode = CacheMode::None;
};

class Runtime {
 public:
  /// A serial runtime: every simulated node runs inline on the caller.
  Runtime() = default;

  /// pool_threads > 1 runs the two-level reduction (compute nodes, and
  /// chunk blocks within each node) on an owned host thread pool
  /// (util::ThreadPool). Virtual time, reduction objects and predictions
  /// are bit-identical for every pool size — the chunk-block partition is
  /// a pure function of the chunk list, so the pool only shortens host
  /// wall-clock time; tests/test_determinism.cpp enforces this at 1, 2
  /// and 8 threads (DESIGN.md §11).
  explicit Runtime(std::size_t pool_threads)
      : pool_threads_(pool_threads == 0 ? 1 : pool_threads) {}

  /// Borrows an existing pool instead of owning one — lets many Runtime
  /// instances (e.g. a bench::SweepRunner's concurrent configurations)
  /// share one set of host workers. `pool` must outlive the Runtime and
  /// may be null (serial). ThreadPool::parallel_for nests safely, so a
  /// run() executing *on* `pool` may still fan out over it.
  explicit Runtime(util::ThreadPool* pool) : shared_pool_(pool) {}

  /// Runs `kernel` over `setup`. Throws util::ConfigError for invalid
  /// configurations and util::Error for corrupted chunks (when
  /// config.verify_chunks is set).
  RunResult run(const JobSetup& setup, ReductionKernel& kernel) const;

 private:
  std::size_t pool_threads_ = 1;
  util::ThreadPool* shared_pool_ = nullptr;
};

}  // namespace fgp::freeride
