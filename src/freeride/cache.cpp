#include "freeride/cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace fgp::freeride {

void NodeCache::insert(repository::ChunkId id, double virtual_bytes) {
  FGP_CHECK(virtual_bytes >= 0.0);
  if (contains(id)) return;
  ids_.push_back(id);
  virtual_bytes_ += virtual_bytes;
}

bool NodeCache::contains(repository::ChunkId id) const {
  return std::find(ids_.begin(), ids_.end(), id) != ids_.end();
}

void NodeCache::clear() {
  ids_.clear();
  virtual_bytes_ = 0.0;
}

CacheSet::CacheSet(int compute_nodes, obs::Registry* metrics)
    : metrics_(metrics) {
  FGP_CHECK(compute_nodes > 0);
  caches_.resize(static_cast<std::size_t>(compute_nodes));
}

void CacheSet::insert(int i, repository::ChunkId id, double virtual_bytes) {
  NodeCache& cache = node(i);
  if (cache.contains(id)) return;
  cache.insert(id, virtual_bytes);
  if (metrics_ != nullptr) {
    metrics_->add("cache.inserted_chunks", 1.0);
    metrics_->add("cache.inserted_bytes", virtual_bytes);
  }
}

NodeCache& CacheSet::node(int i) {
  FGP_CHECK(i >= 0 && i < nodes());
  return caches_[static_cast<std::size_t>(i)];
}

const NodeCache& CacheSet::node(int i) const {
  FGP_CHECK(i >= 0 && i < nodes());
  return caches_[static_cast<std::size_t>(i)];
}

}  // namespace fgp::freeride
