#include "freeride/cache.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace fgp::freeride {

void NodeCache::insert(repository::Chunk chunk) {
  FGP_CHECK(chunk.virtual_bytes() >= 0.0);
  if (contains(chunk.id())) return;
  virtual_bytes_ += chunk.virtual_bytes();
  chunks_.push_back(std::move(chunk));
}

bool NodeCache::contains(repository::ChunkId id) const {
  return std::any_of(chunks_.begin(), chunks_.end(),
                     [id](const repository::Chunk& c) { return c.id() == id; });
}

void NodeCache::clear() {
  chunks_.clear();
  virtual_bytes_ = 0.0;
}

CacheSet::CacheSet(int compute_nodes, obs::Registry* metrics)
    : metrics_(metrics) {
  FGP_CHECK(compute_nodes > 0);
  caches_.resize(static_cast<std::size_t>(compute_nodes));
}

void CacheSet::insert(int i, repository::Chunk chunk) {
  NodeCache& cache = node(i);
  if (cache.contains(chunk.id())) return;
  const double virtual_bytes = chunk.virtual_bytes();
  cache.insert(std::move(chunk));
  if (metrics_ != nullptr) {
    metrics_->add("cache.inserted_chunks", 1.0);
    metrics_->add("cache.inserted_bytes", virtual_bytes);
  }
}

NodeCache& CacheSet::node(int i) {
  FGP_CHECK(i >= 0 && i < nodes());
  return caches_[static_cast<std::size_t>(i)];
}

const NodeCache& CacheSet::node(int i) const {
  FGP_CHECK(i >= 0 && i < nodes());
  return caches_[static_cast<std::size_t>(i)];
}

}  // namespace fgp::freeride
