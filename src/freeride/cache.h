// cache.h — the compute-node chunk cache.
//
// "If caching was performed on the initial iteration, each subsequent pass
// retrieves data chunks from local disk, instead of receiving it via
// network." Each compute node has its own cache; the runtime charges local
// disk time for cached reads and (optionally) for the initial writes.
//
// Caches hold chunk *views*: cheap by-value handles sharing the immutable
// payload slab with the dataset (DESIGN.md §13), so populating a cache
// never copies payload bytes.
#pragma once

#include <cstddef>
#include <vector>

#include "repository/chunk.h"

namespace fgp::obs {
class Registry;
}

namespace fgp::freeride {

/// Per-node cache bookkeeping: which chunk views are resident and their
/// virtual byte volume (what local-disk time is charged against).
class NodeCache {
 public:
  /// Takes the chunk view by value — a handle copy sharing the payload
  /// slab, never the bytes. Duplicate ids are ignored.
  void insert(repository::Chunk chunk);
  bool contains(repository::ChunkId id) const;

  std::size_t chunk_count() const { return chunks_.size(); }
  double virtual_bytes() const { return virtual_bytes_; }
  const std::vector<repository::Chunk>& chunks() const { return chunks_; }
  void clear();

 private:
  std::vector<repository::Chunk> chunks_;
  double virtual_bytes_ = 0.0;
};

/// Caches for all compute nodes of one job.
class CacheSet {
 public:
  /// `metrics` (optional) receives deterministic counters for insertions
  /// routed through insert(): cache.inserted_chunks / cache.inserted_bytes.
  /// Recording happens on the runtime master thread, in node order.
  explicit CacheSet(int compute_nodes, obs::Registry* metrics = nullptr);
  NodeCache& node(int i);
  const NodeCache& node(int i) const;
  int nodes() const { return static_cast<int>(caches_.size()); }

  /// Inserts a chunk view into node `i`'s cache, counting into the
  /// registry when the chunk was not already resident.
  void insert(int i, repository::Chunk chunk);

  /// True when every node already holds every chunk it will process.
  bool warm() const { return warm_; }
  void mark_warm() { warm_ = true; }

 private:
  std::vector<NodeCache> caches_;
  bool warm_ = false;
  obs::Registry* metrics_ = nullptr;
};

}  // namespace fgp::freeride
