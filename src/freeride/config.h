// config.h — job configuration: the (n, c) pair plus runtime switches.
#pragma once

namespace fgp::freeride {

/// Shared-memory parallelization technique used *within* each compute node
/// when threads_per_node > 1 (FREERIDE's cluster-of-SMPs support; see Jin
/// & Agrawal, TKDE 2005). Full replication keeps one reduction object per
/// thread and combines them after the local phase; the locking schemes
/// share one object and pay a per-update contention cost instead.
enum class SmpStrategy {
  FullReplication,
  FullLocking,
  CacheSensitiveLocking,
};

/// Configuration of one FREERIDE-G job execution.
struct JobConfig {
  int data_nodes = 1;     ///< n — storage/retrieval nodes at the repository
  int compute_nodes = 1;  ///< c — processing nodes (must be >= data_nodes)

  /// Threads per compute node (<= the machine's core count; validated by
  /// the runtime). 1 = pure distributed-memory execution.
  int threads_per_node = 1;
  SmpStrategy smp_strategy = SmpStrategy::FullReplication;

  /// Cache chunks at the compute nodes during pass 0 and read them from
  /// local disk on later passes (FREERIDE-G "data caching"). Off by
  /// default in the prediction experiments: the published model assumes
  /// retrieval time lives on the repository side on every pass; the
  /// abl01_caching bench quantifies how caching breaks that assumption.
  bool enable_caching = false;

  /// Also charge the local-disk write when populating the cache.
  bool charge_cache_write = true;

  /// Per-compute-node cache storage, bytes (virtual). When a multi-pass
  /// job's per-node share exceeds it, local caching is impossible and the
  /// runtime falls back to a non-local cache site (if the JobSetup names
  /// one) or to re-retrieval.
  double local_cache_capacity_bytes = 1e18;

  /// Pipeline retrieval, movement and local reduction instead of running
  /// them as strictly additive phases. The published prediction model
  /// assumes the additive structure; abl05_overlap quantifies the damage.
  bool overlap_phases = false;

  /// Straggler injection: the first `straggler_count` compute nodes run
  /// their local reductions `straggler_slowdown`x slower (shared machines,
  /// failing disks — everyday grid weather the homogeneous model cannot
  /// see; abl05_stragglers quantifies the damage).
  int straggler_count = 0;
  double straggler_slowdown = 1.0;

  /// Safety cap on passes for iterative algorithms.
  int max_passes = 128;

  /// Verify chunk checksums on receipt (the data-communication role).
  bool verify_chunks = true;

  /// Throws util::ConfigError when the configuration violates the
  /// middleware's documented constraints (positive counts, c >= n — the
  /// paper's "M >= N" rule, sane pass cap).
  void validate() const;
};

}  // namespace fgp::freeride
