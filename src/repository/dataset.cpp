#include "repository/dataset.h"

#include "obs/metrics.h"

namespace fgp::repository {

void ChunkedDataset::add_chunk(Chunk c) {
  total_virtual_bytes_ += c.virtual_bytes();
  total_real_bytes_ += c.real_bytes();
  chunks_.push_back(std::move(c));
}

void ChunkedDataset::set_uniform_virtual_scale(double virtual_scale) {
  total_virtual_bytes_ = 0.0;
  for (auto& c : chunks_) {
    c.set_virtual_scale(virtual_scale);
    total_virtual_bytes_ += c.virtual_bytes();
  }
}

ChunkedDataset ChunkedDataset::with_uniform_virtual_scale(
    double virtual_scale, obs::Registry* metrics) const {
  ChunkedDataset view(meta_);
  for (const auto& c : chunks_)
    view.add_chunk(c.with_virtual_scale(virtual_scale));
  if (metrics != nullptr)
    metrics->add("payload.shared_views",
                 static_cast<double>(chunks_.size()));
  return view;
}

bool ChunkedDataset::verify_all() const {
  for (const auto& c : chunks_)
    if (!c.verify()) return false;
  return true;
}

}  // namespace fgp::repository
