#include "repository/dataset.h"

namespace fgp::repository {

void ChunkedDataset::add_chunk(Chunk c) {
  total_virtual_bytes_ += c.virtual_bytes();
  total_real_bytes_ += c.real_bytes();
  chunks_.push_back(std::move(c));
}

void ChunkedDataset::set_uniform_virtual_scale(double virtual_scale) {
  total_virtual_bytes_ = 0.0;
  for (auto& c : chunks_) {
    c.set_virtual_scale(virtual_scale);
    total_virtual_bytes_ += c.virtual_bytes();
  }
}

bool ChunkedDataset::verify_all() const {
  for (const auto& c : chunks_)
    if (!c.verify()) return false;
  return true;
}

}  // namespace fgp::repository
