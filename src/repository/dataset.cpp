#include "repository/dataset.h"

namespace fgp::repository {

void ChunkedDataset::add_chunk(Chunk c) {
  total_virtual_bytes_ += c.virtual_bytes();
  total_real_bytes_ += c.real_bytes();
  chunks_.push_back(std::move(c));
}

bool ChunkedDataset::verify_all() const {
  for (const auto& c : chunks_)
    if (!c.verify()) return false;
  return true;
}

}  // namespace fgp::repository
