#include "repository/dataset.h"

#include "obs/metrics.h"

namespace fgp::repository {

void ChunkedDataset::add_chunk(Chunk c) {
  total_virtual_bytes_ += c.virtual_bytes();
  total_real_bytes_ += c.real_bytes();
  chunks_.push_back(std::move(c));
}

void ChunkedDataset::set_uniform_virtual_scale(double virtual_scale) {
  total_virtual_bytes_ = 0.0;
  for (auto& c : chunks_) {
    c.set_virtual_scale(virtual_scale);
    total_virtual_bytes_ += c.virtual_bytes();
  }
}

ChunkedDataset ChunkedDataset::with_uniform_virtual_scale(
    double virtual_scale, obs::Registry* metrics) const {
  ChunkedDataset view(meta_);
  for (const auto& c : chunks_)
    view.add_chunk(c.with_virtual_scale(virtual_scale));
  // A view of a streamed dataset streams from the same source (and shares
  // its window pool/budget); materialize() rebinds fetched chunks to the
  // view's scale.
  view.source_ = source_;
  if (metrics != nullptr)
    metrics->add("payload.shared_views",
                 static_cast<double>(chunks_.size()));
  return view;
}

bool ChunkedDataset::verify_all() const {
  for (std::size_t i = 0; i < chunks_.size(); ++i)
    if (!materialize(i).verify()) return false;
  return true;
}

Chunk ChunkedDataset::materialize(std::size_t i) const {
  const Chunk& c = chunks_.at(i);
  if (c.loaded() || source_ == nullptr) return c;
  Chunk fetched = source_->fetch(i);
  // Rescaled views keep metadata at the view's scale; the source serves
  // the stored scale, so rebind (metadata-only — payload untouched).
  if (fetched.virtual_scale() != c.virtual_scale())
    fetched.set_virtual_scale(c.virtual_scale());
  return fetched;
}

void ChunkedDataset::prefetch(std::size_t i) const {
  const Chunk& c = chunks_.at(i);
  if (!c.loaded() && source_ != nullptr) source_->prefetch(i);
}

}  // namespace fgp::repository
