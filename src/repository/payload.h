// payload.h — refcounted immutable byte slabs backing chunk payloads.
//
// The data plane's hot bytes live in PayloadBuffers: once constructed, a
// buffer's bytes never change for its lifetime, so any number of chunks,
// datasets, caches and concurrent sweep jobs may hold views of the same
// slab without copies or locks (DESIGN.md §13). Two backings exist:
//
//   heap   an owned std::vector moved in at construction (generators,
//          deserializers, the streamed store path);
//   mmap   a private read-only mapping of a chunk file, exposing the
//          payload region as a window into the mapping (the store's
//          load_mapped path). The mapping lives exactly as long as the
//          buffer, and the buffer lives as long as any chunk view of it.
//
// A third, borrowed backing supports the streaming window layer
// (stream.h): the buffer aliases memory owned by someone else (a mapped
// window) and holds a refcounted keep-alive so the owner cannot vanish
// under the view (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <vector>

namespace fgp::repository {

class PayloadBuffer {
  /// Construction goes through the factories below; this token keeps the
  /// constructors unusable outside them while staying make_shared-friendly.
  struct Token {
    explicit Token() = default;
  };

 public:
  /// Wraps an owned heap buffer (moved, never copied).
  static std::shared_ptr<const PayloadBuffer> from_bytes(
      std::vector<std::uint8_t> bytes);

  /// Maps `path` read-only (whole file, so no page-alignment constraint on
  /// the view) and exposes [view_offset, view_offset + view_length) as the
  /// buffer's bytes. Throws util::SerializationError when the file cannot
  /// be opened or mapped, or the window exceeds the file; throws on
  /// platforms where mmap_supported() is false.
  static std::shared_ptr<const PayloadBuffer> map_file(
      const std::filesystem::path& path, std::size_t view_offset,
      std::size_t view_length);

  /// True when this platform has the mmap read path compiled in.
  static bool mmap_supported();

  /// Aliases `size` bytes at `data` owned by `owner` (e.g. a mapped
  /// window): the buffer copies nothing and keeps `owner` alive for its
  /// own lifetime, so the bytes stay valid as long as any chunk view of
  /// this buffer does. The bytes must be immutable for that lifetime —
  /// the same contract every other backing obeys (DESIGN.md §13).
  static std::shared_ptr<const PayloadBuffer> from_view(
      std::shared_ptr<const void> owner, const std::uint8_t* data,
      std::size_t size);

  std::span<const std::uint8_t> bytes() const { return {data_, size_}; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool mapped() const { return map_base_ != nullptr; }
  /// True for a from_view buffer borrowing another owner's bytes.
  bool borrowed() const { return owner_ != nullptr; }

  PayloadBuffer(Token, std::vector<std::uint8_t> heap);
  PayloadBuffer(Token, void* map_base, std::size_t map_length,
                std::size_t view_offset, std::size_t view_length);
  PayloadBuffer(Token, std::shared_ptr<const void> owner,
                const std::uint8_t* data, std::size_t size);
  ~PayloadBuffer();

  PayloadBuffer(const PayloadBuffer&) = delete;
  PayloadBuffer& operator=(const PayloadBuffer&) = delete;

 private:
  std::vector<std::uint8_t> heap_;
  void* map_base_ = nullptr;
  std::size_t map_length_ = 0;
  std::shared_ptr<const void> owner_;  ///< keep-alive for from_view buffers
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace fgp::repository
