#include "repository/stream.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/serial.h"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define FGP_HAVE_STREAM_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FGP_HAVE_STREAM_MMAP 0
#endif

namespace fgp::repository {

namespace {

std::size_t page_size() {
#if FGP_HAVE_STREAM_MMAP
  const long ps = ::sysconf(_SC_PAGESIZE);
  return ps > 0 ? static_cast<std::size_t>(ps) : std::size_t{4096};
#else
  return std::size_t{4096};
#endif
}

}  // namespace

WindowPool::Window::~Window() {
#if FGP_HAVE_STREAM_MMAP
  if (base_ != nullptr) {
    // The window leaves the address space for good: advise the kernel its
    // pages are done before unmapping (the DONTNEED half of the
    // WILLNEED/DONTNEED pair — DESIGN.md §15).
    ::madvise(base_, length_, MADV_DONTNEED);
    ::munmap(base_, length_);
  }
#endif
}

WindowPool::WindowPool(StreamConfig cfg, obs::Registry* metrics)
    : cfg_(cfg), metrics_(metrics) {
  FGP_CHECK_MSG(cfg_.budget_bytes > 0, "stream budget_bytes must be positive");
  FGP_CHECK_MSG(cfg_.window_bytes > 0, "stream window_bytes must be positive");
  // mmap offsets must be page-aligned, so windows span whole pages.
  const std::size_t ps = page_size();
  cfg_.window_bytes = ((cfg_.window_bytes + ps - 1) / ps) * ps;
}

std::size_t WindowPool::resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

#if FGP_HAVE_STREAM_MMAP

std::shared_ptr<const WindowPool::Window> WindowPool::acquire(
    std::size_t chunk_index, const std::filesystem::path& path,
    std::uint64_t expected_file_size, std::size_t window_index,
    bool* was_resident) {
  const Key key{chunk_index, window_index};
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    if (was_resident != nullptr) *was_resident = true;
    return lru_.front().window;
  }
  if (was_resident != nullptr) *was_resident = false;

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw util::SerializationError("cannot open " + path.string() +
                                   " for windowed mapping");
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw util::SerializationError("cannot stat " + path.string());
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  if (file_size != expected_file_size) {
    // The file changed under the stream (truncated mid-window, replaced,
    // grown): mapping on would risk SIGBUS on a vanished page, so fail
    // with the same typed error every other corruption path uses.
    ::close(fd);
    throw util::SerializationError(
        path.string() + " changed size under the stream (expected " +
        std::to_string(expected_file_size) + " bytes, found " +
        std::to_string(file_size) + ")");
  }
  const std::uint64_t offset =
      static_cast<std::uint64_t>(window_index) * cfg_.window_bytes;
  FGP_CHECK_MSG(offset < file_size, "window " << window_index
                                              << " beyond end of "
                                              << path.string());
  const auto length = static_cast<std::size_t>(
      std::min<std::uint64_t>(cfg_.window_bytes, file_size - offset));
  void* base = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd,
                      static_cast<::off_t>(offset));
  ::close(fd);
  if (base == MAP_FAILED)
    throw util::SerializationError("mmap failed for window " +
                                   std::to_string(window_index) + " of " +
                                   path.string());
  ::madvise(base, length, MADV_WILLNEED);

  lru_.push_front(Slot{key, std::make_shared<const Window>(base, length)});
  index_[key] = lru_.begin();
  resident_bytes_ += length;
  if (metrics_ != nullptr)
    metrics_->add("store.window_maps", 1.0, obs::Domain::Host);

  // Hard budget: drop least-recently-used windows until back under it.
  // The just-mapped front window always survives its own acquisition; a
  // dropped window's mapping lives on while any chunk view borrows it.
  while (resident_bytes_ > cfg_.budget_bytes && lru_.size() > 1) {
    const Slot& victim = lru_.back();
    resident_bytes_ -= victim.window->length();
    index_.erase(victim.key);
    lru_.pop_back();
    if (metrics_ != nullptr)
      metrics_->add("store.window_recycles", 1.0, obs::Domain::Host);
  }
  return lru_.front().window;
}

#else

std::shared_ptr<const WindowPool::Window> WindowPool::acquire(
    std::size_t, const std::filesystem::path& path, std::uint64_t,
    std::size_t, bool*) {
  throw util::SerializationError("no mmap support on this platform for " +
                                 path.string());
}

#endif

StoreStreamSource::Entry StoreStreamSource::read_entry(
    const std::filesystem::path& path) {
  std::error_code ec;
  const std::uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec)
    throw util::SerializationError("cannot stat " + path.string() + ": " +
                                   ec.message());
  if (file_size < Chunk::kWireHeaderBytes)
    throw util::SerializationError("truncated chunk file " + path.string());
  std::ifstream is(path, std::ios::binary);
  if (!is.good())
    throw util::SerializationError("cannot open " + path.string());
  std::uint8_t header[Chunk::kWireHeaderBytes];
  is.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!is.good())
    throw util::SerializationError("truncated chunk stream: header");
  util::ByteReader hr(header, sizeof(header));
  Entry e;
  e.path = path;
  e.file_size = file_size;
  e.id = hr.get_u64();
  e.virtual_scale = hr.get_f64();
  e.checksum = hr.get_u64();
  e.payload_bytes = hr.get_u64();
  if (e.virtual_scale <= 0.0)
    throw util::SerializationError("chunk file " + path.string() +
                                   ": non-positive virtual scale");
  if (e.payload_bytes > file_size - Chunk::kWireHeaderBytes)
    throw util::SerializationError(
        "chunk " + std::to_string(e.id) + ": payload length " +
        std::to_string(e.payload_bytes) + " exceeds file " + path.string());
  return e;
}

StoreStreamSource::StoreStreamSource(std::vector<Entry> entries,
                                     StreamConfig cfg, obs::Registry* metrics)
    : entries_(std::move(entries)), metrics_(metrics), pool_(cfg, metrics) {}

Chunk StoreStreamSource::fetch(std::size_t index) const {
  const Entry& e = entries_.at(index);
  const std::uint64_t n = e.payload_bytes;
  const std::size_t window_bytes = pool_.config().window_bytes;

  std::shared_ptr<const PayloadBuffer> payload;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  if (n == 0) {
    payload = PayloadBuffer::from_bytes({});
  } else {
    // Payload bytes live at [32, 32 + n) of the file; window w spans
    // [w * window_bytes, ...). The payload always starts inside window 0
    // (the header is far smaller than a page).
    const std::size_t last_window =
        static_cast<std::size_t>((Chunk::kWireHeaderBytes + n - 1) /
                                 window_bytes);
    if (last_window == 0) {
      // Zero-copy: the view borrows the window's mapping and keeps it
      // alive past any pool eviction.
      bool resident = false;
      const auto w =
          pool_.acquire(index, e.path, e.file_size, 0, &resident);
      (resident ? hits : misses) += 1;
      payload = PayloadBuffer::from_view(
          w, w->data() + Chunk::kWireHeaderBytes,
          static_cast<std::size_t>(n));
    } else {
      // The payload straddles window boundaries (window smaller than the
      // chunk): stitch it window by window into a heap slab. Only one
      // window needs to be held at a time, so this stays correct under
      // any budget.
      std::vector<std::uint8_t> stitched(static_cast<std::size_t>(n));
      for (std::size_t wi = 0; wi <= last_window; ++wi) {
        bool resident = false;
        const auto w =
            pool_.acquire(index, e.path, e.file_size, wi, &resident);
        (resident ? hits : misses) += 1;
        const std::uint64_t win_begin =
            static_cast<std::uint64_t>(wi) * window_bytes;
        const std::uint64_t copy_begin =
            std::max<std::uint64_t>(win_begin, Chunk::kWireHeaderBytes);
        const std::uint64_t copy_end = std::min<std::uint64_t>(
            win_begin + w->length(), Chunk::kWireHeaderBytes + n);
        FGP_CHECK_MSG(copy_end > copy_begin,
                      "window " << wi << " of " << e.path.string()
                                << " contributes no payload bytes");
        std::memcpy(stitched.data() + (copy_begin - Chunk::kWireHeaderBytes),
                    w->data() + (copy_begin - win_begin),
                    static_cast<std::size_t>(copy_end - copy_begin));
      }
      payload = PayloadBuffer::from_bytes(std::move(stitched));
      if (metrics_ != nullptr) metrics_->add("store.stitched_chunks", 1.0);
    }
  }

  Chunk c(e.id, std::move(payload), e.virtual_scale);
  if (c.checksum() != e.checksum)
    throw util::SerializationError("chunk " + std::to_string(e.id) +
                                   ": checksum mismatch (corrupted payload)");
  if (metrics_ != nullptr) {
    // Integral increments: the totals are fixed by the fetch sequence, so
    // the deterministic export is byte-identical at any pool size; the
    // hit/miss split depends on prefetch timing and stays host-domain.
    metrics_->add("store.windowed_bytes", static_cast<double>(n));
    if (hits > 0)
      metrics_->add("store.prefetch_hits", static_cast<double>(hits),
                    obs::Domain::Host);
    if (misses > 0)
      metrics_->add("store.prefetch_misses", static_cast<double>(misses),
                    obs::Domain::Host);
  }
  return c;
}

void StoreStreamSource::prefetch(std::size_t index) const {
  // A hint, never an error: ready the chunk's windows (map + WILLNEED)
  // so the fetch overlapping the current block's compute finds them
  // resident. Any IO problem is swallowed here and re-raised with full
  // context by the eventual fetch.
  try {
    const Entry& e = entries_.at(index);
    if (e.payload_bytes == 0) return;
    const std::size_t window_bytes = pool_.config().window_bytes;
    const std::size_t last_window = static_cast<std::size_t>(
        (Chunk::kWireHeaderBytes + e.payload_bytes - 1) / window_bytes);
    for (std::size_t wi = 0; wi <= last_window; ++wi)
      pool_.acquire(index, e.path, e.file_size, wi);
    if (metrics_ != nullptr)
      metrics_->add("store.prefetch_issued", 1.0, obs::Domain::Host);
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

}  // namespace fgp::repository
