// chunk.h — the unit of storage, movement and processing.
//
// FREERIDE-G "expects data to be stored in chunks, whose size is manageable
// for the repository nodes". A chunk owns a real byte payload (what the
// kernels actually process) plus a virtual size: the number of bytes this
// chunk *represents* at paper scale. The repository charges disk and
// network time against virtual bytes, and the runtime scales kernel work
// by the same factor, so MB-scale real payloads faithfully stand in for
// the paper's GB-scale datasets (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/check.h"
#include "util/serial.h"

namespace fgp::repository {

using ChunkId = std::uint64_t;

class Chunk {
 public:
  Chunk() = default;
  Chunk(ChunkId id, std::vector<std::uint8_t> payload, double virtual_scale);

  ChunkId id() const { return id_; }
  std::size_t real_bytes() const { return payload_.size(); }
  double virtual_bytes() const { return virtual_bytes_; }
  /// virtual_bytes / real_bytes; kernels' work is scaled by this.
  double virtual_scale() const { return virtual_scale_; }
  std::uint64_t checksum() const { return checksum_; }

  const std::vector<std::uint8_t>& payload() const { return payload_; }

  /// Typed view of the payload. Throws if the size is not a multiple of T.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::span<const T> as_span() const {
    FGP_CHECK_MSG(payload_.size() % sizeof(T) == 0,
                  "chunk " << id_ << " payload (" << payload_.size()
                           << " bytes) not a whole number of elements");
    return {reinterpret_cast<const T*>(payload_.data()),
            payload_.size() / sizeof(T)};
  }

  /// Rebinds the chunk to a new virtual scale (payload and checksum are
  /// untouched). Lets generators produce data once at scale 1 and rescale
  /// to the requested virtual size instead of generating twice.
  void set_virtual_scale(double virtual_scale);

  /// Recomputes the FNV checksum and compares to the stored one.
  bool verify() const;

  void serialize(util::ByteWriter& w) const;
  static Chunk deserialize(util::ByteReader& r);

  /// Streams the chunk to `os` in the same wire format as serialize(),
  /// without building an intermediate byte buffer.
  void write_to(std::ostream& os) const;

  /// Streams a chunk back from `is` (counterpart of write_to), reading the
  /// payload straight into its final buffer. `payload_limit` bounds the
  /// length prefix (e.g. the file size), so a corrupted prefix throws
  /// SerializationError instead of reaching the allocator. Verifies the
  /// checksum like deserialize().
  static Chunk read_from(std::istream& is, std::uint64_t payload_limit);

 private:
  ChunkId id_ = 0;
  std::vector<std::uint8_t> payload_;
  double virtual_scale_ = 1.0;
  double virtual_bytes_ = 0.0;
  std::uint64_t checksum_ = 0;
};

/// Builds a chunk from a typed element array.
template <typename T>
  requires std::is_trivially_copyable_v<T>
Chunk make_chunk(ChunkId id, const std::vector<T>& elements,
                 double virtual_scale = 1.0) {
  std::vector<std::uint8_t> bytes(elements.size() * sizeof(T));
  if (!elements.empty())
    std::memcpy(bytes.data(), elements.data(), bytes.size());
  return Chunk(id, std::move(bytes), virtual_scale);
}

}  // namespace fgp::repository
