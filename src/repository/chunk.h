// chunk.h — the unit of storage, movement and processing.
//
// FREERIDE-G "expects data to be stored in chunks, whose size is manageable
// for the repository nodes". A chunk is a *view*: it holds a refcounted
// immutable PayloadBuffer (what the kernels actually process) plus a
// virtual size — the number of bytes this chunk *represents* at paper
// scale. The repository charges disk and network time against virtual
// bytes, and the runtime scales kernel work by the same factor, so
// MB-scale real payloads faithfully stand in for the paper's GB-scale
// datasets (see DESIGN.md §2).
//
// Because the payload is shared and immutable, copying a chunk copies a
// handle, never bytes: concurrent sweep jobs, caches and rescaled dataset
// views all alias one slab (DESIGN.md §13).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "repository/payload.h"
#include "util/check.h"
#include "util/serial.h"

namespace fgp::repository {

using ChunkId = std::uint64_t;

class Chunk {
 public:
  /// Fixed wire-header size of write_to/read_from: id, virtual_scale,
  /// checksum and payload length, 8 bytes each.
  static constexpr std::uint64_t kWireHeaderBytes = 32;

  Chunk() = default;
  Chunk(ChunkId id, std::vector<std::uint8_t> payload, double virtual_scale);
  /// Wraps an existing (possibly mmap-backed) payload slab without copying.
  Chunk(ChunkId id, std::shared_ptr<const PayloadBuffer> payload,
        double virtual_scale);

  /// A payload-less handle carrying only wire metadata — the streamed
  /// store's resident form (DESIGN.md §15). It sizes, partitions and
  /// rescales exactly like a loaded chunk (real_bytes/virtual_bytes come
  /// from the declared size), but payload access throws until the owning
  /// dataset materializes the bytes through its ChunkSource.
  static Chunk metadata_only(ChunkId id, std::uint64_t real_bytes,
                             std::uint64_t checksum, double virtual_scale);

  /// False only for a metadata_only handle with a non-empty declared
  /// payload; such a chunk must be materialized before its bytes are read.
  bool loaded() const {
    return payload_ != nullptr || declared_real_bytes_ == 0;
  }

  ChunkId id() const { return id_; }
  std::size_t real_bytes() const {
    return payload_ != nullptr ? payload_->size()
                               : static_cast<std::size_t>(declared_real_bytes_);
  }
  double virtual_bytes() const { return virtual_bytes_; }
  /// virtual_bytes / real_bytes; kernels' work is scaled by this.
  double virtual_scale() const { return virtual_scale_; }
  std::uint64_t checksum() const { return checksum_; }

  /// Immutable view of the shared payload bytes. Valid as long as any
  /// chunk (or other holder) keeps the underlying buffer alive. Throws on
  /// an unloaded metadata_only handle: the bytes are still on disk, and
  /// silently returning an empty span would corrupt any kernel result.
  std::span<const std::uint8_t> payload() const {
    FGP_CHECK_MSG(loaded(), "chunk " << id_ << ": payload access on an "
                  "unloaded streamed chunk (materialize it via its dataset)");
    return payload_ != nullptr ? payload_->bytes()
                               : std::span<const std::uint8_t>{};
  }

  /// The refcounted slab backing payload() (null for an empty chunk).
  const std::shared_ptr<const PayloadBuffer>& payload_buffer() const {
    return payload_;
  }

  /// Typed view of the payload. Throws if the size is not a multiple of T.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::span<const T> as_span() const {
    const auto bytes = payload();
    FGP_CHECK_MSG(bytes.size() % sizeof(T) == 0,
                  "chunk " << id_ << " payload (" << bytes.size()
                           << " bytes) not a whole number of elements");
    return {reinterpret_cast<const T*>(bytes.data()),
            bytes.size() / sizeof(T)};
  }

  /// Rebinds the chunk to a new virtual scale (payload and checksum are
  /// untouched). Lets generators produce data once at scale 1 and rescale
  /// to the requested virtual size instead of generating twice.
  void set_virtual_scale(double virtual_scale);

  /// Aliasing view of this chunk at another virtual scale: shares the
  /// payload slab and checksum, copies only the handle and metadata.
  Chunk with_virtual_scale(double virtual_scale) const;

  /// Recomputes the FNV checksum and compares to the stored one.
  bool verify() const;

  void serialize(util::ByteWriter& w) const;
  static Chunk deserialize(util::ByteReader& r);

  /// Streams the chunk to `os` in the same wire format as serialize(),
  /// without building an intermediate byte buffer.
  void write_to(std::ostream& os) const;

  /// Streams a chunk back from `is` (counterpart of write_to), reading the
  /// payload straight into its final buffer. `payload_limit` bounds the
  /// length prefix (e.g. the file size), so a corrupted prefix throws
  /// SerializationError instead of reaching the allocator; a prefix the
  /// stream cannot satisfy (e.g. exactly payload_limit, which still
  /// includes this header) throws the same way. Verifies the checksum like
  /// deserialize().
  static Chunk read_from(std::istream& is, std::uint64_t payload_limit);

 private:
  ChunkId id_ = 0;
  std::shared_ptr<const PayloadBuffer> payload_;
  std::uint64_t declared_real_bytes_ = 0;  ///< metadata_only payload size
  double virtual_scale_ = 1.0;
  double virtual_bytes_ = 0.0;
  std::uint64_t checksum_ = 0;
};

/// Builds a chunk from a typed element array.
template <typename T>
  requires std::is_trivially_copyable_v<T>
Chunk make_chunk(ChunkId id, const std::vector<T>& elements,
                 double virtual_scale = 1.0) {
  std::vector<std::uint8_t> bytes(elements.size() * sizeof(T));
  if (!elements.empty())
    std::memcpy(bytes.data(), elements.data(), bytes.size());
  return Chunk(id, std::move(bytes), virtual_scale);
}

}  // namespace fgp::repository
