// partition.h — how chunks are laid out across data-server nodes and how
// they are distributed to compute nodes.
//
// The FREERIDE-G data server performs "data distribution: each data chunk
// is assigned a destination — a specific processing node". We implement the
// two policies the middleware needs: a *block* layout of chunks over the n
// repository nodes (how the dataset is declustered on disk) and a
// *round-robin* destination assignment over the c compute nodes.
#pragma once

#include <cstddef>
#include <vector>

namespace fgp::repository {

/// Maps each chunk index to an owner in [0, parts). Block layout: first
/// ceil(k/parts) chunks to owner 0, etc. (contiguity matters for disks).
class PartitionMap {
 public:
  /// Block partition of `chunk_count` chunks over `parts` owners.
  static PartitionMap block(std::size_t chunk_count, int parts);
  /// Round-robin partition (chunk i -> i mod parts).
  static PartitionMap round_robin(std::size_t chunk_count, int parts);

  int owner_of(std::size_t chunk_index) const;
  const std::vector<std::size_t>& chunks_of(int part) const;
  int parts() const { return static_cast<int>(by_part_.size()); }
  std::size_t chunk_count() const { return owner_.size(); }

  /// Invariant checks used by tests: every chunk assigned exactly once.
  bool covers_all() const;
  /// Largest minus smallest per-part chunk count (load-imbalance measure).
  std::size_t imbalance() const;

 private:
  std::vector<int> owner_;                      // chunk -> part
  std::vector<std::vector<std::size_t>> by_part_;  // part -> chunks
};

}  // namespace fgp::repository
