#include "repository/partition.h"

#include <algorithm>

#include "util/check.h"

namespace fgp::repository {

PartitionMap PartitionMap::block(std::size_t chunk_count, int parts) {
  FGP_CHECK_MSG(parts > 0, "parts must be positive");
  PartitionMap pm;
  pm.owner_.resize(chunk_count);
  pm.by_part_.resize(static_cast<std::size_t>(parts));
  const std::size_t p = static_cast<std::size_t>(parts);
  // Distribute remainders one-per-part so sizes differ by at most one.
  const std::size_t base = chunk_count / p;
  const std::size_t extra = chunk_count % p;
  std::size_t next = 0;
  for (std::size_t part = 0; part < p; ++part) {
    const std::size_t take = base + (part < extra ? 1 : 0);
    for (std::size_t j = 0; j < take; ++j) {
      pm.owner_[next] = static_cast<int>(part);
      pm.by_part_[part].push_back(next);
      ++next;
    }
  }
  FGP_CHECK(next == chunk_count);
  return pm;
}

PartitionMap PartitionMap::round_robin(std::size_t chunk_count, int parts) {
  FGP_CHECK_MSG(parts > 0, "parts must be positive");
  PartitionMap pm;
  pm.owner_.resize(chunk_count);
  pm.by_part_.resize(static_cast<std::size_t>(parts));
  for (std::size_t i = 0; i < chunk_count; ++i) {
    const int part = static_cast<int>(i % static_cast<std::size_t>(parts));
    pm.owner_[i] = part;
    pm.by_part_[static_cast<std::size_t>(part)].push_back(i);
  }
  return pm;
}

int PartitionMap::owner_of(std::size_t chunk_index) const {
  FGP_CHECK(chunk_index < owner_.size());
  return owner_[chunk_index];
}

const std::vector<std::size_t>& PartitionMap::chunks_of(int part) const {
  FGP_CHECK(part >= 0 && part < parts());
  return by_part_[static_cast<std::size_t>(part)];
}

bool PartitionMap::covers_all() const {
  std::vector<char> seen(owner_.size(), 0);
  for (const auto& part : by_part_)
    for (std::size_t c : part) {
      if (c >= seen.size() || seen[c]) return false;
      seen[c] = 1;
    }
  return std::all_of(seen.begin(), seen.end(), [](char s) { return s == 1; });
}

std::size_t PartitionMap::imbalance() const {
  if (by_part_.empty()) return 0;
  std::size_t lo = by_part_[0].size(), hi = by_part_[0].size();
  for (const auto& part : by_part_) {
    lo = std::min(lo, part.size());
    hi = std::max(hi, part.size());
  }
  return hi - lo;
}

}  // namespace fgp::repository
