// store.h — on-disk persistence for chunked datasets.
//
// A repository node's data server "reads data chunks in from repository
// disk"; this store gives the virtual cluster a real file layout to read:
// one file per chunk plus a manifest, under a directory per dataset.
// Benches keep datasets in memory (the virtual disk time is modeled), but
// the store is exercised by tests and by the quickstart example so the
// repository is a complete subsystem, not a stub.
#pragma once

#include <filesystem>
#include <string>

#include "repository/dataset.h"
#include "repository/stream.h"

namespace fgp::util {
class ThreadPool;
}  // namespace fgp::util

namespace fgp::obs {
class Registry;
class TraceRecorder;
}  // namespace fgp::obs

namespace fgp::repository {

class DatasetStore {
 public:
  explicit DatasetStore(std::filesystem::path root);

  /// As above, plus observability sinks (both may be null). Store IO is
  /// host-machine work, so save/load record *host-domain* artifacts: a
  /// wall-clock span per call (when the recorder has host recording on)
  /// and the integral counters store.saved_chunks / store.saved_bytes /
  /// store.loaded_chunks / store.loaded_bytes — integral so concurrent
  /// chunk IO stays exact. load_mapped() additionally records the
  /// host-domain counter store.mapped_bytes (bytes served via mmap).
  DatasetStore(std::filesystem::path root, obs::TraceRecorder* trace,
               obs::Registry* metrics);

  /// Writes `ds` under root/<ds.meta().name>/ (manifest + chunk files).
  /// Overwrites any existing copy. Chunk files are streamed (no
  /// intermediate byte-buffer copy); a non-null `pool` writes them
  /// concurrently — each chunk has a fixed file name, so the layout is
  /// identical at any pool size.
  void save(const ChunkedDataset& ds, util::ThreadPool* pool = nullptr) const;

  /// Loads a dataset by name. Verifies every chunk checksum; throws
  /// SerializationError on corruption or a malformed manifest. A non-null
  /// `pool` reads chunk files concurrently; chunks land at their manifest
  /// indices, so the dataset is identical at any pool size.
  ChunkedDataset load(const std::string& name,
                      util::ThreadPool* pool = nullptr) const;

  /// Zero-copy variant of load(): each chunk file is mapped read-only and
  /// the returned chunks alias the mapped payload region (no heap copy of
  /// the bytes), after the same checksum verification as load(). The
  /// mappings live exactly as long as the chunks' payload buffers. On
  /// platforms without mmap this falls back to the streamed load() path;
  /// either way the returned dataset is byte-identical to load()'s.
  ChunkedDataset load_mapped(const std::string& name,
                             util::ThreadPool* pool = nullptr) const;

  /// Out-of-core variant of load_mapped(): only the fixed 32-byte wire
  /// headers are read up front (a non-null `pool` scans them
  /// concurrently); the returned dataset holds metadata-only chunk
  /// handles plus a StoreStreamSource that materializes payloads on
  /// demand through budget-bounded mmap windows (stream.h, DESIGN.md
  /// §15). Checksums are verified lazily, at each materialize — reading
  /// everything eagerly is exactly what this mode exists to avoid. Peak
  /// memory for a sequential sweep is ~cfg.budget_bytes + the chunks held
  /// live, independent of dataset size. On platforms without mmap this
  /// falls back to the fully-resident load().
  ChunkedDataset load_streamed(const std::string& name,
                               const StreamConfig& cfg = {},
                               util::ThreadPool* pool = nullptr) const;

  bool exists(const std::string& name) const;
  void remove(const std::string& name) const;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path dir_for(const std::string& name) const;
  std::filesystem::path root_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Registry* metrics_ = nullptr;
};

}  // namespace fgp::repository
