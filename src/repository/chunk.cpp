#include "repository/chunk.h"

namespace fgp::repository {

Chunk::Chunk(ChunkId id, std::vector<std::uint8_t> payload,
             double virtual_scale)
    : id_(id), payload_(std::move(payload)), virtual_scale_(virtual_scale) {
  FGP_CHECK_MSG(virtual_scale_ > 0.0, "virtual_scale must be positive");
  virtual_bytes_ = static_cast<double>(payload_.size()) * virtual_scale_;
  checksum_ = util::fnv1a(payload_.data(), payload_.size());
}

bool Chunk::verify() const {
  return checksum_ == util::fnv1a(payload_.data(), payload_.size());
}

void Chunk::serialize(util::ByteWriter& w) const {
  w.put_u64(id_);
  w.put_f64(virtual_scale_);
  w.put_u64(checksum_);
  w.put_vector(payload_);
}

Chunk Chunk::deserialize(util::ByteReader& r) {
  const ChunkId id = r.get_u64();
  const double scale = r.get_f64();
  const std::uint64_t stored_checksum = r.get_u64();
  auto payload = r.get_vector<std::uint8_t>();
  Chunk c(id, std::move(payload), scale);
  if (c.checksum() != stored_checksum)
    throw util::SerializationError("chunk " + std::to_string(id) +
                                   ": checksum mismatch (corrupted payload)");
  return c;
}

}  // namespace fgp::repository
