#include "repository/chunk.h"

#include <istream>
#include <ostream>

namespace fgp::repository {

namespace {

template <typename T>
  requires std::is_trivially_copyable_v<T>
void write_scalar(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
T read_scalar(std::istream& is) {
  T v;
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is.good())
    throw util::SerializationError("truncated chunk stream: header");
  return v;
}

}  // namespace

Chunk::Chunk(ChunkId id, std::vector<std::uint8_t> payload,
             double virtual_scale)
    : Chunk(id, PayloadBuffer::from_bytes(std::move(payload)), virtual_scale) {
}

Chunk::Chunk(ChunkId id, std::shared_ptr<const PayloadBuffer> payload,
             double virtual_scale)
    : id_(id), payload_(std::move(payload)), virtual_scale_(virtual_scale) {
  FGP_CHECK_MSG(virtual_scale_ > 0.0, "virtual_scale must be positive");
  virtual_bytes_ = static_cast<double>(real_bytes()) * virtual_scale_;
  const auto bytes = this->payload();
  checksum_ = util::fnv1a(bytes.data(), bytes.size());
}

Chunk Chunk::metadata_only(ChunkId id, std::uint64_t real_bytes,
                           std::uint64_t checksum, double virtual_scale) {
  FGP_CHECK_MSG(virtual_scale > 0.0, "virtual_scale must be positive");
  Chunk c;
  c.id_ = id;
  c.declared_real_bytes_ = real_bytes;
  c.virtual_scale_ = virtual_scale;
  c.virtual_bytes_ = static_cast<double>(real_bytes) * virtual_scale;
  c.checksum_ = checksum;
  return c;
}

void Chunk::set_virtual_scale(double virtual_scale) {
  FGP_CHECK_MSG(virtual_scale > 0.0, "virtual_scale must be positive");
  virtual_scale_ = virtual_scale;
  virtual_bytes_ = static_cast<double>(real_bytes()) * virtual_scale_;
}

Chunk Chunk::with_virtual_scale(double virtual_scale) const {
  Chunk view = *this;  // handle copy: the payload slab is shared
  view.set_virtual_scale(virtual_scale);
  return view;
}

bool Chunk::verify() const {
  const auto bytes = payload();
  return checksum_ == util::fnv1a(bytes.data(), bytes.size());
}

void Chunk::serialize(util::ByteWriter& w) const {
  const auto bytes = payload();
  w.put_u64(id_);
  w.put_f64(virtual_scale_);
  w.put_u64(checksum_);
  w.put_u64(bytes.size());
  w.put_bytes(bytes.data(), bytes.size());
}

void Chunk::write_to(std::ostream& os) const {
  const auto bytes = payload();
  write_scalar(os, id_);
  write_scalar(os, virtual_scale_);
  write_scalar(os, checksum_);
  write_scalar(os, static_cast<std::uint64_t>(bytes.size()));
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

Chunk Chunk::read_from(std::istream& is, std::uint64_t payload_limit) {
  const ChunkId id = read_scalar<ChunkId>(is);
  const double scale = read_scalar<double>(is);
  const std::uint64_t stored_checksum = read_scalar<std::uint64_t>(is);
  const std::uint64_t n = read_scalar<std::uint64_t>(is);
  if (n > payload_limit)
    throw util::SerializationError(
        "chunk " + std::to_string(id) + ": payload length " +
        std::to_string(n) + " exceeds limit " + std::to_string(payload_limit));
  std::vector<std::uint8_t> payload(n);
  if (n != 0) {
    // The n == 0 case skips the read entirely: payload.data() may be null
    // on an empty vector, and trailing bytes after a zero-length payload
    // must not poison the stream state.
    is.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(n));
    if (!is.good() || static_cast<std::uint64_t>(is.gcount()) != n)
      throw util::SerializationError("truncated chunk stream: payload");
  }
  Chunk c(id, std::move(payload), scale);
  if (c.checksum() != stored_checksum)
    throw util::SerializationError("chunk " + std::to_string(id) +
                                   ": checksum mismatch (corrupted payload)");
  return c;
}

Chunk Chunk::deserialize(util::ByteReader& r) {
  const ChunkId id = r.get_u64();
  const double scale = r.get_f64();
  const std::uint64_t stored_checksum = r.get_u64();
  auto payload = r.get_vector<std::uint8_t>();
  Chunk c(id, std::move(payload), scale);
  if (c.checksum() != stored_checksum)
    throw util::SerializationError("chunk " + std::to_string(id) +
                                   ": checksum mismatch (corrupted payload)");
  return c;
}

}  // namespace fgp::repository
