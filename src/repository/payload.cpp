#include "repository/payload.h"

#include "util/serial.h"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define FGP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FGP_HAVE_MMAP 0
#endif

namespace fgp::repository {

std::shared_ptr<const PayloadBuffer> PayloadBuffer::from_bytes(
    std::vector<std::uint8_t> bytes) {
  return std::make_shared<const PayloadBuffer>(Token{}, std::move(bytes));
}

bool PayloadBuffer::mmap_supported() { return FGP_HAVE_MMAP != 0; }

std::shared_ptr<const PayloadBuffer> PayloadBuffer::from_view(
    std::shared_ptr<const void> owner, const std::uint8_t* data,
    std::size_t size) {
  return std::make_shared<const PayloadBuffer>(Token{}, std::move(owner),
                                               data, size);
}

PayloadBuffer::PayloadBuffer(Token, std::shared_ptr<const void> owner,
                             const std::uint8_t* data, std::size_t size)
    : owner_(std::move(owner)), data_(data), size_(size) {}

PayloadBuffer::PayloadBuffer(Token, std::vector<std::uint8_t> heap)
    : heap_(std::move(heap)), data_(heap_.data()), size_(heap_.size()) {}

PayloadBuffer::PayloadBuffer(Token, void* map_base, std::size_t map_length,
                             std::size_t view_offset, std::size_t view_length)
    : map_base_(map_base),
      map_length_(map_length),
      data_(static_cast<const std::uint8_t*>(map_base) + view_offset),
      size_(view_length) {}

#if FGP_HAVE_MMAP

std::shared_ptr<const PayloadBuffer> PayloadBuffer::map_file(
    const std::filesystem::path& path, std::size_t view_offset,
    std::size_t view_length) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw util::SerializationError("cannot open " + path.string() +
                                   " for mapping");
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw util::SerializationError("cannot stat " + path.string());
  }
  const auto file_size = static_cast<std::size_t>(st.st_size);
  if (file_size == 0 || view_offset > file_size ||
      view_length > file_size - view_offset) {
    ::close(fd);
    throw util::SerializationError(
        "mmap window [" + std::to_string(view_offset) + ", " +
        std::to_string(view_offset + view_length) + ") exceeds " +
        path.string() + " (" + std::to_string(file_size) + " bytes)");
  }
  void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED)
    throw util::SerializationError("mmap failed for " + path.string());
  return std::make_shared<const PayloadBuffer>(Token{}, base, file_size,
                                               view_offset, view_length);
}

PayloadBuffer::~PayloadBuffer() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
}

#else

std::shared_ptr<const PayloadBuffer> PayloadBuffer::map_file(
    const std::filesystem::path& path, std::size_t, std::size_t) {
  throw util::SerializationError("no mmap support on this platform for " +
                                 path.string());
}

PayloadBuffer::~PayloadBuffer() = default;

#endif

}  // namespace fgp::repository
