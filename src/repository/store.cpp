#include "repository/store.h"

#include <fstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace fgp::repository {

namespace fs = std::filesystem;

namespace {

void write_file(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(p, std::ios::binary | std::ios::trunc);
  FGP_CHECK_MSG(os.good(), "cannot open " << p << " for writing");
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  FGP_CHECK_MSG(os.good(), "short write to " << p);
}

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream is(p, std::ios::binary | std::ios::ate);
  if (!is.good())
    throw util::SerializationError("cannot open " + p.string());
  const auto size = static_cast<std::size_t>(is.tellg());
  is.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  is.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (!is.good())
    throw util::SerializationError("short read from " + p.string());
  return bytes;
}

/// Reads and validates a manifest, returning its metadata and chunk count.
std::pair<DatasetMeta, std::uint64_t> read_manifest(const fs::path& dir,
                                                    const std::string& name) {
  const auto manifest_bytes = read_file(dir / "manifest.bin");
  util::ByteReader r(manifest_bytes);
  DatasetMeta meta;
  meta.name = r.get_string();
  meta.schema = r.get_string();
  meta.seed = r.get_u64();
  const std::uint64_t count = r.get_u64();
  if (meta.name != name)
    throw util::SerializationError("manifest name mismatch: expected " + name +
                                   ", found " + meta.name);
  return {std::move(meta), count};
}

}  // namespace

DatasetStore::DatasetStore(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

DatasetStore::DatasetStore(fs::path root, obs::TraceRecorder* trace,
                           obs::Registry* metrics)
    : root_(std::move(root)), trace_(trace), metrics_(metrics) {
  fs::create_directories(root_);
}

fs::path DatasetStore::dir_for(const std::string& name) const {
  FGP_CHECK_MSG(!name.empty() && name.find('/') == std::string::npos,
                "dataset name must be a plain identifier: '" << name << "'");
  return root_ / name;
}

void DatasetStore::save(const ChunkedDataset& ds,
                        util::ThreadPool* pool) const {
  const obs::HostSpan io_span(trace_, "store", "save " + ds.meta().name);
  const fs::path dir = dir_for(ds.meta().name);
  fs::remove_all(dir);
  fs::create_directories(dir);

  util::ByteWriter manifest;
  manifest.put_string(ds.meta().name);
  manifest.put_string(ds.meta().schema);
  manifest.put_u64(ds.meta().seed);
  manifest.put_u64(ds.chunk_count());
  write_file(dir / "manifest.bin", manifest.bytes());

  // Chunk files are independent and their names are fixed by index, so the
  // loop may fan out over the pool; the payload streams straight from the
  // chunk to the file (no intermediate serialization buffer).
  const auto write_chunk = [&](std::size_t i) {
    const fs::path p = dir / ("chunk_" + std::to_string(i) + ".bin");
    std::ofstream os(p, std::ios::binary | std::ios::trunc);
    FGP_CHECK_MSG(os.good(), "cannot open " << p << " for writing");
    ds.chunk(i).write_to(os);
    FGP_CHECK_MSG(os.good(), "short write to " << p);
    os.close();  // flush before sizing the file
    if (metrics_ != nullptr) {
      // Integral increments: exact under concurrent chunk writes.
      metrics_->add("store.saved_chunks", 1.0);
      metrics_->add("store.saved_bytes",
                    static_cast<double>(fs::file_size(p)));
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(ds.chunk_count(), write_chunk);
  } else {
    for (std::size_t i = 0; i < ds.chunk_count(); ++i) write_chunk(i);
  }
}

ChunkedDataset DatasetStore::load(const std::string& name,
                                  util::ThreadPool* pool) const {
  const obs::HostSpan io_span(trace_, "store", "load " + name);
  const fs::path dir = dir_for(name);
  auto [meta, count] = read_manifest(dir, name);

  // Each chunk lands at its manifest index, so the reads may fan out over
  // the pool; the payload streams straight into its final buffer.
  std::vector<Chunk> chunks(count);
  const auto read_chunk = [&](std::size_t i) {
    const fs::path p = dir / ("chunk_" + std::to_string(i) + ".bin");
    std::ifstream is(p, std::ios::binary);
    if (!is.good())
      throw util::SerializationError("cannot open " + p.string());
    const std::uint64_t file_size = fs::file_size(p);
    chunks[i] = Chunk::read_from(is, file_size);
    if (metrics_ != nullptr) {
      metrics_->add("store.loaded_chunks", 1.0);
      metrics_->add("store.loaded_bytes", static_cast<double>(file_size));
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(static_cast<std::size_t>(count), read_chunk);
  } else {
    for (std::uint64_t i = 0; i < count; ++i)
      read_chunk(static_cast<std::size_t>(i));
  }

  ChunkedDataset ds(meta);
  for (auto& c : chunks) ds.add_chunk(std::move(c));
  return ds;
}

ChunkedDataset DatasetStore::load_mapped(const std::string& name,
                                         util::ThreadPool* pool) const {
  if (!PayloadBuffer::mmap_supported()) return load(name, pool);
  const obs::HostSpan io_span(trace_, "store", "load-mapped " + name);
  const fs::path dir = dir_for(name);
  auto [meta, count] = read_manifest(dir, name);

  // Each chunk file is parsed in place: read the fixed 32-byte wire header,
  // bound the payload length by the file, then map the file and hand the
  // payload window to the chunk. The chunk's constructor checksums the
  // mapped bytes, so corruption is caught exactly like the streamed path —
  // only after that verification do the chunks alias the mapping.
  std::vector<Chunk> chunks(count);
  const auto map_chunk = [&](std::size_t i) {
    const fs::path p = dir / ("chunk_" + std::to_string(i) + ".bin");
    std::error_code ec;
    const std::uint64_t file_size = fs::file_size(p, ec);
    if (ec)
      throw util::SerializationError("cannot stat " + p.string() + ": " +
                                     ec.message());
    if (file_size < Chunk::kWireHeaderBytes)
      throw util::SerializationError("truncated chunk file " + p.string());
    std::ifstream is(p, std::ios::binary);
    if (!is.good())
      throw util::SerializationError("cannot open " + p.string());
    std::uint8_t header[Chunk::kWireHeaderBytes];
    is.read(reinterpret_cast<char*>(header), sizeof(header));
    if (!is.good())
      throw util::SerializationError("truncated chunk stream: header");
    util::ByteReader hr(header, sizeof(header));
    const ChunkId id = hr.get_u64();
    const double scale = hr.get_f64();
    const std::uint64_t stored_checksum = hr.get_u64();
    const std::uint64_t n = hr.get_u64();
    if (n > file_size - Chunk::kWireHeaderBytes)
      throw util::SerializationError(
          "chunk " + std::to_string(id) + ": payload length " +
          std::to_string(n) + " exceeds file " + p.string());
    auto payload = PayloadBuffer::map_file(p, Chunk::kWireHeaderBytes,
                                           static_cast<std::size_t>(n));
    Chunk c(id, std::move(payload), scale);
    if (c.checksum() != stored_checksum)
      throw util::SerializationError(
          "chunk " + std::to_string(id) +
          ": checksum mismatch (corrupted payload)");
    chunks[i] = std::move(c);
    if (metrics_ != nullptr) {
      metrics_->add("store.loaded_chunks", 1.0);
      metrics_->add("store.loaded_bytes", static_cast<double>(file_size));
      metrics_->add("store.mapped_bytes", static_cast<double>(file_size),
                    obs::Domain::Host);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(static_cast<std::size_t>(count), map_chunk);
  } else {
    for (std::uint64_t i = 0; i < count; ++i)
      map_chunk(static_cast<std::size_t>(i));
  }

  ChunkedDataset ds(meta);
  for (auto& c : chunks) ds.add_chunk(std::move(c));
  return ds;
}

ChunkedDataset DatasetStore::load_streamed(const std::string& name,
                                           const StreamConfig& cfg,
                                           util::ThreadPool* pool) const {
  if (!PayloadBuffer::mmap_supported()) return load(name, pool);
  const obs::HostSpan io_span(trace_, "store", "load-streamed " + name);
  const fs::path dir = dir_for(name);
  auto [meta, count] = read_manifest(dir, name);

  // Metadata scan: only each chunk file's fixed wire header is read here
  // — 32 bytes per chunk regardless of payload size, so the scan touches
  // O(chunks) bytes where load() touches O(dataset). Entries land at
  // their manifest indices, so the scan may fan out over the pool.
  std::vector<StoreStreamSource::Entry> entries(count);
  const auto scan_chunk = [&](std::size_t i) {
    entries[i] = StoreStreamSource::read_entry(
        dir / ("chunk_" + std::to_string(i) + ".bin"));
  };
  if (pool != nullptr) {
    pool->parallel_for(static_cast<std::size_t>(count), scan_chunk);
  } else {
    for (std::uint64_t i = 0; i < count; ++i)
      scan_chunk(static_cast<std::size_t>(i));
  }

  ChunkedDataset ds(meta);
  for (const auto& e : entries)
    ds.add_chunk(Chunk::metadata_only(e.id, e.payload_bytes, e.checksum,
                                      e.virtual_scale));
  ds.attach_source(std::make_shared<const StoreStreamSource>(
      std::move(entries), cfg, metrics_));
  return ds;
}

bool DatasetStore::exists(const std::string& name) const {
  return fs::exists(dir_for(name) / "manifest.bin");
}

void DatasetStore::remove(const std::string& name) const {
  fs::remove_all(dir_for(name));
}

}  // namespace fgp::repository
