// stream.h — bounded streaming window layer for out-of-core datasets.
//
// PR 5's load_mapped maps whole chunk files, so the largest dataset a
// sweep can touch is bounded by host memory. This layer removes that
// bound: chunk files are read through fixed-size, page-aligned mmap
// windows (PROT_READ / MAP_PRIVATE, madvise WILLNEED on map and DONTNEED
// on recycle) recycled under a hard byte budget, so a dataset 10–100×
// larger than RAM streams through the repository with a flat resident
// set. Ownership and lifetime rules are DESIGN.md §15:
//
//   * a WindowPool retains at most budget_bytes of mapped windows (LRU);
//   * a window evicted from the pool stays alive while any chunk view
//     still borrows it (shared_ptr keep-alive via PayloadBuffer::from_view)
//     and is unmapped when the last borrower drops;
//   * a chunk whose payload fits one window aliases the mapping
//     (zero-copy); a payload straddling window boundaries is stitched
//     into a heap slab window by window — the fallback the contract
//     requires when a window is smaller than a chunk — so any
//     (window, chunk-size) combination is correct, merely slower.
//
// The StoreStreamSource below is the ChunkSource behind
// DatasetStore::load_streamed: it re-verifies every fetched payload
// against the stored checksum, so streamed bytes are as trustworthy as
// loaded ones, and it is thread-safe for concurrent fetch/prefetch from
// pool workers.
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "repository/dataset.h"

namespace fgp::obs {
class Registry;
}  // namespace fgp::obs

namespace fgp::repository {

/// Streaming knobs. window_bytes is rounded up to the page size; any
/// budget/window/chunk-size combination is correct (degenerate ones just
/// recycle more).
struct StreamConfig {
  std::size_t budget_bytes = std::size_t{8} << 20;    ///< pool retention cap
  std::size_t window_bytes = std::size_t{256} << 10;  ///< per-window span
};

/// Thread-safe LRU pool of mapped file windows under a hard byte budget.
/// Keys are (chunk index, window index); values are refcounted mappings,
/// so eviction never invalidates a live view. Host-domain counters
/// (store.window_maps / store.window_recycles) go to `metrics` — mapping
/// and recycling depend on host timing, never on results.
class WindowPool {
 public:
  /// One mapped window: [offset, offset + length) of a chunk file.
  class Window {
   public:
    Window(void* base, std::size_t length) : base_(base), length_(length) {}
    ~Window();
    Window(const Window&) = delete;
    Window& operator=(const Window&) = delete;
    const std::uint8_t* data() const {
      return static_cast<const std::uint8_t*>(base_);
    }
    std::size_t length() const { return length_; }

   private:
    void* base_ = nullptr;
    std::size_t length_ = 0;
  };

  WindowPool(StreamConfig cfg, obs::Registry* metrics);

  /// Maps (or returns the resident) window `window_index` of `path`, whose
  /// current size must still be `expected_file_size` (a typed
  /// SerializationError reports a file truncated or grown since the
  /// metadata scan). `was_resident` (optional) reports whether the window
  /// was already pooled — the prefetch hit signal. Eviction keeps the pool
  /// at or under budget_bytes afterwards (the returned window itself
  /// always survives its own acquisition).
  std::shared_ptr<const Window> acquire(std::size_t chunk_index,
                                        const std::filesystem::path& path,
                                        std::uint64_t expected_file_size,
                                        std::size_t window_index,
                                        bool* was_resident = nullptr);

  /// Normalized configuration (window_bytes page-rounded).
  const StreamConfig& config() const { return cfg_; }

  /// Bytes of mapped windows the pool currently retains (<= budget after
  /// every acquire; live borrowed windows outside the pool don't count).
  std::size_t resident_bytes() const;

 private:
  using Key = std::pair<std::size_t, std::size_t>;  // (chunk, window)
  struct Slot {
    Key key;
    std::shared_ptr<const Window> window;
  };

  StreamConfig cfg_;
  obs::Registry* metrics_ = nullptr;
  mutable std::mutex mu_;
  std::list<Slot> lru_;  // front = most recently used
  std::map<Key, std::list<Slot>::iterator> index_;
  std::size_t resident_bytes_ = 0;
};

/// ChunkSource streaming a saved dataset's chunk files through a
/// WindowPool (the engine behind DatasetStore::load_streamed). Counters:
/// store.windowed_bytes and store.stitched_chunks are Deterministic
/// (integral, fixed by the fetch sequence); prefetch hits/misses and
/// window maps/recycles are Host (they depend on pool timing).
class StoreStreamSource final : public ChunkSource {
 public:
  /// Per-chunk metadata gathered by the load_streamed header scan.
  struct Entry {
    std::filesystem::path path;
    std::uint64_t file_size = 0;
    ChunkId id = 0;
    double virtual_scale = 1.0;
    std::uint64_t checksum = 0;
    std::uint64_t payload_bytes = 0;
  };

  /// Parses the fixed 32-byte wire header of one chunk file into an
  /// Entry, validating the payload length against the file size. Throws
  /// util::SerializationError on a missing, truncated or oversized file.
  static Entry read_entry(const std::filesystem::path& path);

  StoreStreamSource(std::vector<Entry> entries, StreamConfig cfg,
                    obs::Registry* metrics);

  Chunk fetch(std::size_t index) const override;
  void prefetch(std::size_t index) const override;

  std::size_t chunk_count() const { return entries_.size(); }
  const Entry& entry(std::size_t i) const { return entries_.at(i); }
  const StreamConfig& config() const { return pool_.config(); }
  /// Window bytes currently retained by the pool (test/bench hook).
  std::size_t resident_window_bytes() const { return pool_.resident_bytes(); }

 private:
  std::vector<Entry> entries_;
  obs::Registry* metrics_ = nullptr;
  mutable WindowPool pool_;
};

}  // namespace fgp::repository
