// dataset.h — a chunked dataset: ordered chunks plus descriptive metadata.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "repository/chunk.h"

namespace fgp::obs {
class Registry;
}  // namespace fgp::obs

namespace fgp::repository {

/// Metadata travelling with a dataset (and recorded into profiles: the
/// prediction model's "s" is total_virtual_bytes()).
struct DatasetMeta {
  std::string name;
  std::string schema;  ///< free-form element description, e.g. "f64 point dim=8"
  std::uint64_t seed = 0;
};

/// Lazy payload provider for a streamed dataset (DESIGN.md §15): the
/// dataset holds metadata_only chunk handles and pulls bytes through its
/// source on demand. Implementations must be thread-safe — the runtime
/// fetches and prefetches from pool workers concurrently — and must verify
/// the fetched bytes against the stored checksum (throwing
/// util::SerializationError on mismatch), so a materialized chunk is as
/// trustworthy as a loaded one.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Returns chunk `index` with its payload resident, at the scale the
  /// chunk was stored with. Throws on IO errors or corruption.
  virtual Chunk fetch(std::size_t index) const = 0;

  /// Hint that chunk `index` is about to be fetched: readies whatever
  /// backing state makes the fetch cheap (mapped windows, page cache).
  /// Never throws and never affects results — a prefetch is free to be a
  /// no-op, and a failed prefetch just makes the later fetch slower (the
  /// fetch re-raises any real error).
  virtual void prefetch(std::size_t index) const = 0;
};

class ChunkedDataset {
 public:
  ChunkedDataset() = default;
  explicit ChunkedDataset(DatasetMeta meta) : meta_(std::move(meta)) {}

  const DatasetMeta& meta() const { return meta_; }
  DatasetMeta& meta() { return meta_; }

  void add_chunk(Chunk c);

  std::size_t chunk_count() const { return chunks_.size(); }
  const Chunk& chunk(std::size_t i) const { return chunks_.at(i); }
  const std::vector<Chunk>& chunks() const { return chunks_; }

  /// The prediction model's dataset size "s" (bytes at paper scale).
  double total_virtual_bytes() const { return total_virtual_bytes_; }
  std::size_t total_real_bytes() const { return total_real_bytes_; }

  /// Rescales every chunk to `virtual_scale` and recomputes the virtual
  /// total. Payloads and checksums are untouched: the result is exactly the
  /// dataset the generator would have produced at that scale, without
  /// generating twice (the probe-then-rescale pattern in bench/common.cpp).
  void set_uniform_virtual_scale(double virtual_scale);

  /// Aliasing *view* of this dataset with every chunk rebound to
  /// `virtual_scale`: chunk handles are copied, payload slabs are shared
  /// (zero bytes moved), so concurrent sweep points over many scales all
  /// read one generated dataset (DESIGN.md §13). `metrics` (optional)
  /// receives the deterministic counter payload.shared_views — one
  /// increment per chunk view created.
  ChunkedDataset with_uniform_virtual_scale(
      double virtual_scale, obs::Registry* metrics = nullptr) const;

  /// True when every chunk's checksum verifies (streamed chunks are
  /// materialized to be checked; the fetch itself throws on corruption).
  bool verify_all() const;

  /// Attaches the lazy payload source the metadata_only chunks of a
  /// streamed dataset resolve through. Views made by
  /// with_uniform_virtual_scale share the source (and its window pool).
  void attach_source(std::shared_ptr<const ChunkSource> source) {
    source_ = std::move(source);
  }
  const std::shared_ptr<const ChunkSource>& source() const { return source_; }
  /// True when chunk payloads live behind a ChunkSource.
  bool streamed() const { return source_ != nullptr; }

  /// Chunk `i` with its payload guaranteed resident: loaded chunks (and
  /// datasets without a source) come back as plain handle copies; unloaded
  /// streamed chunks are fetched through the source and rebound to this
  /// dataset's virtual scale for `i` (so rescaled views materialize at the
  /// view's scale, not the stored one). The returned handle owns the bytes
  /// for its lifetime — dropping it releases them, which is what keeps a
  /// streamed pass's resident set flat (DESIGN.md §15).
  Chunk materialize(std::size_t i) const;

  /// Forwards a prefetch hint for chunk `i` to the source (no-op when the
  /// dataset is not streamed or the chunk is already loaded).
  void prefetch(std::size_t i) const;

 private:
  DatasetMeta meta_;
  std::vector<Chunk> chunks_;
  std::shared_ptr<const ChunkSource> source_;
  double total_virtual_bytes_ = 0.0;
  std::size_t total_real_bytes_ = 0;
};

}  // namespace fgp::repository
