// dataset.h — a chunked dataset: ordered chunks plus descriptive metadata.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "repository/chunk.h"

namespace fgp::obs {
class Registry;
}  // namespace fgp::obs

namespace fgp::repository {

/// Metadata travelling with a dataset (and recorded into profiles: the
/// prediction model's "s" is total_virtual_bytes()).
struct DatasetMeta {
  std::string name;
  std::string schema;  ///< free-form element description, e.g. "f64 point dim=8"
  std::uint64_t seed = 0;
};

class ChunkedDataset {
 public:
  ChunkedDataset() = default;
  explicit ChunkedDataset(DatasetMeta meta) : meta_(std::move(meta)) {}

  const DatasetMeta& meta() const { return meta_; }
  DatasetMeta& meta() { return meta_; }

  void add_chunk(Chunk c);

  std::size_t chunk_count() const { return chunks_.size(); }
  const Chunk& chunk(std::size_t i) const { return chunks_.at(i); }
  const std::vector<Chunk>& chunks() const { return chunks_; }

  /// The prediction model's dataset size "s" (bytes at paper scale).
  double total_virtual_bytes() const { return total_virtual_bytes_; }
  std::size_t total_real_bytes() const { return total_real_bytes_; }

  /// Rescales every chunk to `virtual_scale` and recomputes the virtual
  /// total. Payloads and checksums are untouched: the result is exactly the
  /// dataset the generator would have produced at that scale, without
  /// generating twice (the probe-then-rescale pattern in bench/common.cpp).
  void set_uniform_virtual_scale(double virtual_scale);

  /// Aliasing *view* of this dataset with every chunk rebound to
  /// `virtual_scale`: chunk handles are copied, payload slabs are shared
  /// (zero bytes moved), so concurrent sweep points over many scales all
  /// read one generated dataset (DESIGN.md §13). `metrics` (optional)
  /// receives the deterministic counter payload.shared_views — one
  /// increment per chunk view created.
  ChunkedDataset with_uniform_virtual_scale(
      double virtual_scale, obs::Registry* metrics = nullptr) const;

  /// True when every chunk's checksum verifies.
  bool verify_all() const;

 private:
  DatasetMeta meta_;
  std::vector<Chunk> chunks_;
  double total_virtual_bytes_ = 0.0;
  std::size_t total_real_bytes_ = 0;
};

}  // namespace fgp::repository
