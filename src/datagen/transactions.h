// transactions.h — synthetic market-basket data for apriori association
// mining (paper §2.2 names apriori as a canonical generalized-reduction
// application).
//
// Transactions draw random items plus a few *planted frequent itemsets*
// that appear together in a configurable fraction of transactions, so
// tests can assert that mining recovers exactly the planted structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "repository/dataset.h"

namespace fgp::datagen {

using Item = std::uint16_t;
using Itemset = std::vector<Item>;  ///< strictly ascending item ids

/// A view over one transaction inside a chunk payload.
struct Transaction {
  std::span<const Item> items;  ///< ascending
};

/// Parses a transactions chunk: returns item spans into the payload.
/// Layout: u32 txn_count, then per transaction u16 len + len u16 items.
std::vector<Transaction> parse_transactions(const repository::Chunk& chunk);

struct PlantedPattern {
  Itemset items;
  double frequency = 0.1;  ///< fraction of transactions containing it
};

struct TransactionsSpec {
  std::uint64_t num_transactions = 20000;
  Item num_items = 200;           ///< catalogue size
  int random_items_per_txn = 6;   ///< noise items per transaction
  std::vector<PlantedPattern> patterns;
  std::uint64_t transactions_per_chunk = 1000;
  double virtual_scale = 1.0;
  std::uint64_t seed = 17;
  std::string name = "transactions";
};

/// A spec with three overlapping planted patterns (sensible defaults).
TransactionsSpec default_market_baskets(std::uint64_t num_transactions,
                                        std::uint64_t seed);

struct TransactionsDataset {
  repository::ChunkedDataset dataset;
  std::vector<PlantedPattern> patterns;
  std::uint64_t num_transactions = 0;
};

TransactionsDataset generate_transactions(const TransactionsSpec& spec);

}  // namespace fgp::datagen
