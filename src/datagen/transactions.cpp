#include "datagen/transactions.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "util/check.h"
#include "util/rng.h"
#include "util/serial.h"

namespace fgp::datagen {

std::vector<Transaction> parse_transactions(const repository::Chunk& chunk) {
  const auto payload = chunk.payload();
  util::ByteReader r(payload.data(), payload.size());
  const std::uint32_t count = r.get_u32();
  std::vector<Transaction> out;
  out.reserve(count);
  std::size_t offset = sizeof(std::uint32_t);
  for (std::uint32_t t = 0; t < count; ++t) {
    const std::uint16_t len = r.get<std::uint16_t>();
    offset += sizeof(std::uint16_t);
    FGP_CHECK_MSG(r.remaining() >= static_cast<std::size_t>(len) * sizeof(Item),
                  "transactions chunk " << chunk.id() << " truncated");
    Transaction txn;
    txn.items = {reinterpret_cast<const Item*>(payload.data() + offset), len};
    out.push_back(txn);
    for (std::uint16_t i = 0; i < len; ++i) r.get<Item>();
    offset += static_cast<std::size_t>(len) * sizeof(Item);
  }
  FGP_CHECK_MSG(r.exhausted(),
                "transactions chunk " << chunk.id() << " has trailing bytes");
  return out;
}

TransactionsSpec default_market_baskets(std::uint64_t num_transactions,
                                        std::uint64_t seed) {
  TransactionsSpec spec;
  spec.num_transactions = num_transactions;
  spec.seed = seed;
  spec.patterns = {
      {{3, 17, 42}, 0.18},
      {{17, 42}, 0.10},  // extra support on a sub-pattern
      {{5, 99}, 0.22},
      {{120, 121, 122, 123}, 0.12},
  };
  return spec;
}

TransactionsDataset generate_transactions(const TransactionsSpec& spec) {
  FGP_CHECK(spec.num_transactions > 0);
  FGP_CHECK(spec.num_items > 1);
  FGP_CHECK(spec.transactions_per_chunk > 0);
  for (const auto& p : spec.patterns) {
    FGP_CHECK_MSG(std::is_sorted(p.items.begin(), p.items.end()) &&
                      std::adjacent_find(p.items.begin(), p.items.end()) ==
                          p.items.end(),
                  "planted patterns must be strictly ascending");
    FGP_CHECK(p.frequency > 0.0 && p.frequency <= 1.0);
    for (const Item item : p.items) FGP_CHECK(item < spec.num_items);
  }

  util::Rng rng(spec.seed);
  TransactionsDataset out;
  out.patterns = spec.patterns;
  out.num_transactions = spec.num_transactions;

  repository::DatasetMeta meta;
  meta.name = spec.name;
  meta.schema = "transactions u16 items=" + std::to_string(spec.num_items);
  meta.seed = spec.seed;
  out.dataset = repository::ChunkedDataset(meta);

  std::uint64_t remaining = spec.num_transactions;
  repository::ChunkId next_id = 0;
  while (remaining > 0) {
    const std::uint64_t take =
        std::min(remaining, spec.transactions_per_chunk);
    util::Rng crng = rng.fork(next_id + 1);
    util::ByteWriter w;
    w.put_u32(static_cast<std::uint32_t>(take));
    for (std::uint64_t t = 0; t < take; ++t) {
      std::set<Item> items;
      for (const auto& p : spec.patterns)
        if (crng.next_double() < p.frequency)
          items.insert(p.items.begin(), p.items.end());
      for (int i = 0; i < spec.random_items_per_txn; ++i)
        items.insert(static_cast<Item>(crng.next_below(spec.num_items)));
      w.put<std::uint16_t>(static_cast<std::uint16_t>(items.size()));
      for (const Item item : items) w.put<Item>(item);
    }
    out.dataset.add_chunk(
        repository::Chunk(next_id, w.take(), spec.virtual_scale));
    ++next_id;
    remaining -= take;
  }
  return out;
}

}  // namespace fgp::datagen
