// flowfield3d.h — volumetric CFD output for 3-D vortex detection.
//
// The paper's feature-mining approach "extract[s] and us[es] volumetric
// regions to represent features in a CFD simulation output". This
// generator produces a 3-D velocity field with planted vortex *tubes*
// (Rankine cross-section around a z-aligned axis segment) over background
// flow plus noise, chunked into z-slabs with one-plane halos so the curl
// stencil needs no communication — the volumetric analogue of the 2-D
// generator in flowfield.h.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "repository/dataset.h"

namespace fgp::datagen {

struct Vec3f {
  float u = 0.0f, v = 0.0f, w = 0.0f;
};

/// The chunk *owns* planes [z0, z0+planes) but *stores*
/// [stored_z0, stored_z0+stored_planes) including the stencil halo.
struct VolumeChunkHeader {
  std::uint32_t z0 = 0;
  std::uint32_t planes = 0;
  std::uint32_t stored_z0 = 0;
  std::uint32_t stored_planes = 0;
  std::uint32_t nx = 0;
  std::uint32_t ny = 0;
  std::uint32_t nz = 0;  ///< total planes in the volume
};

struct VolumeChunkView {
  VolumeChunkHeader header;
  std::span<const Vec3f> cells;  ///< [stored_planes][ny][nx]

  const Vec3f& at(std::uint32_t gz, std::uint32_t gy, std::uint32_t gx) const {
    return cells[(static_cast<std::size_t>(gz - header.stored_z0) * header.ny +
                  gy) *
                     header.nx +
                 gx];
  }
};

VolumeChunkView parse_volume_chunk(const repository::Chunk& chunk);

/// A planted vortex tube: Rankine swirl of radius `core_radius` around the
/// z-aligned axis through (cx, cy), active for z in [z_lo, z_hi).
struct PlantedTube {
  double cx = 0.0, cy = 0.0;
  double core_radius = 0.0;
  double z_lo = 0.0, z_hi = 0.0;
  double circulation = 0.0;  ///< signed
};

struct Flow3dSpec {
  int nx = 48, ny = 48, nz = 96;
  int num_tubes = 3;
  double min_radius = 4.0, max_radius = 8.0;
  double min_length = 20.0;
  double background_u = 0.1;
  double noise = 0.01;
  int planes_per_chunk = 4;
  double virtual_scale = 1.0;
  std::uint64_t seed = 23;
  std::string name = "flowfield3d";
};

struct Flow3dDataset {
  repository::ChunkedDataset dataset;
  int nx = 0, ny = 0, nz = 0;
  std::vector<PlantedTube> tubes;
};

Flow3dDataset generate_flowfield3d(const Flow3dSpec& spec);

}  // namespace fgp::datagen
