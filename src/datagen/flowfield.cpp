#include "datagen/flowfield.h"

#include <cmath>
#include <cstring>

#include "util/check.h"
#include "util/rng.h"

namespace fgp::datagen {

FieldChunkView parse_field_chunk(const repository::Chunk& chunk) {
  const auto& payload = chunk.payload();
  FGP_CHECK_MSG(payload.size() >= sizeof(FieldChunkHeader),
                "flow chunk " << chunk.id() << " too small for header");
  FieldChunkView view;
  std::memcpy(&view.header, payload.data(), sizeof(FieldChunkHeader));
  const auto& h = view.header;
  FGP_CHECK_MSG(h.stored_row0 <= h.row0 &&
                    h.row0 + h.rows <= h.stored_row0 + h.stored_rows &&
                    h.stored_row0 + h.stored_rows <= h.height,
                "flow chunk " << chunk.id() << ": inconsistent row ranges");
  const std::size_t cell_bytes = payload.size() - sizeof(FieldChunkHeader);
  const std::size_t expected =
      static_cast<std::size_t>(h.stored_rows) * h.width * sizeof(Vec2f);
  FGP_CHECK_MSG(cell_bytes == expected,
                "flow chunk " << chunk.id() << ": payload " << cell_bytes
                              << " bytes, header implies " << expected);
  view.cells = {
      reinterpret_cast<const Vec2f*>(payload.data() + sizeof(FieldChunkHeader)),
      cell_bytes / sizeof(Vec2f)};
  return view;
}

namespace {

/// Velocity induced at (x, y) by one Rankine vortex: solid-body rotation
/// inside the core, potential-flow decay outside.
Vec2f induced_velocity(const PlantedVortex& vx, double x, double y) {
  const double dx = x - vx.cx;
  const double dy = y - vx.cy;
  const double r = std::sqrt(dx * dx + dy * dy);
  const double two_pi = 6.283185307179586;
  if (r < 1e-9) return {0.0f, 0.0f};
  double vtheta;
  if (r < vx.core_radius) {
    vtheta = vx.circulation * r / (two_pi * vx.core_radius * vx.core_radius);
  } else {
    vtheta = vx.circulation / (two_pi * r);
  }
  // Tangential direction: (-dy, dx)/r.
  return {static_cast<float>(-vtheta * dy / r),
          static_cast<float>(vtheta * dx / r)};
}

}  // namespace

FlowDataset generate_flowfield(const FlowSpec& spec) {
  FGP_CHECK(spec.width > 2 && spec.height > 2);
  FGP_CHECK(spec.rows_per_chunk > 0);
  FGP_CHECK(spec.num_vortices >= 0);
  FGP_CHECK(spec.min_radius > 0 && spec.max_radius >= spec.min_radius);

  util::Rng rng(spec.seed);

  FlowDataset out;
  out.width = spec.width;
  out.height = spec.height;

  for (int i = 0; i < spec.num_vortices; ++i) {
    PlantedVortex vx;
    vx.core_radius = rng.uniform(spec.min_radius, spec.max_radius);
    const double margin = vx.core_radius + 2.0;
    vx.cx = rng.uniform(margin, spec.width - margin);
    vx.cy = rng.uniform(margin, spec.height - margin);
    const double sign = rng.next_double() < 0.5 ? -1.0 : 1.0;
    // Rankine core vorticity is Γ/(π R²); pick Γ so the peak sits well
    // above the detection threshold regardless of the drawn radius.
    const double peak_vorticity = rng.uniform(1.6, 3.0);
    vx.circulation = sign * peak_vorticity * 3.141592653589793 *
                     vx.core_radius * vx.core_radius;
    out.vortices.push_back(vx);
  }

  // Synthesize the full field once so halo rows shared by adjacent chunks
  // are bit-identical.
  std::vector<Vec2f> field(static_cast<std::size_t>(spec.width) * spec.height);
  for (int y = 0; y < spec.height; ++y) {
    for (int x = 0; x < spec.width; ++x) {
      Vec2f cell{static_cast<float>(spec.background_u +
                                    spec.noise * rng.next_gaussian()),
                 static_cast<float>(spec.noise * rng.next_gaussian())};
      for (const auto& vx : out.vortices) {
        const Vec2f iv = induced_velocity(vx, x, y);
        cell.u += iv.u;
        cell.v += iv.v;
      }
      field[static_cast<std::size_t>(y) * spec.width + x] = cell;
    }
  }

  repository::DatasetMeta meta;
  meta.name = spec.name;
  meta.schema = "flowfield f32 uv " + std::to_string(spec.width) + "x" +
                std::to_string(spec.height);
  meta.seed = spec.seed;
  out.dataset = repository::ChunkedDataset(meta);

  repository::ChunkId next_id = 0;
  for (int row0 = 0; row0 < spec.height; row0 += spec.rows_per_chunk) {
    const int rows = std::min(spec.rows_per_chunk, spec.height - row0);
    const int stored_row0 = std::max(0, row0 - 1);
    const int stored_end = std::min(spec.height, row0 + rows + 1);
    const int stored_rows = stored_end - stored_row0;

    FieldChunkHeader header;
    header.row0 = static_cast<std::uint32_t>(row0);
    header.rows = static_cast<std::uint32_t>(rows);
    header.stored_row0 = static_cast<std::uint32_t>(stored_row0);
    header.stored_rows = static_cast<std::uint32_t>(stored_rows);
    header.width = static_cast<std::uint32_t>(spec.width);
    header.height = static_cast<std::uint32_t>(spec.height);

    std::vector<std::uint8_t> payload(sizeof(FieldChunkHeader) +
                                      static_cast<std::size_t>(stored_rows) *
                                          spec.width * sizeof(Vec2f));
    std::memcpy(payload.data(), &header, sizeof(header));
    std::memcpy(payload.data() + sizeof(header),
                field.data() +
                    static_cast<std::size_t>(stored_row0) * spec.width,
                static_cast<std::size_t>(stored_rows) * spec.width *
                    sizeof(Vec2f));
    out.dataset.add_chunk(
        repository::Chunk(next_id, std::move(payload), spec.virtual_scale));
    ++next_id;
  }
  return out;
}

}  // namespace fgp::datagen
