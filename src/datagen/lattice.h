// lattice.h — synthetic molecular-dynamics snapshots for the defect
// detection and categorization application.
//
// The paper's application uncovers "defect nucleation and growth processes
// in Silicon lattices". We generate a simple-cubic lattice of atoms with
// thermal displacement noise and plant three defect species with known
// positions and shapes: vacancies (missing atoms), interstitials (extra
// atoms between sites) and displaced clusters (atoms pushed off-site).
// Chunks are z-slabs; planted defects may span slab boundaries so the
// cross-node defect joining in the global combine is exercised for real.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "repository/dataset.h"

namespace fgp::datagen {

/// One atom position (lattice units: ideal sites at integer coordinates).
struct Atom {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;
};

/// Leading bytes of every lattice chunk payload.
struct LatticeChunkHeader {
  std::uint32_t z0 = 0;      ///< first lattice plane in this slab
  std::uint32_t zslabs = 0;  ///< planes stored
  std::uint32_t nx = 0;
  std::uint32_t ny = 0;
  std::uint32_t nz = 0;      ///< total planes in the lattice
  float displacement_tol = 0.25f;  ///< off-site threshold, lattice units
};

struct LatticeChunkView {
  LatticeChunkHeader header;
  std::span<const Atom> atoms;
};

LatticeChunkView parse_lattice_chunk(const repository::Chunk& chunk);

enum class DefectKind : std::uint8_t { Vacancy, Interstitial, Displaced };

/// Ground truth for one planted defect: the lattice cells it occupies.
struct PlantedDefect {
  DefectKind kind = DefectKind::Vacancy;
  std::vector<std::array<int, 3>> cells;
};

struct LatticeSpec {
  int nx = 24;
  int ny = 24;
  int nz = 48;
  double thermal_sigma = 0.03;  ///< thermal displacement noise
  int num_vacancy_clusters = 3;
  int num_interstitials = 3;
  int num_displaced_clusters = 2;
  int max_cluster_cells = 4;  ///< cells per planted cluster (1..max)
  int zslabs_per_chunk = 6;
  double virtual_scale = 1.0;
  std::uint64_t seed = 11;
  /// Host threads for slab synthesis. Slab payloads are bit-identical
  /// for every value: each slab consumes its own serially-forked RNG.
  int threads = 1;
  std::string name = "lattice";
};

struct LatticeDataset {
  repository::ChunkedDataset dataset;
  int nx = 0, ny = 0, nz = 0;
  std::vector<PlantedDefect> defects;
};

LatticeDataset generate_lattice(const LatticeSpec& spec);

}  // namespace fgp::datagen
