#include "datagen/flowfield3d.h"

#include <cmath>
#include <cstring>

#include "util/check.h"
#include "util/rng.h"

namespace fgp::datagen {

VolumeChunkView parse_volume_chunk(const repository::Chunk& chunk) {
  const auto& payload = chunk.payload();
  FGP_CHECK_MSG(payload.size() >= sizeof(VolumeChunkHeader),
                "volume chunk " << chunk.id() << " too small for header");
  VolumeChunkView view;
  std::memcpy(&view.header, payload.data(), sizeof(VolumeChunkHeader));
  const auto& h = view.header;
  FGP_CHECK_MSG(h.stored_z0 <= h.z0 &&
                    h.z0 + h.planes <= h.stored_z0 + h.stored_planes &&
                    h.stored_z0 + h.stored_planes <= h.nz,
                "volume chunk " << chunk.id() << ": inconsistent plane ranges");
  const std::size_t cell_bytes = payload.size() - sizeof(VolumeChunkHeader);
  const std::size_t expected = static_cast<std::size_t>(h.stored_planes) *
                               h.ny * h.nx * sizeof(Vec3f);
  FGP_CHECK_MSG(cell_bytes == expected,
                "volume chunk " << chunk.id() << ": payload " << cell_bytes
                                << " bytes, header implies " << expected);
  view.cells = {reinterpret_cast<const Vec3f*>(payload.data() +
                                               sizeof(VolumeChunkHeader)),
                cell_bytes / sizeof(Vec3f)};
  return view;
}

namespace {

/// In-plane swirl of one tube at (x, y), active only inside its z range.
void add_tube_velocity(const PlantedTube& tube, double x, double y, double z,
                       Vec3f& cell) {
  if (z < tube.z_lo || z >= tube.z_hi) return;
  const double dx = x - tube.cx;
  const double dy = y - tube.cy;
  const double r = std::sqrt(dx * dx + dy * dy);
  if (r < 1e-9) return;
  const double two_pi = 6.283185307179586;
  const double vtheta =
      r < tube.core_radius
          ? tube.circulation * r / (two_pi * tube.core_radius *
                                    tube.core_radius)
          : tube.circulation / (two_pi * r);
  cell.u += static_cast<float>(-vtheta * dy / r);
  cell.v += static_cast<float>(vtheta * dx / r);
}

}  // namespace

Flow3dDataset generate_flowfield3d(const Flow3dSpec& spec) {
  FGP_CHECK(spec.nx > 2 && spec.ny > 2 && spec.nz > 2);
  FGP_CHECK(spec.planes_per_chunk > 0);
  FGP_CHECK(spec.min_radius > 0 && spec.max_radius >= spec.min_radius);

  util::Rng rng(spec.seed);
  Flow3dDataset out;
  out.nx = spec.nx;
  out.ny = spec.ny;
  out.nz = spec.nz;

  for (int i = 0; i < spec.num_tubes; ++i) {
    PlantedTube tube;
    tube.core_radius = rng.uniform(spec.min_radius, spec.max_radius);
    const double margin = tube.core_radius + 2.0;
    tube.cx = rng.uniform(margin, spec.nx - margin);
    tube.cy = rng.uniform(margin, spec.ny - margin);
    // Tubes span the full depth (fully developed columnar vortices): a
    // finite tube's abrupt ends shed strong secondary vorticity rings
    // that register as extra features and would confound planted-truth
    // counting. (min_length is kept in the spec for forward compatibility
    // with tapered finite tubes.)
    (void)spec.min_length;
    tube.z_lo = 0.0;
    tube.z_hi = static_cast<double>(spec.nz);
    const double sign = rng.next_double() < 0.5 ? -1.0 : 1.0;
    const double peak_vorticity = rng.uniform(1.6, 3.0);
    tube.circulation = sign * peak_vorticity * 3.141592653589793 *
                       tube.core_radius * tube.core_radius;
    out.tubes.push_back(tube);
  }

  // Full volume once so halos are bit-identical across chunks.
  std::vector<Vec3f> field(static_cast<std::size_t>(spec.nx) * spec.ny *
                           spec.nz);
  for (int z = 0; z < spec.nz; ++z) {
    for (int y = 0; y < spec.ny; ++y) {
      for (int x = 0; x < spec.nx; ++x) {
        Vec3f cell{static_cast<float>(spec.background_u +
                                      spec.noise * rng.next_gaussian()),
                   static_cast<float>(spec.noise * rng.next_gaussian()),
                   static_cast<float>(spec.noise * rng.next_gaussian())};
        for (const auto& tube : out.tubes)
          add_tube_velocity(tube, x, y, z, cell);
        field[(static_cast<std::size_t>(z) * spec.ny + y) * spec.nx + x] =
            cell;
      }
    }
  }

  repository::DatasetMeta meta;
  meta.name = spec.name;
  meta.schema = "flowfield3d f32 uvw " + std::to_string(spec.nx) + "x" +
                std::to_string(spec.ny) + "x" + std::to_string(spec.nz);
  meta.seed = spec.seed;
  out.dataset = repository::ChunkedDataset(meta);

  repository::ChunkId next_id = 0;
  for (int z0 = 0; z0 < spec.nz; z0 += spec.planes_per_chunk) {
    const int planes = std::min(spec.planes_per_chunk, spec.nz - z0);
    const int stored_z0 = std::max(0, z0 - 1);
    const int stored_end = std::min(spec.nz, z0 + planes + 1);
    const int stored_planes = stored_end - stored_z0;

    VolumeChunkHeader header;
    header.z0 = static_cast<std::uint32_t>(z0);
    header.planes = static_cast<std::uint32_t>(planes);
    header.stored_z0 = static_cast<std::uint32_t>(stored_z0);
    header.stored_planes = static_cast<std::uint32_t>(stored_planes);
    header.nx = static_cast<std::uint32_t>(spec.nx);
    header.ny = static_cast<std::uint32_t>(spec.ny);
    header.nz = static_cast<std::uint32_t>(spec.nz);

    const std::size_t plane_cells =
        static_cast<std::size_t>(spec.nx) * spec.ny;
    std::vector<std::uint8_t> payload(sizeof(header) +
                                      static_cast<std::size_t>(stored_planes) *
                                          plane_cells * sizeof(Vec3f));
    std::memcpy(payload.data(), &header, sizeof(header));
    std::memcpy(payload.data() + sizeof(header),
                field.data() + static_cast<std::size_t>(stored_z0) *
                                   plane_cells,
                static_cast<std::size_t>(stored_planes) * plane_cells *
                    sizeof(Vec3f));
    out.dataset.add_chunk(
        repository::Chunk(next_id, std::move(payload), spec.virtual_scale));
    ++next_id;
  }
  return out;
}

}  // namespace fgp::datagen
